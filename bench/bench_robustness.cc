// Robustness-layer overhead: the cooperative checkpoints threaded through
// every automaton fixpoint must be near-free, or the execution-control layer
// (deadlines, cancellation, fault injection) would tax every run that never
// needs it. Two probes:
//  1. raw cost per TaCheckpoint call, per feature armed (cancel flag, far
//     deadline at the default stride, deadline polled every call);
//  2. the Theorem 4.7 pipeline on the same instances as bench_mso_pipeline,
//     with full execution control armed — compare against the unarmed
//     BM_Theorem47Pipeline numbers; the acceptance bar is <2% wall clock.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>

#include "src/common/check.h"
#include "src/mso/compile.h"
#include "src/pa/automaton.h"
#include "src/pa/to_mso.h"
#include "src/ta/op_context.h"

namespace pebbletc {
namespace {

RankedAlphabet MicroRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  return sigma;
}

PebbleAutomaton ChainAutomaton(const RankedAlphabet& sigma, int extra) {
  PebbleAutomaton a(1, static_cast<uint32_t>(sigma.size()));
  using M = PebbleAutomaton::MoveKind;
  StateId prev = a.AddState(1);
  a.SetStart(prev);
  for (int i = 0; i < extra; ++i) {
    StateId next = a.AddState(1);
    a.AddMove({.symbol = sigma.Find("n")}, prev, M::kDownLeft, next);
    prev = next;
  }
  a.AddMove({.symbol = sigma.Find("n")}, prev, M::kDownLeft, prev);
  a.AddAccept({.symbol = sigma.Find("l")}, prev);
  return a;
}

// Raw per-call checkpoint cost. range(0) selects the armed features:
// 0 = bare counter bump, 1 = cancel flag polled, 2 = far deadline at the
// default stride (clock read amortized 1/256), 3 = deadline polled on
// every call (stride 1, the worst case the pipeline never uses).
void BM_CheckpointCall(benchmark::State& state) {
  std::atomic<bool> cancel{false};
  TaOpBudgets budgets;
  switch (state.range(0)) {
    case 0:
      break;
    case 1:
      budgets.cancel = &cancel;
      break;
    case 2:
      budgets.deadline =
          std::chrono::steady_clock::now() + std::chrono::hours(1);
      break;
    case 3:
      budgets.deadline =
          std::chrono::steady_clock::now() + std::chrono::hours(1);
      budgets.checkpoint_stride = 1;
      break;
  }
  TaOpContext ctx(budgets);
  for (auto _ : state) {
    Status s = ctx.Checkpoint();
    benchmark::DoNotOptimize(s);
  }
  state.counters["checkpoints"] =
      static_cast<double>(ctx.counters.checkpoints);
}
BENCHMARK(BM_CheckpointCall)->DenseRange(0, 3, 1);

// The bench_mso_pipeline workload with the execution-control layer fully
// armed (cancel flag + far deadline). Any measurable gap against the
// unarmed BM_Theorem47Pipeline numbers is pure checkpoint overhead.
void BM_Theorem47PipelineArmed(benchmark::State& state) {
  RankedAlphabet sigma = MicroRanked();
  PebbleAutomaton a = ChainAutomaton(sigma, static_cast<int>(state.range(0)));
  std::atomic<bool> cancel{false};
  size_t checkpoints = 0;
  for (auto _ : state) {
    TaOpBudgets budgets;
    budgets.cancel = &cancel;
    budgets.deadline =
        std::chrono::steady_clock::now() + std::chrono::hours(1);
    TaOpContext ctx(budgets);
    MsoCompileOptions opts;
    opts.ctx = &ctx;
    auto nbta = PebbleAutomatonToNbta(a, sigma, opts);
    PEBBLETC_CHECK(nbta.ok()) << nbta.status().ToString();
    checkpoints = ctx.counters.checkpoints;
    benchmark::DoNotOptimize(nbta);
  }
  state.counters["checkpoints"] = static_cast<double>(checkpoints);
}
BENCHMARK(BM_Theorem47PipelineArmed)
    ->DenseRange(0, 3, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pebbletc
