// E7 (Theorems 4.4/4.7): cost of the complete decision pipeline — the
// Prop. 4.6 product converted to a regular tree automaton through the
// Theorem 4.7 MSO translation — as the 1-pebble automaton grows. The MSO
// compile statistics (automata built, complementations, peak intermediate
// size) expose where the non-elementary cost accumulates.

#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/mso/compile.h"
#include "src/pa/automaton.h"
#include "src/pa/to_mso.h"

namespace pebbletc {
namespace {

RankedAlphabet MicroRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  return sigma;
}

// A chain automaton with `extra` intermediate walking states: walks the
// left spine through the chain, accepts at an l-leaf.
PebbleAutomaton ChainAutomaton(const RankedAlphabet& sigma, int extra) {
  PebbleAutomaton a(1, static_cast<uint32_t>(sigma.size()));
  using M = PebbleAutomaton::MoveKind;
  StateId prev = a.AddState(1);
  a.SetStart(prev);
  for (int i = 0; i < extra; ++i) {
    StateId next = a.AddState(1);
    a.AddMove({.symbol = sigma.Find("n")}, prev, M::kDownLeft, next);
    prev = next;
  }
  a.AddMove({.symbol = sigma.Find("n")}, prev, M::kDownLeft, prev);
  a.AddAccept({.symbol = sigma.Find("l")}, prev);
  return a;
}

void BM_Theorem47Pipeline(benchmark::State& state) {
  RankedAlphabet sigma = MicroRanked();
  PebbleAutomaton a = ChainAutomaton(sigma, static_cast<int>(state.range(0)));
  MsoCompileStats stats;
  MsoCompileOptions opts;
  opts.stats = &stats;
  size_t result_states = 0;
  for (auto _ : state) {
    stats = MsoCompileStats();
    auto nbta = PebbleAutomatonToNbta(a, sigma, opts);
    PEBBLETC_CHECK(nbta.ok()) << nbta.status().ToString();
    result_states = nbta->num_states;
    benchmark::DoNotOptimize(nbta);
  }
  state.counters["pa_states"] = static_cast<double>(a.num_states());
  state.counters["mso_tracks"] =
      static_cast<double>(a.num_states() + 3);  // |Q| + x,y,r per level
  state.counters["result_states"] = static_cast<double>(result_states);
  state.counters["complementations"] =
      static_cast<double>(stats.complementations);
  state.counters["max_intermediate_states"] =
      static_cast<double>(stats.max_intermediate_states);
}
BENCHMARK(BM_Theorem47Pipeline)
    ->DenseRange(0, 3, 1)
    ->Unit(benchmark::kMillisecond);

void BM_MsoFormulaSize(benchmark::State& state) {
  // Formula construction alone is cheap; the blowup is in the automaton
  // compilation — measure the split.
  RankedAlphabet sigma = MicroRanked();
  PebbleAutomaton a = ChainAutomaton(sigma, static_cast<int>(state.range(0)));
  size_t nodes = 0;
  for (auto _ : state) {
    auto mso = PebbleAutomatonToMso(a);
    PEBBLETC_CHECK(mso.ok());
    auto analysis = AnalyzeMso(*mso);
    PEBBLETC_CHECK(analysis.ok());
    nodes = analysis->num_nodes;
    benchmark::DoNotOptimize(mso);
  }
  state.counters["formula_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_MsoFormulaSize)->DenseRange(0, 3, 1);

}  // namespace
}  // namespace pebbletc
