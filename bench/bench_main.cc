// Shared benchmark main: every bench_* binary reports the host's core count
// in its context block, so a BENCH_*.json produced from any harness carries
// the same `host_nproc` / `host_hardware_workers` caveat uniformly (a 1-core
// container makes thread-scaling rows measure pure overhead — see
// BENCH_parallel.json and docs/PARALLEL.md).

#include <benchmark/benchmark.h>

#include <string>
#include <thread>

#include "src/ta/thread_pool.h"

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "host_nproc", std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext(
      "host_hardware_workers",
      std::to_string(pebbletc::TaThreadPool::HardwareWorkers()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
