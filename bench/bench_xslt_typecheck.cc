// E6 (Example 4.3): typechecking XSLT-fragment programs. Two series:
//  * Q2 (maps a^n to b a^n b a^n b a^n): exact per-input checks against the
//    correct and an incorrect output DTD, plus refutation latency;
//  * a downward rename program: the *complete* fast-path decision, timed
//    against growing input sizes.

#include <benchmark/benchmark.h>

#include <string>

#include "src/common/check.h"
#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/query/xslt.h"
#include "src/tree/encode.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

struct Q2Fixture {
  Alphabet in_tags, out_tags;
  EncodedAlphabet in_enc, out_enc;
  PebbleTransducer t;
  Nbta tau1, tau2_good, tau2_bad;

  Q2Fixture() : t(1, 1, 1) {
    auto program = std::move(ParseXslt(
                                 "template root { result { b; apply; b; "
                                 "apply; b; apply } }\n"
                                 "template a { a }",
                                 &in_tags, &out_tags))
                       .ValueOrDie();
    in_enc = std::move(MakeEncodedAlphabet(in_tags)).ValueOrDie();
    out_enc = std::move(MakeEncodedAlphabet(out_tags)).ValueOrDie();
    t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();
    auto in_dtd = std::move(ParseDtd("root := a*\na := ()")).ValueOrDie();
    tau1 = std::move(CompileDtdToNbta(in_dtd, in_enc)).ValueOrDie();
    auto good = std::move(ParseDtd(
                              "result := b.a*.b.a*.b.a*\nb := ()\na := ()"))
                    .ValueOrDie();
    tau2_good = Align(good);
    auto bad =
        std::move(ParseDtd("result := b.a*.b.a*.b\nb := ()\na := ()"))
            .ValueOrDie();
    tau2_bad = Align(bad);
  }

  Nbta Align(const SpecializedDtd& dtd) {
    auto enc = std::move(MakeEncodedAlphabet(dtd.tags())).ValueOrDie();
    auto raw = std::move(CompileDtdToNbta(dtd, enc)).ValueOrDie();
    std::vector<SymbolId> map(enc.ranked.size());
    for (SymbolId s = 0; s < enc.ranked.size(); ++s) {
      map[s] = out_enc.ranked.Find(enc.ranked.Name(s));
      PEBBLETC_CHECK(map[s] != kNoSymbol) << enc.ranked.Name(s);
    }
    return RelabelNbta(raw, map,
                       static_cast<uint32_t>(out_enc.ranked.size()));
  }
};

void BM_Q2PerInputCheck(benchmark::State& state) {
  static const Q2Fixture* f = new Q2Fixture();
  const int n = static_cast<int>(state.range(0));
  std::string text = "root";
  if (n > 0) {
    text += "(a";
    for (int i = 1; i < n; ++i) text += ",a";
    text += ")";
  }
  Alphabet tags = f->in_tags;
  auto doc = std::move(ParseUnrankedTerm(text, &tags)).ValueOrDie();
  auto input = std::move(EncodeTree(doc, f->in_enc)).ValueOrDie();
  Typechecker tc(f->t, f->in_enc.ranked, f->out_enc.ranked);
  bool good_ok = false, bad_ok = true;
  for (auto _ : state) {
    auto g = tc.CheckOnInput(input, f->tau2_good);
    auto b = tc.CheckOnInput(input, f->tau2_bad);
    PEBBLETC_CHECK(g.ok() && b.ok());
    good_ok = *g;
    bad_ok = *b;
    benchmark::DoNotOptimize(g);
  }
  state.counters["n"] = n;
  state.counters["conforms_good_dtd"] = good_ok ? 1 : 0;
  state.counters["violates_bad_dtd"] = bad_ok ? 0 : 1;
}
BENCHMARK(BM_Q2PerInputCheck)->DenseRange(0, 8, 2)->Arg(16)->Arg(32);

void BM_Q2Refutation(benchmark::State& state) {
  // How fast does the bounded refutation find the bad-DTD counterexample?
  static const Q2Fixture* f = new Q2Fixture();
  Typechecker tc(f->t, f->in_enc.ranked, f->out_enc.ranked);
  TypecheckOptions opts;
  opts.run_complete_decision = false;
  opts.refutation_max_trees = 20;
  opts.refutation_max_nodes = 31;
  TypecheckVerdict verdict = TypecheckVerdict::kInconclusive;
  for (auto _ : state) {
    auto r = tc.Typecheck(f->tau1, f->tau2_bad, opts);
    PEBBLETC_CHECK(r.ok());
    verdict = r->verdict;
    benchmark::DoNotOptimize(r);
  }
  state.counters["found_counterexample"] =
      verdict == TypecheckVerdict::kCounterexample ? 1 : 0;
}
BENCHMARK(BM_Q2Refutation)->Unit(benchmark::kMillisecond);

void BM_RenameCompleteFastPath(benchmark::State& state) {
  // The downward rename program: complete decision via the subset fast
  // path, both verdicts.
  Alphabet in_tags, out_tags;
  auto program =
      std::move(ParseXslt("template a { b { apply } }\ntemplate c { d }",
                          &in_tags, &out_tags))
          .ValueOrDie();
  auto in_enc = std::move(MakeEncodedAlphabet(in_tags)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out_tags)).ValueOrDie();
  auto t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();
  auto in_dtd = std::move(ParseDtd("a := (a|c)*\nc := ()")).ValueOrDie();
  auto tau1 = std::move(CompileDtdToNbta(in_dtd, in_enc)).ValueOrDie();
  auto good_dtd = std::move(ParseDtd("b := (b|d)*\nd := ()")).ValueOrDie();
  auto tau2 = std::move(CompileDtdToNbta(good_dtd, out_enc)).ValueOrDie();
  Typechecker tc(t, in_enc.ranked, out_enc.ranked);
  TypecheckOptions opts;
  opts.refutation_max_trees = 0;
  TypecheckVerdict verdict = TypecheckVerdict::kInconclusive;
  for (auto _ : state) {
    auto r = tc.Typecheck(tau1, tau2, opts);
    PEBBLETC_CHECK(r.ok());
    verdict = r->verdict;
    benchmark::DoNotOptimize(r);
  }
  state.counters["typechecks"] =
      verdict == TypecheckVerdict::kTypechecks ? 1 : 0;
}
BENCHMARK(BM_RenameCompleteFastPath)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pebbletc
