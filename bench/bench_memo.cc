// E15 (docs/CACHING.md): the content-addressed op cache measured cold vs
// warm.
//
//  * End-to-end: the same typecheck instance decided repeatedly with
//    TypecheckOptions::memo off (every op cold, the legacy path) and on
//    (every expensive op served from TaOpCache::Global() after the first
//    decision). The warm row is the service-shape workload — the same
//    transducer checked against the same schemas per request — and the
//    headline number is warm_speedup = time(cold) / time(warm).
//  * Per-op: ComplementNbta on the dense diffcheck family, cold vs a warm
//    TaAlgebra probe (structural hash + LRU lookup).
//  * Cache-size sensitivity: a working set of distinct complements cycled
//    through caches from ample to starved; the starved rows measure the
//    recompute-under-thrash regime (hit_rate falls toward zero).
//  * Persistence: AttachPersistentDir load+verify latency for a directory of
//    binary entries (docs/FORMATS.md).
//
// CI smoke-runs this binary in the bench-smoke job and uploads the JSON as
// the BENCH_memo.json artifact; the checked-in BENCH_memo.json records the
// cold/warm and sensitivity rows.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/check/diffcheck.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/query/xslt.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_cache.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"
#include "src/tree/encode.h"

namespace pebbletc {
namespace {

// The dense diffcheck instance family (bench_parallel's DrawDense shape).
Nbta DrawDense(const RankedAlphabet& sigma, uint32_t states, uint64_t seed) {
  Rng rng(seed);
  RandomNbtaOptions opts;
  opts.num_states = states;
  opts.rule_density = 0.3;
  opts.leaf_density = 0.5;
  return RandomNbta(sigma, rng, opts);
}

// The downward rename pipeline instance (bench_parallel's end-to-end shape):
// complement(tau2), the downward product, and the fast-path subset
// construction are all cacheable, so a warm decision is dominated by
// structural hashing and the per-instance glue.
struct RenameFixture {
  Alphabet in_tags, out_tags;
  EncodedAlphabet in_enc, out_enc;
  PebbleTransducer t;
  Nbta tau1, tau2;

  RenameFixture() : t(1, 1, 1) {
    auto program =
        std::move(ParseXslt("template a { b { apply } }\ntemplate c { d }",
                            &in_tags, &out_tags))
            .ValueOrDie();
    in_enc = std::move(MakeEncodedAlphabet(in_tags)).ValueOrDie();
    out_enc = std::move(MakeEncodedAlphabet(out_tags)).ValueOrDie();
    t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();
    auto in_dtd = std::move(ParseDtd("a := (a|c)*\nc := ()")).ValueOrDie();
    tau1 = std::move(CompileDtdToNbta(in_dtd, in_enc)).ValueOrDie();
    auto good_dtd = std::move(ParseDtd("b := (b|d)*\nd := ()")).ValueOrDie();
    tau2 = std::move(CompileDtdToNbta(good_dtd, out_enc)).ValueOrDie();
  }

  TypecheckOptions Options(TaMemoMode memo) const {
    TypecheckOptions opts;
    // Complete decision only: the refutation pass is per-tree enumeration
    // work the cache deliberately never serves (docs/CACHING.md), so it
    // would dilute the cold/warm contrast with identical time on both rows.
    opts.refutation_max_trees = 0;
    opts.num_threads = 1;
    opts.memo = memo;
    return opts;
  }
};

void RunTypecheck(benchmark::State& state, TaMemoMode memo) {
  static const RenameFixture* f = new RenameFixture();
  Typechecker tc(f->t, f->in_enc.ranked, f->out_enc.ranked);
  const TypecheckOptions opts = f->Options(memo);
  TaOpCache::Global().Clear();
  if (memo != TaMemoMode::kOff) {
    // Prime once so the timed loop measures the steady warm state.
    PEBBLETC_CHECK(tc.Typecheck(f->tau1, f->tau2, opts).ok());
  }
  TypecheckVerdict verdict = TypecheckVerdict::kInconclusive;
  size_t hits = 0, misses = 0;
  for (auto _ : state) {
    auto r = tc.Typecheck(f->tau1, f->tau2, opts);
    PEBBLETC_CHECK(r.ok());
    verdict = r->verdict;
    hits = r->op_counters.memo_hits;
    misses = r->op_counters.memo_misses;
    benchmark::DoNotOptimize(r);
  }
  state.counters["typechecks"] =
      verdict == TypecheckVerdict::kTypechecks ? 1 : 0;
  state.counters["memo_hits_per_run"] = static_cast<double>(hits);
  state.counters["memo_misses_per_run"] = static_cast<double>(misses);
}

void BM_TypecheckCold(benchmark::State& state) {
  RunTypecheck(state, TaMemoMode::kOff);
}
BENCHMARK(BM_TypecheckCold)->Unit(benchmark::kMillisecond);

void BM_TypecheckWarm(benchmark::State& state) {
  RunTypecheck(state, TaMemoMode::kInMemory);
}
BENCHMARK(BM_TypecheckWarm)->Unit(benchmark::kMillisecond);

void BM_ComplementCold(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Nbta a = DrawDense(sigma, n, 13);
  NbtaIndex ia(a);
  for (auto _ : state) {
    TaOpContext ctx;
    ctx.budgets.num_threads = 1;
    auto r = ComplementNbta(ia, sigma, &ctx);
    PEBBLETC_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ComplementCold)->Arg(6)->Arg(8)->Arg(10);

void BM_ComplementWarm(benchmark::State& state) {
  // The steady warm state: every probe is a hit, so the row measures the
  // cache's fixed overhead — trim + WL structural hash + locked LRU lookup.
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Nbta a = DrawDense(sigma, n, 13);
  NbtaIndex ia(a);
  TaOpCache cache;
  const TaAlgebra alg(&cache);
  auto memo_ctx = [] {
    TaOpContext ctx;
    ctx.budgets.num_threads = 1;
    ctx.budgets.memo = TaMemoMode::kInMemory;
    return ctx;
  };
  {
    TaOpContext prime = memo_ctx();
    PEBBLETC_CHECK(alg.Complement(ia, sigma, &prime).ok());
  }
  size_t hits = 0;
  for (auto _ : state) {
    TaOpContext ctx = memo_ctx();
    auto r = alg.Complement(ia, sigma, &ctx);
    PEBBLETC_CHECK(r.ok());
    hits += ctx.counters.memo_hits;
    benchmark::DoNotOptimize(r);
  }
  PEBBLETC_CHECK(hits == static_cast<size_t>(state.iterations()));
}
BENCHMARK(BM_ComplementWarm)->Arg(6)->Arg(8)->Arg(10);

void BM_WarmWorkingSet(benchmark::State& state) {
  // Cache-size sensitivity: cycle a working set of 8 distinct complements
  // through a cache of state.range(0) KiB. Ample capacity holds the whole
  // set (hit_rate 1); starved capacities evict mid-cycle and recompute.
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  constexpr size_t kWorkingSet = 8;
  std::vector<Nbta> as;
  as.reserve(kWorkingSet);
  for (size_t i = 0; i < kWorkingSet; ++i) {
    as.push_back(DrawDense(sigma, 8, 100 + i));
  }
  std::vector<std::unique_ptr<NbtaIndex>> idx;  // NbtaIndex is non-copyable
  for (const Nbta& a : as) idx.push_back(std::make_unique<NbtaIndex>(a));

  TaOpCache cache(static_cast<size_t>(state.range(0)) << 10);
  const TaAlgebra alg(&cache);
  size_t hits = 0, misses = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < kWorkingSet; ++i) {
      TaOpContext ctx;
      ctx.budgets.num_threads = 1;
      ctx.budgets.memo = TaMemoMode::kInMemory;
      auto r = alg.Complement(*idx[i], sigma, &ctx);
      PEBBLETC_CHECK(r.ok());
      hits += ctx.counters.memo_hits;
      misses += ctx.counters.memo_misses;
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["capacity_kb"] = static_cast<double>(state.range(0));
  state.counters["hit_rate"] =
      hits + misses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(hits + misses);
}
BENCHMARK(BM_WarmWorkingSet)->Arg(65536)->Arg(8192)->Arg(2048);

void BM_PersistentReload(benchmark::State& state) {
  // Cross-process warm start: load+verify a directory of state.range(0)
  // binary entries into a fresh cache (checksum verification included).
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  const size_t entries = static_cast<size_t>(state.range(0));
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "pebbletc_bench_memo" /
      ("reload_" + std::to_string(entries));
  std::error_code ec;
  fs::remove_all(dir, ec);
  {
    TaOpCache writer;
    PEBBLETC_CHECK(writer.AttachPersistentDir(dir.string()).ok());
    TaOpContext ctx;
    for (size_t i = 0; i < entries; ++i) {
      const Nbta a = DrawDense(sigma, 16, 500 + i);
      TaCacheKey key = MakeTaCacheKey(TaOpKind::kComplement,
                                      NbtaStructuralHash(a),
                                      TaStructuralHash{},
                                      RankedAlphabetFingerprint(sigma), 0);
      writer.InsertNbta(key, a, &ctx);
    }
  }
  size_t loaded = 0;
  for (auto _ : state) {
    TaOpCache reader;
    size_t n = 0;
    PEBBLETC_CHECK(reader.AttachPersistentDir(dir.string(), &n).ok());
    loaded = n;
    benchmark::DoNotOptimize(reader);
  }
  fs::remove_all(dir, ec);
  state.counters["entries_loaded"] = static_cast<double>(loaded);
}
BENCHMARK(BM_PersistentReload)->Arg(8)->Arg(64);

}  // namespace
}  // namespace pebbletc
