// E13 close-out (docs/DETERMINIZE.md): the frontier-driven determinization
// engine measured in both of its regimes, against the naive all-2^n bitmask
// reference in the dense regime where that reference used to win.
//
// Dense series: the exact E13 configuration (DiffcheckAlphabet, seed 13,
// rule_density 0.3) at n = 4…10 input states — most subsets reachable, so
// the pass-rescan fixpoint this engine replaced lost to the reference by
// ~10× at n = 10. Sparse series: larger, thinner automata (n > 16, the
// packed-bitset worklist path) that the reference refuses outright; here the
// regression bar is the engine's own recorded baseline, not the reference.
//
// CI runs this binary with tiny sizes (--benchmark_filter=dense-smoke
// equivalent, see the bench-smoke job) and uploads the JSON as the
// BENCH_determinize.json artifact; the checked-in BENCH_determinize.json
// records the before/after numbers of the rewrite.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "src/check/diffcheck.h"
#include "src/check/reference_ops.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"

namespace pebbletc {
namespace {

// The E13 instance family: the diffcheck alphabet (a0, b0, a2, b2) and the
// same seed/density bench_diffcheck uses, so numbers stay comparable with
// the EXPERIMENTS.md E13 rows.
Nbta DrawDense(const RankedAlphabet& sigma, uint32_t states) {
  Rng rng(13);
  RandomNbtaOptions opts;
  opts.num_states = states;
  opts.rule_density = 0.3;
  opts.leaf_density = 0.5;
  return RandomNbta(sigma, rng, opts);
}

// Sparse-regime instances: more states than the dense cutoff (16) at a
// density low enough that only a sliver of the 2^n subset space is
// reachable — the shape of the MSO pipeline's intermediate automata.
Nbta DrawSparse(const RankedAlphabet& sigma, uint32_t states) {
  Rng rng(29);
  RandomNbtaOptions opts;
  opts.num_states = states;
  // ~n expected rules per symbol: keeps the reachable-subset count near 50
  // at every size here, so the series isolates the cost of wider bitsets.
  opts.rule_density = 1.0 / states;
  opts.leaf_density = 0.25;
  return RandomNbta(sigma, rng, opts);
}

void ReportDetCounters(benchmark::State& state, const TaOpContext& ctx) {
  state.counters["det_states"] =
      static_cast<double>(ctx.counters.states_materialized);
  state.counters["pairs_expanded"] =
      static_cast<double>(ctx.counters.det_pairs_expanded);
  state.counters["subsets_interned"] =
      static_cast<double>(ctx.counters.det_subsets_interned);
}

void BM_DeterminizeDense(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawDense(sigma, static_cast<uint32_t>(state.range(0)));
  NbtaIndex idx(a);
  TaOpContext last;
  for (auto _ : state) {
    TaOpContext ctx;
    auto det = DeterminizeNbta(idx, sigma, &ctx);
    PEBBLETC_CHECK(det.ok());
    benchmark::DoNotOptimize(det);
    last = ctx;
  }
  ReportDetCounters(state, last);
}
BENCHMARK(BM_DeterminizeDense)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_DeterminizeDenseReference(benchmark::State& state) {
  // The all-2^n bitmask reference, in its own best regime. Capped at 10
  // input states (kRefMaxDeterminizeStates).
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawDense(sigma, static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto det = RefDeterminize(a, sigma);
    PEBBLETC_CHECK(det.ok());
    benchmark::DoNotOptimize(det);
  }
}
BENCHMARK(BM_DeterminizeDenseReference)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_DeterminizeSparse(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawSparse(sigma, static_cast<uint32_t>(state.range(0)));
  NbtaIndex idx(a);
  TaOpContext last;
  for (auto _ : state) {
    TaOpContext ctx;
    auto det = DeterminizeNbta(idx, sigma, &ctx);
    PEBBLETC_CHECK(det.ok());
    benchmark::DoNotOptimize(det);
    last = ctx;
  }
  ReportDetCounters(state, last);
}
BENCHMARK(BM_DeterminizeSparse)->Arg(24)->Arg(32)->Arg(48)->Arg(64);

// Complementation is determinize + flag flip + re-materialization: the op
// every NbtaIncludes/NbtaEquivalent/typechecker call pays, end to end.
void BM_ComplementDense(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawDense(sigma, static_cast<uint32_t>(state.range(0)));
  NbtaIndex idx(a);
  for (auto _ : state) {
    TaOpContext ctx;
    auto comp = ComplementNbta(idx, sigma, &ctx);
    PEBBLETC_CHECK(comp.ok());
    benchmark::DoNotOptimize(comp);
  }
}
BENCHMARK(BM_ComplementDense)->Arg(6)->Arg(8)->Arg(10);

}  // namespace
}  // namespace pebbletc
