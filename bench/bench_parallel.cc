// E14 (docs/PARALLEL.md): the parallel execution layer measured in both of
// its dimensions.
//
//  * Flat-memory rewrite: IntersectNbta's serial path swapped its
//    std::map pair interner and std::set emitted-guard for an open-addressing
//    interner keyed on packed uint64 pairs and a per-a-rule bitmap. The
//    retired map-based construction is kept here (MapBasedIntersect, a
//    verbatim copy of the pre-rewrite code) as the before-baseline.
//  * Thread scaling: the sharded product construction, the op-level forks in
//    the Theorem 4.4/4.7 typechecking pipeline, and the diffcheck sweep at
//    1/2/4/8 workers. On a single-core host the >1 rows measure sharding
//    overhead, not speedup — see the host note in BENCH_parallel.json.
//
// CI runs this binary in the bench-smoke job with tiny sizes and uploads the
// JSON as the BENCH_parallel.json artifact; the checked-in
// BENCH_parallel.json records the before/after and scaling rows.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/check/diffcheck.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/query/xslt.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"
#include "src/ta/thread_pool.h"
#include "src/tree/encode.h"

namespace pebbletc {
namespace {

// The dense diffcheck instance family (bench_determinize's DrawDense shape):
// rules ≈ 2 * n^2 * 0.3, so the n = 32 pair clears the parallel gate by an
// order of magnitude and the product frontier has thousands of live pairs.
Nbta DrawDense(const RankedAlphabet& sigma, uint32_t states, uint64_t seed) {
  Rng rng(seed);
  RandomNbtaOptions opts;
  opts.num_states = states;
  opts.rule_density = 0.3;
  opts.leaf_density = 0.5;
  return RandomNbta(sigma, rng, opts);
}

// The retired IntersectNbta, verbatim (modulo the dropped context plumbing):
// node-based std::map pair interner, std::set emitted guard. Kept only as
// this benchmark's before-baseline for the flat-memory rewrite.
Nbta MapBasedIntersect(const NbtaIndex& ia, const NbtaIndex& ib) {
  const Nbta& a = ia.nbta();
  const Nbta& b = ib.nbta();
  Nbta out;
  out.num_symbols = a.num_symbols;

  std::map<std::pair<StateId, StateId>, StateId> index;
  std::vector<std::pair<StateId, StateId>> worklist;
  auto intern = [&](StateId x, StateId y) -> StateId {
    auto [it, inserted] = index.emplace(std::make_pair(x, y), out.num_states);
    if (inserted) {
      StateId id = out.AddState();
      out.accepting[id] = a.accepting[x] && b.accepting[y];
      worklist.push_back({x, y});
    }
    return it->second;
  };

  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    for (StateId ta : ia.LeafTargets(s)) {
      for (StateId tb : ib.LeafTargets(s)) {
        out.AddLeafRule(s, intern(ta, tb));
      }
    }
  }

  std::set<std::pair<uint32_t, uint32_t>> emitted;
  auto try_emit = [&](uint32_t ra_i, uint32_t rb_i) {
    const auto& ra = a.rules[ra_i];
    const auto& rb = b.rules[rb_i];
    if (ra.symbol != rb.symbol) return;
    auto l = index.find({ra.left, rb.left});
    if (l == index.end()) return;
    auto r = index.find({ra.right, rb.right});
    if (r == index.end()) return;
    if (!emitted.emplace(ra_i, rb_i).second) return;
    StateId to = intern(ra.to, rb.to);
    out.AddRule(ra.symbol, l->second, r->second, to);
  };

  while (!worklist.empty()) {
    auto [xa, xb] = worklist.back();
    worklist.pop_back();
    for (uint32_t ra_i : ia.RulesWithLeft(xa)) {
      for (uint32_t rb_i : ib.RulesWithLeft(xb)) try_emit(ra_i, rb_i);
    }
    for (uint32_t ra_i : ia.RulesWithRight(xa)) {
      for (uint32_t rb_i : ib.RulesWithRight(xb)) try_emit(ra_i, rb_i);
    }
  }
  return out;
}

void BM_IntersectMapBased(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Nbta a = DrawDense(sigma, n, 13);
  Nbta b = DrawDense(sigma, n, 17);
  NbtaIndex ia(a), ib(b);
  size_t product_states = 0;
  for (auto _ : state) {
    Nbta out = MapBasedIntersect(ia, ib);
    product_states = out.num_states;
    benchmark::DoNotOptimize(out);
  }
  state.counters["product_states"] = static_cast<double>(product_states);
}
BENCHMARK(BM_IntersectMapBased)->Arg(16)->Arg(24)->Arg(32)->Arg(48);

void BM_IntersectFlatSerial(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Nbta a = DrawDense(sigma, n, 13);
  Nbta b = DrawDense(sigma, n, 17);
  NbtaIndex ia(a), ib(b);
  size_t product_states = 0;
  for (auto _ : state) {
    TaOpContext ctx;
    ctx.budgets.num_threads = 1;
    Nbta out = IntersectNbta(ia, ib, &ctx);
    product_states = out.num_states;
    benchmark::DoNotOptimize(out);
  }
  state.counters["product_states"] = static_cast<double>(product_states);
}
BENCHMARK(BM_IntersectFlatSerial)->Arg(16)->Arg(24)->Arg(32)->Arg(48);

void BM_IntersectThreads(benchmark::State& state) {
  // Thread scaling on one large product (n = 48 on each side); the
  // /1 row is the serial path and the scaling denominator.
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawDense(sigma, 48, 13);
  Nbta b = DrawDense(sigma, 48, 17);
  NbtaIndex ia(a), ib(b);
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  size_t product_states = 0;
  for (auto _ : state) {
    TaOpContext ctx;
    ctx.budgets.num_threads = threads;
    Nbta out = IntersectNbta(ia, ib, &ctx);
    product_states = out.num_states;
    benchmark::DoNotOptimize(out);
  }
  state.counters["product_states"] = static_cast<double>(product_states);
  state.counters["hw_workers"] =
      static_cast<double>(TaThreadPool::HardwareWorkers());
}
BENCHMARK(BM_IntersectThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_TypecheckPipelineThreads(benchmark::State& state) {
  // The Theorem 4.4/4.7 pipeline end to end (refutation pass + complete
  // decision) with the op-level forks engaged: complement(tau2) runs
  // alongside the refutation enumeration / forward image.
  Alphabet in_tags, out_tags;
  auto program =
      std::move(ParseXslt("template a { b { apply } }\ntemplate c { d }",
                          &in_tags, &out_tags))
          .ValueOrDie();
  auto in_enc = std::move(MakeEncodedAlphabet(in_tags)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out_tags)).ValueOrDie();
  auto t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();
  auto in_dtd = std::move(ParseDtd("a := (a|c)*\nc := ()")).ValueOrDie();
  auto tau1 = std::move(CompileDtdToNbta(in_dtd, in_enc)).ValueOrDie();
  auto good_dtd = std::move(ParseDtd("b := (b|d)*\nd := ()")).ValueOrDie();
  auto tau2 = std::move(CompileDtdToNbta(good_dtd, out_enc)).ValueOrDie();
  Typechecker tc(t, in_enc.ranked, out_enc.ranked);
  TypecheckOptions opts;
  opts.refutation_max_trees = 40;
  opts.refutation_max_nodes = 15;
  opts.num_threads = static_cast<uint32_t>(state.range(0));
  TypecheckVerdict verdict = TypecheckVerdict::kInconclusive;
  for (auto _ : state) {
    auto r = tc.Typecheck(tau1, tau2, opts);
    PEBBLETC_CHECK(r.ok());
    verdict = r->verdict;
    benchmark::DoNotOptimize(r);
  }
  state.counters["typechecks"] =
      verdict == TypecheckVerdict::kTypechecks ? 1 : 0;
}
BENCHMARK(BM_TypecheckPipelineThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_DiffcheckSweepThreads(benchmark::State& state) {
  // The sharded oracle sweep: 32 iterations of the full law catalogue
  // split across workers. Deterministic in (seed, iteration), so every row
  // performs identical work.
  DiffcheckOptions opts;
  opts.seed = 42;
  opts.iters = 32;
  opts.num_threads = static_cast<uint32_t>(state.range(0));
  size_t comparisons = 0;
  for (auto _ : state) {
    DiffcheckReport report = RunDiffcheck(opts);
    PEBBLETC_CHECK(report.ok());
    comparisons = report.comparisons;
    benchmark::DoNotOptimize(report);
  }
  state.counters["comparisons"] = static_cast<double>(comparisons);
}
BENCHMARK(BM_DiffcheckSweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pebbletc
