// E18 (docs/VALIDATION.md): the high-throughput validation fast path.
//
// Membership series: the dense E13/E11 family (DiffcheckAlphabet, seed 13,
// rule_density 0.3) at n ∈ {6, 8, 10} states, queried on a fixed 511-node
// tree. 'before' = NbtaAccepts, the reach-set route every membership query
// used to take (one bitset vector + rule scan per node); 'after' = the
// compiled-DBTA run table (MembershipEngine), one O(1) flat-table lookup
// per node. Compilation (determinization) is paid OUTSIDE the timed loop —
// that is the whole point: the serving workload pays it once per artifact.
//
// XML series over the p/q/r document alphabet: arena-scoped vs heap parsing
// of the same ~2000-node document, then streaming validation (DBTA folded
// over parse events, no tree) vs the materialize-encode-Accepts route.
//
// Batch series: kValidateBatch through a warm ServerCore (plan compiled on
// the first request, cached after) at batch sizes {1, 8, 64, 256};
// per_doc_ns shows the per-document amortization of frame, admission, and
// plan-lookup overhead.
//
// CI runs this binary with --benchmark_min_time=0.05s in the bench-smoke
// job and uploads the JSON as the BENCH_validate.json artifact; the
// checked-in BENCH_validate.json records the measured numbers.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/check/diffcheck.h"
#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/serve/protocol.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"
#include "src/ta/membership.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"
#include "src/tree/binary_tree.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"
#include "src/tree/unranked_tree.h"
#include "src/xml/xml.h"

namespace pebbletc {
namespace {

// The E13/E11 dense family: same alphabet, seed base, and density as
// bench_determinize / bench_inclusion, so numbers stay comparable across
// the EXPERIMENTS.md rows.
Nbta DrawDense(const RankedAlphabet& sigma, uint32_t states, uint64_t seed) {
  Rng rng(seed);
  RandomNbtaOptions opts;
  opts.num_states = states;
  opts.rule_density = 0.3;
  opts.leaf_density = 0.5;
  return RandomNbta(sigma, rng, opts);
}

// One fixed 511-node (255 internal) query tree per series, so every row
// measures the same per-node work.
BinaryTree QueryTree(const RankedAlphabet& sigma) {
  Rng rng(7);
  return RandomBinaryTree(sigma, rng, 255);
}

// ----------------------------------------------- membership (before) -------

void BM_MembershipNbtaAccepts(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawDense(sigma, static_cast<uint32_t>(state.range(0)), 13);
  NbtaIndex idx(a);
  const BinaryTree t = QueryTree(sigma);
  bool accepted = false;
  for (auto _ : state) {
    accepted = NbtaAccepts(idx, t);
    // Observed as an rvalue copy throughout this file: the mutable-lvalue
    // DoNotOptimize overload pins register-sized scalars with the "+m,r"
    // asm constraint, which GCC miscompiles at -O2/-O3 (google/benchmark
    // #1340) and clobbers the variable.
    benchmark::DoNotOptimize(bool(accepted));
  }
  state.counters["accepted"] = accepted ? 1 : 0;
  state.counters["tree_nodes"] = static_cast<double>(t.size());
}
BENCHMARK(BM_MembershipNbtaAccepts)->Arg(6)->Arg(8)->Arg(10);

// ----------------------------------------------- membership (after) --------

void BM_MembershipCompiled(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawDense(sigma, static_cast<uint32_t>(state.range(0)), 13);
  Result<MembershipEngine> engine = MembershipEngine::Compile(a, sigma);
  PEBBLETC_CHECK(engine.ok()) << engine.status().ToString();
  PEBBLETC_CHECK(engine->fast()) << "dense draws must fit the budget";
  const BinaryTree t = QueryTree(sigma);
  Arena arena;
  bool accepted = false;
  for (auto _ : state) {
    arena.Reset();
    Result<bool> r = engine->Accepts(t, nullptr, &arena);
    PEBBLETC_CHECK(r.ok());
    accepted = *r;
    benchmark::DoNotOptimize(bool(accepted));
  }
  state.counters["accepted"] = accepted ? 1 : 0;
  state.counters["tree_nodes"] = static_cast<double>(t.size());
  state.counters["det_states"] =
      static_cast<double>(engine->table()->num_states());
}
BENCHMARK(BM_MembershipCompiled)->Arg(6)->Arg(8)->Arg(10);

// ----------------------------------------------- XML document series -------

struct DocFixture {
  Alphabet tags;
  EncodedAlphabet enc;
  std::string xml;
  Nbta schema;
};

DocFixture MakeDocFixture(size_t target_nodes) {
  DocFixture f;
  f.tags.Intern("p");
  f.tags.Intern("q");
  f.tags.Intern("r");
  f.enc = std::move(MakeEncodedAlphabet(f.tags)).ValueOrDie();
  Rng rng(29);
  RandomUnrankedOptions uo;
  uo.target_size = target_nodes;
  uo.max_children = 6;
  f.xml = XmlString(RandomUnrankedTree(f.tags, rng, uo), f.tags);
  f.schema = DrawDense(f.enc.ranked, 8, 13);
  return f;
}

void BM_ParseXmlHeap(benchmark::State& state) {
  const DocFixture f = MakeDocFixture(2000);
  for (auto _ : state) {
    Result<KnownXmlParse> parsed = ParseXmlKnown(f.xml, f.tags);
    PEBBLETC_CHECK(parsed.ok() && parsed->unknown_tag.empty());
    benchmark::DoNotOptimize(parsed);
  }
  state.counters["doc_bytes"] = static_cast<double>(f.xml.size());
}
BENCHMARK(BM_ParseXmlHeap);

void BM_ParseXmlArena(benchmark::State& state) {
  const DocFixture f = MakeDocFixture(2000);
  Arena arena;
  for (auto _ : state) {
    arena.Reset();
    Result<KnownXmlParse> parsed = ParseXmlKnown(f.xml, f.tags, &arena);
    PEBBLETC_CHECK(parsed.ok() && parsed->unknown_tag.empty());
    benchmark::DoNotOptimize(parsed);
  }
  state.counters["doc_bytes"] = static_cast<double>(f.xml.size());
}
BENCHMARK(BM_ParseXmlArena);

// The tree-materializing validation route: parse, encode, table pass.
void BM_ValidateMaterialize(benchmark::State& state) {
  const DocFixture f = MakeDocFixture(2000);
  Result<MembershipEngine> engine =
      MembershipEngine::Compile(f.schema, f.enc.ranked);
  PEBBLETC_CHECK(engine.ok() && engine->fast());
  Arena arena;
  bool accepted = false;
  for (auto _ : state) {
    arena.Reset();
    Result<KnownXmlParse> parsed = ParseXmlKnown(f.xml, f.tags, &arena);
    PEBBLETC_CHECK(parsed.ok() && parsed->unknown_tag.empty());
    Result<BinaryTree> encoded =
        EncodeTree(parsed->tree, f.enc, nullptr, &arena);
    PEBBLETC_CHECK(encoded.ok());
    Result<bool> r = engine->Accepts(*encoded, nullptr, &arena);
    PEBBLETC_CHECK(r.ok());
    accepted = *r;
    benchmark::DoNotOptimize(bool(accepted));
  }
  state.counters["accepted"] = accepted ? 1 : 0;
}
BENCHMARK(BM_ValidateMaterialize);

// The streaming route: fold the table over parse events, no tree at all.
void BM_ValidateStreaming(benchmark::State& state) {
  const DocFixture f = MakeDocFixture(2000);
  Result<MembershipEngine> engine =
      MembershipEngine::Compile(f.schema, f.enc.ranked);
  PEBBLETC_CHECK(engine.ok() && engine->fast());
  Arena arena;
  bool accepted = false;
  for (auto _ : state) {
    arena.Reset();
    Result<StreamVerdict> v = StreamingValidateXml(
        f.xml, *engine->table(), f.enc, f.tags, nullptr, &arena);
    PEBBLETC_CHECK(v.ok() && v->unknown_tag.empty());
    accepted = v->accepted;
    benchmark::DoNotOptimize(bool(accepted));
  }
  state.counters["accepted"] = accepted ? 1 : 0;
}
BENCHMARK(BM_ValidateStreaming);

// ----------------------------------------------- batch serve fan-out -------

// kValidateBatch through a warm ServerCore: the plan is compiled by the
// first (untimed) request and served from the plan cache inside the loop,
// so rows measure steady-state per-document cost including decode, validity,
// admission, dispatch, and response encoding.
void BM_ServeBatchWarm(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  serve::ServeOptions options;
  options.validity.level = serve::ValidityLevel::kBasic;
  options.validity.max_batch_docs = 1024;
  serve::ServerCore server(options);
  PEBBLETC_CHECK(
      server.registry().PutDtdText("in", "a := c\nc := ()\n").ok());
  serve::Request request;
  request.header.opcode = serve::Opcode::kValidateBatch;
  request.header.request_id = 1;
  std::vector<std::string> docs;
  docs.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    docs.push_back(i % 2 == 0 ? "<a><c/></a>" : "<a/>");
  }
  request.body = serve::ValidateBatchRequest{"in", std::move(docs)};
  std::string payload;
  serve::EncodeRequest(request, &payload);
  // Warm the plan cache (and prove the request is well-formed).
  {
    std::string first = server.HandleFrame(payload);
    Result<serve::Response> r = serve::DecodeResponse(first);
    PEBBLETC_CHECK(r.ok() && r->header.status == serve::WireStatus::kOk)
        << (r.ok() ? r->header.detail : r.status().ToString());
  }
  for (auto _ : state) {
    std::string encoded = server.HandleFrame(payload);
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["batch_docs"] = static_cast<double>(batch);
  state.counters["docs_per_second"] = benchmark::Counter(
      static_cast<double>(batch) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeBatchWarm)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace pebbletc
