// E10 (Section 5, data values): typechecking transducers with m unary
// predicates on data values reduces to typechecking over 2^m constants.
// Series: typechecking cost vs m — the alphabet (and the machine's guard
// set) doubles per predicate, the verdicts stay exact.

#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/core/typechecker.h"
#include "src/ext/data_values.h"

namespace pebbletc {
namespace {

RankedAlphabet DataRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("d");
  (void)sigma.AddLeaf("e");
  (void)sigma.AddBinary("n");
  return sigma;
}

// The classifier: on a single data leaf, emit `yes` iff predicate 0 holds
// (the other m-1 predicates only blow up the alphabet, mirroring realistic
// machines that test several properties).
struct Workload {
  RankedAlphabet base;
  ExpandedDataAlphabet exp;
  RankedAlphabet out_sigma;
  PebbleTransducer t;
  Nbta tau1, tau2;

  explicit Workload(uint32_t m) : base(DataRanked()), t(1, 1, 1) {
    exp = std::move(ExpandDataAlphabet(base, base.Find("d"), m)).ValueOrDie();
    SymbolId yes = std::move(out_sigma.AddLeaf("yes")).ValueOrDie();
    SymbolId no = std::move(out_sigma.AddLeaf("no")).ValueOrDie();
    t = PebbleTransducer(1, static_cast<uint32_t>(exp.ranked.size()), 2);
    StateId q = t.AddState(1);
    t.SetStart(q);
    for (uint32_t bits = 0; bits < (1u << m); ++bits) {
      t.AddOutputLeaf({.symbol = exp.data_variant[bits]}, q,
                      (bits & 1u) ? yes : no);
    }
    Nbta base_input;
    base_input.num_symbols = static_cast<uint32_t>(base.size());
    StateId s = base_input.AddState();
    base_input.accepting[s] = true;
    base_input.AddLeafRule(base.Find("d"), s);
    tau1 = LiftTypeToExpanded(base_input, exp);
    tau2.num_symbols = 2;
    StateId a = tau2.AddState();
    tau2.accepting[a] = true;
    tau2.AddLeafRule(yes, a);
    tau2.AddLeafRule(no, a);
  }
};

void BM_ReductionTypecheck(benchmark::State& state) {
  Workload w(static_cast<uint32_t>(state.range(0)));
  Typechecker tc(w.t, w.exp.ranked, w.out_sigma);
  TypecheckVerdict verdict = TypecheckVerdict::kInconclusive;
  for (auto _ : state) {
    auto r = tc.Typecheck(w.tau1, w.tau2);
    PEBBLETC_CHECK(r.ok());
    verdict = r->verdict;
    benchmark::DoNotOptimize(r);
  }
  state.counters["predicates"] = static_cast<double>(state.range(0));
  state.counters["expanded_symbols"] =
      static_cast<double>(w.exp.ranked.size());
  state.counters["typechecks"] =
      verdict == TypecheckVerdict::kTypechecks ? 1 : 0;
}
BENCHMARK(BM_ReductionTypecheck)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMillisecond);

void BM_ReductionRefutation(benchmark::State& state) {
  // Against the τ2 = {yes} type, the d#...0 inputs refute — found by the
  // exact refutation regardless of m.
  Workload w(static_cast<uint32_t>(state.range(0)));
  Nbta tau2_yes;
  tau2_yes.num_symbols = 2;
  StateId a = tau2_yes.AddState();
  tau2_yes.accepting[a] = true;
  tau2_yes.AddLeafRule(w.out_sigma.Find("yes"), a);
  Typechecker tc(w.t, w.exp.ranked, w.out_sigma);
  TypecheckVerdict verdict = TypecheckVerdict::kInconclusive;
  for (auto _ : state) {
    auto r = tc.Typecheck(w.tau1, tau2_yes);
    PEBBLETC_CHECK(r.ok());
    verdict = r->verdict;
    benchmark::DoNotOptimize(r);
  }
  state.counters["predicates"] = static_cast<double>(state.range(0));
  state.counters["refuted"] =
      verdict == TypecheckVerdict::kCounterexample ? 1 : 0;
}
BENCHMARK(BM_ReductionRefutation)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pebbletc
