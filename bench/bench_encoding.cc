// E1 (Figure 1 / Section 2.1): the unranked↔binary encoding is a linear-time
// bijection, and path-expression translation commutes with it. Series:
// encode/decode throughput over document size, and translation compile cost.

#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/regex/path_expr.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"

namespace pebbletc {
namespace {

Alphabet MakeTags() {
  Alphabet tags;
  for (const char* n : {"a", "b", "c", "d"}) tags.Intern(n);
  return tags;
}

void BM_Encode(benchmark::State& state) {
  Alphabet tags = MakeTags();
  Rng rng(42);
  RandomUnrankedOptions opts;
  opts.target_size = static_cast<size_t>(state.range(0));
  opts.max_children = 6;
  opts.max_depth = 1u << 20;
  UnrankedTree tree = RandomUnrankedTree(tags, rng, opts);
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  size_t encoded_nodes = 0;
  for (auto _ : state) {
    auto bin = EncodeTree(tree, enc);
    PEBBLETC_CHECK(bin.ok());
    encoded_nodes = bin->size();
    benchmark::DoNotOptimize(bin);
  }
  state.counters["unranked_nodes"] = static_cast<double>(tree.size());
  state.counters["encoded_nodes"] = static_cast<double>(encoded_nodes);
  state.counters["nodes_per_sec"] = benchmark::Counter(
      static_cast<double>(tree.size()), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Encode)->Arg(1024)->Arg(8192)->Arg(65536)->Arg(262144);

void BM_DecodeRoundtrip(benchmark::State& state) {
  Alphabet tags = MakeTags();
  Rng rng(43);
  RandomUnrankedOptions opts;
  opts.target_size = static_cast<size_t>(state.range(0));
  opts.max_children = 6;
  opts.max_depth = 1u << 20;
  UnrankedTree tree = RandomUnrankedTree(tags, rng, opts);
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  auto bin = std::move(EncodeTree(tree, enc)).ValueOrDie();
  for (auto _ : state) {
    auto back = DecodeTree(bin, enc);
    PEBBLETC_CHECK(back.ok());
    benchmark::DoNotOptimize(back);
  }
  // Bijection check once.
  auto back = std::move(DecodeTree(bin, enc)).ValueOrDie();
  state.counters["roundtrip_exact"] = (back == tree) ? 1 : 0;
}
BENCHMARK(BM_DecodeRoundtrip)->Arg(1024)->Arg(8192)->Arg(65536)->Arg(262144);

void BM_PathTranslation(benchmark::State& state) {
  // Translation of a.(b|(c.d))*.e — the paper's Section 2.1 example — plus
  // evaluation on the encoded tree; checked against unranked evaluation.
  Alphabet tags = MakeTags();
  Rng rng(44);
  RandomUnrankedOptions opts;
  opts.target_size = static_cast<size_t>(state.range(0));
  opts.max_children = 5;
  opts.max_depth = 1u << 20;
  UnrankedTree tree = RandomUnrankedTree(tags, rng, opts);
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  std::vector<NodeId> node_map;
  auto bin = std::move(EncodeTree(tree, enc, &node_map)).ValueOrDie();
  auto regex =
      std::move(ParseRegexClosed("a.(b|(c.d))*.d", tags)).ValueOrDie();
  Dfa unranked_dfa =
      CompileRegexToDfa(regex, static_cast<uint32_t>(tags.size()));
  auto translated =
      std::move(TranslatePathExpression(regex, enc)).ValueOrDie();
  size_t hits = 0;
  for (auto _ : state) {
    auto result = EvalPathBinary(bin, translated);
    hits = result.size();
    benchmark::DoNotOptimize(result);
  }
  // Commutation check (Section 2.1).
  auto unranked_hits = EvalPath(tree, unranked_dfa);
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["commutes"] = (unranked_hits.size() == hits) ? 1 : 0;
  state.counters["translated_dfa_states"] =
      static_cast<double>(translated.num_states());
}
BENCHMARK(BM_PathTranslation)->Arg(1024)->Arg(8192)->Arg(65536);

}  // namespace
}  // namespace pebbletc
