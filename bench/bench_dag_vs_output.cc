// E3 (Example 3.6): the doubling transducer's output grows exponentially in
// the input depth, but the Prop. 3.8 DAG encoding A_t stays linear — the
// "polynomial-size encoding of an exponential result" claim made concrete.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/check.h"
#include "src/pt/eval.h"
#include "src/pt/paper_machines.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

BinaryTree FullTree(int depth, SymbolId leaf, SymbolId internal) {
  BinaryTree t;
  std::vector<NodeId> layer;
  for (int i = 0; i < (1 << depth); ++i) layer.push_back(t.AddLeaf(leaf));
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(t.AddInternal(internal, layer[i], layer[i + 1]));
    }
    layer = next;
  }
  t.SetRoot(layer[0]);
  return t;
}

void BM_DoublingDag(benchmark::State& state) {
  RankedAlphabet sigma = TinyRanked();
  RankedAlphabet out_sigma = TinyRanked();
  SymbolId x = std::move(out_sigma.AddBinary("x")).ValueOrDie();
  auto t = std::move(MakeDoublingTransducer(sigma, out_sigma, x)).ValueOrDie();
  const int depth = static_cast<int>(state.range(0));
  BinaryTree input = FullTree(depth, 0, 2);
  size_t configs = 0;
  for (auto _ : state) {
    auto dag = BuildOutputAutomaton(t, input);
    PEBBLETC_CHECK(dag.ok());
    configs = dag->num_configs;
    benchmark::DoNotOptimize(dag);
  }
  state.counters["depth"] = depth;
  state.counters["input_nodes"] = static_cast<double>(input.size());
  state.counters["dag_configs"] = static_cast<double>(configs);
  // The materialized output has 2^(d+1)-ish blowup per level; report its
  // exact size for comparison (only for depths where it fits).
  if (depth <= 8) {
    auto out = std::move(EvalDeterministic(t, input, 1u << 30)).ValueOrDie();
    state.counters["materialized_nodes"] = static_cast<double>(out.size());
    state.counters["blowup_ratio"] =
        static_cast<double>(out.size()) / static_cast<double>(configs);
  }
}
BENCHMARK(BM_DoublingDag)->DenseRange(1, 8, 1)->Arg(12)->Arg(16);

}  // namespace
}  // namespace pebbletc
