// E17 (docs/INCLUSION.md): antichain on-the-fly inclusion against the
// explicit determinize+complement pipeline it replaced, on the instances
// where each regime shows.
//
// Dense series: the E13/E11 dense family (DiffcheckAlphabet, seed 13,
// rule_density 0.3) — pairs of independently drawn automata, where the
// explicit path pays the full subset construction of ¬B before it can even
// start looking for a counterexample, while the antichain search usually
// refutes from a shallow frontier. Holds series: A ∩ B ⊆ B by construction,
// so the antichain must drain its whole frontier (its worst regime) — an
// honest cost ceiling, not a best case. Blowup series: wide dense B whose
// complement determinization exceeds max_det_states, so the explicit path
// returns kResourceExhausted on every size while the antichain decides the
// same query outright — the family EXPERIMENTS.md E17 narrates.
//
// CI runs this binary with tiny sizes in the bench-smoke job and uploads
// the JSON as the BENCH_inclusion.json artifact; the checked-in
// BENCH_inclusion.json records the before/after numbers.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "src/check/diffcheck.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/ta/inclusion.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"

namespace pebbletc {
namespace {

// The E13/E11 dense family: same alphabet, seed base, and density as
// bench_determinize / bench_diffcheck, so numbers stay comparable across
// the EXPERIMENTS.md rows.
Nbta DrawDense(const RankedAlphabet& sigma, uint32_t states, uint64_t seed) {
  Rng rng(seed);
  RandomNbtaOptions opts;
  opts.num_states = states;
  opts.rule_density = 0.3;
  opts.leaf_density = 0.5;
  return RandomNbta(sigma, rng, opts);
}

// The explicit pipeline the antichain path replaces: complement B (subset
// construction), intersect with A, search the product for a witness.
Result<NbtaInclusionResult> ExplicitIncluded(const Nbta& a, const Nbta& b,
                                             const RankedAlphabet& sigma,
                                             TaOpContext* ctx) {
  NbtaIndex idx_b(b, ctx);
  PEBBLETC_ASSIGN_OR_RETURN(Nbta comp, ComplementNbta(idx_b, sigma, ctx));
  Nbta bad = IntersectNbta(NbtaIndex(a, ctx), NbtaIndex(comp, ctx), ctx);
  NbtaInclusionResult r;
  std::optional<BinaryTree> w = WitnessTree(NbtaIndex(bad, ctx), ctx);
  r.included = !w.has_value();
  r.counterexample = std::move(w);
  return r;
}

void ReportInclusionCounters(benchmark::State& state, const TaOpContext& ctx,
                             bool included) {
  state.counters["included"] = included ? 1 : 0;
  state.counters["pairs_interned"] =
      static_cast<double>(ctx.counters.incl_pairs_interned);
  state.counters["pairs_pruned"] =
      static_cast<double>(ctx.counters.incl_pairs_pruned);
  state.counters["det_states"] =
      static_cast<double>(ctx.counters.states_materialized);
}

// --------------------------------------------------- dense (refuted) -------

void BM_InclusionDenseExplicit(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Nbta a = DrawDense(sigma, n, 13);
  Nbta b = DrawDense(sigma, n, 14);
  TaOpContext last;
  bool included = false;
  for (auto _ : state) {
    TaOpContext ctx;
    auto r = ExplicitIncluded(a, b, sigma, &ctx);
    PEBBLETC_CHECK(r.ok()) << r.status().ToString();
    included = r->included;
    benchmark::DoNotOptimize(r);
    last = ctx;
  }
  ReportInclusionCounters(state, last, included);
}
// Capped at 8 input states — tighter than the E13 dense determinize series
// (10), because this path additionally pays the complement's completion
// table (4 · det² rules) AND the A × ¬B product before the witness scan;
// at 10 that product no longer fits in memory.
BENCHMARK(BM_InclusionDenseExplicit)->Arg(4)->Arg(6)->Arg(8);

void BM_InclusionDenseAntichain(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Nbta a = DrawDense(sigma, n, 13);
  Nbta b = DrawDense(sigma, n, 14);
  NbtaIndex idx_a(a);
  NbtaIndex idx_b(b);
  TaOpContext last;
  bool included = false;
  for (auto _ : state) {
    TaOpContext ctx;
    auto r = NbtaIncludedIn(idx_a, idx_b, sigma, &ctx);
    PEBBLETC_CHECK(r.ok()) << r.status().ToString();
    included = r->included;
    benchmark::DoNotOptimize(r);
    last = ctx;
  }
  ReportInclusionCounters(state, last, included);
}
BENCHMARK(BM_InclusionDenseAntichain)->Arg(4)->Arg(6)->Arg(8);

// --------------------------------------------------- dense (holds) ---------

// A := A0 ∩ B makes the inclusion hold by construction: the antichain search
// must drain its entire frontier instead of stopping at the first bad pair.
std::pair<Nbta, Nbta> HoldsPair(const RankedAlphabet& sigma, uint32_t n) {
  Nbta a0 = DrawDense(sigma, n, 13);
  Nbta b = DrawDense(sigma, n, 14);
  Nbta a = IntersectNbta(NbtaIndex(a0), NbtaIndex(b));
  return {std::move(a), std::move(b)};
}

void BM_InclusionHoldsExplicit(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  auto [a, b] = HoldsPair(sigma, static_cast<uint32_t>(state.range(0)));
  TaOpContext last;
  bool included = false;
  for (auto _ : state) {
    TaOpContext ctx;
    auto r = ExplicitIncluded(a, b, sigma, &ctx);
    PEBBLETC_CHECK(r.ok()) << r.status().ToString();
    PEBBLETC_CHECK(r->included);
    included = r->included;
    benchmark::DoNotOptimize(r);
    last = ctx;
  }
  ReportInclusionCounters(state, last, included);
}
// Capped at 8: the intersection A already carries quadratically many rules,
// and at 10 the explicit side's product A × ¬B no longer fits in memory —
// the antichain column keeps going (see the blowup series for that story).
BENCHMARK(BM_InclusionHoldsExplicit)->Arg(4)->Arg(6)->Arg(8);

void BM_InclusionHoldsAntichain(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  auto [a, b] = HoldsPair(sigma, static_cast<uint32_t>(state.range(0)));
  NbtaIndex idx_a(a);
  NbtaIndex idx_b(b);
  TaOpContext last;
  bool included = false;
  for (auto _ : state) {
    TaOpContext ctx;
    auto r = NbtaIncludedIn(idx_a, idx_b, sigma, &ctx);
    PEBBLETC_CHECK(r.ok()) << r.status().ToString();
    PEBBLETC_CHECK(r->included);
    included = r->included;
    benchmark::DoNotOptimize(r);
    last = ctx;
  }
  ReportInclusionCounters(state, last, included);
}
BENCHMARK(BM_InclusionHoldsAntichain)->Arg(4)->Arg(6)->Arg(8);

// --------------------------------------------------- blowup ----------------

// Wide dense B: the subset construction of ¬B wants far more than the
// budget (dense automata keep most of the 2^n subsets reachable, E13), so
// the explicit pipeline exhausts at every size here — by state budget or by
// deadline, whichever lands first. The antichain search answers the same
// query from the pairs actually reached, under the identical caps.
constexpr size_t kBlowupDetBudget = 50000;
constexpr int64_t kBlowupDeadlineMs = 2000;

TaOpContext BlowupCtx() {
  TaOpContext ctx;
  ctx.budgets.max_det_states = kBlowupDetBudget;
  ctx.budgets.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(kBlowupDeadlineMs);
  return ctx;
}

void BM_InclusionBlowupExplicit(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Nbta a = DrawDense(sigma, 6, 13);
  Nbta b = DrawDense(sigma, n, 14);
  TaOpContext last;
  bool solved = false;
  for (auto _ : state) {
    TaOpContext ctx = BlowupCtx();
    auto r = ExplicitIncluded(a, b, sigma, &ctx);
    // The family exists because this path cannot finish: anything but an
    // exhaustion is a bug in the family, not a measurement.
    PEBBLETC_CHECK(!r.ok() &&
                   (r.status().code() == StatusCode::kResourceExhausted ||
                    r.status().code() == StatusCode::kDeadlineExceeded))
        << (r.ok() ? "unexpectedly solved" : r.status().ToString());
    solved = r.ok();
    benchmark::DoNotOptimize(r);
    last = ctx;
  }
  state.counters["solved"] = solved ? 1 : 0;
  state.counters["det_states"] =
      static_cast<double>(last.counters.states_materialized);
}
BENCHMARK(BM_InclusionBlowupExplicit)->Arg(14)->Arg(16)->Arg(18);

void BM_InclusionBlowupAntichain(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Nbta a = DrawDense(sigma, 6, 13);
  Nbta b = DrawDense(sigma, n, 14);
  NbtaIndex idx_a(a);
  NbtaIndex idx_b(b);
  TaOpContext last;
  bool included = false;
  for (auto _ : state) {
    TaOpContext ctx = BlowupCtx();  // same caps, for parity
    auto r = NbtaIncludedIn(idx_a, idx_b, sigma, &ctx);
    PEBBLETC_CHECK(r.ok()) << r.status().ToString();
    included = r->included;
    benchmark::DoNotOptimize(r);
    last = ctx;
  }
  state.counters["solved"] = 1;
  ReportInclusionCounters(state, last, included);
}
BENCHMARK(BM_InclusionBlowupAntichain)->Arg(14)->Arg(16)->Arg(18);

}  // namespace
}  // namespace pebbletc
