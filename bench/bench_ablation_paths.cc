// Ablation: four typechecking paths on the *same* instances — the paper's
// Theorem 4.7 MSO pipeline, the 1-pebble behavior composition (this
// library's extension), the downward subset construction (for machines in
// that fragment), and the antichain bounded-refutation engine
// (docs/INCLUSION.md), which answers the question the first three build an
// automaton for without constructing anything. Same verdicts, wildly
// different costs: the ladder the typechecker's escalation is built on.

#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/core/downward.h"
#include "src/core/typechecker.h"
#include "src/pa/behavior.h"
#include "src/pa/product.h"
#include "src/pa/to_mso.h"
#include "src/pt/paper_machines.h"
#include "src/ta/convert.h"
#include "src/ta/nbta.h"

namespace pebbletc {
namespace {

RankedAlphabet SmallRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddLeaf("m");
  (void)sigma.AddBinary("n");
  return sigma;
}

// Shared instance: copy transducer × complement("all leaves are l") — the
// product pebble automaton accepting {t | T(t) ⊄ τ2} = {t | t has an m
// leaf}, a non-trivial language all three paths must reproduce.
struct Instance {
  RankedAlphabet sigma;
  PebbleTransducer copy;
  Nbta tau2;
  PebbleAutomaton product;

  Instance()
      : sigma(SmallRanked()),
        copy(MakeCopyTransducer(sigma)),
        product(1, 3) {
    tau2.num_symbols = 3;
    StateId q = tau2.AddState();
    tau2.accepting[q] = true;
    tau2.AddLeafRule(sigma.Find("l"), q);
    tau2.AddRule(sigma.Find("n"), q, q, q);
    auto not_tau2 = std::move(ComplementNbta(tau2, sigma)).ValueOrDie();
    product = std::move(TransducerTimesTopDown(
                            copy, NbtaToTopDown(TrimNbta(not_tau2))))
                  .ValueOrDie();
  }
};

void BM_PathMso(benchmark::State& state) {
  static const Instance* inst = new Instance();
  size_t states = 0;
  for (auto _ : state) {
    auto nbta = PebbleAutomatonToNbta(inst->product, inst->sigma);
    PEBBLETC_CHECK(nbta.ok()) << nbta.status().ToString();
    states = nbta->num_states;
    benchmark::DoNotOptimize(nbta);
  }
  state.counters["product_states"] =
      static_cast<double>(inst->product.num_states());
  state.counters["result_states"] = static_cast<double>(states);
}
BENCHMARK(BM_PathMso)->Unit(benchmark::kMillisecond);

void BM_PathBehavior(benchmark::State& state) {
  static const Instance* inst = new Instance();
  size_t states = 0;
  for (auto _ : state) {
    auto nbta = OnePebbleToNbtaByBehavior(inst->product, inst->sigma);
    PEBBLETC_CHECK(nbta.ok()) << nbta.status().ToString();
    states = nbta->num_states;
    benchmark::DoNotOptimize(nbta);
  }
  state.counters["result_states"] = static_cast<double>(states);
}
BENCHMARK(BM_PathBehavior)->Unit(benchmark::kMicrosecond);

void BM_PathDownward(benchmark::State& state) {
  static const Instance* inst = new Instance();
  auto not_tau2 =
      std::move(ComplementNbta(inst->tau2, inst->sigma)).ValueOrDie();
  auto d = std::move(DeterminizeNbta(TrimNbta(not_tau2), inst->sigma))
               .ValueOrDie();
  size_t states = 0;
  for (auto _ : state) {
    auto nbta = DownwardProductAutomaton(inst->copy, d, inst->sigma);
    PEBBLETC_CHECK(nbta.ok());
    states = nbta->num_states;
    benchmark::DoNotOptimize(nbta);
  }
  state.counters["result_states"] = static_cast<double>(states);
}
BENCHMARK(BM_PathDownward)->Unit(benchmark::kMicrosecond);

void BM_PathAntichain(benchmark::State& state) {
  // Fourth path: no bad-inputs automaton at all. The bounded-refutation
  // pass with the antichain engine (docs/INCLUSION.md) decides the question
  // the other three paths build an automaton for — "is some τ1 input mapped
  // outside τ2?" — and exhibits a concrete witness. Complete-decision and
  // the downward fast path are disabled so the timing isolates pass 1.
  static const Instance* inst = new Instance();
  Typechecker tc(inst->copy, inst->sigma, inst->sigma);
  Nbta tau1;  // universal τ1: every tree over the shared alphabet
  tau1.num_symbols = 3;
  StateId u = tau1.AddState();
  tau1.accepting[u] = true;
  tau1.AddLeafRule(inst->sigma.Find("l"), u);
  tau1.AddLeafRule(inst->sigma.Find("m"), u);
  tau1.AddRule(inst->sigma.Find("n"), u, u, u);
  TypecheckOptions opts;
  opts.inclusion = TaInclusionPath::kAntichain;
  opts.run_complete_decision = false;
  bool refuted = false;
  for (auto _ : state) {
    auto r = tc.Typecheck(tau1, inst->tau2, opts);
    PEBBLETC_CHECK(r.ok()) << r.status().ToString();
    refuted = r->verdict == TypecheckVerdict::kCounterexample;
    PEBBLETC_CHECK(refuted);
    benchmark::DoNotOptimize(r);
  }
  state.counters["found_counterexample"] = refuted ? 1 : 0;
}
BENCHMARK(BM_PathAntichain)->Unit(benchmark::kMicrosecond);

void BM_PathsAgree(benchmark::State& state) {
  // Not a timing series: asserts once per run that the three
  // automaton-building paths produce language-equivalent automata and that
  // the antichain path's verdict matches their (non-)emptiness, then
  // reports 1.
  static const Instance* inst = new Instance();
  bool agree = false;
  for (auto _ : state) {
    auto by_mso =
        std::move(PebbleAutomatonToNbta(inst->product, inst->sigma))
            .ValueOrDie();
    auto by_behavior =
        std::move(OnePebbleToNbtaByBehavior(inst->product, inst->sigma))
            .ValueOrDie();
    auto not_tau2 =
        std::move(ComplementNbta(inst->tau2, inst->sigma)).ValueOrDie();
    auto d = std::move(DeterminizeNbta(TrimNbta(not_tau2), inst->sigma))
                 .ValueOrDie();
    auto by_down =
        std::move(DownwardProductAutomaton(inst->copy, d, inst->sigma))
            .ValueOrDie();
    agree =
        std::move(NbtaEquivalent(by_mso, by_behavior, inst->sigma))
            .ValueOrDie() &&
        std::move(NbtaEquivalent(by_behavior, by_down, inst->sigma))
            .ValueOrDie();
    PEBBLETC_CHECK(agree);
    // Fourth path: the bad-inputs automaton is non-empty exactly when the
    // antichain bounded-refutation pass finds a counterexample.
    Typechecker tc(inst->copy, inst->sigma, inst->sigma);
    Nbta tau1;
    tau1.num_symbols = 3;
    StateId u = tau1.AddState();
    tau1.accepting[u] = true;
    tau1.AddLeafRule(inst->sigma.Find("l"), u);
    tau1.AddLeafRule(inst->sigma.Find("m"), u);
    tau1.AddRule(inst->sigma.Find("n"), u, u, u);
    TypecheckOptions opts;
    opts.inclusion = TaInclusionPath::kAntichain;
    opts.run_complete_decision = false;
    auto tcr = tc.Typecheck(tau1, inst->tau2, opts);
    PEBBLETC_CHECK(tcr.ok()) << tcr.status().ToString();
    const bool bad_inputs_exist = !IsEmptyNbta(TrimNbta(by_mso));
    agree = agree && (tcr->verdict == TypecheckVerdict::kCounterexample) ==
                         bad_inputs_exist;
    PEBBLETC_CHECK(agree);
    benchmark::DoNotOptimize(agree);
  }
  state.counters["all_four_agree"] = agree ? 1 : 0;
}
BENCHMARK(BM_PathsAgree)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pebbletc
