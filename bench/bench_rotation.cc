// E4 (Example 3.7 / Figure 2): the rotation transducer produces linear-size
// output (input + the two fresh nodes m, n) and runs in near-linear time on
// string-shaped (right-linear) inputs — including the string-reversal
// special case.

#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/pt/eval.h"
#include "src/pt/paper_machines.h"

namespace pebbletc {
namespace {

struct Fixture {
  RankedAlphabet sigma;
  RankedAlphabet out_sigma;
  RotationSymbols syms;

  Fixture() {
    (void)sigma.AddLeaf("e");
    (void)sigma.AddLeaf("s");
    (void)sigma.AddBinary("x");
    (void)sigma.AddBinary("r");
    out_sigma = sigma;
    syms.s_leaf = sigma.Find("s");
    syms.root_symbol = sigma.Find("r");
    syms.new_root = std::move(out_sigma.AddBinary("r2")).ValueOrDie();
    syms.m_leaf = std::move(out_sigma.AddLeaf("m")).ValueOrDie();
    syms.n_leaf = std::move(out_sigma.AddLeaf("n")).ValueOrDie();
  }
};

// r(e, x(e, x(e, ... x(e, s)))) — a length-n string ending in s.
BinaryTree RightComb(const Fixture& f, int n) {
  BinaryTree t;
  NodeId spine = t.AddLeaf(f.syms.s_leaf);
  for (int i = 0; i < n; ++i) {
    NodeId e = t.AddLeaf(f.sigma.Find("e"));
    spine = t.AddInternal(f.sigma.Find("x"), e, spine);
  }
  NodeId e = t.AddLeaf(f.sigma.Find("e"));
  t.SetRoot(t.AddInternal(f.sigma.Find("r"), e, spine));
  return t;
}

void BM_RotationStringReversal(benchmark::State& state) {
  Fixture f;
  auto t =
      std::move(MakeRotationTransducer(f.sigma, f.out_sigma, f.syms))
          .ValueOrDie();
  BinaryTree input = RightComb(f, static_cast<int>(state.range(0)));
  size_t out_size = 0;
  for (auto _ : state) {
    auto out = EvalDeterministic(t, input, 1u << 30);
    PEBBLETC_CHECK(out.ok());
    out_size = out->size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["input_nodes"] = static_cast<double>(input.size());
  state.counters["output_nodes"] = static_cast<double>(out_size);
  state.counters["linear_plus_two"] =
      (out_size == input.size() + 2) ? 1 : 0;
}
BENCHMARK(BM_RotationStringReversal)
    ->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_RotationMembershipViaDag(benchmark::State& state) {
  // Prop. 3.8 cross-check at benchmark scale: A_t accepts the direct output.
  Fixture f;
  auto t =
      std::move(MakeRotationTransducer(f.sigma, f.out_sigma, f.syms))
          .ValueOrDie();
  BinaryTree input = RightComb(f, static_cast<int>(state.range(0)));
  auto out = std::move(EvalDeterministic(t, input, 1u << 30)).ValueOrDie();
  for (auto _ : state) {
    auto member = OutputContains(t, input, out);
    PEBBLETC_CHECK(member.ok() && *member);
    benchmark::DoNotOptimize(member);
  }
  state.counters["input_nodes"] = static_cast<double>(input.size());
}
BENCHMARK(BM_RotationMembershipViaDag)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace pebbletc
