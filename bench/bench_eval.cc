// E2 (Proposition 3.8): building the output automaton A_t — the polynomial
// DAG of T(t) — costs O(n^k) configurations; membership t′ ∈ T(t) is PTIME.
// Series: configurations and wall time vs input size for a 1-pebble machine
// (copy) and a 3-pebble machine (a compiled selection query).

#include <benchmark/benchmark.h>

#include <string>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/pt/eval.h"
#include "src/pt/paper_machines.h"
#include "src/query/selection.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

void BM_OutputAutomatonCopy(benchmark::State& state) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Rng rng(7);
  BinaryTree input =
      RandomBinaryTree(sigma, rng, static_cast<size_t>(state.range(0)));
  size_t configs = 0;
  for (auto _ : state) {
    auto dag = BuildOutputAutomaton(copy, input);
    PEBBLETC_CHECK(dag.ok());
    configs = dag->num_configs;
    benchmark::DoNotOptimize(dag);
  }
  state.counters["input_nodes"] = static_cast<double>(input.size());
  state.counters["configs"] = static_cast<double>(configs);
  state.counters["configs_per_node"] =
      static_cast<double>(configs) / static_cast<double>(input.size());
}
BENCHMARK(BM_OutputAutomatonCopy)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_OutputAutomatonSelection(benchmark::State& state) {
  // A 1-variable selection query: 3 pebbles → O(n^2)-ish configurations.
  Alphabet tags;
  for (const char* n : {"r", "a", "b"}) tags.Intern(n);
  SelectionQuery q;
  q.pattern = std::move(ParsePattern("[r.(a|b)*.a]", &tags)).ValueOrDie();
  q.selected = 0;
  Alphabet out_tags;
  SelectionOutputTags ot = ExtendAlphabetForSelection(tags, &out_tags);
  auto in_enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out_tags)).ValueOrDie();
  auto t = std::move(CompileSelectionQuery(q, in_enc, out_enc, ot))
               .ValueOrDie();

  // Input: r with n children alternating a/b.
  std::string text = "r(";
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) text += (i ? (i % 2 ? ",a" : ",b") : "a");
  text += ")";
  auto doc = std::move(ParseUnrankedTerm(text, &tags)).ValueOrDie();
  auto input = std::move(EncodeTree(doc, in_enc)).ValueOrDie();

  size_t configs = 0;
  for (auto _ : state) {
    auto dag = BuildOutputAutomaton(t, input);
    PEBBLETC_CHECK(dag.ok());
    configs = dag->num_configs;
    benchmark::DoNotOptimize(dag);
  }
  state.counters["input_nodes"] = static_cast<double>(input.size());
  state.counters["configs"] = static_cast<double>(configs);
  state.counters["configs_per_node2"] =
      static_cast<double>(configs) /
      (static_cast<double>(input.size()) * static_cast<double>(input.size()));
}
BENCHMARK(BM_OutputAutomatonSelection)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Membership(benchmark::State& state) {
  // t′ ∈ T(t) via A_t (Prop. 3.8 decision problem).
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Rng rng(9);
  BinaryTree input =
      RandomBinaryTree(sigma, rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto member = OutputContains(copy, input, input);
    PEBBLETC_CHECK(member.ok() && *member);
    benchmark::DoNotOptimize(member);
  }
  state.counters["input_nodes"] = static_cast<double>(input.size());
}
BENCHMARK(BM_Membership)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace pebbletc
