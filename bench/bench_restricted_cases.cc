// E9 (Section 5, complexity of restricted cases): the downward fast path
// scales to realistic machines and DTDs — exponential (subset construction)
// rather than non-elementary. Series: complete typechecking time and subset
// counts for rename-style XSLT programs against DTD families of growing
// width.

#include <benchmark/benchmark.h>

#include <string>

#include "src/common/check.h"
#include "src/core/downward.h"
#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/query/xslt.h"
#include "src/tree/encode.h"

namespace pebbletc {
namespace {

// A rename program over `width` element kinds a0..a{w-1} → b0..b{w-1},
// each template copying structure recursively.
struct Family {
  Alphabet in_tags, out_tags;
  EncodedAlphabet in_enc, out_enc;
  PebbleTransducer t;
  Nbta tau1, tau2;

  explicit Family(int width) : t(1, 1, 1) {
    std::string program_text, in_dtd_text, out_dtd_text;
    std::string any_in, any_out;
    for (int i = 0; i < width; ++i) {
      if (i) {
        any_in += "|";
        any_out += "|";
      }
      any_in += "a" + std::to_string(i);
      any_out += "b" + std::to_string(i);
    }
    for (int i = 0; i < width; ++i) {
      program_text += "template a" + std::to_string(i) + " { b" +
                      std::to_string(i) + " { apply } }\n";
      in_dtd_text +=
          "a" + std::to_string(i) + " := (" + any_in + ")*\n";
      out_dtd_text +=
          "b" + std::to_string(i) + " := (" + any_out + ")*\n";
    }
    auto program =
        std::move(ParseXslt(program_text, &in_tags, &out_tags)).ValueOrDie();
    in_enc = std::move(MakeEncodedAlphabet(in_tags)).ValueOrDie();
    out_enc = std::move(MakeEncodedAlphabet(out_tags)).ValueOrDie();
    t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();
    PEBBLETC_CHECK(IsDownwardTransducer(t));
    auto in_dtd = std::move(ParseDtd(in_dtd_text)).ValueOrDie();
    tau1 = std::move(CompileDtdToNbta(in_dtd, in_enc)).ValueOrDie();
    auto out_dtd = std::move(ParseDtd(out_dtd_text)).ValueOrDie();
    tau2 = std::move(CompileDtdToNbta(out_dtd, out_enc)).ValueOrDie();
  }
};

void BM_DownwardTypecheckWidth(benchmark::State& state) {
  Family f(static_cast<int>(state.range(0)));
  Typechecker tc(f.t, f.in_enc.ranked, f.out_enc.ranked);
  TypecheckOptions opts;
  opts.refutation_max_trees = 0;
  TypecheckVerdict verdict = TypecheckVerdict::kInconclusive;
  for (auto _ : state) {
    auto r = tc.Typecheck(f.tau1, f.tau2, opts);
    PEBBLETC_CHECK(r.ok());
    verdict = r->verdict;
    benchmark::DoNotOptimize(r);
  }
  state.counters["dtd_elements"] = static_cast<double>(state.range(0));
  state.counters["transducer_states"] =
      static_cast<double>(f.t.num_states());
  state.counters["typechecks"] =
      verdict == TypecheckVerdict::kTypechecks ? 1 : 0;
}
BENCHMARK(BM_DownwardTypecheckWidth)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_DownwardSubsetConstruction(benchmark::State& state) {
  // The fast path's core: subset-automaton size vs machine/DTD width.
  Family f(static_cast<int>(state.range(0)));
  auto not_tau2 =
      std::move(ComplementNbta(f.tau2, f.out_enc.ranked)).ValueOrDie();
  auto d = std::move(DeterminizeNbta(TrimNbta(not_tau2), f.out_enc.ranked))
               .ValueOrDie();
  size_t product_states = 0;
  for (auto _ : state) {
    auto product = DownwardProductAutomaton(f.t, d, f.in_enc.ranked);
    PEBBLETC_CHECK(product.ok());
    product_states = product->num_states;
    benchmark::DoNotOptimize(product);
  }
  state.counters["dtd_elements"] = static_cast<double>(state.range(0));
  state.counters["dbta_states"] = static_cast<double>(d.num_states());
  state.counters["subset_states"] = static_cast<double>(product_states);
}
BENCHMARK(BM_DownwardSubsetConstruction)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pebbletc
