// E5 (Example 4.2): inverse type inference. The Q1-style pair query maps
// a^n to n² items — not a regular image — yet the inverse of the output
// type "(item.item)*" is the regular (a.a)*. Series: (a) per-input exact
// conformance checks across n (even n conform, odd n violate), (b) the
// complete MSO inverse-inference pipeline on a small machine.

#include <benchmark/benchmark.h>

#include <string>

#include "src/common/check.h"
#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/pt/paper_machines.h"
#include "src/query/selection.h"
#include "src/tree/encode.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

struct Q1Fixture {
  Alphabet in_tags;
  Alphabet out_tags;
  SelectionOutputTags tags;
  EncodedAlphabet in_enc;
  EncodedAlphabet out_enc;
  PebbleTransducer t;
  Nbta tau2;

  Q1Fixture() : t(1, 1, 1), tau2() {
    in_tags.Intern("root");
    in_tags.Intern("a");
    SelectionQuery q1;
    q1.pattern = std::move(ParsePattern("[root]([root.a],[root.a])",
                                        &in_tags))
                     .ValueOrDie();
    q1.selected = 1;
    tags = ExtendAlphabetForSelection(in_tags, &out_tags);
    in_enc = std::move(MakeEncodedAlphabet(in_tags)).ValueOrDie();
    out_enc = std::move(MakeEncodedAlphabet(out_tags)).ValueOrDie();
    t = std::move(CompileSelectionQuery(q1, in_enc, out_enc, tags))
            .ValueOrDie();

    // τ2: an even number of items.
    auto dtd = std::move(ParseDtd("result := (item.item)*.end\n"
                                  "item := a\na := ()\nend := ()"))
                   .ValueOrDie();
    auto dtd_enc = std::move(MakeEncodedAlphabet(dtd.tags())).ValueOrDie();
    auto raw = std::move(CompileDtdToNbta(dtd, dtd_enc)).ValueOrDie();
    std::vector<SymbolId> map(dtd_enc.ranked.size());
    for (SymbolId s = 0; s < dtd_enc.ranked.size(); ++s) {
      map[s] = out_enc.ranked.Find(dtd_enc.ranked.Name(s));
      PEBBLETC_CHECK(map[s] != kNoSymbol);
    }
    tau2 = RelabelNbta(raw, map,
                       static_cast<uint32_t>(out_enc.ranked.size()));
  }

  BinaryTree Input(int n) const {
    std::string text = "root";
    if (n > 0) {
      text += "(a";
      for (int i = 1; i < n; ++i) text += ",a";
      text += ")";
    }
    Alphabet copy = in_tags;
    auto doc = std::move(ParseUnrankedTerm(text, &copy)).ValueOrDie();
    return std::move(EncodeTree(doc, in_enc)).ValueOrDie();
  }
};

void BM_Q1PerInputCheck(benchmark::State& state) {
  static const Q1Fixture* fixture = new Q1Fixture();
  const int n = static_cast<int>(state.range(0));
  BinaryTree input = fixture->Input(n);
  Typechecker tc(fixture->t, fixture->in_enc.ranked,
                 fixture->out_enc.ranked);
  bool conforms = false;
  for (auto _ : state) {
    auto ok = tc.CheckOnInput(input, fixture->tau2);
    PEBBLETC_CHECK(ok.ok());
    conforms = *ok;
    benchmark::DoNotOptimize(ok);
  }
  state.counters["n"] = n;
  state.counters["items"] = n * n;
  state.counters["conforms"] = conforms ? 1 : 0;
  // The paper's claim: conforms ⟺ n even (inverse type (a.a)*).
  state.counters["matches_inverse_type_claim"] =
      (conforms == (n % 2 == 0)) ? 1 : 0;
}
BENCHMARK(BM_Q1PerInputCheck)->DenseRange(0, 6, 1);

void BM_CompleteInverseInference(benchmark::State& state) {
  // The full complete pipeline (Prop. 4.6 product + regularization — the
  // typechecker picks behavior composition here since the product is a
  // 1-pebble machine) on the identity transducer over a 2-symbol alphabet;
  // the inferred inverse must equal τ2 itself.
  RankedAlphabet micro;
  (void)micro.AddLeaf("l");
  (void)micro.AddBinary("n");
  PebbleTransducer copy = MakeCopyTransducer(micro);
  Nbta tau2;
  tau2.num_symbols = 2;
  StateId any = tau2.AddState();
  StateId top = tau2.AddState();
  tau2.accepting[top] = true;
  tau2.AddLeafRule(0, any);
  tau2.AddRule(1, any, any, any);
  tau2.AddRule(1, any, any, top);
  Typechecker tc(copy, micro, micro);
  size_t inferred_states = 0;
  for (auto _ : state) {
    auto inverse = tc.InferInverseType(tau2);
    PEBBLETC_CHECK(inverse.ok());
    inferred_states = inverse->num_states;
    benchmark::DoNotOptimize(inverse);
  }
  auto inverse = std::move(tc.InferInverseType(tau2)).ValueOrDie();
  state.counters["inferred_states"] = static_cast<double>(inferred_states);
  state.counters["inverse_equals_tau2"] =
      std::move(NbtaEquivalent(inverse, tau2, micro)).ValueOrDie() ? 1 : 0;
}
BENCHMARK(BM_CompleteInverseInference)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pebbletc
