// E13 (docs/DIFFCHECK.md): cost of the differential oracle. Two series:
// the overhead of each naive reference op (src/check/reference_ops.h)
// relative to its optimized twin (src/ta/nbta.h) — the price of having an
// independent oracle at all — and the end-to-end per-iteration cost of the
// diffcheck harness, which sets the iteration budget the CI sweeps can
// afford.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "src/check/diffcheck.h"
#include "src/check/reference_ops.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/random_ta.h"
#include "src/tree/random_tree.h"

namespace pebbletc {
namespace {

// The harness alphabet (a0, b0, a2, b2) and a reproducible automaton of
// state.range(0) states, dense enough that products and subset
// constructions do real work.
Nbta DrawNbta(const RankedAlphabet& sigma, uint64_t seed, uint32_t states) {
  Rng rng(seed);
  RandomNbtaOptions opts;
  opts.num_states = states;
  opts.rule_density = 0.3;
  opts.leaf_density = 0.5;
  return RandomNbta(sigma, rng, opts);
}

void BM_MembershipOptimized(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawNbta(sigma, 11, static_cast<uint32_t>(state.range(0)));
  NbtaIndex idx(a);
  Rng rng(12);
  BinaryTree t = RandomBinaryTree(sigma, rng, 63);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NbtaAccepts(idx, t));
  }
}
BENCHMARK(BM_MembershipOptimized)->Arg(4)->Arg(8)->Arg(16);

void BM_MembershipReference(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawNbta(sigma, 11, static_cast<uint32_t>(state.range(0)));
  Rng rng(12);
  BinaryTree t = RandomBinaryTree(sigma, rng, 63);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RefAccepts(a, t));
  }
}
BENCHMARK(BM_MembershipReference)->Arg(4)->Arg(8)->Arg(16);

void BM_DeterminizeOptimized(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawNbta(sigma, 13, static_cast<uint32_t>(state.range(0)));
  size_t det_states = 0;
  for (auto _ : state) {
    auto det = DeterminizeNbta(a, sigma);
    PEBBLETC_CHECK(det.ok());
    det_states = det->num_states();
    benchmark::DoNotOptimize(det);
  }
  state.counters["det_states"] = static_cast<double>(det_states);
}
BENCHMARK(BM_DeterminizeOptimized)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_DeterminizeReference(benchmark::State& state) {
  // The reference explores all 2^n subsets, so it is capped at 10 states
  // (kRefMaxDeterminizeStates); the optimized op only materializes
  // reachable subsets.
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawNbta(sigma, 13, static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto det = RefDeterminize(a, sigma);
    PEBBLETC_CHECK(det.ok());
    benchmark::DoNotOptimize(det);
  }
}
BENCHMARK(BM_DeterminizeReference)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_IntersectOptimized(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawNbta(sigma, 17, static_cast<uint32_t>(state.range(0)));
  Nbta b = DrawNbta(sigma, 18, static_cast<uint32_t>(state.range(0)));
  size_t prod_states = 0;
  for (auto _ : state) {
    Nbta prod = IntersectNbta(a, b);
    prod_states = prod.num_states;
    benchmark::DoNotOptimize(prod);
  }
  // The optimized product only materializes inhabited pairs.
  state.counters["prod_states"] = static_cast<double>(prod_states);
}
BENCHMARK(BM_IntersectOptimized)->Arg(4)->Arg(8)->Arg(16);

void BM_IntersectReference(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawNbta(sigma, 17, static_cast<uint32_t>(state.range(0)));
  Nbta b = DrawNbta(sigma, 18, static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    Nbta prod = RefIntersect(a, b);
    benchmark::DoNotOptimize(prod);
  }
}
BENCHMARK(BM_IntersectReference)->Arg(4)->Arg(8)->Arg(16);

void BM_CountOptimized(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawNbta(sigma, 19, 6);
  const size_t nodes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountAcceptedTrees(a, nodes));
  }
}
BENCHMARK(BM_CountOptimized)->Arg(9)->Arg(17)->Arg(33);

void BM_CountReference(benchmark::State& state) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/false);
  Nbta a = DrawNbta(sigma, 19, 6);
  const size_t nodes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RefCountAcceptedTrees(a, nodes));
  }
}
BENCHMARK(BM_CountReference)->Arg(9)->Arg(17)->Arg(33);

// End-to-end harness iterations per second: the number CI sweep sizing is
// based on. One benchmark iteration = `per_batch` diffcheck iterations with
// the default law cadences.
void BM_DiffcheckIteration(benchmark::State& state) {
  const size_t per_batch = 8;
  size_t start = 0;
  size_t comparisons = 0;
  for (auto _ : state) {
    DiffcheckOptions opts;
    opts.seed = 20260806;
    opts.start = start;
    opts.iters = per_batch;
    DiffcheckReport report = RunDiffcheck(opts);
    PEBBLETC_CHECK(report.ok());
    comparisons += report.comparisons;
    start += per_batch;  // fresh instances every batch, still reproducible
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * per_batch));
  state.counters["comparisons_per_iter"] =
      static_cast<double>(comparisons) /
      static_cast<double>(state.iterations() * per_batch);
}
BENCHMARK(BM_DiffcheckIteration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pebbletc
