// E8 (Theorem 4.8): the number of pebbles is the dominating cost of
// typechecking — the complete pipeline blows up hyperexponentially in k.
// We run the *same* tiny machine family at k = 1, 2, 3 pebbles: each level
// adds one place-pebble round, which nests another ∀S-block (and its
// complementations) in the Theorem 4.7 formula. Budget exhaustion is
// reported as saturation rather than an error.

#include <benchmark/benchmark.h>

#include "src/common/check.h"
#include "src/mso/compile.h"
#include "src/pa/automaton.h"
#include "src/pa/to_mso.h"

namespace pebbletc {
namespace {

RankedAlphabet MicroRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  return sigma;
}

// k nested pebble rounds: place pebbles 1..k (each walking one step left
// when possible), then accept on an l-leaf under the last pebble.
PebbleAutomaton NestedPlaceFamily(const RankedAlphabet& sigma, uint32_t k) {
  PebbleAutomaton a(k, static_cast<uint32_t>(sigma.size()));
  using M = PebbleAutomaton::MoveKind;
  StateId prev = a.AddState(1);
  a.SetStart(prev);
  for (uint32_t level = 1; level < k; ++level) {
    StateId next = a.AddState(level + 1);
    a.AddMove({}, prev, M::kPlacePebble, next);
    prev = next;
  }
  StateId walked = a.AddState(k);
  a.AddMove({.symbol = sigma.Find("n")}, prev, M::kDownLeft, walked);
  a.AddAccept({.symbol = sigma.Find("l")}, prev);
  a.AddAccept({.symbol = sigma.Find("l")}, walked);
  return a;
}

void BM_BlowupInK(benchmark::State& state) {
  RankedAlphabet sigma = MicroRanked();
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  PebbleAutomaton a = NestedPlaceFamily(sigma, k);
  MsoCompileStats stats;
  MsoCompileOptions opts;
  opts.stats = &stats;
  opts.max_det_states = 40000;
  bool saturated = false;
  size_t result_states = 0;
  for (auto _ : state) {
    stats = MsoCompileStats();
    auto nbta = PebbleAutomatonToNbta(a, sigma, opts);
    if (!nbta.ok()) {
      PEBBLETC_CHECK(nbta.status().code() == StatusCode::kResourceExhausted)
          << nbta.status().ToString();
      saturated = true;
    } else {
      result_states = nbta->num_states;
    }
    benchmark::DoNotOptimize(nbta);
  }
  state.counters["k"] = k;
  state.counters["pa_states"] = static_cast<double>(a.num_states());
  state.counters["mso_tracks"] =
      static_cast<double>(a.num_states() + 3 * k);
  state.counters["complementations"] =
      static_cast<double>(stats.complementations);
  state.counters["max_intermediate_states"] =
      static_cast<double>(stats.max_intermediate_states);
  state.counters["budget_saturated"] = saturated ? 1 : 0;
  state.counters["result_states"] = static_cast<double>(result_states);
}
BENCHMARK(BM_BlowupInK)->DenseRange(1, 3, 1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pebbletc
