// pebbletc_serve — the typecheck-as-a-service daemon (docs/SERVING.md).
//
// Serves validate / typecheck / infer-inverse-type requests over a
// Unix-domain socket speaking the length-prefixed wire protocol of
// src/serve/protocol.h, against a registry of named artifacts loaded from a
// directory at startup (`.dtd`, `.xslt`, `.ptar` files, named by file stem)
// and optionally extended at runtime via the kLoadArtifact op.
//
//   pebbletc_serve --socket=/tmp/pebbletc.sock --artifacts=DIR
//                  [--validity=off|basic|full] [--max-in-flight=N]
//                  [--max-queued=N] [--default-deadline-ms=N]
//                  [--max-det-states=N] [--no-load] [--memo=off|memory]
//
// The process exits 0 on SIGINT/SIGTERM after draining, non-zero on a
// startup failure (bad flag, unloadable artifact directory, bind failure).
// Every post-startup failure mode is a structured wire response; a client
// can crash, flood, disconnect mid-request, or send garbage without taking
// the daemon down — that is the contract the `serve`-labelled tests and the
// fault-injection soak pin down.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/serve/registry.h"
#include "src/serve/server.h"
#include "src/serve/socket_server.h"
#include "src/serve/validity.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

bool ParseU32(const char* text, uint32_t* out) {
  char* end = nullptr;
  unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || v > 0xffffffffUL) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket=PATH --artifacts=DIR [options]\n"
      "  --validity=off|basic|full   trust-boundary tier (default full)\n"
      "  --max-in-flight=N           concurrent heavy requests (default 4)\n"
      "  --max-queued=N              admission wait-queue depth (default 8)\n"
      "  --default-deadline-ms=N     deadline when a request sends none\n"
      "  --max-deadline-ms=N         hard per-request deadline ceiling\n"
      "  --max-det-states=N          determinization budget per request\n"
      "  --max-antichain-pairs=N     antichain-inclusion budget per request\n"
      "  --max-frame-bytes=N         wire frame cap (default 4 MiB; rejected\n"
      "                              outside the supported window, never\n"
      "                              clamped)\n"
      "  --max-batch-docs=N          documents per kValidateBatch request\n"
      "  --inclusion=explicit|antichain|auto\n"
      "                              inclusion engine (default explicit;\n"
      "                              auto picks antichain for DTD-shaped\n"
      "                              output schemas, see docs/INCLUSION.md)\n"
      "  --memo=off|memory           op-cache mode (default memory)\n"
      "  --no-load                   disable the kLoadArtifact wire op\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pebbletc;
  using namespace pebbletc::serve;

  std::string socket_path;
  std::string artifacts_dir;
  ServeOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--socket=")) {
      socket_path = v;
    } else if (const char* v = value("--artifacts=")) {
      artifacts_dir = v;
    } else if (const char* v = value("--validity=")) {
      if (std::strcmp(v, "off") == 0) {
        options.validity.level = ValidityLevel::kOff;
      } else if (std::strcmp(v, "basic") == 0) {
        options.validity.level = ValidityLevel::kBasic;
      } else if (std::strcmp(v, "full") == 0) {
        options.validity.level = ValidityLevel::kFull;
      } else {
        return Usage(argv[0]);
      }
    } else if (const char* v = value("--max-in-flight=")) {
      if (!ParseU32(v, &options.max_in_flight)) return Usage(argv[0]);
    } else if (const char* v = value("--max-queued=")) {
      if (!ParseU32(v, &options.max_queued)) return Usage(argv[0]);
    } else if (const char* v = value("--default-deadline-ms=")) {
      if (!ParseU32(v, &options.default_deadline_ms)) return Usage(argv[0]);
    } else if (const char* v = value("--max-deadline-ms=")) {
      if (!ParseU32(v, &options.validity.max_deadline_ms)) {
        return Usage(argv[0]);
      }
    } else if (const char* v = value("--max-det-states=")) {
      uint32_t n = 0;
      if (!ParseU32(v, &n)) return Usage(argv[0]);
      options.max_det_states = n;
    } else if (const char* v = value("--max-antichain-pairs=")) {
      uint32_t n = 0;
      if (!ParseU32(v, &n)) return Usage(argv[0]);
      options.max_antichain_pairs = n;
    } else if (const char* v = value("--max-frame-bytes=")) {
      if (!ParseU32(v, &options.max_frame_bytes)) return Usage(argv[0]);
    } else if (const char* v = value("--max-batch-docs=")) {
      if (!ParseU32(v, &options.validity.max_batch_docs)) {
        return Usage(argv[0]);
      }
    } else if (const char* v = value("--inclusion=")) {
      if (std::strcmp(v, "explicit") == 0) {
        options.inclusion = TaInclusionPath::kExplicit;
      } else if (std::strcmp(v, "antichain") == 0) {
        options.inclusion = TaInclusionPath::kAntichain;
      } else if (std::strcmp(v, "auto") == 0) {
        options.inclusion = TaInclusionPath::kAuto;
      } else {
        return Usage(argv[0]);
      }
    } else if (const char* v = value("--memo=")) {
      if (std::strcmp(v, "off") == 0) {
        options.memo = TaMemoMode::kOff;
      } else if (std::strcmp(v, "memory") == 0) {
        options.memo = TaMemoMode::kInMemory;
      } else {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--no-load") == 0) {
      options.allow_load = false;
    } else {
      return Usage(argv[0]);
    }
  }
  if (socket_path.empty() || artifacts_dir.empty()) return Usage(argv[0]);

  // Reject — never clamp — unsupported configuration before binding.
  Status config = ValidateServeOptions(options);
  if (!config.ok()) {
    std::fprintf(stderr, "pebbletc_serve: %s\n", config.ToString().c_str());
    return 2;
  }

  ServerCore core(options);
  Result<size_t> loaded = core.registry().LoadDirectory(artifacts_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "pebbletc_serve: cannot load artifacts: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "pebbletc_serve: loaded %zu artifact(s) from %s\n",
               *loaded, artifacts_dir.c_str());
  for (const auto& [name, kind] : core.registry().List()) {
    std::fprintf(stderr, "  %-20s %s\n", name.c_str(),
                 RegistryKindName(kind));
  }

  SocketServer server(&core);
  Status started = server.Start(socket_path);
  if (!started.ok()) {
    std::fprintf(stderr, "pebbletc_serve: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "pebbletc_serve: listening on %s\n",
               socket_path.c_str());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) sigsuspend(&mask);

  std::fprintf(stderr, "pebbletc_serve: shutting down\n");
  server.Stop();
  StatsResponse stats = core.SnapshotStats();
  std::fprintf(stderr,
               "pebbletc_serve: served %llu request(s): %llu ok, "
               "%llu malformed, %llu invalid, %llu shed, %llu degraded, "
               "%llu hard error(s)\n",
               static_cast<unsigned long long>(stats.requests_total),
               static_cast<unsigned long long>(stats.responses_ok),
               static_cast<unsigned long long>(stats.malformed_rejected),
               static_cast<unsigned long long>(stats.validation_rejected),
               static_cast<unsigned long long>(stats.overload_rejected),
               static_cast<unsigned long long>(stats.degraded_verdicts),
               static_cast<unsigned long long>(stats.hard_errors));
  return 0;
}
