// ta_diffcheck: differential / metamorphic oracle CLI for the tree-automaton
// algebra. Runs the law catalogue in src/check/diffcheck.h over seeded random
// automata and trees, shrinks any failing witness, and prints a ready-to-
// paste regression test body.
//
//   ta_diffcheck --seed=123 --iters=5000
//   ta_diffcheck --seed=123 --start=417 --iters=1   # replay one failure
//
// Exit status: 0 when every law held, 1 on any violation, 2 on usage errors.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/check/diffcheck.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ta_diffcheck [options]\n"
               "  --seed=N            base RNG seed (default %llu)\n"
               "  --start=N           first iteration index (default 0)\n"
               "  --iters=N           iterations to run (default 1000)\n"
               "  --max_depth=N       sampled trees reach 2^N - 1 internal "
               "nodes (default 3)\n"
               "  --max_nodes=N       exhaustive tree enumeration bound "
               "(default 5)\n"
               "  --samples=N         random trees per iteration (default 8)\n"
               "  --max_failures=N    stop after N failures (default 5)\n"
               "  --typecheck_every=N typechecker law cadence, 0=off "
               "(default 8)\n"
               "  --infer_every=N     inverse-inference law cadence, 0=off "
               "(default 0)\n"
               "  --typecheck_deadline_ms=N  per-call typechecker deadline, "
               "0=none (default 10000)\n"
               "  --demorgan_every=N  heavy complement-of-product cadence, "
               "0=off (default 4)\n"
               "  --max_det_states=N  determinization budget (default 50000)\n"
               "  --threads=N         sweep workers; 0=hardware concurrency "
               "(default 1). Iterations stay deterministic in (seed, "
               "iteration), so failures replay with --threads=1\n"
               "  --memo              run the cached-vs-cold laws for the "
               "content-addressed op cache (docs/CACHING.md)\n"
               "  --memo_dir=PATH     persistent cache directory for the memo "
               "laws (exercises the binary write-through)\n"
               "  --memo_mb=N         memo cache capacity in MiB "
               "(default 64)\n"
               "  --no-shrink         report unshrunk witnesses\n",
               static_cast<unsigned long long>(
                   pebbletc::DiffcheckOptions{}.seed));
}

bool ParseU64(const char* arg, const char* name, uint64_t* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  *out = std::strtoull(arg + len + 1, &end, 0);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  pebbletc::DiffcheckOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t v = 0;
    if (ParseU64(arg, "--seed", &opts.seed)) {
    } else if (ParseU64(arg, "--start", &v)) {
      opts.start = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--iters", &v)) {
      opts.iters = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--max_depth", &v)) {
      opts.max_depth = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--max_nodes", &v)) {
      opts.exhaustive_max_nodes = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--samples", &v)) {
      opts.samples_per_iter = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--max_failures", &v)) {
      opts.max_failures = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--typecheck_every", &v)) {
      opts.typecheck_every = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--infer_every", &v)) {
      opts.infer_every = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--typecheck_deadline_ms", &v)) {
      opts.typecheck_deadline_ms = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--demorgan_every", &v)) {
      opts.demorgan_every = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--max_det_states", &v)) {
      opts.max_det_states = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--threads", &v)) {
      opts.num_threads = static_cast<uint32_t>(v);
    } else if (std::strcmp(arg, "--memo") == 0) {
      opts.memo = true;
    } else if (std::strncmp(arg, "--memo_dir=", 11) == 0) {
      opts.memo = true;
      opts.memo_dir = arg + 11;
    } else if (ParseU64(arg, "--memo_mb", &v)) {
      opts.memo = true;
      opts.memo_mb = static_cast<size_t>(v);
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      opts.shrink = false;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "ta_diffcheck: unknown argument '%s'\n", arg);
      PrintUsage();
      return 2;
    }
  }

  pebbletc::DiffcheckReport report = pebbletc::RunDiffcheck(opts);

  std::printf("ta_diffcheck: %zu iterations, %zu comparisons, "
              "%zu budget skips, %zu failure(s)",
              report.iterations, report.comparisons, report.budget_skips,
              report.failures.size());
  if (report.suppressed_failures > 0) {
    std::printf(" (+%zu suppressed repeats)", report.suppressed_failures);
  }
  std::printf("\n");
  for (const auto& r : report.worker_ranges) {
    std::printf("ta_diffcheck:   worker %u ran --start=%zu --iters=%zu\n",
                r.worker, r.start, r.iters);
  }

  for (const pebbletc::DiffcheckFailure& f : report.failures) {
    std::printf("\n=== FAILURE: %s (iteration %zu, seed %llu) ===\n%s\n",
                f.law.c_str(), f.iteration,
                static_cast<unsigned long long>(f.seed), f.detail.c_str());
    if (!f.repro.empty()) {
      std::printf("--- shrunk reproducer (paste into "
                  "tests/diffcheck_regression_test.cc) ---\n%s",
                  f.repro.c_str());
    }
  }

  if (!report.ok()) {
    std::printf("\nta_diffcheck: FAILED\n");
    return 1;
  }
  std::printf("ta_diffcheck: OK\n");
  return 0;
}
