// pebbletc_client — wire client for the pebbletc_serve daemon
// (docs/SERVING.md).
//
// Single-shot commands:
//   pebbletc_client --socket=PATH ping | list | stats
//   pebbletc_client --socket=PATH validate  <schema> <xml>
//   pebbletc_client --socket=PATH batch     <schema> <xml> [<xml>...]
//   pebbletc_client --socket=PATH typecheck <transducer> <tau1> <tau2>
//   pebbletc_client --socket=PATH infer     <transducer> <tau2>
//   pebbletc_client --socket=PATH load      <name> <ptar-file>
//
// Scripted robustness mix (the CI serve-smoke job's driver):
//   pebbletc_client --socket=PATH mix [--rounds=N]
//
// The mix interleaves well-formed traffic (ping / list / stats / validate /
// typecheck over the examples/artifacts names) with hostile frames —
// garbage payloads, wrong wire versions, unknown opcodes, truncated bodies,
// oversized declared lengths, and torn half-frames followed by disconnect —
// and checks that every single response is a *structured* one with the
// expected wire status. Exit code 0 means the daemon survived the whole
// script and answered everything correctly; any crash, hang, unexpected
// status, or undecodable response is a non-zero exit.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/serve/protocol.h"

namespace pebbletc::serve {
namespace {

// ---------------------------------------------------------------------------
// Socket plumbing.
// ---------------------------------------------------------------------------

int Connect(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t r = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

/// Reads one response frame. Empty optional on EOF/error.
bool ReadFrame(int fd, std::string* payload) {
  char len_bytes[4];
  size_t got = 0;
  while (got < 4) {
    ssize_t r = ::read(fd, len_bytes + got, 4 - got);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<unsigned char>(len_bytes[i]))
           << (8 * i);
  }
  if (len > kMaxFrameBytes) return false;
  payload->assign(len, '\0');
  got = 0;
  while (got < len) {
    ssize_t r = ::read(fd, payload->data() + got, len - got);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

bool Call(int fd, const Request& request, Response* response) {
  std::string payload;
  EncodeRequest(request, &payload);
  std::string frame;
  EncodeFrame(payload, &frame);
  if (!WriteAll(fd, frame)) return false;
  std::string back;
  if (!ReadFrame(fd, &back)) return false;
  Result<Response> decoded = DecodeResponse(back);
  if (!decoded.ok()) return false;
  *response = std::move(decoded).value();
  return true;
}

void PrintResponse(const Response& response) {
  std::printf("request %u: %s", response.header.request_id,
              WireStatusName(response.header.status));
  if (!response.header.detail.empty()) {
    std::printf(" (%s)", response.header.detail.c_str());
  }
  std::printf("\n");
  if (response.header.status != WireStatus::kOk) return;
  if (const auto* t = std::get_if<TypecheckResponse>(&response.body)) {
    const char* verdicts[] = {"TYPECHECKS", "COUNTEREXAMPLE", "UNKNOWN"};
    std::printf("  verdict: %s  method: %s  checkpoints: %llu\n",
                verdicts[t->verdict < 3 ? t->verdict : 2], t->method.c_str(),
                static_cast<unsigned long long>(t->checkpoints));
    if (t->exhausted) {
      std::printf("  exhausted in pass '%s': %s\n", t->exhaustion_pass.c_str(),
                  t->exhaustion_detail.c_str());
    }
    if (!t->counterexample_input_xml.empty()) {
      std::printf("  counterexample input:  %s\n",
                  t->counterexample_input_xml.c_str());
      std::printf("  counterexample output: %s\n",
                  t->counterexample_output_xml.c_str());
    }
  } else if (const auto* v = std::get_if<ValidateResponse>(&response.body)) {
    std::printf("  %s%s%s\n", v->valid ? "valid" : "INVALID",
                v->diagnostic.empty() ? "" : ": ", v->diagnostic.c_str());
  } else if (const auto* b =
                 std::get_if<ValidateBatchResponse>(&response.body)) {
    std::printf("  %zu verdict(s), %llu fast-path, %llu fallback\n",
                b->verdicts.size(),
                static_cast<unsigned long long>(b->fast_path_docs),
                static_cast<unsigned long long>(b->fallback_docs));
    for (size_t i = 0; i < b->verdicts.size(); ++i) {
      const BatchDocVerdict& v = b->verdicts[i];
      if (v.status != static_cast<uint8_t>(WireStatus::kOk)) {
        std::printf("  [%zu] %s: %s\n", i,
                    WireStatusName(static_cast<WireStatus>(v.status)),
                    v.diagnostic.c_str());
      } else {
        std::printf("  [%zu] %s%s%s\n", i, v.valid ? "valid" : "INVALID",
                    v.diagnostic.empty() ? "" : ": ", v.diagnostic.c_str());
      }
    }
  } else if (const auto* i =
                 std::get_if<InferInverseResponse>(&response.body)) {
    std::printf("  inverse type: %u state(s), %u leaf rule(s), %u rule(s)\n",
                i->num_states, i->num_leaf_rules, i->num_rules);
  } else if (const auto* l =
                 std::get_if<ListArtifactsResponse>(&response.body)) {
    for (const ArtifactInfo& a : l->artifacts) {
      std::printf("  %-20s kind=%u\n", a.name.c_str(), a.kind);
    }
  } else if (const auto* s = std::get_if<StatsResponse>(&response.body)) {
    std::printf("  total=%llu ok=%llu malformed=%llu invalid=%llu "
                "shed=%llu degraded=%llu hard=%llu in_flight=%u\n",
                static_cast<unsigned long long>(s->requests_total),
                static_cast<unsigned long long>(s->responses_ok),
                static_cast<unsigned long long>(s->malformed_rejected),
                static_cast<unsigned long long>(s->validation_rejected),
                static_cast<unsigned long long>(s->overload_rejected),
                static_cast<unsigned long long>(s->degraded_verdicts),
                static_cast<unsigned long long>(s->hard_errors),
                s->in_flight);
  }
}

// ---------------------------------------------------------------------------
// The scripted robustness mix.
// ---------------------------------------------------------------------------

struct MixState {
  std::string socket_path;
  uint32_t next_id = 1;
  int passed = 0;
  int failed = 0;
};

void Report(MixState* mix, bool ok, const char* what, const char* detail) {
  if (ok) {
    ++mix->passed;
  } else {
    ++mix->failed;
    std::fprintf(stderr, "FAIL: %s: %s\n", what, detail);
  }
}

/// Sends a well-formed request on an existing connection and checks the
/// response status.
void ExpectStatus(MixState* mix, int fd, Request request, WireStatus want,
                  const char* what) {
  request.header.request_id = mix->next_id++;
  Response response;
  if (!Call(fd, request, &response)) {
    Report(mix, false, what, "no decodable response (connection died?)");
    return;
  }
  if (response.header.status != want) {
    std::string detail = std::string("status ") +
                         WireStatusName(response.header.status) +
                         ", wanted " + WireStatusName(want) + " — " +
                         response.header.detail;
    Report(mix, false, what, detail.c_str());
    return;
  }
  Report(mix, true, what, "");
}

/// Sends raw payload bytes as one frame and expects a structured error with
/// the given status. The connection must stay usable afterwards.
void ExpectErrorFrame(MixState* mix, int fd, const std::string& payload,
                      WireStatus want, const char* what) {
  std::string frame;
  EncodeFrame(payload, &frame);
  if (!WriteAll(fd, frame)) {
    Report(mix, false, what, "write failed");
    return;
  }
  std::string back;
  if (!ReadFrame(fd, &back)) {
    Report(mix, false, what, "no response frame — connection dropped");
    return;
  }
  Result<Response> decoded = DecodeResponse(back);
  if (!decoded.ok()) {
    Report(mix, false, what, "response did not decode");
    return;
  }
  if (decoded->header.status != want) {
    std::string detail = std::string("status ") +
                         WireStatusName(decoded->header.status) +
                         ", wanted " + WireStatusName(want);
    Report(mix, false, what, detail.c_str());
    return;
  }
  if (decoded->header.detail.empty()) {
    Report(mix, false, what, "error response carries no diagnostic");
    return;
  }
  Report(mix, true, what, "");
}

Request Ping() {
  Request r;
  r.header.opcode = Opcode::kPing;
  r.body = PingRequest{};
  return r;
}

Request Typecheck(const std::string& t, const std::string& tau1,
                  const std::string& tau2) {
  Request r;
  r.header.opcode = Opcode::kTypecheck;
  r.body = TypecheckRequest{t, tau1, tau2};
  return r;
}

Request Validate(const std::string& schema, const std::string& doc) {
  Request r;
  r.header.opcode = Opcode::kValidate;
  r.body = ValidateRequest{schema, doc};
  return r;
}

Request ValidateBatch(const std::string& schema,
                      std::vector<std::string> docs) {
  Request r;
  r.header.opcode = Opcode::kValidateBatch;
  r.body = ValidateBatchRequest{schema, std::move(docs)};
  return r;
}

int RunMix(MixState* mix, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    int fd = Connect(mix->socket_path);
    if (fd < 0) {
      std::fprintf(stderr, "mix: cannot connect to %s: %s\n",
                   mix->socket_path.c_str(), std::strerror(errno));
      return 1;
    }

    // --- Well-formed traffic (examples/artifacts names). ---
    ExpectStatus(mix, fd, Ping(), WireStatus::kOk, "ping");
    {
      Request list;
      list.header.opcode = Opcode::kListArtifacts;
      list.body = ListArtifactsRequest{};
      ExpectStatus(mix, fd, list, WireStatus::kOk, "list");
    }
    ExpectStatus(mix, fd, Typecheck("rename", "rename_in", "good_out"),
                 WireStatus::kOk, "typecheck good pair");
    ExpectStatus(mix, fd, Typecheck("rename", "rename_in", "bad_out"),
                 WireStatus::kOk, "typecheck bad pair");
    ExpectStatus(mix, fd, Validate("rename_in", "<a><c/></a>"),
                 WireStatus::kOk, "validate conforming document");
    ExpectStatus(mix, fd, Validate("rename_in", "<a/>"), WireStatus::kOk,
                 "validate non-conforming document");
    ExpectStatus(mix, fd, Typecheck("no-such-artifact", "rename_in",
                                    "good_out"),
                 WireStatus::kNotFound, "typecheck unknown name");
    ExpectStatus(mix, fd, Validate("../../etc/passwd", "<a/>"),
                 WireStatus::kValidationFailed, "hostile artifact name");
    ExpectStatus(mix, fd, Validate("rename_in", "<a><unclosed></a>"),
                 WireStatus::kValidationFailed, "malformed XML document");
    ExpectStatus(mix, fd,
                 ValidateBatch("rename_in", {"<a><c/></a>", "<a/>",
                                             "<a><c/><c/></a>"}),
                 WireStatus::kOk, "batch validate mixed documents");
    ExpectStatus(mix, fd, ValidateBatch("rename_in", {}),
                 WireStatus::kValidationFailed, "batch with no documents");

    // --- Hostile frames on the same connection. ---
    ExpectErrorFrame(mix, fd, "", WireStatus::kMalformedFrame,
                     "empty payload");
    ExpectErrorFrame(mix, fd, std::string("\x01\x02trailing-garbage", 18),
                     WireStatus::kMalformedFrame, "garbage payload");
    {
      Request bad_version = Ping();
      bad_version.header.version = 99;
      bad_version.header.request_id = mix->next_id++;
      std::string payload;
      EncodeRequest(bad_version, &payload);
      ExpectErrorFrame(mix, fd, payload, WireStatus::kUnsupportedVersion,
                       "wrong wire version");
    }
    {
      std::string payload = "\x01\x63";  // version 1, opcode 99
      payload.append(8, '\0');
      ExpectErrorFrame(mix, fd, payload, WireStatus::kUnknownOpcode,
                       "unknown opcode");
    }
    {
      Request valid = Typecheck("rename", "rename_in", "good_out");
      valid.header.request_id = mix->next_id++;
      std::string payload;
      EncodeRequest(valid, &payload);
      ExpectErrorFrame(mix, fd, payload.substr(0, payload.size() - 4),
                       WireStatus::kMalformedFrame, "truncated body");
    }

    // The connection survived every hostile frame above.
    ExpectStatus(mix, fd, Ping(), WireStatus::kOk,
                 "ping after hostile frames");

    // --- Oversized declared length: one structured error, then close. ---
    {
      std::string frame(4, '\0');
      frame[0] = '\xff';
      frame[1] = '\xff';
      frame[2] = '\xff';
      frame[3] = '\x7f';  // declares ~2 GiB
      bool ok = WriteAll(fd, frame);
      std::string back;
      ok = ok && ReadFrame(fd, &back);
      if (ok) {
        Result<Response> decoded = DecodeResponse(back);
        ok = decoded.ok() &&
             decoded->header.status == WireStatus::kMalformedFrame;
      }
      Report(mix, ok, "oversized frame",
             "wanted one structured kMalformedFrame then close");
      ::close(fd);
    }

    // --- Torn half-frame + disconnect: the daemon must shrug it off. ---
    {
      int torn = Connect(mix->socket_path);
      bool ok = torn >= 0;
      if (ok) {
        std::string frame;
        Request valid = Ping();
        valid.header.request_id = mix->next_id++;
        std::string payload;
        EncodeRequest(valid, &payload);
        EncodeFrame(payload, &frame);
        ok = WriteAll(torn, frame.substr(0, frame.size() / 2));
        ::close(torn);
      }
      Report(mix, ok, "torn frame + disconnect", "write failed");
    }

    // A fresh connection still gets clean service.
    int again = Connect(mix->socket_path);
    if (again < 0) {
      std::fprintf(stderr, "mix: daemon unreachable after hostile round\n");
      return 1;
    }
    ExpectStatus(mix, again, Ping(), WireStatus::kOk,
                 "ping on fresh connection");
    {
      Request stats;
      stats.header.opcode = Opcode::kStats;
      stats.body = StatsRequest{};
      ExpectStatus(mix, again, stats, WireStatus::kOk, "stats");
    }
    ::close(again);
  }

  std::printf("mix: %d check(s) passed, %d failed\n", mix->passed,
              mix->failed);
  return mix->failed == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::string socket_path;
  std::vector<std::string> args;
  int rounds = 3;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      socket_path = arg + 9;
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      rounds = std::atoi(arg + 9);
      if (rounds <= 0) rounds = 1;
    } else {
      args.push_back(arg);
    }
  }
  if (socket_path.empty() || args.empty()) {
    std::fprintf(stderr,
                 "usage: %s --socket=PATH "
                 "(ping|list|stats|mix [--rounds=N]|validate S XML|"
                 "batch S XML [XML...]|"
                 "typecheck T TAU1 TAU2|infer T TAU2|load NAME FILE)\n",
                 argv[0]);
    return 2;
  }

  if (args[0] == "mix") {
    MixState mix;
    mix.socket_path = socket_path;
    return RunMix(&mix, rounds);
  }

  Request request;
  request.header.request_id = 1;
  if (args[0] == "ping") {
    request.header.opcode = Opcode::kPing;
    request.body = PingRequest{};
  } else if (args[0] == "list") {
    request.header.opcode = Opcode::kListArtifacts;
    request.body = ListArtifactsRequest{};
  } else if (args[0] == "stats") {
    request.header.opcode = Opcode::kStats;
    request.body = StatsRequest{};
  } else if (args[0] == "validate" && args.size() == 3) {
    request.header.opcode = Opcode::kValidate;
    request.body = ValidateRequest{args[1], args[2]};
  } else if (args[0] == "batch" && args.size() >= 3) {
    request.header.opcode = Opcode::kValidateBatch;
    request.body = ValidateBatchRequest{
        args[1], std::vector<std::string>(args.begin() + 2, args.end())};
  } else if (args[0] == "typecheck" && args.size() == 4) {
    request.header.opcode = Opcode::kTypecheck;
    request.body = TypecheckRequest{args[1], args[2], args[3]};
  } else if (args[0] == "infer" && args.size() == 3) {
    request.header.opcode = Opcode::kInferInverse;
    request.body = InferInverseRequest{args[1], args[2]};
  } else if (args[0] == "load" && args.size() == 3) {
    std::ifstream file(args[2], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot read %s\n", args[2].c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    request.header.opcode = Opcode::kLoadArtifact;
    request.body = LoadArtifactRequest{args[1], buffer.str()};
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", args[0].c_str());
    return 2;
  }

  int fd = Connect(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", socket_path.c_str(),
                 std::strerror(errno));
    return 1;
  }
  Response response;
  if (!Call(fd, request, &response)) {
    std::fprintf(stderr, "no decodable response from the server\n");
    ::close(fd);
    return 1;
  }
  ::close(fd);
  PrintResponse(response);
  return response.header.status == WireStatus::kOk ? 0 : 1;
}

}  // namespace
}  // namespace pebbletc::serve

int main(int argc, char** argv) {
  return pebbletc::serve::Main(argc, argv);
}
