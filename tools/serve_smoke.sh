#!/bin/sh
# End-to-end smoke for the serving layer (docs/SERVING.md), also run by the
# CI serve-smoke job: boot pebbletc_serve on the example artifacts, drive
# the client's scripted mix (well-formed traffic interleaved with
# truncated/oversized/garbage frames), check a few single-shot commands,
# and shut the daemon down. Any daemon crash, dropped connection on a
# content error, or unexpected wire status fails the script.
#
# usage: serve_smoke.sh <pebbletc_serve> <pebbletc_client> <artifacts-dir>

set -eu

SERVE_BIN="$1"
CLIENT_BIN="$2"
ARTIFACTS_DIR="$3"

WORK_DIR="$(mktemp -d)"
SOCKET="$WORK_DIR/pebbletc.sock"
SERVE_LOG="$WORK_DIR/serve.log"
SERVE_PID=""

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT INT TERM

"$SERVE_BIN" --socket="$SOCKET" --artifacts="$ARTIFACTS_DIR" \
  --max-in-flight=2 --max-queued=4 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!

# Wait for the socket to appear (the daemon loads artifacts first).
tries=0
while [ ! -S "$SOCKET" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "serve_smoke: daemon did not come up; log:" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve_smoke: daemon exited during startup; log:" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  sleep 0.1
done

fail() {
  echo "serve_smoke: $1" >&2
  echo "--- daemon log ---" >&2
  cat "$SERVE_LOG" >&2
  exit 1
}

# Single-shot sanity before the hostile mix.
"$CLIENT_BIN" --socket="$SOCKET" ping >/dev/null || fail "ping failed"
"$CLIENT_BIN" --socket="$SOCKET" list || fail "list failed"
"$CLIENT_BIN" --socket="$SOCKET" typecheck rename rename_in good_out \
  || fail "typecheck good pair failed"
# The bad pair is an OK response carrying a counterexample (exit 0).
"$CLIENT_BIN" --socket="$SOCKET" typecheck rename rename_in bad_out \
  | grep -q COUNTEREXAMPLE || fail "bad pair did not yield a counterexample"
"$CLIENT_BIN" --socket="$SOCKET" validate rename_in "<a><c/></a>" \
  || fail "validate failed"

# The scripted robustness mix: hostile frames must yield structured errors,
# never crashes or dropped connections on content errors.
"$CLIENT_BIN" --socket="$SOCKET" mix --rounds=5 || fail "scripted mix failed"

# The daemon must still be alive and serving after everything above.
kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon died during the mix"
"$CLIENT_BIN" --socket="$SOCKET" stats || fail "stats after mix failed"

# Graceful shutdown on SIGTERM.
kill "$SERVE_PID"
wait "$SERVE_PID" || fail "daemon exited non-zero on SIGTERM"
SERVE_PID=""

echo "serve_smoke: OK"
