file(REMOVE_RECURSE
  "CMakeFiles/bench_rotation.dir/bench_rotation.cc.o"
  "CMakeFiles/bench_rotation.dir/bench_rotation.cc.o.d"
  "bench_rotation"
  "bench_rotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
