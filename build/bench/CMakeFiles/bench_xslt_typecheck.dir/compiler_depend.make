# Empty compiler generated dependencies file for bench_xslt_typecheck.
# This may be replaced when dependencies are built.
