file(REMOVE_RECURSE
  "CMakeFiles/bench_xslt_typecheck.dir/bench_xslt_typecheck.cc.o"
  "CMakeFiles/bench_xslt_typecheck.dir/bench_xslt_typecheck.cc.o.d"
  "bench_xslt_typecheck"
  "bench_xslt_typecheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xslt_typecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
