# Empty dependencies file for bench_data_values.
# This may be replaced when dependencies are built.
