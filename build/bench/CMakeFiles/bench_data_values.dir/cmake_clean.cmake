file(REMOVE_RECURSE
  "CMakeFiles/bench_data_values.dir/bench_data_values.cc.o"
  "CMakeFiles/bench_data_values.dir/bench_data_values.cc.o.d"
  "bench_data_values"
  "bench_data_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
