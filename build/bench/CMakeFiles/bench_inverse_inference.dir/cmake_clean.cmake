file(REMOVE_RECURSE
  "CMakeFiles/bench_inverse_inference.dir/bench_inverse_inference.cc.o"
  "CMakeFiles/bench_inverse_inference.dir/bench_inverse_inference.cc.o.d"
  "bench_inverse_inference"
  "bench_inverse_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inverse_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
