# Empty dependencies file for bench_inverse_inference.
# This may be replaced when dependencies are built.
