file(REMOVE_RECURSE
  "CMakeFiles/bench_restricted_cases.dir/bench_restricted_cases.cc.o"
  "CMakeFiles/bench_restricted_cases.dir/bench_restricted_cases.cc.o.d"
  "bench_restricted_cases"
  "bench_restricted_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restricted_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
