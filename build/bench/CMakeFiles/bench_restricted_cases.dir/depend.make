# Empty dependencies file for bench_restricted_cases.
# This may be replaced when dependencies are built.
