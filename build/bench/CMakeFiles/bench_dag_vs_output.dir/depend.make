# Empty dependencies file for bench_dag_vs_output.
# This may be replaced when dependencies are built.
