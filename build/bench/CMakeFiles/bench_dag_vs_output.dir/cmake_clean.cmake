file(REMOVE_RECURSE
  "CMakeFiles/bench_dag_vs_output.dir/bench_dag_vs_output.cc.o"
  "CMakeFiles/bench_dag_vs_output.dir/bench_dag_vs_output.cc.o.d"
  "bench_dag_vs_output"
  "bench_dag_vs_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dag_vs_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
