# Empty compiler generated dependencies file for bench_pebble_blowup.
# This may be replaced when dependencies are built.
