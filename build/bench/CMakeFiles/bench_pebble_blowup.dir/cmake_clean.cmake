file(REMOVE_RECURSE
  "CMakeFiles/bench_pebble_blowup.dir/bench_pebble_blowup.cc.o"
  "CMakeFiles/bench_pebble_blowup.dir/bench_pebble_blowup.cc.o.d"
  "bench_pebble_blowup"
  "bench_pebble_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pebble_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
