# Empty compiler generated dependencies file for bench_mso_pipeline.
# This may be replaced when dependencies are built.
