file(REMOVE_RECURSE
  "CMakeFiles/bench_mso_pipeline.dir/bench_mso_pipeline.cc.o"
  "CMakeFiles/bench_mso_pipeline.dir/bench_mso_pipeline.cc.o.d"
  "bench_mso_pipeline"
  "bench_mso_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mso_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
