file(REMOVE_RECURSE
  "libpebbletc.a"
)
