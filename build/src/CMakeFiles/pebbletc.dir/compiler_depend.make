# Empty compiler generated dependencies file for pebbletc.
# This may be replaced when dependencies are built.
