
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alphabet/alphabet.cc" "src/CMakeFiles/pebbletc.dir/alphabet/alphabet.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/alphabet/alphabet.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/pebbletc.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/pebbletc.dir/common/status.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/pebbletc.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/common/str_util.cc.o.d"
  "/root/repo/src/core/downward.cc" "src/CMakeFiles/pebbletc.dir/core/downward.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/core/downward.cc.o.d"
  "/root/repo/src/core/typechecker.cc" "src/CMakeFiles/pebbletc.dir/core/typechecker.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/core/typechecker.cc.o.d"
  "/root/repo/src/dtd/dtd.cc" "src/CMakeFiles/pebbletc.dir/dtd/dtd.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/dtd/dtd.cc.o.d"
  "/root/repo/src/ext/data_values.cc" "src/CMakeFiles/pebbletc.dir/ext/data_values.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/ext/data_values.cc.o.d"
  "/root/repo/src/ext/joins.cc" "src/CMakeFiles/pebbletc.dir/ext/joins.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/ext/joins.cc.o.d"
  "/root/repo/src/graph/agap.cc" "src/CMakeFiles/pebbletc.dir/graph/agap.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/graph/agap.cc.o.d"
  "/root/repo/src/mso/compile.cc" "src/CMakeFiles/pebbletc.dir/mso/compile.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/mso/compile.cc.o.d"
  "/root/repo/src/mso/eval.cc" "src/CMakeFiles/pebbletc.dir/mso/eval.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/mso/eval.cc.o.d"
  "/root/repo/src/mso/formula.cc" "src/CMakeFiles/pebbletc.dir/mso/formula.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/mso/formula.cc.o.d"
  "/root/repo/src/mso/track_alphabet.cc" "src/CMakeFiles/pebbletc.dir/mso/track_alphabet.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/mso/track_alphabet.cc.o.d"
  "/root/repo/src/pa/automaton.cc" "src/CMakeFiles/pebbletc.dir/pa/automaton.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/pa/automaton.cc.o.d"
  "/root/repo/src/pa/behavior.cc" "src/CMakeFiles/pebbletc.dir/pa/behavior.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/pa/behavior.cc.o.d"
  "/root/repo/src/pa/product.cc" "src/CMakeFiles/pebbletc.dir/pa/product.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/pa/product.cc.o.d"
  "/root/repo/src/pa/to_mso.cc" "src/CMakeFiles/pebbletc.dir/pa/to_mso.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/pa/to_mso.cc.o.d"
  "/root/repo/src/pt/eval.cc" "src/CMakeFiles/pebbletc.dir/pt/eval.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/pt/eval.cc.o.d"
  "/root/repo/src/pt/paper_machines.cc" "src/CMakeFiles/pebbletc.dir/pt/paper_machines.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/pt/paper_machines.cc.o.d"
  "/root/repo/src/pt/print.cc" "src/CMakeFiles/pebbletc.dir/pt/print.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/pt/print.cc.o.d"
  "/root/repo/src/pt/transducer.cc" "src/CMakeFiles/pebbletc.dir/pt/transducer.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/pt/transducer.cc.o.d"
  "/root/repo/src/query/pattern.cc" "src/CMakeFiles/pebbletc.dir/query/pattern.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/query/pattern.cc.o.d"
  "/root/repo/src/query/selection.cc" "src/CMakeFiles/pebbletc.dir/query/selection.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/query/selection.cc.o.d"
  "/root/repo/src/query/xslt.cc" "src/CMakeFiles/pebbletc.dir/query/xslt.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/query/xslt.cc.o.d"
  "/root/repo/src/regex/dfa.cc" "src/CMakeFiles/pebbletc.dir/regex/dfa.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/regex/dfa.cc.o.d"
  "/root/repo/src/regex/nfa.cc" "src/CMakeFiles/pebbletc.dir/regex/nfa.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/regex/nfa.cc.o.d"
  "/root/repo/src/regex/path_expr.cc" "src/CMakeFiles/pebbletc.dir/regex/path_expr.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/regex/path_expr.cc.o.d"
  "/root/repo/src/regex/regex.cc" "src/CMakeFiles/pebbletc.dir/regex/regex.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/regex/regex.cc.o.d"
  "/root/repo/src/ta/convert.cc" "src/CMakeFiles/pebbletc.dir/ta/convert.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/ta/convert.cc.o.d"
  "/root/repo/src/ta/enumerate.cc" "src/CMakeFiles/pebbletc.dir/ta/enumerate.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/ta/enumerate.cc.o.d"
  "/root/repo/src/ta/nbta.cc" "src/CMakeFiles/pebbletc.dir/ta/nbta.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/ta/nbta.cc.o.d"
  "/root/repo/src/ta/random_ta.cc" "src/CMakeFiles/pebbletc.dir/ta/random_ta.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/ta/random_ta.cc.o.d"
  "/root/repo/src/ta/topdown.cc" "src/CMakeFiles/pebbletc.dir/ta/topdown.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/ta/topdown.cc.o.d"
  "/root/repo/src/tree/binary_tree.cc" "src/CMakeFiles/pebbletc.dir/tree/binary_tree.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/tree/binary_tree.cc.o.d"
  "/root/repo/src/tree/encode.cc" "src/CMakeFiles/pebbletc.dir/tree/encode.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/tree/encode.cc.o.d"
  "/root/repo/src/tree/random_tree.cc" "src/CMakeFiles/pebbletc.dir/tree/random_tree.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/tree/random_tree.cc.o.d"
  "/root/repo/src/tree/term.cc" "src/CMakeFiles/pebbletc.dir/tree/term.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/tree/term.cc.o.d"
  "/root/repo/src/tree/unranked_tree.cc" "src/CMakeFiles/pebbletc.dir/tree/unranked_tree.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/tree/unranked_tree.cc.o.d"
  "/root/repo/src/xml/xml.cc" "src/CMakeFiles/pebbletc.dir/xml/xml.cc.o" "gcc" "src/CMakeFiles/pebbletc.dir/xml/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
