file(REMOVE_RECURSE
  "CMakeFiles/rotation_demo.dir/rotation_demo.cpp.o"
  "CMakeFiles/rotation_demo.dir/rotation_demo.cpp.o.d"
  "rotation_demo"
  "rotation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
