# Empty compiler generated dependencies file for rotation_demo.
# This may be replaced when dependencies are built.
