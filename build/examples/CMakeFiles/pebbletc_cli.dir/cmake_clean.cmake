file(REMOVE_RECURSE
  "CMakeFiles/pebbletc_cli.dir/pebbletc_cli.cpp.o"
  "CMakeFiles/pebbletc_cli.dir/pebbletc_cli.cpp.o.d"
  "pebbletc_cli"
  "pebbletc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebbletc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
