# Empty compiler generated dependencies file for pebbletc_cli.
# This may be replaced when dependencies are built.
