file(REMOVE_RECURSE
  "CMakeFiles/xslt_pipeline.dir/xslt_pipeline.cpp.o"
  "CMakeFiles/xslt_pipeline.dir/xslt_pipeline.cpp.o.d"
  "xslt_pipeline"
  "xslt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xslt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
