# Empty dependencies file for xslt_pipeline.
# This may be replaced when dependencies are built.
