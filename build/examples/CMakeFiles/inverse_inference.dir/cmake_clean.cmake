file(REMOVE_RECURSE
  "CMakeFiles/inverse_inference.dir/inverse_inference.cpp.o"
  "CMakeFiles/inverse_inference.dir/inverse_inference.cpp.o.d"
  "inverse_inference"
  "inverse_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverse_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
