# Empty compiler generated dependencies file for inverse_inference.
# This may be replaced when dependencies are built.
