file(REMOVE_RECURSE
  "CMakeFiles/pattern_query.dir/pattern_query.cpp.o"
  "CMakeFiles/pattern_query.dir/pattern_query.cpp.o.d"
  "pattern_query"
  "pattern_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
