# Empty dependencies file for pattern_query.
# This may be replaced when dependencies are built.
