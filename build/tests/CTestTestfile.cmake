# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/alphabet_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/regex_test[1]_include.cmake")
include("/root/repo/build/tests/ta_test[1]_include.cmake")
include("/root/repo/build/tests/dtd_test[1]_include.cmake")
include("/root/repo/build/tests/mso_test[1]_include.cmake")
include("/root/repo/build/tests/pt_test[1]_include.cmake")
include("/root/repo/build/tests/pa_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/selection_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/behavior_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
