// Tests for src/ta/inclusion: the antichain on-the-fly inclusion search,
// Martens–Neven fragment detection, singleton-tree encoding, and the
// rewired NbtaIncludes/NbtaEquivalent dispatch.

#include "src/ta/inclusion.h"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"
#include "src/tree/random_tree.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

// All leaves labelled a0 (one state, accepting).
Nbta AllLeavesA0(const RankedAlphabet& sigma) {
  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId q = a.AddState();
  a.accepting[q] = true;
  a.AddLeafRule(sigma.Find("a0"), q);
  a.AddRule(sigma.Find("a2"), q, q, q);
  a.AddRule(sigma.Find("b2"), q, q, q);
  return a;
}

// The explicit pipeline the antichain search replaces; the ground truth.
bool ExplicitIncluded(const Nbta& a, const Nbta& b,
                      const RankedAlphabet& sigma) {
  auto not_b = ComplementNbta(b, sigma);
  PEBBLETC_CHECK(not_b.ok());
  return IsEmptyNbta(IntersectNbta(a, *not_b));
}

TEST(InclusionTest, BasicChain) {
  RankedAlphabet sigma = TinyRanked();
  Nbta all_a0 = AllLeavesA0(sigma);
  Nbta uni = UniversalNbta(sigma);

  auto sub = NbtaIncludedIn(all_a0, uni, sigma);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->included);
  EXPECT_FALSE(sub->counterexample.has_value());

  auto super = NbtaIncludedIn(uni, all_a0, sigma);
  ASSERT_TRUE(super.ok());
  EXPECT_FALSE(super->included);
  ASSERT_TRUE(super->counterexample.has_value());
  // The witness is a genuine separator.
  EXPECT_TRUE(uni.Accepts(*super->counterexample));
  EXPECT_FALSE(all_a0.Accepts(*super->counterexample));
}

TEST(InclusionTest, EmptyLanguagesAreIncludedInEverything) {
  RankedAlphabet sigma = TinyRanked();
  Nbta empty = EmptyLanguageNbta(sigma);
  auto r = NbtaIncludedIn(empty, empty, sigma);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->included);
  auto r2 = NbtaIncludedIn(AllLeavesA0(sigma), empty, sigma);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->included);
}

TEST(InclusionTest, AgreesWithExplicitPipelineOnRandomAutomata) {
  RankedAlphabet sigma = TinyRanked();
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed + 900);
    RandomNbtaOptions opts;
    opts.num_states = 1 + seed % 5;
    Nbta a = RandomNbta(sigma, rng, opts);
    Nbta b = RandomNbta(sigma, rng, opts);
    auto r = NbtaIncludedIn(a, b, sigma);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    EXPECT_EQ(r->included, ExplicitIncluded(a, b, sigma)) << "seed " << seed;
    if (!r->included) {
      ASSERT_TRUE(r->counterexample.has_value()) << "seed " << seed;
      EXPECT_TRUE(a.Accepts(*r->counterexample)) << "seed " << seed;
      EXPECT_FALSE(b.Accepts(*r->counterexample)) << "seed " << seed;
    }
  }
}

TEST(InclusionTest, CountersAdvance) {
  RankedAlphabet sigma = TinyRanked();
  TaOpContext ctx;
  Nbta uni = UniversalNbta(sigma);
  Nbta all_a0 = AllLeavesA0(sigma);
  NbtaIndex iu(uni, &ctx);
  NbtaIndex ia(all_a0, &ctx);
  auto r = NbtaIncludedIn(iu, ia, sigma, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx.counters.inclusions, 1u);
  EXPECT_GT(ctx.counters.incl_pairs_interned, 0u);
}

TEST(InclusionTest, PairBudgetEnforced) {
  RankedAlphabet sigma = TinyRanked();
  Rng rng(4242);
  RandomNbtaOptions opts;
  opts.num_states = 6;
  opts.rule_density = 0.7;
  Nbta a = RandomNbta(sigma, rng, opts);
  Nbta b = RandomNbta(sigma, rng, opts);
  auto r = NbtaIncludedIn(a, b, sigma, /*max_pairs=*/1);
  // Either the search finishes within two interned pairs or the budget
  // trips with the documented code.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(InclusionTest, DeadlineSurfaces) {
  RankedAlphabet sigma = TinyRanked();
  TaOpContext ctx;
  ctx.budgets.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  ctx.budgets.checkpoint_stride = 1;
  Nbta uni = UniversalNbta(sigma);
  NbtaIndex iu(uni, &ctx);
  auto r = NbtaIncludedIn(iu, iu, sigma, &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(InclusionTest, RewiredIncludesAndEquivalentAgree) {
  RankedAlphabet sigma = TinyRanked();
  Nbta all_a0 = AllLeavesA0(sigma);
  Nbta uni = UniversalNbta(sigma);
  auto r1 = NbtaIncludes(uni, all_a0, sigma);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  auto r2 = NbtaIncludes(all_a0, uni, sigma);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
  auto eq = NbtaEquivalent(all_a0, all_a0, sigma);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  auto ne = NbtaEquivalent(all_a0, uni, sigma);
  ASSERT_TRUE(ne.ok());
  EXPECT_FALSE(*ne);
}

TEST(InclusionTest, BottomUpDeterministicDetector) {
  RankedAlphabet sigma = TinyRanked();
  Nbta det = AllLeavesA0(sigma);
  EXPECT_TRUE(NbtaIsBottomUpDeterministic(det));
  // Duplicate rules are not nondeterminism.
  det.AddRule(sigma.Find("a2"), 0, 0, 0);
  EXPECT_TRUE(NbtaIsBottomUpDeterministic(det));
  // A second target for the same (symbol, left, right) is.
  Nbta nondet = AllLeavesA0(sigma);
  StateId q2 = nondet.AddState();
  nondet.AddRule(sigma.Find("a2"), 0, 0, q2);
  EXPECT_FALSE(NbtaIsBottomUpDeterministic(nondet));
  // Two targets for one leaf symbol too.
  Nbta leaf_nondet = AllLeavesA0(sigma);
  StateId q3 = leaf_nondet.AddState();
  leaf_nondet.AddLeafRule(sigma.Find("a0"), q3);
  EXPECT_FALSE(NbtaIsBottomUpDeterministic(leaf_nondet));
}

TEST(InclusionTest, SingletonTreeNbtaAcceptsExactlyTheTree) {
  RankedAlphabet sigma = TinyRanked();
  BinaryTree t;
  NodeId l = t.AddLeaf(sigma.Find("a0"));
  NodeId r = t.AddLeaf(sigma.Find("b0"));
  NodeId root = t.AddInternal(sigma.Find("a2"), l, r);
  t.SetRoot(root);
  Nbta s = SingletonTreeNbta(t, static_cast<uint32_t>(sigma.size()));
  EXPECT_TRUE(s.Accepts(t));
  EXPECT_EQ(CountAcceptedTrees(s, 3), 1u);
  EXPECT_EQ(CountAcceptedTrees(s, 1), 0u);
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    BinaryTree other = RandomBinaryTree(sigma, rng, rng.NextBelow(8));
    EXPECT_EQ(s.Accepts(other), other == t);
  }
}

// The Martens–Neven fragment: inclusion into a bottom-up-deterministic
// superset keeps every reachable B-set at most a singleton, so pair counts
// stay linear-ish. Checked via the interned-pair counter.
TEST(InclusionTest, DeterministicSupersetKeepsPairsSmall) {
  RankedAlphabet sigma = TinyRanked();
  TaOpContext ctx;
  Rng rng(99);
  RandomNbtaOptions opts;
  opts.num_states = 5;
  Nbta a = RandomNbta(sigma, rng, opts);
  Nbta b = AllLeavesA0(sigma);
  ASSERT_TRUE(NbtaIsBottomUpDeterministic(b));
  NbtaIndex ia(a, &ctx);
  NbtaIndex ib(b, &ctx);
  auto r = NbtaIncludedIn(ia, ib, sigma, &ctx);
  ASSERT_TRUE(r.ok());
  // At most |Q_A| × (|Q_B| + 1) pairs can ever be interned here.
  EXPECT_LE(ctx.counters.incl_pairs_interned,
            static_cast<size_t>(a.num_states) * (b.num_states + 1));
}

}  // namespace
}  // namespace pebbletc
