// Property tests for the tree-automaton operation layer: language
// preservation of TrimNbta and MinimizeDbta on randomized automata,
// agreement of the shared-index operations with the convenience forms, and
// CountAcceptedTrees saturation behavior near UINT64_MAX.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/random_ta.h"
#include "src/tree/random_tree.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

Nbta DrawRandom(const RankedAlphabet& sigma, Rng& rng) {
  RandomNbtaOptions opts;
  opts.num_states = 2 + static_cast<uint32_t>(rng.NextBelow(5));
  opts.rule_density = 0.15 + rng.NextDouble() * 0.35;
  opts.leaf_density = 0.3 + rng.NextDouble() * 0.5;
  opts.accepting_density = 0.2 + rng.NextDouble() * 0.5;
  return RandomNbta(sigma, rng, opts);
}

// --- language preservation ---

TEST(TaPropertyTest, TrimPreservesLanguage) {
  RankedAlphabet sigma = TinyRanked();
  Rng rng(0x7201);
  for (int i = 0; i < 60; ++i) {
    Nbta a = DrawRandom(sigma, rng);
    Nbta trimmed = TrimNbta(a);
    EXPECT_LE(trimmed.num_states, a.num_states);
    EXPECT_LE(trimmed.rules.size(), a.rules.size());
    auto eq = NbtaEquivalent(a, trimmed, sigma);
    ASSERT_TRUE(eq.ok()) << eq.status().ToString();
    EXPECT_TRUE(*eq) << "TrimNbta changed the language at iteration " << i;
  }
}

TEST(TaPropertyTest, TrimIsIdempotent) {
  RankedAlphabet sigma = TinyRanked();
  Rng rng(0x7202);
  for (int i = 0; i < 40; ++i) {
    Nbta once = TrimNbta(DrawRandom(sigma, rng));
    Nbta twice = TrimNbta(once);
    EXPECT_EQ(once.num_states, twice.num_states) << "iteration " << i;
    EXPECT_EQ(once.rules.size(), twice.rules.size());
    EXPECT_EQ(once.leaf_rules.size(), twice.leaf_rules.size());
  }
}

TEST(TaPropertyTest, MinimizePreservesLanguage) {
  RankedAlphabet sigma = TinyRanked();
  Rng rng(0x7203);
  for (int i = 0; i < 40; ++i) {
    Nbta a = DrawRandom(sigma, rng);
    auto det = DeterminizeNbta(a, sigma);
    ASSERT_TRUE(det.ok()) << det.status().ToString();
    auto min = MinimizeDbta(*det, sigma);
    ASSERT_TRUE(min.ok()) << min.status().ToString();
    // Minimization completes the table with a sink, so it may exceed the
    // reachable-subset DBTA by at most that one state.
    EXPECT_LE(min->num_states(), det->num_states() + 1);
    auto eq = NbtaEquivalent(a, min->ToNbta(sigma), sigma);
    ASSERT_TRUE(eq.ok()) << eq.status().ToString();
    EXPECT_TRUE(*eq) << "MinimizeDbta changed the language at iteration " << i;
  }
}

TEST(TaPropertyTest, MinimizeIsCanonicallyMinimal) {
  // Minimizing a minimized automaton must not shrink it further.
  RankedAlphabet sigma = TinyRanked();
  Rng rng(0x7204);
  for (int i = 0; i < 25; ++i) {
    auto det = DeterminizeNbta(DrawRandom(sigma, rng), sigma);
    ASSERT_TRUE(det.ok());
    auto min1 = MinimizeDbta(*det, sigma);
    ASSERT_TRUE(min1.ok());
    auto min2 = MinimizeDbta(*min1, sigma);
    ASSERT_TRUE(min2.ok());
    EXPECT_EQ(min1->num_states(), min2->num_states()) << "iteration " << i;
  }
}

// --- shared-index operations agree with the convenience forms ---

TEST(TaPropertyTest, IndexedMembershipMatchesBitsetRun) {
  RankedAlphabet sigma = TinyRanked();
  Rng rng(0x7205);
  for (int i = 0; i < 40; ++i) {
    Nbta a = DrawRandom(sigma, rng);
    NbtaIndex idx(a);
    for (int j = 0; j < 10; ++j) {
      BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(8));
      // Reference semantics: some accepting state in the root's bitset.
      auto states = a.RunStates(t);
      bool expected = false;
      for (StateId q = 0; q < a.num_states; ++q) {
        if (a.accepting[q] && states[t.root()][q]) expected = true;
      }
      EXPECT_EQ(NbtaAccepts(idx, t), expected);
      EXPECT_EQ(a.Accepts(t), expected);
    }
  }
}

TEST(TaPropertyTest, IndexedOpsMatchConvenienceOps) {
  RankedAlphabet sigma = TinyRanked();
  Rng rng(0x7206);
  TaOpContext ctx;
  for (int i = 0; i < 25; ++i) {
    Nbta a = DrawRandom(sigma, rng);
    Nbta b = DrawRandom(sigma, rng);
    NbtaIndex ia(a, &ctx), ib(b, &ctx);

    EXPECT_EQ(IsEmptyNbta(ia, &ctx), IsEmptyNbta(a));
    std::optional<BinaryTree> w1 = WitnessTree(ia, &ctx);
    std::optional<BinaryTree> w2 = WitnessTree(a);
    EXPECT_EQ(w1.has_value(), w2.has_value());
    if (w1.has_value()) EXPECT_EQ(w1->size(), w2->size());  // both minimal

    auto eq = NbtaEquivalent(IntersectNbta(ia, ib, &ctx),
                             IntersectNbta(a, b), sigma);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(*eq) << "indexed intersection diverged at iteration " << i;
  }
  // The shared context really accounted for the work above.
  EXPECT_GT(ctx.counters.indexes_built, 0u);
  EXPECT_GT(ctx.counters.rules_scanned, 0u);
  EXPECT_GT(ctx.counters.intersections, 0u);
}

// --- CountAcceptedTrees saturation ---

// A maximally nondeterministic automaton: k all-accepting states, every leaf
// rule and every binary rule present. Accepting runs on trees with n nodes =
// Catalan((n-1)/2) shapes x (|Σ0 or Σ2| x k)^n per-node choices, which
// overflows uint64 already at moderate n.
Nbta Blowup(const RankedAlphabet& sigma, uint32_t k) {
  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  for (uint32_t q = 0; q < k; ++q) {
    a.AddState();
    a.accepting[q] = true;
  }
  for (SymbolId s : sigma.LeafSymbols()) {
    for (StateId q = 0; q < k; ++q) a.AddLeafRule(s, q);
  }
  for (SymbolId s : sigma.BinarySymbols()) {
    for (StateId q1 = 0; q1 < k; ++q1) {
      for (StateId q2 = 0; q2 < k; ++q2) {
        for (StateId q = 0; q < k; ++q) a.AddRule(s, q1, q2, q);
      }
    }
  }
  return a;
}

TEST(TaPropertyTest, CountAcceptedTreesSaturatesAtUint64Max) {
  RankedAlphabet sigma = TinyRanked();
  Nbta a = Blowup(sigma, 2);
  // Exact small counts: Catalan((n-1)/2) shapes x 4^n (2 symbols x 2 states
  // per node).
  EXPECT_EQ(CountAcceptedTrees(a, 1), 4u);
  EXPECT_EQ(CountAcceptedTrees(a, 3), 64u);
  EXPECT_EQ(CountAcceptedTrees(a, 5), 2u * 1024u);
  // n = 31: Catalan(15) x 4^31 = 9694845 x 2^62 >> UINT64_MAX.
  EXPECT_EQ(CountAcceptedTrees(a, 31), UINT64_MAX);
  // Saturation is sticky for larger sizes (no wraparound back below).
  EXPECT_EQ(CountAcceptedTrees(a, 33), UINT64_MAX);
  EXPECT_EQ(CountAcceptedTrees(a, 63), UINT64_MAX);
  // Even node counts remain impossible regardless of saturation.
  EXPECT_EQ(CountAcceptedTrees(a, 32), 0u);
}

TEST(TaPropertyTest, CountAcceptedTreesNearBoundaryDoesNotWrap) {
  // Single state, single leaf symbol, single binary symbol: exactly
  // Catalan((n-1)/2) runs, far below saturation — while the 2-state variant
  // crosses UINT64_MAX between n = 25 and n = 35. Both sides of the boundary
  // must behave: exact below, clamped (never wrapped) above.
  RankedAlphabet mono;
  (void)mono.AddLeaf("l");
  (void)mono.AddBinary("b");
  Nbta one = Blowup(mono, 1);
  EXPECT_EQ(CountAcceptedTrees(one, 11), 42u);  // Catalan(5)
  Nbta many = Blowup(mono, 6);  // 6 states: 6^n runs per shape
  uint64_t prev = 0;
  for (size_t n = 1; n <= 41; n += 2) {
    uint64_t c = CountAcceptedTrees(many, n);
    // Monotone in n until saturation; once saturated, pinned to the max.
    EXPECT_GE(c, prev) << "wraparound at n = " << n;
    prev = c;
  }
  EXPECT_EQ(prev, UINT64_MAX);
}

}  // namespace
}  // namespace pebbletc
