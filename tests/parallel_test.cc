// Tests for the parallel execution layer (docs/PARALLEL.md): TaThreadPool
// share-stealing, TaOpContext fork/merge, serial-vs-parallel language
// equality of the sharded product construction (checked through the
// src/check reference ops, never the optimized suite under test), mid-flight
// cancellation/deadline draining, and sharded diffcheck sweep equivalence.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/diffcheck.h"
#include "src/check/reference_ops.h"
#include "src/common/rng.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"
#include "src/ta/thread_pool.h"

namespace pebbletc {
namespace {

// ---------------------------------------------------------------- pool -----

TEST(ThreadPoolTest, RunExecutesEveryShareExactlyOnce) {
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h = 0;
  TaThreadPool::Instance().Run(8, [&](uint32_t w) { hits[w]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  std::atomic<int> calls{0};
  TaThreadPool::Instance().Run(1, [&](uint32_t w) {
    EXPECT_EQ(w, 0u);
    calls++;
  });
  EXPECT_EQ(calls.load(), 1);
  TaThreadPool::Instance().Run(0, [&](uint32_t) { calls++; });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPoolTest, NestedRunMakesProgress) {
  // A share that forks again must never deadlock: the nested caller claims
  // its own shares when no pool thread is free.
  std::atomic<int> inner{0};
  TaThreadPool::Instance().Run(4, [&](uint32_t) {
    TaThreadPool::Instance().Run(3, [&](uint32_t) { inner++; });
  });
  EXPECT_EQ(inner.load(), 12);
}

TEST(ThreadPoolTest, HardwareWorkersIsPositive) {
  EXPECT_GE(TaThreadPool::HardwareWorkers(), 1u);
}

// ---------------------------------------------------- fork / merge ---------

TEST(OpContextForkTest, ForkZeroesCountersAndMergeAdds) {
  TaOpContext parent;
  parent.counters.rules_scanned = 100;
  parent.counters.checkpoints = 7;

  TaOpContext child = parent.Fork();
  EXPECT_EQ(child.counters.rules_scanned, 0u);
  EXPECT_EQ(child.budgets.num_threads, 1u) << "shares must not re-fan-out";
  child.counters.rules_scanned = 25;
  child.counters.states_materialized = 3;
  ASSERT_TRUE(child.Checkpoint().ok());

  parent.MergeChild(child);
  EXPECT_EQ(parent.counters.rules_scanned, 125u);
  EXPECT_EQ(parent.counters.states_materialized, 3u);
  EXPECT_EQ(parent.counters.checkpoints, 8u);
  EXPECT_FALSE(parent.interrupted());
}

TEST(OpContextForkTest, MergeAdoptsFirstChildInterrupt) {
  std::atomic<bool> cancel{true};
  TaOpContext parent;

  TaOpContext child = parent.Fork();
  child.budgets.cancel = &cancel;
  EXPECT_EQ(child.Checkpoint().code(), StatusCode::kCancelled);

  parent.MergeChild(child);
  EXPECT_TRUE(parent.interrupted());
  EXPECT_EQ(parent.interrupt().code(), StatusCode::kCancelled);
}

TEST(OpContextForkTest, InterruptedParentForksInterruptedChildren) {
  std::atomic<bool> cancel{true};
  TaOpContext parent;
  parent.budgets.cancel = &cancel;
  EXPECT_FALSE(parent.Checkpoint().ok());

  TaOpContext child = parent.Fork();
  EXPECT_TRUE(child.interrupted()) << "a share forked after cancellation "
                                      "must drain immediately";
  EXPECT_EQ(child.interrupt().code(), StatusCode::kCancelled);
}

// ----------------------------------- serial vs parallel intersection -------

// Dense enough that the product clears the parallel gate (>= 256 total
// rules) and has a rich reachable pair space.
Nbta DenseAutomaton(const RankedAlphabet& sigma, uint64_t seed) {
  Rng rng(seed);
  RandomNbtaOptions o;
  // Expected binary rules ≈ symbols * states^2 * density ≈ 200 per
  // automaton, so a pair of these clears the 256-rule parallel gate.
  o.num_states = 12;
  o.rule_density = 0.7;
  o.leaf_density = 0.6;
  o.accepting_density = 0.4;
  return RandomNbta(sigma, rng, o);
}

Nbta IntersectWithThreads(const Nbta& a, const Nbta& b, uint32_t threads,
                          TaOpContext* out_ctx = nullptr) {
  TaOpContext ctx;
  ctx.budgets.num_threads = threads;
  Nbta product = IntersectNbta(NbtaIndex(a), NbtaIndex(b), &ctx);
  EXPECT_FALSE(ctx.interrupted());
  if (out_ctx != nullptr) *out_ctx = ctx;
  return product;
}

TEST(ParallelIntersectTest, LanguageEqualAcrossSeedsAndThreadCounts) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const std::vector<BinaryTree> trees = AllTreesUpToNodes(sigma, 7, 500);
  ASSERT_FALSE(trees.empty());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Nbta a = DenseAutomaton(sigma, 0x5eed0000 + seed);
    const Nbta b = DenseAutomaton(sigma, 0xb0b00000 + seed);
    ASSERT_GE(a.rules.size() + b.rules.size(), 256u)
        << "instance too sparse to exercise the sharded path";
    const Nbta serial = IntersectWithThreads(a, b, 1);
    for (uint32_t threads : {2u, 4u}) {
      const Nbta parallel = IntersectWithThreads(a, b, threads);
      ASSERT_TRUE(parallel.Validate(sigma).ok());
      EXPECT_EQ(parallel.num_states, serial.num_states)
          << "pair spaces diverged (seed " << seed << ", threads " << threads
          << ")";
      EXPECT_EQ(parallel.rules.size(), serial.rules.size());
      // Language equality through the reference membership oracle alone:
      // the product must accept exactly the trees both operands accept.
      for (const BinaryTree& t : trees) {
        const bool expect = RefAccepts(a, t) && RefAccepts(b, t);
        ASSERT_EQ(RefAccepts(parallel, t), expect)
            << "seed " << seed << ", threads " << threads;
        ASSERT_EQ(RefAccepts(serial, t), expect) << "seed " << seed;
      }
    }
  }
}

TEST(ParallelIntersectTest, CountersMergeAcrossThreadCounts) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = DenseAutomaton(sigma, 0x11);
  const Nbta b = DenseAutomaton(sigma, 0x22);
  TaOpContext serial_ctx;
  TaOpContext parallel_ctx;
  IntersectWithThreads(a, b, 1, &serial_ctx);
  IntersectWithThreads(a, b, 4, &parallel_ctx);
  EXPECT_EQ(serial_ctx.counters.intersections, 1u);
  EXPECT_EQ(parallel_ctx.counters.intersections, 1u);
  // Every (a-rule, b-rule) candidate is scanned the same number of times
  // regardless of sharding: scans are driven per discovered pair, and the
  // discovered pair set is schedule-independent.
  EXPECT_EQ(parallel_ctx.counters.rules_scanned,
            serial_ctx.counters.rules_scanned);
  EXPECT_EQ(parallel_ctx.counters.states_materialized,
            serial_ctx.counters.states_materialized);
  EXPECT_GT(parallel_ctx.counters.checkpoints, 0u)
      << "worker checkpoints must merge back into the parent";
}

TEST(ParallelIntersectTest, ExpiredDeadlineDrainsAllWorkers) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = DenseAutomaton(sigma, 0x33);
  const Nbta b = DenseAutomaton(sigma, 0x44);
  TaOpContext ctx;
  ctx.budgets.num_threads = 4;
  ctx.budgets.deadline = std::chrono::steady_clock::now();
  ctx.budgets.checkpoint_stride = 1;
  Nbta product = IntersectNbta(NbtaIndex(a), NbtaIndex(b), &ctx);
  EXPECT_TRUE(ctx.interrupted());
  EXPECT_EQ(ctx.interrupt().code(), StatusCode::kDeadlineExceeded);
  // The partial product is structurally sound even when drained early.
  EXPECT_TRUE(product.Validate(sigma).ok());
}

TEST(ParallelIntersectTest, MidFlightCancellationDrainsPool) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  // Large, near-total automata: the product has tens of thousands of pair
  // scans, far more than the canceller's latency on any host.
  Rng rng_a(0xaaaa), rng_b(0xbbbb);
  RandomNbtaOptions big;
  big.num_states = 24;
  big.rule_density = 0.9;
  big.leaf_density = 0.9;
  big.accepting_density = 0.5;
  const Nbta a = RandomNbta(sigma, rng_a, big);
  const Nbta b = RandomNbta(sigma, rng_b, big);

  std::atomic<bool> cancel{false};
  TaOpContext ctx;
  ctx.budgets.num_threads = 4;
  ctx.budgets.cancel = &cancel;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    cancel.store(true, std::memory_order_relaxed);
  });
  Nbta product = IntersectNbta(NbtaIndex(a), NbtaIndex(b), &ctx);
  canceller.join();

  // Either the cancellation landed mid-flight (the interesting case: every
  // worker drained, the sticky kCancelled merged back) or the product beat
  // the canceller; both must leave a consistent context and a sound result.
  if (ctx.interrupted()) {
    EXPECT_EQ(ctx.interrupt().code(), StatusCode::kCancelled);
    // The worker that observed the flag checkpointed (and merged back);
    // rules_scanned may legitimately be zero if the flag landed before the
    // first expansion (e.g. under sanitizer slowdown).
    EXPECT_GT(ctx.counters.checkpoints, 0u);
  } else {
    EXPECT_EQ(product.num_states,
              IntersectWithThreads(a, b, 1).num_states);
    EXPECT_GT(ctx.counters.rules_scanned, 0u);
  }
  EXPECT_TRUE(product.Validate(sigma).ok());
  EXPECT_EQ(ctx.counters.intersections, 1u);
}

TEST(ParallelIntersectTest, CancelledBeforeStartProducesEmptyDrain) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = DenseAutomaton(sigma, 0x55);
  const Nbta b = DenseAutomaton(sigma, 0x66);
  std::atomic<bool> cancel{true};
  TaOpContext ctx;
  ctx.budgets.num_threads = 4;
  ctx.budgets.cancel = &cancel;
  Nbta product = IntersectNbta(NbtaIndex(a), NbtaIndex(b), &ctx);
  EXPECT_TRUE(ctx.interrupted());
  EXPECT_EQ(ctx.interrupt().code(), StatusCode::kCancelled);
  EXPECT_TRUE(product.Validate(sigma).ok());
}

// --------------------------------------------- sharded diffcheck sweep -----

TEST(ParallelDiffcheckTest, ShardedSweepMatchesSerialSweep) {
  DiffcheckOptions opts;
  opts.seed = 0xd1ff;
  opts.iters = 24;
  opts.typecheck_every = 8;
  opts.num_threads = 1;
  const DiffcheckReport serial = RunDiffcheck(opts);
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(serial.worker_ranges.empty());

  opts.num_threads = 3;
  const DiffcheckReport sharded = RunDiffcheck(opts);
  EXPECT_TRUE(sharded.ok());
  // Iterations are deterministic in (seed, iteration) alone, so the sharded
  // sweep performs exactly the serial sweep's work.
  EXPECT_EQ(sharded.iterations, serial.iterations);
  EXPECT_EQ(sharded.comparisons, serial.comparisons);
  EXPECT_EQ(sharded.budget_skips, serial.budget_skips);
  ASSERT_EQ(sharded.worker_ranges.size(), 3u);
  size_t covered = 0;
  size_t expect_start = opts.start;
  for (const auto& r : sharded.worker_ranges) {
    EXPECT_EQ(r.start, expect_start) << "ranges must be contiguous";
    expect_start += r.iters;
    covered += r.iters;
  }
  EXPECT_EQ(covered, opts.iters);
}

TEST(ParallelDiffcheckTest, ThreadCapDoesNotExceedIterations) {
  DiffcheckOptions opts;
  opts.seed = 0xd1ff;
  opts.iters = 2;
  opts.typecheck_every = 0;
  opts.demorgan_every = 0;
  opts.num_threads = 16;
  const DiffcheckReport r = RunDiffcheck(opts);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_EQ(r.worker_ranges.size(), 2u);
}

}  // namespace
}  // namespace pebbletc
