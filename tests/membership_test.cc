// Tests for the compiled-membership validation fast path
// (docs/VALIDATION.md): DBTA-table agreement with NbtaAccepts on random
// instances, the budget-exhaustion fallback ladder, fast-hit / fallback
// counter accounting, memoization of the compiled table, interrupt
// propagation, streaming XML validation against the tree-materializing
// route, and the serve-layer ValidationPlan (per-document verdicts, batch
// fan-out vs sequential equality, cancellation honesty).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/alphabet/alphabet.h"
#include "src/check/diffcheck.h"
#include "src/common/arena.h"
#include "src/common/rng.h"
#include "src/serve/validate.h"
#include "src/ta/membership.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_cache.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"
#include "src/ta/serialize.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"
#include "src/xml/xml.h"

namespace pebbletc {
namespace {

Nbta SampleNbta(const RankedAlphabet& sigma, uint64_t seed) {
  Rng rng(seed);
  RandomNbtaOptions o;
  o.num_states = 1 + static_cast<uint32_t>(rng.NextBelow(6));
  o.rule_density = 0.4;
  o.leaf_density = 0.6;
  o.accepting_density = 0.4;
  return RandomNbta(sigma, rng, o);
}

struct DocAlphabet {
  Alphabet tags;
  EncodedAlphabet enc;
};

DocAlphabet MakeDocAlphabet() {
  DocAlphabet d;
  d.tags.Intern("p");
  d.tags.Intern("q");
  d.tags.Intern("r");
  d.enc = std::move(MakeEncodedAlphabet(d.tags)).ValueOrDie();
  return d;
}

TEST(MembershipEngine, AgreesWithNbtaAcceptsOnRandomInstances) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Nbta a = SampleNbta(sigma, seed);
    Result<MembershipEngine> engine = MembershipEngine::Compile(a, sigma);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_TRUE(engine->fast()) << "small instances always fit the budget";
    NbtaIndex idx(a);
    Rng rng(seed * 977);
    for (int k = 0; k < 40; ++k) {
      const BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(12));
      Result<bool> got = engine->Accepts(t);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, NbtaAccepts(idx, t));
    }
  }
}

TEST(MembershipEngine, FastPathBumpsFastHitCounter) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = SampleNbta(sigma, 7);
  TaOpContext ctx;
  Result<MembershipEngine> engine = MembershipEngine::Compile(a, sigma, &ctx);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->fast());
  Rng rng(42);
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(
        engine->Accepts(RandomBinaryTree(sigma, rng, 4), &ctx).ok());
  }
  EXPECT_EQ(ctx.counters.membership_fast_hits, 5u);
  EXPECT_EQ(ctx.counters.membership_fallbacks, 0u);
}

TEST(MembershipEngine, BudgetExhaustionDegradesToFallback) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = SampleNbta(sigma, 11);
  TaOpContext ctx;
  ctx.budgets.max_det_states = 1;  // nothing real determinizes in one state
  Result<MembershipEngine> engine = MembershipEngine::Compile(a, sigma, &ctx);
  ASSERT_TRUE(engine.ok()) << "budget blowup degrades, it does not fail";
  EXPECT_FALSE(engine->fast());
  EXPECT_EQ(engine->table(), nullptr);
  NbtaIndex idx(a);
  Rng rng(43);
  for (int k = 0; k < 10; ++k) {
    const BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(10));
    Result<bool> got = engine->Accepts(t, &ctx);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, NbtaAccepts(idx, t)) << "fallback stays correct";
  }
  EXPECT_EQ(ctx.counters.membership_fallbacks, 10u);
  EXPECT_EQ(ctx.counters.membership_fast_hits, 0u);
}

TEST(MembershipEngine, EmptyTreeIsInvalidArgument) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  Result<MembershipEngine> engine =
      MembershipEngine::Compile(SampleNbta(sigma, 3), sigma);
  ASSERT_TRUE(engine.ok());
  Result<bool> got = engine->Accepts(BinaryTree{});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(MembershipEngine, CompiledTableIsMemoizedPerArtifact) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = SampleNbta(sigma, 5);
  TaOpCache cache(1 << 20);
  TaOpContext ctx;
  ctx.budgets.memo = TaMemoMode::kInMemory;
  Result<MembershipEngine> first =
      MembershipEngine::Compile(a, sigma, &ctx, &cache);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->fast());
  const size_t misses_after_first = ctx.counters.memo_misses;
  EXPECT_GE(misses_after_first, 1u);
  Result<MembershipEngine> second =
      MembershipEngine::Compile(a, sigma, &ctx, &cache);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(ctx.counters.memo_hits, 1u) << "second compile is a warm fetch";
  EXPECT_EQ(ctx.counters.memo_misses, misses_after_first);
}

TEST(MembershipEngine, FaultInterruptPropagates) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  Result<MembershipEngine> engine =
      MembershipEngine::Compile(SampleNbta(sigma, 9), sigma);
  ASSERT_TRUE(engine.ok());
  TaFaultInjector fault;
  fault.trip_at = 0;
  fault.code = StatusCode::kDeadlineExceeded;
  TaOpContext ctx;
  ctx.fault = &fault;
  Rng rng(17);
  Result<bool> got =
      engine->Accepts(RandomBinaryTree(sigma, rng, 6), &ctx);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(fault.tripped);
}

TEST(MembershipEngine, ArenaScratchSurvivesResetBetweenQueries) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = SampleNbta(sigma, 13);
  Result<MembershipEngine> engine = MembershipEngine::Compile(a, sigma);
  ASSERT_TRUE(engine.ok());
  NbtaIndex idx(a);
  Arena arena;
  Rng rng(99);
  for (int k = 0; k < 50; ++k) {
    const BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(20));
    Result<bool> got = engine->Accepts(t, nullptr, &arena);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, NbtaAccepts(idx, t));
    arena.Reset();
  }
}

TEST(StreamingValidateXml, AgreesWithTreeMaterializingRoute) {
  const DocAlphabet d = MakeDocAlphabet();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Nbta m = SampleNbta(d.enc.ranked, seed * 31);
    Result<MembershipEngine> engine =
        MembershipEngine::Compile(m, d.enc.ranked);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->fast());
    NbtaIndex idx(m);
    Rng rng(seed);
    for (int k = 0; k < 20; ++k) {
      RandomUnrankedOptions uo;
      uo.target_size = 1 + rng.NextBelow(25);
      uo.max_children = 4;
      const UnrankedTree u = RandomUnrankedTree(d.tags, rng, uo);
      const std::string xml = XmlString(u, d.tags);
      Result<StreamVerdict> stream =
          StreamingValidateXml(xml, *engine->table(), d.enc, d.tags);
      ASSERT_TRUE(stream.ok()) << stream.status().ToString();
      EXPECT_TRUE(stream->unknown_tag.empty());
      Result<BinaryTree> encoded = EncodeTree(u, d.enc);
      ASSERT_TRUE(encoded.ok());
      EXPECT_EQ(stream->accepted, NbtaAccepts(idx, *encoded))
          << "document: " << xml;
    }
  }
}

TEST(StreamingValidateXml, ReportsFirstUnknownTagAndStillDrains) {
  const DocAlphabet d = MakeDocAlphabet();
  const Nbta m = SampleNbta(d.enc.ranked, 21);
  Result<MembershipEngine> engine = MembershipEngine::Compile(m, d.enc.ranked);
  ASSERT_TRUE(engine.ok());
  Result<StreamVerdict> v = StreamingValidateXml(
      "<p><zz/><yy/></p>", *engine->table(), d.enc, d.tags);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->unknown_tag, "zz") << "first unknown tag in document order";
  EXPECT_FALSE(v->accepted);
}

TEST(StreamingValidateXml, ParseErrorWinsOverUnknownTag) {
  const DocAlphabet d = MakeDocAlphabet();
  const Nbta m = SampleNbta(d.enc.ranked, 23);
  Result<MembershipEngine> engine = MembershipEngine::Compile(m, d.enc.ranked);
  ASSERT_TRUE(engine.ok());
  // The unknown tag shows up before the mismatched close, but a parse error
  // must win — the document is not well-formed at all.
  Result<StreamVerdict> v = StreamingValidateXml(
      "<p><zz></p>", *engine->table(), d.enc, d.tags);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
}

serve::ValidationPlan SamplePlan(const DocAlphabet& d, uint64_t seed) {
  SchemaArtifact schema{d.enc.ranked, SampleNbta(d.enc.ranked, seed)};
  return std::move(serve::CompileSchemaPlan(schema)).ValueOrDie();
}

TEST(ValidateDoc, MalformedDocumentIsParseErrorVerdict) {
  const DocAlphabet d = MakeDocAlphabet();
  const serve::ValidationPlan plan = SamplePlan(d, 1);
  serve::DocVerdict v = serve::ValidateDoc(plan, "not xml");
  EXPECT_EQ(v.code, StatusCode::kInvalidArgument);
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.diagnostic.rfind("document: ", 0), 0u)
      << "diagnostic: " << v.diagnostic;
}

TEST(ValidateDoc, UnknownTagDiagnosticNamesTheTag) {
  const DocAlphabet d = MakeDocAlphabet();
  const serve::ValidationPlan plan = SamplePlan(d, 2);
  serve::DocVerdict v = serve::ValidateDoc(plan, "<p><zz/></p>");
  EXPECT_EQ(v.code, StatusCode::kOk) << "invalid, not an error";
  EXPECT_FALSE(v.valid);
  EXPECT_NE(v.diagnostic.find("'zz'"), std::string::npos)
      << "diagnostic: " << v.diagnostic;
}

TEST(ValidateBatch, MatchesSequentialValidationAcrossThreadCounts) {
  const DocAlphabet d = MakeDocAlphabet();
  const serve::ValidationPlan plan = SamplePlan(d, 3);
  Rng rng(77);
  std::vector<std::string> docs;
  for (int k = 0; k < 12; ++k) {
    RandomUnrankedOptions uo;
    uo.target_size = 1 + rng.NextBelow(15);
    uo.max_children = 4;
    docs.push_back(XmlString(RandomUnrankedTree(d.tags, rng, uo), d.tags));
  }
  docs.push_back("not xml");
  docs.push_back("<p><zz/></p>");
  std::vector<serve::DocVerdict> seq;
  for (const std::string& doc : docs) seq.push_back(serve::ValidateDoc(plan, doc));
  for (uint32_t threads : {1u, 4u}) {
    TaOpContext ctx;
    ctx.budgets.num_threads = threads;
    serve::BatchResult batch = serve::ValidateBatch(plan, docs, &ctx);
    ASSERT_EQ(batch.verdicts.size(), seq.size());
    for (size_t k = 0; k < seq.size(); ++k) {
      EXPECT_EQ(batch.verdicts[k].code, seq[k].code) << "doc " << k;
      EXPECT_EQ(batch.verdicts[k].valid, seq[k].valid) << "doc " << k;
      EXPECT_EQ(batch.verdicts[k].diagnostic, seq[k].diagnostic)
          << "doc " << k;
    }
    // Every well-formed document over the schema alphabet was answered by
    // the compiled table (the malformed and unknown-tag documents never
    // reach a table verdict).
    EXPECT_EQ(batch.fast_path_docs, docs.size() - 2);
    EXPECT_EQ(batch.fallback_docs, 0u);
  }
}

TEST(ValidateBatch, CancelledContextReportsCancelledPerDocument) {
  const DocAlphabet d = MakeDocAlphabet();
  const serve::ValidationPlan plan = SamplePlan(d, 4);
  std::vector<std::string> docs(8, "<p/>");
  std::atomic<bool> cancel{true};
  TaOpContext ctx;
  ctx.budgets.cancel = &cancel;
  serve::BatchResult batch = serve::ValidateBatch(plan, docs, &ctx);
  ASSERT_EQ(batch.verdicts.size(), docs.size());
  for (size_t k = 0; k < batch.verdicts.size(); ++k) {
    EXPECT_EQ(batch.verdicts[k].code, StatusCode::kCancelled) << "doc " << k;
    EXPECT_FALSE(batch.verdicts[k].valid);
  }
  EXPECT_EQ(batch.fast_path_docs, 0u);
}

}  // namespace
}  // namespace pebbletc
