// Robustness ("fuzz-lite") tests: every text parser in the library must
// return a clean Status on arbitrary input — never crash, never hang — and
// parsers must accept what the printers produce (round-trip closure under
// random valid structures is covered in the per-module suites; here we
// hammer the error paths).

#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.h"
#include "src/dtd/dtd.h"
#include "src/query/pattern.h"
#include "src/query/xslt.h"
#include "src/regex/regex.h"
#include "src/tree/term.h"
#include "src/xml/xml.h"

namespace pebbletc {
namespace {

// Random strings over a hostile character set (parser metacharacters heavy).
std::string RandomText(Rng& rng, size_t max_len) {
  static constexpr char kChars[] =
      "abcxyz01_ ()[]{}<>|*+?.,;:=\t\n\\\"'/-#";
  size_t len = rng.NextBelow(max_len + 1);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kChars[rng.NextBelow(sizeof(kChars) - 1)];
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, NoParserCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string text = RandomText(rng, 60);
    {
      Alphabet sigma;
      auto r = ParseRegex(text, &sigma);
      if (r.ok()) {
        // Whatever parsed must print and re-parse equivalently-shaped.
        std::string printed = RegexString(*r, sigma);
        EXPECT_TRUE(ParseRegex(printed, &sigma).ok()) << printed;
      }
    }
    {
      Alphabet sigma;
      auto r = ParseUnrankedTerm(text, &sigma);
      if (r.ok()) {
        EXPECT_TRUE(r->Validate(sigma).ok());
      }
    }
    {
      Alphabet sigma;
      auto r = ParseXml(text, &sigma);
      if (r.ok()) {
        EXPECT_TRUE(r->Validate(sigma).ok());
      }
    }
    {
      auto r = ParseSpecializedDtd(text);
      (void)r;  // ok-or-error, no crash
    }
    {
      Alphabet sigma;
      auto r = ParsePattern(text, &sigma);
      (void)r;
    }
    {
      Alphabet in, out;
      auto r = ParseXslt(text, &in, &out);
      (void)r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<uint64_t>(0, 10));

TEST(ParserFuzz, DeeplyNestedInputsDoNotOverflow) {
  // The term and XML parsers keep their own explicit stacks, so nesting
  // depth is bounded by heap only: a million levels must parse. The regex
  // parser is recursive-descent with a depth cap and must refuse cleanly
  // with kLimitExceeded (this also covers DTD content models, which parse
  // through ParseRegexClosed).
  constexpr size_t kDepth = 1000000;

  std::string deep;
  deep.reserve(3 * kDepth + 1);
  for (size_t i = 0; i < kDepth; ++i) deep += "a(";
  deep += "b";
  for (size_t i = 0; i < kDepth; ++i) deep += ")";
  Alphabet sigma;
  auto r = ParseUnrankedTerm(deep, &sigma);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), kDepth + 1);
  EXPECT_EQ(r->Depth(), kDepth + 1);

  std::string deep_xml;
  deep_xml.reserve(7 * kDepth + 4);
  for (size_t i = 0; i < kDepth; ++i) deep_xml += "<a>";
  deep_xml += "<b/>";
  for (size_t i = 0; i < kDepth; ++i) deep_xml += "</a>";
  Alphabet sigma2;
  auto x = ParseXml(deep_xml, &sigma2);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->size(), kDepth + 1);

  std::string deep_bin;
  deep_bin.reserve(5 * kDepth + 1);
  for (size_t i = 0; i < kDepth; ++i) deep_bin += "f(";
  deep_bin += "a";
  for (size_t i = 0; i < kDepth; ++i) deep_bin += ",a)";
  RankedAlphabet ranked;
  (void)ranked.AddBinary("f");
  (void)ranked.AddLeaf("a");
  auto b = ParseBinaryTerm(deep_bin, ranked);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 2 * kDepth + 1);
  EXPECT_EQ(b->Depth(), kDepth + 1);

  std::string deep_regex;
  deep_regex.reserve(2 * kDepth + 1);
  for (size_t i = 0; i < kDepth; ++i) deep_regex += "(";
  deep_regex += "a";
  for (size_t i = 0; i < kDepth; ++i) deep_regex += ")";
  Alphabet sigma3;
  auto re = ParseRegex(deep_regex, &sigma3);
  ASSERT_FALSE(re.ok());
  EXPECT_EQ(re.status().code(), StatusCode::kLimitExceeded);
}

TEST(ParserFuzz, PathologicalRegexesStayPolynomial) {
  // Nested stars and unions must compile without blowup at these sizes.
  Alphabet sigma;
  std::string nasty = "a";
  for (int i = 0; i < 12; ++i) nasty = "(" + nasty + "|b)*";
  auto r = ParseRegex(nasty, &sigma);
  ASSERT_TRUE(r.ok());
  Dfa dfa = CompileRegexToDfa(*r, static_cast<uint32_t>(sigma.size()));
  EXPECT_LE(dfa.num_states(), 8u);  // minimal DFA is tiny
}

}  // namespace
}  // namespace pebbletc
