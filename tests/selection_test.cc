// Tests for src/query/selection.h: the Example 3.5 compilation of selection
// queries (tree patterns + designated variable) to (m+2)-pebble transducers,
// cross-validated against the direct pattern-matching semantics.

#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.h"
#include "src/pt/eval.h"
#include "src/query/selection.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

struct SelFixture {
  Alphabet in;
  Alphabet out;
  EncodedAlphabet in_enc;
  EncodedAlphabet out_enc;
  SelectionOutputTags tags;

  // `doc_text` first (to intern tags), then the query is parsed.
  SelFixture(const std::string& doc_text, const std::string& pattern_text,
        uint32_t selected, SelectionQuery* query, UnrankedTree* doc) {
    *doc = std::move(ParseUnrankedTerm(doc_text, &in)).ValueOrDie();
    query->pattern = std::move(ParsePattern(pattern_text, &in)).ValueOrDie();
    query->selected = selected;
    tags = ExtendAlphabetForSelection(in, &out);
    in_enc = std::move(MakeEncodedAlphabet(in)).ValueOrDie();
    out_enc = std::move(MakeEncodedAlphabet(out)).ValueOrDie();
  }
};

// Runs both semantics and compares.
void CheckAgreement(const SelFixture& s, const SelectionQuery& query,
                    const UnrankedTree& doc) {
  auto want =
      std::move(EvalSelectionReference(query, doc, s.in, s.tags)).ValueOrDie();
  auto t = std::move(CompileSelectionQuery(query, s.in_enc, s.out_enc, s.tags))
               .ValueOrDie();
  ASSERT_TRUE(t.Validate(s.in_enc.ranked, s.out_enc.ranked).ok());
  EXPECT_TRUE(t.IsDeterministic());
  auto encoded = std::move(EncodeTree(doc, s.in_enc)).ValueOrDie();
  auto got_bin =
      std::move(EvalDeterministic(t, encoded, /*max_steps=*/50'000'000))
          .ValueOrDie();
  auto got = std::move(DecodeTree(got_bin, s.out_enc)).ValueOrDie();
  EXPECT_TRUE(got == want) << "got  " << UnrankedTermString(got, s.out)
                           << "\nwant " << UnrankedTermString(want, s.out);
}

TEST(SelectionTest, SingleVariableLeafBindings) {
  SelectionQuery q;
  UnrankedTree doc;
  SelFixture s("r(a,b,a)", "[r.a]", 0, &q, &doc);
  auto want =
      std::move(EvalSelectionReference(q, doc, s.in, s.tags)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(want, s.out), "result(item(a),item(a),end)");
  CheckAgreement(s, q, doc);
}

TEST(SelectionTest, NoMatchesGivesEmptyResult) {
  SelectionQuery q;
  UnrankedTree doc;
  SelFixture s("r(b,b)", "[r.a]", 0, &q, &doc);
  auto want =
      std::move(EvalSelectionReference(q, doc, s.in, s.tags)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(want, s.out), "result(end)");
  CheckAgreement(s, q, doc);
}

TEST(SelectionTest, SubtreesAreCopiedWhole) {
  SelectionQuery q;
  UnrankedTree doc;
  SelFixture s("r(a(x,y(x)),b)", "[r.a]", 0, &q, &doc);
  auto want =
      std::move(EvalSelectionReference(q, doc, s.in, s.tags)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(want, s.out),
            "result(item(a(x,y(x))),end)");
  CheckAgreement(s, q, doc);
}

TEST(SelectionTest, DescendantPathsViaStars) {
  SelectionQuery q;
  UnrankedTree doc;
  // All x nodes anywhere below the root.
  SelFixture s("r(a(x),b(a(x),x))", "[r.(a|b)*.x]", 0, &q, &doc);
  auto want =
      std::move(EvalSelectionReference(q, doc, s.in, s.tags)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(want, s.out),
            "result(item(x),item(x),item(x),end)");
  CheckAgreement(s, q, doc);
}

TEST(SelectionTest, TwoVariablePattern) {
  SelectionQuery q;
  UnrankedTree doc;
  // a-children of the root that own an x; select the x.
  SelFixture s("r(a(x,y),a(x),b(x))", "[r.a]([a.x])", 1, &q, &doc);
  auto want =
      std::move(EvalSelectionReference(q, doc, s.in, s.tags)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(want, s.out),
            "result(item(x),item(x),end)");
  CheckAgreement(s, q, doc);
}

TEST(SelectionTest, SelectTheParentVariable) {
  SelectionQuery q;
  UnrankedTree doc;
  SelFixture s("r(a(x),a(y),a(x))", "[r.a]([a.x])", 0, &q, &doc);
  auto want =
      std::move(EvalSelectionReference(q, doc, s.in, s.tags)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(want, s.out),
            "result(item(a(x)),item(a(x)),end)");
  CheckAgreement(s, q, doc);
}

TEST(SelectionTest, CrossProductSemantics) {
  // The Example 4.2 shape: two independent variables — quadratically many
  // matches, one item per *tuple*.
  SelectionQuery q;
  UnrankedTree doc;
  SelFixture s("r(a,a,a)", "[r]([r.a],[r.a])", 1, &q, &doc);
  auto want =
      std::move(EvalSelectionReference(q, doc, s.in, s.tags)).ValueOrDie();
  // 3 × 3 = 9 items.
  size_t items = 0;
  for (NodeId c : want.children(want.root())) {
    if (s.out.Name(want.tag(c)) == "item") ++items;
  }
  EXPECT_EQ(items, 9u);
  CheckAgreement(s, q, doc);
}

class SelectionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectionProperty, CompiledMachineMatchesReference) {
  Rng rng(GetParam());
  Alphabet in;
  for (const char* n : {"r", "a", "x"}) in.Intern(n);
  RandomUnrankedOptions opts;
  opts.target_size = 1 + rng.NextBelow(8);
  opts.max_children = 3;
  UnrankedTree doc = RandomUnrankedTree(in, rng, opts);

  SelectionQuery q;
  const char* patterns[] = {"[(r|a|x)*.a]", "[(r|a|x)+]([a.x])",
                            "[(r|a)*]([(r|a)*.x])"};
  q.pattern = std::move(ParsePattern(patterns[GetParam() % 3], &in))
                  .ValueOrDie();
  q.selected = (GetParam() % 3 == 0) ? 0 : 1;

  Alphabet out;
  SelectionOutputTags tags = ExtendAlphabetForSelection(in, &out);
  auto in_enc = std::move(MakeEncodedAlphabet(in)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out)).ValueOrDie();
  auto want =
      std::move(EvalSelectionReference(q, doc, in, tags)).ValueOrDie();
  auto t = std::move(CompileSelectionQuery(q, in_enc, out_enc, tags))
               .ValueOrDie();
  auto encoded = std::move(EncodeTree(doc, in_enc)).ValueOrDie();
  auto got_bin =
      std::move(EvalDeterministic(t, encoded, /*max_steps=*/50'000'000))
          .ValueOrDie();
  auto got = std::move(DecodeTree(got_bin, out_enc)).ValueOrDie();
  EXPECT_TRUE(got == want)
      << UnrankedTermString(doc, in) << " with " << patterns[GetParam() % 3]
      << ":\n got  " << UnrankedTermString(got, out) << "\n want "
      << UnrankedTermString(want, out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionProperty,
                         ::testing::Range<uint64_t>(0, 18));

TEST(SelectionTest, ConfigurationSpacePolynomial) {
  // Prop. 3.8 flavor: the machine's configuration space on an input of n
  // nodes is polynomial (here O(n^2) for a 1-variable pattern: the variable
  // pebble × the checker).
  SelectionQuery q;
  UnrankedTree doc;
  SelFixture s("r(a,a,a,a)", "[r.a]", 0, &q, &doc);
  auto t = std::move(CompileSelectionQuery(q, s.in_enc, s.out_enc, s.tags))
               .ValueOrDie();
  auto encoded = std::move(EncodeTree(doc, s.in_enc)).ValueOrDie();
  auto dag = std::move(BuildOutputAutomaton(t, encoded)).ValueOrDie();
  const size_t n = encoded.size();
  EXPECT_LT(dag.num_configs, t.num_states() * (n + 1) * (n + 1));
}

}  // namespace
}  // namespace pebbletc
