// Regression tests pinned by the differential oracle work (docs/DIFFCHECK.md).
//
// Each test locks in a boundary behaviour the ta_diffcheck harness probes:
// completion of symbols the automaton never mentions (the MSO track-extension
// shape), union state renumbering against degenerate operands, the exact
// UINT64_MAX saturation boundary of CountAcceptedTrees, and the enumeration
// order/cap contract of EnumerateAcceptedTrees. Shrunk reproducers emitted by
// `ta_diffcheck` belong in this file too; the harness prints bodies in
// exactly this idiom.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/check/diffcheck.h"
#include "src/check/reference_ops.h"
#include "src/ta/enumerate.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/tree/binary_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

// Every well-ranked tree over `sigma` with at most `max_nodes` nodes. Thin
// wrapper asserting the enumeration was not truncated.
std::vector<BinaryTree> SmallTrees(const RankedAlphabet& sigma,
                                   size_t max_nodes) {
  bool truncated = false;
  std::vector<BinaryTree> trees =
      AllTreesUpToNodes(sigma, max_nodes, 100000, &truncated);
  EXPECT_FALSE(truncated);
  return trees;
}

// --- Satellite (a): completion of symbols with no rules ---

// An automaton whose rule set mentions NO symbol at all: the complement must
// complete every symbol of the alphabet and accept every well-ranked tree.
// This is the extreme case of the MSO track-extension shape, where the
// cylindrified alphabet contains symbols the original automaton never saw.
TEST(DiffcheckRegressionTest, ComplementOfRulelessAutomatonIsUniversal) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/true);
  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  a.accepting[a.AddState()] = true;  // accepting yet unreachable: L(a) = ∅
  (void)a.AddState();
  ASSERT_TRUE(IsEmptyNbta(a));

  auto comp = ComplementNbta(a, sigma);
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  auto refcomp = RefComplement(a, sigma);
  ASSERT_TRUE(refcomp.ok()) << refcomp.status().ToString();
  NbtaIndex comp_idx(*comp);
  for (const BinaryTree& t : SmallTrees(sigma, 7)) {
    EXPECT_TRUE(NbtaAccepts(comp_idx, t))
        << "complement rejects " << BinaryTermString(t, sigma);
    EXPECT_TRUE(RefAccepts(*refcomp, t))
        << "reference complement rejects " << BinaryTermString(t, sigma);
  }
}

// An automaton with rules over half the alphabet only: trees touching the
// ruleless symbols are rejected by `a`, so the complement must accept every
// one of them — the determinized transition table needs genuine (sink)
// entries for symbols absent from the rule list.
TEST(DiffcheckRegressionTest, ComplementCompletesUnusedTrackSymbols) {
  RankedAlphabet sigma = DiffcheckAlphabet(/*extended=*/true);
  SymbolId a0 = sigma.Find("a0");
  SymbolId a2 = sigma.Find("a2");
  SymbolId u0 = sigma.Find("u0");
  SymbolId u2 = sigma.Find("u2");

  // L(a) = all trees over {a0, a2} alone.
  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId q = a.AddState();
  a.accepting[q] = true;
  a.AddLeafRule(a0, q);
  a.AddRule(a2, q, q, q);

  auto comp = ComplementNbta(a, sigma);
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  NbtaIndex comp_idx(*comp);

  auto uses_ruleless = [&](const BinaryTree& t) {
    for (NodeId n = 0; n < t.size(); ++n) {
      if (t.symbol(n) == u0 || t.symbol(n) == u2) return true;
    }
    return false;
  };
  size_t ruleless_trees = 0;
  for (const BinaryTree& t : SmallTrees(sigma, 5)) {
    EXPECT_EQ(NbtaAccepts(comp_idx, t), !RefAccepts(a, t))
        << "complement disagrees on " << BinaryTermString(t, sigma);
    if (uses_ruleless(t)) {
      ++ruleless_trees;
      EXPECT_TRUE(NbtaAccepts(comp_idx, t))
          << "tree over unused symbols must be in the complement: "
          << BinaryTermString(t, sigma);
    }
  }
  EXPECT_GT(ruleless_trees, 0u);  // the sweep really exercised the case
}

// --- Satellite (b): union state renumbering ---

// Union against a zero-state operand (not even a dead state: num_states = 0)
// must behave as the identity in both argument orders, with b's rule state
// ids shifted by exactly |Q_a| — which is 0 on the left-identity side.
TEST(DiffcheckRegressionTest, UnionWithZeroStateOperandIsIdentity) {
  RankedAlphabet sigma = TinyRanked();
  SymbolId a0 = sigma.Find("a0");
  SymbolId b0 = sigma.Find("b0");
  SymbolId a2 = sigma.Find("a2");

  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId q0 = a.AddState();
  StateId q1 = a.AddState();
  a.accepting[q1] = true;
  a.AddLeafRule(a0, q0);
  a.AddLeafRule(b0, q1);
  a.AddRule(a2, q0, q1, q1);

  Nbta zero;
  zero.num_symbols = a.num_symbols;
  ASSERT_EQ(zero.num_states, 0u);

  Nbta right = UnionNbta(a, zero);
  Nbta left = UnionNbta(zero, a);
  NbtaIndex a_idx(a), right_idx(right), left_idx(left);
  for (const BinaryTree& t : SmallTrees(sigma, 7)) {
    bool expect = NbtaAccepts(a_idx, t);
    EXPECT_EQ(NbtaAccepts(right_idx, t), expect)
        << "a ∪ ∅ diverged on " << BinaryTermString(t, sigma);
    EXPECT_EQ(NbtaAccepts(left_idx, t), expect)
        << "∅ ∪ a diverged on " << BinaryTermString(t, sigma);
  }
}

// Self-union: both operands' rules cite the same state-id range [0, n), so a
// renumbering slip (offsetting only some of {left, right, to}) would splice
// the copies together and change the language.
TEST(DiffcheckRegressionTest, SelfUnionPreservesLanguage) {
  RankedAlphabet sigma = TinyRanked();
  SymbolId a0 = sigma.Find("a0");
  SymbolId b0 = sigma.Find("b0");
  SymbolId a2 = sigma.Find("a2");
  SymbolId b2 = sigma.Find("b2");

  // L(a) = trees whose leaves are all a0 and whose root is a2 or a leaf;
  // state q0 = "good subtree", q1 = reject sink reached from b0.
  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId q0 = a.AddState();
  StateId q1 = a.AddState();
  a.accepting[q0] = true;
  a.AddLeafRule(a0, q0);
  a.AddLeafRule(b0, q1);
  a.AddRule(a2, q0, q0, q0);
  a.AddRule(b2, q0, q0, q1);

  Nbta uni = UnionNbta(a, a);
  EXPECT_EQ(uni.num_states, 2 * a.num_states);
  Nbta refuni = RefUnion(a, a);
  NbtaIndex a_idx(a), uni_idx(uni), refuni_idx(refuni);
  for (const BinaryTree& t : SmallTrees(sigma, 7)) {
    bool expect = NbtaAccepts(a_idx, t);
    EXPECT_EQ(NbtaAccepts(uni_idx, t), expect)
        << "a ∪ a diverged on " << BinaryTermString(t, sigma);
    EXPECT_EQ(NbtaAccepts(refuni_idx, t), expect)
        << "reference union diverged on " << BinaryTermString(t, sigma);
  }
}

// Disjoint operands sharing the id range: a accepts only the leaf a0, b (with
// identically-numbered states meaning something else) only the leaf b0. The
// union must accept both and nothing that mixes the copies.
TEST(DiffcheckRegressionTest, UnionKeepsOperandCopiesDisjoint) {
  RankedAlphabet sigma = TinyRanked();
  SymbolId a0 = sigma.Find("a0");
  SymbolId b0 = sigma.Find("b0");
  SymbolId a2 = sigma.Find("a2");

  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId aq0 = a.AddState();
  StateId aq1 = a.AddState();
  a.accepting[aq1] = true;
  a.AddLeafRule(a0, aq1);
  a.AddLeafRule(b0, aq0);

  Nbta b;
  b.num_symbols = a.num_symbols;
  StateId bq0 = b.AddState();
  StateId bq1 = b.AddState();
  b.accepting[bq1] = true;
  b.AddLeafRule(b0, bq1);
  b.AddLeafRule(a0, bq0);
  // A rule whose unshifted ids would, in the union, point back into a's copy
  // and wrongly accept a2(a0, b0) via a's accepting state.
  b.AddRule(a2, bq0, bq1, bq0);

  Nbta uni = UnionNbta(a, b);
  NbtaIndex uni_idx(uni);
  Nbta refuni = RefUnion(a, b);
  for (const BinaryTree& t : SmallTrees(sigma, 3)) {
    bool expect = RefAccepts(a, t) || RefAccepts(b, t);
    EXPECT_EQ(NbtaAccepts(uni_idx, t), expect)
        << "union diverged on " << BinaryTermString(t, sigma);
    EXPECT_EQ(RefAccepts(refuni, t), expect)
        << "reference union diverged on " << BinaryTermString(t, sigma);
  }
  BinaryTree a0_leaf, b0_leaf;
  a0_leaf.SetRoot(a0_leaf.AddLeaf(a0));
  b0_leaf.SetRoot(b0_leaf.AddLeaf(b0));
  EXPECT_TRUE(NbtaAccepts(uni_idx, a0_leaf));
  EXPECT_TRUE(NbtaAccepts(uni_idx, b0_leaf));
}

// --- Satellite (c): CountAcceptedTrees saturation boundary ---

// Hits UINT64_MAX *exactly* (no clamping involved), then crosses it. The
// construction multiplies run counts across children:
//   count1[qA] = count1[qB] = 2^16   (65536 distinct leaf symbols each)
//   count1[qC] = count1[qD] = 1
//   count1[qE] = 2^16 + 1, count1[qF] = 2^16 - 1
//   f(qA,qB) → qX, f(qC,qD) → qX  ⇒ count3[qX] = 2^32 + 1
//   f(qE,qF) → qY                 ⇒ count3[qY] = 2^32 − 1
//   f(qX,qY) → qZ                 ⇒ count7[qZ] = 2^64 − 1 = UINT64_MAX, exact
//   f(qZ,qC) → qV, f(qC,qZ) → qV  ⇒ count9[qV] saturates (2·UINT64_MAX clamps)
// A wraparound bug in the multiply would report count7 ≈ 0 instead of max; a
// wraparound in the add would report count9 ≈ UINT64_MAX − 1... anything but
// the pinned ceiling.
TEST(DiffcheckRegressionTest, CountAcceptedTreesExactSaturationBoundary) {
  constexpr uint32_t kHalf = 1u << 16;  // 65536
  RankedAlphabet sigma;
  std::vector<SymbolId> leaves;
  leaves.reserve(kHalf + 1);
  for (uint32_t i = 0; i <= kHalf; ++i) {
    leaves.push_back(*sigma.AddLeaf("l" + std::to_string(i)));
  }
  SymbolId f = *sigma.AddBinary("f");

  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId qA = a.AddState(), qB = a.AddState(), qC = a.AddState();
  StateId qD = a.AddState(), qE = a.AddState(), qF = a.AddState();
  StateId qX = a.AddState(), qY = a.AddState(), qZ = a.AddState();
  StateId qV = a.AddState();
  for (uint32_t i = 0; i < kHalf; ++i) {
    a.AddLeafRule(leaves[i], qA);
    a.AddLeafRule(leaves[i], qB);
  }
  a.AddLeafRule(leaves[0], qC);
  a.AddLeafRule(leaves[0], qD);
  for (uint32_t i = 0; i <= kHalf; ++i) a.AddLeafRule(leaves[i], qE);
  for (uint32_t i = 0; i + 1 < kHalf; ++i) a.AddLeafRule(leaves[i], qF);
  a.AddRule(f, qA, qB, qX);
  a.AddRule(f, qC, qD, qX);
  a.AddRule(f, qE, qF, qY);
  a.AddRule(f, qX, qY, qZ);
  a.AddRule(f, qZ, qC, qV);
  a.AddRule(f, qC, qZ, qV);

  // Intermediate sanity: the two factors really are 2^32 ± 1.
  a.accepting.assign(a.num_states, false);
  a.accepting[qX] = true;
  EXPECT_EQ(CountAcceptedTrees(a, 3), (uint64_t{1} << 32) + 1);
  EXPECT_EQ(RefCountAcceptedTrees(a, 3), (uint64_t{1} << 32) + 1);
  a.accepting.assign(a.num_states, false);
  a.accepting[qY] = true;
  EXPECT_EQ(CountAcceptedTrees(a, 3), (uint64_t{1} << 32) - 1);

  // The boundary itself: exactly UINT64_MAX accepting runs, reached without
  // any clamp firing.
  a.accepting.assign(a.num_states, false);
  a.accepting[qZ] = true;
  EXPECT_EQ(CountAcceptedTrees(a, 7), UINT64_MAX);
  EXPECT_EQ(RefCountAcceptedTrees(a, 7), UINT64_MAX);
  EXPECT_EQ(CountAcceptedTrees(a, 1), 0u);
  EXPECT_EQ(CountAcceptedTrees(a, 3), 0u);
  EXPECT_EQ(CountAcceptedTrees(a, 5), 0u);
  EXPECT_EQ(CountAcceptedTrees(a, 9), 0u);
  // Even node counts are impossible for complete binary trees.
  EXPECT_EQ(CountAcceptedTrees(a, 8), 0u);

  // One step past the boundary: 2 × UINT64_MAX must clamp, not wrap.
  a.accepting.assign(a.num_states, false);
  a.accepting[qV] = true;
  EXPECT_EQ(CountAcceptedTrees(a, 9), UINT64_MAX);
  EXPECT_EQ(RefCountAcceptedTrees(a, 9), UINT64_MAX);
}

// --- Satellite (c): EnumerateAcceptedTrees boundaries ---

// A depth-0 language: only single-leaf trees are accepted (the binary rule
// lands in a dead state). Enumeration must produce exactly the two leaves for
// every max_nodes ≥ 1 and nothing for max_nodes = 0.
TEST(DiffcheckRegressionTest, EnumerateLeafOnlyLanguage) {
  RankedAlphabet sigma = TinyRanked();
  SymbolId a0 = sigma.Find("a0");
  SymbolId b0 = sigma.Find("b0");
  SymbolId a2 = sigma.Find("a2");

  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId acc = a.AddState();
  StateId dead = a.AddState();
  a.accepting[acc] = true;
  a.AddLeafRule(a0, acc);
  a.AddLeafRule(b0, acc);
  a.AddRule(a2, acc, acc, dead);

  EXPECT_TRUE(EnumerateAcceptedTrees(a, 0, 100).empty());
  EXPECT_TRUE(EnumerateAcceptedTrees(a, 7, 0).empty());
  for (size_t max_nodes : {size_t{1}, size_t{2}, size_t{7}}) {
    std::vector<BinaryTree> trees = EnumerateAcceptedTrees(a, max_nodes, 100);
    ASSERT_EQ(trees.size(), 2u) << "max_nodes = " << max_nodes;
    EXPECT_EQ(trees[0].size(), 1u);
    EXPECT_EQ(trees[1].size(), 1u);
    EXPECT_NE(trees[0].symbol(trees[0].root()),
              trees[1].symbol(trees[1].root()));
  }
  EXPECT_EQ(CountAcceptedTrees(a, 1), 2u);
  EXPECT_EQ(CountAcceptedTrees(a, 3), 0u);
}

// Enumeration order is deterministic, sorted by node count, exact against the
// brute-force filter, and truncation at max_count is a prefix of the full
// enumeration — never a different sample of it.
TEST(DiffcheckRegressionTest, EnumerateDeterministicOrderAndCapPrefix) {
  RankedAlphabet sigma = TinyRanked();
  Nbta a = UniversalNbta(sigma);

  std::vector<BinaryTree> full = EnumerateAcceptedTrees(a, 7, 100000);
  EXPECT_EQ(full.size(), SmallTrees(sigma, 7).size());
  for (size_t i = 0; i + 1 < full.size(); ++i) {
    EXPECT_LE(full[i].size(), full[i + 1].size()) << "not sorted at " << i;
  }
  std::vector<BinaryTree> again = EnumerateAcceptedTrees(a, 7, 100000);
  ASSERT_EQ(again.size(), full.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_TRUE(full[i] == again[i]) << "nondeterministic order at " << i;
  }
  for (size_t cap : {size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{20},
                     full.size(), full.size() + 10}) {
    std::vector<BinaryTree> capped = EnumerateAcceptedTrees(a, 7, cap);
    ASSERT_EQ(capped.size(), std::min(cap, full.size())) << "cap = " << cap;
    for (size_t i = 0; i < capped.size(); ++i) {
      EXPECT_TRUE(capped[i] == full[i])
          << "cap = " << cap << " is not a prefix at " << i;
    }
  }
}

}  // namespace
}  // namespace pebbletc
