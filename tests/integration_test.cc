// Cross-module integration tests: the full XML → encode → transform →
// typecheck pipeline, alphabet alignment (CompileDtdOver), pretty-printing,
// and failure-injection paths (budgets, malformed inputs).

#include <gtest/gtest.h>

#include <string>

#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/pt/eval.h"
#include "src/pt/paper_machines.h"
#include "src/pt/print.h"
#include "src/query/selection.h"
#include "src/query/xslt.h"
#include "src/tree/encode.h"
#include "src/tree/term.h"
#include "src/xml/xml.h"

namespace pebbletc {
namespace {

TEST(CompileDtdOverTest, AlignsByName) {
  // The target alphabet interns tags in a different order.
  Alphabet target_tags;
  for (const char* n : {"zzz", "b", "a"}) target_tags.Intern(n);
  auto target = std::move(MakeEncodedAlphabet(target_tags)).ValueOrDie();
  auto dtd = std::move(ParseDtd("a := b*\nb := ()")).ValueOrDie();
  auto nbta = std::move(CompileDtdOver(dtd, target)).ValueOrDie();
  // Validate a document parsed against the *target* alphabet.
  Alphabet doc_tags = target_tags;
  auto doc = std::move(ParseUnrankedTerm("a(b,b)", &doc_tags)).ValueOrDie();
  auto bin = std::move(EncodeTree(doc, target)).ValueOrDie();
  EXPECT_TRUE(nbta.Accepts(bin));
  auto bad = std::move(ParseUnrankedTerm("b(a)", &doc_tags)).ValueOrDie();
  auto bad_bin = std::move(EncodeTree(bad, target)).ValueOrDie();
  EXPECT_FALSE(nbta.Accepts(bad_bin));
}

TEST(CompileDtdOverTest, MissingTagRejected) {
  Alphabet target_tags;
  target_tags.Intern("a");
  auto target = std::move(MakeEncodedAlphabet(target_tags)).ValueOrDie();
  auto dtd = std::move(ParseDtd("a := b*\nb := ()")).ValueOrDie();
  auto r = CompileDtdOver(dtd, target);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrintTest, TransducerNotation) {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddBinary("a2");
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  std::string text = TransducerString(copy, sigma, sigma);
  EXPECT_NE(text.find("k=1"), std::string::npos);
  EXPECT_NE(text.find("output2"), std::string::npos);
  EXPECT_NE(text.find("down-left"), std::string::npos);
  EXPECT_NE(text.find("(a0, q"), std::string::npos);
}

TEST(PrintTest, AutomatonNotationWithGuards) {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  PebbleAutomaton a(2, 2);
  StateId q1 = a.AddState(1);
  StateId q2 = a.AddState(2);
  a.SetStart(q1);
  a.AddMove({}, q1, PebbleAutomaton::MoveKind::kPlacePebble, q2);
  a.AddAccept({.symbol = 0, .presence_mask = 1, .presence_value = 1}, q2);
  std::string text = PebbleAutomatonString(a, sigma);
  EXPECT_NE(text.find("place-new-pebble"), std::string::npos);
  EXPECT_NE(text.find("b=1"), std::string::npos);
  EXPECT_NE(text.find("branch0"), std::string::npos);
}

// End-to-end: a small "database export" pipeline — relational-ish document,
// restructuring program, DTD typechecking — the paper's motivating SilkRoute
// scenario in miniature.
TEST(IntegrationTest, DatabaseExportPipeline) {
  Alphabet in_tags, out_tags;
  auto program = std::move(ParseXslt(R"(
    template db      { export { apply } }
    template person  { row { name; apply } }
    template dept    { row { title } }
  )",
                                     &in_tags, &out_tags))
                     .ValueOrDie();
  auto in_enc = std::move(MakeEncodedAlphabet(in_tags)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out_tags)).ValueOrDie();
  auto t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();

  auto doc = std::move(ParseXml(
                           "<db><person><dept/></person><person/><dept/></db>",
                           &in_tags))
                 .ValueOrDie();
  auto encoded = std::move(EncodeTree(doc, in_enc)).ValueOrDie();
  auto out_bin = std::move(EvalDeterministic(t, encoded)).ValueOrDie();
  auto out = std::move(DecodeTree(out_bin, out_enc)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(out, out_tags),
            "export(row(name,row(title)),row(name),row(title))");

  auto in_dtd = std::move(ParseDtd(R"(
      db     := (person|dept)*
      person := dept*
      dept   := ()
  )")).ValueOrDie();
  auto out_dtd = std::move(ParseDtd(R"(
      export := row*
      row    := (name.row*)|title
      name   := ()
      title  := ()
  )")).ValueOrDie();
  auto tau1 = std::move(CompileDtdOver(in_dtd, in_enc)).ValueOrDie();
  auto tau2 = std::move(CompileDtdOver(out_dtd, out_enc)).ValueOrDie();
  Typechecker tc(t, in_enc.ranked, out_enc.ranked);
  auto r = std::move(tc.Typecheck(tau1, tau2)).ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kTypechecks);
}

TEST(IntegrationTest, SelectionQueryTypechecksAgainstItsOutputDtd) {
  // Compile a selection query, then typecheck (bounded refutation) against
  // the canonical result := item*.end output DTD — and refute against a
  // wrong one.
  Alphabet in_tags;
  for (const char* n : {"r", "a"}) in_tags.Intern(n);
  SelectionQuery q;
  q.pattern = std::move(ParsePattern("[r.a]", &in_tags)).ValueOrDie();
  q.selected = 0;
  Alphabet out_tags;
  SelectionOutputTags tags = ExtendAlphabetForSelection(in_tags, &out_tags);
  auto in_enc = std::move(MakeEncodedAlphabet(in_tags)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out_tags)).ValueOrDie();
  auto t = std::move(CompileSelectionQuery(q, in_enc, out_enc, tags))
               .ValueOrDie();

  auto in_dtd = std::move(ParseDtd("r := a*\na := ()")).ValueOrDie();
  auto tau1 = std::move(CompileDtdOver(in_dtd, in_enc)).ValueOrDie();
  auto good = std::move(ParseDtd(
                            "result := item*.end\nitem := a\na := ()\n"
                            "end := ()"))
                  .ValueOrDie();
  auto tau2 = std::move(CompileDtdOver(good, out_enc)).ValueOrDie();
  Typechecker tc(t, in_enc.ranked, out_enc.ranked);
  TypecheckOptions opts;
  opts.run_complete_decision = false;  // 3 pebbles: exact bounded refutation
  opts.refutation_max_trees = 15;
  opts.refutation_max_nodes = 15;
  auto r = std::move(tc.Typecheck(tau1, tau2, opts)).ValueOrDie();
  EXPECT_NE(r.verdict, TypecheckVerdict::kCounterexample);

  auto wrong = std::move(ParseDtd(
                             "result := item.item*.end\nitem := a\n"
                             "a := ()\nend := ()"))
                   .ValueOrDie();  // demands ≥1 item; r() has none
  auto tau2_wrong = std::move(CompileDtdOver(wrong, out_enc)).ValueOrDie();
  auto r2 = std::move(tc.Typecheck(tau1, tau2_wrong, opts)).ValueOrDie();
  EXPECT_EQ(r2.verdict, TypecheckVerdict::kCounterexample);
  ASSERT_TRUE(r2.counterexample_input.has_value());
  auto bad_doc =
      std::move(DecodeTree(*r2.counterexample_input, in_enc)).ValueOrDie();
  EXPECT_TRUE(std::move(in_dtd.Accepts(bad_doc)).ValueOrDie());
}

TEST(FailureInjectionTest, BudgetsSurfaceAsResourceExhausted) {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta uni = UniversalNbta(sigma);
  TypecheckOptions opts;
  opts.refutation_max_trees = 3;
  opts.refutation_max_nodes = 3;
  opts.max_configs = 1;  // cripple the per-tree check
  opts.run_complete_decision = false;
  opts.fastpath_max_states = 1;  // cripple the fast path
  auto r = std::move(tc.Typecheck(uni, uni, opts)).ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kInconclusive);
  EXPECT_FALSE(r.notes.empty());
}

TEST(FailureInjectionTest, MismatchedAlphabetsRejectedEverywhere) {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  RankedAlphabet other;
  (void)other.AddLeaf("x");
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, other, sigma);  // wrong input alphabet
  auto r = tc.Typecheck(UniversalNbta(other), UniversalNbta(sigma));
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace pebbletc
