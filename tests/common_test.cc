// Tests for src/common: Status, Result, RNG, string utilities.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/str_util.h"

namespace pebbletc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::LimitExceeded("x").code(), StatusCode::kLimitExceeded);
}

TEST(StatusTest, ExecutionControlCodesHaveDistinctNames) {
  // The interruption codes must stay distinguishable in logs and reports:
  // deadline vs cancel vs budget exhaustion drive different caller policy.
  EXPECT_EQ(Status::DeadlineExceeded("t").ToString(), "deadline-exceeded: t");
  EXPECT_EQ(Status::Cancelled("t").ToString(), "cancelled: t");
  EXPECT_EQ(Status::LimitExceeded("t").ToString(), "limit-exceeded: t");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::ParseError("oops");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kParseError);
  EXPECT_EQ(t.message(), "oops");
  Status u;
  u = s;
  EXPECT_EQ(u.message(), "oops");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::ParseError("unexpected ')'");
  Status t = s.WithContext("line 3");
  EXPECT_EQ(t.message(), "line 3: unexpected ')'");
  EXPECT_EQ(t.code(), StatusCode::kParseError);
  EXPECT_TRUE(Status().WithContext("ctx").ok());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    PEBBLETC_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<int> { return Status::ParseError("no"); };
  auto wrapper = [&]() -> Result<int> {
    PEBBLETC_ASSIGN_OR_RETURN(int v, fails());
    return v + 1;
  };
  auto r = wrapper();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto succeeds = []() -> Result<int> { return 10; };
  auto wrapper = [&]() -> Result<int> {
    PEBBLETC_ASSIGN_OR_RETURN(int v, succeeds());
    return v + 1;
  };
  auto r = wrapper();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 11);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit in 1000 draws
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(5);
  Rng b = a.Fork();
  // The fork and the parent should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(StrUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  ab c \t\n"), "ab c");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StrUtilTest, SplitAndTrim) {
  std::vector<std::string> parts = SplitAndTrim(" a, b ,, c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitAndTrim("", ',').empty());
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(Join({}, "."), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(StartsWith("ab", ""));
}

}  // namespace
}  // namespace pebbletc
