// Tests for src/core: the Theorem 4.4 typechecker — bounded refutation, the
// downward fast path, the complete MSO pipeline, inverse type inference, and
// counterexample extraction.

#include <gtest/gtest.h>

#include <optional>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/core/downward.h"
#include "src/core/typechecker.h"
#include "src/pt/eval.h"
#include "src/pt/paper_machines.h"
#include "src/ta/inclusion.h"
#include "src/ta/nbta.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

RankedAlphabet MicroRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  return sigma;
}

// All leaves labelled `leaf`, any internal structure.
Nbta AllLeaves(const RankedAlphabet& sigma, SymbolId leaf) {
  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId q = a.AddState();
  a.accepting[q] = true;
  a.AddLeafRule(leaf, q);
  for (SymbolId s : sigma.BinarySymbols()) a.AddRule(s, q, q, q);
  return a;
}

TEST(DownwardTest, FragmentDetection) {
  RankedAlphabet sigma = TinyRanked();
  EXPECT_TRUE(IsDownwardTransducer(MakeCopyTransducer(sigma)));
  PebbleTransducer t(1, 4, 4);
  StateId q = t.AddState(1);
  t.SetStart(q);
  t.AddMove({}, q, PebbleTransducer::MoveKind::kUpLeft, q);
  EXPECT_FALSE(IsDownwardTransducer(t));
  PebbleTransducer t2(2, 4, 4);
  StateId p1 = t2.AddState(1);
  StateId p2 = t2.AddState(2);
  t2.SetStart(p1);
  t2.AddMove({}, p1, PebbleTransducer::MoveKind::kPlacePebble, p2);
  EXPECT_FALSE(IsDownwardTransducer(t2));
}

TEST(TypecheckTest, CopyTypechecksAgainstItsOwnType) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta tau = AllLeaves(sigma, sigma.Find("a0"));
  auto r = std::move(tc.Typecheck(tau, tau)).ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kTypechecks);
  EXPECT_EQ(r.method, "downward-fastpath");
}

TEST(TypecheckTest, ResultCarriesUnifiedOpCounters) {
  // Every pass runs under one TaOpContext; the result's cost profile must
  // reflect the run (complement of τ2, indexes, trims, wall time).
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta tau = AllLeaves(sigma, sigma.Find("a0"));
  auto r = std::move(tc.Typecheck(tau, tau)).ValueOrDie();
  EXPECT_GT(r.op_counters.complementations, 0u);
  EXPECT_GT(r.op_counters.determinizations, 0u);
  EXPECT_GT(r.op_counters.indexes_built, 0u);
  EXPECT_GT(r.op_counters.trims, 0u);
  EXPECT_GT(r.op_counters.rules_scanned, 0u);
  EXPECT_GT(r.op_counters.states_materialized, 0u);
  EXPECT_GT(r.op_counters.op_nanos, 0u);
}


TEST(TypecheckTest, CopyCounterexampleWhenTypesDiffer) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta tau1 = AllLeaves(sigma, sigma.Find("a0"));
  Nbta tau2 = AllLeaves(sigma, sigma.Find("b0"));
  auto r = std::move(tc.Typecheck(tau1, tau2)).ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kCounterexample);
  ASSERT_TRUE(r.counterexample_input.has_value());
  ASSERT_TRUE(r.counterexample_output.has_value());
  // The counterexample is genuine: input ∈ τ1, output ∈ T(input), ∉ τ2.
  EXPECT_TRUE(tau1.Accepts(*r.counterexample_input));
  EXPECT_FALSE(tau2.Accepts(*r.counterexample_output));
  auto member = OutputContains(copy, *r.counterexample_input,
                               *r.counterexample_output);
  ASSERT_TRUE(member.ok());
  EXPECT_TRUE(*member);
}

TEST(TypecheckTest, FastPathAndRefutationAgree) {
  // Disable the refutation pre-pass; the fast path alone must find the same
  // verdicts on a family of type pairs.
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta a0 = AllLeaves(sigma, sigma.Find("a0"));
  Nbta b0 = AllLeaves(sigma, sigma.Find("b0"));
  Nbta uni = UniversalNbta(sigma);
  TypecheckOptions no_refute;
  no_refute.refutation_max_trees = 0;
  struct Case {
    const Nbta* t1;
    const Nbta* t2;
    TypecheckVerdict want;
  };
  for (const Case& c : std::initializer_list<Case>{
           {&a0, &a0, TypecheckVerdict::kTypechecks},
           {&a0, &uni, TypecheckVerdict::kTypechecks},
           {&uni, &a0, TypecheckVerdict::kCounterexample},
           {&b0, &a0, TypecheckVerdict::kCounterexample}}) {
    auto fast = std::move(tc.Typecheck(*c.t1, *c.t2, no_refute)).ValueOrDie();
    EXPECT_EQ(fast.verdict, c.want);
    EXPECT_EQ(fast.method, "downward-fastpath");
    auto refuted = std::move(tc.Typecheck(*c.t1, *c.t2)).ValueOrDie();
    EXPECT_EQ(refuted.verdict, c.want);
  }
}

TEST(TypecheckTest, AntichainPathAgreesWithExplicit) {
  // The antichain fast path (docs/INCLUSION.md) must reach the same verdict
  // as the explicit determinize+complement pipeline, with an identical
  // counterexample input and a genuine (if not identical) violating output.
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta a0 = AllLeaves(sigma, sigma.Find("a0"));
  Nbta b0 = AllLeaves(sigma, sigma.Find("b0"));
  Nbta uni = UniversalNbta(sigma);
  TypecheckOptions antichain;
  antichain.inclusion = TaInclusionPath::kAntichain;
  struct Case {
    const Nbta* t1;
    const Nbta* t2;
  };
  for (const Case& c : std::initializer_list<Case>{
           {&a0, &a0}, {&a0, &uni}, {&uni, &a0}, {&b0, &a0}, {&uni, &uni}}) {
    auto explicit_r = std::move(tc.Typecheck(*c.t1, *c.t2)).ValueOrDie();
    auto anti_r = std::move(tc.Typecheck(*c.t1, *c.t2, antichain)).ValueOrDie();
    EXPECT_EQ(anti_r.verdict, explicit_r.verdict);
    EXPECT_EQ(anti_r.counterexample_input.has_value(),
              explicit_r.counterexample_input.has_value());
    if (anti_r.verdict == TypecheckVerdict::kCounterexample) {
      ASSERT_TRUE(anti_r.counterexample_input.has_value());
      EXPECT_TRUE(*anti_r.counterexample_input ==
                  *explicit_r.counterexample_input);
      ASSERT_TRUE(anti_r.counterexample_output.has_value());
      EXPECT_TRUE(c.t1->Accepts(*anti_r.counterexample_input));
      EXPECT_FALSE(c.t2->Accepts(*anti_r.counterexample_output));
      auto member = OutputContains(copy, *anti_r.counterexample_input,
                                   *anti_r.counterexample_output);
      ASSERT_TRUE(member.ok());
      EXPECT_TRUE(*member);
    }
  }
}

TEST(TypecheckTest, AntichainRefutationSkipsComplement) {
  // A pass-1 refutation on the antichain path must return without ever
  // complementing (or determinizing) τ2 — that is the point of the path.
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta uni = UniversalNbta(sigma);
  Nbta a0 = AllLeaves(sigma, sigma.Find("a0"));
  TypecheckOptions antichain;
  antichain.inclusion = TaInclusionPath::kAntichain;
  auto r = std::move(tc.Typecheck(uni, a0, antichain)).ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kCounterexample);
  EXPECT_EQ(r.method, "bounded-refutation");
  EXPECT_EQ(r.op_counters.complementations, 0u);
  EXPECT_EQ(r.op_counters.determinizations, 0u);
  EXPECT_GT(r.op_counters.inclusions, 0u);
}

TEST(TypecheckTest, AutoSelectsAntichainForDeterministicTau2) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta uni = UniversalNbta(sigma);
  Nbta det = AllLeaves(sigma, sigma.Find("a0"));  // bottom-up deterministic
  Nbta nondet = det;  // two states reachable on the same leaf: not in fragment
  StateId extra = nondet.AddState();
  nondet.accepting[extra] = true;
  nondet.AddLeafRule(sigma.Find("a0"), extra);
  ASSERT_TRUE(NbtaIsBottomUpDeterministic(det));
  ASSERT_FALSE(NbtaIsBottomUpDeterministic(nondet));
  TypecheckOptions auto_path;
  auto_path.inclusion = TaInclusionPath::kAuto;
  auto r_det = std::move(tc.Typecheck(uni, det, auto_path)).ValueOrDie();
  EXPECT_EQ(r_det.verdict, TypecheckVerdict::kCounterexample);
  EXPECT_GT(r_det.op_counters.inclusions, 0u);
  auto r_nondet = std::move(tc.Typecheck(uni, nondet, auto_path)).ValueOrDie();
  EXPECT_EQ(r_nondet.verdict, TypecheckVerdict::kCounterexample);
  EXPECT_EQ(r_nondet.op_counters.inclusions, 0u);  // fell back to explicit
}

TEST(TypecheckTest, CheckOnInputAntichainIsExact) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta tau2 = AllLeaves(sigma, sigma.Find("a0"));
  auto good = std::move(ParseBinaryTerm("a2(a0,a0)", sigma)).ValueOrDie();
  auto bad = std::move(ParseBinaryTerm("a2(a0,b0)", sigma)).ValueOrDie();
  TypecheckOptions antichain;
  antichain.inclusion = TaInclusionPath::kAntichain;
  EXPECT_TRUE(
      std::move(tc.CheckOnInput(good, tau2, antichain)).ValueOrDie());
  std::optional<BinaryTree> violating;
  auto r = tc.CheckOnInput(bad, tau2, antichain, &violating);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  ASSERT_TRUE(violating.has_value());
  EXPECT_TRUE(*violating == bad);  // copy: the violating output is the input
}

TEST(TypecheckTest, EmptyInputTypeAlwaysTypechecks) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta none = EmptyLanguageNbta(sigma);
  Nbta tau2 = AllLeaves(sigma, sigma.Find("a0"));
  auto r = std::move(tc.Typecheck(none, tau2)).ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kTypechecks);
}

TEST(TypecheckTest, CheckOnInputIsExact) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta tau2 = AllLeaves(sigma, sigma.Find("a0"));
  auto good = std::move(ParseBinaryTerm("a2(a0,a0)", sigma)).ValueOrDie();
  auto bad = std::move(ParseBinaryTerm("a2(a0,b0)", sigma)).ValueOrDie();
  EXPECT_TRUE(std::move(tc.CheckOnInput(good, tau2)).ValueOrDie());
  std::optional<BinaryTree> violating;
  auto r = tc.CheckOnInput(bad, tau2, {}, &violating);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  ASSERT_TRUE(violating.has_value());
  EXPECT_TRUE(*violating == bad);  // copy: the violating output is the input
}

// A non-downward transducer small enough for the complete MSO pipeline:
// outputs the single leaf `l` when the input root is a leaf (and produces
// nothing otherwise); an unreachable up-move pushes it out of the downward
// fragment.
PebbleTransducer TinyNonDownward(const RankedAlphabet& sigma) {
  PebbleTransducer t(1, static_cast<uint32_t>(sigma.size()),
                     static_cast<uint32_t>(sigma.size()));
  StateId q = t.AddState(1);
  StateId dead = t.AddState(1);
  t.SetStart(q);
  t.AddOutputLeaf({.symbol = sigma.Find("l")}, q, sigma.Find("l"));
  t.AddMove({}, dead, PebbleTransducer::MoveKind::kUpLeft, dead);
  return t;
}

TEST(TypecheckTest, CompleteMsoPipelinePositive) {
  RankedAlphabet sigma = MicroRanked();
  PebbleTransducer t = TinyNonDownward(sigma);
  ASSERT_FALSE(IsDownwardTransducer(t));
  Typechecker tc(t, sigma, sigma);
  Nbta tau2 = AllLeaves(sigma, sigma.Find("l"));
  TypecheckOptions opts;
  opts.refutation_max_trees = 0;  // force the complete pipeline
  auto r = std::move(tc.Typecheck(UniversalNbta(sigma), tau2, opts))
               .ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kTypechecks);
  EXPECT_EQ(r.method, "behavior-complete");

  // Force the Theorem 4.7 MSO route; the verdict must not change.
  opts.behavior_max_state_bits = 0;
  auto r2 = std::move(tc.Typecheck(UniversalNbta(sigma), tau2, opts))
                .ValueOrDie();
  EXPECT_EQ(r2.verdict, TypecheckVerdict::kTypechecks);
  EXPECT_EQ(r2.method, "mso-complete");
  EXPECT_GT(r2.mso_stats.automata_built, 0u);

  // With intermediate minimization the MSO route must reach the same
  // verdict, and the minimizations must show up in the cost profile.
  opts.minimize_intermediate = true;
  auto r3 = std::move(tc.Typecheck(UniversalNbta(sigma), tau2, opts))
                .ValueOrDie();
  EXPECT_EQ(r3.verdict, TypecheckVerdict::kTypechecks);
  EXPECT_EQ(r3.method, "mso-complete");
  EXPECT_GT(r3.op_counters.minimizations, 0u);
  EXPECT_LE(r3.mso_stats.max_intermediate_states,
            r2.mso_stats.max_intermediate_states);
}

TEST(TypecheckTest, CompleteMsoPipelineNegative) {
  RankedAlphabet sigma = MicroRanked();
  PebbleTransducer t = TinyNonDownward(sigma);
  Typechecker tc(t, sigma, sigma);
  // τ2 = trees rooted at `n` — the produced leaf `l` violates it.
  Nbta tau2;
  tau2.num_symbols = 2;
  {
    StateId any = tau2.AddState();
    StateId top = tau2.AddState();
    tau2.accepting[top] = true;
    tau2.AddLeafRule(sigma.Find("l"), any);
    tau2.AddRule(sigma.Find("n"), any, any, any);
    tau2.AddRule(sigma.Find("n"), any, any, top);
  }
  TypecheckOptions opts;
  opts.refutation_max_trees = 0;
  opts.behavior_max_state_bits = 0;  // force the MSO route
  auto r = std::move(tc.Typecheck(UniversalNbta(sigma), tau2, opts))
               .ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kCounterexample);
  EXPECT_EQ(r.method, "mso-complete");
  ASSERT_TRUE(r.counterexample_input.has_value());
  // The counterexample input must be the single leaf (the only input with
  // an output at all).
  EXPECT_EQ(r.counterexample_input->size(), 1u);
  ASSERT_TRUE(r.counterexample_output.has_value());
  EXPECT_FALSE(tau2.Accepts(*r.counterexample_output));
}

TEST(TypecheckTest, BoundedRefutationFindsBugBeforeCompletePipeline) {
  RankedAlphabet sigma = MicroRanked();
  PebbleTransducer t = TinyNonDownward(sigma);
  Typechecker tc(t, sigma, sigma);
  Nbta tau2;  // empty output type: any produced output is a violation
  tau2.num_symbols = 2;
  tau2.AddState();
  auto r = std::move(tc.Typecheck(UniversalNbta(sigma), tau2)).ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kCounterexample);
  EXPECT_EQ(r.method, "bounded-refutation");
}

TEST(TypecheckTest, InconclusiveWhenEverythingDisabled) {
  RankedAlphabet sigma = MicroRanked();
  PebbleTransducer t = TinyNonDownward(sigma);
  Typechecker tc(t, sigma, sigma);
  TypecheckOptions opts;
  opts.refutation_max_trees = 0;
  opts.run_complete_decision = false;
  auto r = std::move(tc.Typecheck(UniversalNbta(sigma),
                                  AllLeaves(sigma, sigma.Find("l")), opts))
               .ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kInconclusive);
}

TEST(InverseInferenceTest, VacuousOutputsMakeEverythingConform) {
  // T produces an output only on the single-leaf input; on every other tree
  // T(t) = ∅ ⊆ τ2 vacuously, so the inverse type is *universal*.
  RankedAlphabet sigma = MicroRanked();
  PebbleTransducer t = TinyNonDownward(sigma);
  Typechecker tc(t, sigma, sigma);
  Nbta tau2 = AllLeaves(sigma, sigma.Find("l"));
  auto inverse = std::move(tc.InferInverseType(tau2)).ValueOrDie();
  auto eq = NbtaEquivalent(inverse, UniversalNbta(sigma), sigma);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(InverseInferenceTest, CopyInverseIsTheOutputType) {
  // For the identity transformation the inverse type of τ2 is τ2 itself.
  RankedAlphabet sigma = MicroRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  // τ2: the root is the binary symbol n.
  Nbta tau2;
  tau2.num_symbols = 2;
  {
    StateId any = tau2.AddState();
    StateId top = tau2.AddState();
    tau2.accepting[top] = true;
    tau2.AddLeafRule(sigma.Find("l"), any);
    tau2.AddRule(sigma.Find("n"), any, any, any);
    tau2.AddRule(sigma.Find("n"), any, any, top);
  }
  auto inverse = std::move(tc.InferInverseType(tau2)).ValueOrDie();
  auto eq = NbtaEquivalent(inverse, tau2, sigma);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(DownwardProductTest, AgreesWithPerInputChecks) {
  // Cross-validation: the downward product automaton's language must equal
  // {t | T(t) ∩ inst(D) ≠ ∅}, checked per-tree via A_t on random inputs.
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Nbta d_lang = AllLeaves(sigma, sigma.Find("a0"));
  auto d = std::move(DeterminizeNbta(d_lang, sigma)).ValueOrDie();
  auto product =
      std::move(DownwardProductAutomaton(copy, d, sigma)).ValueOrDie();
  Rng rng(31);
  for (int i = 0; i < 40; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(10));
    // For copy, T(t) ∩ inst(D) ≠ ∅ iff t ∈ inst(D).
    EXPECT_EQ(product.Accepts(t), d_lang.Accepts(t))
        << BinaryTermString(t, sigma);
  }
}

// Root must be the binary symbol `n`; subtrees are unconstrained. Used to
// give the degraded salvage search a violation it can find on a leaf input.
Nbta RootIsBinary(const RankedAlphabet& sigma) {
  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId any = a.AddState();
  StateId root = a.AddState();
  a.accepting[root] = true;
  for (SymbolId s : sigma.LeafSymbols()) a.AddLeafRule(s, any);
  for (SymbolId s : sigma.BinarySymbols()) {
    a.AddRule(s, any, any, any);
    a.AddRule(s, root, any, any);
  }
  return a;
}

TEST(TypecheckTest, VerdictLadderTable) {
  // One scenario per rung of the degradation ladder:
  //  1. exact pass decides, nothing exhausted;
  //  2. an early pass exhausts but a later exact pass still proves the
  //     instance (exhausted=true yet the verdict is exact);
  //  3. every exact pass is starved, the degraded enumeration salvages a
  //     concrete counterexample;
  //  4. everything is starved and no violation exists within the salvage
  //     budget — kUnknown, never a fake kTypechecks.
  RankedAlphabet tiny = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(tiny);
  Typechecker copy_tc(copy, tiny, tiny);
  Nbta tau_a0 = AllLeaves(tiny, tiny.Find("a0"));

  RankedAlphabet micro = MicroRanked();
  PebbleTransducer nd = TinyNonDownward(micro);
  Typechecker nd_tc(nd, micro, micro);
  Nbta uni = UniversalNbta(micro);
  Nbta root_n = RootIsBinary(micro);
  Nbta all_l = AllLeaves(micro, micro.Find("l"));

  TypecheckOptions exact;  // defaults: every pass fully budgeted

  TypecheckOptions tight_configs;  // pass 1's per-tree config spaces blow
  tight_configs.max_configs = 1;

  TypecheckOptions no_exact;  // complement(τ2) exhausts before any pass
  no_exact.refutation_max_trees = 0;
  no_exact.max_det_states = 1;

  struct Case {
    const char* name;
    const Typechecker* tc;
    const Nbta* tau1;
    const Nbta* tau2;
    const TypecheckOptions* opts;
    TypecheckVerdict want_verdict;
    const char* want_method;
    bool want_exhausted;
    const char* want_pass;  // ExhaustionReport::pass when exhausted
  };
  const Case kCases[] = {
      {"exact-decides", &copy_tc, &tau_a0, &tau_a0, &exact,
       TypecheckVerdict::kTypechecks, "downward-fastpath", false, ""},
      {"later-pass-rescues-exhausted-refutation", &copy_tc, &tau_a0, &tau_a0,
       &tight_configs, TypecheckVerdict::kTypechecks, "downward-fastpath",
       true, "bounded-refutation"},
      {"degraded-search-salvages-witness", &nd_tc, &uni, &root_n, &no_exact,
       TypecheckVerdict::kCounterexample, "degraded-enumeration", true,
       "output-complement"},
      {"unknown-when-everything-exhausts", &nd_tc, &uni, &all_l, &no_exact,
       TypecheckVerdict::kUnknown, "none", true, "output-complement"},
  };

  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    auto r =
        std::move(c.tc->Typecheck(*c.tau1, *c.tau2, *c.opts)).ValueOrDie();
    EXPECT_EQ(r.verdict, c.want_verdict);
    EXPECT_EQ(r.method, c.want_method);
    EXPECT_EQ(r.exhausted.exhausted, c.want_exhausted);
    if (c.want_exhausted) {
      EXPECT_EQ(r.exhausted.pass, c.want_pass);
      EXPECT_NE(r.exhausted.code, StatusCode::kOk);
      EXPECT_FALSE(r.exhausted.detail.empty());
      EXPECT_FALSE(r.notes.empty());
    } else {
      EXPECT_EQ(r.exhausted.code, StatusCode::kOk);
    }
    // kUnknown must never masquerade as proof: a kTypechecks verdict may
    // only come from an exact pass, and the salvage search only ever
    // upgrades kUnknown to kCounterexample.
    if (r.verdict == TypecheckVerdict::kTypechecks) {
      EXPECT_NE(r.method, "none");
      EXPECT_NE(r.method, "degraded-enumeration");
    }
    if (r.verdict == TypecheckVerdict::kCounterexample) {
      // Witnesses are genuine even when produced by the salvage pass.
      ASSERT_TRUE(r.counterexample_input.has_value());
      ASSERT_TRUE(r.counterexample_output.has_value());
      EXPECT_TRUE(c.tau1->Accepts(*r.counterexample_input));
      EXPECT_FALSE(c.tau2->Accepts(*r.counterexample_output));
    }
    if (r.verdict == TypecheckVerdict::kUnknown) {
      EXPECT_NE(r.notes.find("degraded-enumeration: no violation"),
                std::string::npos)
          << r.notes;
    }
  }
}

}  // namespace
}  // namespace pebbletc
