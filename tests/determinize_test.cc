// Regression tests pinning the frontier-driven determinization engine
// (docs/DETERMINIZE.md): dense/sparse regime parity, mid-frontier budget
// exhaustion leaving consistent counters, and counter plumbing through the
// operations that determinize internally.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"
#include "src/tree/random_tree.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

// Appending inert states pushes the automaton across the dense-regime
// cutoff without changing its language, so the same language runs through
// both subset representations.
Nbta PadAcrossDenseCutoff(const Nbta& a) {
  Nbta padded = a;
  while (padded.num_states <= NbtaIndex::kDenseMaskMaxStates) {
    (void)padded.AddState();
  }
  return padded;
}

// The engine picks its regime from the *input* state count: ≤ 16 states is
// the uint32-mask fast path, above it the packed-bitset worklist. Both must
// produce the same deterministic language (state numbering may differ).
TEST(DeterminizeRegimeTest, DenseAndSparseRegimesAgreeOnTheSameLanguage) {
  RankedAlphabet sigma = TinyRanked();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    RandomNbtaOptions opts;
    opts.num_states = 5;
    opts.rule_density = 0.4;
    Nbta a = RandomNbta(sigma, rng, opts);
    Nbta padded = PadAcrossDenseCutoff(a);
    ASSERT_LE(a.num_states, NbtaIndex::kDenseMaskMaxStates);
    ASSERT_GT(padded.num_states, NbtaIndex::kDenseMaskMaxStates);

    auto dense = DeterminizeNbta(a, sigma);
    auto sparse = DeterminizeNbta(padded, sigma);
    ASSERT_TRUE(dense.ok()) << "seed " << seed;
    ASSERT_TRUE(sparse.ok()) << "seed " << seed;
    // Reachable-subset counts match: the inert padding states never appear
    // in any reachable subset.
    EXPECT_EQ(dense->num_states(), sparse->num_states()) << "seed " << seed;
    for (int i = 0; i < 60; ++i) {
      BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(15));
      EXPECT_EQ(dense->Accepts(t), sparse->Accepts(t))
          << "seed " << seed << " tree " << i;
    }
    auto equiv =
        NbtaEquivalent(dense->ToNbta(sigma), sparse->ToNbta(sigma), sigma);
    ASSERT_TRUE(equiv.ok()) << "seed " << seed;
    EXPECT_TRUE(*equiv) << "seed " << seed;
  }
}

// A state budget tripping mid-frontier must fail with kResourceExhausted
// and leave the context's counters describing the work actually done: the
// frontier progress counters advance, the completion counters do not.
TEST(DeterminizeBudgetTest, DenseExhaustionLeavesConsistentCounters) {
  Rng rng(77);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 8;
  opts.rule_density = 0.8;
  Nbta a = RandomNbta(sigma, rng, opts);

  // Unbudgeted run for the true subset count.
  TaOpContext free_ctx;
  free_ctx.budgets.max_det_states = 0;
  auto full = DeterminizeNbta(NbtaIndex(a), sigma, &free_ctx);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(free_ctx.counters.det_subsets_interned, full->num_states());
  EXPECT_EQ(free_ctx.counters.states_materialized, full->num_states());
  EXPECT_EQ(free_ctx.counters.determinizations, 1u);
  EXPECT_GT(free_ctx.counters.det_pairs_expanded, 0u);
  ASSERT_GT(full->num_states(), 4u) << "instance too small to exhaust";

  TaOpContext ctx;
  ctx.budgets.max_det_states = 4;
  auto det = DeterminizeNbta(NbtaIndex(a), sigma, &ctx);
  ASSERT_FALSE(det.ok());
  EXPECT_EQ(det.status().code(), StatusCode::kResourceExhausted);
  // Frontier progress was recorded up to the abort...
  EXPECT_GT(ctx.counters.det_subsets_interned, 4u);
  EXPECT_LE(ctx.counters.det_subsets_interned,
            free_ctx.counters.det_subsets_interned);
  EXPECT_GT(ctx.counters.det_pairs_expanded, 0u);
  EXPECT_LT(ctx.counters.det_pairs_expanded,
            free_ctx.counters.det_pairs_expanded);
  // ...but nothing claims completion.
  EXPECT_EQ(ctx.counters.determinizations, 0u);
  EXPECT_EQ(ctx.counters.states_materialized, 0u);
}

TEST(DeterminizeBudgetTest, SparseExhaustionLeavesConsistentCounters) {
  Rng rng(78);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 20;  // above the dense cutoff: packed-bitset path
  opts.rule_density = 0.02;
  Nbta a = RandomNbta(sigma, rng, opts);

  TaOpContext free_ctx;
  free_ctx.budgets.max_det_states = 0;
  auto full = DeterminizeNbta(NbtaIndex(a), sigma, &free_ctx);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->num_states(), 2u) << "instance too small to exhaust";

  TaOpContext ctx;
  ctx.budgets.max_det_states = 2;
  auto det = DeterminizeNbta(NbtaIndex(a), sigma, &ctx);
  ASSERT_FALSE(det.ok());
  EXPECT_EQ(det.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(ctx.counters.det_subsets_interned, 2u);
  EXPECT_GT(ctx.counters.det_pairs_expanded, 0u);
  EXPECT_EQ(ctx.counters.determinizations, 0u);
  EXPECT_EQ(ctx.counters.states_materialized, 0u);
}

// Ops that determinize internally (ComplementNbta here, and through it
// NbtaIncludes/NbtaEquivalent) surface the frontier counters on the same
// context, so a pipeline's op_counters expose the subset-construction work.
TEST(DeterminizeCountersTest, ComplementPropagatesFrontierCounters) {
  Rng rng(5);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 4;
  Nbta a = RandomNbta(sigma, rng, opts);
  TaOpContext ctx;
  auto comp = ComplementNbta(NbtaIndex(a), sigma, &ctx);
  ASSERT_TRUE(comp.ok());
  EXPECT_EQ(ctx.counters.complementations, 1u);
  EXPECT_EQ(ctx.counters.determinizations, 1u);
  EXPECT_GT(ctx.counters.det_subsets_interned, 0u);
  EXPECT_GT(ctx.counters.det_pairs_expanded, 0u);
}

// The deterministic result is complete: every (symbol, l, r) entry of the
// table is defined and evaluation never escapes the materialized states —
// the frontier discipline's "paired against every known subset" invariant.
TEST(DeterminizeRegimeTest, ResultIsCompleteInBothRegimes) {
  Rng rng(9);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 6;
  opts.rule_density = 0.5;
  Nbta a = RandomNbta(sigma, rng, opts);
  for (const Nbta& input : {a, PadAcrossDenseCutoff(a)}) {
    auto det = DeterminizeNbta(input, sigma);
    ASSERT_TRUE(det.ok());
    const uint32_t n = det->num_states();
    for (SymbolId s : sigma.BinarySymbols()) {
      for (StateId l = 0; l < n; ++l) {
        for (StateId r = 0; r < n; ++r) {
          EXPECT_LT(det->Next(s, l, r), n);
        }
      }
    }
    for (SymbolId s : sigma.LeafSymbols()) {
      EXPECT_LT(det->LeafState(s), n);
    }
  }
}

}  // namespace
}  // namespace pebbletc
