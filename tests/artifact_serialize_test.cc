// Tests for the self-contained artifact formats in src/ta/serialize.{h,cc}:
// ranked alphabets, transducer artifacts, DTD artifacts, schema artifacts,
// and the versioned "PTAR" container. These formats sit on the serving trust
// boundary (docs/SERVING.md), so beyond bit-exact round trips the suite
// drives corrupted, truncated, and non-canonical byte streams through every
// deserializer and asserts a structured kParseError — never a crash and
// never a structurally invalid object.

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/dtd/dtd.h"
#include "src/pt/paper_machines.h"
#include "src/pt/transducer.h"
#include "src/ta/nbta.h"
#include "src/ta/serialize.h"
#include "src/tree/term.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {
namespace {

RankedAlphabet SampleAlphabet() {
  RankedAlphabet sigma;
  (void)*sigma.AddBinary("a2");
  (void)*sigma.AddBinary("b2");
  (void)*sigma.AddLeaf("a0");
  (void)*sigma.AddLeaf("b0");
  return sigma;
}

std::string AlphabetBytesOf(const RankedAlphabet& sigma) {
  std::string bytes;
  SerializeRankedAlphabet(sigma, &bytes);
  return bytes;
}

std::string TransducerBytesOf(const TransducerArtifact& artifact) {
  std::string bytes;
  SerializeTransducerArtifact(artifact, &bytes);
  return bytes;
}

std::string DtdBytesOf(const SpecializedDtd& dtd) {
  std::string bytes;
  SerializeDtdArtifact(dtd, &bytes);
  return bytes;
}

std::string SchemaBytesOf(const SchemaArtifact& artifact) {
  std::string bytes;
  SerializeSchemaArtifact(artifact, &bytes);
  return bytes;
}

constexpr char kFigure1Dtd[] = R"(
  a := b*.c.e
  b := ()
  c := d*
  d := ()
  e := ()
)";

// Types decoupled from tags: the two `b` children carry different types.
constexpr char kSpecializedDtd[] = R"(
  a[a] := bc.bd
  bc[b] := c0*
  bd[b] := d0*
  c0[c] := ()
  d0[d] := ()
)";

// A 2-pebble machine exercising every transition kind, guard masks, and
// multi-level state discipline.
TransducerArtifact SampleTransducerArtifact() {
  using M = PebbleTransducer::MoveKind;
  TransducerArtifact artifact;
  artifact.input_alphabet = SampleAlphabet();
  artifact.output_alphabet = SampleAlphabet();
  PebbleTransducer t(2, 4, 4);
  StateId q1 = t.AddState(1);
  StateId p = t.AddState(2);
  StateId check = t.AddState(2);
  t.SetStart(q1);
  t.AddMove({}, q1, M::kPlacePebble, p);
  t.AddMove({.symbol = 0}, p, M::kDownLeft, check);
  t.AddMove({.symbol = 1}, p, M::kStay, check);
  t.AddOutputLeaf({.presence_mask = 1, .presence_value = 1}, check, 2);
  t.AddOutputBinary({.presence_mask = 1, .presence_value = 0}, check, 0,
                    check, check);
  artifact.transducer = std::move(t);
  return artifact;
}

// ---------------------------------------------------------------------------
// Ranked alphabets.
// ---------------------------------------------------------------------------

TEST(ArtifactSerializeTest, AlphabetRoundTripIsBitExact) {
  const RankedAlphabet sigma = SampleAlphabet();
  const std::string bytes = AlphabetBytesOf(sigma);
  Result<RankedAlphabet> back = DeserializeRankedAlphabet(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(AlphabetBytesOf(*back), bytes);
  ASSERT_EQ(back->size(), sigma.size());
  for (SymbolId s = 0; s < sigma.size(); ++s) {
    EXPECT_EQ(back->Name(s), sigma.Name(s));
    EXPECT_EQ(back->Rank(s), sigma.Rank(s));
  }
}

TEST(ArtifactSerializeTest, EmptyAlphabetRoundTrips) {
  RankedAlphabet empty;
  const std::string bytes = AlphabetBytesOf(empty);
  Result<RankedAlphabet> back = DeserializeRankedAlphabet(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST(ArtifactSerializeTest, AlphabetRejectsEveryTruncationAndTrailing) {
  const std::string bytes = AlphabetBytesOf(SampleAlphabet());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<RankedAlphabet> r =
        DeserializeRankedAlphabet(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes parsed";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  EXPECT_FALSE(DeserializeRankedAlphabet(bytes + '\0').ok());
}

TEST(ArtifactSerializeTest, AlphabetRejectsBadRankAndDuplicates) {
  std::string bytes = AlphabetBytesOf(SampleAlphabet());
  // Layout: u32 count, then per symbol {u8 rank, u32 len, name}. Symbol 0
  // ("a2", binary) has its rank byte at offset 4.
  std::string bad_rank = bytes;
  bad_rank[4] = 1;  // rank 1 is not a valid tree-symbol rank
  EXPECT_FALSE(DeserializeRankedAlphabet(bad_rank).ok());

  RankedAlphabet dup_source = SampleAlphabet();
  std::string dup = AlphabetBytesOf(dup_source);
  // Rename symbol 1 ("b2", offset 4+1+4+2 = 11 for its rank byte, name at
  // offset 16) to "a2", colliding with symbol 0.
  ASSERT_EQ(dup.substr(16, 2), "b2");
  dup[16] = 'a';
  Result<RankedAlphabet> r = DeserializeRankedAlphabet(dup);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("a2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Transducer artifacts.
// ---------------------------------------------------------------------------

TEST(ArtifactSerializeTest, TransducerRoundTripIsBitExact) {
  const TransducerArtifact artifact = SampleTransducerArtifact();
  const std::string bytes = TransducerBytesOf(artifact);
  Result<TransducerArtifact> back = DeserializeTransducerArtifact(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(TransducerBytesOf(*back), bytes);
  EXPECT_EQ(back->transducer.num_states(), artifact.transducer.num_states());
  EXPECT_EQ(back->transducer.transitions().size(),
            artifact.transducer.transitions().size());
  EXPECT_EQ(back->transducer.max_pebbles(), 2u);
  EXPECT_TRUE(back->transducer
                  .Validate(back->input_alphabet, back->output_alphabet)
                  .ok());
}

TEST(ArtifactSerializeTest, CopyTransducerRoundTrips) {
  TransducerArtifact artifact;
  artifact.input_alphabet = SampleAlphabet();
  artifact.output_alphabet = SampleAlphabet();
  artifact.transducer = MakeCopyTransducer(artifact.input_alphabet);
  const std::string bytes = TransducerBytesOf(artifact);
  Result<TransducerArtifact> back = DeserializeTransducerArtifact(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(TransducerBytesOf(*back), bytes);
}

TEST(ArtifactSerializeTest, TransducerRejectsEveryTruncation) {
  const std::string bytes = TransducerBytesOf(SampleTransducerArtifact());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<TransducerArtifact> r =
        DeserializeTransducerArtifact(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes parsed";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  EXPECT_FALSE(DeserializeTransducerArtifact(bytes + '\0').ok());
}

TEST(ArtifactSerializeTest, TransducerRejectsBadHeaderFields) {
  const std::string bytes = TransducerBytesOf(SampleTransducerArtifact());
  // max_pebbles is the first u32.
  std::string zero_pebbles = bytes;
  zero_pebbles[0] = 0;
  EXPECT_FALSE(DeserializeTransducerArtifact(zero_pebbles).ok());
  std::string huge_pebbles = bytes;
  huge_pebbles[0] = 31;
  EXPECT_FALSE(DeserializeTransducerArtifact(huge_pebbles).ok());
}

TEST(ArtifactSerializeTest, TransducerRejectsNonCanonicalPadding) {
  // A leaf-output transition must carry zeroed move/to/branch fields; a
  // hand-crafted stream that sets them is rejected even though the mutators
  // would have silently canonicalized the same values.
  using M = PebbleTransducer::MoveKind;
  TransducerArtifact artifact;
  artifact.input_alphabet = SampleAlphabet();
  artifact.output_alphabet = SampleAlphabet();
  PebbleTransducer t(1, 4, 4);
  StateId q = t.AddState(1);
  t.SetStart(q);
  t.AddMove({}, q, M::kStay, q);
  t.AddOutputLeaf({}, q, 2);
  artifact.transducer = std::move(t);
  const std::string bytes = TransducerBytesOf(artifact);

  // Transition records are 34 bytes ({u8 kind, u32 guard×3, u32 from,
  // u8 move, u32 to, u32 out×3}); the leaf output is the last record, and
  // its `move` byte sits 17 bytes in.
  const size_t record = bytes.size() - 34;
  ASSERT_EQ(static_cast<unsigned char>(bytes[record]), 1u);  // kOutputLeaf
  std::string dirty = bytes;
  dirty[record + 17] = 2;  // move = kDownLeft on an output transition
  Result<TransducerArtifact> r = DeserializeTransducerArtifact(dirty);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("canonical"), std::string::npos);
}

TEST(ArtifactSerializeTest, TransducerRejectsOutOfRangeStates) {
  const std::string bytes = TransducerBytesOf(SampleTransducerArtifact());
  // Flip the `from` field of the final 34-byte transition record (u32 at
  // offset 13, after the kind byte and the three guard words).
  const size_t record = bytes.size() - 34;
  std::string bad = bytes;
  bad[record + 13] = 0x7f;  // from-state far beyond num_states
  EXPECT_FALSE(DeserializeTransducerArtifact(bad).ok());
}

// ---------------------------------------------------------------------------
// DTD artifacts.
// ---------------------------------------------------------------------------

TEST(ArtifactSerializeTest, PlainDtdRoundTripPreservesBehavior) {
  SpecializedDtd dtd = std::move(ParseDtd(kFigure1Dtd)).ValueOrDie();
  const std::string bytes = DtdBytesOf(dtd);
  Result<SpecializedDtd> back = DeserializeDtdArtifact(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(DtdBytesOf(*back), bytes);
  EXPECT_TRUE(back->IsPlain());
  EXPECT_EQ(back->num_types(), dtd.num_types());

  for (const char* term : {"a(b,b,c(d),e)", "a(c,e)", "a(b,c(d),e,e)", "b"}) {
    auto original =
        std::move(ParseUnrankedTerm(term, dtd.mutable_tags())).ValueOrDie();
    auto reloaded =
        std::move(ParseUnrankedTerm(term, back->mutable_tags())).ValueOrDie();
    EXPECT_EQ(*dtd.Accepts(original), *back->Accepts(reloaded)) << term;
  }
}

TEST(ArtifactSerializeTest, SpecializedDtdRoundTripPreservesBehavior) {
  SpecializedDtd dtd =
      std::move(ParseSpecializedDtd(kSpecializedDtd)).ValueOrDie();
  const std::string bytes = DtdBytesOf(dtd);
  Result<SpecializedDtd> back = DeserializeDtdArtifact(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(DtdBytesOf(*back), bytes);
  EXPECT_FALSE(back->IsPlain());

  for (const char* term : {"a(b(c),b(d))", "a(b(d),b(c))", "a(b(c),b(c))"}) {
    auto original =
        std::move(ParseUnrankedTerm(term, dtd.mutable_tags())).ValueOrDie();
    auto reloaded =
        std::move(ParseUnrankedTerm(term, back->mutable_tags())).ValueOrDie();
    EXPECT_EQ(*dtd.Accepts(original), *back->Accepts(reloaded)) << term;
  }
}

TEST(ArtifactSerializeTest, DtdRejectsEveryTruncation) {
  SpecializedDtd dtd =
      std::move(ParseSpecializedDtd(kSpecializedDtd)).ValueOrDie();
  const std::string bytes = DtdBytesOf(dtd);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<SpecializedDtd> r =
        DeserializeDtdArtifact(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes parsed";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  EXPECT_FALSE(DeserializeDtdArtifact(bytes + '\0').ok());
}

TEST(ArtifactSerializeTest, DtdRejectsMalformedRegexStreams) {
  // Hand-build the smallest well-formed prefix: one tag "a", one type "a".
  auto put_u32 = [](uint32_t v, std::string* out) {
    for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
  };
  auto put_str = [&](std::string_view s, std::string* out) {
    put_u32(static_cast<uint32_t>(s.size()), out);
    out->append(s);
  };
  auto header = [&]() {
    std::string b;
    put_u32(1, &b);       // one tag
    put_str("a", &b);
    put_u32(1, &b);       // one type
    put_str("a", &b);
    put_u32(0, &b);       // tag id
    return b;
  };

  {
    std::string b = header();
    put_u32(0, &b);  // regex with zero nodes
    EXPECT_FALSE(DeserializeDtdArtifact(b).ok());
  }
  {
    std::string b = header();
    put_u32(1, &b);
    b.push_back(5);  // star with an empty stack
    EXPECT_FALSE(DeserializeDtdArtifact(b).ok());
  }
  {
    std::string b = header();
    put_u32(1, &b);
    b.push_back(3);  // concat with an empty stack
    EXPECT_FALSE(DeserializeDtdArtifact(b).ok());
  }
  {
    std::string b = header();
    put_u32(2, &b);
    b.push_back(1);  // epsilon
    b.push_back(1);  // second root left on the stack
    EXPECT_FALSE(DeserializeDtdArtifact(b).ok());
  }
  {
    std::string b = header();
    put_u32(1, &b);
    b.push_back(2);      // symbol...
    put_u32(7, &b);      // ...out of the 1-type range
    EXPECT_FALSE(DeserializeDtdArtifact(b).ok());
  }
  {
    std::string b = header();
    put_u32(1, &b);
    b.push_back(9);  // unknown node kind
    EXPECT_FALSE(DeserializeDtdArtifact(b).ok());
  }
}

TEST(ArtifactSerializeTest, DtdRejectsOutOfRangeReferences) {
  SpecializedDtd dtd = std::move(ParseDtd(kFigure1Dtd)).ValueOrDie();
  const std::string bytes = DtdBytesOf(dtd);
  // Tag table: u32 count=5, then 5×{u32 len=1, name}. The first type's tag-id
  // u32 sits after the type-name ("a") that follows the u32 type count.
  const size_t tag_table = 4 + 5 * (4 + 1);
  const size_t first_tag_id = tag_table + 4 + (4 + 1);
  std::string bad = bytes;
  bad[first_tag_id] = 0x7f;
  EXPECT_FALSE(DeserializeDtdArtifact(bad).ok());
}

// ---------------------------------------------------------------------------
// Schema artifacts.
// ---------------------------------------------------------------------------

SchemaArtifact SampleSchemaArtifact() {
  SpecializedDtd dtd = std::move(ParseDtd(kFigure1Dtd)).ValueOrDie();
  EncodedAlphabet enc = std::move(MakeEncodedAlphabet(dtd.tags())).ValueOrDie();
  SchemaArtifact artifact;
  artifact.automaton = std::move(CompileDtdToNbta(dtd, enc)).ValueOrDie();
  artifact.alphabet = std::move(enc.ranked);
  return artifact;
}

TEST(ArtifactSerializeTest, SchemaRoundTripIsBitExact) {
  const SchemaArtifact artifact = SampleSchemaArtifact();
  const std::string bytes = SchemaBytesOf(artifact);
  Result<SchemaArtifact> back = DeserializeSchemaArtifact(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(SchemaBytesOf(*back), bytes);
  EXPECT_EQ(back->automaton.num_states, artifact.automaton.num_states);
  EXPECT_TRUE(back->automaton.Validate(back->alphabet).ok());
}

TEST(ArtifactSerializeTest, SchemaRejectsEveryTruncation) {
  const std::string bytes = SchemaBytesOf(SampleSchemaArtifact());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        DeserializeSchemaArtifact(std::string_view(bytes).substr(0, cut)).ok())
        << "prefix of " << cut << " bytes parsed";
  }
  EXPECT_FALSE(DeserializeSchemaArtifact(bytes + '\0').ok());
}

// ---------------------------------------------------------------------------
// The versioned container.
// ---------------------------------------------------------------------------

TEST(ArtifactSerializeTest, ContainerRoundTrip) {
  const std::string payload = DtdBytesOf(
      std::move(ParseDtd(kFigure1Dtd)).ValueOrDie());
  std::string wrapped;
  WrapTaArtifact(TaArtifactKind::kDtd, payload, &wrapped);
  Result<TaArtifactView> view = UnwrapTaArtifact(wrapped);
  ASSERT_TRUE(view.ok()) << view.status().message();
  EXPECT_EQ(view->kind, TaArtifactKind::kDtd);
  EXPECT_EQ(view->payload, payload);
  EXPECT_TRUE(DeserializeDtdArtifact(view->payload).ok());
}

TEST(ArtifactSerializeTest, ContainerRejectsHeaderTampering) {
  std::string wrapped;
  WrapTaArtifact(TaArtifactKind::kSchema, "payload-bytes", &wrapped);

  std::string bad_magic = wrapped;
  bad_magic[0] = 'X';
  EXPECT_FALSE(UnwrapTaArtifact(bad_magic).ok());

  std::string bad_version = wrapped;
  bad_version[4] = 99;
  EXPECT_FALSE(UnwrapTaArtifact(bad_version).ok());

  std::string bad_kind = wrapped;
  bad_kind[5] = 17;
  EXPECT_FALSE(UnwrapTaArtifact(bad_kind).ok());

  std::string bad_checksum = wrapped;
  bad_checksum[6] ^= 0x01;
  EXPECT_FALSE(UnwrapTaArtifact(bad_checksum).ok());

  for (size_t cut = 0; cut < 14; ++cut) {
    EXPECT_FALSE(
        UnwrapTaArtifact(std::string_view(wrapped).substr(0, cut)).ok());
  }
}

// Every single-byte corruption of a wrapped artifact is caught somewhere:
// header flips by magic/version/kind validation, payload flips by the
// checksum, checksum flips by the re-computation. A flip that survives
// unwrapping may only change the *kind* label — never the payload.
TEST(ArtifactSerializeTest, EveryBitFlipIsCaughtOrChangesOnlyTheKind) {
  const std::string payload = TransducerBytesOf(SampleTransducerArtifact());
  std::string wrapped;
  WrapTaArtifact(TaArtifactKind::kTransducer, payload, &wrapped);
  for (size_t i = 0; i < wrapped.size(); ++i) {
    std::string dirty = wrapped;
    dirty[i] ^= 0x04;
    Result<TaArtifactView> view = UnwrapTaArtifact(dirty);
    if (!view.ok()) continue;
    EXPECT_EQ(i, 5u) << "flip at offset " << i << " survived unwrapping";
    EXPECT_NE(view->kind, TaArtifactKind::kTransducer);
    EXPECT_EQ(view->payload, payload);
  }
}

}  // namespace
}  // namespace pebbletc
