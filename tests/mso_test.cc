// Tests for src/mso: formula analysis, brute-force evaluation, and the
// MSO→tree-automaton compiler, cross-validated on random formulas/trees.
// Includes the paper's warm-up examples from the Theorem 4.7 proof
// (descendant closure, and/or-circuit evaluation).

#include <gtest/gtest.h>

#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/mso/compile.h"
#include "src/mso/eval.h"
#include "src/mso/formula.h"
#include "src/mso/track_alphabet.h"
#include "src/ta/nbta.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

using F = MsoFormula;

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

TEST(TrackAlphabetTest, IdArithmetic) {
  RankedAlphabet base = TinyRanked();
  auto ext = std::move(TrackAlphabet::Make(base, 2)).ValueOrDie();
  EXPECT_EQ(ext.ranked().size(), 16u);
  for (SymbolId b = 0; b < base.size(); ++b) {
    for (uint32_t bits = 0; bits < 4; ++bits) {
      SymbolId id = ext.Id(b, bits);
      EXPECT_EQ(ext.BaseOf(id), b);
      EXPECT_EQ(ext.BitsOf(id), bits);
      EXPECT_EQ(ext.ranked().Rank(id), base.Rank(b));
    }
  }
  EXPECT_EQ(ext.ranked().Name(ext.Id(0, 1)), "a0#10");
  EXPECT_EQ(ext.ranked().Name(ext.Id(0, 2)), "a0#01");
}

TEST(TrackAlphabetTest, DropTrackMap) {
  RankedAlphabet base = TinyRanked();
  auto ext = std::move(TrackAlphabet::Make(base, 3)).ValueOrDie();
  std::vector<SymbolId> drop1 = ext.DropTrackMap(1);
  // bits b2 b1 b0 -> b2 b0
  SymbolId src = ext.Id(2, 0b101);
  EXPECT_EQ(drop1[src], 2u * 4 + 0b11);
  SymbolId src2 = ext.Id(1, 0b010);
  EXPECT_EQ(drop1[src2], 1u * 4 + 0b00);
}

TEST(MsoAnalysisTest, DetectsKindConflicts) {
  // x used both as position (Label) and set (In's second arg).
  MsoPtr bad = F::And(F::Label(0, /*x=*/1), F::In(/*x=*/2, /*set=*/1));
  EXPECT_FALSE(AnalyzeMso(bad).ok());
}

TEST(MsoAnalysisTest, RejectsShadowing) {
  MsoPtr bad = F::ExistsFo(1, F::ExistsFo(1, F::Leaf(1)));
  EXPECT_FALSE(AnalyzeMso(bad).ok());
  // Parallel (non-nested) reuse is fine.
  MsoPtr good = F::And(F::ExistsFo(1, F::Leaf(1)), F::ExistsFo(1, F::Root(1)));
  EXPECT_TRUE(AnalyzeMso(good).ok());
}

TEST(MsoCompileTest, RejectsOpenFormulas) {
  RankedAlphabet sigma = TinyRanked();
  EXPECT_FALSE(CompileMsoSentence(F::Leaf(0), sigma).ok());
}

TEST(MsoCompileTest, SomeNodeLabeled) {
  RankedAlphabet sigma = TinyRanked();
  // ∃x Label_b0(x)
  MsoPtr f = F::ExistsFo(0, F::Label(sigma.Find("b0"), 0));
  auto nbta = std::move(CompileMsoSentence(f, sigma)).ValueOrDie();
  auto t1 = std::move(ParseBinaryTerm("a2(a0,b0)", sigma)).ValueOrDie();
  auto t2 = std::move(ParseBinaryTerm("a2(a0,a0)", sigma)).ValueOrDie();
  EXPECT_TRUE(nbta.Accepts(t1));
  EXPECT_FALSE(nbta.Accepts(t2));
}

TEST(MsoCompileTest, EveryLeafLabeled) {
  RankedAlphabet sigma = TinyRanked();
  // ∀x (Leaf(x) ⇒ Label_a0(x))
  MsoPtr f = F::ForallFo(
      0, F::Implies(F::Leaf(0), F::Label(sigma.Find("a0"), 0)));
  auto nbta = std::move(CompileMsoSentence(f, sigma)).ValueOrDie();
  EXPECT_TRUE(nbta.Accepts(
      std::move(ParseBinaryTerm("b2(a0,a2(a0,a0))", sigma)).ValueOrDie()));
  EXPECT_FALSE(nbta.Accepts(
      std::move(ParseBinaryTerm("b2(a0,a2(b0,a0))", sigma)).ValueOrDie()));
}

TEST(MsoCompileTest, RootAndSucc) {
  RankedAlphabet sigma = TinyRanked();
  // "the root's left child is labeled b0":
  // ∃x∃y (Root(x) ∧ succ1(x,y) ∧ Label_b0(y))
  MsoPtr f = F::ExistsFo(
      0, F::ExistsFo(1, F::AndAll({F::Root(0), F::Succ1(0, 1),
                                   F::Label(sigma.Find("b0"), 1)})));
  auto nbta = std::move(CompileMsoSentence(f, sigma)).ValueOrDie();
  EXPECT_TRUE(nbta.Accepts(
      std::move(ParseBinaryTerm("a2(b0,a0)", sigma)).ValueOrDie()));
  EXPECT_FALSE(nbta.Accepts(
      std::move(ParseBinaryTerm("a2(a0,b0)", sigma)).ValueOrDie()));
  EXPECT_FALSE(nbta.Accepts(
      std::move(ParseBinaryTerm("b0", sigma)).ValueOrDie()));
}

// The paper's warm-up: the descendant relation via universally quantified
// closed sets. descendant(x,y) = ∀S (x∈S ∧ closed(S) ⇒ y∈S), where
// closed(S) = ∀u∀v ((u∈S ∧ succ_i(u,v)) ⇒ v∈S).
MsoPtr Descendant(MsoVarId x, MsoVarId y, MsoVarId s, MsoVarId u, MsoVarId v) {
  MsoPtr closed = F::ForallFo(
      u, F::ForallFo(
             v, F::And(F::Implies(F::And(F::In(u, s), F::Succ1(u, v)),
                                  F::In(v, s)),
                       F::Implies(F::And(F::In(u, s), F::Succ2(u, v)),
                                  F::In(v, s)))));
  return F::ForallSo(
      s, F::Implies(F::And(F::In(x, s), closed), F::In(y, s)));
}

TEST(MsoCompileTest, PaperDescendantFormula) {
  RankedAlphabet sigma = TinyRanked();
  // "some b2 node has an a0 descendant":
  // ∃x∃y (Label_b2(x) ∧ Label_a0(y) ∧ descendant(x,y))
  MsoPtr f = F::ExistsFo(
      0,
      F::ExistsFo(1, F::AndAll({F::Label(sigma.Find("b2"), 0),
                                F::Label(sigma.Find("a0"), 1),
                                Descendant(0, 1, 2, 3, 4)})));
  auto nbta = std::move(CompileMsoSentence(f, sigma)).ValueOrDie();
  EXPECT_TRUE(nbta.Accepts(
      std::move(ParseBinaryTerm("a2(b2(b0,a0),b0)", sigma)).ValueOrDie()));
  EXPECT_FALSE(nbta.Accepts(
      std::move(ParseBinaryTerm("a2(b2(b0,b0),a0)", sigma)).ValueOrDie()));
  // x is a descendant of itself (reflexive closure via x∈S).
  EXPECT_FALSE(nbta.Accepts(
      std::move(ParseBinaryTerm("b0", sigma)).ValueOrDie()));
}

// The paper's second warm-up: and/or trees that evaluate to 1. Alphabet:
// leaves 0/1, internal and/or. φ = ∀S ((∀x R_1(x)⇒S(x)) ∧ reverse-closed(S))
// ⇒ S(root).
TEST(MsoCompileTest, PaperAndOrCircuitFormula) {
  RankedAlphabet sigma;
  SymbolId zero = std::move(sigma.AddLeaf("0")).ValueOrDie();
  SymbolId one = std::move(sigma.AddLeaf("1")).ValueOrDie();
  SymbolId band = std::move(sigma.AddBinary("and")).ValueOrDie();
  SymbolId bor = std::move(sigma.AddBinary("or")).ValueOrDie();
  (void)zero;

  const MsoVarId s = 0, x = 1, y = 2, z = 3, r = 4;
  MsoPtr ones_in =
      F::ForallFo(x, F::Implies(F::Label(one, x), F::In(x, s)));
  MsoPtr or_closed = F::ForallFo(
      x, F::ForallFo(
             y, F::Implies(F::AndAll({F::Label(bor, x),
                                      F::Or(F::Succ1(x, y), F::Succ2(x, y)),
                                      F::In(y, s)}),
                           F::In(x, s))));
  MsoPtr and_closed = F::ForallFo(
      x,
      F::ForallFo(
          y, F::ForallFo(
                 z, F::Implies(F::AndAll({F::Label(band, x), F::Succ1(x, y),
                                          F::Succ2(x, z), F::In(y, s),
                                          F::In(z, s)}),
                               F::In(x, s)))));
  MsoPtr s_root = F::ExistsFo(r, F::And(F::Root(r), F::In(r, s)));
  MsoPtr phi = F::ForallSo(
      s,
      F::Implies(F::AndAll({ones_in, or_closed, and_closed}), s_root));

  auto nbta = std::move(CompileMsoSentence(phi, sigma)).ValueOrDie();
  struct Case {
    const char* term;
    bool want;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"1", true},
           {"0", false},
           {"and(1,1)", true},
           {"and(1,0)", false},
           {"or(0,1)", true},
           {"or(0,0)", false},
           {"and(or(0,1),or(1,0))", true},
           {"or(and(1,0),and(0,1))", false},
           {"or(and(1,1),0)", true},
           {"and(or(1,1),and(0,1))", false}}) {
    auto t = std::move(ParseBinaryTerm(c.term, sigma)).ValueOrDie();
    EXPECT_EQ(nbta.Accepts(t), c.want) << c.term;
  }
}

TEST(MsoSatisfiabilityTest, Basic) {
  RankedAlphabet sigma = TinyRanked();
  // Satisfiable: some leaf.
  auto sat = MsoSatisfiable(F::ExistsFo(0, F::Leaf(0)), sigma);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
  // Unsatisfiable: a node that is its own left child.
  auto unsat = MsoSatisfiable(F::ExistsFo(0, F::Succ1(0, 0)), sigma);
  ASSERT_TRUE(unsat.ok());
  EXPECT_FALSE(*unsat);
  // Unsatisfiable: the root is a leaf and not a leaf.
  auto unsat2 = MsoSatisfiable(
      F::ExistsFo(0, F::And(F::Leaf(0), F::Not(F::Leaf(0)))), sigma);
  ASSERT_TRUE(unsat2.ok());
  EXPECT_FALSE(*unsat2);
}

// --- brute force vs compiler, random property test ---

// Generates a random sentence using FO vars {0,1} and SO var {2}.
MsoPtr RandomAtom(Rng& rng, const RankedAlphabet& sigma,
                  const std::vector<MsoVarId>& fo,
                  const std::vector<MsoVarId>& so) {
  if (fo.empty()) return rng.NextBool() ? F::True() : F::False();
  MsoVarId x = fo[rng.NextBelow(fo.size())];
  switch (rng.NextBelow(so.empty() ? 5 : 6)) {
    case 0:
      return F::Label(static_cast<SymbolId>(rng.NextBelow(sigma.size())), x);
    case 1:
      return F::Leaf(x);
    case 2:
      return F::Root(x);
    case 3:
      return F::Eq(x, fo[rng.NextBelow(fo.size())]);
    case 4: {
      MsoVarId y = fo[rng.NextBelow(fo.size())];
      return rng.NextBool() ? F::Succ1(x, y) : F::Succ2(x, y);
    }
    default:
      return F::In(x, so[rng.NextBelow(so.size())]);
  }
}

MsoPtr RandomFormula(Rng& rng, const RankedAlphabet& sigma, int depth,
                     std::vector<MsoVarId> fo, std::vector<MsoVarId> so,
                     MsoVarId* next_var) {
  if (depth == 0 || rng.NextBool(0.3)) {
    return RandomAtom(rng, sigma, fo, so);
  }
  switch (rng.NextBelow(5)) {
    case 0:
      return F::Not(RandomFormula(rng, sigma, depth - 1, fo, so, next_var));
    case 1:
      return F::And(RandomFormula(rng, sigma, depth - 1, fo, so, next_var),
                    RandomFormula(rng, sigma, depth - 1, fo, so, next_var));
    case 2:
      return F::Or(RandomFormula(rng, sigma, depth - 1, fo, so, next_var),
                   RandomFormula(rng, sigma, depth - 1, fo, so, next_var));
    case 3: {
      MsoVarId v = (*next_var)++;  // globally unique: no kind clashes
      fo.push_back(v);
      MsoPtr body = RandomFormula(rng, sigma, depth - 1, fo, so, next_var);
      return F::ExistsFo(v, std::move(body));
    }
    default: {
      MsoVarId v = (*next_var)++;
      so.push_back(v);
      MsoPtr body = RandomFormula(rng, sigma, depth - 1, fo, so, next_var);
      return F::ExistsSo(v, std::move(body));
    }
  }
}

// Closes a formula by existentially quantifying stray free variables — the
// generator never creates them (atoms only use bound vars), so this is just
// the top-level call with empty contexts.
class MsoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MsoPropertyTest, CompilerAgreesWithBruteForce) {
  Rng rng(GetParam());
  RankedAlphabet sigma = TinyRanked();
  MsoVarId next_var = 0;
  MsoPtr f = RandomFormula(rng, sigma, 3, {}, {}, &next_var);
  auto analysis = AnalyzeMso(f);
  ASSERT_TRUE(analysis.ok());
  auto nbta_or = CompileMsoSentence(f, sigma);
  ASSERT_TRUE(nbta_or.ok()) << nbta_or.status().ToString();
  for (int i = 0; i < 12; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(4));
    auto want = EvalMsoBruteForce(f, t);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(nbta_or->Accepts(t), *want)
        << MsoString(f, &sigma) << " on " << BinaryTermString(t, sigma);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsoPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace pebbletc
