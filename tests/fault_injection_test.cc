// Deterministic fault-injection harness for the typechecking pipeline.
//
// The TaOpContext checkpoint layer counts every cooperative yield point of a
// run; a TaFaultInjector trips the Nth one with a chosen Status code. Because
// the pipeline is deterministic, a clean run's checkpoint total lets us sweep
// injection points across the *whole* run and assert that every single one
// unwinds cleanly: Ok() result, correctly-coded ExhaustionReport, no unsound
// kTypechecks, and counters that stop exactly at the injection point.
//
// Run these under ASan/UBSan (ctest -L fault-injection) to also prove the
// unwind paths leak nothing and free nothing twice.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/status.h"
#include "src/core/downward.h"
#include "src/core/typechecker.h"
#include "src/pt/paper_machines.h"
#include "src/pt/transducer.h"
#include "src/ta/nbta.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

RankedAlphabet MicroRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  return sigma;
}

// All leaves labelled `leaf`, any internal structure.
Nbta AllLeaves(const RankedAlphabet& sigma, SymbolId leaf) {
  Nbta a;
  a.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId q = a.AddState();
  a.accepting[q] = true;
  a.AddLeafRule(leaf, q);
  for (SymbolId s : sigma.BinarySymbols()) a.AddRule(s, q, q, q);
  return a;
}

// A 1-pebble machine outside the downward fragment (it has an up-move on an
// unreachable state), forcing the complete decision. Emits leaf l on a
// leaf-l input and nothing otherwise, so T(τ) ⊆ AllLeaves(l) for every τ.
PebbleTransducer TinyNonDownward(const RankedAlphabet& sigma) {
  PebbleTransducer t(1, static_cast<uint32_t>(sigma.size()),
                     static_cast<uint32_t>(sigma.size()));
  StateId q = t.AddState(1);
  StateId dead = t.AddState(1);
  t.SetStart(q);
  t.AddOutputLeaf({.symbol = sigma.Find("l")}, q, sigma.Find("l"));
  t.AddMove({}, dead, PebbleTransducer::MoveKind::kUpLeft, dead);
  return t;
}

// A genuinely 2-pebble machine: park pebble 1 on the root, then copy the
// input tree with pebble 2 as the reading head. Semantically identical to
// MakeCopyTransducer, but k = 2 rules out both the downward fast path
// (kPlacePebble) and the 1-pebble behavior route, so typechecking it must
// take the full non-elementary pipeline.
PebbleTransducer PlaceAndCopy(const RankedAlphabet& sigma) {
  using M = PebbleTransducer::MoveKind;
  PebbleTransducer t(/*max_pebbles=*/2, static_cast<uint32_t>(sigma.size()),
                     static_cast<uint32_t>(sigma.size()));
  StateId p = t.AddState(1);
  StateId q = t.AddState(2);
  StateId q1 = t.AddState(2);
  StateId q2 = t.AddState(2);
  t.SetStart(p);
  t.AddMove({}, p, M::kPlacePebble, q);
  for (SymbolId a : sigma.BinarySymbols()) {
    t.AddOutputBinary({.symbol = a}, q, a, q1, q2);
  }
  for (SymbolId a : sigma.LeafSymbols()) {
    t.AddOutputLeaf({.symbol = a}, q, a);
  }
  t.AddMove({}, q1, M::kDownLeft, q);
  t.AddMove({}, q2, M::kDownRight, q);
  return t;
}

// Runs `tc.Typecheck(tau1, tau2, opts)` once cleanly to learn the total
// checkpoint count, then sweeps injection points across [0, total), cycling
// the three exhaustion codes. The instances used with this helper typecheck
// and admit no counterexample, so a tripped run must degrade to kUnknown —
// anything else (a crash, a hard error, or a claimed proof) is a bug.
void SweepInjectionPoints(const Typechecker& tc, const Nbta& tau1,
                          const Nbta& tau2, TypecheckOptions opts) {
  // Salvage off: the sweep checks the exact passes' unwind paths, and the
  // injected run must stay byte-for-byte identical to the clean prefix.
  opts.degrade_on_exhaustion = false;
  auto clean = tc.Typecheck(tau1, tau2, opts);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean->verdict, TypecheckVerdict::kTypechecks);
  const uint64_t total = clean->op_counters.checkpoints;
  ASSERT_GT(total, 0u);

  const StatusCode codes[] = {StatusCode::kDeadlineExceeded,
                              StatusCode::kCancelled,
                              StatusCode::kResourceExhausted};
  std::vector<uint64_t> trips = {0, 1, 2, 3, total - 1};
  constexpr uint64_t kSamples = 43;
  for (uint64_t i = 0; i < kSamples; ++i) {
    trips.push_back(i * total / kSamples);
  }
  size_t which = 0;
  for (uint64_t n : trips) {
    if (n >= total) continue;
    TaFaultInjector fault;
    fault.trip_at = n;
    fault.code = codes[which++ % 3];
    TypecheckOptions injected = opts;
    injected.fault_injector = &fault;
    auto r = tc.Typecheck(tau1, tau2, injected);
    ASSERT_TRUE(r.ok()) << "trip_at=" << n << ": " << r.status().ToString();
    // The run is deterministic, so every checkpoint the clean run reached
    // must be reachable — and trippable.
    ASSERT_TRUE(fault.tripped) << "trip_at=" << n << " of " << total;
    EXPECT_NE(r->verdict, TypecheckVerdict::kTypechecks)
        << "unsound proof under injection at checkpoint " << n;
    EXPECT_TRUE(r->exhausted.exhausted) << "trip_at=" << n;
    EXPECT_EQ(r->exhausted.code, fault.code) << "trip_at=" << n;
    EXPECT_FALSE(r->exhausted.pass.empty()) << "trip_at=" << n;
    // The interrupt is sticky and checkpoints stop counting once it is set,
    // so exactly n + 1 checkpoints ran — both in the final counters and in
    // the report's snapshot. This also proves the unwind left the shared
    // context intact.
    EXPECT_EQ(r->op_counters.checkpoints, n + 1) << "trip_at=" << n;
    EXPECT_EQ(r->exhausted.counters.checkpoints, n + 1) << "trip_at=" << n;
  }

  // Past the end of the run the injector must never fire, and the verdict
  // must match the clean run exactly.
  TaFaultInjector fault;
  fault.trip_at = total + 1000;
  TypecheckOptions injected = opts;
  injected.fault_injector = &fault;
  auto r = tc.Typecheck(tau1, tau2, injected);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(fault.tripped);
  EXPECT_EQ(fault.seen, total);
  EXPECT_EQ(r->verdict, clean->verdict);
  EXPECT_FALSE(r->exhausted.exhausted);
  EXPECT_EQ(r->op_counters.checkpoints, total);
}

TEST(FaultInjectionTest, SweepAcrossDownwardFastPath) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta tau = AllLeaves(sigma, sigma.Find("a0"));
  // Default options: bounded refutation runs (and finds nothing), then the
  // downward fast path proves the instance.
  SweepInjectionPoints(tc, tau, tau, TypecheckOptions{});
}

TEST(FaultInjectionTest, SweepAcrossMsoPipeline) {
  RankedAlphabet sigma = MicroRanked();
  PebbleTransducer t = TinyNonDownward(sigma);
  ASSERT_FALSE(IsDownwardTransducer(t));
  Typechecker tc(t, sigma, sigma);
  TypecheckOptions opts;
  opts.refutation_max_trees = 0;
  opts.behavior_max_state_bits = 0;  // force the Theorem 4.7 MSO route
  SweepInjectionPoints(tc, UniversalNbta(sigma), AllLeaves(sigma, sigma.Find("l")),
                       opts);
}

TEST(FaultInjectionTest, HardErrorCodesPropagateAsErrors) {
  // Exhaustion codes degrade; anything else is a hard failure and must
  // surface as the Result's error with the injected code, not be masked.
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta tau = AllLeaves(sigma, sigma.Find("a0"));
  for (uint64_t n : {uint64_t{0}, uint64_t{7}, uint64_t{100}}) {
    TaFaultInjector fault;
    fault.trip_at = n;
    fault.code = StatusCode::kInternal;
    TypecheckOptions opts;
    opts.fault_injector = &fault;
    auto r = tc.Typecheck(tau, tau, opts);
    ASSERT_TRUE(fault.tripped);
    ASSERT_FALSE(r.ok()) << "trip_at=" << n;
    EXPECT_EQ(r.status().code(), StatusCode::kInternal) << "trip_at=" << n;
  }
}

TEST(FaultInjectionTest, PresetCancelFlagAbortsWholeRun) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Typechecker tc(copy, sigma, sigma);
  Nbta tau = AllLeaves(sigma, sigma.Find("a0"));
  std::atomic<bool> cancel{true};
  TypecheckOptions opts;
  opts.cancel = &cancel;
  // Salvage deliberately left on: cancellation means "stop now", so the
  // degraded search must be skipped too.
  auto r = tc.Typecheck(tau, tau, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->verdict, TypecheckVerdict::kUnknown);
  EXPECT_EQ(r->method, "none");
  EXPECT_TRUE(r->exhausted.exhausted);
  EXPECT_EQ(r->exhausted.code, StatusCode::kCancelled);
  EXPECT_EQ(r->notes.find("degraded-enumeration"), std::string::npos)
      << r->notes;
}

TEST(FaultInjectionTest, DeadlineOnTwoPebbleBlowupReturnsUnknownWithReport) {
  // A 50 ms deadline against the k = 2 pipeline (non-elementary: Theorem
  // 4.8) cannot finish; the run must come back quickly as a clean kUnknown
  // carrying a populated exhaustion report, not hang or crash.
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer t = PlaceAndCopy(sigma);
  ASSERT_FALSE(IsDownwardTransducer(t));
  ASSERT_TRUE(t.Validate(sigma, sigma).ok());
  Typechecker tc(t, sigma, sigma);
  Nbta tau = AllLeaves(sigma, sigma.Find("a0"));
  TypecheckOptions opts;
  opts.refutation_max_trees = 0;
  opts.max_det_states = 0;  // let the clock, not the state budget, fire
  opts.deadline = std::chrono::milliseconds(50);
  const auto start = std::chrono::steady_clock::now();
  auto r = tc.Typecheck(tau, tau, opts);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->verdict, TypecheckVerdict::kUnknown);
  EXPECT_TRUE(r->exhausted.exhausted);
  EXPECT_EQ(r->exhausted.code, StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(r->exhausted.pass.empty());
  EXPECT_FALSE(r->exhausted.detail.empty());
  EXPECT_GT(r->exhausted.counters.checkpoints, 0u);
  // The deadline (50 ms) plus the salvage budget plus unwind overhead must
  // stay well under this bound even in sanitizer builds.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

}  // namespace
}  // namespace pebbletc
