// Tests for src/ext: the Section 5 extensions — unary predicates on data
// values via the 2^m-constants reduction, and the independent-join
// abstraction.

#include <gtest/gtest.h>

#include <string>

#include "src/core/typechecker.h"
#include "src/ext/data_values.h"
#include "src/ext/joins.h"
#include "src/pt/eval.h"
#include "src/ta/nbta.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

// Base alphabet: data leaf d, plain leaf e, binary n.
RankedAlphabet DataRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("d");
  (void)sigma.AddLeaf("e");
  (void)sigma.AddBinary("n");
  return sigma;
}

TEST(DataValuesTest, ExpandAlphabetLayout) {
  RankedAlphabet base = DataRanked();
  auto exp =
      std::move(ExpandDataAlphabet(base, base.Find("d"), 2)).ValueOrDie();
  EXPECT_EQ(exp.ranked.size(), base.size() + 4);
  EXPECT_EQ(exp.ranked.Name(exp.data_variant[0]), "d#00");
  EXPECT_EQ(exp.ranked.Name(exp.data_variant[3]), "d#11");
  EXPECT_EQ(exp.to_base[exp.data_variant[2]], base.Find("d"));
  EXPECT_EQ(exp.to_base[base.Find("e")], base.Find("e"));
  // Non-leaf data symbol rejected.
  EXPECT_FALSE(ExpandDataAlphabet(base, base.Find("n"), 1).ok());
}

TEST(DataValuesTest, AbstractionEvaluatesPredicates) {
  RankedAlphabet base = DataRanked();
  auto exp =
      std::move(ExpandDataAlphabet(base, base.Find("d"), 2)).ValueOrDie();
  DataTree input;
  NodeId l = input.tree.AddLeaf(base.Find("d"));
  NodeId r = input.tree.AddLeaf(base.Find("d"));
  input.tree.SetRoot(input.tree.AddInternal(base.Find("n"), l, r));
  input.values = {"smith", "x9", ""};
  std::vector<UnaryPredicate> preds = {
      [](const std::string& v) { return v.size() > 2; },
      [](const std::string& v) { return !v.empty() && v[0] == 'x'; },
  };
  auto abstracted =
      std::move(AbstractDataTree(input, exp, preds)).ValueOrDie();
  // "smith": p0 only (bits 01 → variant 1); "x9": p1 only (variant 2).
  EXPECT_EQ(abstracted.symbol(l), exp.data_variant[1]);
  EXPECT_EQ(abstracted.symbol(r), exp.data_variant[2]);
  EXPECT_EQ(abstracted.symbol(abstracted.root()), base.Find("n"));
}

TEST(DataValuesTest, LiftedTypeIgnoresPredicateBits) {
  RankedAlphabet base = DataRanked();
  auto exp =
      std::move(ExpandDataAlphabet(base, base.Find("d"), 1)).ValueOrDie();
  // Base type: all leaves are data leaves.
  Nbta base_type;
  base_type.num_symbols = static_cast<uint32_t>(base.size());
  StateId q = base_type.AddState();
  base_type.accepting[q] = true;
  base_type.AddLeafRule(base.Find("d"), q);
  base_type.AddRule(base.Find("n"), q, q, q);
  Nbta lifted = LiftTypeToExpanded(base_type, exp);
  // d#0 and d#1 both conform; e does not.
  BinaryTree t1;
  t1.SetRoot(t1.AddInternal(base.Find("n"), t1.AddLeaf(exp.data_variant[0]),
                            t1.AddLeaf(exp.data_variant[1])));
  EXPECT_TRUE(lifted.Accepts(t1));
  BinaryTree t2;
  t2.SetRoot(t2.AddLeaf(base.Find("e")));
  EXPECT_FALSE(lifted.Accepts(t2));
}

// The Section 5 workflow end-to-end: a transducer that classifies its (data
// leaf) input by a unary predicate — outputs `yes` iff the predicate holds —
// typechecked through the finite reduction.
TEST(DataValuesTest, TypecheckThroughReduction) {
  RankedAlphabet base = DataRanked();
  auto exp =
      std::move(ExpandDataAlphabet(base, base.Find("d"), 1)).ValueOrDie();
  RankedAlphabet out_sigma;
  SymbolId yes = std::move(out_sigma.AddLeaf("yes")).ValueOrDie();
  SymbolId no = std::move(out_sigma.AddLeaf("no")).ValueOrDie();

  PebbleTransducer t(1, static_cast<uint32_t>(exp.ranked.size()), 2);
  StateId q = t.AddState(1);
  t.SetStart(q);
  t.AddOutputLeaf({.symbol = exp.data_variant[1]}, q, yes);
  t.AddOutputLeaf({.symbol = exp.data_variant[0]}, q, no);
  ASSERT_TRUE(t.Validate(exp.ranked, out_sigma).ok());

  // Input type: a single data leaf (lifted). Output type: {yes, no}.
  Nbta base_input;
  base_input.num_symbols = static_cast<uint32_t>(base.size());
  StateId s = base_input.AddState();
  base_input.accepting[s] = true;
  base_input.AddLeafRule(base.Find("d"), s);
  Nbta tau1 = LiftTypeToExpanded(base_input, exp);

  Nbta tau2;
  tau2.num_symbols = 2;
  StateId a = tau2.AddState();
  tau2.accepting[a] = true;
  tau2.AddLeafRule(yes, a);
  tau2.AddLeafRule(no, a);

  Typechecker tc(t, exp.ranked, out_sigma);
  auto r = std::move(tc.Typecheck(tau1, tau2)).ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kTypechecks);

  // Against {yes} only, the d#0 input refutes it.
  Nbta tau2_yes;
  tau2_yes.num_symbols = 2;
  StateId a2 = tau2_yes.AddState();
  tau2_yes.accepting[a2] = true;
  tau2_yes.AddLeafRule(yes, a2);
  auto r2 = std::move(tc.Typecheck(tau1, tau2_yes)).ValueOrDie();
  EXPECT_EQ(r2.verdict, TypecheckVerdict::kCounterexample);
}

// --- joins ---

// A 2-pebble machine: pebble 1 on the root's left leaf, pebble 2 walks to
// the right leaf; equality test decides the output symbol.
JoinTransducer MakeEqualityChecker(const RankedAlphabet& sigma,
                                   SymbolId out_eq, SymbolId out_ne) {
  JoinTransducer jt{PebbleTransducer(2, static_cast<uint32_t>(sigma.size()),
                                     static_cast<uint32_t>(sigma.size())),
                    {},
                    sigma.Find("d")};
  PebbleTransducer& t = jt.base;
  using M = PebbleTransducer::MoveKind;
  StateId q0 = t.AddState(1);
  StateId q1 = t.AddState(1);
  StateId p0 = t.AddState(2);
  StateId p1 = t.AddState(2);
  StateId test = t.AddState(2);
  StateId eq = t.AddState(2);
  StateId ne = t.AddState(2);
  t.SetStart(q0);
  t.AddMove({}, q0, M::kDownLeft, q1);   // pebble 1 → left leaf
  t.AddMove({}, q1, M::kPlacePebble, p0);
  t.AddMove({}, p0, M::kDownRight, p1);  // pebble 2 → right leaf
  t.AddMove({}, p1, M::kStay, test);
  jt.tests.push_back({{}, test, 1, 2, eq, ne});
  t.AddOutputLeaf({}, eq, out_eq);
  t.AddOutputLeaf({}, ne, out_ne);
  return jt;
}

TEST(JoinTest, ConcreteEvaluationComparesValues) {
  RankedAlphabet sigma = DataRanked();
  SymbolId out_eq = sigma.Find("d");  // reuse symbols as outputs
  SymbolId out_ne = sigma.Find("e");
  JoinTransducer jt = MakeEqualityChecker(sigma, out_eq, out_ne);

  DataTree input;
  NodeId l = input.tree.AddLeaf(sigma.Find("d"));
  NodeId r = input.tree.AddLeaf(sigma.Find("d"));
  input.tree.SetRoot(input.tree.AddInternal(sigma.Find("n"), l, r));
  input.values = {"v1", "v1", ""};
  auto same = std::move(EvalJoinConcrete(jt, input)).ValueOrDie();
  EXPECT_EQ(same.symbol(same.root()), out_eq);

  input.values = {"v1", "v2", ""};
  auto diff = std::move(EvalJoinConcrete(jt, input)).ValueOrDie();
  EXPECT_EQ(diff.symbol(diff.root()), out_ne);
}

TEST(JoinTest, AbstractionIsSound) {
  // Every concrete output must be among the abstraction's outputs — the
  // Section 5 soundness property that makes typechecking the abstraction
  // meaningful.
  RankedAlphabet sigma = DataRanked();
  SymbolId out_eq = sigma.Find("d");
  SymbolId out_ne = sigma.Find("e");
  JoinTransducer jt = MakeEqualityChecker(sigma, out_eq, out_ne);
  PebbleTransducer abstract = AbstractJoins(jt);
  ASSERT_TRUE(abstract.Validate(sigma, sigma).ok());

  DataTree input;
  NodeId l = input.tree.AddLeaf(sigma.Find("d"));
  NodeId r = input.tree.AddLeaf(sigma.Find("d"));
  input.tree.SetRoot(input.tree.AddInternal(sigma.Find("n"), l, r));
  for (const char* v2 : {"v1", "other"}) {
    input.values = {"v1", v2, ""};
    auto concrete = std::move(EvalJoinConcrete(jt, input)).ValueOrDie();
    auto member = OutputContains(abstract, input.tree, concrete);
    ASSERT_TRUE(member.ok());
    EXPECT_TRUE(*member);
  }
  // The abstraction has both outputs (the guess).
  auto outputs =
      std::move(EnumerateOutputs(abstract, input.tree, 1, 10)).ValueOrDie();
  EXPECT_EQ(outputs.size(), 2u);
}

TEST(JoinTest, AbstractionTypechecksConservatively) {
  // If the abstraction typechecks, every concrete run conforms.
  RankedAlphabet sigma = DataRanked();
  SymbolId out_eq = sigma.Find("d");
  SymbolId out_ne = sigma.Find("e");
  JoinTransducer jt = MakeEqualityChecker(sigma, out_eq, out_ne);
  PebbleTransducer abstract = AbstractJoins(jt);

  // τ2 = single leaf d or e: both outcomes allowed → typechecks.
  Nbta tau2;
  tau2.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId a = tau2.AddState();
  tau2.accepting[a] = true;
  tau2.AddLeafRule(out_eq, a);
  tau2.AddLeafRule(out_ne, a);

  // τ1: n(d, d).
  Nbta tau1;
  tau1.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId leaf = tau1.AddState();
  StateId top = tau1.AddState();
  tau1.accepting[top] = true;
  tau1.AddLeafRule(sigma.Find("d"), leaf);
  tau1.AddRule(sigma.Find("n"), leaf, leaf, top);

  Typechecker tc(abstract, sigma, sigma);
  TypecheckOptions opts;
  opts.run_complete_decision = false;  // 2 pebbles: rely on refutation only
  auto r = std::move(tc.Typecheck(tau1, tau2, opts)).ValueOrDie();
  // Bounded refutation finds no violation; the verdict stays inconclusive
  // (sound: it never claims correctness it cannot prove).
  EXPECT_NE(r.verdict, TypecheckVerdict::kCounterexample);

  // τ2 = {d} only: the abstraction can output e → refuted.
  Nbta tau2_eq;
  tau2_eq.num_symbols = static_cast<uint32_t>(sigma.size());
  StateId a2 = tau2_eq.AddState();
  tau2_eq.accepting[a2] = true;
  tau2_eq.AddLeafRule(out_eq, a2);
  auto r2 = std::move(tc.Typecheck(tau1, tau2_eq, opts)).ValueOrDie();
  EXPECT_EQ(r2.verdict, TypecheckVerdict::kCounterexample);
}

}  // namespace
}  // namespace pebbletc
