// Tests for src/ta and src/graph: AGAP, bottom-up/top-down tree automata,
// conversions, boolean operations, decision procedures, enumeration.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/graph/agap.h"
#include "src/ta/convert.h"
#include "src/ta/enumerate.h"
#include "src/ta/nbta.h"
#include "src/ta/random_ta.h"
#include "src/ta/op_context.h"
#include "src/ta/topdown.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

// --- AGAP ---

TEST(AgapTest, OrNodeNeedsOneSuccessor) {
  AlternatingGraph g;
  auto o = g.AddNode(AlternatingGraph::NodeType::kOr);
  auto bad = g.AddNode(AlternatingGraph::NodeType::kOr);   // dead end
  auto good = g.AddNode(AlternatingGraph::NodeType::kAnd);  // vacuous accept
  g.AddEdge(o, bad);
  g.AddEdge(o, good);
  auto acc = g.ComputeAccessible();
  EXPECT_TRUE(acc[o]);
  EXPECT_FALSE(acc[bad]);
  EXPECT_TRUE(acc[good]);
}

TEST(AgapTest, AndNodeNeedsAllSuccessors) {
  AlternatingGraph g;
  auto a = g.AddNode(AlternatingGraph::NodeType::kAnd);
  auto ok = g.AddNode(AlternatingGraph::NodeType::kAnd);
  auto dead = g.AddNode(AlternatingGraph::NodeType::kOr);
  g.AddEdge(a, ok);
  g.AddEdge(a, dead);
  auto acc = g.ComputeAccessible();
  EXPECT_FALSE(acc[a]);

  AlternatingGraph g2;
  auto a2 = g2.AddNode(AlternatingGraph::NodeType::kAnd);
  auto ok1 = g2.AddNode(AlternatingGraph::NodeType::kAnd);
  auto ok2 = g2.AddNode(AlternatingGraph::NodeType::kAnd);
  g2.AddEdge(a2, ok1);
  g2.AddEdge(a2, ok2);
  EXPECT_TRUE(g2.ComputeAccessible()[a2]);
}

TEST(AgapTest, CyclesAreNotAccessible) {
  // Least fixpoint: a cycle with no grounded exit is inaccessible.
  AlternatingGraph g;
  auto x = g.AddNode(AlternatingGraph::NodeType::kOr);
  auto y = g.AddNode(AlternatingGraph::NodeType::kOr);
  g.AddEdge(x, y);
  g.AddEdge(y, x);
  auto acc = g.ComputeAccessible();
  EXPECT_FALSE(acc[x]);
  EXPECT_FALSE(acc[y]);
}

TEST(AgapTest, AndOrTreeEvaluation) {
  // (1 ∨ 0) ∧ (1 ∧ 1) = 1, modelled with and/or nodes; leaves "1" are empty
  // and-nodes, leaves "0" empty or-nodes.
  AlternatingGraph g;
  auto root = g.AddNode(AlternatingGraph::NodeType::kAnd);
  auto orn = g.AddNode(AlternatingGraph::NodeType::kOr);
  auto andn = g.AddNode(AlternatingGraph::NodeType::kAnd);
  auto one1 = g.AddNode(AlternatingGraph::NodeType::kAnd);
  auto zero = g.AddNode(AlternatingGraph::NodeType::kOr);
  auto one2 = g.AddNode(AlternatingGraph::NodeType::kAnd);
  auto one3 = g.AddNode(AlternatingGraph::NodeType::kAnd);
  g.AddEdge(root, orn);
  g.AddEdge(root, andn);
  g.AddEdge(orn, one1);
  g.AddEdge(orn, zero);
  g.AddEdge(andn, one2);
  g.AddEdge(andn, one3);
  EXPECT_TRUE(g.ComputeAccessible()[root]);
}

// --- NBTA basics ---

// Accepts trees whose leaves are all labelled a0.
Nbta AllLeavesA0() {
  Nbta a;
  a.num_symbols = 4;  // TinyRanked layout: a0=0 b0=1 a2=2 b2=3
  StateId q = a.AddState();
  a.accepting[q] = true;
  a.AddLeafRule(0, q);
  a.AddRule(2, q, q, q);
  a.AddRule(3, q, q, q);
  return a;
}

TEST(NbtaTest, AcceptsAndRejects) {
  RankedAlphabet sigma = TinyRanked();
  Nbta a = AllLeavesA0();
  EXPECT_TRUE(a.Validate(sigma).ok());
  auto yes = std::move(ParseBinaryTerm("a2(a0,b2(a0,a0))", sigma)).ValueOrDie();
  auto no = std::move(ParseBinaryTerm("a2(a0,b2(a0,b0))", sigma)).ValueOrDie();
  EXPECT_TRUE(a.Accepts(yes));
  EXPECT_FALSE(a.Accepts(no));
}

TEST(NbtaTest, ValidateCatchesRankErrors) {
  RankedAlphabet sigma = TinyRanked();
  Nbta a;
  a.num_symbols = 4;
  StateId q = a.AddState();
  a.AddLeafRule(2, q);  // a2 is binary
  EXPECT_FALSE(a.Validate(sigma).ok());
}

TEST(NbtaTest, UniversalAndEmpty) {
  RankedAlphabet sigma = TinyRanked();
  Rng rng(3);
  Nbta uni = UniversalNbta(sigma);
  Nbta none = EmptyLanguageNbta(sigma);
  EXPECT_FALSE(IsEmptyNbta(uni));
  EXPECT_TRUE(IsEmptyNbta(none));
  for (int i = 0; i < 20; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(20));
    EXPECT_TRUE(uni.Accepts(t));
    EXPECT_FALSE(none.Accepts(t));
  }
}

TEST(NbtaTest, WitnessIsAcceptedAndMinimal) {
  RankedAlphabet sigma = TinyRanked();
  Nbta a = AllLeavesA0();
  auto w = WitnessTree(a);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(a.Accepts(*w));
  EXPECT_EQ(w->size(), 1u);  // the single leaf a0
  EXPECT_FALSE(WitnessTree(EmptyLanguageNbta(sigma)).has_value());
}

TEST(NbtaTest, WitnessOfForcedInternalTree) {
  // Language: root must be a2, both children leaves a0 -> minimal size 3.
  Nbta a;
  a.num_symbols = 4;
  StateId leaf = a.AddState();
  StateId root = a.AddState();
  a.accepting[root] = true;
  a.AddLeafRule(0, leaf);
  a.AddRule(2, leaf, leaf, root);
  auto w = WitnessTree(a);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->size(), 3u);
  EXPECT_TRUE(a.Accepts(*w));
}

TEST(NbtaTest, CatalanCount) {
  RankedAlphabet mono;
  (void)mono.AddLeaf("l");
  (void)mono.AddBinary("n");
  Nbta uni = UniversalNbta(mono);
  // #binary trees with m internal nodes = Catalan(m).
  EXPECT_EQ(CountAcceptedTrees(uni, 1), 1u);
  EXPECT_EQ(CountAcceptedTrees(uni, 3), 1u);
  EXPECT_EQ(CountAcceptedTrees(uni, 5), 2u);
  EXPECT_EQ(CountAcceptedTrees(uni, 7), 5u);
  EXPECT_EQ(CountAcceptedTrees(uni, 9), 14u);
  EXPECT_EQ(CountAcceptedTrees(uni, 11), 42u);
  EXPECT_EQ(CountAcceptedTrees(uni, 2), 0u);  // even sizes impossible
}

TEST(NbtaTest, EnumerateMatchesCount) {
  RankedAlphabet sigma = TinyRanked();
  Nbta uni = UniversalNbta(sigma);
  std::vector<BinaryTree> trees = EnumerateAcceptedTrees(uni, 5, 100000);
  // sizes: 1 -> 2 leaf labels; 3 -> 2*2*2 = 8; 5 -> 2 shapes * 2^2 internal
  // labels... compute via CountAcceptedTrees (uni is deterministic).
  uint64_t expected =
      CountAcceptedTrees(uni, 1) + CountAcceptedTrees(uni, 3) +
      CountAcceptedTrees(uni, 5);
  EXPECT_EQ(trees.size(), expected);
  // All distinct, all accepted, sizes ascending.
  std::set<std::string> keys;
  size_t prev = 0;
  for (const BinaryTree& t : trees) {
    EXPECT_TRUE(uni.Accepts(t));
    EXPECT_GE(t.size(), prev);
    prev = t.size();
    keys.insert(BinaryTermString(t, sigma));
  }
  EXPECT_EQ(keys.size(), trees.size());
}

TEST(NbtaTest, EnumerateRespectsMaxCount) {
  RankedAlphabet sigma = TinyRanked();
  Nbta uni = UniversalNbta(sigma);
  EXPECT_EQ(EnumerateAcceptedTrees(uni, 9, 7).size(), 7u);
}

// --- determinization / boolean ops, property-tested ---

class NbtaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NbtaPropertyTest, DeterminizeAgrees) {
  Rng rng(GetParam());
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 3;
  Nbta a = RandomNbta(sigma, rng, opts);
  auto det = DeterminizeNbta(a, sigma);
  ASSERT_TRUE(det.ok());
  for (int i = 0; i < 40; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(12));
    EXPECT_EQ(a.Accepts(t), det->Accepts(t));
  }
}

TEST_P(NbtaPropertyTest, ComplementIsComplement) {
  Rng rng(GetParam() + 500);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 3;
  Nbta a = RandomNbta(sigma, rng, opts);
  auto comp = ComplementNbta(a, sigma);
  ASSERT_TRUE(comp.ok());
  for (int i = 0; i < 40; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(12));
    EXPECT_NE(a.Accepts(t), comp->Accepts(t));
  }
  // a ∩ ¬a = ∅ and a ∪ ¬a = universal.
  EXPECT_TRUE(IsEmptyNbta(IntersectNbta(a, *comp)));
  auto uni_check =
      NbtaEquivalent(UnionNbta(a, *comp), UniversalNbta(sigma), sigma);
  ASSERT_TRUE(uni_check.ok());
  EXPECT_TRUE(*uni_check);
}

TEST_P(NbtaPropertyTest, IntersectAndUnionSemantics) {
  Rng rng(GetParam() + 1000);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 3;
  Nbta a = RandomNbta(sigma, rng, opts);
  Nbta b = RandomNbta(sigma, rng, opts);
  Nbta inter = IntersectNbta(a, b);
  Nbta uni = UnionNbta(a, b);
  for (int i = 0; i < 40; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(12));
    EXPECT_EQ(inter.Accepts(t), a.Accepts(t) && b.Accepts(t));
    EXPECT_EQ(uni.Accepts(t), a.Accepts(t) || b.Accepts(t));
  }
}

TEST_P(NbtaPropertyTest, TrimPreservesLanguage) {
  Rng rng(GetParam() + 2000);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 4;
  Nbta a = RandomNbta(sigma, rng, opts);
  Nbta trimmed = TrimNbta(a);
  EXPECT_LE(trimmed.num_states, a.num_states);
  auto eq = NbtaEquivalent(a, trimmed, sigma);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_P(NbtaPropertyTest, TopDownRoundTrip) {
  Rng rng(GetParam() + 3000);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 3;
  Nbta a = RandomNbta(sigma, rng, opts);
  TopDownTA td = NbtaToTopDown(a);
  EXPECT_TRUE(td.Validate(sigma).ok());
  Nbta back = TopDownToNbta(td);
  for (int i = 0; i < 30; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(10));
    bool want = a.Accepts(t);
    EXPECT_EQ(want, TopDownAccepts(td, t));
    EXPECT_EQ(want, back.Accepts(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NbtaPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

// --- inclusion / equivalence ---

TEST(NbtaDecisionTest, InclusionChain) {
  RankedAlphabet sigma = TinyRanked();
  Nbta all_a0 = AllLeavesA0();
  Nbta uni = UniversalNbta(sigma);
  auto r1 = NbtaIncludes(uni, all_a0, sigma);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  auto r2 = NbtaIncludes(all_a0, uni, sigma);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
  auto r3 = NbtaEquivalent(all_a0, all_a0, sigma);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(*r3);
}

TEST(NbtaDecisionTest, DeterminizeBudgetEnforced) {
  Rng rng(77);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 8;
  opts.rule_density = 0.8;
  Nbta a = RandomNbta(sigma, rng, opts);
  auto det = DeterminizeNbta(a, sigma, /*max_states=*/2);
  // Either the automaton is tiny (fine) or the budget trips.
  if (!det.ok()) {
    EXPECT_EQ(det.status().code(), StatusCode::kResourceExhausted);
  }
}

// --- top-down specifics: silent transitions ---

TEST(TopDownTest, SilentTransitionsElimination) {
  RankedAlphabet sigma = TinyRanked();
  // start --silent(on a2)--> q1, (a2,q1)->(qa,qa), (a0,qa) final.
  TopDownTA td;
  td.num_symbols = 4;
  StateId q0 = td.AddState();
  StateId q1 = td.AddState();
  StateId qa = td.AddState();
  td.start = q0;
  td.AddSilent(2, q0, q1);
  td.AddRule(2, q1, qa, qa);
  td.AddFinalPair(0, qa);
  ASSERT_TRUE(td.Validate(sigma).ok());

  auto t = std::move(ParseBinaryTerm("a2(a0,a0)", sigma)).ValueOrDie();
  auto t_bad = std::move(ParseBinaryTerm("b2(a0,a0)", sigma)).ValueOrDie();
  EXPECT_TRUE(TopDownAccepts(td, t));
  EXPECT_FALSE(TopDownAccepts(td, t_bad));

  TopDownTA elim = EliminateSilentTransitions(td);
  EXPECT_TRUE(elim.silent.empty());
  EXPECT_TRUE(TopDownAccepts(elim, t));
  EXPECT_FALSE(TopDownAccepts(elim, t_bad));
}

TEST(TopDownTest, SilentChainsAndLeafAcceptance) {
  RankedAlphabet sigma = TinyRanked();
  // Chain of silent moves on a leaf symbol ending in a final pair.
  TopDownTA td;
  td.num_symbols = 4;
  StateId q0 = td.AddState();
  StateId q1 = td.AddState();
  StateId q2 = td.AddState();
  td.start = q0;
  td.AddSilent(0, q0, q1);
  td.AddSilent(0, q1, q2);
  td.AddFinalPair(0, q2);
  auto leaf = std::move(ParseBinaryTerm("a0", sigma)).ValueOrDie();
  auto leaf_b = std::move(ParseBinaryTerm("b0", sigma)).ValueOrDie();
  EXPECT_TRUE(TopDownAccepts(td, leaf));
  EXPECT_FALSE(TopDownAccepts(td, leaf_b));
  TopDownTA elim = EliminateSilentTransitions(td);
  EXPECT_TRUE(TopDownAccepts(elim, leaf));
  EXPECT_FALSE(TopDownAccepts(elim, leaf_b));
  // And through the bottom-up conversion.
  Nbta nbta = TopDownToNbta(td);
  EXPECT_TRUE(nbta.Accepts(leaf));
  EXPECT_FALSE(nbta.Accepts(leaf_b));
}

TEST(TopDownTest, SilentCycleDoesNotDiverge) {
  RankedAlphabet sigma = TinyRanked();
  TopDownTA td;
  td.num_symbols = 4;
  StateId q0 = td.AddState();
  StateId q1 = td.AddState();
  td.start = q0;
  td.AddSilent(0, q0, q1);
  td.AddSilent(0, q1, q0);  // cycle
  td.AddFinalPair(0, q1);
  auto leaf = std::move(ParseBinaryTerm("a0", sigma)).ValueOrDie();
  EXPECT_TRUE(TopDownAccepts(td, leaf));
  EXPECT_TRUE(TopDownToNbta(td).Accepts(leaf));
}

class DbtaMinimizeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DbtaMinimizeProperty, MinimizePreservesLanguageAndShrinks) {
  Rng rng(GetParam() + 9000);
  RankedAlphabet sigma = TinyRanked();
  RandomNbtaOptions opts;
  opts.num_states = 4;
  Nbta a = RandomNbta(sigma, rng, opts);
  auto det = std::move(DeterminizeNbta(a, sigma)).ValueOrDie();
  auto min = std::move(MinimizeDbta(det, sigma)).ValueOrDie();
  EXPECT_LE(min.num_states(), det.num_states() + 1);  // +1: explicit sink
  for (int i = 0; i < 40; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(10));
    EXPECT_EQ(det.Accepts(t), min.Accepts(t)) << BinaryTermString(t, sigma);
  }
  // Idempotent up to state count.
  auto min2 = std::move(MinimizeDbta(min, sigma)).ValueOrDie();
  EXPECT_LE(min2.num_states(), min.num_states());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbtaMinimizeProperty,
                         ::testing::Range<uint64_t>(0, 20));

TEST(DbtaMinimizeTest, CanonicalSizesForKnownLanguages) {
  RankedAlphabet sigma = TinyRanked();
  // Universal language: 1 live block + sink.
  auto uni = std::move(DeterminizeNbta(UniversalNbta(sigma), sigma))
                 .ValueOrDie();
  auto min_uni = std::move(MinimizeDbta(uni, sigma)).ValueOrDie();
  EXPECT_EQ(min_uni.num_states(), 2u);
  // "All leaves a0": accept/reject blocks + sink.
  auto all_a0 = std::move(DeterminizeNbta(AllLeavesA0(), sigma)).ValueOrDie();
  auto min_a0 = std::move(MinimizeDbta(all_a0, sigma)).ValueOrDie();
  EXPECT_EQ(min_a0.num_states(), 3u);
}

TEST(OpContextTest, NestedTimersCountWallTimeOnce) {
  // Operations frequently call other timed operations (Complement →
  // Determinize → Index builds); only the outermost TaOpTimer scope may
  // accumulate, or op_nanos multiplies by the nesting depth.
  TaOpContext ctx;
  const auto start = std::chrono::steady_clock::now();
  {
    TaOpTimer outer(&ctx);
    {
      TaOpTimer mid(&ctx);
      TaOpTimer inner(&ctx);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  const uint64_t wall = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  EXPECT_GE(ctx.counters.op_nanos, 20u * 1000 * 1000);
  // Triple-counting would report ~3× the sleep, far above the wall clock.
  EXPECT_LE(ctx.counters.op_nanos, wall);
}

TEST(OpContextTest, FaultInjectorTripsExactCheckpointAndSticks) {
  TaOpContext ctx;
  TaFaultInjector fault;
  fault.trip_at = 3;
  fault.code = StatusCode::kResourceExhausted;
  ctx.fault = &fault;
  for (uint64_t i = 0; i < 3; ++i) EXPECT_TRUE(ctx.Checkpoint().ok());
  Status s = ctx.Checkpoint();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(fault.tripped);
  // Sticky: later checkpoints return the same Status without advancing the
  // ordinal counter, so `checkpoints` records exactly where the run died.
  EXPECT_EQ(ctx.Checkpoint().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.counters.checkpoints, 4u);
  EXPECT_EQ(ctx.interrupt().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.interrupted());
}

TEST(OpContextTest, DeadlineIsPolledAtStrideBoundaries) {
  TaOpBudgets budgets;
  budgets.checkpoint_stride = 4;
  TaOpContext ctx(budgets);
  // Checkpoint 0 polls the clock (0 % stride == 0); pass it first, then set
  // a deadline in the past: calls 1..3 skip the poll, call 4 trips.
  EXPECT_TRUE(ctx.Checkpoint().ok());
  ctx.budgets.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  for (uint64_t n = 1; n < 4; ++n) EXPECT_TRUE(ctx.Checkpoint().ok());
  EXPECT_EQ(ctx.Checkpoint().code(), StatusCode::kDeadlineExceeded);
}

TEST(OpContextTest, CancelIsPolledEveryCheckpoint) {
  std::atomic<bool> cancel{false};
  TaOpBudgets budgets;
  budgets.cancel = &cancel;
  budgets.checkpoint_stride = 1u << 30;  // stride must not delay cancel
  TaOpContext ctx(budgets);
  EXPECT_TRUE(ctx.Checkpoint().ok());
  cancel.store(true);
  EXPECT_EQ(ctx.Checkpoint().code(), StatusCode::kCancelled);
  // TaInterruptStatus exposes the sticky state to value-returning callers.
  EXPECT_EQ(TaInterruptStatus(&ctx).code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace pebbletc
