// Tests for src/query: tree patterns (Section 2.2) and the XSLT fragment
// (Example 4.3), including end-to-end typechecking of compiled programs.

#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.h"
#include "src/core/downward.h"
#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/pt/eval.h"
#include "src/query/pattern.h"
#include "src/query/xslt.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

// --- patterns ---

TEST(PatternTest, ParseShapes) {
  Alphabet sigma;
  auto p = std::move(ParsePattern("[a.b]([c.(a|b)],[c*.a])", &sigma))
               .ValueOrDie();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.nodes[0].children.size(), 2u);
  EXPECT_EQ(p.nodes[1].parent, 0u);
  EXPECT_EQ(p.nodes[2].parent, 0u);
  EXPECT_FALSE(ParsePattern("", &sigma).ok());
  EXPECT_FALSE(ParsePattern("[a", &sigma).ok());
  EXPECT_FALSE(ParsePattern("[a](b)", &sigma).ok());
}

TEST(PatternTest, SingleNodeMatches) {
  Alphabet sigma;
  auto tree = std::move(ParseUnrankedTerm("a(b,b,c(b))", &sigma)).ValueOrDie();
  auto p = std::move(ParsePattern("[a.(b|c)*.b]", &sigma)).ValueOrDie();
  auto matches =
      MatchPattern(p, tree, static_cast<uint32_t>(sigma.size()));
  EXPECT_EQ(matches.size(), 3u);  // all three b nodes
  for (const auto& m : matches) {
    EXPECT_EQ(sigma.Name(tree.tag(m[0])), "b");
  }
}

TEST(PatternTest, ParentChildConditions) {
  Alphabet sigma;
  auto tree =
      std::move(ParseUnrankedTerm("r(a(x,y),a(x),b(x))", &sigma)).ValueOrDie();
  // Pattern: an `a` child of the root with an `x` below it.
  auto p = std::move(ParsePattern("[r.a]([a.x])", &sigma)).ValueOrDie();
  auto matches =
      MatchPattern(p, tree, static_cast<uint32_t>(sigma.size()));
  // Two a-nodes each with one x child: 2 matches.
  ASSERT_EQ(matches.size(), 2u);
  for (const auto& m : matches) {
    EXPECT_EQ(sigma.Name(tree.tag(m[0])), "a");
    EXPECT_EQ(sigma.Name(tree.tag(m[1])), "x");
    EXPECT_EQ(tree.parent(m[1]), m[0]);
  }
}

TEST(PatternTest, PaperStylePatternEnumerationOrder) {
  Alphabet sigma;
  auto tree = std::move(ParseUnrankedTerm("r(a,a)", &sigma)).ValueOrDie();
  auto p = std::move(ParsePattern("[r]([r.a],[r.a])", &sigma)).ValueOrDie();
  auto matches =
      MatchPattern(p, tree, static_cast<uint32_t>(sigma.size()));
  // Both children bind independently: 2×2 = 4 tuples (the Example 4.2
  // square!), ordered lexicographically.
  ASSERT_EQ(matches.size(), 4u);
  EXPECT_LE(matches[0][1], matches[1][1]);
}

// --- XSLT fragment ---

constexpr char kQ2[] = R"(
  # Example 4.3, query Q2
  template root { result { b; apply; b; apply; b; apply } }
  template a    { a }
)";

TEST(XsltTest, ParseQ2) {
  Alphabet in, out;
  auto program = std::move(ParseXslt(kQ2, &in, &out)).ValueOrDie();
  ASSERT_EQ(program.templates.size(), 2u);
  EXPECT_EQ(program.templates[0].items.size(), 6u);
  EXPECT_TRUE(program.templates[0].items[1].is_apply);
  EXPECT_FALSE(program.templates[0].items[0].is_apply);
  EXPECT_EQ(program.templates[1].items.size(), 0u);
}

TEST(XsltTest, ReferenceSemanticsQ2) {
  Alphabet in, out;
  auto program = std::move(ParseXslt(kQ2, &in, &out)).ValueOrDie();
  auto doc = std::move(ParseUnrankedTerm("root(a,a)", &in)).ValueOrDie();
  auto result = std::move(ApplyXsltReference(program, doc, in)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(result, out), "result(b,a,a,b,a,a,b,a,a)");
  auto empty_doc = std::move(ParseUnrankedTerm("root", &in)).ValueOrDie();
  auto empty_result =
      std::move(ApplyXsltReference(program, empty_doc, in)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(empty_result, out), "result(b,b,b)");
}

TEST(XsltTest, CompiledQ2MatchesReference) {
  Alphabet in, out;
  auto program = std::move(ParseXslt(kQ2, &in, &out)).ValueOrDie();
  auto in_enc = std::move(MakeEncodedAlphabet(in)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out)).ValueOrDie();
  auto t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();
  ASSERT_TRUE(t.Validate(in_enc.ranked, out_enc.ranked).ok());
  EXPECT_TRUE(t.IsDeterministic());
  // Q2 re-walks the child list, so it needs up-moves.
  EXPECT_FALSE(IsDownwardTransducer(t));

  std::string doc = "root";
  for (int n = 0; n <= 5; ++n) {
    std::string text = n == 0 ? "root" : doc + "(" + [&] {
      std::string kids;
      for (int i = 0; i < n; ++i) kids += (i ? ",a" : "a");
      return kids;
    }() + ")";
    auto unranked = std::move(ParseUnrankedTerm(text, &in)).ValueOrDie();
    auto want =
        std::move(ApplyXsltReference(program, unranked, in)).ValueOrDie();
    auto encoded = std::move(EncodeTree(unranked, in_enc)).ValueOrDie();
    auto got_bin = std::move(EvalDeterministic(t, encoded)).ValueOrDie();
    auto got = std::move(DecodeTree(got_bin, out_enc)).ValueOrDie();
    EXPECT_TRUE(got == want)
        << text << ": got " << UnrankedTermString(got, out) << ", want "
        << UnrankedTermString(want, out);
  }
}

constexpr char kRename[] = R"(
  template a { b { apply } }
  template c { d }
)";

TEST(XsltTest, RecursiveRenameIsDownward) {
  Alphabet in, out;
  auto program = std::move(ParseXslt(kRename, &in, &out)).ValueOrDie();
  auto in_enc = std::move(MakeEncodedAlphabet(in)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out)).ValueOrDie();
  auto t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();
  EXPECT_TRUE(IsDownwardTransducer(t));  // apply only in tail position
}

class XsltRenameProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XsltRenameProperty, CompiledMachineMatchesReference) {
  Rng rng(GetParam());
  Alphabet in, out;
  auto program = std::move(ParseXslt(kRename, &in, &out)).ValueOrDie();
  auto in_enc = std::move(MakeEncodedAlphabet(in)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out)).ValueOrDie();
  auto t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();

  // Random documents over {a, c} where c nodes are leaves (template c
  // ignores children anyway, but keep the doc shapes tame).
  RandomUnrankedOptions opts;
  opts.target_size = 1 + rng.NextBelow(20);
  opts.max_children = 3;
  UnrankedTree doc = RandomUnrankedTree(in, rng, opts);
  auto want = std::move(ApplyXsltReference(program, doc, in)).ValueOrDie();
  auto encoded = std::move(EncodeTree(doc, in_enc)).ValueOrDie();
  auto got_bin = std::move(EvalDeterministic(t, encoded)).ValueOrDie();
  auto got = std::move(DecodeTree(got_bin, out_enc)).ValueOrDie();
  EXPECT_TRUE(got == want) << UnrankedTermString(doc, in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XsltRenameProperty,
                         ::testing::Range<uint64_t>(0, 25));

TEST(XsltTest, TotalityEnforced) {
  Alphabet in, out;
  auto program =
      std::move(ParseXslt("template a { b { apply } }", &in, &out))
          .ValueOrDie();
  in.Intern("uncovered");
  auto in_enc = std::move(MakeEncodedAlphabet(in)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out)).ValueOrDie();
  EXPECT_FALSE(CompileXslt(program, in_enc, out_enc).ok());
}

TEST(XsltTest, NestedApplyRejected) {
  Alphabet in, out;
  EXPECT_FALSE(
      ParseXslt("template a { b { c { apply } } }", &in, &out).ok());
}

// End-to-end: typecheck the rename program against DTDs (the realistic
// XSLT-typechecking workflow; completes through the downward fast path).
TEST(XsltTypecheckTest, RenameAgainstDtds) {
  Alphabet in, out;
  auto program = std::move(ParseXslt(kRename, &in, &out)).ValueOrDie();
  auto in_enc = std::move(MakeEncodedAlphabet(in)).ValueOrDie();
  auto out_enc = std::move(MakeEncodedAlphabet(out)).ValueOrDie();
  auto t = std::move(CompileXslt(program, in_enc, out_enc)).ValueOrDie();

  // Input DTD: a := (a|c)*; c := ().  (Tag ids in `in` match by name.)
  auto in_dtd = std::move(ParseDtd("a := (a|c)*\nc := ()")).ValueOrDie();
  ASSERT_EQ(in_dtd.tags().Find("a"), in.Find("a"));
  ASSERT_EQ(in_dtd.tags().Find("c"), in.Find("c"));
  auto tau1 = std::move(CompileDtdToNbta(in_dtd, in_enc)).ValueOrDie();

  auto out_dtd_good =
      std::move(ParseDtd("b := (b|d)*\nd := ()")).ValueOrDie();
  ASSERT_EQ(out_dtd_good.tags().Find("b"), out.Find("b"));
  auto tau2_good =
      std::move(CompileDtdToNbta(out_dtd_good, out_enc)).ValueOrDie();

  auto out_dtd_bad = std::move(ParseDtd("b := d*\nd := ()")).ValueOrDie();
  auto tau2_bad =
      std::move(CompileDtdToNbta(out_dtd_bad, out_enc)).ValueOrDie();

  Typechecker tc(t, in_enc.ranked, out_enc.ranked);
  TypecheckOptions opts;
  opts.refutation_max_trees = 0;  // rely on the complete fast path
  auto good = std::move(tc.Typecheck(tau1, tau2_good, opts)).ValueOrDie();
  EXPECT_EQ(good.verdict, TypecheckVerdict::kTypechecks);
  EXPECT_EQ(good.method, "downward-fastpath");

  auto bad = std::move(tc.Typecheck(tau1, tau2_bad, opts)).ValueOrDie();
  EXPECT_EQ(bad.verdict, TypecheckVerdict::kCounterexample);
  ASSERT_TRUE(bad.counterexample_input.has_value());
  // The counterexample decodes to a valid input document whose image
  // violates the bad output DTD.
  auto doc = std::move(DecodeTree(*bad.counterexample_input, in_enc))
                 .ValueOrDie();
  EXPECT_TRUE(std::move(in_dtd.Accepts(doc)).ValueOrDie());
  auto image = std::move(ApplyXsltReference(program, doc, in)).ValueOrDie();
  EXPECT_FALSE(std::move(out_dtd_bad.Accepts(image)).ValueOrDie());
}

}  // namespace
}  // namespace pebbletc
