// Fault-injected soak for the serving layer (labels: serve,
// fault-injection). Drives a ≥500-request scripted mix through ServerCore
// while a TaFaultInjector sweeps every checkpoint ordinal of the heavy
// requests. The acceptance bar (ISSUE / docs/SERVING.md):
//
//   * the injected request — and only the injected request — comes back as
//     a structured error or an honest kUnknown verdict carrying the
//     injected code;
//   * every non-injected request in the mix returns exactly its expected
//     result (the fault never leaks into neighbouring requests);
//   * zero crashes, zero leaked in-flight admission slots.
//
// Runs under ASan/UBSan in CI, so "contained" also means no UB and no
// leaked allocations on any unwound path.

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/status.h"
#include "src/dtd/dtd.h"
#include "src/pt/paper_machines.h"
#include "src/serve/protocol.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"
#include "src/ta/op_context.h"
#include "src/ta/serialize.h"

namespace pebbletc::serve {
namespace {

constexpr char kRenameXslt[] = R"(
  template a { b { apply } }
  template c { d }
)";
constexpr char kInDtd[] = "a := c\nc := ()\n";
constexpr char kGoodOutDtd[] = "b := d\nd := ()\n";
constexpr char kBadOutDtd[] = "b := e\ne := ()\n";

Request MakeTypecheck(uint32_t id, const std::string& tau2) {
  Request request;
  request.header.opcode = Opcode::kTypecheck;
  request.header.request_id = id;
  request.body = TypecheckRequest{"rename", "in", tau2};
  return request;
}

Request MakeInfer(uint32_t id) {
  Request request;
  request.header.opcode = Opcode::kInferInverse;
  request.header.request_id = id;
  request.body = InferInverseRequest{"copy", "micro"};
  request.header.deadline_ms = 30000;  // inference is the slowest shape
  return request;
}

Request MakeValidate(uint32_t id, const std::string& document) {
  Request request;
  request.header.opcode = Opcode::kValidate;
  request.header.request_id = id;
  request.body = ValidateRequest{"in", document};
  return request;
}

class ServeSoakTest : public ::testing::Test {
 protected:
  ServeSoakTest() : server_(Options()) {
    EXPECT_TRUE(server_.registry().PutXsltText("rename", kRenameXslt).ok());
    EXPECT_TRUE(server_.registry().PutDtdText("in", kInDtd).ok());
    EXPECT_TRUE(server_.registry().PutDtdText("good_out", kGoodOutDtd).ok());
    EXPECT_TRUE(server_.registry().PutDtdText("bad_out", kBadOutDtd).ok());
    // A pre-compiled identity transducer over a one-tag DTD's encoded
    // alphabet, small enough for exact inverse inference in the mix.
    EXPECT_TRUE(server_.registry().PutDtdText("micro", "m := ()\n").ok());
    SpecializedDtd dtd =
        std::move(ParseSpecializedDtd("m := ()\n")).ValueOrDie();
    EncodedAlphabet enc =
        std::move(MakeEncodedAlphabet(dtd.tags())).ValueOrDie();
    auto artifact = std::make_shared<TransducerArtifact>();
    artifact->transducer = MakeCopyTransducer(enc.ranked);
    artifact->input_alphabet = enc.ranked;
    artifact->output_alphabet = enc.ranked;
    RegistryEntry entry;
    entry.kind = RegistryEntry::Kind::kTransducer;
    entry.transducer = std::move(artifact);
    server_.registry().Put("copy", std::move(entry));
  }

  static ServeOptions Options() {
    ServeOptions options;
    options.validity.level = ValidityLevel::kFull;
    return options;
  }

  /// Runs one clean request of each heavy kind with a never-tripping
  /// injector to learn the checkpoint ordinal space (fault-armed requests
  /// are forced serial + memo-cold, so the count is deterministic).
  uint64_t CountCheckpoints(const Request& request) {
    TaFaultInjector probe;
    probe.trip_at = ~uint64_t{0};
    server_.ArmFaultForNextRequest(&probe);
    Response response = server_.Handle(request);
    EXPECT_EQ(response.header.status, WireStatus::kOk)
        << response.header.detail;
    EXPECT_FALSE(probe.tripped);
    EXPECT_GT(probe.seen, 0u);
    return probe.seen;
  }

  ServerCore server_;
};

TEST_F(ServeSoakTest, FaultSweepAcrossScriptedMix) {
  const uint64_t typecheck_good_cp = CountCheckpoints(MakeTypecheck(1, "good_out"));
  const uint64_t typecheck_bad_cp = CountCheckpoints(MakeTypecheck(2, "bad_out"));
  const uint64_t infer_cp = CountCheckpoints(MakeInfer(3));

  // Baseline responses for exact-match comparison of non-injected requests.
  Response base_good = server_.Handle(MakeTypecheck(4, "good_out"));
  Response base_bad = server_.Handle(MakeTypecheck(5, "bad_out"));
  ASSERT_EQ(base_good.header.status, WireStatus::kOk);
  ASSERT_EQ(base_bad.header.status, WireStatus::kOk);
  ASSERT_EQ(std::get<TypecheckResponse>(base_good.body).verdict, 0);
  const auto& base_bad_body = std::get<TypecheckResponse>(base_bad.body);
  ASSERT_EQ(base_bad_body.verdict, 1);
  ASSERT_EQ(base_bad_body.counterexample_input_xml, "<a><c/></a>");

  // The injected failure codes to rotate through: two degradeable budget
  // codes, cancellation, and one hard internal fault.
  const StatusCode codes[] = {
      StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted,
      StatusCode::kCancelled,
      StatusCode::kInternal,
  };

  uint64_t requests = 0;
  uint64_t injected = 0;
  uint64_t tripped = 0;
  uint64_t degraded = 0;
  uint64_t hard = 0;
  uint64_t salvaged = 0;

  // The covering ordinal set: exhaustive when the checkpoint space is
  // small; otherwise every early ordinal (where setup/validation faults
  // live), a deterministic stride through the middle, and the final
  // ordinal. Exhaustive per-ordinal sweeps of a multi-thousand-checkpoint
  // space would take minutes under ASan without exercising any new path.
  auto covering = [](uint64_t checkpoints, uint64_t early, uint64_t strided) {
    std::vector<uint64_t> ordinals;
    if (checkpoints <= early + strided) {
      for (uint64_t o = 0; o < checkpoints; ++o) ordinals.push_back(o);
      return ordinals;
    }
    for (uint64_t o = 0; o < early; ++o) ordinals.push_back(o);
    const uint64_t stride = (checkpoints - early) / strided + 1;
    for (uint64_t o = early; o < checkpoints - 1; o += stride) {
      ordinals.push_back(o);
    }
    ordinals.push_back(checkpoints - 1);
    return ordinals;
  };

  // Sweep the covering ordinals of every heavy request shape. Between
  // fault-armed requests, interleave clean traffic and assert it is
  // byte-for-byte healthy — the fault must stay contained to the one
  // request that carried the injector.
  struct Sweep {
    uint64_t checkpoints;
    int shape;  // 0 = typecheck good, 1 = typecheck bad, 2 = infer
    // Covering-set shape: an armed run that trips at ordinal k only pays
    // ~k checkpoints, so late ordinals of an expensive shape dominate the
    // soak's runtime — inference gets fewer strided samples.
    uint64_t early;
    uint64_t strided;
  };
  const Sweep sweeps[] = {{typecheck_good_cp, 0, 64, 96},
                          {typecheck_bad_cp, 1, 64, 96},
                          {infer_cp, 2, 32, 8}};

  uint32_t id = 100;
  for (const Sweep& sweep : sweeps) {
    for (uint64_t ordinal : covering(sweep.checkpoints, sweep.early,
                                     sweep.strided)) {
      TaFaultInjector injector;
      injector.trip_at = ordinal;
      injector.code = codes[ordinal % 4];
      server_.ArmFaultForNextRequest(&injector);

      Request request = sweep.shape == 2
                            ? MakeInfer(id)
                            : MakeTypecheck(id, sweep.shape == 0 ? "good_out"
                                                                 : "bad_out");
      Response response = server_.Handle(request);
      ++requests;
      ++injected;
      ASSERT_TRUE(injector.tripped)
          << "shape " << sweep.shape << " ordinal " << ordinal;
      ++tripped;

      if (response.header.status == WireStatus::kOk) {
        // Graceful degradation: an OK response must be an honest kUnknown
        // carrying the injected exhaustion code — never a fabricated
        // definite verdict.
        ASSERT_EQ(request.header.opcode, Opcode::kTypecheck);
        const auto& body = std::get<TypecheckResponse>(response.body);
        if (body.verdict != 2) {
          // The degraded counterexample salvage pass may still produce a
          // *sound* counterexample for the bad pair; a fabricated
          // "typechecks" is never acceptable.
          ASSERT_EQ(body.verdict, 1)
              << "ordinal " << ordinal << ": fault produced verdict "
              << int{body.verdict};
          ASSERT_EQ(sweep.shape, 1);
          ASSERT_EQ(body.counterexample_input_xml, "<a><c/></a>");
          ++salvaged;
        } else {
          ASSERT_TRUE(body.exhausted);
          ASSERT_EQ(body.exhaustion_code,
                    static_cast<uint8_t>(injector.code))
              << "ordinal " << ordinal;
          ++degraded;
        }
      } else {
        // Structured error path: the status must map the injected code.
        ASSERT_EQ(response.header.status, WireStatusOf(Status(injector.code,
                                                              "")))
            << "ordinal " << ordinal << ": " << response.header.detail;
        ASSERT_FALSE(response.header.detail.empty());
        ASSERT_EQ(response.header.request_id, id);
        ++hard;
      }

      // Failure containment: no leaked slot, and (sampled, to keep the
      // soak fast under ASan) the very next requests see a healthy server.
      ASSERT_EQ(server_.admission().in_flight(), 0u)
          << "leaked slot after ordinal " << ordinal;
      if (injected % 4 == 0) {
        Response after_good =
            server_.Handle(MakeTypecheck(id + 1, "good_out"));
        ASSERT_EQ(after_good.header.status, WireStatus::kOk)
            << after_good.header.detail;
        ASSERT_EQ(std::get<TypecheckResponse>(after_good.body).verdict, 0);
        Response after_validate =
            server_.Handle(MakeValidate(id + 2, "<a><c/></a>"));
        ASSERT_EQ(after_validate.header.status, WireStatus::kOk);
        ASSERT_TRUE(std::get<ValidateResponse>(after_validate.body).valid);
        requests += 2;
      }
      id += 3;
    }
  }

  // Pad the mix to the ≥500-request bar with clean traffic (small automata
  // have few checkpoints; the sweep above is exhaustive, not padded).
  while (requests < 500) {
    switch (requests % 4) {
      case 0: {
        Response r = server_.Handle(MakeTypecheck(id, "bad_out"));
        ASSERT_EQ(r.header.status, WireStatus::kOk);
        ASSERT_EQ(std::get<TypecheckResponse>(r.body).verdict, 1);
        break;
      }
      case 1: {
        Response r = server_.Handle(MakeValidate(id, "<a/>"));
        ASSERT_EQ(r.header.status, WireStatus::kOk);
        ASSERT_FALSE(std::get<ValidateResponse>(r.body).valid);
        break;
      }
      case 2: {
        Response r = server_.Handle(MakeValidate(id, "<a><z/></a>"));
        ASSERT_EQ(r.header.status, WireStatus::kOk);
        ASSERT_FALSE(std::get<ValidateResponse>(r.body).valid);
        break;
      }
      default: {
        Request ping;
        ping.header.opcode = Opcode::kPing;
        ping.header.request_id = id;
        ASSERT_EQ(server_.Handle(ping).header.status, WireStatus::kOk);
        break;
      }
    }
    ++requests;
    ++id;
  }

  // Global accounting: every injected fault fired, every one was visible on
  // the wire as degradation or a structured error, and no slot leaked.
  EXPECT_GE(requests, 500u);
  EXPECT_EQ(tripped, injected);
  // Every injected fault is wire-visible: an honest kUnknown, a salvaged
  // (still sound) counterexample, or a structured error.
  EXPECT_EQ(degraded + hard + salvaged, injected);
  EXPECT_GT(degraded, 0u);
  EXPECT_GT(hard, 0u);
  StatsResponse stats = server_.SnapshotStats();
  EXPECT_EQ(stats.faults_injected, injected)
      << "every tripped injector must be counted exactly once";
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.degraded_verdicts, degraded);
  EXPECT_EQ(stats.hard_errors, hard);
  // Summary for CI logs (and EXPERIMENTS.md E16).
  std::cout << "[soak] requests=" << requests << " injected=" << injected
            << " degraded=" << degraded << " salvaged=" << salvaged
            << " hard=" << hard << "\n";
}

// Fault sweep over the batch opcode: one injector armed for the whole
// batch, every checkpoint ordinal covered. Containment here is two-level —
// the fault must stay inside the one request AND inside the documents at or
// after the trip point: every verdict either matches the clean baseline or
// carries the injected code honestly (an injected kResourceExhausted at
// plan-compile time may instead degrade the whole batch to the fallback
// engine — same verdicts, fallback_docs > 0).
TEST_F(ServeSoakTest, FaultSweepAcrossBatchValidation) {
  auto make_batch = [](uint32_t id) {
    Request request;
    request.header.opcode = Opcode::kValidateBatch;
    request.header.request_id = id;
    request.body = ValidateBatchRequest{
        "in",
        {"<a><c/></a>", "<a/>", "<a><c/></a>", "<a><z/></a>", "<a/>",
         "<a><c/></a>"}};
    return request;
  };
  const uint64_t checkpoints = CountCheckpoints(make_batch(1));

  Response baseline = server_.Handle(make_batch(2));
  ASSERT_EQ(baseline.header.status, WireStatus::kOk)
      << baseline.header.detail;
  const auto base = std::get<ValidateBatchResponse>(baseline.body);
  ASSERT_EQ(base.verdicts.size(), 6u);

  const StatusCode codes[] = {
      StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted,
      StatusCode::kCancelled,
      StatusCode::kInternal,
  };

  uint64_t injected = 0;
  uint64_t hard = 0;
  uint64_t contained = 0;
  uint64_t absorbed = 0;
  uint32_t id = 100;
  for (uint64_t ordinal = 0; ordinal < checkpoints; ++ordinal) {
    TaFaultInjector injector;
    injector.trip_at = ordinal;
    injector.code = codes[ordinal % 4];
    server_.ArmFaultForNextRequest(&injector);
    Response response = server_.Handle(make_batch(id));
    ++injected;
    ASSERT_TRUE(injector.tripped) << "ordinal " << ordinal;
    const uint8_t injected_wire =
        static_cast<uint8_t>(WireStatusOf(Status(injector.code, "")));

    if (response.header.status != WireStatus::kOk) {
      // The fault aborted the whole request (plan compilation): the status
      // must map the injected code and carry a diagnostic.
      ASSERT_EQ(static_cast<uint8_t>(response.header.status), injected_wire)
          << "ordinal " << ordinal << ": " << response.header.detail;
      ASSERT_FALSE(response.header.detail.empty());
      ++hard;
    } else {
      const auto& body = std::get<ValidateBatchResponse>(response.body);
      ASSERT_EQ(body.verdicts.size(), base.verdicts.size())
          << "ordinal " << ordinal << ": a faulted batch still answers for "
          << "every document";
      bool any_injected = false;
      for (size_t k = 0; k < body.verdicts.size(); ++k) {
        const auto& v = body.verdicts[k];
        if (v.status == static_cast<uint8_t>(WireStatus::kOk)) {
          // Documents finished before the trip: verdicts match the clean
          // baseline exactly — never a fabricated answer.
          ASSERT_EQ(v.valid, base.verdicts[k].valid)
              << "ordinal " << ordinal << " doc " << k;
          ASSERT_EQ(v.diagnostic, base.verdicts[k].diagnostic)
              << "ordinal " << ordinal << " doc " << k;
        } else {
          ASSERT_EQ(v.status, injected_wire)
              << "ordinal " << ordinal << " doc " << k << ": "
              << v.diagnostic;
          ASSERT_FALSE(v.valid);
          any_injected = true;
        }
      }
      if (any_injected) {
        ++contained;
      } else {
        // Only a compile-time kResourceExhausted may vanish from the
        // verdicts — by degrading the engine to the fallback route.
        ASSERT_EQ(injector.code, StatusCode::kResourceExhausted)
            << "ordinal " << ordinal;
        ASSERT_GT(body.fallback_docs, 0u) << "ordinal " << ordinal;
        ++absorbed;
      }
    }
    ASSERT_EQ(server_.admission().in_flight(), 0u)
        << "leaked slot after ordinal " << ordinal;
    ++id;
  }

  // The server is healthy afterwards: a clean batch reproduces the baseline.
  Response after = server_.Handle(make_batch(id));
  ASSERT_EQ(after.header.status, WireStatus::kOk);
  const auto& after_body = std::get<ValidateBatchResponse>(after.body);
  ASSERT_EQ(after_body.verdicts.size(), base.verdicts.size());
  for (size_t k = 0; k < base.verdicts.size(); ++k) {
    EXPECT_EQ(after_body.verdicts[k].status, base.verdicts[k].status);
    EXPECT_EQ(after_body.verdicts[k].valid, base.verdicts[k].valid);
    EXPECT_EQ(after_body.verdicts[k].diagnostic,
              base.verdicts[k].diagnostic);
  }
  EXPECT_EQ(hard + contained + absorbed, injected);
  EXPECT_GT(contained, 0u) << "some fault must land mid-batch";
  std::cout << "[soak-batch] checkpoints=" << checkpoints
            << " injected=" << injected << " hard=" << hard
            << " contained=" << contained << " absorbed=" << absorbed
            << "\n";
}

TEST_F(ServeSoakTest, FaultArmedRequestsAreMemoColdAndDeterministic) {
  // Checkpoint ordinals must be stable across repeated armed runs (the op
  // cache is bypassed automatically when an injector is installed), or the
  // sweep above would be meaningless.
  const uint64_t first = CountCheckpoints(MakeTypecheck(1, "good_out"));
  const uint64_t second = CountCheckpoints(MakeTypecheck(2, "good_out"));
  const uint64_t third = CountCheckpoints(MakeTypecheck(3, "good_out"));
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, third);
}

TEST_F(ServeSoakTest, InjectedInternalFaultDoesNotPoisonTheRegistry) {
  TaFaultInjector injector;
  injector.trip_at = 0;
  injector.code = StatusCode::kInternal;
  server_.ArmFaultForNextRequest(&injector);
  Response faulted = server_.Handle(MakeTypecheck(1, "good_out"));
  EXPECT_TRUE(injector.tripped);
  EXPECT_NE(faulted.header.status, WireStatus::kOk);

  // Registry snapshots taken by the faulted request must not have been
  // corrupted: everything still resolves and typechecks.
  for (int i = 0; i < 8; ++i) {
    Response clean = server_.Handle(MakeTypecheck(10 + i, "good_out"));
    ASSERT_EQ(clean.header.status, WireStatus::kOk) << clean.header.detail;
    ASSERT_EQ(std::get<TypecheckResponse>(clean.body).verdict, 0);
  }
  EXPECT_EQ(server_.admission().in_flight(), 0u);
}

}  // namespace
}  // namespace pebbletc::serve
