// Tests for src/regex: parsing, Thompson NFA, DFA operations, minimization,
// and the Section 2.1 path-expression translation. Property tests
// cross-validate NFA against DFA and translation against brute-force
// evaluation on random trees.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/regex/dfa.h"
#include "src/regex/nfa.h"
#include "src/regex/path_expr.h"
#include "src/regex/regex.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

// Helper: compile `text` over a fresh alphabet of a,b,c and test membership
// of words given as strings of those letters.
struct Lang {
  Alphabet sigma;
  Dfa dfa;

  explicit Lang(const std::string& text) : dfa(1, 1) {
    sigma.Intern("a");
    sigma.Intern("b");
    sigma.Intern("c");
    auto r = ParseRegex(text, &sigma);
    PEBBLETC_CHECK(r.ok()) << r.status().ToString();
    dfa = CompileRegexToDfa(*r, static_cast<uint32_t>(sigma.size()));
  }

  bool Accepts(const std::string& word) const {
    std::vector<SymbolId> w;
    for (char c : word) {
      SymbolId s = sigma.Find(std::string(1, c));
      PEBBLETC_CHECK(s != kNoSymbol) << "unknown letter " << c;
      w.push_back(s);
    }
    return dfa.Accepts(w);
  }
};

TEST(RegexParseTest, BasicForms) {
  Alphabet sigma;
  EXPECT_TRUE(ParseRegex("a", &sigma).ok());
  EXPECT_TRUE(ParseRegex("a.b*.c", &sigma).ok());
  EXPECT_TRUE(ParseRegex("(a|b)+", &sigma).ok());
  EXPECT_TRUE(ParseRegex("a?", &sigma).ok());
  EXPECT_TRUE(ParseRegex("()", &sigma).ok());
  EXPECT_TRUE(ParseRegex("a.(b|(c.a))*.b", &sigma).ok());
  EXPECT_FALSE(ParseRegex("", &sigma).ok());
  EXPECT_FALSE(ParseRegex("a|", &sigma).ok());
  EXPECT_FALSE(ParseRegex("(a", &sigma).ok());
  EXPECT_FALSE(ParseRegex("a)", &sigma).ok());
  EXPECT_FALSE(ParseRegex("*a", &sigma).ok());
}

TEST(RegexParseTest, ClosedAlphabetRejectsUnknown) {
  Alphabet sigma;
  sigma.Intern("a");
  EXPECT_TRUE(ParseRegexClosed("a.a", sigma).ok());
  EXPECT_FALSE(ParseRegexClosed("a.b", sigma).ok());
}

TEST(RegexParseTest, PrintReparseStable) {
  Alphabet sigma;
  for (const char* text :
       {"a", "a.b*.c", "(a|b).c", "a.(b|c.a)*.b", "a?", "(a.b)*"}) {
    auto r = std::move(ParseRegex(text, &sigma)).ValueOrDie();
    std::string printed = RegexString(r, sigma);
    auto r2 = std::move(ParseRegex(printed, &sigma)).ValueOrDie();
    Dfa d1 = CompileRegexToDfa(r, static_cast<uint32_t>(sigma.size()));
    Dfa d2 = CompileRegexToDfa(r2, static_cast<uint32_t>(sigma.size()));
    EXPECT_TRUE(EquivalentLanguages(d1, d2)) << text << " vs " << printed;
  }
}

TEST(RegexSemanticsTest, Star) {
  Lang l("a*");
  EXPECT_TRUE(l.Accepts(""));
  EXPECT_TRUE(l.Accepts("a"));
  EXPECT_TRUE(l.Accepts("aaaa"));
  EXPECT_FALSE(l.Accepts("ab"));
}

TEST(RegexSemanticsTest, PaperDtdContentModel) {
  // The Figure 1 DTD: a := b*.c.e
  Lang l("b*.c.c");  // using only a,b,c here: b*.c.c
  EXPECT_TRUE(l.Accepts("cc"));
  EXPECT_TRUE(l.Accepts("bbcc"));
  EXPECT_FALSE(l.Accepts("bc"));
  EXPECT_FALSE(l.Accepts("ccb"));
}

TEST(RegexSemanticsTest, UnionConcatPrecedence) {
  // a|b.c parses as a | (b.c)
  Lang l("a|b.c");
  EXPECT_TRUE(l.Accepts("a"));
  EXPECT_TRUE(l.Accepts("bc"));
  EXPECT_FALSE(l.Accepts("ac"));
}

TEST(RegexSemanticsTest, PlusAndOptional) {
  Lang l("a+.b?");
  EXPECT_TRUE(l.Accepts("a"));
  EXPECT_TRUE(l.Accepts("aab"));
  EXPECT_FALSE(l.Accepts(""));
  EXPECT_FALSE(l.Accepts("b"));
  EXPECT_FALSE(l.Accepts("abb"));
}

TEST(RegexSemanticsTest, EpsilonAndEvenLanguage) {
  // (a.a)* — the Example 4.2 inverse type.
  Lang l("(a.a)*");
  EXPECT_TRUE(l.Accepts(""));
  EXPECT_FALSE(l.Accepts("a"));
  EXPECT_TRUE(l.Accepts("aa"));
  EXPECT_FALSE(l.Accepts("aaa"));
  EXPECT_TRUE(l.Accepts("aaaa"));
}

TEST(RegexTest, IsNullable) {
  Alphabet sigma;
  auto r = [&](const char* t) {
    return std::move(ParseRegex(t, &sigma)).ValueOrDie();
  };
  EXPECT_TRUE(r("a*")->IsNullable());
  EXPECT_TRUE(r("()")->IsNullable());
  EXPECT_FALSE(r("a")->IsNullable());
  EXPECT_TRUE(r("a|()")->IsNullable());
  EXPECT_FALSE(r("a.b*")->IsNullable());
  EXPECT_TRUE(r("a*.b*")->IsNullable());
  EXPECT_FALSE(Regex::EmptySet()->IsNullable());
}

TEST(RegexTest, ReverseSemantics) {
  Alphabet sigma;
  auto r = std::move(ParseRegex("a.b*.c", &sigma)).ValueOrDie();
  auto rev = Regex::Reverse(r);
  Dfa d = CompileRegexToDfa(rev, static_cast<uint32_t>(sigma.size()));
  SymbolId a = sigma.Find("a"), b = sigma.Find("b"), c = sigma.Find("c");
  EXPECT_TRUE(d.Accepts({c, b, b, a}));
  EXPECT_TRUE(d.Accepts({c, a}));
  EXPECT_FALSE(d.Accepts({a, b, c}));
}

TEST(DfaTest, MinimizeIsMinimalAndEquivalent) {
  Alphabet sigma;
  // (a|b)*.a.(a|b) has a 4-state minimal DFA... (classic: second-to-last is a)
  auto r = std::move(ParseRegex("(a|b)*.a.(a|b)", &sigma)).ValueOrDie();
  Nfa nfa = CompileRegexToNfa(r, 2);
  Dfa det = Determinize(nfa);
  Dfa min = Minimize(det);
  EXPECT_TRUE(EquivalentLanguages(det, min));
  EXPECT_LE(min.num_states(), det.num_states());
  EXPECT_EQ(min.num_states(), 4u);
  // Minimization is idempotent.
  Dfa min2 = Minimize(min);
  EXPECT_EQ(min2.num_states(), min.num_states());
}

TEST(DfaTest, ComplementAndProduct) {
  Lang even("(a.a)*");
  Lang all("a*");
  Dfa odd = Product(all.dfa, Complement(even.dfa), BoolOp::kAnd);
  SymbolId a = all.sigma.Find("a");
  EXPECT_FALSE(odd.Accepts({}));
  EXPECT_TRUE(odd.Accepts({a}));
  EXPECT_FALSE(odd.Accepts({a, a}));
  // kDiff agrees with kAnd-with-complement.
  Dfa odd2 = Product(all.dfa, even.dfa, BoolOp::kDiff);
  EXPECT_TRUE(EquivalentLanguages(odd, odd2));
  // kOr.
  Dfa anything = Product(even.dfa, odd, BoolOp::kOr);
  EXPECT_TRUE(EquivalentLanguages(anything, all.dfa));
}

TEST(DfaTest, EmptinessAndWitness) {
  Lang l("a.b");
  EXPECT_FALSE(IsEmptyLanguage(l.dfa));
  Dfa none = Product(l.dfa, Complement(l.dfa), BoolOp::kAnd);
  EXPECT_TRUE(IsEmptyLanguage(none));
  auto w = ShortestAccepted(l.dfa);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->size(), 2u);
  EXPECT_FALSE(ShortestAccepted(none).has_value());
  // Witness of a nullable language is the empty word.
  Lang star("a*");
  auto w2 = ShortestAccepted(star.dfa);
  ASSERT_TRUE(w2.has_value());
  EXPECT_TRUE(w2->empty());
}

TEST(DfaTest, InclusionAndEquivalence) {
  Lang even("(a.a)*"), all("a*"), ab("a.b");
  EXPECT_TRUE(Includes(all.dfa, even.dfa));   // even ⊆ all
  EXPECT_FALSE(Includes(even.dfa, all.dfa));  // all ⊄ even
  EXPECT_FALSE(EquivalentLanguages(even.dfa, all.dfa));
  EXPECT_TRUE(EquivalentLanguages(even.dfa, even.dfa));
  EXPECT_FALSE(Includes(even.dfa, ab.dfa));
}

TEST(NfaTest, DirectSimulationAgreesWithDfa) {
  Rng rng(101);
  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  auto r = std::move(ParseRegex("(a.b|b)*.a?", &sigma)).ValueOrDie();
  Nfa nfa = CompileRegexToNfa(r, 2);
  Dfa dfa = Minimize(Determinize(nfa));
  for (int i = 0; i < 300; ++i) {
    size_t len = rng.NextBelow(10);
    std::vector<SymbolId> word;
    for (size_t j = 0; j < len; ++j) {
      word.push_back(static_cast<SymbolId>(rng.NextBelow(2)));
    }
    EXPECT_EQ(nfa.Accepts(word), dfa.Accepts(word));
  }
}

TEST(RegexTest, WordFactory) {
  Alphabet sigma;
  SymbolId a = sigma.Intern("a"), b = sigma.Intern("b");
  Dfa d = CompileRegexToDfa(Regex::Word({a, b, a}),
                            static_cast<uint32_t>(sigma.size()));
  EXPECT_TRUE(d.Accepts({a, b, a}));
  EXPECT_FALSE(d.Accepts({a, b}));
  EXPECT_FALSE(d.Accepts({a, b, a, a}));
  // The empty word.
  Dfa e = CompileRegexToDfa(Regex::Word({}), 2);
  EXPECT_TRUE(e.Accepts({}));
  EXPECT_FALSE(e.Accepts({a}));
}

TEST(DfaTest, LiveStatesPruneDeadEnds) {
  Lang l("a.b");
  std::vector<bool> live = l.dfa.LiveStates();
  EXPECT_TRUE(live[l.dfa.start()]);
  // The sink after a wrong letter must be dead.
  SymbolId b = l.sigma.Find("b");
  StateId sink = l.dfa.Next(l.dfa.start(), b);
  EXPECT_FALSE(live[sink]);
}

TEST(NfaTest, RemapSymbolsPreservesLanguageShape) {
  Alphabet sigma;
  SymbolId a = sigma.Intern("a");
  auto r = std::move(ParseRegexClosed("a.a", sigma)).ValueOrDie();
  Nfa nfa = CompileRegexToNfa(r, 1);
  // Map symbol 0 → 5 in a 6-symbol alphabet.
  Nfa remapped = RemapSymbols(nfa, {5}, 6);
  EXPECT_TRUE(remapped.Accepts({5, 5}));
  EXPECT_FALSE(remapped.Accepts({5}));
  EXPECT_FALSE(remapped.Accepts({0, 0}));
  (void)a;
}

// Random regex generator for property testing.
RegexPtr RandomRegex(Rng& rng, uint32_t num_symbols, int depth) {
  if (depth == 0 || rng.NextBool(0.35)) {
    switch (rng.NextBelow(4)) {
      case 0:
        return Regex::Epsilon();
      default:
        return Regex::Symbol(
            static_cast<SymbolId>(rng.NextBelow(num_symbols)));
    }
  }
  switch (rng.NextBelow(3)) {
    case 0:
      return Regex::Concat(RandomRegex(rng, num_symbols, depth - 1),
                           RandomRegex(rng, num_symbols, depth - 1));
    case 1:
      return Regex::Union(RandomRegex(rng, num_symbols, depth - 1),
                          RandomRegex(rng, num_symbols, depth - 1));
    default:
      return Regex::Star(RandomRegex(rng, num_symbols, depth - 1));
  }
}

class RegexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegexPropertyTest, NfaDfaMinimizeAgree) {
  Rng rng(GetParam());
  RegexPtr r = RandomRegex(rng, 2, 4);
  Nfa nfa = CompileRegexToNfa(r, 2);
  Dfa det = Determinize(nfa);
  Dfa min = Minimize(det);
  // Exhaustive agreement over all words up to length 6.
  std::vector<SymbolId> word;
  for (uint32_t len = 0; len <= 6; ++len) {
    for (uint32_t mask = 0; mask < (1u << len); ++mask) {
      word.clear();
      for (uint32_t i = 0; i < len; ++i) word.push_back((mask >> i) & 1);
      bool n = nfa.Accepts(word);
      EXPECT_EQ(n, det.Accepts(word));
      EXPECT_EQ(n, min.Accepts(word));
    }
  }
}

TEST_P(RegexPropertyTest, ReverseOfReverseIsIdentity) {
  Rng rng(GetParam() + 1000);
  RegexPtr r = RandomRegex(rng, 2, 4);
  Dfa d1 = CompileRegexToDfa(r, 2);
  Dfa d2 = CompileRegexToDfa(Regex::Reverse(Regex::Reverse(r)), 2);
  EXPECT_TRUE(EquivalentLanguages(d1, d2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

// --- Path expressions ---

TEST(PathExprTest, EvalOnUnrankedTree) {
  Alphabet sigma;
  auto tree =
      std::move(ParseUnrankedTerm("a(b,b,c(d),e)", &sigma)).ValueOrDie();
  auto r = std::move(ParseRegexClosed("a.c.d", sigma)).ValueOrDie();
  Dfa dfa = CompileRegexToDfa(r, static_cast<uint32_t>(sigma.size()));
  std::vector<NodeId> hits = EvalPath(tree, dfa);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(sigma.Name(tree.tag(hits[0])), "d");
}

TEST(PathExprTest, EvalMatchesMultiple) {
  Alphabet sigma;
  auto tree = std::move(ParseUnrankedTerm("a(b,b,c(b))", &sigma)).ValueOrDie();
  // All b-nodes anywhere below the root: a.(b|c)*.b
  auto r = std::move(ParseRegexClosed("a.(b|c)*.b", sigma)).ValueOrDie();
  Dfa dfa = CompileRegexToDfa(r, static_cast<uint32_t>(sigma.size()));
  std::vector<NodeId> hits = EvalPath(tree, dfa);
  EXPECT_EQ(hits.size(), 3u);
}

TEST(PathExprTest, NullableRegexMatchesNothingWithoutRoot) {
  // eval requires the path to include the root's own label, so even a
  // nullable regex only matches if a full word matches.
  Alphabet sigma;
  auto tree = std::move(ParseUnrankedTerm("a(b)", &sigma)).ValueOrDie();
  auto r = std::move(ParseRegexClosed("b*", sigma)).ValueOrDie();
  Dfa dfa = CompileRegexToDfa(r, static_cast<uint32_t>(sigma.size()));
  EXPECT_TRUE(EvalPath(tree, dfa).empty());
}

TEST(PathExprTest, PaperTranslationExample) {
  // translate(a.c.d) accepts a (-)* c (-)* d.
  Alphabet sigma;
  SymbolId a = sigma.Intern("a");
  SymbolId c = sigma.Intern("c");
  SymbolId d = sigma.Intern("d");
  auto enc = std::move(MakeEncodedAlphabet(sigma)).ValueOrDie();
  auto r = std::move(ParseRegexClosed("a.c.d", sigma)).ValueOrDie();
  Dfa t = std::move(TranslatePathExpression(r, enc)).ValueOrDie();
  SymbolId A = enc.tag_symbol[a], C = enc.tag_symbol[c],
           D = enc.tag_symbol[d], S = enc.cons;
  EXPECT_TRUE(t.Accepts({A, C, D}));
  EXPECT_TRUE(t.Accepts({A, S, C, S, S, D}));
  EXPECT_FALSE(t.Accepts({S, A, C, D}));     // no leading separators
  EXPECT_FALSE(t.Accepts({A, C, D, S}));     // no trailing separators
  EXPECT_FALSE(t.Accepts({A, C}));
}

// Property (Section 2.1): eval(translate(r), encode(t)) = encode(eval(r,t)).
class PathTranslationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathTranslationTest, TranslationCommutesWithEncoding) {
  Rng rng(GetParam());
  Alphabet sigma;
  for (const char* n : {"a", "b", "c"}) sigma.Intern(n);
  RandomUnrankedOptions opts;
  opts.target_size = 1 + rng.NextBelow(60);
  opts.max_children = 4;
  UnrankedTree tree = RandomUnrankedTree(sigma, rng, opts);
  RegexPtr r = RandomRegex(rng, static_cast<uint32_t>(sigma.size()), 4);

  auto enc = std::move(MakeEncodedAlphabet(sigma)).ValueOrDie();
  std::vector<NodeId> node_map;
  auto bin = std::move(EncodeTree(tree, enc, &node_map)).ValueOrDie();

  Dfa dfa = CompileRegexToDfa(r, static_cast<uint32_t>(sigma.size()));
  std::vector<NodeId> unranked_hits = EvalPath(tree, dfa);

  Dfa tdfa = std::move(TranslatePathExpression(r, enc)).ValueOrDie();
  std::vector<NodeId> binary_hits = EvalPathBinary(bin, tdfa);

  std::set<NodeId> expected;
  for (NodeId n : unranked_hits) expected.insert(node_map[n]);
  std::set<NodeId> actual(binary_hits.begin(), binary_hits.end());
  EXPECT_EQ(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathTranslationTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace pebbletc
