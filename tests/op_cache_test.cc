// Tests for the content-addressed op cache (docs/CACHING.md): structural
// hash invariants (rename / rule-order / duplicate / dead-state invariance,
// plus the satellite regression that parallel products hash identically
// across thread counts), binary (de)serialization round-trips, TaOpCache
// hit/miss/evict/byte accounting, size-aware LRU eviction order, budget-key
// separation, the TaAlgebra gating rules, and persistent round-trips with
// corrupted-entry quarantine.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/diffcheck.h"
#include "src/common/rng.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_cache.h"
#include "src/ta/op_context.h"
#include "src/ta/random_ta.h"
#include "src/ta/serialize.h"

namespace pebbletc {
namespace {

namespace fs = std::filesystem;

Nbta SampleNbta(uint64_t seed, uint32_t num_states = 6) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  Rng rng(seed);
  RandomNbtaOptions o;
  o.num_states = num_states;
  o.rule_density = 0.4;
  o.leaf_density = 0.6;
  o.accepting_density = 0.4;
  return RandomNbta(sigma, rng, o);
}

// Renames state q to perm[q] everywhere (perm must be a permutation).
Nbta PermuteStates(const Nbta& a, const std::vector<StateId>& perm) {
  Nbta out;
  out.num_states = a.num_states;
  out.num_symbols = a.num_symbols;
  out.accepting.assign(a.num_states, false);
  for (StateId q = 0; q < a.num_states; ++q) {
    out.accepting[perm[q]] = a.accepting[q];
  }
  for (const Nbta::LeafRule& r : a.leaf_rules) {
    out.AddLeafRule(r.symbol, perm[r.to]);
  }
  for (const Nbta::BinaryRule& r : a.rules) {
    out.AddRule(r.symbol, perm[r.left], perm[r.right], perm[r.to]);
  }
  return out;
}

std::string NbtaBytesOf(const Nbta& a) {
  std::string s;
  SerializeNbta(a, &s);
  return s;
}

std::string DbtaBytesOf(const Dbta& d) {
  std::string s;
  SerializeDbta(d, &s);
  return s;
}

// A tiny deterministic DBTA over the diffcheck alphabet (4 symbols).
Dbta SampleDbta() {
  Dbta d(3, 4);
  d.set_accepting(1, true);
  d.SetLeafState(0, 0);
  d.SetLeafState(1, 1);
  for (SymbolId s = 0; s < 4; ++s) {
    for (StateId l = 0; l < 3; ++l) {
      for (StateId r = 0; r < 3; ++r) {
        d.SetNext(s, l, r, (s + l + 2 * r) % 3);
      }
    }
  }
  return d;
}

// ------------------------------------------------ structural hashing -------

TEST(StructuralHashTest, InvariantUnderStatePermutation) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Nbta a = SampleNbta(0xcafe00 + seed);
    const TaStructuralHash h = NbtaStructuralHash(a);
    // An order-reversing permutation and a rotation.
    std::vector<StateId> rev(a.num_states), rot(a.num_states);
    for (StateId q = 0; q < a.num_states; ++q) {
      rev[q] = a.num_states - 1 - q;
      rot[q] = (q + 1) % a.num_states;
    }
    EXPECT_EQ(NbtaStructuralHash(PermuteStates(a, rev)), h) << "seed " << seed;
    EXPECT_EQ(NbtaStructuralHash(PermuteStates(a, rot)), h) << "seed " << seed;
  }
}

TEST(StructuralHashTest, InvariantUnderRuleReorderAndDuplicates) {
  const Nbta a = SampleNbta(0xd00d);
  const TaStructuralHash h = NbtaStructuralHash(a);

  Nbta reordered = a;
  std::reverse(reordered.rules.begin(), reordered.rules.end());
  std::reverse(reordered.leaf_rules.begin(), reordered.leaf_rules.end());
  EXPECT_EQ(NbtaStructuralHash(reordered), h);

  // The parallel product may emit the same rule with different
  // multiplicities per schedule; the hash must not see multiplicity.
  Nbta duplicated = a;
  ASSERT_FALSE(a.rules.empty());
  ASSERT_FALSE(a.leaf_rules.empty());
  duplicated.rules.push_back(a.rules.front());
  duplicated.rules.push_back(a.rules.front());
  duplicated.leaf_rules.push_back(a.leaf_rules.back());
  EXPECT_EQ(NbtaStructuralHash(duplicated), h);
}

TEST(StructuralHashTest, InvariantUnderDeadStates) {
  const Nbta a = SampleNbta(0xbeef);
  const TaStructuralHash h = NbtaStructuralHash(a);

  // An unreachable state (no leaf rule ever produces it, and it only feeds
  // itself) must be trimmed away before hashing.
  Nbta padded = a;
  const StateId dead = padded.AddState();
  padded.AddRule(2, dead, dead, dead);
  EXPECT_EQ(NbtaStructuralHash(padded), h);

  // A reachable but dead-end state (never reaches acceptance) likewise.
  Nbta sink = a;
  const StateId s = sink.AddState();
  ASSERT_FALSE(sink.leaf_rules.empty());
  sink.AddRule(2, sink.leaf_rules.front().to, sink.leaf_rules.front().to, s);
  sink.AddRule(2, s, s, s);
  EXPECT_EQ(NbtaStructuralHash(sink), h);
}

TEST(StructuralHashTest, DistinguishesDifferentAutomata) {
  const Nbta a = SampleNbta(0x1111);
  const Nbta b = SampleNbta(0x2222);
  EXPECT_NE(NbtaStructuralHash(a), NbtaStructuralHash(b));

  // Flipping acceptance of a live state changes the hash.
  Nbta flipped = a;
  ASSERT_FALSE(flipped.leaf_rules.empty());
  const StateId q = flipped.leaf_rules.front().to;
  flipped.accepting[q] = !flipped.accepting[q];
  EXPECT_NE(NbtaStructuralHash(flipped), NbtaStructuralHash(a));
}

TEST(StructuralHashTest, DbtaHashTracksRepresentation) {
  const Dbta d1 = SampleDbta();
  const Dbta d2 = SampleDbta();
  EXPECT_EQ(DbtaStructuralHash(d1), DbtaStructuralHash(d2));

  Dbta d3 = SampleDbta();
  d3.SetNext(0, 0, 0, (d3.Next(0, 0, 0) + 1) % d3.num_states());
  EXPECT_NE(DbtaStructuralHash(d3), DbtaStructuralHash(d1));
}

// The satellite regression for the parallel layer: the sharded product's
// state numbering is schedule-dependent, but its structural hash must be
// identical at --threads=1 and --threads=4 (docs/PARALLEL.md caveat).
TEST(StructuralHashTest, ParallelIntersectHashEqualAcrossThreadCounts) {
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng_a(0x5eed0000 + seed), rng_b(0xb0b00000 + seed);
    RandomNbtaOptions o;
    o.num_states = 12;  // dense enough to clear the 256-rule parallel gate
    o.rule_density = 0.7;
    o.leaf_density = 0.6;
    o.accepting_density = 0.4;
    const Nbta a = RandomNbta(sigma, rng_a, o);
    const Nbta b = RandomNbta(sigma, rng_b, o);
    ASSERT_GE(a.rules.size() + b.rules.size(), 256u);

    TaOpContext serial_ctx, parallel_ctx;
    serial_ctx.budgets.num_threads = 1;
    parallel_ctx.budgets.num_threads = 4;
    const Nbta serial =
        IntersectNbta(NbtaIndex(a), NbtaIndex(b), &serial_ctx);
    const Nbta parallel =
        IntersectNbta(NbtaIndex(a), NbtaIndex(b), &parallel_ctx);
    ASSERT_FALSE(serial_ctx.interrupted());
    ASSERT_FALSE(parallel_ctx.interrupted());
    EXPECT_EQ(NbtaStructuralHash(parallel), NbtaStructuralHash(serial))
        << "seed " << seed;
  }
}

TEST(StructuralHashTest, BudgetKeySeparation) {
  const TaStructuralHash h = NbtaStructuralHash(SampleNbta(0xabcd));
  const uint64_t fp = RankedAlphabetFingerprint(DiffcheckAlphabet(false));
  const TaCacheKey small_cap =
      MakeTaCacheKey(TaOpKind::kDeterminize, h, TaStructuralHash{}, fp, 100);
  const TaCacheKey big_cap =
      MakeTaCacheKey(TaOpKind::kDeterminize, h, TaStructuralHash{}, fp, 200);
  EXPECT_FALSE(small_cap == big_cap)
      << "same operands under different budget caps must not alias";
  const TaCacheKey other_op =
      MakeTaCacheKey(TaOpKind::kComplement, h, TaStructuralHash{}, fp, 100);
  EXPECT_FALSE(small_cap == other_op);
}

// --------------------------------------------------- serialization ---------

TEST(SerializeTest, NbtaRoundTrip) {
  for (uint64_t seed : {0x1ull, 0x77ull, 0xfeedull}) {
    const Nbta a = SampleNbta(seed);
    const std::string bytes = NbtaBytesOf(a);
    Result<Nbta> back = DeserializeNbta(bytes);
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(NbtaBytesOf(*back), bytes) << "round-trip must be bit-exact";
    EXPECT_EQ(back->num_states, a.num_states);
    EXPECT_EQ(back->rules.size(), a.rules.size());
  }
}

TEST(SerializeTest, DbtaRoundTrip) {
  const Dbta d = SampleDbta();
  const std::string bytes = DbtaBytesOf(d);
  Result<Dbta> back = DeserializeDbta(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(DbtaBytesOf(*back), bytes);
  EXPECT_EQ(back->num_states(), d.num_states());
  EXPECT_EQ(back->Next(1, 2, 1), d.Next(1, 2, 1));
}

TEST(SerializeTest, RejectsTruncationAndTrailingBytes) {
  const std::string nbta_bytes = NbtaBytesOf(SampleNbta(0x42));
  const std::string dbta_bytes = DbtaBytesOf(SampleDbta());

  EXPECT_FALSE(DeserializeNbta("").ok());
  EXPECT_FALSE(
      DeserializeNbta(std::string_view(nbta_bytes).substr(
          0, nbta_bytes.size() - 1)).ok());
  EXPECT_FALSE(DeserializeNbta(nbta_bytes + '\0').ok());

  EXPECT_FALSE(DeserializeDbta("").ok());
  EXPECT_FALSE(
      DeserializeDbta(std::string_view(dbta_bytes).substr(
          0, dbta_bytes.size() - 1)).ok());
  EXPECT_FALSE(DeserializeDbta(dbta_bytes + '\0').ok());
}

// A hostile header may claim astronomically more elements than the payload
// holds (e.g. 0xFFFFFFFF rules in a few bytes, ~68 GB if reserved). Every
// such count must be rejected as a parse error before anything is
// allocated — an uncaught bad_alloc would take down the whole daemon.
TEST(SerializeTest, RejectsCountsExceedingRemainingInput) {
  auto u32 = [](uint32_t v) {
    std::string s;
    for (int i = 0; i < 4; ++i) {
      s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    return s;
  };

  // Nbta: 1 state, 1 symbol, empty accepting byte, then a leaf-rule count
  // far beyond the remaining (zero) bytes.
  const std::string nbta_header = u32(1) + u32(1) + std::string(1, '\0');
  Result<Nbta> huge_leaf = DeserializeNbta(nbta_header + u32(0xffffffffu));
  ASSERT_FALSE(huge_leaf.ok());
  EXPECT_EQ(huge_leaf.status().code(), StatusCode::kParseError);
  // Same with a plausible leaf section but a hostile binary-rule count.
  Result<Nbta> huge_rules =
      DeserializeNbta(nbta_header + u32(0) + u32(0xffffffffu));
  ASSERT_FALSE(huge_rules.ok());
  EXPECT_EQ(huge_rules.status().code(), StatusCode::kParseError);

  // Dbta: an 8-byte header demanding ~2^64 table entries from an empty
  // payload, plus a shape whose num_symbols * num_states^2 product would
  // wrap 64-bit arithmetic if it were computed unchecked.
  Result<Dbta> huge_dims =
      DeserializeDbta(u32(0xffffffffu) + u32(0xffffffffu));
  ASSERT_FALSE(huge_dims.ok());
  EXPECT_EQ(huge_dims.status().code(), StatusCode::kParseError);
  Result<Dbta> wrapping =
      DeserializeDbta(u32(1u << 22) + u32(1u << 21) + std::string(64, '\0'));
  ASSERT_FALSE(wrapping.ok());
  EXPECT_EQ(wrapping.status().code(), StatusCode::kParseError);
}

TEST(SerializeTest, ChecksumDetectsBitFlips) {
  const std::string bytes = NbtaBytesOf(SampleNbta(0x99));
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x10;
  EXPECT_NE(TaPayloadChecksum(flipped), TaPayloadChecksum(bytes));
}

// ------------------------------------------------- cache accounting --------

TaCacheKey KeyFor(uint64_t tag) {
  TaStructuralHash h;
  h.lo = tag;
  h.hi = ~tag;
  return MakeTaCacheKey(TaOpKind::kComplement, h, TaStructuralHash{}, 7, 0);
}

TEST(TaOpCacheTest, HitMissAndByteAccounting) {
  TaOpCache cache(1 << 20);
  TaOpContext ctx;
  const Nbta a = SampleNbta(0x1234);

  EXPECT_EQ(cache.FindNbta(KeyFor(1), &ctx), nullptr);
  EXPECT_EQ(ctx.counters.memo_misses, 1u);
  EXPECT_EQ(ctx.counters.memo_hits, 0u);

  cache.InsertNbta(KeyFor(1), a, &ctx);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(ctx.counters.memo_bytes, 0u);
  EXPECT_EQ(cache.size_bytes(), ctx.counters.memo_bytes);

  std::shared_ptr<const Nbta> hit = cache.FindNbta(KeyFor(1), &ctx);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(ctx.counters.memo_hits, 1u);
  EXPECT_EQ(NbtaBytesOf(*hit), NbtaBytesOf(a));

  // A key holding an NBTA is a miss for the DBTA probe (and vice versa).
  EXPECT_EQ(cache.FindDbta(KeyFor(1), &ctx), nullptr);
  EXPECT_EQ(ctx.counters.memo_misses, 2u);

  // Idempotent re-insert: no growth, no duplicate charge.
  const size_t bytes_before = cache.size_bytes();
  cache.InsertNbta(KeyFor(1), a, &ctx);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.size_bytes(), bytes_before);

  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.FindNbta(KeyFor(1), &ctx), nullptr);
}

TEST(TaOpCacheTest, LruEvictionPrefersStaleEntries) {
  // Identical payloads under distinct keys make every entry the same size,
  // so a capacity of exactly two entries forces the third insert to evict.
  const Nbta a = SampleNbta(0x4321);
  TaOpCache probe(1 << 20);
  TaOpContext ctx;
  probe.InsertNbta(KeyFor(1), a, &ctx);
  const size_t entry_bytes = probe.size_bytes();
  ASSERT_GT(entry_bytes, 0u);

  TaOpCache cache(2 * entry_bytes);
  cache.InsertNbta(KeyFor(1), a, &ctx);
  cache.InsertNbta(KeyFor(2), a, &ctx);
  EXPECT_EQ(cache.entries(), 2u);

  // Touch key 1 so key 2 is the LRU entry, then overflow.
  ASSERT_NE(cache.FindNbta(KeyFor(1), &ctx), nullptr);
  const size_t evictions_before = ctx.counters.memo_evictions;
  cache.InsertNbta(KeyFor(3), a, &ctx);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(ctx.counters.memo_evictions, evictions_before + 1);
  EXPECT_NE(cache.FindNbta(KeyFor(1), &ctx), nullptr) << "recency refreshed";
  EXPECT_NE(cache.FindNbta(KeyFor(3), &ctx), nullptr);
  EXPECT_EQ(cache.FindNbta(KeyFor(2), &ctx), nullptr) << "LRU entry evicted";

  // Shrinking the capacity evicts oldest-first until the contents fit.
  cache.set_capacity_bytes(entry_bytes);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_LE(cache.size_bytes(), entry_bytes);
}

TEST(TaOpCacheTest, BudgetCapsSeparateEntries) {
  TaOpCache cache(1 << 20);
  TaOpContext ctx;
  const Nbta a = SampleNbta(0x5678);
  const TaStructuralHash h = NbtaStructuralHash(a);
  const TaCacheKey under_small =
      MakeTaCacheKey(TaOpKind::kDeterminize, h, TaStructuralHash{}, 7, 100);
  const TaCacheKey under_big =
      MakeTaCacheKey(TaOpKind::kDeterminize, h, TaStructuralHash{}, 7, 200);
  cache.InsertNbta(under_small, a, &ctx);
  EXPECT_EQ(cache.FindNbta(under_big, &ctx), nullptr)
      << "a success under one cap must not serve a query under another";
  EXPECT_NE(cache.FindNbta(under_small, &ctx), nullptr);
}

// ------------------------------------------------------ TaAlgebra ----------

TEST(TaAlgebraTest, EnabledGating) {
  EXPECT_FALSE(TaAlgebra::Enabled(nullptr));

  TaOpContext off;
  EXPECT_FALSE(TaAlgebra::Enabled(&off)) << "memo defaults to kOff";

  TaOpContext on;
  on.budgets.memo = TaMemoMode::kInMemory;
  EXPECT_TRUE(TaAlgebra::Enabled(&on));

  // A context carrying a fault injector is always served cold: injection
  // ordinals must stay deterministic.
  TaFaultInjector inj;
  inj.trip_at = 1u << 30;
  on.fault = &inj;
  EXPECT_FALSE(TaAlgebra::Enabled(&on));
}

TEST(TaAlgebraTest, CachedOpsReplayByteExactly) {
  TaOpCache cache(8 << 20);
  const TaAlgebra alg(&cache);
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = SampleNbta(0x31337);
  const NbtaIndex idx(a);

  auto memo_ctx = [] {
    TaOpContext ctx;
    ctx.budgets.memo = TaMemoMode::kInMemory;
    ctx.budgets.num_threads = 1;  // byte-exactness needs the serial path
    return ctx;
  };

  TaOpContext cold_ctx;
  cold_ctx.budgets.num_threads = 1;
  Result<Nbta> cold = ComplementNbta(idx, sigma, &cold_ctx);
  ASSERT_TRUE(cold.ok());

  TaOpContext miss_ctx = memo_ctx();
  Result<Nbta> warm1 = alg.Complement(idx, sigma, &miss_ctx);
  ASSERT_TRUE(warm1.ok());
  EXPECT_EQ(miss_ctx.counters.memo_misses, 1u);
  EXPECT_EQ(miss_ctx.counters.memo_hits, 0u);
  EXPECT_EQ(NbtaBytesOf(*warm1), NbtaBytesOf(*cold))
      << "a miss computes exactly the cold result";

  TaOpContext hit_ctx = memo_ctx();
  Result<Nbta> warm2 = alg.Complement(idx, sigma, &hit_ctx);
  ASSERT_TRUE(warm2.ok());
  EXPECT_EQ(hit_ctx.counters.memo_hits, 1u);
  EXPECT_EQ(hit_ctx.counters.memo_misses, 0u);
  EXPECT_EQ(NbtaBytesOf(*warm2), NbtaBytesOf(*warm1));

  // The other cached ops follow the same miss-then-hit protocol.
  TaOpContext det_miss = memo_ctx();
  TaOpContext det_hit = memo_ctx();
  Result<Dbta> d1 = alg.Determinize(idx, sigma, &det_miss);
  Result<Dbta> d2 = alg.Determinize(idx, sigma, &det_hit);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(det_hit.counters.memo_hits, 1u);
  EXPECT_EQ(DbtaBytesOf(*d2), DbtaBytesOf(*d1));

  const Nbta b = SampleNbta(0x31338);
  const NbtaIndex bidx(b);
  TaOpContext int_miss = memo_ctx();
  TaOpContext int_hit = memo_ctx();
  const Nbta p1 = alg.Intersect(idx, bidx, &int_miss);
  const Nbta p2 = alg.Intersect(idx, bidx, &int_hit);
  EXPECT_EQ(int_hit.counters.memo_hits, 1u);
  EXPECT_EQ(NbtaBytesOf(p2), NbtaBytesOf(p1));
}

TEST(TaAlgebraTest, IncludedInMemoizesVerdictsAndWitnesses) {
  // Inclusion verdicts ride the Nbta payload (kIncludedIn encoding): a warm
  // "included" decodes from the empty-language automaton, a warm refutation
  // decodes the counterexample tree from its singleton automaton — and both
  // must match the cold result structurally.
  TaOpCache cache(8 << 20);
  const TaAlgebra alg(&cache);
  const RankedAlphabet sigma = DiffcheckAlphabet(false);

  auto memo_ctx = [] {
    TaOpContext ctx;
    ctx.budgets.memo = TaMemoMode::kInMemory;
    ctx.budgets.num_threads = 1;
    return ctx;
  };

  // Refuted pair: a random automaton vs. the empty language (any accepted
  // tree is a counterexample). Sample until the left side is non-empty.
  Nbta a = SampleNbta(0x4444);
  for (uint64_t seed = 0x4445; IsEmptyNbta(NbtaIndex(a)); ++seed) {
    a = SampleNbta(seed);
  }
  const NbtaIndex aidx(a);
  const Nbta none = EmptyLanguageNbta(sigma);
  const NbtaIndex nidx(none);

  TaOpContext miss_ctx = memo_ctx();
  auto cold = alg.IncludedIn(aidx, nidx, sigma, &miss_ctx);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->included);
  ASSERT_TRUE(cold->counterexample.has_value());
  EXPECT_EQ(miss_ctx.counters.memo_misses, 1u);

  TaOpContext hit_ctx = memo_ctx();
  auto warm = alg.IncludedIn(aidx, nidx, sigma, &hit_ctx);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(hit_ctx.counters.memo_hits, 1u);
  EXPECT_EQ(hit_ctx.counters.memo_misses, 0u);
  EXPECT_FALSE(warm->included);
  ASSERT_TRUE(warm->counterexample.has_value());
  EXPECT_TRUE(*warm->counterexample == *cold->counterexample);

  // Included pair: anything against the universal automaton.
  const Nbta uni = UniversalNbta(sigma);
  const NbtaIndex uidx(uni);
  TaOpContext inc_miss = memo_ctx();
  TaOpContext inc_hit = memo_ctx();
  auto inc1 = alg.IncludedIn(aidx, uidx, sigma, &inc_miss);
  auto inc2 = alg.IncludedIn(aidx, uidx, sigma, &inc_hit);
  ASSERT_TRUE(inc1.ok());
  ASSERT_TRUE(inc2.ok());
  EXPECT_EQ(inc_hit.counters.memo_hits, 1u);
  EXPECT_TRUE(inc1->included);
  EXPECT_TRUE(inc2->included);
  EXPECT_FALSE(inc2->counterexample.has_value());

  // Different pair budgets must not alias (the key carries the cap).
  TaOpContext small_cap = memo_ctx();
  small_cap.budgets.max_antichain_pairs = 12345;
  auto r3 = alg.IncludedIn(aidx, uidx, sigma, &small_cap);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(small_cap.counters.memo_hits, 0u);
  EXPECT_EQ(small_cap.counters.memo_misses, 1u);
}

TEST(TaAlgebraTest, OffModeBypassesCache) {
  TaOpCache cache(1 << 20);
  const TaAlgebra alg(&cache);
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = SampleNbta(0x777);
  const NbtaIndex idx(a);
  TaOpContext ctx;  // memo = kOff
  ctx.budgets.num_threads = 1;
  ASSERT_TRUE(alg.Complement(idx, sigma, &ctx).ok());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(ctx.counters.memo_misses, 0u);
  EXPECT_EQ(ctx.counters.memo_hits, 0u);
}

// ------------------------------------------------------ persistence --------

class PersistenceTest : public ::testing::Test {
 protected:
  // A fresh directory per test; gtest's TempDir is stable across the run.
  std::string FreshDir(const std::string& leaf) {
    fs::path dir = fs::path(::testing::TempDir()) / "op_cache_test" / leaf;
    std::error_code ec;
    fs::remove_all(dir, ec);
    return dir.string();
  }

  std::vector<fs::path> EntryFiles(const std::string& dir) {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".ta") out.push_back(e.path());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  void FlipByte(const fs::path& p, size_t offset) {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << p;
    f.seekg(0, std::ios::end);
    ASSERT_LT(offset, static_cast<size_t>(f.tellg())) << p;
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c ^= 0x20;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
  }
};

TEST_F(PersistenceTest, RoundTripAcrossProcessesWorthOfCaches) {
  const std::string dir = FreshDir("roundtrip");
  const Nbta a = SampleNbta(0xaaaa);
  const Dbta d = SampleDbta();
  TaOpContext ctx;
  {
    TaOpCache writer(1 << 20);
    ASSERT_TRUE(writer.AttachPersistentDir(dir).ok());
    writer.InsertNbta(KeyFor(1), a, &ctx);
    writer.InsertDbta(KeyFor(2), d, &ctx);
    // Destructor flushes the manifest.
  }
  ASSERT_EQ(EntryFiles(dir).size(), 2u);

  TaOpCache reader(1 << 20);
  size_t loaded = 0, quarantined = 0;
  ASSERT_TRUE(reader.AttachPersistentDir(dir, &loaded, &quarantined).ok());
  EXPECT_EQ(loaded, 2u);
  EXPECT_EQ(quarantined, 0u);
  EXPECT_EQ(reader.entries(), 2u);

  std::shared_ptr<const Nbta> na = reader.FindNbta(KeyFor(1), &ctx);
  ASSERT_NE(na, nullptr);
  EXPECT_EQ(NbtaBytesOf(*na), NbtaBytesOf(a));
  std::shared_ptr<const Dbta> dd = reader.FindDbta(KeyFor(2), &ctx);
  ASSERT_NE(dd, nullptr);
  EXPECT_EQ(DbtaBytesOf(*dd), DbtaBytesOf(d));
}

TEST_F(PersistenceTest, CorruptEntriesAreQuarantinedNeverTrusted) {
  const std::string dir = FreshDir("quarantine");
  TaOpContext ctx;
  {
    TaOpCache writer(1 << 20);
    ASSERT_TRUE(writer.AttachPersistentDir(dir).ok());
    writer.InsertNbta(KeyFor(1), SampleNbta(0xbbb1), &ctx);
    writer.InsertNbta(KeyFor(2), SampleNbta(0xbbb2), &ctx);
    writer.InsertNbta(KeyFor(3), SampleNbta(0xbbb3), &ctx);
  }
  std::vector<fs::path> files = EntryFiles(dir);
  ASSERT_EQ(files.size(), 3u);

  // Entry layout (docs/FORMATS.md): magic+version (8 bytes), key (48 bytes),
  // kind/len/checksum (16 bytes), then the payload. Corrupt one file inside
  // the key region — caught because the filename is itself a hash of the key
  // — and another inside the payload — caught by the stored checksum.
  FlipByte(files[0], 16);
  FlipByte(files[1], 80);

  TaOpCache reader(1 << 20);
  size_t loaded = 0, quarantined = 0;
  ASSERT_TRUE(reader.AttachPersistentDir(dir, &loaded, &quarantined).ok());
  EXPECT_EQ(loaded, 1u);
  EXPECT_EQ(quarantined, 2u);
  EXPECT_EQ(reader.entries(), 1u);

  // The corrupt files were renamed aside, not deleted and not trusted.
  EXPECT_FALSE(fs::exists(files[0]));
  EXPECT_FALSE(fs::exists(files[1]));
  EXPECT_TRUE(fs::exists(files[0].string() + ".quarantined"));
  EXPECT_TRUE(fs::exists(files[1].string() + ".quarantined"));
  EXPECT_TRUE(fs::exists(files[2]));
}

TEST_F(PersistenceTest, WriteThroughKeepsWarmEntriesReloadable) {
  const std::string dir = FreshDir("write_through");
  const RankedAlphabet sigma = DiffcheckAlphabet(false);
  const Nbta a = SampleNbta(0xcc01);
  const NbtaIndex idx(a);

  TaOpContext ctx;
  ctx.budgets.memo = TaMemoMode::kPersistent;
  ctx.budgets.num_threads = 1;

  std::string first_bytes;
  {
    TaOpCache cache(1 << 20);
    ASSERT_TRUE(cache.AttachPersistentDir(dir).ok());
    const TaAlgebra alg(&cache);
    Result<Nbta> r = alg.Complement(idx, sigma, &ctx);
    ASSERT_TRUE(r.ok());
    first_bytes = NbtaBytesOf(*r);
    EXPECT_EQ(ctx.counters.memo_misses, 1u);
  }

  // A second cache ("process") hits without recomputing.
  TaOpCache cache2(1 << 20);
  size_t loaded = 0;
  ASSERT_TRUE(cache2.AttachPersistentDir(dir, &loaded).ok());
  ASSERT_GE(loaded, 1u);
  const TaAlgebra alg2(&cache2);
  TaOpContext ctx2;
  ctx2.budgets.memo = TaMemoMode::kPersistent;
  ctx2.budgets.num_threads = 1;
  Result<Nbta> r2 = alg2.Complement(idx, sigma, &ctx2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(ctx2.counters.memo_hits, 1u);
  EXPECT_EQ(ctx2.counters.memo_misses, 0u);
  EXPECT_EQ(NbtaBytesOf(*r2), first_bytes);
}

}  // namespace
}  // namespace pebbletc
