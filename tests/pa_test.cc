// Tests for src/pa: k-pebble automata (Def. 4.5), direct AGAP acceptance,
// the Prop. 4.6 transducer × top-down-automaton product, and the Theorem 4.7
// MSO translation — cross-validated: for random pebble automata the compiled
// regular tree automaton must agree with direct simulation on random trees.

#include <gtest/gtest.h>

#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/pa/automaton.h"
#include "src/pa/product.h"
#include "src/pa/to_mso.h"
#include "src/pt/paper_machines.h"
#include "src/pt/transducer.h"
#include "src/ta/convert.h"
#include "src/ta/nbta.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

using M = PebbleAutomaton::MoveKind;

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

RankedAlphabet MicroRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  return sigma;
}

TEST(PebbleAutomatonTest, RootLabelCheck) {
  RankedAlphabet sigma = TinyRanked();
  PebbleAutomaton a(1, 4);
  StateId q = a.AddState(1);
  a.SetStart(q);
  a.AddAccept({.symbol = sigma.Find("a2")}, q);
  ASSERT_TRUE(a.Validate(sigma).ok());
  auto yes = std::move(ParseBinaryTerm("a2(a0,a0)", sigma)).ValueOrDie();
  auto no = std::move(ParseBinaryTerm("b2(a0,a0)", sigma)).ValueOrDie();
  EXPECT_TRUE(*PebbleAutomatonAccepts(a, yes));
  EXPECT_FALSE(*PebbleAutomatonAccepts(a, no));
}

TEST(PebbleAutomatonTest, BranchRequiresBothSides) {
  RankedAlphabet sigma = TinyRanked();
  // Both children of the root must be a0 leaves.
  PebbleAutomaton a(1, 4);
  StateId q = a.AddState(1);
  StateId pl = a.AddState(1);
  StateId pr = a.AddState(1);
  StateId tl = a.AddState(1);
  StateId tr = a.AddState(1);
  a.SetStart(q);
  a.AddBranch({}, q, pl, pr);
  a.AddMove({}, pl, M::kDownLeft, tl);
  a.AddMove({}, pr, M::kDownRight, tr);
  a.AddAccept({.symbol = sigma.Find("a0")}, tl);
  a.AddAccept({.symbol = sigma.Find("a0")}, tr);
  ASSERT_TRUE(a.Validate(sigma).ok());
  EXPECT_TRUE(*PebbleAutomatonAccepts(
      a, std::move(ParseBinaryTerm("a2(a0,a0)", sigma)).ValueOrDie()));
  EXPECT_FALSE(*PebbleAutomatonAccepts(
      a, std::move(ParseBinaryTerm("a2(a0,b0)", sigma)).ValueOrDie()));
  EXPECT_FALSE(*PebbleAutomatonAccepts(
      a, std::move(ParseBinaryTerm("a2(b0,a0)", sigma)).ValueOrDie()));
  EXPECT_FALSE(*PebbleAutomatonAccepts(
      a, std::move(ParseBinaryTerm("a0", sigma)).ValueOrDie()));
}

// A 1-pebble tree-walk automaton accepting trees whose left spine ends in a
// `target` leaf.
PebbleAutomaton LeftSpineAutomaton(const RankedAlphabet& sigma,
                                   SymbolId target) {
  PebbleAutomaton a(1, static_cast<uint32_t>(sigma.size()));
  StateId walk = a.AddState(1);
  a.SetStart(walk);
  for (SymbolId s : sigma.BinarySymbols()) {
    a.AddMove({.symbol = s}, walk, M::kDownLeft, walk);
  }
  a.AddAccept({.symbol = target}, walk);
  return a;
}

TEST(PebbleAutomatonTest, WalkDownLeftSpine) {
  RankedAlphabet sigma = TinyRanked();
  PebbleAutomaton a = LeftSpineAutomaton(sigma, sigma.Find("b0"));
  EXPECT_TRUE(*PebbleAutomatonAccepts(
      a, std::move(ParseBinaryTerm("a2(b2(b0,a0),a0)", sigma)).ValueOrDie()));
  EXPECT_FALSE(*PebbleAutomatonAccepts(
      a, std::move(ParseBinaryTerm("a2(b2(a0,b0),b0)", sigma)).ValueOrDie()));
}

// --- Theorem 4.7: MSO translation agrees with direct simulation ---

TEST(Theorem47Test, LeftSpineAutomatonCompiles) {
  RankedAlphabet sigma = TinyRanked();
  PebbleAutomaton a = LeftSpineAutomaton(sigma, sigma.Find("b0"));
  auto nbta = std::move(PebbleAutomatonToNbta(a, sigma)).ValueOrDie();
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(8));
    EXPECT_EQ(nbta.Accepts(t), *PebbleAutomatonAccepts(a, t))
        << BinaryTermString(t, sigma);
  }
}

TEST(Theorem47Test, TwoPebblePlaceAndPick) {
  RankedAlphabet sigma = MicroRanked();
  // Pebble 1 walks to the leftmost leaf; pebble 2 is then placed and walks
  // to the *rightmost* leaf; accept (after picking pebble 2 up again) iff
  // the two pebbles meet — i.e. iff the tree is a single leaf... no: iff the
  // leftmost and rightmost leaves coincide, which for binary trees means a
  // single-node tree. The machine exercises place, presence guards, and pick.
  PebbleAutomaton a(2, 2);
  SymbolId leaf = sigma.Find("l");
  SymbolId node = sigma.Find("n");
  StateId w1 = a.AddState(1);   // walk pebble 1 left
  StateId w2 = a.AddState(2);   // walk pebble 2 right
  StateId met = a.AddState(2);  // pebble 2 on pebble 1's node
  StateId done = a.AddState(1);
  a.SetStart(w1);
  a.AddMove({.symbol = node}, w1, M::kDownLeft, w1);
  a.AddMove({.symbol = leaf}, w1, M::kPlacePebble, w2);
  a.AddMove({.symbol = node}, w2, M::kDownRight, w2);
  a.AddMove({.symbol = leaf, .presence_mask = 1, .presence_value = 1}, w2,
            M::kStay, met);
  a.AddMove({}, met, M::kPickPebble, done);
  a.AddAccept({}, done);
  ASSERT_TRUE(a.Validate(sigma).ok());

  auto single = std::move(ParseBinaryTerm("l", sigma)).ValueOrDie();
  auto three = std::move(ParseBinaryTerm("n(l,l)", sigma)).ValueOrDie();
  EXPECT_TRUE(*PebbleAutomatonAccepts(a, single));
  EXPECT_FALSE(*PebbleAutomatonAccepts(a, three));

  auto nbta = std::move(PebbleAutomatonToNbta(a, sigma)).ValueOrDie();
  EXPECT_TRUE(nbta.Accepts(single));
  EXPECT_FALSE(nbta.Accepts(three));
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(5));
    EXPECT_EQ(nbta.Accepts(t), *PebbleAutomatonAccepts(a, t))
        << BinaryTermString(t, sigma);
  }
}

// Random 1-pebble automata: the paper's Theorem 4.7 property test.
PebbleAutomaton RandomPebbleAutomaton(Rng& rng, const RankedAlphabet& sigma,
                                      uint32_t num_states,
                                      uint32_t num_transitions) {
  PebbleAutomaton a(1, static_cast<uint32_t>(sigma.size()));
  for (uint32_t q = 0; q < num_states; ++q) a.AddState(1);
  a.SetStart(0);
  for (uint32_t i = 0; i < num_transitions; ++i) {
    PebbleGuard g;
    if (rng.NextBool(0.7)) {
      g.symbol = static_cast<SymbolId>(rng.NextBelow(sigma.size()));
    }
    StateId from = static_cast<StateId>(rng.NextBelow(num_states));
    switch (rng.NextBelow(7)) {
      case 0:
        a.AddAccept(g, from);
        break;
      case 1:
        a.AddBranch(g, from, static_cast<StateId>(rng.NextBelow(num_states)),
                    static_cast<StateId>(rng.NextBelow(num_states)));
        break;
      case 2:
        a.AddMove(g, from, M::kStay,
                  static_cast<StateId>(rng.NextBelow(num_states)));
        break;
      case 3:
        a.AddMove(g, from, M::kDownLeft,
                  static_cast<StateId>(rng.NextBelow(num_states)));
        break;
      case 4:
        a.AddMove(g, from, M::kDownRight,
                  static_cast<StateId>(rng.NextBelow(num_states)));
        break;
      case 5:
        a.AddMove(g, from, M::kUpLeft,
                  static_cast<StateId>(rng.NextBelow(num_states)));
        break;
      default:
        a.AddMove(g, from, M::kUpRight,
                  static_cast<StateId>(rng.NextBelow(num_states)));
        break;
    }
  }
  return a;
}

class Theorem47Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem47Property, CompiledAutomatonAgreesWithSimulation) {
  Rng rng(GetParam());
  RankedAlphabet sigma = MicroRanked();
  PebbleAutomaton a = RandomPebbleAutomaton(rng, sigma, 2, 4);
  ASSERT_TRUE(a.Validate(sigma).ok());
  auto nbta_or = PebbleAutomatonToNbta(a, sigma);
  ASSERT_TRUE(nbta_or.ok()) << nbta_or.status().ToString();
  for (int i = 0; i < 25; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(6));
    auto direct = PebbleAutomatonAccepts(a, t);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(nbta_or->Accepts(t), *direct) << BinaryTermString(t, sigma);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem47Property,
                         ::testing::Range<uint64_t>(0, 30));

// --- Proposition 4.6: the product construction ---

TEST(Proposition46Test, CopyTransducerProductIsIntersectionCheck) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  // B: accepts trees whose leaves are all a0.
  Nbta leaves_a0;
  leaves_a0.num_symbols = 4;
  {
    StateId q = leaves_a0.AddState();
    leaves_a0.accepting[q] = true;
    leaves_a0.AddLeafRule(sigma.Find("a0"), q);
    leaves_a0.AddRule(sigma.Find("a2"), q, q, q);
    leaves_a0.AddRule(sigma.Find("b2"), q, q, q);
  }
  TopDownTA b = NbtaToTopDown(leaves_a0);
  auto product = std::move(TransducerTimesTopDown(copy, b)).ValueOrDie();
  ASSERT_TRUE(product.Validate(sigma).ok());
  // T = identity, so inst(product) = inst(B).
  Rng rng(21);
  for (int i = 0; i < 40; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(10));
    auto got = PebbleAutomatonAccepts(product, t);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, leaves_a0.Accepts(t)) << BinaryTermString(t, sigma);
  }
}

TEST(Proposition46Test, NondeterministicOutputsIntersect) {
  RankedAlphabet sigma = TinyRanked();
  // T outputs either leaf a0 or leaf b0, regardless of input.
  PebbleTransducer t(1, 4, 4);
  StateId q = t.AddState(1);
  t.SetStart(q);
  t.AddOutputLeaf({}, q, sigma.Find("a0"));
  t.AddOutputLeaf({}, q, sigma.Find("b0"));

  // B1 accepts exactly the single-leaf tree b0: T(t) ∩ inst(B1) ≠ ∅ always.
  Nbta only_b0;
  only_b0.num_symbols = 4;
  StateId s1 = only_b0.AddState();
  only_b0.accepting[s1] = true;
  only_b0.AddLeafRule(sigma.Find("b0"), s1);
  auto p1 = std::move(TransducerTimesTopDown(t, NbtaToTopDown(only_b0)))
                .ValueOrDie();

  // B2 accepts only trees rooted at a2: T(t) ∩ inst(B2) = ∅ always.
  Nbta a2_rooted;
  a2_rooted.num_symbols = 4;
  {
    StateId any = a2_rooted.AddState();
    StateId top = a2_rooted.AddState();
    a2_rooted.accepting[top] = true;
    for (SymbolId s : sigma.LeafSymbols()) a2_rooted.AddLeafRule(s, any);
    for (SymbolId s : sigma.BinarySymbols()) {
      a2_rooted.AddRule(s, any, any, any);
    }
    a2_rooted.AddRule(sigma.Find("a2"), any, any, top);
  }
  auto p2 = std::move(TransducerTimesTopDown(t, NbtaToTopDown(a2_rooted)))
                .ValueOrDie();

  Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    BinaryTree input = RandomBinaryTree(sigma, rng, rng.NextBelow(6));
    EXPECT_TRUE(*PebbleAutomatonAccepts(p1, input));
    EXPECT_FALSE(*PebbleAutomatonAccepts(p2, input));
  }
}

TEST(Proposition46Test, ProductAlphabetMismatchRejected) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  TopDownTA b;
  b.num_symbols = 2;  // wrong alphabet
  b.AddState();
  EXPECT_FALSE(TransducerTimesTopDown(copy, b).ok());
}

}  // namespace
}  // namespace pebbletc
