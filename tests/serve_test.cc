// Tests for the serving layer (src/serve/, docs/SERVING.md): wire protocol
// round trips, the fuzz-style malformed-frame table, validity tiers,
// registry resolution, end-to-end typecheck/validate/infer dispatch, and
// admission control / overload shedding. Label `serve`; CI runs the suite
// under ASan/UBSan so every malformed-byte path is proven leak- and UB-free.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/alphabet/alphabet.h"
#include "src/common/status.h"
#include "src/dtd/dtd.h"
#include "src/pt/paper_machines.h"
#include "src/serve/admission.h"
#include "src/serve/protocol.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"
#include "src/serve/validity.h"
#include "src/ta/serialize.h"

namespace pebbletc::serve {
namespace {

// The worked example from the repo docs: rename <a>→<b>, <c>→<d>. Against
// `good_out` it typechecks (downward fast path); against `bad_out` the only
// document <a><c/></a> maps to <b><d/></b>, which is not in the type.
constexpr char kRenameXslt[] = R"(
  template a { b { apply } }
  template c { d }
)";
constexpr char kInDtd[] = "a := c\nc := ()\n";
constexpr char kGoodOutDtd[] = "b := d\nd := ()\n";
constexpr char kBadOutDtd[] = "b := e\ne := ()\n";

ServeOptions TestOptions() {
  ServeOptions options;
  options.validity.level = ValidityLevel::kFull;
  options.admission_wait = std::chrono::milliseconds(20);
  return options;
}

void LoadExampleRegistry(ServerCore* server) {
  ASSERT_TRUE(server->registry().PutXsltText("rename", kRenameXslt).ok());
  ASSERT_TRUE(server->registry().PutDtdText("in", kInDtd).ok());
  ASSERT_TRUE(server->registry().PutDtdText("good_out", kGoodOutDtd).ok());
  ASSERT_TRUE(server->registry().PutDtdText("bad_out", kBadOutDtd).ok());
  // A pre-compiled identity (copy) transducer over a one-tag DTD's encoded
  // alphabet — small enough for exact inverse inference.
  ASSERT_TRUE(server->registry().PutDtdText("micro", "m := ()\n").ok());
  SpecializedDtd dtd =
      std::move(ParseSpecializedDtd("m := ()\n")).ValueOrDie();
  EncodedAlphabet enc =
      std::move(MakeEncodedAlphabet(dtd.tags())).ValueOrDie();
  auto artifact = std::make_shared<TransducerArtifact>();
  artifact->transducer = MakeCopyTransducer(enc.ranked);
  artifact->input_alphabet = enc.ranked;
  artifact->output_alphabet = enc.ranked;
  RegistryEntry entry;
  entry.kind = RegistryEntry::Kind::kTransducer;
  entry.transducer = std::move(artifact);
  server->registry().Put("copy", std::move(entry));
}

Request MakeTypecheck(uint32_t id, const std::string& transducer,
                      const std::string& tau1, const std::string& tau2) {
  Request request;
  request.header.opcode = Opcode::kTypecheck;
  request.header.request_id = id;
  request.body = TypecheckRequest{transducer, tau1, tau2};
  return request;
}

Request MakeValidate(uint32_t id, const std::string& schema,
                     const std::string& document) {
  Request request;
  request.header.opcode = Opcode::kValidate;
  request.header.request_id = id;
  request.body = ValidateRequest{schema, document};
  return request;
}

Request MakeBatch(uint32_t id, const std::string& schema,
                  std::vector<std::string> documents) {
  Request request;
  request.header.opcode = Opcode::kValidateBatch;
  request.header.request_id = id;
  request.body = ValidateBatchRequest{schema, std::move(documents)};
  return request;
}

// ---------------------------------------------------------------------------
// Protocol round trips.
// ---------------------------------------------------------------------------

TEST(ServeProtocolTest, RequestRoundTripsEveryOpcode) {
  Request requests[8];
  requests[0].body = PingRequest{};
  requests[0].header.opcode = Opcode::kPing;
  requests[1].body = ValidateRequest{"schema", "<a/>"};
  requests[1].header.opcode = Opcode::kValidate;
  requests[2].body = TypecheckRequest{"t", "in", "out"};
  requests[2].header.opcode = Opcode::kTypecheck;
  requests[3].body = InferInverseRequest{"t", "out"};
  requests[3].header.opcode = Opcode::kInferInverse;
  requests[4].body = LoadArtifactRequest{"name", std::string("\x00\x01", 2)};
  requests[4].header.opcode = Opcode::kLoadArtifact;
  requests[5].body = ListArtifactsRequest{};
  requests[5].header.opcode = Opcode::kListArtifacts;
  requests[6].body = StatsRequest{};
  requests[6].header.opcode = Opcode::kStats;
  requests[7].body = ValidateBatchRequest{"schema", {"<a/>", "", "<b/>"}};
  requests[7].header.opcode = Opcode::kValidateBatch;

  uint32_t id = 100;
  for (Request& request : requests) {
    request.header.request_id = id;
    request.header.deadline_ms = id * 3;
    std::string bytes;
    EncodeRequest(request, &bytes);
    Result<Request> back = DecodeRequest(bytes);
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(back->header.request_id, id);
    EXPECT_EQ(back->header.deadline_ms, id * 3);
    EXPECT_EQ(back->header.opcode, request.header.opcode);
    EXPECT_EQ(back->body.index(), request.body.index());
    std::string again;
    EncodeRequest(*back, &again);
    EXPECT_EQ(again, bytes);
    ++id;
  }
}

TEST(ServeProtocolTest, ResponseRoundTripsTypecheckBody) {
  Response response;
  response.header.opcode = Opcode::kTypecheck;
  response.header.request_id = 7;
  TypecheckResponse body;
  body.verdict = 1;
  body.method = "downward-fastpath";
  body.exhausted = true;
  body.exhaustion_code = static_cast<uint8_t>(StatusCode::kDeadlineExceeded);
  body.exhaustion_pass = "complete-decision";
  body.exhaustion_detail = "deadline";
  body.checkpoints = 12345;
  body.states_materialized = 678;
  body.counterexample_input_xml = "<a><c/></a>";
  body.counterexample_output_xml = "<b><d/></b>";
  response.body = body;

  std::string bytes;
  EncodeResponse(response, &bytes);
  Result<Response> back = DecodeResponse(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  const auto& b = std::get<TypecheckResponse>(back->body);
  EXPECT_EQ(b.verdict, 1);
  EXPECT_EQ(b.method, "downward-fastpath");
  EXPECT_TRUE(b.exhausted);
  EXPECT_EQ(b.checkpoints, 12345u);
  EXPECT_EQ(b.counterexample_input_xml, "<a><c/></a>");
}

TEST(ServeProtocolTest, ErrorResponseCarriesNoBody) {
  Response err = MakeErrorResponse(Opcode::kTypecheck, 9,
                                   WireStatus::kOverloaded, "busy");
  std::string bytes;
  EncodeResponse(err, &bytes);
  Result<Response> back = DecodeResponse(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->header.status, WireStatus::kOverloaded);
  EXPECT_EQ(back->header.detail, "busy");
  EXPECT_EQ(back->header.request_id, 9u);
}

// A hostile or buggy server could declare millions of artifact-list entries
// in a tiny payload; the client must reject the count before reserving
// (~40 bytes per claimed entry) rather than after a huge allocation.
TEST(ServeProtocolTest, ListArtifactsCountBeyondPayloadIsRejected) {
  std::string bytes;
  auto put_u8 = [&bytes](uint8_t v) {
    bytes.push_back(static_cast<char>(v));
  };
  auto put_u32 = [&bytes](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put_u8(kWireVersion);
  put_u8(static_cast<uint8_t>(Opcode::kListArtifacts));
  put_u32(/*request_id=*/1);
  put_u8(static_cast<uint8_t>(WireStatus::kOk));
  put_u32(/*detail length=*/0);
  put_u32(/*count=*/4u << 20);  // ~4M entries declared, zero entries present
  Result<Response> r = DecodeResponse(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ServeProtocolTest, BatchResponseRoundTripsMixedVerdicts) {
  Response response;
  response.header.opcode = Opcode::kValidateBatch;
  response.header.request_id = 12;
  ValidateBatchResponse body;
  body.verdicts.push_back(
      {static_cast<uint8_t>(WireStatus::kOk), true, ""});
  body.verdicts.push_back(
      {static_cast<uint8_t>(WireStatus::kOk), false, "rejected"});
  body.verdicts.push_back({static_cast<uint8_t>(WireStatus::kInvalidArgument),
                           false, "document: parse error"});
  body.verdicts.push_back(
      {static_cast<uint8_t>(WireStatus::kCancelled), false, "cancelled"});
  body.fast_path_docs = 2;
  body.fallback_docs = 1;
  response.body = std::move(body);

  std::string bytes;
  EncodeResponse(response, &bytes);
  Result<Response> back = DecodeResponse(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  const auto& got = std::get<ValidateBatchResponse>(back->body);
  ASSERT_EQ(got.verdicts.size(), 4u);
  EXPECT_EQ(got.verdicts[0].status, static_cast<uint8_t>(WireStatus::kOk));
  EXPECT_TRUE(got.verdicts[0].valid);
  EXPECT_FALSE(got.verdicts[1].valid);
  EXPECT_EQ(got.verdicts[1].diagnostic, "rejected");
  EXPECT_EQ(got.verdicts[3].status,
            static_cast<uint8_t>(WireStatus::kCancelled));
  EXPECT_EQ(got.fast_path_docs, 2u);
  EXPECT_EQ(got.fallback_docs, 1u);
}

// Same hostile-count shape as the artifact list, on both batch directions:
// a declared count far beyond the remaining payload must be rejected before
// any reserve.
TEST(ServeProtocolTest, BatchCountsBeyondPayloadAreRejected) {
  auto put_u8 = [](std::string* bytes, uint8_t v) {
    bytes->push_back(static_cast<char>(v));
  };
  auto put_u32 = [](std::string* bytes, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };

  std::string request;
  put_u8(&request, kWireVersion);
  put_u8(&request, static_cast<uint8_t>(Opcode::kValidateBatch));
  put_u32(&request, /*request_id=*/1);
  put_u32(&request, /*deadline_ms=*/0);
  put_u32(&request, /*schema length=*/1);
  request += "s";
  put_u32(&request, /*document count=*/8u << 20);  // millions declared
  Result<Request> r = DecodeRequest(request);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);

  std::string response;
  put_u8(&response, kWireVersion);
  put_u8(&response, static_cast<uint8_t>(Opcode::kValidateBatch));
  put_u32(&response, /*request_id=*/1);
  put_u8(&response, static_cast<uint8_t>(WireStatus::kOk));
  put_u32(&response, /*detail length=*/0);
  put_u32(&response, /*verdict count=*/8u << 20);
  Result<Response> b = DecodeResponse(response);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Frame decoding.
// ---------------------------------------------------------------------------

TEST(ServeFrameTest, IncrementalDecodingAcrossArbitrarySplits) {
  std::string stream;
  EncodeFrame("first", &stream);
  EncodeFrame("", &stream);
  EncodeFrame("third-payload", &stream);

  for (size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    FrameDecoder decoder;
    std::vector<std::string> frames;
    for (size_t off = 0; off < stream.size(); off += chunk) {
      decoder.Append(std::string_view(stream).substr(
          off, std::min(chunk, stream.size() - off)));
      while (true) {
        Result<std::optional<std::string>> next = decoder.Next();
        ASSERT_TRUE(next.ok());
        if (!next->has_value()) break;
        frames.push_back(std::move(**next));
      }
    }
    ASSERT_EQ(frames.size(), 3u) << "chunk size " << chunk;
    EXPECT_EQ(frames[0], "first");
    EXPECT_EQ(frames[1], "");
    EXPECT_EQ(frames[2], "third-payload");
    EXPECT_EQ(decoder.pending_bytes(), 0u);
  }
}

TEST(ServeFrameTest, TruncatedPrefixAndMidFrameEofLeavePendingBytes) {
  FrameDecoder decoder;
  decoder.Append("\x02");  // one byte of a four-byte length prefix
  Result<std::optional<std::string>> r = decoder.Next();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
  EXPECT_EQ(decoder.pending_bytes(), 1u);  // EOF now = torn frame, detectable

  FrameDecoder decoder2;
  std::string frame;
  EncodeFrame("payload", &frame);
  decoder2.Append(std::string_view(frame).substr(0, frame.size() - 3));
  r = decoder2.Next();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
  EXPECT_GT(decoder2.pending_bytes(), 0u);
}

TEST(ServeFrameTest, OversizedDeclaredLengthPoisonsTheStream) {
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  std::string huge;
  EncodeFrame(std::string(10, 'x'), &huge);     // fine
  huge[0] = '\xff'; huge[1] = '\xff';           // now declares ~4 GiB
  huge[2] = '\xff'; huge[3] = '\xff';
  decoder.Append(huge);
  Result<std::optional<std::string>> r = decoder.Next();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  // Poisoned: even a now-valid frame cannot be trusted.
  std::string fine;
  EncodeFrame("ok", &fine);
  decoder.Append(fine);
  EXPECT_FALSE(decoder.Next().ok());
}

// ---------------------------------------------------------------------------
// The malformed-frame table: every hostile payload yields a structured
// error response and the server stays alive. No malformed byte reaches an
// automata op (they would CHECK-crash under ASan if one did).
// ---------------------------------------------------------------------------

TEST(ServeMalformedTest, EveryMalformedPayloadGetsAStructuredError) {
  ServerCore server(TestOptions());
  LoadExampleRegistry(&server);

  std::string valid_typecheck;
  EncodeRequest(MakeTypecheck(1, "rename", "in", "good_out"),
                &valid_typecheck);

  struct Case {
    const char* name;
    std::string payload;
    WireStatus want;
  };
  std::vector<Case> table;
  table.push_back({"empty payload", "", WireStatus::kMalformedFrame});
  table.push_back({"header torn after one byte", std::string(1, '\x01'),
                   WireStatus::kMalformedFrame});
  table.push_back({"header torn mid request-id",
                   std::string("\x01\x02\x01\x02", 4),
                   WireStatus::kMalformedFrame});
  table.push_back({"future wire version",
                   [] {
                     Request r;
                     r.header.version = 9;
                     r.body = PingRequest{};
                     std::string bytes;
                     EncodeRequest(r, &bytes);
                     return bytes;
                   }(),
                   WireStatus::kUnsupportedVersion});
  table.push_back({"unknown opcode",
                   [] {
                     std::string bytes = "\x01\x63";  // version 1, opcode 99
                     bytes.append(8, '\0');
                     return bytes;
                   }(),
                   WireStatus::kUnknownOpcode});
  table.push_back({"typecheck body truncated mid string",
                   valid_typecheck.substr(0, valid_typecheck.size() - 3),
                   WireStatus::kMalformedFrame});
  table.push_back({"trailing bytes after a valid body",
                   valid_typecheck + "xx", WireStatus::kMalformedFrame});
  table.push_back({"string length larger than the frame",
                   [] {
                     std::string bytes = "\x01\x01";  // validate
                     bytes.append(8, '\0');           // id, deadline
                     bytes += std::string("\xff\xff\xff\x7f", 4);  // schema len
                     bytes += "abc";
                     return bytes;
                   }(),
                   WireStatus::kMalformedFrame});
  table.push_back({"random garbage",
                   std::string("\x01\x02garbage-not-a-frame\x00\x17", 22),
                   WireStatus::kMalformedFrame});

  uint64_t malformed_seen = 0;
  for (const Case& c : table) {
    std::string encoded = server.HandleFrame(c.payload);
    Result<Response> response = DecodeResponse(encoded);
    ASSERT_TRUE(response.ok())
        << c.name << ": response failed to decode: "
        << response.status().message();
    EXPECT_EQ(response->header.status, c.want) << c.name;
    EXPECT_FALSE(response->header.detail.empty()) << c.name;
    ++malformed_seen;
    EXPECT_EQ(server.SnapshotStats().malformed_rejected, malformed_seen)
        << c.name;
  }

  // The server is still fully functional afterwards.
  std::string ok = server.HandleFrame(valid_typecheck);
  Result<Response> response = DecodeResponse(ok);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->header.status, WireStatus::kOk);
  EXPECT_EQ(std::get<TypecheckResponse>(response->body).verdict, 0);
}

// ---------------------------------------------------------------------------
// Validity tiers.
// ---------------------------------------------------------------------------

TEST(ServeValidityTest, TiersAreCumulative) {
  Request bad_name = MakeTypecheck(1, "../../etc/passwd", "in", "out");
  Request huge_deadline = MakeTypecheck(2, "rename", "in", "out");
  huge_deadline.header.deadline_ms = 1u << 30;
  Request bad_xml = MakeValidate(3, "in", "<a><unclosed></a>");

  ValidityOptions off;
  off.level = ValidityLevel::kOff;
  EXPECT_TRUE(CheckRequest(bad_name, off).ok());
  EXPECT_TRUE(CheckRequest(huge_deadline, off).ok());
  EXPECT_TRUE(CheckRequest(bad_xml, off).ok());

  ValidityOptions basic;
  basic.level = ValidityLevel::kBasic;
  EXPECT_FALSE(CheckRequest(bad_name, basic).ok());
  EXPECT_FALSE(CheckRequest(huge_deadline, basic).ok());
  EXPECT_TRUE(CheckRequest(bad_xml, basic).ok()) << "XML shape is kFull's job";

  ValidityOptions full;
  full.level = ValidityLevel::kFull;
  EXPECT_FALSE(CheckRequest(bad_xml, full).ok());
}

TEST(ServeValidityTest, BasicCapsDocumentAndArtifactSizes) {
  ValidityOptions basic;
  basic.level = ValidityLevel::kBasic;
  basic.max_document_bytes = 64;
  Request big_doc = MakeValidate(1, "in", std::string(65, 'x'));
  EXPECT_FALSE(CheckRequest(big_doc, basic).ok());

  basic.max_artifact_bytes = 16;
  Request big_artifact;
  big_artifact.header.opcode = Opcode::kLoadArtifact;
  big_artifact.body = LoadArtifactRequest{"name", std::string(17, 'x')};
  EXPECT_FALSE(CheckRequest(big_artifact, basic).ok());
}

TEST(ServeValidityTest, FullRejectsCorruptArtifactsBeforeDispatch) {
  SpecializedDtd dtd = std::move(ParseSpecializedDtd(kInDtd)).ValueOrDie();
  std::string payload;
  SerializeDtdArtifact(dtd, &payload);
  std::string wrapped;
  WrapTaArtifact(TaArtifactKind::kDtd, payload, &wrapped);

  Request load;
  load.header.opcode = Opcode::kLoadArtifact;
  load.body = LoadArtifactRequest{"loaded", wrapped};
  ValidityOptions full;
  EXPECT_TRUE(CheckRequest(load, full).ok());

  std::string corrupt = wrapped;
  corrupt[wrapped.size() - 1] ^= 0x10;
  load.body = LoadArtifactRequest{"loaded", corrupt};
  Status s = CheckRequest(load, full);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// End-to-end dispatch.
// ---------------------------------------------------------------------------

class ServeDispatchTest : public ::testing::Test {
 protected:
  ServeDispatchTest() : server_(TestOptions()) {
    LoadExampleRegistry(&server_);
  }
  ServerCore server_;
};

TEST_F(ServeDispatchTest, TypecheckGoodAndBadPairs) {
  Response good = server_.Handle(MakeTypecheck(1, "rename", "in", "good_out"));
  ASSERT_EQ(good.header.status, WireStatus::kOk) << good.header.detail;
  EXPECT_EQ(std::get<TypecheckResponse>(good.body).verdict, 0);

  Response bad = server_.Handle(MakeTypecheck(2, "rename", "in", "bad_out"));
  ASSERT_EQ(bad.header.status, WireStatus::kOk) << bad.header.detail;
  const auto& body = std::get<TypecheckResponse>(bad.body);
  EXPECT_EQ(body.verdict, 1);
  EXPECT_EQ(body.counterexample_input_xml, "<a><c/></a>");
  EXPECT_EQ(body.counterexample_output_xml, "<b><d/></b>");
}

TEST(ServeDispatchInclusionTest, InclusionKnobRoutesToAntichainEngine) {
  // The --inclusion knob must forward into per-request TypecheckOptions and
  // reach the same verdicts as the explicit engine; the counterexample input
  // is identical (the ladder order is unchanged), the violating output is
  // genuine but the wire promises only its presence (docs/INCLUSION.md).
  for (TaInclusionPath path :
       {TaInclusionPath::kAntichain, TaInclusionPath::kAuto}) {
    ServeOptions options = TestOptions();
    options.inclusion = path;
    ServerCore server(options);
    LoadExampleRegistry(&server);
    Response good = server.Handle(MakeTypecheck(1, "rename", "in", "good_out"));
    ASSERT_EQ(good.header.status, WireStatus::kOk) << good.header.detail;
    EXPECT_EQ(std::get<TypecheckResponse>(good.body).verdict, 0);

    Response bad = server.Handle(MakeTypecheck(2, "rename", "in", "bad_out"));
    ASSERT_EQ(bad.header.status, WireStatus::kOk) << bad.header.detail;
    const auto& body = std::get<TypecheckResponse>(bad.body);
    EXPECT_EQ(body.verdict, 1);
    EXPECT_EQ(body.counterexample_input_xml, "<a><c/></a>");
    EXPECT_FALSE(body.counterexample_output_xml.empty());
  }
}

TEST_F(ServeDispatchTest, ValidateAgainstDtd) {
  Response valid = server_.Handle(MakeValidate(1, "in", "<a><c/></a>"));
  ASSERT_EQ(valid.header.status, WireStatus::kOk);
  EXPECT_TRUE(std::get<ValidateResponse>(valid.body).valid);

  Response invalid = server_.Handle(MakeValidate(2, "in", "<a/>"));
  ASSERT_EQ(invalid.header.status, WireStatus::kOk);
  const auto& body = std::get<ValidateResponse>(invalid.body);
  EXPECT_FALSE(body.valid);
  EXPECT_FALSE(body.diagnostic.empty());

  // A tag the DTD has never declared must read as invalid — and must not
  // mutate the shared registry entry's alphabet.
  Response unknown = server_.Handle(MakeValidate(3, "in", "<a><z/></a>"));
  ASSERT_EQ(unknown.header.status, WireStatus::kOk);
  EXPECT_FALSE(std::get<ValidateResponse>(unknown.body).valid);
  const size_t dtd_tags = server_.registry().Get("in")->dtd->tags().size();
  EXPECT_EQ(dtd_tags, 2u);
}

TEST_F(ServeDispatchTest, UnknownNamesAndWrongKinds) {
  Response missing = server_.Handle(MakeTypecheck(1, "nope", "in", "good_out"));
  EXPECT_EQ(missing.header.status, WireStatus::kNotFound);

  Response wrong_kind = server_.Handle(MakeTypecheck(2, "in", "in",
                                                     "good_out"));
  EXPECT_EQ(wrong_kind.header.status, WireStatus::kFailedPrecondition);

  Response schema_is_xslt = server_.Handle(MakeValidate(3, "rename", "<a/>"));
  EXPECT_EQ(schema_is_xslt.header.status, WireStatus::kFailedPrecondition);
}

TEST_F(ServeDispatchTest, InferInverseReturnsAnAutomatonSummary) {
  Request request;
  request.header.opcode = Opcode::kInferInverse;
  request.header.request_id = 4;
  request.body = InferInverseRequest{"copy", "micro"};
  request.header.deadline_ms = 30000;  // inference is seconds-scale
  Response response = server_.Handle(request);
  ASSERT_EQ(response.header.status, WireStatus::kOk) << response.header.detail;
  EXPECT_GT(std::get<InferInverseResponse>(response.body).num_states, 0u);
}

TEST_F(ServeDispatchTest, LoadArtifactInstallsAndServes) {
  SpecializedDtd dtd = std::move(ParseSpecializedDtd(kInDtd)).ValueOrDie();
  std::string payload;
  SerializeDtdArtifact(dtd, &payload);
  std::string wrapped;
  WrapTaArtifact(TaArtifactKind::kDtd, payload, &wrapped);

  Request load;
  load.header.opcode = Opcode::kLoadArtifact;
  load.header.request_id = 1;
  load.body = LoadArtifactRequest{"loaded-in", wrapped};
  Response response = server_.Handle(load);
  ASSERT_EQ(response.header.status, WireStatus::kOk) << response.header.detail;

  Response valid = server_.Handle(MakeValidate(2, "loaded-in", "<a><c/></a>"));
  ASSERT_EQ(valid.header.status, WireStatus::kOk);
  EXPECT_TRUE(std::get<ValidateResponse>(valid.body).valid);

  Response typecheck =
      server_.Handle(MakeTypecheck(3, "rename", "loaded-in", "good_out"));
  ASSERT_EQ(typecheck.header.status, WireStatus::kOk);
  EXPECT_EQ(std::get<TypecheckResponse>(typecheck.body).verdict, 0);
}

TEST_F(ServeDispatchTest, LoadCanBeDisabled) {
  ServeOptions options = TestOptions();
  options.allow_load = false;
  ServerCore locked(options);
  Request load;
  load.header.opcode = Opcode::kLoadArtifact;
  load.body = LoadArtifactRequest{"x", "irrelevant"};
  // kFull validity would reject the garbage payload first; use kOff to reach
  // the dispatch-level gate.
  locked.registry();  // silence unused warnings on some configs
  ServeOptions off = options;
  off.validity.level = ValidityLevel::kOff;
  ServerCore locked_off(off);
  Response response = locked_off.Handle(load);
  EXPECT_EQ(response.header.status, WireStatus::kFailedPrecondition);
}

TEST_F(ServeDispatchTest, ListAndStatsAndPing) {
  Request list;
  list.header.opcode = Opcode::kListArtifacts;
  Response response = server_.Handle(list);
  ASSERT_EQ(response.header.status, WireStatus::kOk);
  const auto& body = std::get<ListArtifactsResponse>(response.body);
  ASSERT_EQ(body.artifacts.size(), 6u);
  EXPECT_EQ(body.artifacts[0].name, "bad_out");  // sorted by name
  EXPECT_EQ(body.artifacts[1].name, "copy");
  EXPECT_EQ(body.artifacts[5].name, "rename");

  Request ping;
  ping.header.opcode = Opcode::kPing;
  EXPECT_EQ(server_.Handle(ping).header.status, WireStatus::kOk);

  Request stats;
  stats.header.opcode = Opcode::kStats;
  Response stats_response = server_.Handle(stats);
  ASSERT_EQ(stats_response.header.status, WireStatus::kOk);
  EXPECT_GE(std::get<StatsResponse>(stats_response.body).requests_total, 3u);
}

TEST_F(ServeDispatchTest, CancellationDegradesGracefully) {
  std::atomic<bool> cancel{true};  // cancelled before the first checkpoint
  Response response =
      server_.Handle(MakeTypecheck(1, "rename", "in", "good_out"), &cancel);
  ASSERT_EQ(response.header.status, WireStatus::kOk) << response.header.detail;
  const auto& body = std::get<TypecheckResponse>(response.body);
  EXPECT_EQ(body.verdict, 2);  // kUnknown — degraded, not dropped
  EXPECT_TRUE(body.exhausted);
  EXPECT_EQ(body.exhaustion_code,
            static_cast<uint8_t>(StatusCode::kCancelled));
}

// ---------------------------------------------------------------------------
// Batch dispatch (docs/VALIDATION.md).
// ---------------------------------------------------------------------------

TEST_F(ServeDispatchTest, ValidateBatchAgainstDtd) {
  Response response = server_.Handle(
      MakeBatch(1, "in", {"<a><c/></a>", "<a/>", "<a><z/></a>"}));
  ASSERT_EQ(response.header.status, WireStatus::kOk) << response.header.detail;
  const auto& body = std::get<ValidateBatchResponse>(response.body);
  ASSERT_EQ(body.verdicts.size(), 3u);
  EXPECT_EQ(body.verdicts[0].status, static_cast<uint8_t>(WireStatus::kOk));
  EXPECT_TRUE(body.verdicts[0].valid);
  EXPECT_EQ(body.verdicts[1].status, static_cast<uint8_t>(WireStatus::kOk));
  EXPECT_FALSE(body.verdicts[1].valid);
  EXPECT_FALSE(body.verdicts[1].diagnostic.empty())
      << "rejections carry a diagnostic";
  EXPECT_FALSE(body.verdicts[2].valid);
  EXPECT_NE(body.verdicts[2].diagnostic.find("'z'"), std::string::npos)
      << "unknown-tag diagnostic names the tag: "
      << body.verdicts[2].diagnostic;
  // The unknown-tag document never reaches a table verdict; the other two
  // were answered by the engine.
  EXPECT_EQ(body.fast_path_docs + body.fallback_docs, 2u);
}

TEST_F(ServeDispatchTest, BatchVerdictsMatchSingleValidateVerdicts) {
  const std::vector<std::string> docs = {"<a><c/></a>", "<a/>",
                                         "<a><z/></a>"};
  Response batch = server_.Handle(MakeBatch(1, "in", docs));
  ASSERT_EQ(batch.header.status, WireStatus::kOk);
  const auto& body = std::get<ValidateBatchResponse>(batch.body);
  ASSERT_EQ(body.verdicts.size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    Response single = server_.Handle(
        MakeValidate(static_cast<uint32_t>(10 + i), "in", docs[i]));
    ASSERT_EQ(single.header.status, WireStatus::kOk);
    const auto& v = std::get<ValidateResponse>(single.body);
    EXPECT_EQ(body.verdicts[i].valid, v.valid) << "doc " << i;
    EXPECT_EQ(body.verdicts[i].diagnostic, v.diagnostic) << "doc " << i;
  }
}

TEST_F(ServeDispatchTest, BatchUnknownNameAndWrongKindFailWhole) {
  Response missing = server_.Handle(MakeBatch(1, "nope", {"<a/>"}));
  EXPECT_EQ(missing.header.status, WireStatus::kNotFound);
  Response wrong_kind = server_.Handle(MakeBatch(2, "rename", {"<a/>"}));
  EXPECT_EQ(wrong_kind.header.status, WireStatus::kFailedPrecondition);
}

TEST_F(ServeDispatchTest, EmptyBatchIsRejectedByValidity) {
  Response empty = server_.Handle(MakeBatch(1, "in", {}));
  EXPECT_EQ(empty.header.status, WireStatus::kValidationFailed);
}

TEST_F(ServeDispatchTest, BatchOverDocLimitIsRejectedByValidity) {
  ServeOptions options = TestOptions();
  options.validity.max_batch_docs = 4;
  ServerCore server(options);
  ASSERT_TRUE(server.registry().PutDtdText("in", kInDtd).ok());
  std::vector<std::string> docs(5, "<a><c/></a>");
  Response over = server.Handle(MakeBatch(1, "in", docs));
  EXPECT_EQ(over.header.status, WireStatus::kValidationFailed);
  EXPECT_NE(over.header.detail.find("exceeds the limit"), std::string::npos)
      << over.header.detail;
  docs.pop_back();
  Response at_limit = server.Handle(MakeBatch(2, "in", docs));
  EXPECT_EQ(at_limit.header.status, WireStatus::kOk);
}

// Under kBasic validity (no pre-parse), a malformed document reaches the
// engine and must surface as a per-document kInvalidArgument verdict while
// the rest of the batch completes normally.
TEST(ServeBatchTest, MalformedDocumentGetsHonestPerDocVerdict) {
  ServeOptions options = TestOptions();
  options.validity.level = ValidityLevel::kBasic;
  ServerCore server(options);
  ASSERT_TRUE(server.registry().PutDtdText("in", kInDtd).ok());
  Response response = server.Handle(
      MakeBatch(1, "in", {"<a><c/></a>", "not xml", "<a/>"}));
  ASSERT_EQ(response.header.status, WireStatus::kOk)
      << response.header.detail;
  const auto& body = std::get<ValidateBatchResponse>(response.body);
  ASSERT_EQ(body.verdicts.size(), 3u);
  EXPECT_TRUE(body.verdicts[0].valid);
  EXPECT_EQ(body.verdicts[1].status,
            static_cast<uint8_t>(WireStatus::kInvalidArgument));
  EXPECT_EQ(body.verdicts[1].diagnostic.rfind("document: ", 0), 0u)
      << body.verdicts[1].diagnostic;
  EXPECT_EQ(body.verdicts[2].status, static_cast<uint8_t>(WireStatus::kOk));
  EXPECT_FALSE(body.verdicts[2].valid);
}

// A disconnect mid-batch cancels the remaining documents: each unprocessed
// verdict reports kCancelled honestly instead of a fabricated answer, and
// the response itself still decodes as kOk.
TEST(ServeBatchTest, DisconnectCancelsRemainingDocuments) {
  ServeOptions options = TestOptions();
  ServerCore server(options);
  ASSERT_TRUE(server.registry().PutDtdText("in", kInDtd).ok());
  // Warm the plan cache: a disconnect during plan *compilation* fails the
  // whole request (the response is never sent anyway); this test pins the
  // mid-batch story, where the plan exists and documents are in flight.
  ASSERT_EQ(server.Handle(MakeBatch(1, "in", {"<a/>"})).header.status,
            WireStatus::kOk);
  std::atomic<bool> cancel{true};  // "client gone" before the first doc
  std::vector<std::string> docs(6, "<a><c/></a>");
  Response response = server.Handle(MakeBatch(2, "in", docs), &cancel);
  ASSERT_EQ(response.header.status, WireStatus::kOk)
      << response.header.detail;
  const auto& body = std::get<ValidateBatchResponse>(response.body);
  ASSERT_EQ(body.verdicts.size(), docs.size());
  for (size_t i = 0; i < body.verdicts.size(); ++i) {
    EXPECT_EQ(body.verdicts[i].status,
              static_cast<uint8_t>(WireStatus::kCancelled))
        << "doc " << i;
    EXPECT_FALSE(body.verdicts[i].valid);
  }
  EXPECT_EQ(body.fast_path_docs, 0u);
}

// The whole batch is ONE heavy request: it needs (and holds) exactly one
// admission slot, so a saturated server sheds it with a single kOverloaded
// response, and a max_in_flight=1 server still serves any batch size.
TEST(ServeBatchTest, BatchHoldsExactlyOneAdmissionSlot) {
  ServeOptions options = TestOptions();
  options.max_in_flight = 1;
  options.max_queued = 1;
  options.admission_wait = std::chrono::milliseconds(5);
  ServerCore server(options);
  ASSERT_TRUE(server.registry().PutDtdText("in", kInDtd).ok());

  std::vector<std::string> docs(16, "<a><c/></a>");
  Response served = server.Handle(MakeBatch(1, "in", docs));
  ASSERT_EQ(served.header.status, WireStatus::kOk) << served.header.detail;
  EXPECT_EQ(std::get<ValidateBatchResponse>(served.body).verdicts.size(),
            docs.size());
  EXPECT_EQ(server.admission().in_flight(), 0u) << "slot released";

  auto held = server.admission().Admit(std::chrono::milliseconds(1));
  ASSERT_TRUE(held.ok());
  Response shed = server.Handle(MakeBatch(2, "in", docs));
  EXPECT_EQ(shed.header.status, WireStatus::kOverloaded);
  EXPECT_EQ(server.SnapshotStats().overload_rejected, 1u)
      << "one shed, not one per document";
  held->Release();
}

// ---------------------------------------------------------------------------
// Serve configuration (the frame-cap knob).
// ---------------------------------------------------------------------------

TEST(ServeConfigTest, ValidateServeOptionsRejectsOutOfWindowFrameCaps) {
  ServeOptions options = TestOptions();
  EXPECT_TRUE(ValidateServeOptions(options).ok()) << "default is valid";

  options.max_frame_bytes = kMinFrameBytes;
  EXPECT_TRUE(ValidateServeOptions(options).ok());
  options.max_frame_bytes = kMaxFrameBytesCeiling;
  EXPECT_TRUE(ValidateServeOptions(options).ok());

  options.max_frame_bytes = 0;
  Status zero = ValidateServeOptions(options);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.code(), StatusCode::kInvalidArgument);

  options.max_frame_bytes = kMinFrameBytes - 1;
  EXPECT_FALSE(ValidateServeOptions(options).ok()) << "below the floor";
  options.max_frame_bytes = kMaxFrameBytesCeiling + 1;
  EXPECT_FALSE(ValidateServeOptions(options).ok()) << "above the ceiling";
}

// A frame declaring more than the *configured* cap (not the compile-time
// default) poisons the stream at exactly the configured boundary.
TEST(ServeConfigTest, FrameDecoderEnforcesTheConfiguredBoundary) {
  constexpr uint32_t kCap = 128;
  {
    FrameDecoder decoder(kCap);
    std::string stream;
    EncodeFrame(std::string(kCap, 'x'), &stream);  // exactly at the cap
    decoder.Append(stream);
    Result<std::optional<std::string>> r = decoder.Next();
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ((*r)->size(), kCap);
  }
  {
    FrameDecoder decoder(kCap);
    std::string stream;
    EncodeFrame(std::string(kCap + 1, 'x'), &stream);  // one past the cap
    decoder.Append(stream);
    Result<std::optional<std::string>> r = decoder.Next();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

// ---------------------------------------------------------------------------
// Admission control and overload shedding.
// ---------------------------------------------------------------------------

TEST(ServeAdmissionTest, SlotAccountingAndRelease) {
  AdmissionController admission(2, 1);
  auto a = admission.Admit(std::chrono::milliseconds(1));
  auto b = admission.Admit(std::chrono::milliseconds(1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(admission.in_flight(), 2u);
  auto c = admission.Admit(std::chrono::milliseconds(1));
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  a->Release();
  EXPECT_EQ(admission.in_flight(), 1u);
  auto d = admission.Admit(std::chrono::milliseconds(1));
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(admission.total_rejected(), 1u);
}

TEST(ServeAdmissionTest, QueuedWaiterGetsTheFreedSlot) {
  AdmissionController admission(1, 4);
  auto held = admission.Admit(std::chrono::milliseconds(1));
  ASSERT_TRUE(held.ok());

  std::atomic<bool> waiter_admitted{false};
  std::thread waiter([&] {
    auto slot = admission.Admit(std::chrono::seconds(5));
    waiter_admitted.store(slot.ok());
  });
  // Give the waiter time to park in the queue, then free the slot.
  while (admission.queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  held->Release();
  waiter.join();
  EXPECT_TRUE(waiter_admitted.load());
  // The waiter's slot died with its scope; nothing may leak.
  EXPECT_EQ(admission.in_flight(), 0u);
}

TEST(ServeAdmissionTest, SaturatedServerShedsWithOverloaded) {
  ServeOptions options = TestOptions();
  options.max_in_flight = 1;
  options.max_queued = 1;
  options.admission_wait = std::chrono::milliseconds(5);
  ServerCore server(options);
  ASSERT_TRUE(server.registry().PutDtdText("in", kInDtd).ok());

  // Hold the only slot directly, so dispatch cannot run.
  auto held = server.admission().Admit(std::chrono::milliseconds(1));
  ASSERT_TRUE(held.ok());

  // Grace-period shed: the request queues, waits 5ms, then is rejected with
  // a structured kOverloaded — not queued forever, not a dropped connection.
  Response shed = server.Handle(MakeValidate(1, "in", "<a><c/></a>"));
  EXPECT_EQ(shed.header.status, WireStatus::kOverloaded);
  EXPECT_FALSE(shed.header.detail.empty());
  EXPECT_EQ(server.SnapshotStats().overload_rejected, 1u);

  // Queue-full shed: park one waiter in the queue, then a second concurrent
  // request must be rejected immediately (no waiting).
  std::atomic<bool> queued_result{false};
  std::thread queued([&] {
    auto slot = server.admission().Admit(std::chrono::seconds(5));
    queued_result.store(slot.ok());
  });
  while (server.admission().queued() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto start = std::chrono::steady_clock::now();
  Response instant = server.Handle(MakeValidate(2, "in", "<a><c/></a>"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(instant.header.status, WireStatus::kOverloaded);
  EXPECT_LT(elapsed, std::chrono::seconds(1)) << "queue-full must shed fast";

  held->Release();
  queued.join();
  EXPECT_TRUE(queued_result.load());
  // The waiter's slot was released when its scope ended; nothing leaks.
  EXPECT_EQ(server.admission().in_flight(), 0u);
}

TEST(ServeAdmissionTest, RequestsReleaseSlotsOnEveryPath) {
  ServeOptions options = TestOptions();
  options.max_in_flight = 1;
  ServerCore server(options);
  LoadExampleRegistry(&server);

  // OK path, error path, validation-reject path — after each, in_flight
  // must be back to zero (a leaked slot would wedge the server).
  (void)server.Handle(MakeTypecheck(1, "rename", "in", "good_out"));
  EXPECT_EQ(server.admission().in_flight(), 0u);
  (void)server.Handle(MakeTypecheck(2, "missing", "in", "good_out"));
  EXPECT_EQ(server.admission().in_flight(), 0u);
  (void)server.Handle(MakeTypecheck(3, "../bad", "in", "good_out"));
  EXPECT_EQ(server.admission().in_flight(), 0u);
  EXPECT_EQ(server.SnapshotStats().in_flight, 0u);
}

}  // namespace
}  // namespace pebbletc::serve
