// Tests for src/pt: the k-pebble transducer model (Def. 3.1), deterministic
// evaluation, the Prop. 3.8 output automaton A_t, and the paper's example
// machines (3.3 copy, 3.4 pre-order, 3.6 doubling, 3.7 rotation).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/pt/eval.h"
#include "src/pt/paper_machines.h"
#include "src/pt/transducer.h"
#include "src/ta/convert.h"
#include "src/ta/nbta.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

using M = PebbleTransducer::MoveKind;

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

// --- model validation ---

TEST(PebbleTransducerTest, ValidateChecksStackDiscipline) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer t(2, 4, 4);
  StateId q1 = t.AddState(1);
  StateId q2 = t.AddState(2);
  t.SetStart(q1);
  // Place must raise level by exactly one.
  t.AddMove({}, q1, M::kPlacePebble, q2);
  EXPECT_TRUE(t.Validate(sigma, sigma).ok());

  PebbleTransducer bad(2, 4, 4);
  StateId b1 = bad.AddState(1);
  bad.SetStart(b1);
  bad.AddMove({}, b1, M::kPlacePebble, b1);  // stays level 1
  EXPECT_FALSE(bad.Validate(sigma, sigma).ok());

  PebbleTransducer bad2(2, 4, 4);
  StateId c1 = bad2.AddState(1);
  StateId c2 = bad2.AddState(2);
  bad2.SetStart(c1);
  bad2.AddMove({}, c2, M::kPickPebble, c2);  // pick must lower level
  EXPECT_FALSE(bad2.Validate(sigma, sigma).ok());

  PebbleTransducer bad3(2, 4, 4);
  StateId d2 = bad3.AddState(2);
  bad3.SetStart(d2);  // start must be level 1
  EXPECT_FALSE(bad3.Validate(sigma, sigma).ok());
}

TEST(PebbleTransducerTest, ValidateChecksOutputRanks) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer t(1, 4, 4);
  StateId q = t.AddState(1);
  t.SetStart(q);
  t.AddOutputLeaf({}, q, sigma.Find("a2"));  // binary symbol as leaf output
  EXPECT_FALSE(t.Validate(sigma, sigma).ok());
}

TEST(PebbleTransducerTest, PresenceGuardsObservePebbleStack) {
  RankedAlphabet sigma = TinyRanked();
  // Pebble 1 stays at the root; pebble 2 is placed and possibly moved; then
  // the machine emits a0 if both pebbles share a node, b0 otherwise.
  auto build = [&](bool move_second) {
    PebbleTransducer t(2, 4, 4);
    StateId q1 = t.AddState(1);
    StateId p = t.AddState(2);
    StateId check = t.AddState(2);
    t.SetStart(q1);
    t.AddMove({}, q1, M::kPlacePebble, p);
    if (move_second) {
      t.AddMove({}, p, M::kDownLeft, check);
    } else {
      t.AddMove({}, p, M::kStay, check);
    }
    t.AddOutputLeaf({.presence_mask = 1, .presence_value = 1}, check,
                    sigma.Find("a0"));
    t.AddOutputLeaf({.presence_mask = 1, .presence_value = 0}, check,
                    sigma.Find("b0"));
    return t;
  };
  auto tree = std::move(ParseBinaryTerm("a2(a0,b0)", sigma)).ValueOrDie();
  auto together = std::move(EvalDeterministic(build(false), tree)).ValueOrDie();
  auto apart = std::move(EvalDeterministic(build(true), tree)).ValueOrDie();
  EXPECT_EQ(BinaryTermString(together, sigma), "a0");
  EXPECT_EQ(BinaryTermString(apart, sigma), "b0");
}

// --- Example 3.3: copy ---

class CopyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CopyPropertyTest, CopyIsIdentity) {
  Rng rng(GetParam());
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  ASSERT_TRUE(copy.Validate(sigma, sigma).ok());
  EXPECT_TRUE(copy.IsDeterministic());
  BinaryTree input = RandomBinaryTree(sigma, rng, rng.NextBelow(30));
  auto out = std::move(EvalDeterministic(copy, input)).ValueOrDie();
  EXPECT_TRUE(out == input);
  // Prop. 3.8 membership agrees.
  auto member = OutputContains(copy, input, input);
  ASSERT_TRUE(member.ok());
  EXPECT_TRUE(*member);
  BinaryTree other = RandomBinaryTree(sigma, rng, rng.NextBelow(30) + 1);
  auto member2 = OutputContains(copy, input, other);
  ASSERT_TRUE(member2.ok());
  EXPECT_EQ(*member2, other == input);
  // Exactly one output.
  auto outputs = EnumerateOutputs(copy, input, input.size(), 10);
  ASSERT_TRUE(outputs.ok());
  ASSERT_EQ(outputs->size(), 1u);
  EXPECT_TRUE((*outputs)[0] == input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

// --- nondeterminism ---

TEST(PebbleTransducerTest, NondeterministicOutputsEnumerated) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer t(1, 4, 4);
  StateId q = t.AddState(1);
  t.SetStart(q);
  t.AddOutputLeaf({}, q, sigma.Find("a0"));
  t.AddOutputLeaf({}, q, sigma.Find("b0"));
  EXPECT_FALSE(t.IsDeterministic());
  EXPECT_FALSE(EvalDeterministic(t, std::move(ParseBinaryTerm("a0", sigma))
                                        .ValueOrDie())
                   .ok());
  auto tree = std::move(ParseBinaryTerm("a2(a0,b0)", sigma)).ValueOrDie();
  auto outputs = std::move(EnumerateOutputs(t, tree, 3, 10)).ValueOrDie();
  ASSERT_EQ(outputs.size(), 2u);
}

TEST(PebbleTransducerTest, DivergenceDetected) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer t(1, 4, 4);
  StateId q = t.AddState(1);
  t.SetStart(q);
  t.AddMove({}, q, M::kStay, q);  // spin forever
  auto tree = std::move(ParseBinaryTerm("a0", sigma)).ValueOrDie();
  auto r = EvalDeterministic(t, tree);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PebbleTransducerTest, StuckBranchReported) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer t(1, 4, 4);
  StateId q = t.AddState(1);
  t.SetStart(q);  // no transitions at all
  auto tree = std::move(ParseBinaryTerm("a0", sigma)).ValueOrDie();
  auto r = EvalDeterministic(t, tree);
  ASSERT_FALSE(r.ok());
  // And the output language is empty.
  auto outputs = std::move(EnumerateOutputs(t, tree, 20, 10)).ValueOrDie();
  EXPECT_TRUE(outputs.empty());
}

// --- Example 3.6: doubling ---

// Reference implementation of f from Example 3.6.
BinaryTree DoubleRef(const RankedAlphabet& sigma, const BinaryTree& t,
                     SymbolId x);
NodeId DoubleRefNode(const BinaryTree& t, NodeId n, SymbolId x,
                     BinaryTree* out) {
  if (t.IsLeaf(n)) {
    NodeId l = out->AddLeaf(t.symbol(n));
    NodeId r = out->AddLeaf(t.symbol(n));
    return out->AddInternal(x, l, r);
  }
  auto copy_child = [&]() {
    NodeId fl = DoubleRefNode(t, t.left(n), x, out);
    NodeId fr = DoubleRefNode(t, t.right(n), x, out);
    return out->AddInternal(t.symbol(n), fl, fr);
  };
  NodeId c1 = copy_child();
  NodeId c2 = copy_child();
  return out->AddInternal(x, c1, c2);
}
BinaryTree DoubleRef(const RankedAlphabet&, const BinaryTree& t, SymbolId x) {
  BinaryTree out;
  out.SetRoot(DoubleRefNode(t, t.root(), x, &out));
  return out;
}

TEST(DoublingTest, MatchesReferenceAndIsExponential) {
  RankedAlphabet sigma = TinyRanked();
  RankedAlphabet out_sigma = TinyRanked();
  SymbolId x = std::move(out_sigma.AddBinary("x")).ValueOrDie();
  auto t =
      std::move(MakeDoublingTransducer(sigma, out_sigma, x)).ValueOrDie();
  ASSERT_TRUE(t.Validate(sigma, out_sigma).ok());
  EXPECT_TRUE(t.IsDeterministic());

  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    BinaryTree input = RandomBinaryTree(sigma, rng, rng.NextBelow(5));
    BinaryTree want = DoubleRef(sigma, input, x);
    auto got = std::move(EvalDeterministic(t, input)).ValueOrDie();
    EXPECT_TRUE(got == want) << BinaryTermString(input, sigma);
  }

  // Exponential output, polynomial DAG (Prop. 3.8 / Example 3.6): on a full
  // tree of depth d the output has >2^d nodes but A_t stays linear-ish.
  Alphabet dummy;
  BinaryTree full;
  std::vector<NodeId> layer;
  for (int i = 0; i < 64; ++i) layer.push_back(full.AddLeaf(0));
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(full.AddInternal(2, layer[i], layer[i + 1]));
    }
    layer = next;
  }
  full.SetRoot(layer[0]);
  auto direct = std::move(EvalDeterministic(t, full)).ValueOrDie();
  auto dag = std::move(BuildOutputAutomaton(t, full)).ValueOrDie();
  EXPECT_GT(direct.size(), 100u * full.size());  // exponential blowup
  EXPECT_LT(dag.num_configs, 10u * full.size());  // DAG stays linear
  // The DAG recognizes exactly the direct output.
  EXPECT_TRUE(TopDownAccepts(dag.automaton, direct));
}

// --- Example 3.7: rotation ---

struct RotationFixture {
  RankedAlphabet sigma;
  RankedAlphabet out_sigma;
  RotationSymbols syms;
  PebbleTransducer t;

  RotationFixture() : t(1, 1, 1) {
    (void)sigma.AddLeaf("e");
    (void)sigma.AddLeaf("s");
    (void)sigma.AddBinary("x");
    (void)sigma.AddBinary("y");
    (void)sigma.AddBinary("r");
    out_sigma = sigma;
    syms.s_leaf = sigma.Find("s");
    syms.root_symbol = sigma.Find("r");
    syms.new_root = std::move(out_sigma.AddBinary("r2")).ValueOrDie();
    syms.m_leaf = std::move(out_sigma.AddLeaf("m")).ValueOrDie();
    syms.n_leaf = std::move(out_sigma.AddLeaf("n")).ValueOrDie();
    t = std::move(MakeRotationTransducer(sigma, out_sigma, syms)).ValueOrDie();
  }
};

TEST(RotationTest, HandTracedExample) {
  RotationFixture f;
  ASSERT_TRUE(f.t.Validate(f.sigma, f.out_sigma).ok());
  auto input = std::move(ParseBinaryTerm("r(x(e,s),e)", f.sigma)).ValueOrDie();
  auto out = std::move(EvalDeterministic(f.t, input)).ValueOrDie();
  EXPECT_EQ(BinaryTermString(out, f.out_sigma), "r2(m,x(r(e,n),e))");
  EXPECT_EQ(out.size(), input.size() + 2);
}

TEST(RotationTest, DeeperRotationKeepsSizeLinear) {
  RotationFixture f;
  auto input = std::move(ParseBinaryTerm(
                             "r(x(y(x(s,e),e),y(e,e)),x(e,e))", f.sigma))
                   .ValueOrDie();
  auto out = std::move(EvalDeterministic(f.t, input)).ValueOrDie();
  EXPECT_EQ(out.size(), input.size() + 2);
  // New root on top, m as its first child (counterclockwise reading).
  EXPECT_EQ(out.symbol(out.root()), f.syms.new_root);
  EXPECT_EQ(out.symbol(out.left(out.root())), f.syms.m_leaf);
  // Membership via A_t agrees with direct evaluation.
  auto member = OutputContains(f.t, input, out);
  ASSERT_TRUE(member.ok());
  EXPECT_TRUE(*member);
}

TEST(RotationTest, ReversesRightLinearString) {
  // A string w encoded as a right-linear tree r(e, c1(e, c2(e, ... s)))
  // comes back reversed along the left spine — the paper's remark that a
  // 1-pebble transducer can reverse a string.
  RotationFixture f;
  auto input = std::move(ParseBinaryTerm("r(e,x(e,y(e,s)))", f.sigma))
                   .ValueOrDie();
  auto out = std::move(EvalDeterministic(f.t, input)).ValueOrDie();
  // Spine from the new root reads y, x, r — the reverse of r, x, y.
  ASSERT_EQ(BinaryTermString(out, f.out_sigma),
            "r2(m,y(x(r(n,e),e),e))");
}

// --- Example 3.4: pre-order advance (frontier machine) ---

// A transducer that emits the yield (left-to-right leaf word) of its input
// as a cons-list, driven by the pre-order subroutine.
PebbleTransducer MakeFrontierMachine(const RankedAlphabet& sigma,
                                     const RankedAlphabet& out_sigma,
                                     SymbolId root_symbol, SymbolId cons,
                                     SymbolId nil) {
  PebbleTransducer t(1, static_cast<uint32_t>(sigma.size()),
                     static_cast<uint32_t>(out_sigma.size()));
  StateId v = t.AddState(1);      // inspect the current node
  StateId w = t.AddState(1);      // emit the current (leaf) symbol
  StateId enter = t.AddState(1);  // pre-order advance entry
  StateId z = t.AddState(1);      // traversal exhausted
  t.SetStart(v);
  for (SymbolId a : sigma.LeafSymbols()) {
    t.AddOutputBinary({.symbol = a}, v, cons, w, enter);
    t.AddOutputLeaf({.symbol = a}, w, a);
  }
  for (SymbolId a : sigma.BinarySymbols()) {
    t.AddMove({.symbol = a}, v, PebbleTransducer::MoveKind::kStay, enter);
  }
  t.AddOutputLeaf({}, z, nil);
  AttachPreorderAdvance(&t, 1, sigma, root_symbol, enter, v, z);
  return t;
}

TEST(PreorderTest, FrontierIsLeftToRightLeafWord) {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("p");
  (void)sigma.AddLeaf("q");
  (void)sigma.AddBinary("x");
  (void)sigma.AddBinary("r");
  RankedAlphabet out_sigma = sigma;
  SymbolId cons = std::move(out_sigma.AddBinary("cons")).ValueOrDie();
  SymbolId nil = std::move(out_sigma.AddLeaf("nil")).ValueOrDie();
  PebbleTransducer t =
      MakeFrontierMachine(sigma, out_sigma, sigma.Find("r"), cons, nil);
  ASSERT_TRUE(t.Validate(sigma, out_sigma).ok());
  EXPECT_TRUE(t.IsDeterministic());

  auto input =
      std::move(ParseBinaryTerm("r(x(p,q),x(q,x(p,p)))", sigma)).ValueOrDie();
  auto out = std::move(EvalDeterministic(t, input)).ValueOrDie();
  EXPECT_EQ(BinaryTermString(out, out_sigma),
            "cons(p,cons(q,cons(q,cons(p,cons(p,nil)))))");
}

TEST(PreorderTest, SingleLeafInput) {
  // The traversal must also terminate on the degenerate one-node tree when
  // the root symbol is the leaf itself.
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("r");
  (void)sigma.AddLeaf("p");
  (void)sigma.AddBinary("x");
  RankedAlphabet out_sigma = sigma;
  SymbolId cons = std::move(out_sigma.AddBinary("cons")).ValueOrDie();
  SymbolId nil = std::move(out_sigma.AddLeaf("nil")).ValueOrDie();
  PebbleTransducer t =
      MakeFrontierMachine(sigma, out_sigma, sigma.Find("r"), cons, nil);
  auto input = std::move(ParseBinaryTerm("r", sigma)).ValueOrDie();
  auto out = std::move(EvalDeterministic(t, input)).ValueOrDie();
  EXPECT_EQ(BinaryTermString(out, out_sigma), "cons(r,nil)");
}

// --- Prop. 3.8: configuration counts scale as O(n^k) ---

TEST(OutputAutomatonTest, ConfigCountPolynomialInPebbles) {
  RankedAlphabet sigma = TinyRanked();
  // A 2-pebble machine that walks pebble 2 over the whole tree for every
  // position of pebble 1 would have Θ(n²) configurations; here we just check
  // the interface reports sane counts for the copy machine (Θ(n)).
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Rng rng(11);
  size_t prev = 0;
  for (size_t m : {4u, 8u, 16u, 32u}) {
    BinaryTree input = RandomBinaryTree(sigma, rng, m);
    auto dag = std::move(BuildOutputAutomaton(copy, input)).ValueOrDie();
    EXPECT_LE(dag.num_configs, 3 * input.size() + 3);
    EXPECT_GT(dag.num_configs, prev);
    prev = dag.num_configs;
  }
}

TEST(OutputAutomatonTest, BudgetEnforced) {
  RankedAlphabet sigma = TinyRanked();
  PebbleTransducer copy = MakeCopyTransducer(sigma);
  Rng rng(12);
  BinaryTree input = RandomBinaryTree(sigma, rng, 50);
  auto r = BuildOutputAutomaton(copy, input, /*max_configs=*/5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pebbletc
