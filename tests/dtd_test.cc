// Tests for src/dtd and src/xml: DTD parsing, validation, specialized DTDs,
// and the compilation to tree automata over the encoded alphabet
// (cross-validated against direct validation on random trees).

#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.h"
#include "src/dtd/dtd.h"
#include "src/ta/nbta.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"
#include "src/xml/xml.h"

namespace pebbletc {
namespace {

// The Figure 1 DTD: a := b*.c.e; b,d,e := ε; c := d*.
constexpr char kFigure1Dtd[] = R"(
  a := b*.c.e
  b := ()
  c := d*
  d := ()
  e := ()
)";

TEST(DtdTest, ParseAndValidateFigure1) {
  auto dtd = std::move(ParseDtd(kFigure1Dtd)).ValueOrDie();
  EXPECT_TRUE(dtd.IsPlain());
  EXPECT_EQ(dtd.num_types(), 5u);
  auto tree = std::move(ParseUnrankedTerm("a(b,b,c(d),e)",
                                          dtd.mutable_tags()))
                  .ValueOrDie();
  auto ok = dtd.Accepts(tree);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  EXPECT_TRUE(dtd.Validate(tree).ok());
}

TEST(DtdTest, RejectsContentViolations) {
  auto dtd = std::move(ParseDtd(kFigure1Dtd)).ValueOrDie();
  for (const char* bad : {"a(b,b)",        // missing c.e
                          "a(c(d),e,b)",   // b after c
                          "a(b,c(b),e)",   // b inside c
                          "b",             // wrong root
                          "a(b,c(d),e,e)"}) {
    auto tree =
        std::move(ParseUnrankedTerm(bad, dtd.mutable_tags())).ValueOrDie();
    auto ok = dtd.Accepts(tree);
    ASSERT_TRUE(ok.ok()) << bad;
    EXPECT_FALSE(*ok) << bad;
    EXPECT_FALSE(dtd.Validate(tree).ok()) << bad;
  }
}

TEST(DtdTest, ValidateDiagnosesOffendingElement) {
  auto dtd = std::move(ParseDtd(kFigure1Dtd)).ValueOrDie();
  auto tree = std::move(ParseUnrankedTerm("a(b,c(b),e)", dtd.mutable_tags()))
                  .ValueOrDie();
  Status s = dtd.Validate(tree);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("'c'"), std::string::npos) << s.ToString();
}

TEST(DtdTest, UndeclaredElementRejected) {
  auto dtd = std::move(ParseDtd("a := b*\nb := ()")).ValueOrDie();
  auto tree =
      std::move(ParseUnrankedTerm("a(z)", dtd.mutable_tags())).ValueOrDie();
  auto ok = dtd.Accepts(tree);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
  Status s = dtd.Validate(tree);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not declared"), std::string::npos)
      << s.ToString();
}

TEST(DtdTest, ParseErrors) {
  EXPECT_FALSE(ParseDtd("").ok());
  EXPECT_FALSE(ParseDtd("a = b*").ok());
  EXPECT_FALSE(ParseDtd("a := b*").ok());         // b undeclared
  EXPECT_FALSE(ParseDtd("a := ()\na := ()").ok());  // duplicate
  EXPECT_FALSE(ParseDtd("a[b] := ()").ok());      // specialized form in plain
}

TEST(DtdTest, SpecializedDistinguishesSameTag) {
  // The paper's example: t = a(b(c), b(d)) needs the two b's to have
  // different types — impossible for a plain DTD, expressible specialized.
  constexpr char kSpec[] = R"(
    r[a] := b1.b2
    b1[b] := c0
    b2[b] := d0
    c0[c] := ()
    d0[d] := ()
  )";
  auto dtd = std::move(ParseSpecializedDtd(kSpec)).ValueOrDie();
  EXPECT_FALSE(dtd.IsPlain());
  auto yes = std::move(ParseUnrankedTerm("a(b(c),b(d))", dtd.mutable_tags()))
                 .ValueOrDie();
  auto no1 = std::move(ParseUnrankedTerm("a(b(d),b(c))", dtd.mutable_tags()))
                 .ValueOrDie();
  auto no2 = std::move(ParseUnrankedTerm("a(b(c),b(c))", dtd.mutable_tags()))
                 .ValueOrDie();
  EXPECT_TRUE(*dtd.Accepts(yes));
  EXPECT_FALSE(*dtd.Accepts(no1));
  EXPECT_FALSE(*dtd.Accepts(no2));
}

TEST(DtdCompileTest, AutomatonMatchesFigure1Examples) {
  auto dtd = std::move(ParseDtd(kFigure1Dtd)).ValueOrDie();
  auto enc = std::move(MakeEncodedAlphabet(dtd.tags())).ValueOrDie();
  auto nbta = std::move(CompileDtdToNbta(dtd, enc)).ValueOrDie();
  EXPECT_TRUE(nbta.Validate(enc.ranked).ok());
  for (const char* text : {"a(b,b,c(d),e)", "a(c,e)", "a(b,c(d,d,d),e)"}) {
    auto tree =
        std::move(ParseUnrankedTerm(text, dtd.mutable_tags())).ValueOrDie();
    auto bin = std::move(EncodeTree(tree, enc)).ValueOrDie();
    EXPECT_TRUE(nbta.Accepts(bin)) << text;
  }
  for (const char* text : {"a(b)", "a(c(d),b,e)", "c(d)", "a(b,c(c),e)"}) {
    auto tree =
        std::move(ParseUnrankedTerm(text, dtd.mutable_tags())).ValueOrDie();
    auto bin = std::move(EncodeTree(tree, enc)).ValueOrDie();
    EXPECT_FALSE(nbta.Accepts(bin)) << text;
  }
}

// Property: for random trees, direct DTD validation agrees with the compiled
// automaton on the encoding. Exercises plain and specialized DTDs.
class DtdCompileProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DtdCompileProperty, CompiledAutomatonAgreesWithValidation) {
  Rng rng(GetParam());
  const char* dtd_text = (GetParam() % 2 == 0) ? kFigure1Dtd : R"(
    r[a] := x*.y?
    x[b] := r*
    y[b] := ()
  )";
  auto dtd = std::move(ParseSpecializedDtd(dtd_text)).ValueOrDie();
  auto enc = std::move(MakeEncodedAlphabet(dtd.tags())).ValueOrDie();
  auto nbta = std::move(CompileDtdToNbta(dtd, enc)).ValueOrDie();

  RandomUnrankedOptions opts;
  opts.target_size = 1 + rng.NextBelow(25);
  opts.max_children = 4;
  for (int i = 0; i < 40; ++i) {
    UnrankedTree t = RandomUnrankedTree(dtd.tags(), rng, opts);
    auto direct = dtd.Accepts(t);
    ASSERT_TRUE(direct.ok());
    auto bin = std::move(EncodeTree(t, enc)).ValueOrDie();
    EXPECT_EQ(*direct, nbta.Accepts(bin))
        << UnrankedTermString(t, dtd.tags());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtdCompileProperty,
                         ::testing::Range<uint64_t>(0, 30));

TEST(DtdCompileTest, WitnessOfCompiledDtdDecodesToValidDocument) {
  auto dtd = std::move(ParseDtd(kFigure1Dtd)).ValueOrDie();
  auto enc = std::move(MakeEncodedAlphabet(dtd.tags())).ValueOrDie();
  auto nbta = std::move(CompileDtdToNbta(dtd, enc)).ValueOrDie();
  auto witness = WitnessTree(TrimNbta(nbta));
  ASSERT_TRUE(witness.has_value());
  auto doc = std::move(DecodeTree(*witness, enc)).ValueOrDie();
  EXPECT_TRUE(*dtd.Accepts(doc));
}

// --- XML ---

TEST(XmlTest, ParsePaperExample) {
  Alphabet sigma;
  auto tree = std::move(ParseXml(
                            "<a> <b></b> <b></b> <c><d></d></c> <e></e> </a>",
                            &sigma))
                  .ValueOrDie();
  EXPECT_EQ(UnrankedTermString(tree, sigma), "a(b,b,c(d),e)");
}

TEST(XmlTest, SelfClosingAndComments) {
  Alphabet sigma;
  auto tree =
      std::move(ParseXml("<root><!-- doc --><a/><a/></root>", &sigma))
          .ValueOrDie();
  EXPECT_EQ(UnrankedTermString(tree, sigma), "root(a,a)");
}

TEST(XmlTest, RoundTrip) {
  Alphabet sigma;
  auto tree =
      std::move(ParseUnrankedTerm("a(b,c(d,e),f)", &sigma)).ValueOrDie();
  std::string xml = XmlString(tree, sigma);
  EXPECT_EQ(xml, "<a><b/><c><d/><e/></c><f/></a>");
  auto back = std::move(ParseXml(xml, &sigma)).ValueOrDie();
  EXPECT_TRUE(back == tree);
  // Pretty printing parses back too.
  auto back2 =
      std::move(ParseXml(XmlString(tree, sigma, /*indent=*/true), &sigma))
          .ValueOrDie();
  EXPECT_TRUE(back2 == tree);
}

TEST(XmlTest, Errors) {
  Alphabet sigma;
  EXPECT_FALSE(ParseXml("", &sigma).ok());
  EXPECT_FALSE(ParseXml("<a>", &sigma).ok());
  EXPECT_FALSE(ParseXml("<a></b>", &sigma).ok());
  EXPECT_FALSE(ParseXml("<a>text</a>", &sigma).ok());
  EXPECT_FALSE(ParseXml("<a x='1'/>", &sigma).ok());
  EXPECT_FALSE(ParseXml("<a/><b/>", &sigma).ok());
}

}  // namespace
}  // namespace pebbletc
