// Tests for src/alphabet: interning, ranked alphabets, the Σ′ encoding.

#include <gtest/gtest.h>

#include "src/alphabet/alphabet.h"

namespace pebbletc {
namespace {

TEST(AlphabetTest, InternAssignsDenseIds) {
  Alphabet sigma;
  EXPECT_EQ(sigma.Intern("a"), 0u);
  EXPECT_EQ(sigma.Intern("b"), 1u);
  EXPECT_EQ(sigma.Intern("a"), 0u);  // idempotent
  EXPECT_EQ(sigma.size(), 2u);
  EXPECT_EQ(sigma.Name(0), "a");
  EXPECT_EQ(sigma.Name(1), "b");
}

TEST(AlphabetTest, FindMissingReturnsSentinel) {
  Alphabet sigma;
  sigma.Intern("a");
  EXPECT_EQ(sigma.Find("a"), 0u);
  EXPECT_EQ(sigma.Find("zz"), kNoSymbol);
  EXPECT_FALSE(sigma.Contains(kNoSymbol));
}

TEST(RankedAlphabetTest, PartitionsByRank) {
  RankedAlphabet sigma;
  SymbolId a0 = std::move(sigma.AddLeaf("a0")).ValueOrDie();
  SymbolId a2 = std::move(sigma.AddBinary("a2")).ValueOrDie();
  SymbolId b2 = std::move(sigma.AddBinary("b2")).ValueOrDie();
  EXPECT_EQ(sigma.Rank(a0), 0);
  EXPECT_EQ(sigma.Rank(a2), 2);
  EXPECT_TRUE(sigma.IsLeaf(a0));
  EXPECT_TRUE(sigma.IsBinary(b2));
  EXPECT_EQ(sigma.LeafSymbols().size(), 1u);
  EXPECT_EQ(sigma.BinarySymbols().size(), 2u);
  EXPECT_EQ(sigma.size(), 3u);
}

TEST(RankedAlphabetTest, ReAddingSameRankIsIdempotent) {
  RankedAlphabet sigma;
  SymbolId first = std::move(sigma.AddLeaf("x")).ValueOrDie();
  SymbolId second = std::move(sigma.AddLeaf("x")).ValueOrDie();
  EXPECT_EQ(first, second);
  EXPECT_EQ(sigma.size(), 1u);
}

TEST(RankedAlphabetTest, RankConflictFails) {
  RankedAlphabet sigma;
  ASSERT_TRUE(sigma.AddLeaf("x").ok());
  auto conflict = sigma.AddBinary("x");
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidArgument);
}

TEST(RankedAlphabetTest, EmptyNameFails) {
  RankedAlphabet sigma;
  EXPECT_FALSE(sigma.AddLeaf("").ok());
  EXPECT_FALSE(sigma.AddBinary("").ok());
}

TEST(EncodedAlphabetTest, BuildsSigmaPrime) {
  Alphabet tags;
  SymbolId a = tags.Intern("a");
  SymbolId b = tags.Intern("b");
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  // Every tag is a binary symbol; plus cons (binary) and nil (leaf).
  EXPECT_EQ(enc.ranked.size(), 4u);
  EXPECT_TRUE(enc.ranked.IsBinary(enc.tag_symbol[a]));
  EXPECT_TRUE(enc.ranked.IsBinary(enc.tag_symbol[b]));
  EXPECT_TRUE(enc.ranked.IsBinary(enc.cons));
  EXPECT_TRUE(enc.ranked.IsLeaf(enc.nil));
  EXPECT_EQ(enc.ranked.Name(enc.cons), "-");
  EXPECT_EQ(enc.ranked.Name(enc.nil), "|");
  EXPECT_EQ(enc.TagOf(enc.tag_symbol[b]), b);
  EXPECT_EQ(enc.TagOf(enc.cons), kNoSymbol);
  EXPECT_EQ(enc.TagOf(enc.nil), kNoSymbol);
}

TEST(EncodedAlphabetTest, RejectsCollidingTagNames) {
  Alphabet tags;
  tags.Intern("-");
  auto enc = MakeEncodedAlphabet(tags);
  EXPECT_FALSE(enc.ok());
}

}  // namespace
}  // namespace pebbletc
