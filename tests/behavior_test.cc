// Tests for src/pa/behavior.h: the 1-pebble behavior-composition
// regularization, cross-validated against direct simulation and the
// Theorem 4.7 MSO route, plus its integration in the typechecker on
// machines beyond the MSO route's reach.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/typechecker.h"
#include "src/pa/automaton.h"
#include "src/pa/behavior.h"
#include "src/pa/to_mso.h"
#include "src/pt/paper_machines.h"
#include "src/pt/transducer.h"
#include "src/ta/nbta.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"

namespace pebbletc {
namespace {

using M = PebbleAutomaton::MoveKind;

RankedAlphabet MicroRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("l");
  (void)sigma.AddBinary("n");
  return sigma;
}

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

// Random 1-pebble automata — same generator family as the Theorem 4.7 tests
// but larger, since behavior composition scales further than MSO.
PebbleAutomaton RandomWalker(Rng& rng, const RankedAlphabet& sigma,
                             uint32_t num_states, uint32_t num_transitions) {
  PebbleAutomaton a(1, static_cast<uint32_t>(sigma.size()));
  for (uint32_t q = 0; q < num_states; ++q) a.AddState(1);
  a.SetStart(0);
  for (uint32_t i = 0; i < num_transitions; ++i) {
    PebbleGuard g;
    if (rng.NextBool(0.7)) {
      g.symbol = static_cast<SymbolId>(rng.NextBelow(sigma.size()));
    }
    StateId from = static_cast<StateId>(rng.NextBelow(num_states));
    StateId to = static_cast<StateId>(rng.NextBelow(num_states));
    switch (rng.NextBelow(7)) {
      case 0:
        a.AddAccept(g, from);
        break;
      case 1:
        a.AddBranch(g, from, to,
                    static_cast<StateId>(rng.NextBelow(num_states)));
        break;
      case 2:
        a.AddMove(g, from, M::kStay, to);
        break;
      case 3:
        a.AddMove(g, from, M::kDownLeft, to);
        break;
      case 4:
        a.AddMove(g, from, M::kDownRight, to);
        break;
      case 5:
        a.AddMove(g, from, M::kUpLeft, to);
        break;
      default:
        a.AddMove(g, from, M::kUpRight, to);
        break;
    }
  }
  return a;
}

class BehaviorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BehaviorProperty, AgreesWithDirectSimulation) {
  Rng rng(GetParam());
  RankedAlphabet sigma = TinyRanked();
  // Up to 6 states and 12 transitions — beyond what the MSO route handles
  // comfortably, easy for behavior tables.
  PebbleAutomaton a =
      RandomWalker(rng, sigma, 2 + rng.NextBelow(5), 4 + rng.NextBelow(9));
  ASSERT_TRUE(a.Validate(sigma).ok());
  auto nbta = OnePebbleToNbtaByBehavior(a, sigma);
  ASSERT_TRUE(nbta.ok()) << nbta.status().ToString();
  for (int i = 0; i < 30; ++i) {
    BinaryTree t = RandomBinaryTree(sigma, rng, rng.NextBelow(10));
    auto direct = PebbleAutomatonAccepts(a, t);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(nbta->Accepts(t), *direct) << BinaryTermString(t, sigma);
  }
}

TEST_P(BehaviorProperty, AgreesWithMsoRoute) {
  Rng rng(GetParam() + 777);
  RankedAlphabet sigma = MicroRanked();
  PebbleAutomaton a = RandomWalker(rng, sigma, 2, 4);
  auto by_behavior = OnePebbleToNbtaByBehavior(a, sigma);
  ASSERT_TRUE(by_behavior.ok());
  auto by_mso = PebbleAutomatonToNbta(a, sigma);
  ASSERT_TRUE(by_mso.ok()) << by_mso.status().ToString();
  auto eq = NbtaEquivalent(*by_behavior, *by_mso, sigma);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BehaviorProperty,
                         ::testing::Range<uint64_t>(0, 25));

TEST(BehaviorTest, RejectsMultiplePebbles) {
  RankedAlphabet sigma = MicroRanked();
  PebbleAutomaton a(2, 2);
  a.AddState(1);
  a.SetStart(0);
  auto r = OnePebbleToNbtaByBehavior(a, sigma);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BehaviorTest, StateBudgetEnforced) {
  RankedAlphabet sigma = MicroRanked();
  PebbleAutomaton a(1, 2);
  for (int i = 0; i < 20; ++i) a.AddState(1);
  a.SetStart(0);
  BehaviorOptions opts;
  opts.max_state_bits = 12;
  auto r = OnePebbleToNbtaByBehavior(a, sigma, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// The payoff: complete typechecking of a machine with up-moves that the MSO
// route cannot reach — the frontier (yield) machine from the pre-order
// subroutine has ~8 states; its product with a small output type stays
// within behavior range.
TEST(BehaviorTest, TypechecksFrontierMachineCompletely) {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("p");
  (void)sigma.AddLeaf("q");
  (void)sigma.AddBinary("x");
  (void)sigma.AddBinary("r");
  RankedAlphabet out_sigma = sigma;
  SymbolId cons = std::move(out_sigma.AddBinary("cons")).ValueOrDie();
  SymbolId nil = std::move(out_sigma.AddLeaf("nil")).ValueOrDie();

  // The frontier machine (see pt_test.cc): emits the yield as a cons-list.
  PebbleTransducer t(1, static_cast<uint32_t>(sigma.size()),
                     static_cast<uint32_t>(out_sigma.size()));
  StateId v = t.AddState(1);
  StateId w = t.AddState(1);
  StateId enter = t.AddState(1);
  StateId z = t.AddState(1);
  t.SetStart(v);
  for (SymbolId a : sigma.LeafSymbols()) {
    t.AddOutputBinary({.symbol = a}, v, cons, w, enter);
    t.AddOutputLeaf({.symbol = a}, w, a);
  }
  for (SymbolId a : sigma.BinarySymbols()) {
    t.AddMove({.symbol = a}, v, PebbleTransducer::MoveKind::kStay, enter);
  }
  t.AddOutputLeaf({}, z, nil);
  AttachPreorderAdvance(&t, 1, sigma, sigma.Find("r"), enter, v, z);

  // τ2: outputs are cons-rooted (every input has ≥1 leaf, so the frontier
  // list is never bare nil... for single-leaf inputs the output is
  // cons(leaf, nil), still cons-rooted).
  Nbta tau2;
  tau2.num_symbols = static_cast<uint32_t>(out_sigma.size());
  {
    StateId any = tau2.AddState();
    StateId top = tau2.AddState();
    tau2.accepting[top] = true;
    for (SymbolId s : out_sigma.LeafSymbols()) tau2.AddLeafRule(s, any);
    for (SymbolId s : out_sigma.BinarySymbols()) {
      tau2.AddRule(s, any, any, any);
    }
    tau2.AddRule(cons, any, any, top);
  }
  // τ1: trees whose root is labelled r (the machine's contract).
  Nbta tau1;
  tau1.num_symbols = static_cast<uint32_t>(sigma.size());
  {
    StateId any = tau1.AddState();
    StateId top = tau1.AddState();
    tau1.accepting[top] = true;
    for (SymbolId s : sigma.LeafSymbols()) tau1.AddLeafRule(s, any);
    for (SymbolId s : sigma.BinarySymbols()) {
      if (s != sigma.Find("r")) tau1.AddRule(s, any, any, any);
    }
    tau1.AddRule(sigma.Find("r"), any, any, top);
  }

  Typechecker tc(t, sigma, out_sigma);
  TypecheckOptions opts;
  opts.refutation_max_trees = 0;  // force the complete path
  opts.behavior_max_state_bits = 14;
  auto r = std::move(tc.Typecheck(tau1, tau2, opts)).ValueOrDie();
  EXPECT_EQ(r.verdict, TypecheckVerdict::kTypechecks);
  EXPECT_EQ(r.method, "behavior-complete");

  // And a refutable claim: "outputs are rooted at p" is wrong.
  Nbta tau2_p;
  tau2_p.num_symbols = static_cast<uint32_t>(out_sigma.size());
  StateId acc = tau2_p.AddState();
  tau2_p.accepting[acc] = true;
  tau2_p.AddLeafRule(sigma.Find("p"), acc);
  auto r2 = std::move(tc.Typecheck(tau1, tau2_p, opts)).ValueOrDie();
  EXPECT_EQ(r2.verdict, TypecheckVerdict::kCounterexample);
  EXPECT_EQ(r2.method, "behavior-complete");
  ASSERT_TRUE(r2.counterexample_input.has_value());
  EXPECT_TRUE(tau1.Accepts(*r2.counterexample_input));
}

}  // namespace
}  // namespace pebbletc
