// Tests for src/tree: binary/unranked trees, the Figure 1 encoding, term
// syntax, and random generation.

#include <gtest/gtest.h>

#include <string>

#include "src/alphabet/alphabet.h"
#include "src/common/rng.h"
#include "src/tree/binary_tree.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {
namespace {

RankedAlphabet TinyRanked() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("a0");
  (void)sigma.AddLeaf("b0");
  (void)sigma.AddBinary("a2");
  (void)sigma.AddBinary("b2");
  return sigma;
}

TEST(BinaryTreeTest, BuildAndNavigate) {
  RankedAlphabet sigma = TinyRanked();
  BinaryTree t;
  NodeId l = t.AddLeaf(sigma.Find("a0"));
  NodeId r = t.AddLeaf(sigma.Find("b0"));
  NodeId root = t.AddInternal(sigma.Find("a2"), l, r);
  t.SetRoot(root);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.left(root), l);
  EXPECT_EQ(t.right(root), r);
  EXPECT_EQ(t.parent(l), root);
  EXPECT_EQ(t.parent(root), kNoNode);
  EXPECT_TRUE(t.IsLeaf(l));
  EXPECT_FALSE(t.IsLeaf(root));
  EXPECT_TRUE(t.IsLeftChild(l));
  EXPECT_FALSE(t.IsLeftChild(r));
  EXPECT_TRUE(t.Validate(sigma).ok());
  EXPECT_EQ(t.Depth(), 2u);
  EXPECT_EQ(t.SubtreeSize(root), 3u);
  EXPECT_EQ(t.SubtreeSize(l), 1u);
}

TEST(BinaryTreeTest, ValidateCatchesMissingRoot) {
  RankedAlphabet sigma = TinyRanked();
  BinaryTree t;
  t.AddLeaf(sigma.Find("a0"));
  EXPECT_FALSE(t.Validate(sigma).ok());
}

TEST(BinaryTreeTest, ValidateCatchesUnreachableNode) {
  RankedAlphabet sigma = TinyRanked();
  BinaryTree t;
  NodeId root = t.AddLeaf(sigma.Find("a0"));
  t.AddLeaf(sigma.Find("b0"));  // orphan
  t.SetRoot(root);
  EXPECT_FALSE(t.Validate(sigma).ok());
}

TEST(BinaryTreeTest, ValidateCatchesRankViolation) {
  RankedAlphabet sigma = TinyRanked();
  BinaryTree t;
  NodeId leaf = t.AddLeaf(sigma.Find("a2"));  // binary symbol on a leaf
  t.SetRoot(leaf);
  EXPECT_FALSE(t.Validate(sigma).ok());
}

TEST(BinaryTreeTest, EqualityIsStructural) {
  RankedAlphabet sigma = TinyRanked();
  auto t1 = std::move(ParseBinaryTerm("a2(a0,b0)", sigma)).ValueOrDie();
  auto t2 = std::move(ParseBinaryTerm("a2( a0 , b0 )", sigma)).ValueOrDie();
  auto t3 = std::move(ParseBinaryTerm("a2(b0,a0)", sigma)).ValueOrDie();
  EXPECT_TRUE(t1 == t2);
  EXPECT_FALSE(t1 == t3);
}

TEST(BinaryTreeTest, CopySubtree) {
  RankedAlphabet sigma = TinyRanked();
  auto src =
      std::move(ParseBinaryTerm("a2(b2(a0,b0),a0)", sigma)).ValueOrDie();
  BinaryTree dst;
  NodeId copied = dst.CopySubtree(src, src.left(src.root()));
  dst.SetRoot(copied);
  auto want = std::move(ParseBinaryTerm("b2(a0,b0)", sigma)).ValueOrDie();
  EXPECT_TRUE(dst == want);
}

TEST(UnrankedTreeTest, BuildAndNavigate) {
  Alphabet sigma;
  UnrankedTree t;
  NodeId c1 = t.AddNode(sigma.Intern("b"));
  NodeId c2 = t.AddNode(sigma.Intern("c"));
  NodeId root = t.AddNode(sigma.Intern("a"), {c1, c2});
  t.SetRoot(root);
  EXPECT_TRUE(t.Validate(sigma).ok());
  EXPECT_EQ(t.children(root).size(), 2u);
  EXPECT_EQ(t.parent(c1), root);
  EXPECT_TRUE(t.IsLeaf(c2));
  EXPECT_EQ(t.Depth(), 2u);
}

TEST(TermTest, ParsePrintRoundtripUnranked) {
  Alphabet sigma;
  const std::string text = "a(b,b,c(d),e)";
  auto t = std::move(ParseUnrankedTerm(text, &sigma)).ValueOrDie();
  EXPECT_EQ(UnrankedTermString(t, sigma), text);
  EXPECT_EQ(t.size(), 6u);
}

TEST(TermTest, ParseUnrankedLeafParens) {
  Alphabet sigma;
  auto t1 = std::move(ParseUnrankedTerm("a(b(),c)", &sigma)).ValueOrDie();
  auto t2 = std::move(ParseUnrankedTerm("a(b,c)", &sigma)).ValueOrDie();
  EXPECT_TRUE(t1 == t2);
}

TEST(TermTest, ParseErrors) {
  Alphabet sigma;
  EXPECT_FALSE(ParseUnrankedTerm("", &sigma).ok());
  EXPECT_FALSE(ParseUnrankedTerm("a(", &sigma).ok());
  EXPECT_FALSE(ParseUnrankedTerm("a)b", &sigma).ok());
  EXPECT_FALSE(ParseUnrankedTerm("a b", &sigma).ok());
  EXPECT_FALSE(ParseUnrankedTerm("a(b,)", &sigma).ok());
}

TEST(TermTest, ParseBinaryChecksRanks) {
  RankedAlphabet sigma = TinyRanked();
  EXPECT_TRUE(ParseBinaryTerm("a2(a0,b0)", sigma).ok());
  EXPECT_FALSE(ParseBinaryTerm("a2(a0)", sigma).ok());      // arity 1
  EXPECT_FALSE(ParseBinaryTerm("a0(a0,b0)", sigma).ok());   // leaf w/ children
  EXPECT_FALSE(ParseBinaryTerm("a2", sigma).ok());          // binary as leaf
  EXPECT_FALSE(ParseBinaryTerm("zz", sigma).ok());          // unknown symbol
}

TEST(TermTest, BinaryRoundtrip) {
  RankedAlphabet sigma = TinyRanked();
  const std::string text = "a2(b2(a0,a0),b0)";
  auto t = std::move(ParseBinaryTerm(text, sigma)).ValueOrDie();
  EXPECT_EQ(BinaryTermString(t, sigma), text);
}

// --- Encoding (Figure 1) ---

TEST(EncodeTest, PaperFigure1Example) {
  // encode(a(b,b,c(d),e)) = a(-(b,-(b,-(c(d,|),e))),|)  with leaves b ≡ b(|,|)
  Alphabet tags;
  auto tree =
      std::move(ParseUnrankedTerm("a(b,b,c(d),e)", &tags)).ValueOrDie();
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  auto bin = std::move(EncodeTree(tree, enc)).ValueOrDie();
  EXPECT_TRUE(bin.Validate(enc.ranked).ok());
  const std::string want =
      "a(-(b(|,|),-(b(|,|),-(c(d(|,|),|),e(|,|)))),|)";
  EXPECT_EQ(BinaryTermString(bin, enc.ranked), want);
}

TEST(EncodeTest, SingleNode) {
  Alphabet tags;
  auto tree = std::move(ParseUnrankedTerm("a", &tags)).ValueOrDie();
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  auto bin = std::move(EncodeTree(tree, enc)).ValueOrDie();
  EXPECT_EQ(BinaryTermString(bin, enc.ranked), "a(|,|)");
}

TEST(EncodeTest, SingletonForestHasNoCons) {
  Alphabet tags;
  auto tree = std::move(ParseUnrankedTerm("a(b)", &tags)).ValueOrDie();
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  auto bin = std::move(EncodeTree(tree, enc)).ValueOrDie();
  EXPECT_EQ(BinaryTermString(bin, enc.ranked), "a(b(|,|),|)");
}

TEST(EncodeTest, DecodeInvertsEncode) {
  Alphabet tags;
  auto tree =
      std::move(ParseUnrankedTerm("r(a(b,c),d,e(f(g,h,i)))", &tags))
          .ValueOrDie();
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  auto bin = std::move(EncodeTree(tree, enc)).ValueOrDie();
  auto back = std::move(DecodeTree(bin, enc)).ValueOrDie();
  EXPECT_TRUE(back == tree);
}

TEST(EncodeTest, DecodeRejectsIllFormedEncodings) {
  Alphabet tags;
  tags.Intern("a");
  tags.Intern("b");
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  // Right child of a tag node must be '|'.
  auto bad1 = ParseBinaryTerm("a(|,b(|,|))", enc.ranked);
  ASSERT_TRUE(bad1.ok());
  EXPECT_FALSE(DecodeTree(*bad1, enc).ok());
  // Root must be a tag node.
  auto bad2 = ParseBinaryTerm("-(a(|,|),b(|,|))", enc.ranked);
  ASSERT_TRUE(bad2.ok());
  EXPECT_FALSE(DecodeTree(*bad2, enc).ok());
  // Left child of '-' must be a tag node.
  auto bad3 =
      ParseBinaryTerm("a(-(-(a(|,|),b(|,|)),b(|,|)),|)", enc.ranked);
  ASSERT_TRUE(bad3.ok());
  EXPECT_FALSE(DecodeTree(*bad3, enc).ok());
  // Bare '|' root.
  auto bad4 = ParseBinaryTerm("|", enc.ranked);
  ASSERT_TRUE(bad4.ok());
  EXPECT_FALSE(DecodeTree(*bad4, enc).ok());
}

// Property: encode/decode roundtrip on random trees, and size bookkeeping:
// encode adds one '-' per extra sibling and one '|' per node-with-children
// plus one per leaf... (exact: |encode(t)| = 2*|t| + 1 - (#nodes with >=1
// child... ) — we check the bijection, monotone size, and validity instead.
class EncodeRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodeRoundtripTest, RandomRoundtrip) {
  Rng rng(GetParam());
  Alphabet tags;
  for (const char* name : {"a", "b", "c", "d"}) tags.Intern(name);
  RandomUnrankedOptions opts;
  opts.target_size = 1 + rng.NextBelow(200);
  opts.max_children = 5;
  UnrankedTree t = RandomUnrankedTree(tags, rng, opts);
  ASSERT_TRUE(t.Validate(tags).ok());
  auto enc = std::move(MakeEncodedAlphabet(tags)).ValueOrDie();
  auto bin = std::move(EncodeTree(t, enc)).ValueOrDie();
  ASSERT_TRUE(bin.Validate(enc.ranked).ok());
  auto back = std::move(DecodeTree(bin, enc)).ValueOrDie();
  EXPECT_TRUE(back == t);
  // encode(t) has exactly one tag node per node of t.
  size_t tag_nodes = 0;
  for (NodeId n = 0; n < bin.size(); ++n) {
    SymbolId s = bin.symbol(n);
    if (s != enc.cons && s != enc.nil) ++tag_nodes;
  }
  EXPECT_EQ(tag_nodes, t.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeRoundtripTest,
                         ::testing::Range<uint64_t>(0, 50));

TEST(RandomTreeTest, BinaryTreeHasRequestedSize) {
  RankedAlphabet sigma = TinyRanked();
  Rng rng(42);
  for (size_t m : {0u, 1u, 5u, 100u}) {
    BinaryTree t = RandomBinaryTree(sigma, rng, m);
    EXPECT_TRUE(t.Validate(sigma).ok());
    EXPECT_EQ(t.size(), 2 * m + 1);
  }
}

TEST(RandomTreeTest, UnrankedTreeRespectsBudget) {
  Alphabet sigma;
  sigma.Intern("a");
  Rng rng(43);
  RandomUnrankedOptions opts;
  opts.target_size = 50;
  opts.max_children = 3;
  UnrankedTree t = RandomUnrankedTree(sigma, rng, opts);
  EXPECT_TRUE(t.Validate(sigma).ok());
  EXPECT_GE(t.size(), 1u);
  EXPECT_LE(t.size(), 53u);
}

TEST(RandomTreeTest, DeterministicGivenSeed) {
  RankedAlphabet sigma = TinyRanked();
  Rng r1(7), r2(7);
  BinaryTree a = RandomBinaryTree(sigma, r1, 40);
  BinaryTree b = RandomBinaryTree(sigma, r2, 40);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace pebbletc
