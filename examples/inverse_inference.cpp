// Example 4.2: type inference fails, inverse type inference succeeds.
//
// Part A reproduces the paper's query Q1 (all pairs of <a/> children: the
// map a^n -> n² output items, whose image is *not* a regular tree language)
// and verifies the inverse-type claim concretely: with the output type
// "an even number of items", exactly the inputs with an even number of a's
// conform — the (a.a)* of the paper.
//
// Part B runs the complete inverse-type-inference pipeline (Prop. 4.6 +
// Thm. 4.7 via MSO) on a small machine and checks the inferred automaton
// exactly.
//
// Build & run:  ./build/examples/inverse_inference

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/pt/paper_machines.h"
#include "src/query/selection.h"
#include "src/ta/nbta.h"
#include "src/tree/encode.h"
#include "src/tree/term.h"
#include "src/xml/xml.h"

using namespace pebbletc;

template <typename T>
T Get(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::cerr << what << ": " << r.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(r).value();
}

int main() {
  // ---------- Part A: Q1 and the (a.a)* inverse type ----------
  Alphabet in_tags;
  in_tags.Intern("root");
  in_tags.Intern("a");
  SelectionQuery q1;
  q1.pattern = Get(ParsePattern("[root]([root.a],[root.a])", &in_tags),
                   "parse Q1 pattern");
  q1.selected = 1;  // one <item/> per ($X, $Y) pair — n² of them

  Alphabet out_tags;
  SelectionOutputTags tags = ExtendAlphabetForSelection(in_tags, &out_tags);
  EncodedAlphabet in_enc = Get(MakeEncodedAlphabet(in_tags), "enc in");
  EncodedAlphabet out_enc = Get(MakeEncodedAlphabet(out_tags), "enc out");
  PebbleTransducer t =
      Get(CompileSelectionQuery(q1, in_enc, out_enc, tags), "compile Q1");
  std::cout << "Q1 as a " << t.max_pebbles() << "-pebble transducer ("
            << t.num_states() << " states)\n";

  // Output type τ2: an even number of items — result := (item.item)*.end.
  SpecializedDtd out_dtd = Get(ParseDtd(R"(
      result := (item.item)*.end
      item   := a
      a      := ()
      end    := ()
  )"),
                               "out dtd");
  // Align tag ids with the selection output alphabet by name.
  Nbta tau2_raw = Get(CompileDtdToNbta(out_dtd, Get(MakeEncodedAlphabet(
                                                        out_dtd.tags()),
                                                    "enc")),
                      "tau2");
  // The DTD's alphabet is ordered differently; rebuild τ2 over out_enc by
  // relabeling name-by-name.
  Alphabet dtd_tags = out_dtd.tags();
  EncodedAlphabet dtd_enc = Get(MakeEncodedAlphabet(dtd_tags), "dtd enc");
  std::vector<SymbolId> map(dtd_enc.ranked.size());
  for (SymbolId s = 0; s < dtd_enc.ranked.size(); ++s) {
    map[s] = out_enc.ranked.Find(dtd_enc.ranked.Name(s));
    if (map[s] == kNoSymbol) {
      std::cerr << "tag mismatch\n";
      return 1;
    }
  }
  Nbta tau2 = RelabelNbta(tau2_raw, map,
                          static_cast<uint32_t>(out_enc.ranked.size()));

  // Per-input exact checks (Prop. 3.8): conforms iff n is even — i.e. the
  // paper's inverse type (a.a)*.
  Typechecker tc(t, in_enc.ranked, out_enc.ranked);
  std::cout << "\n  n | #items = n^2 | T(a^n) ⊆ (item.item)*  [expect: even "
               "n only]\n";
  for (int n = 0; n <= 6; ++n) {
    std::string text = "root";
    if (n > 0) {
      text += "(a";
      for (int i = 1; i < n; ++i) text += ",a";
      text += ")";
    }
    UnrankedTree doc = Get(ParseUnrankedTerm(text, &in_tags), "doc");
    BinaryTree enc = Get(EncodeTree(doc, in_enc), "enc");
    bool ok = Get(tc.CheckOnInput(enc, tau2), "check");
    std::cout << "  " << n << " | " << (n * n) << " items | "
              << (ok ? "conforms" : "VIOLATES") << "\n";
  }
  std::cout << "\n=> the inverse type is exactly root := (a.a)* — regular, "
               "even though the image b^{n^2} is not.\n";

  // ---------- Part B: exact inverse inference via MSO (tiny machine) -----
  RankedAlphabet micro;
  (void)micro.AddLeaf("l");
  (void)micro.AddBinary("n");
  PebbleTransducer copy = MakeCopyTransducer(micro);
  // τ2: the root is the binary symbol n.
  Nbta tau2_micro;
  tau2_micro.num_symbols = 2;
  {
    StateId any = tau2_micro.AddState();
    StateId top = tau2_micro.AddState();
    tau2_micro.accepting[top] = true;
    tau2_micro.AddLeafRule(micro.Find("l"), any);
    tau2_micro.AddRule(micro.Find("n"), any, any, any);
    tau2_micro.AddRule(micro.Find("n"), any, any, top);
  }
  Typechecker tc2(copy, micro, micro);
  Nbta inverse = Get(tc2.InferInverseType(tau2_micro), "infer inverse");
  bool equal =
      Get(NbtaEquivalent(inverse, tau2_micro, micro), "compare");
  std::cout << "\nPart B — complete inverse-inference pipeline (Prop 4.6 "
               "product + regularization):\n"
            << "  inverse type of τ2 under the identity transducer ≡ τ2: "
            << (equal ? "verified" : "MISMATCH") << "  (inferred automaton: "
            << inverse.num_states << " states)\n";
  return 0;
}
