// Quickstart: the full pebbletc workflow in one file.
//
//   1. Parse an XML document and DTDs.
//   2. Write a small XSLT-fragment program and compile it to a k-pebble
//      transducer (the paper's model of XML transformations).
//   3. Run the transducer on the document.
//   4. Statically typecheck the transformation: does every valid input map
//      to a valid output? (Theorem 4.4.)
//
// Build & run:  ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/pt/eval.h"
#include "src/query/xslt.h"
#include "src/tree/encode.h"
#include "src/xml/xml.h"

using namespace pebbletc;

// Dies with a message on error — fine for an example.
template <typename T>
T Get(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::cerr << what << ": " << r.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(r).value();
}

int main() {
  // --- 1. The transformation: rename every <article> to <item>, wrap its
  //        content, and drop nothing.
  Alphabet input_tags, output_tags;
  XsltProgram program = Get(ParseXslt(R"(
    template catalog { list  { apply } }
    template article { item  { apply } }
    template author  { byline }
  )",
                                      &input_tags, &output_tags),
                            "parse program");

  // --- 2. The document.
  UnrankedTree doc = Get(ParseXml(R"(
    <catalog>
      <article> <author/> <author/> </article>
      <article> <author/> </article>
    </catalog>)",
                                  &input_tags),
                         "parse document");
  std::cout << "input:  " << XmlString(doc, input_tags) << "\n";

  // --- 3. Compile and run. Everything happens on binary encodings
  //        (Section 2.1 of the paper); encode/decode are exact inverses.
  EncodedAlphabet in_enc = Get(MakeEncodedAlphabet(input_tags), "encode in");
  EncodedAlphabet out_enc =
      Get(MakeEncodedAlphabet(output_tags), "encode out");
  PebbleTransducer transducer =
      Get(CompileXslt(program, in_enc, out_enc), "compile program");
  std::cout << "compiled to a " << transducer.max_pebbles()
            << "-pebble transducer with " << transducer.num_states()
            << " states\n";

  BinaryTree encoded = Get(EncodeTree(doc, in_enc), "encode doc");
  BinaryTree out_encoded =
      Get(EvalDeterministic(transducer, encoded), "run transducer");
  UnrankedTree out = Get(DecodeTree(out_encoded, out_enc), "decode output");
  std::cout << "output: " << XmlString(out, output_tags) << "\n";

  // --- 4. Static typechecking against DTDs.
  SpecializedDtd input_dtd = Get(ParseDtd(R"(
    catalog := article*
    article := author*
    author  := ()
  )"),
                                 "parse input DTD");
  SpecializedDtd output_dtd = Get(ParseDtd(R"(
    list   := item*
    item   := byline*
    byline := ()
  )"),
                                  "parse output DTD");
  Nbta tau1 = Get(CompileDtdToNbta(input_dtd, in_enc), "compile input DTD");
  Nbta tau2 = Get(CompileDtdToNbta(output_dtd, out_enc), "compile output DTD");

  Typechecker tc(transducer, in_enc.ranked, out_enc.ranked);
  TypecheckResult verdict = Get(tc.Typecheck(tau1, tau2), "typecheck");
  std::cout << "typecheck vs correct output DTD: "
            << (verdict.verdict == TypecheckVerdict::kTypechecks
                    ? "TYPECHECKS"
                    : "FAILED")
            << "  (method: " << verdict.method << ")\n";

  // A wrong output DTD (items may not be empty) is refuted with a concrete
  // counterexample document.
  SpecializedDtd wrong_dtd = Get(ParseDtd(R"(
    list   := item*
    item   := byline.byline*
    byline := ()
  )"),
                                 "parse wrong DTD");
  Nbta tau2_wrong =
      Get(CompileDtdToNbta(wrong_dtd, out_enc), "compile wrong DTD");
  TypecheckResult refuted = Get(tc.Typecheck(tau1, tau2_wrong), "typecheck");
  std::cout << "typecheck vs wrong output DTD:   "
            << (refuted.verdict == TypecheckVerdict::kCounterexample
                    ? "COUNTEREXAMPLE"
                    : "unexpected")
            << "\n";
  if (refuted.counterexample_input.has_value()) {
    UnrankedTree bad_doc =
        Get(DecodeTree(*refuted.counterexample_input, in_enc), "decode");
    std::cout << "  offending input: " << XmlString(bad_doc, input_tags)
              << "\n";
  }
  return 0;
}
