// Example 4.3 end-to-end: the XSLT query Q2 and its typechecking story.
//
// Q2 maps <root> a^n </root> to <result> b a^n b a^n b a^n </result>. The
// paper uses it to show that type *inference* fails (the image language is
// not a DTD), while typechecking against a candidate output DTD is still
// decidable.
//
// Build & run:  ./build/examples/xslt_pipeline

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/pt/eval.h"
#include "src/query/xslt.h"
#include "src/tree/encode.h"
#include "src/xml/xml.h"

using namespace pebbletc;

template <typename T>
T Get(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::cerr << what << ": " << r.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(r).value();
}

int main() {
  Alphabet in_tags, out_tags;
  XsltProgram q2 = Get(ParseXslt(R"(
    # Example 4.3 (query Q2)
    template root { result { b; apply; b; apply; b; apply } }
    template a    { a }
  )",
                                 &in_tags, &out_tags),
                       "parse Q2");
  EncodedAlphabet in_enc = Get(MakeEncodedAlphabet(in_tags), "enc in");
  EncodedAlphabet out_enc = Get(MakeEncodedAlphabet(out_tags), "enc out");
  PebbleTransducer t = Get(CompileXslt(q2, in_enc, out_enc), "compile Q2");
  std::cout << "Q2 compiled: " << t.max_pebbles() << " pebble, "
            << t.num_states() << " states\n\n";

  // Watch the characteristic shape a^n -> b a^n b a^n b a^n.
  for (int n = 0; n <= 3; ++n) {
    std::string text = "<root>";
    for (int i = 0; i < n; ++i) text += "<a/>";
    text += "</root>";
    UnrankedTree doc = Get(ParseXml(text, &in_tags), "parse");
    BinaryTree enc = Get(EncodeTree(doc, in_enc), "encode");
    BinaryTree out_bin = Get(EvalDeterministic(t, enc), "run");
    UnrankedTree out = Get(DecodeTree(out_bin, out_enc), "decode");
    std::cout << "  " << text << "\n    -> " << XmlString(out, out_tags)
              << "\n";
  }

  // Typechecking (Theorem 4.4). Input DTD: root := a*.
  SpecializedDtd in_dtd = Get(ParseDtd("root := a*\na := ()"), "in dtd");
  Nbta tau1 = Get(CompileDtdToNbta(in_dtd, in_enc), "tau1");

  // Correct output DTD captures the image shape...
  SpecializedDtd good = Get(
      ParseDtd("result := b.a*.b.a*.b.a*\nb := ()\na := ()"), "good dtd");
  Nbta tau2_good = Get(CompileDtdToNbta(good, out_enc), "tau2");
  // ...while a DTD missing the last block is violated by every input.
  SpecializedDtd bad = Get(
      ParseDtd("result := b.a*.b.a*.b\nb := ()\na := ()"), "bad dtd");
  Nbta tau2_bad = Get(CompileDtdToNbta(bad, out_enc), "tau2 bad");

  Typechecker tc(t, in_enc.ranked, out_enc.ranked);
  TypecheckOptions opts;
  // Q2 re-walks the child list three times, which needs up-moves; the
  // complete pipelines don't scale to its product automaton, so this run
  // showcases the exact bounded refutation: every small input is checked
  // *exactly* via the Prop. 3.8 automaton A_t.
  opts.run_complete_decision = false;
  opts.refutation_max_trees = 50;
  opts.refutation_max_nodes = 31;

  TypecheckResult r_bad = Get(tc.Typecheck(tau1, tau2_bad, opts), "tc bad");
  std::cout << "\nvs wrong DTD  (result := b.a*.b.a*.b):   "
            << (r_bad.verdict == TypecheckVerdict::kCounterexample
                    ? "COUNTEREXAMPLE"
                    : "unexpected")
            << "\n";
  if (r_bad.counterexample_input.has_value()) {
    UnrankedTree doc =
        Get(DecodeTree(*r_bad.counterexample_input, in_enc), "decode");
    std::cout << "  offending input: " << XmlString(doc, in_tags) << "\n";
  }

  TypecheckResult r_good =
      Get(tc.Typecheck(tau1, tau2_good, opts), "tc good");
  std::cout << "vs correct DTD (result := b.a*.b.a*.b.a*): "
            << (r_good.verdict == TypecheckVerdict::kCounterexample
                    ? "refuted (bug!)"
                    : "no violation found on all bounded inputs")
            << "\n";

  // The per-input check is exact for any single document (Prop. 3.8):
  UnrankedTree doc =
      Get(ParseXml("<root><a/><a/><a/><a/></root>", &in_tags), "doc");
  BinaryTree enc = Get(EncodeTree(doc, in_enc), "enc");
  bool conforms = Get(tc.CheckOnInput(enc, tau2_good), "check");
  std::cout << "exact per-input check on n=4: "
            << (conforms ? "conforms" : "violates") << "\n";
  return 0;
}
