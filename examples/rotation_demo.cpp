// Example 3.7 (Figure 2): re-rooting a tree around its unique s-leaf with a
// single pebble — including the paper's remark that this machine reverses
// strings encoded as right-linear trees.
//
// Build & run:  ./build/examples/rotation_demo

#include <cstdlib>
#include <iostream>

#include "src/pt/eval.h"
#include "src/pt/paper_machines.h"
#include "src/tree/term.h"

using namespace pebbletc;

template <typename T>
T Get(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::cerr << what << ": " << r.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(r).value();
}

int main() {
  RankedAlphabet sigma;
  (void)sigma.AddLeaf("e");
  (void)sigma.AddLeaf("s");
  (void)sigma.AddBinary("x");
  (void)sigma.AddBinary("y");
  (void)sigma.AddBinary("r");
  RankedAlphabet out_sigma = sigma;
  RotationSymbols syms;
  syms.s_leaf = sigma.Find("s");
  syms.root_symbol = sigma.Find("r");
  syms.new_root = Get(out_sigma.AddBinary("r2"), "r2");
  syms.m_leaf = Get(out_sigma.AddLeaf("m"), "m");
  syms.n_leaf = Get(out_sigma.AddLeaf("n"), "n");

  PebbleTransducer t =
      Get(MakeRotationTransducer(sigma, out_sigma, syms), "build machine");
  std::cout << "rotation transducer: " << t.max_pebbles() << " pebble, "
            << t.num_states() << " states\n\n";

  for (const char* term :
       {"r(x(e,s),e)", "r(x(y(x(s,e),e),y(e,e)),x(e,e))",
        // A "string" r.x.y as a right-linear tree — rotation reverses it.
        "r(e,x(e,y(e,s)))"}) {
    BinaryTree input = Get(ParseBinaryTerm(term, sigma), "parse");
    BinaryTree output = Get(EvalDeterministic(t, input), "run");
    std::cout << "  " << term << "\n    -> "
              << BinaryTermString(output, out_sigma) << "    ("
              << input.size() << " -> " << output.size() << " nodes)\n";
  }
  std::cout << "\n(the rotation adds exactly the two fresh nodes m and n, as "
               "in Figure 2)\n";
  return 0;
}
