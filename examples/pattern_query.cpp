// Selection queries on XML documents — the Example 3.5 pipeline.
//
// A tree pattern with regular path expressions is compiled to an
// (m+2)-pebble transducer that enumerates all matches with pebbles and
// copies each binding of the selected variable into the result document.
//
// Build & run:  ./build/examples/pattern_query

#include <cstdlib>
#include <iostream>

#include "src/pt/eval.h"
#include "src/query/selection.h"
#include "src/tree/encode.h"
#include "src/xml/xml.h"

using namespace pebbletc;

template <typename T>
T Get(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::cerr << what << ": " << r.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(r).value();
}

int main() {
  Alphabet tags;
  UnrankedTree doc = Get(ParseXml(R"(
    <bib>
      <book> <title/> <author/> <author/> </book>
      <book> <title/> </book>
      <paper> <title/> <author/> </paper>
    </bib>)",
                                  &tags),
                         "parse document");
  std::cout << "document: " << XmlString(doc, tags) << "\n\n";

  // Query: the books that have an author; return the whole <book>.
  SelectionQuery query;
  query.pattern =
      Get(ParsePattern("[bib.book]([book.author])", &tags), "parse pattern");
  query.selected = 0;

  // Direct semantics: enumerate matches.
  auto matches =
      MatchPattern(query.pattern, doc, static_cast<uint32_t>(tags.size()));
  std::cout << "pattern matches (tuples of bound nodes): " << matches.size()
            << "\n";

  // Compile to a pebble transducer (Example 3.5): m pattern nodes need
  // m + 2 pebbles (root marker + variables + checker).
  Alphabet out_tags;
  SelectionOutputTags out = ExtendAlphabetForSelection(tags, &out_tags);
  EncodedAlphabet in_enc = Get(MakeEncodedAlphabet(tags), "enc in");
  EncodedAlphabet out_enc = Get(MakeEncodedAlphabet(out_tags), "enc out");
  PebbleTransducer t =
      Get(CompileSelectionQuery(query, in_enc, out_enc, out), "compile");
  std::cout << "compiled machine: " << t.max_pebbles() << " pebbles, "
            << t.num_states() << " states, " << t.transitions().size()
            << " transitions\n\n";

  BinaryTree encoded = Get(EncodeTree(doc, in_enc), "encode");
  BinaryTree result_bin =
      Get(EvalDeterministic(t, encoded, 100'000'000), "run");
  UnrankedTree result = Get(DecodeTree(result_bin, out_enc), "decode");
  std::cout << "query result:\n"
            << XmlString(result, out_tags, /*indent=*/true);

  // The reference semantics agrees, of course.
  UnrankedTree reference =
      Get(EvalSelectionReference(query, doc, tags, out), "reference");
  std::cout << "\nmachine output == reference semantics: "
            << (result == reference ? "yes" : "NO (bug!)") << "\n";

  // Prop. 3.8: the per-input configuration space is polynomial.
  OutputAutomaton dag = Get(BuildOutputAutomaton(t, encoded), "A_t");
  std::cout << "Prop 3.8 output automaton: " << dag.num_configs
            << " configurations on a " << encoded.size()
            << "-node encoded input\n";
  return 0;
}
