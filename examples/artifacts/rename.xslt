template a { b { apply } }
template c { d }
