// pebbletc_cli — command-line typechecker for XSLT-fragment programs.
//
// Usage:
//   pebbletc_cli typecheck <program.xslt> <input.dtd> <output.dtd>
//   pebbletc_cli run       <program.xslt> <doc.xml>
//   pebbletc_cli validate  <doc.xml> <schema.dtd>
//
// File formats are the library's text formats (see README): the XSLT
// fragment, plain/specialized DTDs, and element-only XML.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/pt/eval.h"
#include "src/query/xslt.h"
#include "src/tree/encode.h"
#include "src/xml/xml.h"

using namespace pebbletc;

namespace {

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 2;
}

template <typename T>
T Get(Result<T> r, const char* what, int* error) {
  if (!r.ok()) {
    *error = Fail(std::string(what) + ": " + r.status().ToString());
    std::exit(*error);
  }
  return std::move(r).value();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int CmdTypecheck(const std::string& program_path, const std::string& in_path,
                 const std::string& out_path) {
  int error = 0;
  std::string program_text = Get(ReadFile(program_path), "program", &error);
  std::string in_text = Get(ReadFile(in_path), "input DTD", &error);
  std::string out_text = Get(ReadFile(out_path), "output DTD", &error);

  Alphabet in_tags, out_tags;
  XsltProgram program =
      Get(ParseXslt(program_text, &in_tags, &out_tags), "program", &error);
  SpecializedDtd in_dtd =
      Get(ParseSpecializedDtd(in_text), "input DTD", &error);
  SpecializedDtd out_dtd =
      Get(ParseSpecializedDtd(out_text), "output DTD", &error);
  // The program must at least cover the DTD's tags.
  for (SymbolId t = 0; t < in_dtd.tags().size(); ++t) {
    in_tags.Intern(in_dtd.tags().Name(t));
  }
  for (SymbolId t = 0; t < out_dtd.tags().size(); ++t) {
    out_tags.Intern(out_dtd.tags().Name(t));
  }
  EncodedAlphabet in_enc =
      Get(MakeEncodedAlphabet(in_tags), "input alphabet", &error);
  EncodedAlphabet out_enc =
      Get(MakeEncodedAlphabet(out_tags), "output alphabet", &error);
  PebbleTransducer t =
      Get(CompileXslt(program, in_enc, out_enc), "compile", &error);
  Nbta tau1 = Get(CompileDtdOver(in_dtd, in_enc), "input type", &error);
  Nbta tau2 = Get(CompileDtdOver(out_dtd, out_enc), "output type", &error);

  Typechecker tc(t, in_enc.ranked, out_enc.ranked);
  TypecheckResult r = Get(tc.Typecheck(tau1, tau2), "typecheck", &error);
  switch (r.verdict) {
    case TypecheckVerdict::kTypechecks:
      std::cout << "TYPECHECKS (" << r.method << ")\n";
      return 0;
    case TypecheckVerdict::kCounterexample: {
      std::cout << "COUNTEREXAMPLE (" << r.method << ")\n";
      if (r.counterexample_input.has_value()) {
        auto doc = DecodeTree(*r.counterexample_input, in_enc);
        if (doc.ok()) {
          std::cout << "  input:  " << XmlString(*doc, in_tags) << "\n";
        }
      }
      if (r.counterexample_output.has_value()) {
        auto doc = DecodeTree(*r.counterexample_output, out_enc);
        if (doc.ok()) {
          std::cout << "  output: " << XmlString(*doc, out_tags) << "\n";
        }
      }
      return 1;
    }
    case TypecheckVerdict::kInconclusive:
      std::cout << "INCONCLUSIVE";
      if (!r.notes.empty()) std::cout << " (" << r.notes << ")";
      std::cout << "\n";
      return 3;
  }
  return 2;
}

int CmdRun(const std::string& program_path, const std::string& doc_path) {
  int error = 0;
  std::string program_text = Get(ReadFile(program_path), "program", &error);
  std::string doc_text = Get(ReadFile(doc_path), "document", &error);
  Alphabet in_tags, out_tags;
  XsltProgram program =
      Get(ParseXslt(program_text, &in_tags, &out_tags), "program", &error);
  UnrankedTree doc = Get(ParseXml(doc_text, &in_tags), "document", &error);
  EncodedAlphabet in_enc =
      Get(MakeEncodedAlphabet(in_tags), "input alphabet", &error);
  EncodedAlphabet out_enc =
      Get(MakeEncodedAlphabet(out_tags), "output alphabet", &error);
  PebbleTransducer t =
      Get(CompileXslt(program, in_enc, out_enc), "compile", &error);
  BinaryTree encoded = Get(EncodeTree(doc, in_enc), "encode", &error);
  BinaryTree out_bin = Get(EvalDeterministic(t, encoded), "run", &error);
  UnrankedTree out = Get(DecodeTree(out_bin, out_enc), "decode", &error);
  std::cout << XmlString(out, out_tags, /*indent=*/true);
  return 0;
}

int CmdValidate(const std::string& doc_path, const std::string& dtd_path) {
  int error = 0;
  std::string doc_text = Get(ReadFile(doc_path), "document", &error);
  std::string dtd_text = Get(ReadFile(dtd_path), "DTD", &error);
  SpecializedDtd dtd = Get(ParseSpecializedDtd(dtd_text), "DTD", &error);
  UnrankedTree doc =
      Get(ParseXml(doc_text, dtd.mutable_tags()), "document", &error);
  Status s = dtd.Validate(doc);
  if (s.ok()) {
    std::cout << "VALID\n";
    return 0;
  }
  std::cout << "INVALID: " << s.message() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage:\n"
      "  pebbletc_cli typecheck <program.xslt> <input.dtd> <output.dtd>\n"
      "  pebbletc_cli run       <program.xslt> <doc.xml>\n"
      "  pebbletc_cli validate  <doc.xml> <schema.dtd>\n";
  if (argc < 2) {
    std::cerr << usage;
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "typecheck" && argc == 5) {
    return CmdTypecheck(argv[2], argv[3], argv[4]);
  }
  if (cmd == "run" && argc == 4) {
    return CmdRun(argv[2], argv[3]);
  }
  if (cmd == "validate" && argc == 4) {
    return CmdValidate(argv[2], argv[3]);
  }
  std::cerr << usage;
  return 2;
}
