// Differential / metamorphic oracle for the tree-automaton algebra.
//
// The typechecking pipeline (Theorem 4.4) is a chain of Boolean-algebra
// operations on tree automata; a single silent language-preservation bug in
// any link makes every verdict unsound. RunDiffcheck draws seeded random
// automata (src/ta/random_ta.h), enumerates every small well-ranked tree
// plus random deeper samples, and asserts, per tree,
//
//   * agreement of every optimized op (src/ta/nbta.h, built on NbtaIndex)
//     with its deliberately-naive reference twin (reference_ops.h), and
//   * the algebraic laws the paper's constructions rely on: De Morgan for
//     intersect/union/complement, complement involution relative to
//     well-ranked trees, determinization and trim/minimize language
//     preservation, top-down/bottom-up round-tripping, relabeling laws,
//     Encode∘Decode identity, count-vs-enumerate consistency, and
//     typechecker verdict agreement against a full reference decision for
//     the copy transducer.
//
// Failing witnesses are shrunk (shrink.h) to locally-minimal reproducers and
// rendered as ready-to-paste regression test bodies. Everything is
// deterministic in (seed, iteration): iteration i draws from an Rng derived
// from the seed and i alone, so a failure report can be replayed with
// --seed=S --start=I --iters=1.
//
// See docs/DIFFCHECK.md for the law catalogue and the shrinking strategy.

#ifndef PEBBLETC_CHECK_DIFFCHECK_H_
#define PEBBLETC_CHECK_DIFFCHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/ta/nbta.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

struct DiffcheckOptions {
  uint64_t seed = 0x20260806;
  /// First iteration index (for replaying a reported failure).
  size_t start = 0;
  size_t iters = 1000;
  /// Exhaustive tree enumeration covers every well-ranked tree with at most
  /// this many nodes (odd sizes only).
  size_t exhaustive_max_nodes = 5;
  /// Random sampled trees per iteration reach up to 2^max_depth - 1 internal
  /// nodes, probing shapes the exhaustive set cannot afford.
  size_t max_depth = 3;
  size_t samples_per_iter = 8;
  /// Stop after this many failures (each law reports at most one).
  size_t max_failures = 5;
  /// Run the typechecker-verdict laws every Nth iteration (0 = never); they
  /// drive the whole Theorem 4.4 pipeline and dominate runtime.
  size_t typecheck_every = 8;
  /// Run inverse-type-inference agreement every Nth iteration (0 = never).
  size_t infer_every = 0;
  /// Wall-clock deadline per typechecker / inference call (0 = none). A
  /// pathological instance then degrades to a tallied budget skip instead of
  /// stalling the sweep; verdicts reached within the deadline are still held
  /// to exactness.
  size_t typecheck_deadline_ms = 10000;
  /// Complement the 12-state union and 36-state intersection products every
  /// Nth iteration (0 = never). Their subset constructions are the most
  /// expensive artifacts in the catalogue, so they run on a cadence.
  size_t demorgan_every = 4;
  /// Shrink failing witnesses to minimal reproducers before reporting.
  bool shrink = true;
  /// Budget for each optimized determinization; exhaustion skips the law for
  /// that instance (counted in DiffcheckReport::budget_skips).
  size_t max_det_states = 50000;
  /// Sweep workers (docs/PARALLEL.md): 0 = hardware concurrency, 1 = serial.
  /// Above 1 the iteration range splits into contiguous per-worker shards.
  /// Iterations are deterministic in (seed, iteration) alone — ops *inside*
  /// an iteration always run serial — so any failure found by a sharded
  /// sweep replays exactly with --seed=S --start=I --iters=1 --threads=1.
  uint32_t num_threads = 1;
  /// Cached-vs-cold laws for the content-addressed op cache
  /// (docs/CACHING.md): replaying an op through a fresh cache returns the
  /// byte-identical automaton with exact hit/miss accounting; ops served
  /// through a harness-owned cache that persists across iterations agree on
  /// language with the cold results; and the typechecker verdict is
  /// unchanged under TypecheckOptions::memo.
  bool memo = false;
  /// Optional persistent directory for the harness-owned cache: every insert
  /// then also exercises the binary write-through (docs/FORMATS.md).
  std::string memo_dir;
  /// Capacity of the harness-owned cache, in MiB.
  size_t memo_mb = 64;
};

/// One law violation, with a shrunk, replayable reproducer.
struct DiffcheckFailure {
  /// Law identifier, e.g. "complement/lang" or "typecheck/verdict".
  std::string law;
  size_t iteration = 0;
  uint64_t seed = 0;
  /// One-line description of the mismatch.
  std::string detail;
  /// Ready-to-paste C++ test body reconstructing the shrunk witness.
  std::string repro;
};

struct DiffcheckReport {
  size_t iterations = 0;
  /// Individual law evaluations performed.
  size_t comparisons = 0;
  /// Instances skipped because an optimized op exhausted its budget.
  size_t budget_skips = 0;
  std::vector<DiffcheckFailure> failures;
  /// Occurrences per law beyond the first reported failure.
  size_t suppressed_failures = 0;
  /// The contiguous iteration shard each worker ran (empty for a serial
  /// sweep). Reported so a sharded sweep's summary pins down exactly which
  /// worker covered which --start/--iters window.
  struct WorkerRange {
    uint32_t worker = 0;
    size_t start = 0;
    size_t iters = 0;
  };
  std::vector<WorkerRange> worker_ranges;
  bool ok() const { return failures.empty(); }
};

/// Runs the whole law catalogue. Deterministic in `options`.
DiffcheckReport RunDiffcheck(const DiffcheckOptions& options);

/// The fixed alphabet the harness draws over: leaves a0,b0 and binaries
/// a2,b2; the extended variant appends u0 (leaf) and u2 (binary), which the
/// relabeling laws map back onto a0/a2 and which automata may leave entirely
/// ruleless (the MSO track-extension shape).
RankedAlphabet DiffcheckAlphabet(bool extended);

/// Renders C++ statements reconstructing `a` as variable `var` (symbol ids
/// annotated with their names from `sigma`). Used for repro emission.
std::string FormatNbtaConstruction(const Nbta& a, const RankedAlphabet& sigma,
                                   const std::string& var);

}  // namespace pebbletc

#endif  // PEBBLETC_CHECK_DIFFCHECK_H_
