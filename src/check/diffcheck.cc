#include "src/check/diffcheck.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/check/reference_ops.h"
#include "src/check/shrink.h"
#include "src/common/check.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/typechecker.h"
#include "src/pt/paper_machines.h"
#include "src/ta/convert.h"
#include "src/ta/enumerate.h"
#include "src/ta/inclusion.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"
#include "src/serve/validate.h"
#include "src/ta/membership.h"
#include "src/ta/op_cache.h"
#include "src/ta/op_context.h"
#include "src/ta/serialize.h"
#include "src/ta/random_ta.h"
#include "src/ta/thread_pool.h"
#include "src/ta/topdown.h"
#include "src/tree/encode.h"
#include "src/tree/random_tree.h"
#include "src/tree/term.h"
#include "src/xml/xml.h"

namespace pebbletc {

namespace {

// Extended-alphabet symbols mapped back onto the base alphabet: a0,b0,a2,b2
// are fixed by the relabeling, u0 -> a0 and u2 -> a2 (rank-preserving).
const std::vector<SymbolId> kExtToBase = {0, 1, 2, 3, 0, 2};

// splitmix64-style mixing so that (seed, iteration) pairs land on
// well-separated Rng streams even for adjacent seeds.
uint64_t MixSeed(uint64_t seed, uint64_t iteration) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (iteration + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// `tree` with every symbol s replaced by map[s]. The map must be
// rank-preserving for the result to be well-ranked.
BinaryTree RelabelTree(const BinaryTree& tree,
                       const std::vector<SymbolId>& map) {
  BinaryTree out;
  std::vector<NodeId> copied(tree.size());
  // NodeId order has children before parents, so one forward pass suffices.
  for (NodeId n = 0; n < tree.size(); ++n) {
    SymbolId s = map[tree.symbol(n)];
    copied[n] = tree.IsLeaf(n)
                    ? out.AddLeaf(s)
                    : out.AddInternal(s, copied[tree.left(n)],
                                      copied[tree.right(n)]);
  }
  out.SetRoot(copied[tree.root()]);
  return out;
}

// Does any preimage of `u` under `map` (a tree over the larger alphabet that
// relabels to `u`) lie in inst(a)? Brute force over all symbol choices.
bool HasAcceptedPreimage(const Nbta& a, const BinaryTree& u,
                         const std::vector<SymbolId>& map,
                         const RankedAlphabet& large_sigma) {
  // by_small[s] = symbols of the larger alphabet mapping to s.
  std::vector<std::vector<SymbolId>> by_small;
  for (SymbolId big = 0; big < map.size(); ++big) {
    SymbolId small = map[big];
    if (by_small.size() <= small) by_small.resize(small + 1);
    by_small[small].push_back(big);
  }
  std::vector<SymbolId> choice(u.size());
  std::function<bool(NodeId)> assign = [&](NodeId n) -> bool {
    if (n == u.size()) {
      BinaryTree candidate;
      std::vector<NodeId> copied(u.size());
      for (NodeId m = 0; m < u.size(); ++m) {
        copied[m] = u.IsLeaf(m)
                        ? candidate.AddLeaf(choice[m])
                        : candidate.AddInternal(choice[m],
                                                copied[u.left(m)],
                                                copied[u.right(m)]);
      }
      candidate.SetRoot(copied[u.root()]);
      return RefAccepts(a, candidate);
    }
    for (SymbolId big : by_small[u.symbol(n)]) {
      bool rank_ok = u.IsLeaf(n) ? large_sigma.IsLeaf(big)
                                 : large_sigma.IsBinary(big);
      if (!rank_ok) continue;
      choice[n] = big;
      if (assign(n + 1)) return true;
    }
    return false;
  };
  return assign(0);
}

TaOpContext BudgetCtx(const DiffcheckOptions& opts) {
  TaOpContext ctx;
  ctx.budgets.max_det_states = opts.max_det_states;
  return ctx;
}

using Pred1 = std::function<bool(const Nbta&, const BinaryTree&)>;
using Pred2 =
    std::function<bool(const Nbta&, const Nbta&, const BinaryTree&)>;
using PredA = std::function<bool(const Nbta&)>;

// Joint shrink of a two-automata-plus-tree witness: round-robin over the
// three components until a full round makes no progress.
void ShrinkTwoNbtaAndTree(Nbta* a, Nbta* b, BinaryTree* tree,
                          const Pred2& still_fails) {
  bool progress = true;
  while (progress) {
    const size_t before = a->num_states + a->rules.size() +
                          a->leaf_rules.size() + b->num_states +
                          b->rules.size() + b->leaf_rules.size() +
                          tree->size();
    *a = ShrinkNbta(std::move(*a), [&](const Nbta& ca) {
      return still_fails(ca, *b, *tree);
    });
    *b = ShrinkNbta(std::move(*b), [&](const Nbta& cb) {
      return still_fails(*a, cb, *tree);
    });
    *tree = ShrinkTree(std::move(*tree), [&](const BinaryTree& ct) {
      return still_fails(*a, *b, ct);
    });
    progress = a->num_states + a->rules.size() + a->leaf_rules.size() +
                   b->num_states + b->rules.size() + b->leaf_rules.size() +
                   tree->size() <
               before;
  }
}

std::string CanonicalKey(const BinaryTree& t, const RankedAlphabet& sigma) {
  return BinaryTermString(t, sigma);
}

class Harness {
 public:
  // `shared_failures` (optional) is a sweep-wide failure tally shared by the
  // workers of a sharded run: every worker bumps it on Fail() and stops once
  // it crosses max_failures, so one worker's findings cap the whole sweep.
  explicit Harness(const DiffcheckOptions& opts,
                   std::atomic<size_t>* shared_failures = nullptr)
      : opts_(opts),
        shared_failures_(shared_failures),
        base_(DiffcheckAlphabet(false)),
        ext_(DiffcheckAlphabet(true)) {
    if (opts_.memo) {
      memo_cache_.emplace(opts_.memo_mb << 20);
      if (!opts_.memo_dir.empty()) {
        // Attach failures are not law violations; the in-memory cache still
        // exercises every cached-vs-cold law.
        (void)memo_cache_->AttachPersistentDir(opts_.memo_dir);
      }
    }
    exhaustive_base_ = AllTreesUpToNodes(base_, opts_.exhaustive_max_nodes,
                                         kExhaustiveCap, &trunc_base_);
    exhaustive_ext_ = AllTreesUpToNodes(ext_, opts_.exhaustive_max_nodes,
                                        kExhaustiveCap, &trunc_ext_);
    tags_.Intern("p");
    tags_.Intern("q");
    tags_.Intern("r");
    enc_ = std::move(MakeEncodedAlphabet(tags_)).ValueOrDie();
  }

  DiffcheckReport Run() {
    for (size_t i = opts_.start; i < opts_.start + opts_.iters; ++i) {
      if (report_.failures.size() >= opts_.max_failures) break;
      if (shared_failures_ != nullptr &&
          shared_failures_->load(std::memory_order_relaxed) >=
              opts_.max_failures) {
        break;
      }
      RunIteration(i);
      ++report_.iterations;
    }
    return std::move(report_);
  }

 private:
  static constexpr size_t kExhaustiveCap = 1000;
  // Per-tree laws on determinization-sized automata (complement and the
  // De Morgan composites) only probe every kProbeStride-th exhaustive tree.
  static constexpr size_t kProbeStride = 7;

  bool LawDone(const char* law) const { return failed_laws_.count(law) != 0; }

  void Fail(const char* law, size_t iter, const std::string& detail,
            const std::string& repro) {
    if (LawDone(law) || report_.failures.size() >= opts_.max_failures) {
      ++report_.suppressed_failures;
      return;
    }
    failed_laws_.insert(law);
    if (shared_failures_ != nullptr) {
      shared_failures_->fetch_add(1, std::memory_order_relaxed);
    }
    DiffcheckFailure f;
    f.law = law;
    f.iteration = iter;
    f.seed = opts_.seed;
    f.detail = detail;
    f.repro = repro;
    report_.failures.push_back(std::move(f));
  }

  std::string Repro(const char* law, size_t iter, bool extended,
                    const Nbta* a, const Nbta* b, const BinaryTree* t,
                    const std::string& expect) {
    const RankedAlphabet& sigma = extended ? ext_ : base_;
    std::ostringstream os;
    os << "// law \"" << law << "\" violated at iteration " << iter
       << " (seed " << opts_.seed << ").\n";
    os << "// replay: ta_diffcheck --seed=" << opts_.seed << " --start=" << iter
       << " --iters=1\n";
    os << "RankedAlphabet sigma = DiffcheckAlphabet("
       << (extended ? "true" : "false") << ");\n";
    if (a != nullptr) os << FormatNbtaConstruction(*a, sigma, "a");
    if (b != nullptr) os << FormatNbtaConstruction(*b, sigma, "b");
    if (t != nullptr && !t->empty()) {
      os << "BinaryTree t = std::move(ParseBinaryTerm(\""
         << BinaryTermString(*t, sigma) << "\", sigma)).ValueOrDie();\n";
    }
    os << "// expect: " << expect << "\n";
    return os.str();
  }

  void FailTree1(const char* law, size_t iter, bool extended, const Nbta& a,
                 const BinaryTree& t, const std::string& detail,
                 const Pred1& violated) {
    Nbta sa = a;
    BinaryTree st = t;
    if (opts_.shrink && violated && violated(sa, st)) {
      ShrinkNbtaAndTree(&sa, &st, violated);
    }
    Fail(law, iter, detail, Repro(law, iter, extended, &sa, nullptr, &st,
                                  detail));
  }

  void FailTree2(const char* law, size_t iter, bool extended, const Nbta& a,
                 const Nbta& b, const BinaryTree& t,
                 const std::string& detail, const Pred2& violated) {
    Nbta sa = a;
    Nbta sb = b;
    BinaryTree st = t;
    if (opts_.shrink && violated && violated(sa, sb, st)) {
      ShrinkTwoNbtaAndTree(&sa, &sb, &st, violated);
    }
    Fail(law, iter, detail, Repro(law, iter, extended, &sa, &sb, &st, detail));
  }

  void FailNbta(const char* law, size_t iter, bool extended, const Nbta& a,
                const std::string& detail, const PredA& violated) {
    Nbta sa = a;
    if (opts_.shrink && violated && violated(sa)) {
      sa = ShrinkNbta(std::move(sa), violated);
    }
    Fail(law, iter, detail,
         Repro(law, iter, extended, &sa, nullptr, nullptr, detail));
  }

  // Unwraps a budgeted op: ok -> value, kResourceExhausted -> nullopt plus a
  // budget_skips tick, anything else -> a "harness/op-error" failure.
  template <typename T>
  std::optional<T> Budgeted(Result<T> r, const char* what, size_t iter) {
    if (r.ok()) return std::move(r).value();
    if (r.status().code() == StatusCode::kResourceExhausted) {
      ++report_.budget_skips;
      return std::nullopt;
    }
    Fail("harness/op-error", iter,
         std::string(what) + ": " + r.status().ToString(), "");
    return std::nullopt;
  }

  Nbta DrawAutomaton(const RankedAlphabet& sigma, Rng& rng) {
    RandomNbtaOptions o;
    o.num_states = 1 + static_cast<uint32_t>(rng.NextBelow(6));
    o.rule_density = 0.15 + 0.65 * rng.NextDouble();
    o.leaf_density = 0.3 + 0.5 * rng.NextDouble();
    o.accepting_density = 0.2 + 0.5 * rng.NextDouble();
    Nbta a = RandomNbta(sigma, rng, o);
    // Adversarial mutations: RandomNbta never produces these shapes, but the
    // op suite must handle them (empty language, a symbol with no rules at
    // all — the MSO track-extension shape — and leaf-only languages).
    if (rng.NextBool(0.10)) {
      std::fill(a.accepting.begin(), a.accepting.end(), false);
    }
    if (rng.NextBool(0.15)) {
      SymbolId s = static_cast<SymbolId>(rng.NextBelow(sigma.size()));
      std::erase_if(a.leaf_rules,
                    [s](const Nbta::LeafRule& r) { return r.symbol == s; });
      std::erase_if(a.rules,
                    [s](const Nbta::BinaryRule& r) { return r.symbol == s; });
    }
    if (rng.NextBool(0.10)) a.rules.clear();
    return a;
  }

  void RunIteration(size_t iter);
  void CheckMemo(size_t iter, bool extended, const Nbta& a, const Nbta& b,
                 const std::optional<Nbta>& cold_comp, const Nbta& cold_inter,
                 const std::vector<BinaryTree>& exhaustive,
                 const std::vector<BinaryTree>& samples);
  void CheckEncodeDecode(size_t iter, Rng& rng);
  void CheckMembership(size_t iter, bool extended, const Nbta& a,
                       const std::vector<BinaryTree>& exhaustive,
                       const std::vector<BinaryTree>& samples, Rng& rng);
  void CheckRelabelInverse(size_t iter, const Nbta& a);
  void CheckRelabelImage(size_t iter, const Nbta& a);
  void CheckCounts(size_t iter, bool extended, const Nbta& a,
                   const std::optional<Dbta>& det_a,
                   const std::vector<BinaryTree>& exhaustive, bool truncated);
  void CheckEnumerate(size_t iter, bool extended, const Nbta& a,
                      const std::vector<BinaryTree>& exhaustive,
                      bool truncated);
  void CheckInclusion(size_t iter, bool extended, const Nbta& a,
                      const Nbta& b);
  void CheckTypechecker(size_t iter, Rng& rng);
  void CheckInferInverse(size_t iter, Rng& rng);

  /// Options for every typechecker / inference call: a per-call deadline so
  /// a pathological instance degrades to a budget skip instead of stalling
  /// the sweep.
  TypecheckOptions TcOptions() const {
    TypecheckOptions o;
    if (opts_.typecheck_deadline_ms != 0) {
      o.deadline = std::chrono::milliseconds(opts_.typecheck_deadline_ms);
    }
    // The sweep parallelizes at the iteration level only; every op inside an
    // iteration stays serial so its behavior depends on (seed, iteration)
    // alone and any failure replays exactly regardless of --threads.
    o.num_threads = 1;
    return o;
  }

  const DiffcheckOptions opts_;
  std::atomic<size_t>* shared_failures_;
  DiffcheckReport report_;
  RankedAlphabet base_;
  RankedAlphabet ext_;
  Alphabet tags_;
  EncodedAlphabet enc_;
  std::vector<BinaryTree> exhaustive_base_;
  std::vector<BinaryTree> exhaustive_ext_;
  bool trunc_base_ = false;
  bool trunc_ext_ = false;
  std::set<std::string> failed_laws_;
  /// Harness-owned op cache for the memo laws; persists across this worker's
  /// iterations, so later iterations genuinely hit entries inserted by
  /// earlier ones (the content-addressed trust the laws arbitrate).
  std::optional<TaOpCache> memo_cache_;
};

void Harness::RunIteration(size_t iter) {
  Rng rng(MixSeed(opts_.seed, iter));
  const bool extended = rng.NextBool(0.3);
  const RankedAlphabet& sigma = extended ? ext_ : base_;
  const std::vector<BinaryTree>& exhaustive =
      extended ? exhaustive_ext_ : exhaustive_base_;
  const bool truncated = extended ? trunc_ext_ : trunc_base_;

  const Nbta a = DrawAutomaton(sigma, rng);
  const Nbta b = DrawAutomaton(sigma, rng);

  std::vector<BinaryTree> samples;
  samples.reserve(opts_.samples_per_iter);
  const size_t max_internal = (size_t{1} << opts_.max_depth) - 1;
  for (size_t k = 0; k < opts_.samples_per_iter; ++k) {
    samples.push_back(RandomBinaryTree(sigma, rng, rng.NextBelow(
                                                       max_internal + 1)));
  }

  // --- Small derived automata, checked against every tree. ---
  NbtaIndex idx_a(a);
  NbtaIndex idx_b(b);
  const Nbta inter = IntersectNbta(idx_a, idx_b);
  const Nbta refinter = RefIntersect(a, b);
  const Nbta uni = UnionNbta(a, b);
  const Nbta refuni = RefUnion(a, b);
  const Nbta self_uni = UnionNbta(a, a);
  Nbta zero;  // 0 states, no rules: the degenerate empty-language operand.
  zero.num_symbols = static_cast<uint32_t>(sigma.size());
  const Nbta uni_zl = UnionNbta(zero, a);
  const Nbta uni_zr = UnionNbta(a, zero);
  const Nbta inter_z = IntersectNbta(a, zero);
  const Nbta trim = TrimNbta(idx_a);
  const Nbta reftrim = RefTrim(a);
  const TopDownTA td = NbtaToTopDown(a);
  const TopDownIndex td_idx(td);
  const Nbta round = TopDownToNbta(td);

  NbtaIndex idx_inter(inter), idx_refinter(refinter), idx_uni(uni),
      idx_refuni(refuni), idx_self(self_uni), idx_uzl(uni_zl),
      idx_uzr(uni_zr), idx_iz(inter_z), idx_trim(trim), idx_reftrim(reftrim),
      idx_round(round);

  // --- Deterministic / complement artifacts (probe subset only for the
  // Nbta-form complements; Dbta memberships are O(nodes) so run on all). ---
  std::optional<Dbta> det_a, det_b, min_a, min_b, refdet_a;
  {
    TaOpContext ctx = BudgetCtx(opts_);
    det_a = Budgeted(DeterminizeNbta(idx_a, sigma, &ctx), "DeterminizeNbta",
                     iter);
  }
  {
    TaOpContext ctx = BudgetCtx(opts_);
    det_b = Budgeted(DeterminizeNbta(idx_b, sigma, &ctx),
                     "DeterminizeNbta(b)", iter);
  }
  refdet_a = Budgeted(RefDeterminize(a, sigma), "RefDeterminize", iter);
  if (det_a) {
    TaOpContext ctx = BudgetCtx(opts_);
    min_a = Budgeted(MinimizeDbta(*det_a, sigma, &ctx), "MinimizeDbta", iter);
  }
  if (det_b) {
    TaOpContext ctx = BudgetCtx(opts_);
    min_b = Budgeted(MinimizeDbta(*det_b, sigma, &ctx), "MinimizeDbta(b)",
                     iter);
  }

  std::optional<Nbta> comp_a, comp_b, compcomp, refcomp_a, comp_uni,
      comp_inter;
  {
    TaOpContext ctx = BudgetCtx(opts_);
    comp_a = Budgeted(ComplementNbta(idx_a, sigma, &ctx), "ComplementNbta(a)",
                      iter);
  }
  {
    TaOpContext ctx = BudgetCtx(opts_);
    comp_b = Budgeted(ComplementNbta(idx_b, sigma, &ctx), "ComplementNbta(b)",
                      iter);
  }
  refcomp_a = Budgeted(RefComplement(a, sigma), "RefComplement", iter);
  if (comp_a) {
    compcomp = Budgeted(ComplementNbta(*comp_a, sigma, opts_.max_det_states),
                        "ComplementNbta(comp a)", iter);
  }
  // Complementing the union (12 states) and the intersection product (up to
  // 36 states) drives the subset construction orders of magnitude harder
  // than any other artifact; run those on a cadence with a capped budget.
  const bool heavy =
      opts_.demorgan_every != 0 && iter % opts_.demorgan_every == 0;
  // Subset-construction cost is quadratic in the states materialized (every
  // pair of reached subsets is expanded), so even *aborting* at a large
  // budget is slow; 512 keeps the worst heavy iteration in the tens of
  // milliseconds.
  const size_t heavy_budget = std::min<size_t>(opts_.max_det_states, 512);
  if (heavy) {
    comp_uni = Budgeted(ComplementNbta(uni, sigma, heavy_budget),
                        "ComplementNbta(a union b)", iter);
    comp_inter = Budgeted(ComplementNbta(inter, sigma, heavy_budget),
                          "ComplementNbta(a intersect b)", iter);
  }
  // Product-form De Morgan operands: complements built from the *minimized*
  // deterministic automata, so the ¬A ∩ ¬B product stays small while the
  // inputs remain complete and deterministic (the adversarial shape).
  std::optional<Nbta> mincomp_a, mincomp_b;
  if (min_a) {
    Dbta flipped = *min_a;
    for (StateId q = 0; q < flipped.num_states(); ++q) {
      flipped.set_accepting(q, !flipped.accepting(q));
    }
    mincomp_a = flipped.ToNbta(sigma);
  }
  if (min_b) {
    Dbta flipped = *min_b;
    for (StateId q = 0; q < flipped.num_states(); ++q) {
      flipped.set_accepting(q, !flipped.accepting(q));
    }
    mincomp_b = flipped.ToNbta(sigma);
  }
  // Even minimal automata for random languages can run to hundreds of
  // states, and the product of two complete automata materializes every
  // state pair; only build it when both operands are genuinely small.
  std::optional<Nbta> inter_comp, uni_comp;
  if (mincomp_a && mincomp_b && mincomp_a->num_states <= 32 &&
      mincomp_b->num_states <= 32) {
    inter_comp = IntersectNbta(*mincomp_a, *mincomp_b);
    uni_comp = UnionNbta(*mincomp_a, *mincomp_b);
  }

  std::optional<NbtaIndex> idx_comp_a, idx_comp_b, idx_compcomp,
      idx_refcomp_a, idx_comp_uni, idx_comp_inter, idx_inter_comp,
      idx_uni_comp;
  if (comp_a) idx_comp_a.emplace(*comp_a);
  if (comp_b) idx_comp_b.emplace(*comp_b);
  if (compcomp) idx_compcomp.emplace(*compcomp);
  if (refcomp_a) idx_refcomp_a.emplace(*refcomp_a);
  if (comp_uni) idx_comp_uni.emplace(*comp_uni);
  if (comp_inter) idx_comp_inter.emplace(*comp_inter);
  if (inter_comp) idx_inter_comp.emplace(*inter_comp);
  if (uni_comp) idx_uni_comp.emplace(*uni_comp);

  // Self-contained predicates (recompute everything from the candidate) used
  // only when shrinking a failing witness. A budget failure means "can't
  // reproduce on this candidate", i.e. not failing.
  const RankedAlphabet* sig = &sigma;
  const DiffcheckOptions* op = &opts_;
  Pred1 v_membership = [](const Nbta& ca, const BinaryTree& ct) {
    return ca.Accepts(ct) != RefAccepts(ca, ct);
  };
  Pred1 v_det = [sig, op](const Nbta& ca, const BinaryTree& ct) {
    Result<Dbta> d = DeterminizeNbta(ca, *sig, op->max_det_states);
    return d.ok() && d->Accepts(ct) != RefAccepts(ca, ct);
  };
  Pred1 v_min = [sig, op](const Nbta& ca, const BinaryTree& ct) {
    Result<Dbta> d = DeterminizeNbta(ca, *sig, op->max_det_states);
    if (!d.ok()) return false;
    Result<Dbta> m = MinimizeDbta(*d, *sig);
    return m.ok() && m->Accepts(ct) != RefAccepts(ca, ct);
  };
  Pred1 v_comp = [sig, op](const Nbta& ca, const BinaryTree& ct) {
    Result<Nbta> c = ComplementNbta(ca, *sig, op->max_det_states);
    return c.ok() && c->Accepts(ct) == RefAccepts(ca, ct);
  };
  Pred1 v_compcomp = [sig, op](const Nbta& ca, const BinaryTree& ct) {
    Result<Nbta> c = ComplementNbta(ca, *sig, op->max_det_states);
    if (!c.ok()) return false;
    Result<Nbta> cc = ComplementNbta(*c, *sig, op->max_det_states);
    return cc.ok() && cc->Accepts(ct) != RefAccepts(ca, ct);
  };
  Pred1 v_self_union = [](const Nbta& ca, const BinaryTree& ct) {
    return UnionNbta(ca, ca).Accepts(ct) != RefAccepts(ca, ct);
  };
  Pred1 v_zero_union = [](const Nbta& ca, const BinaryTree& ct) {
    Nbta z;
    z.num_symbols = ca.num_symbols;
    bool ref = RefAccepts(ca, ct);
    return UnionNbta(z, ca).Accepts(ct) != ref ||
           UnionNbta(ca, z).Accepts(ct) != ref;
  };
  Pred1 v_zero_inter = [](const Nbta& ca, const BinaryTree& ct) {
    Nbta z;
    z.num_symbols = ca.num_symbols;
    return IntersectNbta(ca, z).Accepts(ct);
  };
  Pred1 v_trim = [](const Nbta& ca, const BinaryTree& ct) {
    bool ref = RefAccepts(ca, ct);
    return TrimNbta(ca).Accepts(ct) != ref ||
           RefTrim(ca).Accepts(ct) != ref;
  };
  Pred1 v_topdown = [](const Nbta& ca, const BinaryTree& ct) {
    bool ref = RefAccepts(ca, ct);
    TopDownTA ctd = NbtaToTopDown(ca);
    return TopDownAccepts(ctd, ct) != ref ||
           TopDownToNbta(ctd).Accepts(ct) != ref;
  };
  Pred2 v_intersect = [](const Nbta& ca, const Nbta& cb,
                         const BinaryTree& ct) {
    bool ref = RefAccepts(ca, ct) && RefAccepts(cb, ct);
    return IntersectNbta(ca, cb).Accepts(ct) != ref ||
           RefIntersect(ca, cb).Accepts(ct) != ref;
  };
  Pred2 v_union = [](const Nbta& ca, const Nbta& cb, const BinaryTree& ct) {
    bool ref = RefAccepts(ca, ct) || RefAccepts(cb, ct);
    return UnionNbta(ca, cb).Accepts(ct) != ref ||
           RefUnion(ca, cb).Accepts(ct) != ref;
  };
  Pred2 v_demorgan = [sig, op](const Nbta& ca, const Nbta& cb,
                               const BinaryTree& ct) {
    bool ra = RefAccepts(ca, ct), rb = RefAccepts(cb, ct);
    Result<Nbta> cu =
        ComplementNbta(UnionNbta(ca, cb), *sig, op->max_det_states);
    if (cu.ok() && cu->Accepts(ct) != (!ra && !rb)) return true;
    Result<Nbta> ci =
        ComplementNbta(IntersectNbta(ca, cb), *sig, op->max_det_states);
    if (ci.ok() && ci->Accepts(ct) != !(ra && rb)) return true;
    Result<Nbta> cca = ComplementNbta(ca, *sig, op->max_det_states);
    Result<Nbta> ccb = ComplementNbta(cb, *sig, op->max_det_states);
    if (cca.ok() && ccb.ok()) {
      if (IntersectNbta(*cca, *ccb).Accepts(ct) != (!ra && !rb)) return true;
      if (UnionNbta(*cca, *ccb).Accepts(ct) != !(ra && rb)) return true;
    }
    return false;
  };

  // --- Per-tree laws over the full tree set. ---
  const size_t n_exh = exhaustive.size();
  auto tree_at = [&](size_t k) -> const BinaryTree& {
    return k < n_exh ? exhaustive[k] : samples[k - n_exh];
  };
  const size_t n_trees = n_exh + samples.size();

  for (size_t k = 0; k < n_trees; ++k) {
    const BinaryTree& t = tree_at(k);
    const bool ra = RefAccepts(a, t);
    const bool rb = RefAccepts(b, t);

    auto check1 = [&](const char* law, bool holds, const char* expect,
                      const Pred1& violated) {
      if (LawDone(law)) return;
      ++report_.comparisons;
      if (!holds) FailTree1(law, iter, extended, a, t, expect, violated);
    };
    auto check2 = [&](const char* law, bool holds, const char* expect,
                      const Pred2& violated) {
      if (LawDone(law)) return;
      ++report_.comparisons;
      if (!holds) FailTree2(law, iter, extended, a, b, t, expect, violated);
    };

    check1("membership/index", NbtaAccepts(idx_a, t) == ra,
           "NbtaAccepts(a, t) == direct bottom-up membership", v_membership);

    if (!LawDone("membership/runstates")) {
      ++report_.comparisons;
      std::vector<std::vector<bool>> got = NbtaRunStates(idx_a, t);
      std::vector<std::set<StateId>> want = RefRunStates(a, t);
      bool same = got.size() == want.size();
      for (NodeId n = 0; same && n < got.size(); ++n) {
        for (StateId q = 0; same && q < a.num_states; ++q) {
          same = (q < got[n].size() && got[n][q]) == (want[n].count(q) > 0);
        }
      }
      if (!same) {
        FailTree1("membership/runstates", iter, extended, a, t,
                  "NbtaRunStates == RefRunStates per node",
                  [](const Nbta& ca, const BinaryTree& ct) {
                    std::vector<std::vector<bool>> g = ca.RunStates(ct);
                    std::vector<std::set<StateId>> w = RefRunStates(ca, ct);
                    for (NodeId n = 0; n < ct.size(); ++n) {
                      for (StateId q = 0; q < ca.num_states; ++q) {
                        if ((q < g[n].size() && g[n][q]) !=
                            (w[n].count(q) > 0)) {
                          return true;
                        }
                      }
                    }
                    return false;
                  });
      }
    }

    if (det_a) {
      check1("determinize/lang", det_a->Accepts(t) == ra,
             "DeterminizeNbta preserves the language", v_det);
    }
    if (det_a && refdet_a) {
      check1("determinize/ref", det_a->Accepts(t) == refdet_a->Accepts(t),
             "DeterminizeNbta agrees with the set-of-sets reference", v_det);
    }
    if (refdet_a) {
      check1("determinize/ref-lang", refdet_a->Accepts(t) == ra,
             "RefDeterminize preserves the language", Pred1());
    }
    if (min_a) {
      check1("minimize/lang", min_a->Accepts(t) == ra,
             "MinimizeDbta preserves the language", v_min);
    }

    check2("intersect/lang", NbtaAccepts(idx_inter, t) == (ra && rb),
           "IntersectNbta accepts exactly L(a) ∩ L(b)", v_intersect);
    check2("intersect/ref",
           NbtaAccepts(idx_inter, t) == NbtaAccepts(idx_refinter, t),
           "IntersectNbta agrees with the dense all-pairs reference",
           v_intersect);
    check2("union/lang", NbtaAccepts(idx_uni, t) == (ra || rb),
           "UnionNbta accepts exactly L(a) ∪ L(b)", v_union);
    check2("union/ref", NbtaAccepts(idx_uni, t) == NbtaAccepts(idx_refuni, t),
           "UnionNbta agrees with the state-by-state reference sum", v_union);
    check1("union/self", NbtaAccepts(idx_self, t) == ra,
           "L(a ∪ a) == L(a)", v_self_union);
    check1("union/empty",
           NbtaAccepts(idx_uzl, t) == ra && NbtaAccepts(idx_uzr, t) == ra,
           "union with the 0-state automaton is identity on the language",
           v_zero_union);
    check1("intersect/empty", !NbtaAccepts(idx_iz, t),
           "intersection with the 0-state automaton is empty", v_zero_inter);
    check1("trim/lang",
           NbtaAccepts(idx_trim, t) == ra && NbtaAccepts(idx_reftrim, t) == ra,
           "TrimNbta and RefTrim preserve the language", v_trim);
    check1("topdown/roundtrip",
           TopDownAccepts(td_idx, t) == ra && NbtaAccepts(idx_round, t) == ra,
           "NbtaToTopDown/TopDownToNbta preserve the language", v_topdown);

    // Complement-family laws: these automata are determinization-sized, so
    // Nbta membership costs O(rules); restrict to the probe subset.
    const bool probe = k >= n_exh || k % kProbeStride == 0;
    if (probe) {
      if (idx_comp_a) {
        check1("complement/lang", NbtaAccepts(*idx_comp_a, t) == !ra,
               "ComplementNbta accepts exactly the well-ranked non-members",
               v_comp);
      }
      if (idx_comp_a && idx_refcomp_a) {
        check1("complement/ref",
               NbtaAccepts(*idx_comp_a, t) == NbtaAccepts(*idx_refcomp_a, t),
               "ComplementNbta agrees with the brute-force reference", v_comp);
      }
      if (idx_refcomp_a) {
        check1("complement/ref-lang", NbtaAccepts(*idx_refcomp_a, t) == !ra,
               "RefComplement accepts exactly the well-ranked non-members",
               Pred1());
      }
      if (idx_compcomp) {
        check1("complement/involution", NbtaAccepts(*idx_compcomp, t) == ra,
               "complementing twice is the identity on well-ranked trees",
               v_compcomp);
      }
      if (idx_comp_uni) {
        check2("demorgan/comp-union",
               NbtaAccepts(*idx_comp_uni, t) == (!ra && !rb),
               "¬(A ∪ B) == ¬A ∩ ¬B (membership form)", v_demorgan);
      }
      if (idx_comp_inter) {
        check2("demorgan/comp-inter",
               NbtaAccepts(*idx_comp_inter, t) == !(ra && rb),
               "¬(A ∩ B) == ¬A ∪ ¬B (membership form)", v_demorgan);
      }
      if (idx_inter_comp) {
        check2("demorgan/inter-comp",
               NbtaAccepts(*idx_inter_comp, t) == (!ra && !rb),
               "¬A ∩ ¬B accepts exactly the common non-members", v_demorgan);
      }
      if (idx_uni_comp) {
        check2("demorgan/union-comp",
               NbtaAccepts(*idx_uni_comp, t) == !(ra && rb),
               "¬A ∪ ¬B accepts exactly the non-common members", v_demorgan);
      }
    }
  }

  // --- Automaton-level laws. ---
  if (!LawDone("empty/agree")) {
    ++report_.comparisons;
    if (IsEmptyNbta(idx_a) != RefIsEmpty(a)) {
      FailNbta("empty/agree", iter, extended, a,
               "IsEmptyNbta agrees with the naive inhabitedness fixpoint",
               [](const Nbta& ca) {
                 return IsEmptyNbta(ca) != RefIsEmpty(ca);
               });
    }
  }
  if (!LawDone("witness/genuine")) {
    ++report_.comparisons;
    std::optional<BinaryTree> w = WitnessTree(idx_a);
    bool bad = w.has_value() == RefIsEmpty(a) ||
               (w.has_value() && !RefAccepts(a, *w));
    if (bad) {
      FailNbta("witness/genuine", iter, extended, a,
               "WitnessTree returns a tree iff nonempty, and a member",
               [](const Nbta& ca) {
                 std::optional<BinaryTree> cw = WitnessTree(ca);
                 return cw.has_value() == RefIsEmpty(ca) ||
                        (cw.has_value() && !RefAccepts(ca, *cw));
               });
    }
  }

  CheckInclusion(iter, extended, a, b);

  if (opts_.memo) {
    CheckMemo(iter, extended, a, b, comp_a, inter, exhaustive, samples);
  }

  CheckCounts(iter, extended, a, det_a, exhaustive, truncated);
  CheckEnumerate(iter, extended, a, exhaustive, truncated);
  CheckEncodeDecode(iter, rng);
  CheckMembership(iter, extended, a, exhaustive, samples, rng);
  if (!extended) CheckRelabelInverse(iter, a);
  if (extended) CheckRelabelImage(iter, a);
  if (opts_.typecheck_every != 0 && iter % opts_.typecheck_every == 0) {
    CheckTypechecker(iter, rng);
  }
  if (opts_.infer_every != 0 && iter % opts_.infer_every == 0) {
    CheckInferInverse(iter, rng);
  }
}

void Harness::CheckMemo(size_t iter, bool extended, const Nbta& a,
                        const Nbta& b, const std::optional<Nbta>& cold_comp,
                        const Nbta& cold_inter,
                        const std::vector<BinaryTree>& exhaustive,
                        const std::vector<BinaryTree>& samples) {
  const RankedAlphabet& sigma = extended ? ext_ : base_;
  NbtaIndex idx_a(a);
  NbtaIndex idx_b(b);
  // Byte-exactness demands serial ops: the parallel product's state
  // numbering is schedule-dependent (docs/PARALLEL.md).
  auto memo_ctx = [this] {
    TaOpContext ctx = BudgetCtx(opts_);
    ctx.budgets.memo = TaMemoMode::kInMemory;
    ctx.budgets.num_threads = 1;
    return ctx;
  };

  // Laws "memo/replay-exact" and "memo/accounting": against a fresh cache,
  // the same call must run cold, insert, then hit — and the hit must return
  // the byte-identical automaton with exact hit/miss/byte accounting.
  if (!LawDone("memo/replay-exact") || !LawDone("memo/accounting")) {
    TaOpCache fresh(4ull << 20);
    const TaAlgebra alg(&fresh);
    bool exact = true;
    bool skipped = false;
    size_t hits = 0, misses = 0, bytes = 0;
    auto absorb = [&](const TaOpContext& ctx) {
      hits += ctx.counters.memo_hits;
      misses += ctx.counters.memo_misses;
      bytes += ctx.counters.memo_bytes;
    };
    {
      TaOpContext ctx = memo_ctx();
      auto c1 = alg.Complement(idx_a, sigma, &ctx);
      auto c2 = alg.Complement(idx_a, sigma, &ctx);
      absorb(ctx);
      if (c1.ok() && c2.ok()) {
        std::string x, y;
        SerializeNbta(*c1, &x);
        SerializeNbta(*c2, &y);
        exact = exact && x == y;
      } else {
        skipped = true;
        ++report_.budget_skips;
      }
    }
    {
      TaOpContext ctx = memo_ctx();
      auto d1 = alg.Determinize(idx_a, sigma, &ctx);
      auto d2 = alg.Determinize(idx_a, sigma, &ctx);
      absorb(ctx);
      if (d1.ok() && d2.ok()) {
        std::string x, y;
        SerializeDbta(*d1, &x);
        SerializeDbta(*d2, &y);
        exact = exact && x == y;
      } else {
        skipped = true;
        ++report_.budget_skips;
      }
    }
    {
      TaOpContext ctx = memo_ctx();
      Nbta i1 = alg.Intersect(idx_a, idx_b, &ctx);
      Nbta i2 = alg.Intersect(idx_a, idx_b, &ctx);
      absorb(ctx);
      std::string x, y;
      SerializeNbta(i1, &x);
      SerializeNbta(i2, &y);
      exact = exact && x == y;
    }
    if (!LawDone("memo/replay-exact")) {
      ++report_.comparisons;
      if (!exact) {
        FailTree2("memo/replay-exact", iter, extended, a, b, BinaryTree(),
                  "replaying an op through a fresh cache returns the "
                  "byte-identical automaton",
                  Pred2());
      }
    }
    if (!LawDone("memo/accounting") && !skipped) {
      ++report_.comparisons;
      // Three ops, each called twice: 3 cold misses, 3 warm hits, and at
      // least one payload byte charged.
      if (hits != 3 || misses != 3 || bytes == 0) {
        std::ostringstream detail;
        detail << "fresh-cache miss/hit accounting: want 3 hits / 3 misses / "
               << "bytes > 0, got " << hits << " / " << misses << " / "
               << bytes;
        FailTree2("memo/accounting", iter, extended, a, b, BinaryTree(),
                  detail.str(), Pred2());
      }
    }
  }

  // Law "memo/lang": ops served through the harness cache — which persists
  // across iterations, so a warm result may come from an entry inserted by a
  // *different* structurally-equivalent operand — must agree on language
  // with this iteration's cold results.
  if (!LawDone("memo/lang") && memo_cache_.has_value()) {
    const TaAlgebra halg(&*memo_cache_);
    std::optional<Nbta> warm_comp;
    {
      TaOpContext ctx = memo_ctx();
      auto c = halg.Complement(idx_a, sigma, &ctx);
      if (c.ok()) {
        warm_comp = *std::move(c);
      } else {
        ++report_.budget_skips;
      }
    }
    TaOpContext ctx = memo_ctx();
    const Nbta warm_inter = halg.Intersect(idx_a, idx_b, &ctx);
    std::optional<NbtaIndex> idx_wc;
    if (warm_comp && cold_comp) idx_wc.emplace(*warm_comp);
    NbtaIndex idx_wi(warm_inter);
    NbtaIndex idx_ci(cold_inter);
    std::optional<NbtaIndex> idx_cc;
    if (warm_comp && cold_comp) idx_cc.emplace(*cold_comp);
    auto trees = [&](size_t k) -> const BinaryTree& {
      return k < exhaustive.size() ? exhaustive[k]
                                   : samples[k - exhaustive.size()];
    };
    const size_t n_trees = exhaustive.size() + samples.size();
    for (size_t k = 0; k < n_trees; k += kProbeStride) {
      const BinaryTree& t = trees(k);
      ++report_.comparisons;
      const bool inter_ok =
          NbtaAccepts(idx_wi, t) == NbtaAccepts(idx_ci, t);
      const bool comp_ok =
          !idx_wc || NbtaAccepts(*idx_wc, t) == NbtaAccepts(*idx_cc, t);
      if (!inter_ok || !comp_ok) {
        FailTree2("memo/lang", iter, extended, a, b, t,
                  "cache-served complement/intersection agrees on language "
                  "with the cold op",
                  Pred2());
        return;
      }
    }
  }
}

void Harness::CheckCounts(size_t iter, bool extended, const Nbta& a,
                          const std::optional<Dbta>& det_a,
                          const std::vector<BinaryTree>& exhaustive,
                          bool truncated) {
  if (!LawDone("count/runs")) {
    for (size_t s = 1; s <= 9; s += 2) {
      ++report_.comparisons;
      if (CountAcceptedTrees(a, s) != RefCountAcceptedTrees(a, s)) {
        FailNbta("count/runs", iter, extended, a,
                 "CountAcceptedTrees(run count) == top-down reference, "
                 "sizes 1..9",
                 [](const Nbta& ca) {
                   for (size_t cs = 1; cs <= 9; cs += 2) {
                     if (CountAcceptedTrees(ca, cs) !=
                         RefCountAcceptedTrees(ca, cs)) {
                       return true;
                     }
                   }
                   return false;
                 });
        break;
      }
    }
  }
  // Tree counts need a deterministic automaton (runs == trees) and an
  // exhaustive ground truth.
  if (LawDone("count/trees") || !det_a || truncated) return;
  if (det_a->num_states() > 64) return;  // ToNbta table would be huge.
  const RankedAlphabet& sigma = extended ? ext_ : base_;
  const Nbta dta = det_a->ToNbta(sigma);
  for (size_t s = 1; s <= opts_.exhaustive_max_nodes; s += 2) {
    ++report_.comparisons;
    uint64_t want = 0;
    for (const BinaryTree& t : exhaustive) {
      if (t.size() == s && RefAccepts(a, t)) ++want;
    }
    if (CountAcceptedTrees(dta, s) != want) {
      std::ostringstream detail;
      detail << "CountAcceptedTrees on the determinized automaton == "
             << "exhaustive accepted-tree count at size " << s << " (want "
             << want << ", got " << CountAcceptedTrees(dta, s) << ")";
      FailNbta("count/trees", iter, extended, a, detail.str(), PredA());
      break;
    }
  }
}

void Harness::CheckEnumerate(size_t iter, bool extended, const Nbta& a,
                             const std::vector<BinaryTree>& exhaustive,
                             bool truncated) {
  const RankedAlphabet& sigma = extended ? ext_ : base_;
  const std::vector<BinaryTree> e1 =
      EnumerateAcceptedTrees(a, opts_.exhaustive_max_nodes, 100000);

  if (!LawDone("enumerate/order")) {
    ++report_.comparisons;
    bool sorted = true;
    for (size_t k = 0; k + 1 < e1.size(); ++k) {
      if (e1[k].size() > e1[k + 1].size()) sorted = false;
    }
    std::set<std::string> keys;
    for (const BinaryTree& t : e1) keys.insert(CanonicalKey(t, sigma));
    if (!sorted || keys.size() != e1.size()) {
      FailNbta("enumerate/order", iter, extended, a,
               "EnumerateAcceptedTrees emits distinct trees in "
               "non-decreasing size order",
               PredA());
    }
  }
  if (!LawDone("enumerate/deterministic")) {
    ++report_.comparisons;
    const std::vector<BinaryTree> e2 =
        EnumerateAcceptedTrees(a, opts_.exhaustive_max_nodes, 100000);
    bool same = e1.size() == e2.size();
    for (size_t k = 0; same && k < e1.size(); ++k) same = e1[k] == e2[k];
    if (!same) {
      FailNbta("enumerate/deterministic", iter, extended, a,
               "EnumerateAcceptedTrees is deterministic across runs",
               PredA());
    }
  }
  if (!LawDone("enumerate/cap") && e1.size() >= 2) {
    ++report_.comparisons;
    const std::vector<BinaryTree> ecap =
        EnumerateAcceptedTrees(a, opts_.exhaustive_max_nodes, e1.size() - 1);
    bool same = ecap.size() == e1.size() - 1;
    for (size_t k = 0; same && k < ecap.size(); ++k) same = ecap[k] == e1[k];
    if (!same) {
      FailNbta("enumerate/cap", iter, extended, a,
               "max_count truncates to a prefix of the uncapped enumeration",
               PredA());
    }
  }
  if (!LawDone("enumerate/exact") && !truncated) {
    ++report_.comparisons;
    std::set<std::string> got, want;
    for (const BinaryTree& t : e1) got.insert(CanonicalKey(t, sigma));
    for (const BinaryTree& t : exhaustive) {
      if (RefAccepts(a, t)) want.insert(CanonicalKey(t, sigma));
    }
    if (got != want) {
      FailNbta("enumerate/exact", iter, extended, a,
               "EnumerateAcceptedTrees == {small trees accepted by the "
               "reference membership}",
               [this, &sigma](const Nbta& ca) {
                 std::set<std::string> g, w;
                 for (const BinaryTree& t : EnumerateAcceptedTrees(
                          ca, opts_.exhaustive_max_nodes, 100000)) {
                   g.insert(CanonicalKey(t, sigma));
                 }
                 const std::vector<BinaryTree>& ex =
                     &sigma == &ext_ ? exhaustive_ext_ : exhaustive_base_;
                 for (const BinaryTree& t : ex) {
                   if (RefAccepts(ca, t)) w.insert(CanonicalKey(t, sigma));
                 }
                 return g != w;
               });
    }
  }
}

void Harness::CheckEncodeDecode(size_t iter, Rng& rng) {
  if (LawDone("encode/decode")) return;
  ++report_.comparisons;
  RandomUnrankedOptions uo;
  uo.target_size = 1 + rng.NextBelow(20);
  uo.max_children = 4;
  const UnrankedTree u = RandomUnrankedTree(tags_, rng, uo);
  Result<BinaryTree> encoded = EncodeTree(u, enc_);
  if (!encoded.ok()) {
    Fail("encode/decode", iter, "EncodeTree failed: " +
                                    encoded.status().ToString(),
         "// unranked input: " + UnrankedTermString(u, tags_) + "\n");
    return;
  }
  Result<UnrankedTree> decoded = DecodeTree(*encoded, enc_);
  if (!decoded.ok() || !(*decoded == u)) {
    std::string detail = decoded.ok()
                             ? "Decode(Encode(t)) != t"
                             : "DecodeTree failed on an encoder output: " +
                                   decoded.status().ToString();
    Fail("encode/decode", iter, detail,
         "// unranked input: " + UnrankedTermString(u, tags_) +
             "\n// encoded:      " +
             BinaryTermString(*encoded, enc_.ranked) + "\n");
  }
}

void Harness::CheckMembership(size_t iter, bool extended, const Nbta& a,
                              const std::vector<BinaryTree>& exhaustive,
                              const std::vector<BinaryTree>& samples,
                              Rng& rng) {
  const RankedAlphabet& sigma = extended ? ext_ : base_;

  // Law "membership/compiled": the compiled-DBTA fast path (and its
  // NbtaAccepts fallback when determinization is over budget — Compile
  // absorbs kResourceExhausted into a fallback engine, so it never needs a
  // Budgeted unwrap) agrees with NbtaAccepts on every tree.
  if (!LawDone("membership/compiled")) {
    TaOpContext ctx = BudgetCtx(opts_);
    Result<MembershipEngine> engine = MembershipEngine::Compile(a, sigma, &ctx);
    if (!engine.ok()) {
      Fail("harness/op-error", iter,
           "MembershipEngine::Compile: " + engine.status().ToString(), "");
    } else {
      NbtaIndex idx(a);
      const RankedAlphabet* sig = &sigma;
      const size_t budget = opts_.max_det_states;
      Pred1 violated = [sig, budget](const Nbta& ca, const BinaryTree& ct) {
        TaOpContext cctx;
        cctx.budgets.max_det_states = budget;
        Result<MembershipEngine> ce = MembershipEngine::Compile(ca, *sig,
                                                                &cctx);
        if (!ce.ok()) return false;
        Result<bool> got = ce->Accepts(ct);
        return got.ok() && *got != RefAccepts(ca, ct);
      };
      for (size_t k = 0; k < exhaustive.size() + samples.size(); ++k) {
        const BinaryTree& t =
            k < exhaustive.size() ? exhaustive[k] : samples[k -
                                                           exhaustive.size()];
        ++report_.comparisons;
        Result<bool> got = engine->Accepts(t);
        if (!got.ok()) {
          Fail("membership/compiled", iter,
               "MembershipEngine::Accepts: " + got.status().ToString(),
               Repro("membership/compiled", iter, extended, &a, nullptr, &t,
                     "Accepts returns a verdict, not an error"));
          break;
        }
        if (*got != NbtaAccepts(idx, t)) {
          FailTree1("membership/compiled", iter, extended, a, t,
                    "compiled-DBTA membership agrees with NbtaAccepts",
                    violated);
          break;
        }
      }
    }
  }

  // The XML-facing laws run over the p/q/r document alphabet: a fresh
  // random automaton over the *encoded* alphabet plays the schema.
  if (LawDone("membership/streaming") && LawDone("membership/batch")) return;
  const Nbta m = DrawAutomaton(enc_.ranked, rng);
  TaOpContext mctx = BudgetCtx(opts_);
  Result<MembershipEngine> meng =
      MembershipEngine::Compile(m, enc_.ranked, &mctx);
  if (!meng.ok()) {
    Fail("harness/op-error", iter,
         "MembershipEngine::Compile(encoded): " + meng.status().ToString(),
         "");
    return;
  }
  NbtaIndex midx(m);

  // Law "membership/streaming": validating the XML byte stream without
  // materializing the tree agrees with encode-then-Accepts and with
  // NbtaAccepts on the encoded tree. Only meaningful when the engine
  // compiled a table (the streaming path requires one); the 1-6 state draws
  // over five symbols always fit the determinization budget.
  if (!LawDone("membership/streaming") && meng->fast()) {
    ++report_.comparisons;
    RandomUnrankedOptions uo;
    uo.target_size = 1 + rng.NextBelow(20);
    uo.max_children = 4;
    const UnrankedTree u = RandomUnrankedTree(tags_, rng, uo);
    const std::string xml = XmlString(u, tags_);
    Result<BinaryTree> encoded = EncodeTree(u, enc_);
    Result<StreamVerdict> stream =
        StreamingValidateXml(xml, *meng->table(), enc_, tags_);
    std::string mismatch;
    if (!encoded.ok()) {
      mismatch = "EncodeTree failed: " + encoded.status().ToString();
    } else if (!stream.ok()) {
      mismatch = "StreamingValidateXml failed: " + stream.status().ToString();
    } else if (!stream->unknown_tag.empty()) {
      mismatch = "streaming flagged unknown tag '" + stream->unknown_tag +
                 "' in a document rendered from the schema alphabet";
    } else {
      const bool ref = NbtaAccepts(midx, *encoded);
      Result<bool> via_tree = meng->Accepts(*encoded);
      if (!via_tree.ok()) {
        mismatch = "Accepts on the encoded tree failed: " +
                   via_tree.status().ToString();
      } else if (stream->accepted != ref || *via_tree != ref) {
        std::ostringstream os;
        os << "streaming=" << stream->accepted << " tree=" << *via_tree
           << " reference=" << ref;
        mismatch = os.str();
      }
    }
    if (!mismatch.empty()) {
      std::ostringstream os;
      os << "// law \"membership/streaming\" violated at iteration " << iter
         << " (seed " << opts_.seed << ").\n"
         << "// replay: ta_diffcheck --seed=" << opts_.seed
         << " --start=" << iter << " --iters=1\n"
         << "// document: " << xml << "\n"
         << FormatNbtaConstruction(m, enc_.ranked, "m")
         << "// expect: StreamingValidateXml == Accepts(EncodeTree(doc))\n";
      Fail("membership/streaming",
           iter, "streaming XML validation agrees with encode-then-Accepts: " +
                     mismatch,
           os.str());
    }
  }

  // Law "membership/batch": the forked batch fan-out returns exactly the
  // verdicts of a sequential ValidateDoc loop — same codes, same validity
  // bits, same diagnostics — on a mixed batch of well-formed, rejected,
  // unknown-tag, and malformed documents.
  if (!LawDone("membership/batch")) {
    SchemaArtifact schema{enc_.ranked, m};
    Result<serve::ValidationPlan> plan = serve::CompileSchemaPlan(schema);
    if (!plan.ok()) {
      Fail("harness/op-error", iter,
           "CompileSchemaPlan: " + plan.status().ToString(), "");
      return;
    }
    std::vector<std::string> docs;
    for (int k = 0; k < 6; ++k) {
      RandomUnrankedOptions uo;
      uo.target_size = 1 + rng.NextBelow(12);
      uo.max_children = 4;
      docs.push_back(XmlString(RandomUnrankedTree(tags_, rng, uo), tags_));
    }
    docs.push_back("<p><q></p>");    // mismatched close tag
    docs.push_back("<p><zz/></p>");  // tag outside the schema alphabet
    docs.push_back("not xml");       // not a document at all
    std::vector<serve::DocVerdict> seq;
    seq.reserve(docs.size());
    for (const std::string& d : docs) {
      seq.push_back(serve::ValidateDoc(*plan, d));
    }
    TaOpContext bctx;
    bctx.budgets.num_threads = 3;
    serve::BatchResult batch = serve::ValidateBatch(*plan, docs, &bctx);
    ++report_.comparisons;
    std::string mismatch;
    if (batch.verdicts.size() != seq.size()) {
      mismatch = "verdict count differs";
    }
    for (size_t k = 0; mismatch.empty() && k < seq.size(); ++k) {
      if (batch.verdicts[k].code != seq[k].code ||
          batch.verdicts[k].valid != seq[k].valid ||
          batch.verdicts[k].diagnostic != seq[k].diagnostic) {
        std::ostringstream os;
        os << "document " << k << ": batch {" << StatusCodeName(
                  batch.verdicts[k].code)
           << ", " << batch.verdicts[k].valid << ", \""
           << batch.verdicts[k].diagnostic << "\"} vs sequential {"
           << StatusCodeName(seq[k].code) << ", " << seq[k].valid << ", \""
           << seq[k].diagnostic << "\"}";
        mismatch = os.str();
      }
    }
    if (!mismatch.empty()) {
      std::ostringstream os;
      os << "// law \"membership/batch\" violated at iteration " << iter
         << " (seed " << opts_.seed << ").\n"
         << "// replay: ta_diffcheck --seed=" << opts_.seed
         << " --start=" << iter << " --iters=1\n";
      for (size_t k = 0; k < docs.size(); ++k) {
        os << "// doc[" << k << "]: " << docs[k] << "\n";
      }
      os << FormatNbtaConstruction(m, enc_.ranked, "m")
         << "// expect: ValidateBatch verdicts == sequential ValidateDoc\n";
      Fail("membership/batch", iter,
           "batch fan-out agrees with sequential validation: " + mismatch,
           os.str());
    }
  }
}

void Harness::CheckRelabelInverse(size_t iter, const Nbta& a) {
  if (LawDone("relabel/inverse")) return;
  const Nbta inv =
      InverseRelabelNbta(a, kExtToBase, static_cast<uint32_t>(ext_.size()));
  NbtaIndex idx_inv(inv);
  for (const BinaryTree& t6 : exhaustive_ext_) {
    ++report_.comparisons;
    if (NbtaAccepts(idx_inv, t6) != RefAccepts(a, RelabelTree(t6,
                                                              kExtToBase))) {
      Nbta sa = a;
      BinaryTree st = t6;
      Pred1 violated = [this](const Nbta& ca, const BinaryTree& ct) {
        return InverseRelabelNbta(ca, kExtToBase,
                                  static_cast<uint32_t>(ext_.size()))
                   .Accepts(ct) != RefAccepts(ca, RelabelTree(ct, kExtToBase));
      };
      if (opts_.shrink && violated(sa, st)) {
        ShrinkNbtaAndTree(&sa, &st, violated);
      }
      // The witness tree lives over the extended alphabet while the automaton
      // lives over the base one; render both accordingly.
      std::ostringstream os;
      os << "// law \"relabel/inverse\" violated at iteration " << iter
         << " (seed " << opts_.seed << ").\n"
         << "// replay: ta_diffcheck --seed=" << opts_.seed
         << " --start=" << iter << " --iters=1\n"
         << "RankedAlphabet sigma = DiffcheckAlphabet(false);\n"
         << "RankedAlphabet ext = DiffcheckAlphabet(true);\n"
         << FormatNbtaConstruction(sa, base_, "a")
         << "BinaryTree t = std::move(ParseBinaryTerm(\""
         << BinaryTermString(st, ext_) << "\", ext)).ValueOrDie();\n"
         << "// expect: InverseRelabelNbta(a).Accepts(t) == "
            "a accepts relabel(t)\n";
      Fail("relabel/inverse", iter,
           "InverseRelabelNbta accepts t iff a accepts relabel(t)", os.str());
      return;
    }
  }
}

void Harness::CheckRelabelImage(size_t iter, const Nbta& a) {
  if (LawDone("relabel/image")) return;
  const Nbta img =
      RelabelNbta(a, kExtToBase, static_cast<uint32_t>(base_.size()));
  NbtaIndex idx_img(img);
  for (const BinaryTree& u : exhaustive_base_) {
    ++report_.comparisons;
    if (NbtaAccepts(idx_img, u) !=
        HasAcceptedPreimage(a, u, kExtToBase, ext_)) {
      Nbta sa = a;
      BinaryTree st = u;
      Pred1 violated = [this](const Nbta& ca, const BinaryTree& ct) {
        return RelabelNbta(ca, kExtToBase, static_cast<uint32_t>(base_.size()))
                   .Accepts(ct) !=
               HasAcceptedPreimage(ca, ct, kExtToBase, ext_);
      };
      if (opts_.shrink && violated(sa, st)) {
        ShrinkNbtaAndTree(&sa, &st, violated);
      }
      std::ostringstream os;
      os << "// law \"relabel/image\" violated at iteration " << iter
         << " (seed " << opts_.seed << ").\n"
         << "// replay: ta_diffcheck --seed=" << opts_.seed
         << " --start=" << iter << " --iters=1\n"
         << "RankedAlphabet sigma = DiffcheckAlphabet(false);\n"
         << "RankedAlphabet ext = DiffcheckAlphabet(true);\n"
         << FormatNbtaConstruction(sa, ext_, "a")
         << "BinaryTree t = std::move(ParseBinaryTerm(\""
         << BinaryTermString(st, base_) << "\", sigma)).ValueOrDie();\n"
         << "// expect: RelabelNbta(a).Accepts(t) == some preimage of t is "
            "accepted by a\n";
      Fail("relabel/image", iter,
           "RelabelNbta accepts t iff some preimage of t is accepted",
           os.str());
      return;
    }
  }
}

void Harness::CheckInclusion(size_t iter, bool extended, const Nbta& a,
                             const Nbta& b) {
  if (LawDone("inclusion/agree") && LawDone("inclusion/witness") &&
      LawDone("inclusion/equiv-symmetric") &&
      (!opts_.memo || LawDone("inclusion/memo-exact"))) {
    return;
  }
  const RankedAlphabet& sigma = extended ? ext_ : base_;

  // Reference decision: L(A) ⊆ L(B) ⟺ L(A) ∩ ¬L(B) = ∅, with naive ops on
  // these ≤6-state instances.
  Result<Nbta> refcomp_b = RefComplement(b, sigma);
  PEBBLETC_CHECK(refcomp_b.ok()) << "RefComplement on a <=6-state automaton";
  const bool ref_included = RefIsEmpty(RefIntersect(a, *refcomp_b));

  TaOpContext ctx = BudgetCtx(opts_);
  NbtaIndex idx_a(a, &ctx);
  NbtaIndex idx_b(b, &ctx);
  std::optional<NbtaInclusionResult> incl = Budgeted(
      NbtaIncludedIn(idx_a, idx_b, sigma, &ctx), "NbtaIncludedIn", iter);
  if (!incl.has_value()) return;

  auto fail2 = [&](const char* law, const std::string& detail,
                   const Pred2& v) {
    Nbta sa = a, sb = b;
    BinaryTree dummy;
    dummy.SetRoot(dummy.AddLeaf(0));
    if (opts_.shrink && v && v(sa, sb, dummy)) {
      ShrinkTwoNbtaAndTree(&sa, &sb, &dummy, v);
    }
    Fail(law, iter, detail,
         Repro(law, iter, extended, &sa, &sb, nullptr, detail));
  };

  if (!LawDone("inclusion/agree")) {
    ++report_.comparisons;
    if (incl->included != ref_included) {
      Pred2 v = [&sigma](const Nbta& ca, const Nbta& cb, const BinaryTree&) {
        Result<Nbta> rc = RefComplement(cb, sigma);
        if (!rc.ok()) return false;
        auto r = NbtaIncludedIn(ca, cb, sigma);
        return r.ok() &&
               r->included != RefIsEmpty(RefIntersect(ca, *rc));
      };
      fail2("inclusion/agree",
            "NbtaIncludedIn must agree with the reference decision "
            "IsEmpty(A ∩ ¬B)",
            v);
    }
  }

  if (!LawDone("inclusion/witness")) {
    ++report_.comparisons;
    const bool witness_ok =
        incl->included
            ? !incl->counterexample.has_value()
            : incl->counterexample.has_value() &&
                  RefAccepts(a, *incl->counterexample) &&
                  !RefAccepts(b, *incl->counterexample);
    if (!witness_ok) {
      Pred2 v = [&sigma](const Nbta& ca, const Nbta& cb, const BinaryTree&) {
        auto r = NbtaIncludedIn(ca, cb, sigma);
        if (!r.ok()) return false;
        if (r->included) return r->counterexample.has_value();
        return !r->counterexample.has_value() ||
               !RefAccepts(ca, *r->counterexample) ||
               RefAccepts(cb, *r->counterexample);
      };
      fail2("inclusion/witness",
            "a refutation must carry a counterexample in L(A) \\ L(B), an "
            "inclusion must carry none",
            v);
    }
  }

  if (!LawDone("inclusion/equiv-symmetric")) {
    TaOpContext ctx_rev = BudgetCtx(opts_);
    std::optional<NbtaInclusionResult> rev =
        Budgeted(NbtaIncludedIn(idx_b, idx_a, sigma, &ctx_rev),
                 "NbtaIncludedIn(b,a)", iter);
    std::optional<bool> eq_ab = Budgeted(NbtaEquivalent(a, b, sigma),
                                         "NbtaEquivalent(a,b)", iter);
    std::optional<bool> eq_ba = Budgeted(NbtaEquivalent(b, a, sigma),
                                         "NbtaEquivalent(b,a)", iter);
    if (rev.has_value() && eq_ab.has_value() && eq_ba.has_value()) {
      ++report_.comparisons;
      const bool want = incl->included && rev->included;
      if (*eq_ab != want || *eq_ba != want) {
        Pred2 v = [&sigma](const Nbta& ca, const Nbta& cb,
                           const BinaryTree&) {
          auto fwd = NbtaIncludedIn(ca, cb, sigma);
          auto bwd = NbtaIncludedIn(cb, ca, sigma);
          auto e1 = NbtaEquivalent(ca, cb, sigma);
          auto e2 = NbtaEquivalent(cb, ca, sigma);
          if (!fwd.ok() || !bwd.ok() || !e1.ok() || !e2.ok()) return false;
          const bool cwant = fwd->included && bwd->included;
          return *e1 != cwant || *e2 != cwant;
        };
        fail2("inclusion/equiv-symmetric",
              "NbtaEquivalent must equal inclusion in both directions and "
              "be symmetric in its arguments",
              v);
      }
    }
  }

  // Law "inclusion/memo-exact": against a fresh cache the same call runs
  // cold (matching the uncached result, counterexample included), inserts,
  // then hits — and the hit decodes the structurally identical verdict.
  if (opts_.memo && !LawDone("inclusion/memo-exact")) {
    TaOpCache fresh(4ull << 20);
    const TaAlgebra alg(&fresh);
    auto memo_ctx = [this] {
      TaOpContext c = BudgetCtx(opts_);
      c.budgets.memo = TaMemoMode::kInMemory;
      c.budgets.num_threads = 1;
      return c;
    };
    TaOpContext miss_ctx = memo_ctx();
    TaOpContext hit_ctx = memo_ctx();
    std::optional<NbtaInclusionResult> r1 =
        Budgeted(alg.IncludedIn(idx_a, idx_b, sigma, &miss_ctx),
                 "memo IncludedIn (miss)", iter);
    std::optional<NbtaInclusionResult> r2 =
        Budgeted(alg.IncludedIn(idx_a, idx_b, sigma, &hit_ctx),
                 "memo IncludedIn (hit)", iter);
    if (r1.has_value() && r2.has_value()) {
      ++report_.comparisons;
      bool exact = r1->included == incl->included &&
                   r2->included == incl->included &&
                   miss_ctx.counters.memo_misses == 1 &&
                   hit_ctx.counters.memo_hits == 1;
      if (exact && !incl->included) {
        exact = r1->counterexample.has_value() &&
                r2->counterexample.has_value() &&
                *r1->counterexample == *incl->counterexample &&
                *r2->counterexample == *r1->counterexample;
      }
      if (!exact) {
        fail2("inclusion/memo-exact",
              "a warm inclusion verdict must replay the cold one exactly "
              "(verdict, counterexample, and hit/miss accounting)",
              Pred2());
      }
    }
  }
}

void Harness::CheckTypechecker(size_t iter, Rng& rng) {
  if (LawDone("typecheck/verdict") && LawDone("typecheck/witness")) return;
  // Small types keep the reference decision (a full naive
  // complement-and-intersect emptiness check) cheap.
  RandomNbtaOptions o;
  o.num_states = 1 + static_cast<uint32_t>(rng.NextBelow(4));
  o.rule_density = 0.2 + 0.5 * rng.NextDouble();
  o.leaf_density = 0.4 + 0.4 * rng.NextDouble();
  o.accepting_density = 0.3 + 0.4 * rng.NextDouble();
  const Nbta tau1 = RandomNbta(base_, rng, o);
  const Nbta tau2 = RandomNbta(base_, rng, o);

  const PebbleTransducer copy = MakeCopyTransducer(base_);
  const Typechecker tc(copy, base_, base_);
  Result<TypecheckResult> res = tc.Typecheck(tau1, tau2, TcOptions());
  if (!res.ok()) {
    Fail("typecheck/verdict", iter,
         "Typecheck failed outright: " + res.status().ToString(),
         Repro("typecheck/verdict", iter, false, &tau1, &tau2, nullptr,
               "Typecheck returns a verdict"));
    return;
  }

  // For the copy transducer, T(τ1) ⊆ τ2 ⟺ τ1 ⊆ τ2; decide with reference
  // ops only.
  Result<Nbta> refcomp2 = RefComplement(tau2, base_);
  PEBBLETC_CHECK(refcomp2.ok()) << "RefComplement on a <=4-state automaton";
  const bool ref_included = RefIsEmpty(RefIntersect(tau1, *refcomp2));

  // Law "memo/verdict": the whole pipeline re-run with the op cache enabled
  // (the process-wide cache the production facade uses) must reach the same
  // verdict as the cold run.
  if (opts_.memo && !LawDone("memo/verdict")) {
    TypecheckOptions warm_opts = TcOptions();
    warm_opts.memo = TaMemoMode::kInMemory;
    Result<TypecheckResult> wres = tc.Typecheck(tau1, tau2, warm_opts);
    ++report_.comparisons;
    if (!wres.ok()) {
      Fail("memo/verdict", iter,
           "Typecheck under --memo failed outright: " +
               wres.status().ToString(),
           Repro("memo/verdict", iter, false, &tau1, &tau2, nullptr,
                 "memo and cold runs return the same verdict"));
    } else if (wres->exhausted.exhausted || res->exhausted.exhausted) {
      // A deadline cut on either side makes the verdicts incomparable.
      ++report_.budget_skips;
    } else if (wres->verdict != res->verdict) {
      Fail("memo/verdict", iter,
           "Typecheck verdict changed under --memo (cold " +
               std::to_string(static_cast<int>(res->verdict)) + ", memo " +
               std::to_string(static_cast<int>(wres->verdict)) + ")",
           Repro("memo/verdict", iter, false, &tau1, &tau2, nullptr,
                 "memo and cold runs return the same verdict"));
    }
  }

  // Laws "typecheck/antichain-verdict" and "typecheck/antichain-witness":
  // the whole ladder re-run on the antichain inclusion path
  // (docs/INCLUSION.md) must reach the same verdict as the explicit
  // pipeline, with the identical counterexample input; the violating output
  // is engine-specific but for the copy transducer must equal the input.
  if (!LawDone("typecheck/antichain-verdict") ||
      !LawDone("typecheck/antichain-witness")) {
    TypecheckOptions anti_opts = TcOptions();
    anti_opts.inclusion = TaInclusionPath::kAntichain;
    Result<TypecheckResult> ares = tc.Typecheck(tau1, tau2, anti_opts);
    ++report_.comparisons;
    if (!ares.ok()) {
      Fail("typecheck/antichain-verdict", iter,
           "Typecheck on the antichain path failed outright: " +
               ares.status().ToString(),
           Repro("typecheck/antichain-verdict", iter, false, &tau1, &tau2,
                 nullptr, "antichain and explicit runs agree"));
    } else if (ares->exhausted.exhausted || res->exhausted.exhausted) {
      // A budget cut on either side makes the verdicts incomparable.
      ++report_.budget_skips;
    } else if (ares->verdict != res->verdict) {
      Fail("typecheck/antichain-verdict", iter,
           "verdict changed on the antichain path (explicit " +
               std::to_string(static_cast<int>(res->verdict)) +
               ", antichain " +
               std::to_string(static_cast<int>(ares->verdict)) + ")",
           Repro("typecheck/antichain-verdict", iter, false, &tau1, &tau2,
                 nullptr, "antichain and explicit runs agree"));
    } else if (ares->verdict == TypecheckVerdict::kCounterexample &&
               !LawDone("typecheck/antichain-witness")) {
      ++report_.comparisons;
      const bool same_input =
          ares->counterexample_input.has_value() &&
          res->counterexample_input.has_value() &&
          *ares->counterexample_input == *res->counterexample_input;
      const bool output_ok =
          !ares->counterexample_output.has_value() ||
          *ares->counterexample_output == *ares->counterexample_input;
      if (!same_input || !output_ok) {
        Fail("typecheck/antichain-witness", iter,
             "the antichain path must report the same counterexample input "
             "as the explicit pipeline (and, for the copy transducer, an "
             "output equal to it)",
             Repro("typecheck/antichain-witness", iter, false, &tau1, &tau2,
                   ares->counterexample_input.has_value()
                       ? &*ares->counterexample_input
                       : nullptr,
                   "antichain counterexample matches explicit"));
      }
    }
  }

  Pred2 violated = [this](const Nbta& c1, const Nbta& c2, const BinaryTree&) {
    const PebbleTransducer ccopy = MakeCopyTransducer(base_);
    const Typechecker ctc(ccopy, base_, base_);
    Result<TypecheckResult> r = ctc.Typecheck(c1, c2, TcOptions());
    if (!r.ok()) return false;
    Result<Nbta> rc2 = RefComplement(c2, base_);
    if (!rc2.ok()) return false;
    const bool inc = RefIsEmpty(RefIntersect(c1, *rc2));
    if (r->verdict == TypecheckVerdict::kTypechecks) return !inc;
    if (r->verdict == TypecheckVerdict::kCounterexample) return inc;
    // kUnknown is a failure only when nothing was cut short (see below).
    return !r->exhausted.exhausted;
  };
  auto fail_verdict = [&](const char* law, const std::string& detail) {
    Nbta s1 = tau1, s2 = tau2;
    BinaryTree dummy;
    dummy.SetRoot(dummy.AddLeaf(0));
    if (opts_.shrink && violated(s1, s2, dummy)) {
      ShrinkTwoNbtaAndTree(&s1, &s2, &dummy, violated);
    }
    Fail(law, iter, detail,
         Repro(law, iter, false, &s1, &s2, nullptr, detail));
  };

  ++report_.comparisons;
  switch (res->verdict) {
    case TypecheckVerdict::kTypechecks:
      if (!ref_included) {
        fail_verdict("typecheck/verdict",
                     "verdict kTypechecks but the reference decision finds "
                     "a counterexample (copy transducer: τ1 ⊄ τ2)");
      }
      break;
    case TypecheckVerdict::kCounterexample: {
      if (ref_included) {
        fail_verdict("typecheck/verdict",
                     "verdict kCounterexample but the reference decision "
                     "proves τ1 ⊆ τ2 (copy transducer)");
        break;
      }
      if (LawDone("typecheck/witness")) break;
      ++report_.comparisons;
      bool witness_ok = res->counterexample_input.has_value() &&
                        RefAccepts(tau1, *res->counterexample_input) &&
                        !RefAccepts(tau2, *res->counterexample_input);
      if (witness_ok && res->counterexample_output.has_value()) {
        // The copy transducer's only output on t is t itself.
        witness_ok = *res->counterexample_output == *res->counterexample_input;
      }
      if (!witness_ok) {
        Fail("typecheck/witness", iter,
             "counterexample input must lie in τ1 \\ τ2 (and the copy "
             "transducer's output must equal its input)",
             Repro("typecheck/witness", iter, false, &tau1, &tau2,
                   res->counterexample_input.has_value()
                       ? &*res->counterexample_input
                       : nullptr,
                   "counterexample_input ∈ L(τ1) \\ L(τ2)"));
      }
      break;
    }
    case TypecheckVerdict::kUnknown:
      // A deadline/budget cut is a tallied skip; kUnknown with nothing cut
      // short means the ladder gave up on a decidable tiny instance.
      if (res->exhausted.exhausted) {
        ++report_.budget_skips;
        break;
      }
      fail_verdict("typecheck/verdict",
                   "verdict kUnknown on a tiny copy-transducer instance");
      break;
  }
}

void Harness::CheckInferInverse(size_t iter, Rng& rng) {
  if (LawDone("infer/copy")) return;
  RandomNbtaOptions o;
  o.num_states = 1 + static_cast<uint32_t>(rng.NextBelow(3));
  o.rule_density = 0.2 + 0.5 * rng.NextDouble();
  o.leaf_density = 0.4 + 0.4 * rng.NextDouble();
  o.accepting_density = 0.3 + 0.4 * rng.NextDouble();
  const Nbta tau2 = RandomNbta(base_, rng, o);

  const PebbleTransducer copy = MakeCopyTransducer(base_);
  const Typechecker tc(copy, base_, base_);
  Result<Nbta> inferred = tc.InferInverseType(tau2, TcOptions());
  if (!inferred.ok()) {
    if (inferred.status().code() == StatusCode::kResourceExhausted ||
        inferred.status().code() == StatusCode::kDeadlineExceeded) {
      ++report_.budget_skips;
      return;
    }
    Fail("infer/copy", iter,
         "InferInverseType failed: " + inferred.status().ToString(),
         Repro("infer/copy", iter, false, &tau2, nullptr, nullptr,
               "InferInverseType succeeds"));
    return;
  }
  // For the copy transducer, τ2⁻¹ = {t | {t} ⊆ τ2} = L(τ2).
  NbtaIndex idx_inf(*inferred);
  for (const BinaryTree& t : exhaustive_base_) {
    ++report_.comparisons;
    if (NbtaAccepts(idx_inf, t) != RefAccepts(tau2, t)) {
      Fail("infer/copy", iter,
           "InferInverseType for the copy transducer must equal L(τ2)",
           Repro("infer/copy", iter, false, &tau2, nullptr, &t,
                 "inferred inverse type accepts t iff τ2 does"));
      return;
    }
  }
}

}  // namespace

RankedAlphabet DiffcheckAlphabet(bool extended) {
  RankedAlphabet sigma;
  PEBBLETC_CHECK(sigma.AddLeaf("a0").ok());
  PEBBLETC_CHECK(sigma.AddLeaf("b0").ok());
  PEBBLETC_CHECK(sigma.AddBinary("a2").ok());
  PEBBLETC_CHECK(sigma.AddBinary("b2").ok());
  if (extended) {
    PEBBLETC_CHECK(sigma.AddLeaf("u0").ok());
    PEBBLETC_CHECK(sigma.AddBinary("u2").ok());
  }
  return sigma;
}

std::string FormatNbtaConstruction(const Nbta& a, const RankedAlphabet& sigma,
                                   const std::string& var) {
  std::ostringstream os;
  os << "Nbta " << var << ";\n";
  os << var << ".num_symbols = " << a.num_symbols << ";\n";
  if (a.num_states > 0) {
    os << "for (int i = 0; i < " << a.num_states << "; ++i) " << var
       << ".AddState();\n";
  }
  for (StateId q = 0; q < a.num_states; ++q) {
    if (a.accepting[q]) os << var << ".accepting[" << q << "] = true;\n";
  }
  for (const Nbta::LeafRule& r : a.leaf_rules) {
    os << var << ".AddLeafRule(" << r.symbol << ", " << r.to << ");  // "
       << (r.symbol < sigma.size() ? sigma.Name(r.symbol) : "?") << "\n";
  }
  for (const Nbta::BinaryRule& r : a.rules) {
    os << var << ".AddRule(" << r.symbol << ", " << r.left << ", " << r.right
       << ", " << r.to << ");  // "
       << (r.symbol < sigma.size() ? sigma.Name(r.symbol) : "?") << "\n";
  }
  return os.str();
}

DiffcheckReport RunDiffcheck(const DiffcheckOptions& options) {
  const uint32_t threads = std::min<uint64_t>(
      options.num_threads == 0 ? TaThreadPool::HardwareWorkers()
                               : options.num_threads,
      options.iters == 0 ? 1 : options.iters);
  if (threads <= 1) {
    Harness harness(options);
    return harness.Run();
  }

  // Sharded sweep: contiguous per-worker iteration ranges (iteration i draws
  // from MixSeed(seed, i) alone, so the split has no effect on what any
  // iteration does), one Harness per worker, a shared failure tally capping
  // the whole sweep, and a deterministic merge ordered by worker index.
  std::vector<DiffcheckReport::WorkerRange> ranges(threads);
  const size_t base = options.iters / threads;
  const size_t rem = options.iters % threads;
  size_t next_start = options.start;
  for (uint32_t w = 0; w < threads; ++w) {
    ranges[w].worker = w;
    ranges[w].start = next_start;
    ranges[w].iters = base + (w < rem ? 1 : 0);
    next_start += ranges[w].iters;
  }

  std::atomic<size_t> shared_failures{0};
  std::vector<DiffcheckReport> reports(threads);
  TaThreadPool::Instance().Run(threads, [&](uint32_t w) {
    DiffcheckOptions shard = options;
    shard.start = ranges[w].start;
    shard.iters = ranges[w].iters;
    Harness harness(shard, &shared_failures);
    reports[w] = harness.Run();
  });

  DiffcheckReport merged;
  merged.worker_ranges = std::move(ranges);
  std::set<std::string> seen_laws;
  for (DiffcheckReport& r : reports) {
    merged.iterations += r.iterations;
    merged.comparisons += r.comparisons;
    merged.budget_skips += r.budget_skips;
    merged.suppressed_failures += r.suppressed_failures;
    for (DiffcheckFailure& f : r.failures) {
      // Each law reports once sweep-wide, as in a serial run; later workers'
      // duplicates count as suppressed.
      if (!seen_laws.insert(f.law).second ||
          merged.failures.size() >= options.max_failures) {
        ++merged.suppressed_failures;
        continue;
      }
      merged.failures.push_back(std::move(f));
    }
  }
  return merged;
}

}  // namespace pebbletc
