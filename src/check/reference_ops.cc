#include "src/check/reference_ops.h"

#include <limits>
#include <map>
#include <utility>

#include "src/common/check.h"

namespace pebbletc {

namespace {

constexpr uint64_t kSat = std::numeric_limits<uint64_t>::max();

uint64_t SatAdd(uint64_t x, uint64_t y) { return x > kSat - y ? kSat : x + y; }

uint64_t SatMul(uint64_t x, uint64_t y) {
  if (x == 0 || y == 0) return 0;
  return x > kSat / y ? kSat : x * y;
}

}  // namespace

std::vector<std::set<StateId>> RefRunStates(const Nbta& a,
                                            const BinaryTree& tree) {
  // NodeIds are created children-first, so ascending order is bottom-up.
  std::vector<std::set<StateId>> states(tree.size());
  for (NodeId n = 0; n < tree.size(); ++n) {
    if (tree.IsLeaf(n)) {
      for (const Nbta::LeafRule& r : a.leaf_rules) {
        if (r.symbol == tree.symbol(n)) states[n].insert(r.to);
      }
    } else {
      const std::set<StateId>& ls = states[tree.left(n)];
      const std::set<StateId>& rs = states[tree.right(n)];
      for (const Nbta::BinaryRule& r : a.rules) {
        if (r.symbol == tree.symbol(n) && ls.count(r.left) &&
            rs.count(r.right)) {
          states[n].insert(r.to);
        }
      }
    }
  }
  return states;
}

bool RefAccepts(const Nbta& a, const BinaryTree& tree) {
  if (tree.empty()) return false;
  std::vector<std::set<StateId>> states = RefRunStates(a, tree);
  for (StateId q : states[tree.root()]) {
    if (a.accepting[q]) return true;
  }
  return false;
}

Result<Dbta> RefDeterminize(const Nbta& a, const RankedAlphabet& alphabet) {
  if (alphabet.size() != a.num_symbols) {
    return Status::InvalidArgument("alphabet size mismatch in RefDeterminize");
  }
  if (a.num_states > kRefMaxDeterminizeStates) {
    return Status::ResourceExhausted(
        "RefDeterminize materializes all 2^" + std::to_string(a.num_states) +
        " subsets; refusing");
  }
  const uint32_t n = a.num_states;
  const uint32_t subsets = 1u << n;
  Dbta out(subsets, a.num_symbols);
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    uint32_t mask = 0;
    for (const Nbta::LeafRule& r : a.leaf_rules) {
      if (r.symbol == s) mask |= 1u << r.to;
    }
    out.SetLeafState(s, mask);
  }
  for (SymbolId s = 0; s < a.num_symbols; ++s) {
    for (uint32_t m1 = 0; m1 < subsets; ++m1) {
      for (uint32_t m2 = 0; m2 < subsets; ++m2) {
        uint32_t to = 0;
        for (const Nbta::BinaryRule& r : a.rules) {
          if (r.symbol == s && ((m1 >> r.left) & 1u) && ((m2 >> r.right) & 1u)) {
            to |= 1u << r.to;
          }
        }
        out.SetNext(s, m1, m2, to);
      }
    }
  }
  for (uint32_t m = 0; m < subsets; ++m) {
    bool acc = false;
    for (StateId q = 0; q < n; ++q) {
      if (((m >> q) & 1u) && a.accepting[q]) acc = true;
    }
    out.set_accepting(m, acc);
  }
  return out;
}

Result<Nbta> RefComplement(const Nbta& a, const RankedAlphabet& alphabet) {
  PEBBLETC_ASSIGN_OR_RETURN(Dbta det, RefDeterminize(a, alphabet));
  Nbta out;
  out.num_symbols = a.num_symbols;
  for (uint32_t q = 0; q < det.num_states(); ++q) {
    StateId id = out.AddState();
    out.accepting[id] = !det.accepting(q);
  }
  for (SymbolId s : alphabet.LeafSymbols()) {
    out.AddLeafRule(s, det.LeafState(s));
  }
  for (SymbolId s : alphabet.BinarySymbols()) {
    for (uint32_t m1 = 0; m1 < det.num_states(); ++m1) {
      for (uint32_t m2 = 0; m2 < det.num_states(); ++m2) {
        out.AddRule(s, m1, m2, det.Next(s, m1, m2));
      }
    }
  }
  return out;
}

Nbta RefIntersect(const Nbta& a, const Nbta& b) {
  PEBBLETC_CHECK(a.num_symbols == b.num_symbols)
      << "RefIntersect over mismatched alphabets";
  Nbta out;
  out.num_symbols = a.num_symbols;
  auto pair_id = [&](StateId i, StateId j) -> StateId {
    return i * b.num_states + j;
  };
  for (StateId i = 0; i < a.num_states; ++i) {
    for (StateId j = 0; j < b.num_states; ++j) {
      StateId id = out.AddState();
      out.accepting[id] = a.accepting[i] && b.accepting[j];
    }
  }
  for (const Nbta::LeafRule& ra : a.leaf_rules) {
    for (const Nbta::LeafRule& rb : b.leaf_rules) {
      if (ra.symbol == rb.symbol) {
        out.AddLeafRule(ra.symbol, pair_id(ra.to, rb.to));
      }
    }
  }
  for (const Nbta::BinaryRule& ra : a.rules) {
    for (const Nbta::BinaryRule& rb : b.rules) {
      if (ra.symbol == rb.symbol) {
        out.AddRule(ra.symbol, pair_id(ra.left, rb.left),
                    pair_id(ra.right, rb.right), pair_id(ra.to, rb.to));
      }
    }
  }
  return out;
}

Nbta RefUnion(const Nbta& a, const Nbta& b) {
  PEBBLETC_CHECK(a.num_symbols == b.num_symbols)
      << "RefUnion over mismatched alphabets";
  Nbta out;
  out.num_symbols = a.num_symbols;
  for (StateId q = 0; q < a.num_states; ++q) {
    StateId id = out.AddState();
    out.accepting[id] = a.accepting[q];
  }
  for (StateId q = 0; q < b.num_states; ++q) {
    StateId id = out.AddState();
    out.accepting[id] = b.accepting[q];
  }
  for (const Nbta::LeafRule& r : a.leaf_rules) out.AddLeafRule(r.symbol, r.to);
  for (const Nbta::BinaryRule& r : a.rules) {
    out.AddRule(r.symbol, r.left, r.right, r.to);
  }
  for (const Nbta::LeafRule& r : b.leaf_rules) {
    out.AddLeafRule(r.symbol, r.to + a.num_states);
  }
  for (const Nbta::BinaryRule& r : b.rules) {
    out.AddRule(r.symbol, r.left + a.num_states, r.right + a.num_states,
                r.to + a.num_states);
  }
  return out;
}

namespace {

// Inhabited states by whole-rule-list rescans until stable.
std::vector<bool> RefInhabited(const Nbta& a) {
  std::vector<bool> inhabited(a.num_states, false);
  for (const Nbta::LeafRule& r : a.leaf_rules) inhabited[r.to] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Nbta::BinaryRule& r : a.rules) {
      if (inhabited[r.left] && inhabited[r.right] && !inhabited[r.to]) {
        inhabited[r.to] = true;
        changed = true;
      }
    }
  }
  return inhabited;
}

}  // namespace

bool RefIsEmpty(const Nbta& a) {
  std::vector<bool> inhabited = RefInhabited(a);
  for (StateId q = 0; q < a.num_states; ++q) {
    if (inhabited[q] && a.accepting[q]) return false;
  }
  return true;
}

Nbta RefTrim(const Nbta& a) {
  std::vector<bool> inhabited = RefInhabited(a);
  // Useful states: can head a context leading to acceptance. Fixpoint over
  // the rules, restricted to inhabited children (a rule whose other child is
  // uninhabited can never fire).
  std::vector<bool> useful(a.num_states, false);
  for (StateId q = 0; q < a.num_states; ++q) {
    if (a.accepting[q] && inhabited[q]) useful[q] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Nbta::BinaryRule& r : a.rules) {
      if (useful[r.to] && inhabited[r.left] && inhabited[r.right]) {
        if (!useful[r.left]) {
          useful[r.left] = true;
          changed = true;
        }
        if (!useful[r.right]) {
          useful[r.right] = true;
          changed = true;
        }
      }
    }
  }
  std::vector<StateId> remap(a.num_states, kNoSymbol);
  Nbta out;
  out.num_symbols = a.num_symbols;
  for (StateId q = 0; q < a.num_states; ++q) {
    if (inhabited[q] && useful[q]) {
      remap[q] = out.AddState();
      out.accepting[remap[q]] = a.accepting[q];
    }
  }
  for (const Nbta::LeafRule& r : a.leaf_rules) {
    if (remap[r.to] != kNoSymbol) out.AddLeafRule(r.symbol, remap[r.to]);
  }
  for (const Nbta::BinaryRule& r : a.rules) {
    if (remap[r.to] != kNoSymbol && remap[r.left] != kNoSymbol &&
        remap[r.right] != kNoSymbol) {
      out.AddRule(r.symbol, remap[r.left], remap[r.right], remap[r.to]);
    }
  }
  if (out.num_states == 0) out.AddState();
  return out;
}

namespace {

// runs(q, s) = accepting runs of s-node trees evaluating to q, memoized.
uint64_t RefCountRuns(const Nbta& a, StateId q, size_t s,
                      std::map<std::pair<StateId, size_t>, uint64_t>* memo) {
  if (s == 0 || s % 2 == 0) return 0;
  auto key = std::make_pair(q, s);
  auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  uint64_t total = 0;
  if (s == 1) {
    for (const Nbta::LeafRule& r : a.leaf_rules) {
      if (r.to == q) total = SatAdd(total, 1);
    }
  } else {
    for (const Nbta::BinaryRule& r : a.rules) {
      if (r.to != q) continue;
      for (size_t s1 = 1; s1 <= s - 2; s1 += 2) {
        const size_t s2 = s - 1 - s1;
        total = SatAdd(total, SatMul(RefCountRuns(a, r.left, s1, memo),
                                     RefCountRuns(a, r.right, s2, memo)));
      }
    }
  }
  (*memo)[key] = total;
  return total;
}

}  // namespace

uint64_t RefCountAcceptedTrees(const Nbta& a, size_t num_nodes) {
  if (num_nodes == 0 || num_nodes % 2 == 0) return 0;
  std::map<std::pair<StateId, size_t>, uint64_t> memo;
  uint64_t total = 0;
  for (StateId q = 0; q < a.num_states; ++q) {
    if (a.accepting[q]) {
      total = SatAdd(total, RefCountRuns(a, q, num_nodes, &memo));
    }
  }
  return total;
}

namespace {

// trees[s] = all trees with s nodes, built smallest sizes first.
void BuildTreesBySize(const RankedAlphabet& alphabet, size_t max_nodes,
                      size_t max_count,
                      std::vector<std::vector<BinaryTree>>* trees,
                      bool* truncated) {
  trees->assign(max_nodes + 1, {});
  size_t total = 0;
  bool clipped = false;
  auto push = [&](size_t s, BinaryTree t) {
    if (total >= max_count) {
      clipped = true;
      return false;
    }
    (*trees)[s].push_back(std::move(t));
    ++total;
    return true;
  };
  if (max_nodes >= 1) {
    for (SymbolId a : alphabet.LeafSymbols()) {
      BinaryTree t;
      t.SetRoot(t.AddLeaf(a));
      if (!push(1, std::move(t))) break;
    }
  }
  for (size_t s = 3; s <= max_nodes && !clipped; s += 2) {
    for (SymbolId a : alphabet.BinarySymbols()) {
      for (size_t s1 = 1; s1 <= s - 2 && !clipped; s1 += 2) {
        const size_t s2 = s - 1 - s1;
        for (const BinaryTree& lt : (*trees)[s1]) {
          for (const BinaryTree& rt : (*trees)[s2]) {
            BinaryTree t;
            NodeId l = t.CopySubtree(lt, lt.root());
            NodeId r = t.CopySubtree(rt, rt.root());
            t.SetRoot(t.AddInternal(a, l, r));
            if (!push(s, std::move(t))) break;
          }
          if (clipped) break;
        }
      }
      if (clipped) break;
    }
  }
  if (truncated != nullptr) *truncated = clipped;
}

}  // namespace

std::vector<BinaryTree> AllTreesWithNodes(const RankedAlphabet& alphabet,
                                          size_t num_nodes, size_t max_count,
                                          bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  if (num_nodes == 0 || num_nodes % 2 == 0) return {};
  std::vector<std::vector<BinaryTree>> trees;
  BuildTreesBySize(alphabet, num_nodes, max_count, &trees, truncated);
  return std::move(trees[num_nodes]);
}

std::vector<BinaryTree> AllTreesUpToNodes(const RankedAlphabet& alphabet,
                                          size_t max_nodes, size_t max_count,
                                          bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::vector<std::vector<BinaryTree>> trees;
  BuildTreesBySize(alphabet, max_nodes, max_count, &trees, truncated);
  std::vector<BinaryTree> out;
  for (size_t s = 1; s <= max_nodes; s += 2) {
    for (BinaryTree& t : trees[s]) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace pebbletc
