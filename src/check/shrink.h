// Greedy shrinking of failing diffcheck witnesses to minimal reproducers.
//
// Given a witness (an automaton, a tree, or an (automaton, tree) pair) and a
// predicate that re-runs the failing law, the shrinkers repeatedly try
// structurally smaller candidates and keep any candidate on which the law
// still fails. The result is locally minimal: no single shrink step (hoist a
// subtree over its parent, drop one rule, drop one state, clear one
// accepting bit) preserves the failure.
//
// Predicates must be pure with respect to their argument; the shrinkers call
// them O(size²) times.

#ifndef PEBBLETC_CHECK_SHRINK_H_
#define PEBBLETC_CHECK_SHRINK_H_

#include <functional>

#include "src/ta/nbta.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// True ⇔ the law still fails on this candidate.
using TreeFailurePredicate = std::function<bool(const BinaryTree&)>;
using NbtaFailurePredicate = std::function<bool(const Nbta&)>;

/// `tree` with the subtree rooted at `node` replaced by the subtree rooted
/// at `replacement` (a descendant of `node`, typically one of its children).
/// Nodes are renumbered; the result is a fresh tree.
BinaryTree HoistSubtree(const BinaryTree& tree, NodeId node,
                        NodeId replacement);

/// Greedily hoists children over their parents while `still_fails` holds.
/// `still_fails(tree)` must be true on entry.
BinaryTree ShrinkTree(BinaryTree tree, const TreeFailurePredicate& still_fails);

/// `a` without state `q`: rules and leaf rules touching `q` are dropped,
/// higher state ids shift down by one.
Nbta RemoveState(const Nbta& a, StateId q);

/// Greedily drops binary rules, leaf rules, accepting bits, and whole states
/// while `still_fails` holds. `still_fails(a)` must be true on entry.
Nbta ShrinkNbta(Nbta a, const NbtaFailurePredicate& still_fails);

/// Joint shrink of an (automaton, tree) witness: alternates ShrinkNbta (tree
/// held fixed) and ShrinkTree (automaton held fixed) until neither makes
/// progress. `still_fails(a, tree)` must be true on entry.
void ShrinkNbtaAndTree(
    Nbta* a, BinaryTree* tree,
    const std::function<bool(const Nbta&, const BinaryTree&)>& still_fails);

}  // namespace pebbletc

#endif  // PEBBLETC_CHECK_SHRINK_H_
