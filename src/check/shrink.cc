#include "src/check/shrink.h"

#include <utility>

#include "src/common/check.h"

namespace pebbletc {

namespace {

// Copies `src` into `*out`, but when the walk reaches `at` it copies the
// subtree rooted at `with` instead. Returns the id of the copied root.
NodeId CopyReplacing(const BinaryTree& src, NodeId n, NodeId at, NodeId with,
                     BinaryTree* out) {
  if (n == at) return out->CopySubtree(src, with);
  if (src.IsLeaf(n)) return out->AddLeaf(src.symbol(n));
  NodeId l = CopyReplacing(src, src.left(n), at, with, out);
  NodeId r = CopyReplacing(src, src.right(n), at, with, out);
  return out->AddInternal(src.symbol(n), l, r);
}

}  // namespace

BinaryTree HoistSubtree(const BinaryTree& tree, NodeId node,
                        NodeId replacement) {
  BinaryTree out;
  out.SetRoot(CopyReplacing(tree, tree.root(), node, replacement, &out));
  return out;
}

BinaryTree ShrinkTree(BinaryTree tree,
                      const TreeFailurePredicate& still_fails) {
  PEBBLETC_CHECK(!tree.empty()) << "shrinking an empty tree";
  bool progress = true;
  while (progress) {
    progress = false;
    for (NodeId n = 0; n < tree.size(); ++n) {
      if (tree.IsLeaf(n)) continue;
      for (NodeId child : {tree.left(n), tree.right(n)}) {
        BinaryTree candidate = HoistSubtree(tree, n, child);
        if (still_fails(candidate)) {
          tree = std::move(candidate);
          progress = true;
          break;
        }
      }
      // Node ids changed if we shrank; restart the scan.
      if (progress) break;
    }
  }
  return tree;
}

Nbta RemoveState(const Nbta& a, StateId q) {
  PEBBLETC_CHECK(q < a.num_states) << "RemoveState out of range";
  Nbta out;
  out.num_symbols = a.num_symbols;
  for (StateId s = 0; s < a.num_states; ++s) {
    if (s == q) continue;
    StateId id = out.AddState();
    out.accepting[id] = a.accepting[s];
  }
  auto remap = [q](StateId s) { return s > q ? s - 1 : s; };
  for (const Nbta::LeafRule& r : a.leaf_rules) {
    if (r.to != q) out.AddLeafRule(r.symbol, remap(r.to));
  }
  for (const Nbta::BinaryRule& r : a.rules) {
    if (r.to != q && r.left != q && r.right != q) {
      out.AddRule(r.symbol, remap(r.left), remap(r.right), remap(r.to));
    }
  }
  return out;
}

Nbta ShrinkNbta(Nbta a, const NbtaFailurePredicate& still_fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Whole states first: the biggest single step.
    for (StateId q = 0; q < a.num_states; ++q) {
      Nbta candidate = RemoveState(a, q);
      if (still_fails(candidate)) {
        a = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (size_t i = 0; i < a.rules.size(); ++i) {
      Nbta candidate = a;
      candidate.rules.erase(candidate.rules.begin() + i);
      if (still_fails(candidate)) {
        a = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (size_t i = 0; i < a.leaf_rules.size(); ++i) {
      Nbta candidate = a;
      candidate.leaf_rules.erase(candidate.leaf_rules.begin() + i);
      if (still_fails(candidate)) {
        a = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (StateId q = 0; q < a.num_states; ++q) {
      if (!a.accepting[q]) continue;
      Nbta candidate = a;
      candidate.accepting[q] = false;
      if (still_fails(candidate)) {
        a = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return a;
}

void ShrinkNbtaAndTree(
    Nbta* a, BinaryTree* tree,
    const std::function<bool(const Nbta&, const BinaryTree&)>& still_fails) {
  bool progress = true;
  while (progress) {
    const size_t states_before = a->num_states;
    const size_t rules_before = a->rules.size() + a->leaf_rules.size();
    const size_t nodes_before = tree->size();
    *a = ShrinkNbta(std::move(*a),
                    [&](const Nbta& cand) { return still_fails(cand, *tree); });
    *tree = ShrinkTree(std::move(*tree), [&](const BinaryTree& cand) {
      return still_fails(*a, cand);
    });
    progress = a->num_states < states_before ||
               a->rules.size() + a->leaf_rules.size() < rules_before ||
               tree->size() < nodes_before;
  }
}

}  // namespace pebbletc
