// Deliberately-naive reference implementations of the tree-automaton
// operation suite, written for obviousness rather than speed and fully
// independent of the compiled NbtaIndex layer (src/ta/nbta_index.h).
//
// These are the trusted side of the differential oracle (docs/DIFFCHECK.md):
// each follows the textbook definition as directly as possible — plain
// std::set state sets, bitmask set-of-sets subset construction over *all*
// 2^|Q| subsets, dense pairwise products over *all* state pairs, fixpoints
// that rescan the whole rule list until nothing changes. The optimized ops
// in src/ta/nbta.h must agree with them per tree; any disagreement is a bug
// in one side or the other.
//
// Everything here is exponential or quadratic by design. Callers keep the
// automata small (the RefDeterminize family refuses more than
// kRefMaxDeterminizeStates states outright).

#ifndef PEBBLETC_CHECK_REFERENCE_OPS_H_
#define PEBBLETC_CHECK_REFERENCE_OPS_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/ta/nbta.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// RefDeterminize materializes all 2^|Q| subsets; beyond this many input
/// states it refuses (kResourceExhausted) instead of exploding.
inline constexpr uint32_t kRefMaxDeterminizeStates = 10;

/// Direct bottom-up run: the set of states each node's subtree can evaluate
/// to, computed by scanning the flat rule vectors per node.
std::vector<std::set<StateId>> RefRunStates(const Nbta& a,
                                            const BinaryTree& tree);

/// Membership by direct bottom-up evaluation: RunsOn(tree) ∩ accepting ≠ ∅.
bool RefAccepts(const Nbta& a, const BinaryTree& tree);

/// Set-of-sets subset construction over *all* subsets of Q, encoded as
/// bitmasks: deterministic state m ⊆ Q, transition on (a, m1, m2) is the set
/// of rule targets whose children lie in m1 × m2. Complete by construction
/// (the empty subset is the sink). The result has exactly 2^|Q| states.
Result<Dbta> RefDeterminize(const Nbta& a, const RankedAlphabet& alphabet);

/// Brute-force complement relative to well-ranked trees: RefDeterminize,
/// flip every accepting bit, and write out one rule per rank-valid table
/// entry (without going through Dbta::ToNbta).
Result<Nbta> RefComplement(const Nbta& a, const RankedAlphabet& alphabet);

/// Pairwise product over *all* |Qa| × |Qb| state pairs (no reachability
/// pruning): state (i, j) is i * |Qb| + j, and every same-symbol rule pair
/// contributes a product rule.
Nbta RefIntersect(const Nbta& a, const Nbta& b);

/// Disjoint sum built state by state (b's states shifted past a's).
Nbta RefUnion(const Nbta& a, const Nbta& b);

/// Emptiness by the naive inhabitedness fixpoint: rescan every rule until no
/// new state becomes inhabited, then look for an inhabited accepting state.
bool RefIsEmpty(const Nbta& a);

/// Trim by two naive whole-rule-list fixpoints (inhabited, then useful),
/// keeping states that are both.
Nbta RefTrim(const Nbta& a);

/// Number of accepting runs on trees with exactly `num_nodes` nodes,
/// saturating at UINT64_MAX — the reference twin of CountAcceptedTrees,
/// computed by top-down memoized recursion instead of the bottom-up table.
uint64_t RefCountAcceptedTrees(const Nbta& a, size_t num_nodes);

/// Every well-ranked tree over `alphabet` with exactly `num_nodes` nodes, in
/// a deterministic order. Stops after `max_count` trees, setting
/// `*truncated` (if non-null) so callers can tell an exhaustive enumeration
/// from a clipped one.
std::vector<BinaryTree> AllTreesWithNodes(const RankedAlphabet& alphabet,
                                          size_t num_nodes, size_t max_count,
                                          bool* truncated = nullptr);

/// Every well-ranked tree with an odd node count ≤ `max_nodes`, smallest
/// sizes first; same truncation contract as AllTreesWithNodes.
std::vector<BinaryTree> AllTreesUpToNodes(const RankedAlphabet& alphabet,
                                          size_t max_nodes, size_t max_count,
                                          bool* truncated = nullptr);

}  // namespace pebbletc

#endif  // PEBBLETC_CHECK_REFERENCE_OPS_H_
