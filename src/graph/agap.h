// Alternating Graph Accessibility (AGAP), the P-complete problem the paper
// reduces k-pebble automaton acceptance to (proof of Theorem 4.7).
//
// An alternating graph partitions its nodes into and-nodes and or-nodes.
// Accessibility is the least fixpoint of:
//   * an or-node is accessible iff at least one successor is accessible;
//   * an and-node is accessible iff all successors are accessible
//     (so an and-node with no successors is accessible — this plays the role
//     of the paper's ε node).
// The solver runs in time linear in |V| + |E|.

#ifndef PEBBLETC_GRAPH_AGAP_H_
#define PEBBLETC_GRAPH_AGAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pebbletc {

/// Node index within an alternating graph.
using AgapNodeId = uint32_t;

class AlternatingGraph {
 public:
  enum class NodeType { kAnd, kOr };

  /// Appends a node and returns its index.
  AgapNodeId AddNode(NodeType type);

  /// Adds the directed edge from → to. Both nodes must exist.
  void AddEdge(AgapNodeId from, AgapNodeId to);

  size_t num_nodes() const { return types_.size(); }
  size_t num_edges() const { return num_edges_; }
  NodeType type(AgapNodeId n) const { return types_[n]; }
  const std::vector<AgapNodeId>& successors(AgapNodeId n) const {
    return successors_[n];
  }

  /// Computes the accessible-node set (least fixpoint), linear time.
  std::vector<bool> ComputeAccessible() const;

  /// Convenience: accessibility of a single node.
  bool IsAccessible(AgapNodeId n) const { return ComputeAccessible()[n]; }

 private:
  std::vector<NodeType> types_;
  std::vector<std::vector<AgapNodeId>> successors_;
  size_t num_edges_ = 0;
};

}  // namespace pebbletc

#endif  // PEBBLETC_GRAPH_AGAP_H_
