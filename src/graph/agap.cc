#include "src/graph/agap.h"

#include "src/common/check.h"

namespace pebbletc {

AgapNodeId AlternatingGraph::AddNode(NodeType type) {
  AgapNodeId id = static_cast<AgapNodeId>(types_.size());
  types_.push_back(type);
  successors_.emplace_back();
  return id;
}

void AlternatingGraph::AddEdge(AgapNodeId from, AgapNodeId to) {
  PEBBLETC_CHECK(from < types_.size() && to < types_.size()) << "bad node";
  successors_[from].push_back(to);
  ++num_edges_;
}

std::vector<bool> AlternatingGraph::ComputeAccessible() const {
  const size_t n = types_.size();
  // Backward propagation: reverse edges, per-and-node countdown of
  // not-yet-accessible successors.
  std::vector<std::vector<AgapNodeId>> predecessors(n);
  std::vector<size_t> pending(n, 0);
  for (AgapNodeId v = 0; v < n; ++v) {
    pending[v] = successors_[v].size();
    for (AgapNodeId s : successors_[v]) predecessors[s].push_back(v);
  }
  std::vector<bool> accessible(n, false);
  std::vector<AgapNodeId> work;
  for (AgapNodeId v = 0; v < n; ++v) {
    if (types_[v] == NodeType::kAnd && successors_[v].empty()) {
      accessible[v] = true;
      work.push_back(v);
    }
  }
  while (!work.empty()) {
    AgapNodeId v = work.back();
    work.pop_back();
    for (AgapNodeId p : predecessors[v]) {
      if (accessible[p]) continue;
      if (types_[p] == NodeType::kOr) {
        accessible[p] = true;
        work.push_back(p);
      } else {
        PEBBLETC_DCHECK(pending[p] > 0) << "counter underflow";
        if (--pending[p] == 0) {
          accessible[p] = true;
          work.push_back(p);
        }
      }
    }
  }
  return accessible;
}

}  // namespace pebbletc
