#include "src/ext/data_values.h"

#include <string>

#include "src/common/check.h"

namespace pebbletc {

Result<ExpandedDataAlphabet> ExpandDataAlphabet(const RankedAlphabet& base,
                                                SymbolId data_symbol,
                                                uint32_t num_predicates) {
  if (data_symbol >= base.size() || base.Rank(data_symbol) != 0) {
    return Status::InvalidArgument("data symbol must be a leaf symbol");
  }
  if (num_predicates > 16) {
    return Status::InvalidArgument("too many predicates (limit 16)");
  }
  ExpandedDataAlphabet out;
  out.base_data_symbol = data_symbol;
  out.num_predicates = num_predicates;
  // Copy every base symbol under its own id (the plain `d` stays but is
  // never used by expanded trees), then append the d#bits variants.
  for (SymbolId s = 0; s < base.size(); ++s) {
    Result<SymbolId> id = base.Rank(s) == 0
                              ? out.ranked.AddLeaf(base.Name(s))
                              : out.ranked.AddBinary(base.Name(s));
    PEBBLETC_CHECK(id.ok()) << id.status().ToString();
    PEBBLETC_CHECK(*id == s) << "expanded ids out of sync";
    out.to_base.push_back(s);
  }
  const uint32_t combos = 1u << num_predicates;
  out.data_variant.resize(combos);
  for (uint32_t bits = 0; bits < combos; ++bits) {
    std::string name = base.Name(data_symbol) + "#";
    for (uint32_t i = 0; i < num_predicates; ++i) {
      name += ((bits >> i) & 1u) ? '1' : '0';
    }
    PEBBLETC_ASSIGN_OR_RETURN(SymbolId id, out.ranked.AddLeaf(name));
    out.data_variant[bits] = id;
    out.to_base.push_back(data_symbol);
  }
  return out;
}

Result<BinaryTree> AbstractDataTree(const DataTree& input,
                                    const ExpandedDataAlphabet& expanded,
                                    const std::vector<UnaryPredicate>& preds) {
  if (preds.size() != expanded.num_predicates) {
    return Status::InvalidArgument("predicate count mismatch");
  }
  const BinaryTree& t = input.tree;
  BinaryTree out;
  // Node ids are preserved (children precede parents in both trees).
  for (NodeId n = 0; n < t.size(); ++n) {
    if (t.IsLeaf(n)) {
      SymbolId sym = t.symbol(n);
      if (sym == expanded.base_data_symbol) {
        if (n >= input.values.size()) {
          return Status::InvalidArgument("data leaf without a value");
        }
        uint32_t bits = 0;
        for (uint32_t i = 0; i < preds.size(); ++i) {
          if (preds[i](input.values[n])) bits |= (1u << i);
        }
        NodeId id = out.AddLeaf(expanded.data_variant[bits]);
        PEBBLETC_CHECK(id == n) << "node ids out of sync";
      } else {
        NodeId id = out.AddLeaf(sym);
        PEBBLETC_CHECK(id == n) << "node ids out of sync";
      }
    } else {
      NodeId id = out.AddInternal(t.symbol(n), t.left(n), t.right(n));
      PEBBLETC_CHECK(id == n) << "node ids out of sync";
    }
  }
  out.SetRoot(t.root());
  return out;
}

Nbta LiftTypeToExpanded(const Nbta& base_type,
                        const ExpandedDataAlphabet& expanded) {
  return InverseRelabelNbta(base_type, expanded.to_base,
                            static_cast<uint32_t>(expanded.ranked.size()));
}

}  // namespace pebbletc
