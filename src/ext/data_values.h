// Section 5, "Data Values": trees whose leaves carry values from an infinite
// domain D, transducers that test *unary* predicates on those values, and
// the finite-alphabet reduction that makes typechecking go through: with m
// unary predicates, replace D by 2^m constants — one per predicate truth
// vector (the technique of [1], Abiteboul–Vianu).
//
// Concretely: a designated data-leaf symbol `d` of the base alphabet is
// split into 2^m leaf symbols d#bits. Extended transducers are ordinary
// PebbleTransducers over the *expanded* alphabet (a predicate test is just a
// symbol guard on the split symbols), so the entire typechecking stack
// applies unchanged. Concrete data trees are evaluated by abstracting each
// value to its truth vector first.

#ifndef PEBBLETC_EXT_DATA_VALUES_H_
#define PEBBLETC_EXT_DATA_VALUES_H_

#include <functional>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/ta/nbta.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// A binary tree whose `data_symbol`-labelled leaves carry values from an
/// infinite domain (strings here).
struct DataTree {
  BinaryTree tree;
  /// Indexed by NodeId; meaningful only on data leaves.
  std::vector<std::string> values;
};

/// A finite set of unary predicates over the data domain.
using UnaryPredicate = std::function<bool(const std::string&)>;

/// The expanded alphabet: `base` with leaf `data_symbol` split into 2^m
/// variants named d#bits (bit i = predicate i holds).
struct ExpandedDataAlphabet {
  RankedAlphabet ranked;
  /// Map: expanded symbol id → base symbol id (all d#bits map to d).
  std::vector<SymbolId> to_base;
  /// Expanded id of d#bits.
  std::vector<SymbolId> data_variant;  // indexed by bits
  SymbolId base_data_symbol = kNoSymbol;
  uint32_t num_predicates = 0;
};

/// Splits `data_symbol` (a leaf of `base`) into 2^num_predicates variants.
Result<ExpandedDataAlphabet> ExpandDataAlphabet(const RankedAlphabet& base,
                                                SymbolId data_symbol,
                                                uint32_t num_predicates);

/// Abstracts a concrete data tree over the base alphabet into a plain tree
/// over the expanded alphabet by evaluating the predicates on every data
/// leaf.
Result<BinaryTree> AbstractDataTree(const DataTree& input,
                                    const ExpandedDataAlphabet& expanded,
                                    const std::vector<UnaryPredicate>& preds);

/// Lifts a type over the base alphabet (data values opaque, i.e. `d` is one
/// symbol) to the expanded alphabet: a tree conforms iff its base projection
/// does. This is how input/output types enter the reduced typechecking
/// problem.
Nbta LiftTypeToExpanded(const Nbta& base_type,
                        const ExpandedDataAlphabet& expanded);

}  // namespace pebbletc

#endif  // PEBBLETC_EXT_DATA_VALUES_H_
