#include "src/ext/joins.h"

#include <set>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace pebbletc {

PebbleTransducer AbstractJoins(const JoinTransducer& jt) {
  PebbleTransducer out = jt.base;
  using M = PebbleTransducer::MoveKind;
  for (const EqualityTest& test : jt.tests) {
    out.AddMove(test.guard, test.from, M::kStay, test.if_equal);
    out.AddMove(test.guard, test.from, M::kStay, test.if_distinct);
  }
  return out;
}

namespace {

bool GuardMatches(const PebbleGuard& g, const BinaryTree& tree,
                  const PebbleTransducer::Config& config) {
  const NodeId current = config.pebbles.back();
  if (g.symbol != kAnySymbol && tree.symbol(current) != g.symbol) return false;
  if (g.presence_mask != 0) {
    uint32_t presence = 0;
    for (size_t j = 0; j + 1 < config.pebbles.size(); ++j) {
      if (config.pebbles[j] == current) presence |= (1u << j);
    }
    if ((presence & g.presence_mask) != g.presence_value) return false;
  }
  return true;
}

}  // namespace

Result<BinaryTree> EvalJoinConcrete(const JoinTransducer& jt,
                                    const DataTree& input, size_t max_steps) {
  const BinaryTree& tree = input.tree;
  const PebbleTransducer& t = jt.base;
  if (tree.empty()) return Status::InvalidArgument("empty input");
  using Config = PebbleTransducer::Config;
  using TK = PebbleTransducer::TransitionKind;

  auto test_applies = [&](const EqualityTest& test,
                          const Config& c) -> Result<bool> {
    if (test.from != c.state) return false;
    if (!GuardMatches(test.guard, tree, c)) return false;
    if (test.pebble_a == 0 || test.pebble_a > c.pebbles.size() ||
        test.pebble_b == 0 || test.pebble_b > c.pebbles.size()) {
      return false;
    }
    NodeId a = c.pebbles[test.pebble_a - 1];
    NodeId b = c.pebbles[test.pebble_b - 1];
    if (tree.symbol(a) != jt.data_symbol || tree.symbol(b) != jt.data_symbol) {
      return false;
    }
    if (a >= input.values.size() || b >= input.values.size()) {
      return Status::InvalidArgument("data leaf without a value");
    }
    return true;
  };

  struct ProtoNode {
    SymbolId symbol = kNoSymbol;
    int64_t left = -1;
    int64_t right = -1;
  };
  std::vector<ProtoNode> proto;
  struct Branch {
    Config config;
    int64_t parent;
    bool is_left;
  };
  int64_t root_index = -1;
  std::vector<Branch> work;
  work.push_back({t.InitialConfig(tree), -1, false});
  size_t steps = 0;

  while (!work.empty()) {
    Branch branch = std::move(work.back());
    work.pop_back();
    std::set<Config> seen;
    while (true) {
      if (++steps > max_steps) {
        return Status::ResourceExhausted("join evaluation exceeded " +
                                         std::to_string(max_steps) +
                                         " steps");
      }
      // Equality tests first (they are the extension's primitive).
      const EqualityTest* fired = nullptr;
      for (const EqualityTest& test : jt.tests) {
        PEBBLETC_ASSIGN_OR_RETURN(bool applies, test_applies(test,
                                                             branch.config));
        if (applies) {
          if (fired != nullptr) {
            return Status::FailedPrecondition(
                "two equality tests apply to one configuration");
          }
          fired = &test;
        }
      }
      auto applicable = t.Applicable(tree, branch.config);
      if (fired != nullptr) {
        if (!applicable.empty()) {
          return Status::FailedPrecondition(
              "equality test races a base transition");
        }
        if (!seen.insert(branch.config).second) {
          return Status::FailedPrecondition("join evaluation diverges");
        }
        NodeId a = branch.config.pebbles[fired->pebble_a - 1];
        NodeId b = branch.config.pebbles[fired->pebble_b - 1];
        const bool equal = input.values[a] == input.values[b];
        branch.config.state = equal ? fired->if_equal : fired->if_distinct;
        continue;
      }
      if (applicable.empty()) {
        return Status::FailedPrecondition(
            "computation branch is stuck; no output on this input");
      }
      if (applicable.size() > 1) {
        return Status::FailedPrecondition(
            "base transducer is nondeterministic");
      }
      const auto* tr = applicable.front();
      if (tr->kind == TK::kMove) {
        if (!seen.insert(branch.config).second) {
          return Status::FailedPrecondition("join evaluation diverges");
        }
        branch.config = t.ApplyMove(*tr, tree, branch.config);
        continue;
      }
      int64_t node = static_cast<int64_t>(proto.size());
      proto.push_back({tr->output_symbol, -1, -1});
      if (branch.parent < 0) {
        root_index = node;
      } else if (branch.is_left) {
        proto[branch.parent].left = node;
      } else {
        proto[branch.parent].right = node;
      }
      if (tr->kind == TK::kOutputLeaf) break;
      Config right_config = branch.config;
      right_config.state = tr->out_right;
      work.push_back({std::move(right_config), node, false});
      branch.config.state = tr->out_left;
      branch.parent = node;
      branch.is_left = true;
      seen.clear();
    }
  }
  PEBBLETC_CHECK(root_index >= 0) << "no output produced";
  // Convert the proto tree (children first).
  BinaryTree out;
  struct Frame {
    int64_t node;
    bool expanded;
  };
  std::vector<Frame> stack = {{root_index, false}};
  std::vector<NodeId> results;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const ProtoNode& p = proto[f.node];
    if (p.left < 0) {
      results.push_back(out.AddLeaf(p.symbol));
    } else if (!f.expanded) {
      stack.push_back({f.node, true});
      stack.push_back({p.right, false});
      stack.push_back({p.left, false});
    } else {
      NodeId r = results.back();
      results.pop_back();
      NodeId l = results.back();
      results.pop_back();
      results.push_back(out.AddInternal(p.symbol, l, r));
    }
  }
  PEBBLETC_CHECK(results.size() == 1) << "conversion imbalance";
  out.SetRoot(results.back());
  return out;
}

}  // namespace pebbletc
