// Section 5, data-value joins: transducers extended with the comparison
// predicate x = y between the data values under two pebbles. Typechecking is
// undecidable in general for such machines (reduction from finite
// satisfiability of FO), but for queries whose equality tests are
// *independent* — every truth assignment to the tests is consistent — the
// tests can be replaced by nondeterministic guesses: every run of the
// concrete machine is a run of the abstraction, so typechecking the
// abstraction is sound (and for independent queries, complete).
//
// JoinTransducer wraps a PebbleTransducer with equality-test transitions;
// `AbstractJoins` produces the nondeterministic guess machine the paper
// describes, and `EvalJoinConcrete` runs the concrete semantics on a data
// tree for cross-validation.

#ifndef PEBBLETC_EXT_JOINS_H_
#define PEBBLETC_EXT_JOINS_H_

#include <vector>

#include "src/common/result.h"
#include "src/ext/data_values.h"
#include "src/pt/transducer.h"

namespace pebbletc {

/// An equality test: in state `from` (level ≥ 2), compare the data values
/// under pebbles `pebble_a` and `pebble_b` (1-based); continue in `if_equal`
/// or `if_distinct` (same level as `from`). Both referenced nodes must be
/// data leaves; the test is inapplicable otherwise.
struct EqualityTest {
  PebbleGuard guard;
  StateId from;
  uint32_t pebble_a;
  uint32_t pebble_b;
  StateId if_equal;
  StateId if_distinct;
};

/// A k-pebble transducer with data-value joins.
struct JoinTransducer {
  PebbleTransducer base;
  std::vector<EqualityTest> tests;
  /// The data-leaf symbol of the input alphabet.
  SymbolId data_symbol = kNoSymbol;
};

/// The nondeterministic abstraction: each equality test becomes a free
/// choice between its two continuations (two stay-moves). Sound for
/// typechecking: T_concrete(t) ⊆ T_abstract(strip_values(t)) for every data
/// tree t.
PebbleTransducer AbstractJoins(const JoinTransducer& jt);

/// Concrete deterministic evaluation on a data tree (values drive the
/// equality tests; the base transducer must otherwise be deterministic).
/// Output values: none are produced (the fragment modelled here outputs
/// plain symbols; value copying is orthogonal and untyped).
Result<BinaryTree> EvalJoinConcrete(const JoinTransducer& jt,
                                    const DataTree& input,
                                    size_t max_steps = 10'000'000);

}  // namespace pebbletc

#endif  // PEBBLETC_EXT_JOINS_H_
