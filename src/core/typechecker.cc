#include "src/core/typechecker.h"

#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/core/downward.h"
#include "src/pa/behavior.h"
#include "src/pa/product.h"
#include "src/pa/to_mso.h"
#include "src/pt/eval.h"
#include "src/ta/convert.h"
#include "src/ta/enumerate.h"
#include "src/ta/nbta_index.h"
#include "src/ta/topdown.h"

namespace pebbletc {

namespace {

// One shared budget/metrics context per pipeline run, seeded from the
// caller-facing options.
TaOpContext MakeContext(const TypecheckOptions& options) {
  TaOpBudgets budgets;
  budgets.max_det_states = options.max_det_states;
  budgets.max_configs = options.max_configs;
  budgets.fastpath_max_states = options.fastpath_max_states;
  budgets.behavior_max_state_bits = options.behavior_max_state_bits;
  budgets.behavior_max_behaviors = options.behavior_max_behaviors;
  return TaOpContext(budgets);
}

}  // namespace

Typechecker::Typechecker(const PebbleTransducer& transducer,
                         const RankedAlphabet& input_alphabet,
                         const RankedAlphabet& output_alphabet)
    : transducer_(transducer),
      input_alphabet_(input_alphabet),
      output_alphabet_(output_alphabet) {}

Result<bool> Typechecker::CheckOnInputImpl(
    const BinaryTree& input, const NbtaIndex& not_tau2, TaOpContext* ctx,
    std::optional<BinaryTree>* violating_output) const {
  PEBBLETC_ASSIGN_OR_RETURN(
      OutputAutomaton a_t,
      BuildOutputAutomaton(transducer_, input, ctx->budgets.max_configs));
  Nbta outputs = TopDownToNbta(a_t.automaton, ctx);
  // The intersection's worklist only materializes inhabited product states,
  // so the witness search runs on it directly (no extra trim needed).
  Nbta bad = IntersectNbta(NbtaIndex(outputs, ctx), not_tau2, ctx);
  std::optional<BinaryTree> witness = WitnessTree(NbtaIndex(bad, ctx), ctx);
  if (witness.has_value()) {
    if (violating_output != nullptr) *violating_output = std::move(witness);
    return false;
  }
  return true;
}

Result<bool> Typechecker::CheckOnInput(
    const BinaryTree& input, const Nbta& output_type,
    const TypecheckOptions& options,
    std::optional<BinaryTree>* violating_output) const {
  TaOpContext ctx = MakeContext(options);
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta not_tau2,
      ComplementNbta(NbtaIndex(output_type, &ctx), output_alphabet_, &ctx));
  Nbta trimmed = TrimNbta(NbtaIndex(not_tau2, &ctx), &ctx);
  return CheckOnInputImpl(input, NbtaIndex(trimmed, &ctx), &ctx,
                          violating_output);
}

Result<Nbta> Typechecker::BadInputsAutomaton(const Nbta& not_tau2_trimmed,
                                             const TypecheckOptions& options,
                                             MsoCompileStats* stats,
                                             std::string* method,
                                             TaOpContext* ctx) const {
  // Prop. 4.6: A = T × complement(τ2) accepts {t | T(t) ⊄ τ2}.
  TopDownTA b = NbtaToTopDown(not_tau2_trimmed, ctx);
  PEBBLETC_ASSIGN_OR_RETURN(PebbleAutomaton product,
                            TransducerTimesTopDown(transducer_, b, ctx));
  // Regularize. For one pebble, behavior composition reaches machines the
  // MSO route cannot; fall back to Thm 4.7's construction otherwise.
  if (transducer_.max_pebbles() == 1) {
    BehaviorOptions bopts;
    bopts.max_state_bits = options.behavior_max_state_bits;
    bopts.max_behaviors = options.behavior_max_behaviors;
    auto by_behavior =
        OnePebbleToNbtaByBehavior(product, input_alphabet_, bopts);
    if (by_behavior.ok()) {
      if (method != nullptr) *method = "behavior-complete";
      return by_behavior;
    }
    if (by_behavior.status().code() != StatusCode::kResourceExhausted) {
      return by_behavior.status();
    }
  }
  MsoCompileOptions mso;
  mso.max_det_states = options.max_det_states;
  mso.stats = stats;
  mso.ctx = ctx;
  mso.minimize_intermediate = options.minimize_intermediate;
  if (method != nullptr) *method = "mso-complete";
  return PebbleAutomatonToNbta(product, input_alphabet_, mso);
}

Result<Nbta> Typechecker::InferInverseType(
    const Nbta& output_type, const TypecheckOptions& options) const {
  TaOpContext ctx = MakeContext(options);
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta not_tau2,
      ComplementNbta(NbtaIndex(output_type, &ctx), output_alphabet_, &ctx));
  Nbta not_tau2_trimmed = TrimNbta(NbtaIndex(not_tau2, &ctx), &ctx);
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta bad,
      BadInputsAutomaton(not_tau2_trimmed, options, nullptr, nullptr, &ctx));
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta inverse,
      ComplementNbta(NbtaIndex(bad, &ctx), input_alphabet_, &ctx));
  return TrimNbta(NbtaIndex(inverse, &ctx), &ctx);
}

Result<TypecheckResult> Typechecker::Typecheck(
    const Nbta& input_type, const Nbta& output_type,
    const TypecheckOptions& options) const {
  PEBBLETC_RETURN_IF_ERROR(
      transducer_.Validate(input_alphabet_, output_alphabet_));
  PEBBLETC_RETURN_IF_ERROR(input_type.Validate(input_alphabet_));
  PEBBLETC_RETURN_IF_ERROR(output_type.Validate(output_alphabet_));

  TaOpContext ctx = MakeContext(options);
  TypecheckResult result;

  // complement(τ2) is the workhorse of every pass; compute it (and its rule
  // index) once and share it, instead of re-determinizing per pass — and,
  // in the refutation pass, per enumerated input tree.
  auto not_tau2_or =
      ComplementNbta(NbtaIndex(output_type, &ctx), output_alphabet_, &ctx);
  if (!not_tau2_or.ok()) {
    if (not_tau2_or.status().code() != StatusCode::kResourceExhausted) {
      return not_tau2_or.status();
    }
    result.notes +=
        "output-type complement: " + not_tau2_or.status().ToString() + "; ";
    result.op_counters = ctx.counters;
    return result;  // every pass needs the complement — inconclusive
  }
  Nbta not_tau2 = TrimNbta(NbtaIndex(*not_tau2_or, &ctx), &ctx);
  NbtaIndex not_tau2_idx(not_tau2, &ctx);

  // Pass 1: bounded refutation — exact per-input checks on small τ1 trees.
  if (options.refutation_max_trees > 0) {
    std::vector<BinaryTree> inputs =
        EnumerateAcceptedTrees(input_type, options.refutation_max_nodes,
                               options.refutation_max_trees);
    for (BinaryTree& input : inputs) {
      std::optional<BinaryTree> violating;
      auto ok = CheckOnInputImpl(input, not_tau2_idx, &ctx, &violating);
      if (!ok.ok()) {
        result.notes += "refutation pass: " + ok.status().ToString() + "; ";
        break;
      }
      if (!*ok) {
        result.verdict = TypecheckVerdict::kCounterexample;
        result.method = "bounded-refutation";
        result.counterexample_input = std::move(input);
        result.counterexample_output = std::move(violating);
        result.op_counters = ctx.counters;
        return result;
      }
    }
  }

  // Pass 2: complete decision for the downward fragment.
  if (IsDownwardTransducer(transducer_)) {
    auto verdict = [&]() -> Result<TypecheckResult> {
      PEBBLETC_ASSIGN_OR_RETURN(
          Dbta d, DeterminizeNbta(not_tau2_idx, output_alphabet_, &ctx));
      PEBBLETC_ASSIGN_OR_RETURN(
          Nbta bad_inputs,
          DownwardProductAutomaton(transducer_, d, input_alphabet_, &ctx));
      Nbta offending = IntersectNbta(NbtaIndex(input_type, &ctx),
                                     NbtaIndex(bad_inputs, &ctx), &ctx);
      TypecheckResult r;
      r.method = "downward-fastpath";
      std::optional<BinaryTree> witness =
          WitnessTree(NbtaIndex(offending, &ctx), &ctx);
      if (!witness.has_value()) {
        r.verdict = TypecheckVerdict::kTypechecks;
        return r;
      }
      r.verdict = TypecheckVerdict::kCounterexample;
      // Recover a violating output for the witness input.
      std::optional<BinaryTree> violating;
      auto per_tree =
          CheckOnInputImpl(*witness, not_tau2_idx, &ctx, &violating);
      if (per_tree.ok() && !*per_tree) {
        r.counterexample_output = std::move(violating);
      }
      r.counterexample_input = std::move(witness);
      return r;
    }();
    if (verdict.ok()) {
      verdict->notes = result.notes + verdict->notes;
      verdict->op_counters = ctx.counters;
      return verdict;
    }
    if (verdict.status().code() != StatusCode::kResourceExhausted) {
      return verdict.status();
    }
    result.notes += "downward fast path: " + verdict.status().ToString() + "; ";
  }

  // Pass 3: the complete (non-elementary) decision.
  if (options.run_complete_decision) {
    std::string method = "mso-complete";
    auto bad = BadInputsAutomaton(not_tau2, options, &result.mso_stats,
                                  &method, &ctx);
    if (bad.ok()) {
      Nbta offending = IntersectNbta(NbtaIndex(input_type, &ctx),
                                     NbtaIndex(*bad, &ctx), &ctx);
      std::optional<BinaryTree> witness =
          WitnessTree(NbtaIndex(offending, &ctx), &ctx);
      result.method = method;
      if (!witness.has_value()) {
        result.verdict = TypecheckVerdict::kTypechecks;
        result.op_counters = ctx.counters;
        return result;
      }
      result.verdict = TypecheckVerdict::kCounterexample;
      std::optional<BinaryTree> violating;
      auto per_tree =
          CheckOnInputImpl(*witness, not_tau2_idx, &ctx, &violating);
      if (per_tree.ok() && !*per_tree) {
        result.counterexample_output = std::move(violating);
      }
      result.counterexample_input = std::move(witness);
      result.op_counters = ctx.counters;
      return result;
    }
    if (bad.status().code() != StatusCode::kResourceExhausted) {
      return bad.status();
    }
    result.notes += "complete decision: " + bad.status().ToString() + "; ";
  }

  result.verdict = TypecheckVerdict::kInconclusive;
  result.method = "none";
  result.op_counters = ctx.counters;
  return result;
}

}  // namespace pebbletc
