#include "src/core/typechecker.h"

#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/core/downward.h"
#include "src/pa/behavior.h"
#include "src/pa/product.h"
#include "src/pa/to_mso.h"
#include "src/pt/eval.h"
#include "src/ta/convert.h"
#include "src/ta/enumerate.h"
#include "src/ta/inclusion.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_cache.h"
#include "src/ta/thread_pool.h"
#include "src/ta/topdown.h"
#include "src/tree/random_tree.h"

namespace pebbletc {

namespace {

// One shared budget/metrics/execution-control context per pipeline run,
// seeded from the caller-facing options.
TaOpContext MakeContext(const TypecheckOptions& options) {
  TaOpBudgets budgets;
  budgets.max_det_states = options.max_det_states;
  budgets.max_configs = options.max_configs;
  budgets.max_antichain_pairs = options.max_antichain_pairs;
  budgets.fastpath_max_states = options.fastpath_max_states;
  budgets.behavior_max_state_bits = options.behavior_max_state_bits;
  budgets.behavior_max_behaviors = options.behavior_max_behaviors;
  if (options.deadline.has_value()) {
    budgets.deadline = std::chrono::steady_clock::now() + *options.deadline;
  }
  budgets.cancel = options.cancel;
  budgets.checkpoint_stride = options.checkpoint_stride;
  budgets.num_threads = options.num_threads;
  budgets.memo = options.memo;
  TaOpContext ctx(budgets);
  ctx.fault = options.fault_injector;
  return ctx;
}

// Codes on which the ladder degrades to the next pass instead of failing the
// whole call: per-op budgets, the run deadline, cooperative cancellation, and
// structural limits. Everything else (kInternal, kInvalidArgument, ...) is a
// hard error.
bool IsExhaustion(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled || code == StatusCode::kLimitExceeded;
}

// Resolves the kAuto inclusion mode against the Martens–Neven fragment
// detector: antichain when τ2 is bottom-up deterministic (DTD-shaped).
bool UseAntichain(const TypecheckOptions& options, const Nbta& output_type) {
  switch (options.inclusion) {
    case TaInclusionPath::kExplicit:
      return false;
    case TaInclusionPath::kAntichain:
      return true;
    case TaInclusionPath::kAuto:
      return NbtaIsBottomUpDeterministic(output_type);
  }
  return false;
}

}  // namespace

Typechecker::Typechecker(const PebbleTransducer& transducer,
                         const RankedAlphabet& input_alphabet,
                         const RankedAlphabet& output_alphabet)
    : transducer_(transducer),
      input_alphabet_(input_alphabet),
      output_alphabet_(output_alphabet) {}

Result<bool> Typechecker::CheckOnInputImpl(
    const BinaryTree& input, const NbtaIndex& not_tau2, TaOpContext* ctx,
    std::optional<BinaryTree>* violating_output) const {
  PEBBLETC_ASSIGN_OR_RETURN(
      OutputAutomaton a_t,
      BuildOutputAutomaton(transducer_, input, ctx->budgets.max_configs, ctx));
  Nbta outputs = TopDownToNbta(a_t.automaton, ctx);
  // The intersection's worklist only materializes inhabited product states,
  // so the witness search runs on it directly (no extra trim needed). The
  // per-input product deliberately bypasses the op cache: every enumerated
  // tree yields a distinct operand, so entries would never be re-hit
  // (docs/CACHING.md).
  Nbta bad = IntersectNbta(NbtaIndex(outputs, ctx), not_tau2, ctx);
  std::optional<BinaryTree> witness = WitnessTree(NbtaIndex(bad, ctx), ctx);
  if (witness.has_value()) {
    // A witness in a (possibly partial) product is a genuine violation.
    if (violating_output != nullptr) *violating_output = std::move(witness);
    return false;
  }
  // "No witness" is only trustworthy if nothing above drained early.
  PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx));
  return true;
}

Result<bool> Typechecker::CheckOnInputAntichain(
    const BinaryTree& input, const NbtaIndex& tau2_idx, TaOpContext* ctx,
    std::optional<BinaryTree>* violating_output) const {
  PEBBLETC_ASSIGN_OR_RETURN(
      OutputAutomaton a_t,
      BuildOutputAutomaton(transducer_, input, ctx->budgets.max_configs, ctx));
  Nbta outputs = TopDownToNbta(a_t.automaton, ctx);
  NbtaIndex outputs_idx(outputs, ctx);
  // Like the per-input product above, the per-input inclusion bypasses the
  // op cache: every enumerated tree yields a distinct operand hash that
  // would never be re-hit (docs/CACHING.md).
  PEBBLETC_ASSIGN_OR_RETURN(
      NbtaInclusionResult incl,
      NbtaIncludedIn(outputs_idx, tau2_idx, output_alphabet_, ctx));
  if (!incl.included) {
    if (violating_output != nullptr) {
      *violating_output = std::move(incl.counterexample);
    }
    return false;
  }
  return true;
}

Result<bool> Typechecker::CheckOnInput(
    const BinaryTree& input, const Nbta& output_type,
    const TypecheckOptions& options,
    std::optional<BinaryTree>* violating_output) const {
  TaOpContext ctx = MakeContext(options);
  const TaAlgebra alg;
  if (UseAntichain(options, output_type)) {
    // Complement-free: nothing to overlap with the forward image, so the
    // antichain path is always serial (docs/INCLUSION.md).
    NbtaIndex tau2_idx(output_type, &ctx);
    return CheckOnInputAntichain(input, tau2_idx, &ctx, violating_output);
  }
  if (TaEffectiveThreads(&ctx) < 2) {
    PEBBLETC_ASSIGN_OR_RETURN(
        Nbta not_tau2,
        alg.Complement(NbtaIndex(output_type, &ctx), output_alphabet_, &ctx));
    Nbta trimmed = TrimNbta(NbtaIndex(not_tau2, &ctx), &ctx);
    return CheckOnInputImpl(input, NbtaIndex(trimmed, &ctx), &ctx,
                            violating_output);
  }
  // Op-level fork (docs/PARALLEL.md): complement(τ2) and the forward image
  // T(input) are independent — run them as two shares on their own forked
  // contexts, then intersect on the parent. The complement's determinization
  // usually dominates, so the forward image rides along for free.
  TaOpContext c0 = ctx.Fork();
  TaOpContext c1 = ctx.Fork();
  std::optional<Result<Nbta>> not_tau2_or;
  std::optional<Result<Nbta>> outputs_or;
  TaThreadPool::Instance().Run(2, [&](uint32_t w) {
    if (w == 0) {
      auto complement =
          alg.Complement(NbtaIndex(output_type, &c0), output_alphabet_, &c0);
      if (!complement.ok()) {
        not_tau2_or = complement.status();
        return;
      }
      not_tau2_or = TrimNbta(NbtaIndex(*complement, &c0), &c0);
    } else {
      auto a_t = BuildOutputAutomaton(transducer_, input,
                                      c1.budgets.max_configs, &c1);
      if (!a_t.ok()) {
        outputs_or = a_t.status();
        return;
      }
      outputs_or = TopDownToNbta(a_t->automaton, &c1);
    }
  });
  ctx.MergeChild(c0);
  ctx.MergeChild(c1);
  PEBBLETC_RETURN_IF_ERROR(not_tau2_or->status());
  PEBBLETC_RETURN_IF_ERROR(outputs_or->status());
  Nbta bad = IntersectNbta(NbtaIndex(**outputs_or, &ctx),
                           NbtaIndex(**not_tau2_or, &ctx), &ctx);
  std::optional<BinaryTree> witness = WitnessTree(NbtaIndex(bad, &ctx), &ctx);
  if (witness.has_value()) {
    if (violating_output != nullptr) *violating_output = std::move(witness);
    return false;
  }
  // "No witness" is only trustworthy if nothing above drained early.
  PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(&ctx));
  return true;
}

Result<Nbta> Typechecker::BadInputsAutomaton(const Nbta& not_tau2_trimmed,
                                             const TypecheckOptions& options,
                                             MsoCompileStats* stats,
                                             std::string* method,
                                             TaOpContext* ctx) const {
  // Prop. 4.6: A = T × complement(τ2) accepts {t | T(t) ⊄ τ2}.
  TopDownTA b = NbtaToTopDown(not_tau2_trimmed, ctx);
  PEBBLETC_ASSIGN_OR_RETURN(PebbleAutomaton product,
                            TransducerTimesTopDown(transducer_, b, ctx));
  // Regularize. For one pebble, behavior composition reaches machines the
  // MSO route cannot; fall back to Thm 4.7's construction otherwise.
  if (transducer_.max_pebbles() == 1) {
    BehaviorOptions bopts;
    bopts.max_state_bits = options.behavior_max_state_bits;
    bopts.max_behaviors = options.behavior_max_behaviors;
    auto by_behavior =
        OnePebbleToNbtaByBehavior(product, input_alphabet_, bopts, ctx);
    if (by_behavior.ok()) {
      if (method != nullptr) *method = "behavior-complete";
      return by_behavior;
    }
    if (!IsExhaustion(by_behavior.status().code())) {
      return by_behavior.status();
    }
    // Fall through to the MSO route. Under a sticky interrupt its first
    // checkpoint returns the same code immediately.
  }
  MsoCompileOptions mso;
  mso.max_det_states = options.max_det_states;
  mso.stats = stats;
  mso.ctx = ctx;
  mso.minimize_intermediate = options.minimize_intermediate;
  if (method != nullptr) *method = "mso-complete";
  return PebbleAutomatonToNbta(product, input_alphabet_, mso);
}

Result<Nbta> Typechecker::InferInverseType(
    const Nbta& output_type, const TypecheckOptions& options) const {
  TaOpContext ctx = MakeContext(options);
  const TaAlgebra alg;
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta not_tau2,
      alg.Complement(NbtaIndex(output_type, &ctx), output_alphabet_, &ctx));
  Nbta not_tau2_trimmed = TrimNbta(NbtaIndex(not_tau2, &ctx), &ctx);
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta bad,
      BadInputsAutomaton(not_tau2_trimmed, options, nullptr, nullptr, &ctx));
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta inverse,
      alg.Complement(NbtaIndex(bad, &ctx), input_alphabet_, &ctx));
  Nbta trimmed = TrimNbta(NbtaIndex(inverse, &ctx), &ctx);
  // A partially trimmed inverse type would under-approximate τ2⁻¹ silently;
  // fail instead.
  PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(&ctx));
  return trimmed;
}

Result<TypecheckResult> Typechecker::Typecheck(
    const Nbta& input_type, const Nbta& output_type,
    const TypecheckOptions& options) const {
  PEBBLETC_RETURN_IF_ERROR(
      transducer_.Validate(input_alphabet_, output_alphabet_));
  PEBBLETC_RETURN_IF_ERROR(input_type.Validate(input_alphabet_));
  PEBBLETC_RETURN_IF_ERROR(output_type.Validate(output_alphabet_));

  TaOpContext ctx = MakeContext(options);
  const TaAlgebra alg;
  TypecheckResult result;

  // Composite warm fast path (docs/CACHING.md): a prior run of the same
  // (τ1, τ2, transducer, caps) downward decision cached its pass-2 offending
  // product under a key of the *input* hashes, so a repeat decision probes
  // with two small hashes instead of recomputing — or even re-hashing — the
  // complement/determinize/product chain's large intermediates. A hit with
  // no witness is a complete kTypechecks verdict (pass 2 is exact, so the
  // skipped refutation pass could only have agreed); a hit with a witness
  // falls through to the cold pipeline, which recovers the violating output
  // through the same per-op caches.
  std::optional<TaCacheKey> pipeline_key;
  if (TaAlgebra::Enabled(&ctx) && IsDownwardTransducer(transducer_)) {
    pipeline_key = MakeTaCacheKey(
        TaOpKind::kPipelineOffending, NbtaStructuralHash(input_type),
        NbtaStructuralHash(output_type),
        TaMixFingerprints(
            TaMixFingerprints(RankedAlphabetFingerprint(input_alphabet_),
                              RankedAlphabetFingerprint(output_alphabet_)),
            TransducerFingerprint(transducer_)),
        TaMixFingerprints(ctx.budgets.max_det_states,
                          ctx.budgets.fastpath_max_states));
    if (std::shared_ptr<const Nbta> offending =
            alg.cache()->FindNbta(*pipeline_key, &ctx)) {
      std::optional<BinaryTree> witness =
          WitnessTree(NbtaIndex(*offending, &ctx), &ctx);
      if (!witness.has_value() && TaInterruptStatus(&ctx).ok()) {
        result.verdict = TypecheckVerdict::kTypechecks;
        result.method = "downward-fastpath";
        result.op_counters = ctx.counters;
        return result;
      }
    }
  }

  // Records the first budget/deadline/cancellation hit (later ones only
  // append to the notes) and keeps the ladder descending.
  auto note_exhaustion = [&](const char* pass, const Status& s) {
    result.notes += std::string(pass) + ": " + s.ToString() + "; ";
    if (!result.exhausted.exhausted) {
      result.exhausted.exhausted = true;
      result.exhausted.code = s.code();
      result.exhausted.pass = pass;
      result.exhausted.detail = std::string(s.message());
      result.exhausted.counters = ctx.counters;
    }
  };

  // complement(τ2) is the workhorse of the explicit passes; compute it (and
  // its rule index) once and share it, instead of re-determinizing per pass
  // — and, in the refutation pass, per enumerated input tree. With a
  // parallel budget, pass 1's τ1 enumeration (independent of the complement)
  // runs concurrently as a second share (docs/PARALLEL.md). On the antichain
  // path (docs/INCLUSION.md) pass 1 never touches the complement, so it is
  // deferred until a later pass asks for it (ensure_complement below): a
  // pass-1 refutation returns without ever determinizing τ2.
  const bool use_antichain = UseAntichain(options, output_type);
  std::optional<std::vector<BinaryTree>> enumerated;
  std::optional<Result<Nbta>> complement_or;
  if (!use_antichain) {
    if (TaEffectiveThreads(&ctx) >= 2 && options.refutation_max_trees > 0) {
      TaOpContext c0 = ctx.Fork();
      TaOpContext c1 = ctx.Fork();
      std::vector<BinaryTree> inputs;
      TaThreadPool::Instance().Run(2, [&](uint32_t w) {
        if (w == 0) {
          complement_or = alg.Complement(NbtaIndex(output_type, &c0),
                                         output_alphabet_, &c0);
        } else {
          inputs =
              EnumerateAcceptedTrees(input_type, options.refutation_max_nodes,
                                     options.refutation_max_trees, &c1);
        }
      });
      ctx.MergeChild(c0);
      ctx.MergeChild(c1);
      // An interrupted enumeration is a usable prefix — pass 1 is
      // best-effort sampling anyway; exactness lives in passes 2/3.
      enumerated = std::move(inputs);
    } else {
      complement_or =
          alg.Complement(NbtaIndex(output_type, &ctx), output_alphabet_, &ctx);
    }
    if (!complement_or->ok()) {
      if (!IsExhaustion(complement_or->status().code())) {
        return complement_or->status();
      }
      note_exhaustion("output-complement", complement_or->status());
      // Every explicit pass needs the complement, but the degraded search
      // tests τ2 membership directly and can still refute.
      RunDegradedSearch(input_type, output_type, options, &result);
      result.op_counters = ctx.counters;
      return result;
    }
  }

  // Lazily materialized complement artifacts. ensure_complement() yields
  // true once the trimmed complement and its index are available, false
  // after noting an exhaustion (at most once; later passes skip silently),
  // and propagates hard errors. On the explicit path the complement already
  // exists, so the first call only trims and indexes it — bit-for-bit the
  // legacy sequence.
  std::optional<Nbta> not_tau2;
  std::optional<NbtaIndex> not_tau2_idx;
  bool complement_failed = false;
  auto ensure_complement = [&]() -> Result<bool> {
    if (not_tau2_idx.has_value()) return true;
    if (complement_failed) return false;
    if (!complement_or.has_value()) {
      complement_or = alg.Complement(NbtaIndex(output_type, &ctx),
                                     output_alphabet_, &ctx);
    }
    if (!complement_or->ok()) {
      if (!IsExhaustion(complement_or->status().code())) {
        return complement_or->status();
      }
      note_exhaustion("output-complement", complement_or->status());
      complement_failed = true;
      return false;
    }
    not_tau2 = TrimNbta(NbtaIndex(**complement_or, &ctx), &ctx);
    not_tau2_idx.emplace(*not_tau2, &ctx);
    return true;
  };
  if (!use_antichain) {
    // Success is guaranteed here (the eager block above returned on
    // failure); this just materializes the shared trimmed index for pass 1.
    PEBBLETC_RETURN_IF_ERROR(ensure_complement().status());
  }

  // Pass 1: bounded refutation — exact per-input checks on small τ1 trees.
  // Antichain mode checks image(input) ⊆ τ2 directly against a shared τ2
  // index; explicit mode intersects with the complement index built above.
  if (options.refutation_max_trees > 0) {
    std::optional<NbtaIndex> tau2_idx;
    if (use_antichain) tau2_idx.emplace(output_type, &ctx);
    std::vector<BinaryTree> inputs =
        enumerated.has_value()
            ? std::move(*enumerated)
            : EnumerateAcceptedTrees(input_type, options.refutation_max_nodes,
                                     options.refutation_max_trees, &ctx);
    for (BinaryTree& input : inputs) {
      std::optional<BinaryTree> violating;
      auto ok =
          use_antichain
              ? CheckOnInputAntichain(input, *tau2_idx, &ctx, &violating)
              : CheckOnInputImpl(input, *not_tau2_idx, &ctx, &violating);
      if (!ok.ok()) {
        if (!IsExhaustion(ok.status().code())) return ok.status();
        note_exhaustion("bounded-refutation", ok.status());
        break;
      }
      if (!*ok) {
        result.verdict = TypecheckVerdict::kCounterexample;
        result.method = "bounded-refutation";
        result.counterexample_input = std::move(input);
        result.counterexample_output = std::move(violating);
        result.op_counters = ctx.counters;
        return result;
      }
    }
  }

  // Passes 2/3 need the explicit complement even in antichain mode (pass 2
  // determinizes ¬τ2; pass 3 inverts it). If the deferred complement
  // exhausts its budget here, those passes are skipped with the exhaustion
  // noted — exactly what an explicit-mode run would have recorded up front.
  bool have_complement = false;
  if (IsDownwardTransducer(transducer_) || options.run_complete_decision) {
    PEBBLETC_ASSIGN_OR_RETURN(have_complement, ensure_complement());
  }

  // Pass 2: complete decision for the downward fragment.
  if (IsDownwardTransducer(transducer_) && have_complement) {
    auto verdict = [&]() -> Result<TypecheckResult> {
      PEBBLETC_ASSIGN_OR_RETURN(
          Dbta d, alg.Determinize(*not_tau2_idx, output_alphabet_, &ctx));
      PEBBLETC_ASSIGN_OR_RETURN(
          Nbta bad_inputs,
          DownwardProductAutomaton(transducer_, d, input_alphabet_, &ctx));
      Nbta offending = alg.Intersect(NbtaIndex(input_type, &ctx),
                                     NbtaIndex(bad_inputs, &ctx), &ctx);
      if (pipeline_key.has_value() && TaInterruptStatus(&ctx).ok()) {
        alg.cache()->InsertNbta(*pipeline_key, offending, &ctx);
      }
      TypecheckResult r;
      r.method = "downward-fastpath";
      std::optional<BinaryTree> witness =
          WitnessTree(NbtaIndex(offending, &ctx), &ctx);
      if (!witness.has_value()) {
        // An interrupted intersection/witness search may have missed the
        // offending tree; only a clean run proves typechecking.
        PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(&ctx));
        r.verdict = TypecheckVerdict::kTypechecks;
        return r;
      }
      r.verdict = TypecheckVerdict::kCounterexample;
      // Recover a violating output for the witness input.
      std::optional<BinaryTree> violating;
      auto per_tree =
          CheckOnInputImpl(*witness, *not_tau2_idx, &ctx, &violating);
      if (per_tree.ok() && !*per_tree) {
        r.counterexample_output = std::move(violating);
      }
      r.counterexample_input = std::move(witness);
      return r;
    }();
    if (verdict.ok()) {
      verdict->notes = result.notes + verdict->notes;
      verdict->exhausted = result.exhausted;
      verdict->op_counters = ctx.counters;
      return verdict;
    }
    if (!IsExhaustion(verdict.status().code())) {
      return verdict.status();
    }
    note_exhaustion("downward-fastpath", verdict.status());
  }

  // Pass 3: the complete (non-elementary) decision.
  if (options.run_complete_decision && have_complement) {
    std::string method = "mso-complete";
    auto bad = BadInputsAutomaton(*not_tau2, options, &result.mso_stats,
                                  &method, &ctx);
    if (bad.ok()) {
      Nbta offending = alg.Intersect(NbtaIndex(input_type, &ctx),
                                     NbtaIndex(*bad, &ctx), &ctx);
      std::optional<BinaryTree> witness =
          WitnessTree(NbtaIndex(offending, &ctx), &ctx);
      result.method = method;
      if (!witness.has_value()) {
        Status interrupt = TaInterruptStatus(&ctx);
        if (interrupt.ok()) {
          result.verdict = TypecheckVerdict::kTypechecks;
          result.op_counters = ctx.counters;
          return result;
        }
        if (!IsExhaustion(interrupt.code())) return interrupt;
        note_exhaustion("complete-decision", interrupt);
      } else {
        result.verdict = TypecheckVerdict::kCounterexample;
        std::optional<BinaryTree> violating;
        auto per_tree =
            CheckOnInputImpl(*witness, *not_tau2_idx, &ctx, &violating);
        if (per_tree.ok() && !*per_tree) {
          result.counterexample_output = std::move(violating);
        }
        result.counterexample_input = std::move(witness);
        result.op_counters = ctx.counters;
        return result;
      }
    } else {
      if (!IsExhaustion(bad.status().code())) {
        return bad.status();
      }
      note_exhaustion("complete-decision", bad.status());
    }
  }

  // Every exact pass exhausted (or was disabled): try the salvage search,
  // which can still produce a concrete counterexample but never an
  // (unsound) kTypechecks.
  result.verdict = TypecheckVerdict::kUnknown;
  result.method = "none";
  if (result.exhausted.exhausted) {
    RunDegradedSearch(input_type, output_type, options, &result);
  }
  result.op_counters = ctx.counters;
  return result;
}

void Typechecker::RunDegradedSearch(const Nbta& input_type,
                                    const Nbta& output_type,
                                    const TypecheckOptions& options,
                                    TypecheckResult* result) const {
  if (!options.degrade_on_exhaustion) return;
  // Cancellation means the caller wants out now, not a best-effort answer.
  if (result->exhausted.code == StatusCode::kCancelled) return;
  // Fresh context: the main run's interrupt is sticky (its deadline has
  // already passed), so the salvage search gets its own small wall-clock
  // budget. The caller's cancel flag still applies.
  TaOpBudgets budgets;
  budgets.max_configs = options.max_configs;
  budgets.deadline = std::chrono::steady_clock::now() + options.degraded_budget;
  budgets.cancel = options.cancel;
  budgets.checkpoint_stride = options.checkpoint_stride;
  TaOpContext ctx(budgets);

  NbtaIndex tau1_idx(input_type, &ctx);
  NbtaIndex tau2_idx(output_type, &ctx);

  // Small τ1 inputs, smallest-first; top up with random τ1 samples so the
  // search is not limited to the enumeration's prefix.
  std::vector<BinaryTree> inputs = EnumerateAcceptedTrees(
      input_type, options.degraded_max_input_nodes,
      options.degraded_max_input_trees, &ctx);
  const bool has_binary = !input_alphabet_.BinarySymbols().empty();
  Rng rng(0x70656262u);  // fixed seed: the search is deterministic
  for (size_t i = 0;
       i < options.degraded_random_samples && has_binary &&
       options.degraded_max_input_nodes > 0;
       ++i) {
    if (!TaCheckpoint(&ctx).ok()) break;
    const size_t internal =
        1 + rng.NextBelow((options.degraded_max_input_nodes + 1) / 2);
    BinaryTree t = RandomBinaryTree(input_alphabet_, rng, internal);
    if (NbtaAccepts(tau1_idx, t)) inputs.push_back(std::move(t));
  }

  size_t tried = 0;
  for (const BinaryTree& input : inputs) {
    if (!TaCheckpoint(&ctx).ok()) break;
    auto outputs = EnumerateOutputs(transducer_, input,
                                    options.degraded_max_output_nodes,
                                    options.degraded_outputs_per_input,
                                    options.max_configs, &ctx);
    if (!outputs.ok()) {
      // A per-input config blowup may not recur on the next input; anything
      // else (deadline, cancel, hard errors) ends the salvage attempt.
      if (outputs.status().code() == StatusCode::kResourceExhausted) continue;
      break;
    }
    ++tried;
    for (const BinaryTree& out : *outputs) {
      if (!NbtaAccepts(tau2_idx, out)) {
        result->verdict = TypecheckVerdict::kCounterexample;
        result->method = "degraded-enumeration";
        result->counterexample_input = input;
        result->counterexample_output = out;
        result->notes += "degraded-enumeration: violation found; ";
        return;
      }
    }
  }
  result->notes += "degraded-enumeration: no violation across " +
                   std::to_string(tried) + " inputs; ";
}

}  // namespace pebbletc
