#include "src/core/typechecker.h"

#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/core/downward.h"
#include "src/pa/behavior.h"
#include "src/pa/product.h"
#include "src/pa/to_mso.h"
#include "src/pt/eval.h"
#include "src/ta/convert.h"
#include "src/ta/enumerate.h"
#include "src/ta/topdown.h"

namespace pebbletc {

Typechecker::Typechecker(const PebbleTransducer& transducer,
                         const RankedAlphabet& input_alphabet,
                         const RankedAlphabet& output_alphabet)
    : transducer_(transducer),
      input_alphabet_(input_alphabet),
      output_alphabet_(output_alphabet) {}

Result<bool> Typechecker::CheckOnInput(
    const BinaryTree& input, const Nbta& output_type,
    const TypecheckOptions& options,
    std::optional<BinaryTree>* violating_output) const {
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta not_tau2,
      ComplementNbta(output_type, output_alphabet_, options.max_det_states));
  PEBBLETC_ASSIGN_OR_RETURN(
      OutputAutomaton a_t,
      BuildOutputAutomaton(transducer_, input, options.max_configs));
  Nbta outputs = TopDownToNbta(a_t.automaton);
  Nbta bad = TrimNbta(IntersectNbta(outputs, not_tau2));
  std::optional<BinaryTree> witness = WitnessTree(bad);
  if (witness.has_value()) {
    if (violating_output != nullptr) *violating_output = std::move(witness);
    return false;
  }
  return true;
}

Result<Nbta> Typechecker::BadInputsAutomaton(const Nbta& output_type,
                                             const TypecheckOptions& options,
                                             MsoCompileStats* stats,
                                             std::string* method) const {
  // Prop. 4.6: A = T × complement(τ2) accepts {t | T(t) ⊄ τ2}.
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta not_tau2,
      ComplementNbta(output_type, output_alphabet_, options.max_det_states));
  TopDownTA b = NbtaToTopDown(TrimNbta(not_tau2));
  PEBBLETC_ASSIGN_OR_RETURN(PebbleAutomaton product,
                            TransducerTimesTopDown(transducer_, b));
  // Regularize. For one pebble, behavior composition reaches machines the
  // MSO route cannot; fall back to Thm 4.7's construction otherwise.
  if (transducer_.max_pebbles() == 1) {
    BehaviorOptions bopts;
    bopts.max_state_bits = options.behavior_max_state_bits;
    bopts.max_behaviors = options.behavior_max_behaviors;
    auto by_behavior =
        OnePebbleToNbtaByBehavior(product, input_alphabet_, bopts);
    if (by_behavior.ok()) {
      if (method != nullptr) *method = "behavior-complete";
      return by_behavior;
    }
    if (by_behavior.status().code() != StatusCode::kResourceExhausted) {
      return by_behavior.status();
    }
  }
  MsoCompileOptions mso;
  mso.max_det_states = options.max_det_states;
  mso.stats = stats;
  if (method != nullptr) *method = "mso-complete";
  return PebbleAutomatonToNbta(product, input_alphabet_, mso);
}

Result<Nbta> Typechecker::InferInverseType(
    const Nbta& output_type, const TypecheckOptions& options) const {
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta bad, BadInputsAutomaton(output_type, options, nullptr, nullptr));
  PEBBLETC_ASSIGN_OR_RETURN(
      Nbta inverse,
      ComplementNbta(bad, input_alphabet_, options.max_det_states));
  return TrimNbta(inverse);
}

Result<TypecheckResult> Typechecker::Typecheck(
    const Nbta& input_type, const Nbta& output_type,
    const TypecheckOptions& options) const {
  PEBBLETC_RETURN_IF_ERROR(
      transducer_.Validate(input_alphabet_, output_alphabet_));
  PEBBLETC_RETURN_IF_ERROR(input_type.Validate(input_alphabet_));
  PEBBLETC_RETURN_IF_ERROR(output_type.Validate(output_alphabet_));

  TypecheckResult result;

  // Pass 1: bounded refutation — exact per-input checks on small τ1 trees.
  if (options.refutation_max_trees > 0) {
    std::vector<BinaryTree> inputs =
        EnumerateAcceptedTrees(input_type, options.refutation_max_nodes,
                               options.refutation_max_trees);
    for (BinaryTree& input : inputs) {
      std::optional<BinaryTree> violating;
      auto ok = CheckOnInput(input, output_type, options, &violating);
      if (!ok.ok()) {
        result.notes += "refutation pass: " + ok.status().ToString() + "; ";
        break;
      }
      if (!*ok) {
        result.verdict = TypecheckVerdict::kCounterexample;
        result.method = "bounded-refutation";
        result.counterexample_input = std::move(input);
        result.counterexample_output = std::move(violating);
        return result;
      }
    }
  }

  // Pass 2: complete decision for the downward fragment.
  if (IsDownwardTransducer(transducer_)) {
    auto verdict = [&]() -> Result<TypecheckResult> {
      PEBBLETC_ASSIGN_OR_RETURN(
          Nbta not_tau2, ComplementNbta(output_type, output_alphabet_,
                                        options.max_det_states));
      PEBBLETC_ASSIGN_OR_RETURN(
          Dbta d, DeterminizeNbta(TrimNbta(not_tau2), output_alphabet_,
                                  options.max_det_states));
      PEBBLETC_ASSIGN_OR_RETURN(
          Nbta bad_inputs,
          DownwardProductAutomaton(transducer_, d, input_alphabet_,
                                   options.fastpath_max_states));
      Nbta offending = TrimNbta(IntersectNbta(input_type, bad_inputs));
      TypecheckResult r;
      r.method = "downward-fastpath";
      std::optional<BinaryTree> witness = WitnessTree(offending);
      if (!witness.has_value()) {
        r.verdict = TypecheckVerdict::kTypechecks;
        return r;
      }
      r.verdict = TypecheckVerdict::kCounterexample;
      // Recover a violating output for the witness input.
      std::optional<BinaryTree> violating;
      auto per_tree =
          CheckOnInput(*witness, output_type, options, &violating);
      if (per_tree.ok() && !*per_tree) {
        r.counterexample_output = std::move(violating);
      }
      r.counterexample_input = std::move(witness);
      return r;
    }();
    if (verdict.ok()) {
      verdict->notes = result.notes + verdict->notes;
      return verdict;
    }
    if (verdict.status().code() != StatusCode::kResourceExhausted) {
      return verdict.status();
    }
    result.notes += "downward fast path: " + verdict.status().ToString() + "; ";
  }

  // Pass 3: the complete (non-elementary) decision.
  if (options.run_complete_decision) {
    std::string method = "mso-complete";
    auto bad =
        BadInputsAutomaton(output_type, options, &result.mso_stats, &method);
    if (bad.ok()) {
      Nbta offending = TrimNbta(IntersectNbta(input_type, *bad));
      std::optional<BinaryTree> witness = WitnessTree(offending);
      result.method = method;
      if (!witness.has_value()) {
        result.verdict = TypecheckVerdict::kTypechecks;
        return result;
      }
      result.verdict = TypecheckVerdict::kCounterexample;
      std::optional<BinaryTree> violating;
      auto per_tree = CheckOnInput(*witness, output_type, options, &violating);
      if (per_tree.ok() && !*per_tree) {
        result.counterexample_output = std::move(violating);
      }
      result.counterexample_input = std::move(witness);
      return result;
    }
    if (bad.status().code() != StatusCode::kResourceExhausted) {
      return bad.status();
    }
    result.notes += "complete decision: " + bad.status().ToString() + "; ";
  }

  result.verdict = TypecheckVerdict::kInconclusive;
  result.method = "none";
  return result;
}

}  // namespace pebbletc
