// The typechecker (Theorem 4.4): given a k-pebble transducer T, an input
// type τ1 and an output type τ2 (regular tree languages over the binary
// encodings), decide whether T(τ1) ⊆ τ2.
//
// Three cooperating procedures, in escalating cost:
//  1. *Bounded refutation*: enumerate small τ1-trees, and for each t decide
//     T(t) ⊆ τ2 exactly via the Prop. 3.8 automaton A_t (inst(A_t) = T(t)).
//     Two engines, selected by TypecheckOptions::inclusion: emptiness of
//     A_t ∩ complement(τ2) (kExplicit, the default), or the antichain
//     on-the-fly inclusion search NbtaIncludedIn(A_t, τ2) that never
//     materializes the complement (kAntichain / kAuto; docs/INCLUSION.md).
//     Finds concrete counterexamples (input *and* violating output)
//     quickly; cannot prove correctness.
//  2. *Downward fast path* (complete for the top-down fragment): the lazy
//     subset construction of src/core/downward.h.
//  3. *Complete decision* (any k): the paper's pipeline — Prop. 4.6 product
//     of T with complement(τ2), Theorem 4.7 MSO translation to a regular
//     tree automaton, intersection with τ1, emptiness. Non-elementary
//     (Theorem 4.8), so guarded by budgets.
//
// Inverse type inference (the paper's central notion) is exposed directly:
// InferInverseType returns an automaton for τ2⁻¹ = {t | T(t) ⊆ τ2}.

#ifndef PEBBLETC_CORE_TYPECHECKER_H_
#define PEBBLETC_CORE_TYPECHECKER_H_

#include <atomic>
#include <chrono>
#include <optional>
#include <string>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/mso/compile.h"
#include "src/pt/transducer.h"
#include "src/ta/nbta.h"
#include "src/ta/op_context.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// Which inclusion engine the bounded-refutation pass (and CheckOnInput)
/// uses to decide T(t) ⊆ τ2 per input tree (docs/INCLUSION.md).
enum class TaInclusionPath : uint8_t {
  /// The legacy pipeline, bit-for-bit: complement(τ2) eagerly (one subset
  /// construction up front, budgeted by `max_det_states`), then per-input
  /// products + emptiness. The default — the serial oracle and the
  /// fault-injection harness rely on its exact checkpoint ordinals.
  kExplicit = 0,
  /// Antichain on-the-fly inclusion (NbtaIncludedIn): no complement or
  /// determinization up front; each per-input check searches the implicit
  /// product of T(t) with the determinized-on-demand complement of τ2,
  /// budgeted by `max_antichain_pairs`. complement(τ2) is computed lazily,
  /// only if the exact passes 2/3 still run. Verdicts and counterexample
  /// *inputs* agree with kExplicit (same enumeration order, same first
  /// violator; passes 2/3 are shared); the violating *output* attached to a
  /// pass-1 refutation is genuine but not necessarily the size-minimal tree
  /// kExplicit reports.
  kAntichain = 1,
  /// Pick kAntichain when the output type is bottom-up deterministic (the
  /// Martens–Neven tractable fragment, which every DTD-shaped schema
  /// compiles into — NbtaIsBottomUpDeterministic), else kExplicit.
  kAuto = 2,
};

struct TypecheckOptions {
  /// Budget for each determinization in the MSO pipeline (0 = unlimited).
  size_t max_det_states = 200000;
  /// Budget for per-tree configuration spaces (Prop. 3.8).
  size_t max_configs = 1u << 20;
  /// Inclusion engine for the per-input checks (see TaInclusionPath).
  TaInclusionPath inclusion = TaInclusionPath::kExplicit;
  /// Pair-arena budget for each antichain inclusion search (0 = unlimited);
  /// exceeding it surfaces as kResourceExhausted from the owning pass, like
  /// every other budget on the ladder.
  size_t max_antichain_pairs = 200000;
  /// Bounded refutation: how many τ1 trees to try (0 disables the pre-pass)
  /// and the node-count cap per tree.
  size_t refutation_max_trees = 100;
  size_t refutation_max_nodes = 15;
  /// Budget for the downward fast path's subset construction.
  size_t fastpath_max_states = 100000;
  /// Budgets for the 1-pebble behavior-composition path (complete for
  /// machines with up-moves whose product stays small; tables are
  /// 2^state_bits entries).
  uint32_t behavior_max_state_bits = 12;
  size_t behavior_max_behaviors = 4096;
  /// Run the complete (non-elementary) decision when cheaper passes are
  /// inconclusive.
  bool run_complete_decision = true;
  /// Canonically minimize intermediate automata inside the MSO pipeline
  /// (see MsoCompileOptions::minimize_intermediate). Slower per step, but
  /// caps the state blowup feeding later complementations.
  bool minimize_intermediate = false;
  /// Content-addressed op cache (docs/CACHING.md). kOff (the default)
  /// preserves the legacy cold path bit-for-bit — the serial oracle and the
  /// fault-injection harness rely on that. kInMemory serves repeated algebra
  /// ops (complement(τ2), determinizations, the bad-input intersections)
  /// from the process-wide TaOpCache; kPersistent is the same plus whatever
  /// directory the caller attached via TaOpCache::Global().
  TaMemoMode memo = TaMemoMode::kOff;

  // --- execution control (threaded into the shared TaOpContext) ---

  /// Wall-clock deadline for the whole run, relative to the Typecheck call.
  /// On expiry every in-flight pass unwinds with kDeadlineExceeded and the
  /// run degrades to kUnknown (plus the salvage search below). Unset = none.
  std::optional<std::chrono::milliseconds> deadline;
  /// Cooperative cancellation: polled at every checkpoint; set it from
  /// another thread to abort the run with kCancelled. Must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
  /// Checkpoints between deadline clock polls (see TaOpBudgets).
  uint32_t checkpoint_stride = 256;
  /// Deterministic fault injection for robustness tests: trips the Nth
  /// checkpoint of the run with a chosen Status code. Not owned.
  TaFaultInjector* fault_injector = nullptr;
  /// Worker count for the parallel execution layer (docs/PARALLEL.md):
  /// 0 = hardware concurrency, 1 = the fully serial pipeline (deterministic
  /// checkpoint ordinals; forced whenever `fault_injector` is set). Above 1,
  /// independent pipeline ops (complement(τ2) vs. the forward image) fork
  /// across TaThreadPool and the hot product construction shards its
  /// worklist. Verdicts and witnesses stay language-equal across counts.
  uint32_t num_threads = 0;

  // --- graceful degradation (the verdict ladder's last rung) ---

  /// When the exact passes exhaust a budget or the deadline, run a small
  /// best-effort counterexample search (enumerate/sample τ1 inputs, compare
  /// outputs against τ2 directly — no complementation needed) that can still
  /// upgrade kUnknown to kCounterexample with a concrete witness.
  bool degrade_on_exhaustion = true;
  /// Salvage-search bounds: τ1 inputs tried (enumerated smallest-first plus
  /// random samples), per-tree node caps, outputs tested per input, and a
  /// fresh wall-clock budget (the main deadline has already expired).
  size_t degraded_max_input_trees = 48;
  size_t degraded_max_input_nodes = 9;
  size_t degraded_max_output_nodes = 17;
  size_t degraded_outputs_per_input = 16;
  size_t degraded_random_samples = 32;
  std::chrono::milliseconds degraded_budget{25};
};

enum class TypecheckVerdict {
  /// Proven: every output of T on every τ1 input conforms to τ2.
  kTypechecks,
  /// Refuted: a concrete input/output counterexample is attached.
  kCounterexample,
  /// All enabled procedures exhausted their budgets / deadline; neither
  /// proven nor refuted.
  kUnknown,
  /// Legacy name for kUnknown.
  kInconclusive = kUnknown,
};

/// Why (and where) a run failed to reach an exact verdict. Populated the
/// first time a pass exhausts a budget, deadline, or cancellation; later
/// passes may still decide the instance, in which case `exhausted` stays
/// true but the verdict is exact.
struct ExhaustionReport {
  /// Whether any pass was cut short.
  bool exhausted = false;
  /// kResourceExhausted, kDeadlineExceeded, or kCancelled.
  StatusCode code = StatusCode::kOk;
  /// The pass that first exhausted: "output-complement",
  /// "bounded-refutation", "downward-fastpath", "complete-decision", or
  /// "degraded-enumeration".
  std::string pass;
  /// The underlying Status message.
  std::string detail;
  /// Counter snapshot at the moment of first exhaustion.
  TaOpCounters counters;
};

struct TypecheckResult {
  TypecheckVerdict verdict = TypecheckVerdict::kUnknown;
  /// For kCounterexample: a τ1 input whose image leaves τ2, and (when the
  /// deciding procedure can exhibit one) a violating output.
  std::optional<BinaryTree> counterexample_input;
  std::optional<BinaryTree> counterexample_output;
  /// Which procedure decided: "bounded-refutation", "downward-fastpath",
  /// "behavior-complete", "mso-complete", "degraded-enumeration", or "none".
  std::string method = "none";
  /// Budget failures encountered along the way (empty if none).
  std::string notes;
  /// Structured report of the first budget/deadline/cancellation hit.
  ExhaustionReport exhausted;
  /// MSO compilation metrics when the complete pipeline ran.
  MsoCompileStats mso_stats;
  /// Unified automaton-operation cost profile for the whole run: every pass
  /// shares one TaOpContext, so these counters cover the complete pipeline
  /// (states materialized, rules scanned, determinizations, wall time, and
  /// the frontier counters det_pairs_expanded / det_subsets_interned from
  /// every subset construction along the way — see docs/DETERMINIZE.md).
  TaOpCounters op_counters;
};

class Typechecker {
 public:
  /// The transducer and its alphabets. The alphabets must match the
  /// transducer's declared sizes (checked in Typecheck/Infer calls).
  Typechecker(const PebbleTransducer& transducer,
              const RankedAlphabet& input_alphabet,
              const RankedAlphabet& output_alphabet);

  /// Decides (or refutes / gives up on) T(τ1) ⊆ τ2.
  Result<TypecheckResult> Typecheck(const Nbta& input_type,
                                    const Nbta& output_type,
                                    const TypecheckOptions& options = {}) const;

  /// Inverse type inference: an automaton for {t | T(t) ⊆ output_type},
  /// via the complete pipeline. Non-elementary; honors the MSO budgets.
  Result<Nbta> InferInverseType(const Nbta& output_type,
                                const TypecheckOptions& options = {}) const;

  /// Exact per-input check: T(input) ⊆ output_type? On refutation fills
  /// `*violating_output` (if non-null) with a witness output. Routed by
  /// options.inclusion: kExplicit complements τ2 (budget `max_det_states`,
  /// exhaustion code kResourceExhausted); kAntichain/kAuto run the
  /// complement-free antichain search (budget `max_antichain_pairs`, same
  /// code). Both honor deadline/cancel with kDeadlineExceeded/kCancelled.
  Result<bool> CheckOnInput(const BinaryTree& input, const Nbta& output_type,
                            const TypecheckOptions& options = {},
                            std::optional<BinaryTree>* violating_output =
                                nullptr) const;

 private:
  // {t | T(t) ∩ inst(not_tau2_trimmed) ≠ ∅} as a regular automaton, where
  // `not_tau2_trimmed` is the (already trimmed) complement of the output
  // type: the Prop. 4.6 product regularized by behavior composition
  // (1-pebble, when it fits) or the Thm 4.7 MSO route. Shared by Typecheck
  // and InferInverseType — the caller computes the complement once and both
  // passes reuse it. `*method` (if non-null) reports which route ran.
  Result<Nbta> BadInputsAutomaton(const Nbta& not_tau2_trimmed,
                                  const TypecheckOptions& options,
                                  MsoCompileStats* stats, std::string* method,
                                  TaOpContext* ctx) const;

  // Last rung of the degradation ladder: when every exact pass exhausted,
  // enumerate/sample small τ1 inputs and compare their outputs against τ2
  // *directly* (NbtaAccepts membership — no complementation, so it works
  // even when complement(τ2) was the budget that blew). Runs on a fresh
  // context with its own small deadline; can upgrade the verdict in
  // `*result` from kUnknown to kCounterexample, never to kTypechecks.
  void RunDegradedSearch(const Nbta& input_type, const Nbta& output_type,
                         const TypecheckOptions& options,
                         TypecheckResult* result) const;

  // Per-input check against a pre-built index of the trimmed complement of
  // the output type; all the per-tree work of CheckOnInput without
  // recomputing the complement per call.
  Result<bool> CheckOnInputImpl(const BinaryTree& input,
                                const NbtaIndex& not_tau2,
                                TaOpContext* ctx,
                                std::optional<BinaryTree>* violating_output)
      const;

  // Complement-free per-input check (the kAntichain path): T(input) ⊆ τ2
  // via NbtaIncludedIn of the Prop. 3.8 output automaton against a shared
  // index of τ2 itself. A refutation's inclusion counterexample *is* the
  // violating output.
  Result<bool> CheckOnInputAntichain(
      const BinaryTree& input, const NbtaIndex& tau2_idx, TaOpContext* ctx,
      std::optional<BinaryTree>* violating_output) const;

  const PebbleTransducer& transducer_;
  const RankedAlphabet& input_alphabet_;
  const RankedAlphabet& output_alphabet_;
};

}  // namespace pebbletc

#endif  // PEBBLETC_CORE_TYPECHECKER_H_
