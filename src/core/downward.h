// The practical typechecking path for the *top-down fragment*: 1-pebble
// transducers whose moves only go downwards (stay / down-left / down-right).
// Classical top-down transducers (Def. 3.2) embed into this fragment, which
// covers the XSLT-style template languages of Section 5's "restricted cases
// of practical interest".
//
// For a downward transducer T and a *deterministic* bottom-up automaton D
// over the output alphabet, the set {t | T(t) ∩ inst(D) ≠ ∅} is computed
// directly by a lazy subset construction over Q_T × Q_D — exponential in the
// worst case (the paper's 2-EXPTIME discussion) but far below the
// non-elementary general pipeline, and cheap on realistic machines.

#ifndef PEBBLETC_CORE_DOWNWARD_H_
#define PEBBLETC_CORE_DOWNWARD_H_

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/pt/transducer.h"
#include "src/ta/nbta.h"
#include "src/ta/op_context.h"

namespace pebbletc {

/// True if `t` is in the downward fragment: one pebble and only
/// stay/down-left/down-right moves.
bool IsDownwardTransducer(const PebbleTransducer& t);

/// Exact FNV-1a fingerprint of a transducer's transition table — the
/// transducer operand of the downward-product and pipeline cache keys
/// (docs/CACHING.md). Transducers are parsed structures, never products of
/// parallel ops, so representation hashing is canonical here.
uint64_t TransducerFingerprint(const PebbleTransducer& t);

/// Builds a (deterministic, reachable-subset) bottom-up automaton over the
/// input alphabet accepting { t | T(t) ∩ inst(D) ≠ ∅ }, using the same
/// frontier discipline as DeterminizeNbta (docs/DETERMINIZE.md): each
/// (symbol, subset, subset) pair is expanded exactly once. The context's
/// `fastpath_max_states` budget bounds the subset space (0 = unlimited),
/// aborting with kResourceExhausted; deadline/cancel checkpoints surface as
/// kDeadlineExceeded / kCancelled. `det_subsets_interned` and
/// `det_pairs_expanded` record frontier progress on every exit path. Fails
/// with kInvalidArgument if `t` is not downward or alphabets mismatch.
Result<Nbta> DownwardProductAutomaton(const PebbleTransducer& t, const Dbta& d,
                                      const RankedAlphabet& input_alphabet,
                                      TaOpContext* ctx);

/// Convenience form: `max_states` bounds the subset space (0 = unlimited).
Result<Nbta> DownwardProductAutomaton(const PebbleTransducer& t, const Dbta& d,
                                      const RankedAlphabet& input_alphabet,
                                      size_t max_states = 0);

}  // namespace pebbletc

#endif  // PEBBLETC_CORE_DOWNWARD_H_
