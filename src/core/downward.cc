#include "src/core/downward.h"

#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/ta/op_cache.h"

namespace pebbletc {

bool IsDownwardTransducer(const PebbleTransducer& t) {
  if (t.max_pebbles() != 1) return false;
  using M = PebbleTransducer::MoveKind;
  for (const auto& tr : t.transitions()) {
    if (tr.kind != PebbleTransducer::TransitionKind::kMove) continue;
    if (tr.move != M::kStay && tr.move != M::kDownLeft &&
        tr.move != M::kDownRight) {
      return false;
    }
  }
  return true;
}

// Transducers are parsed structures, never products of parallel ops, so
// representation hashing is canonical here.
uint64_t TransducerFingerprint(const PebbleTransducer& t) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  mix(t.num_states());
  mix(t.start());
  mix(t.num_input_symbols());
  mix(t.num_output_symbols());
  mix(t.max_pebbles());
  for (const auto& tr : t.transitions()) {
    mix(static_cast<uint64_t>(tr.kind));
    mix(tr.guard.symbol);
    mix(tr.guard.presence_mask);
    mix(tr.guard.presence_value);
    mix(tr.from);
    mix(static_cast<uint64_t>(tr.move));
    mix(tr.to);
    mix(tr.output_symbol);
    mix(tr.out_left);
    mix(tr.out_right);
  }
  return h;
}

namespace {

// A subset of Q_T × Q_D, as a sorted vector of pair indices qT*nd + qD.
using Subset = std::vector<uint32_t>;

}  // namespace

Result<Nbta> DownwardProductAutomaton(const PebbleTransducer& t, const Dbta& d,
                                      const RankedAlphabet& input_alphabet,
                                      size_t max_states) {
  TaOpContext ctx;
  ctx.budgets.fastpath_max_states = max_states;
  return DownwardProductAutomaton(t, d, input_alphabet, &ctx);
}

Result<Nbta> DownwardProductAutomaton(const PebbleTransducer& t, const Dbta& d,
                                      const RankedAlphabet& input_alphabet,
                                      TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  const size_t max_states =
      ctx != nullptr ? ctx->budgets.fastpath_max_states : 0;
  if (!IsDownwardTransducer(t)) {
    return Status::InvalidArgument(
        "transducer is outside the downward fragment");
  }
  if (input_alphabet.size() != t.num_input_symbols()) {
    return Status::InvalidArgument("input alphabet size mismatch");
  }
  if (d.num_symbols() != t.num_output_symbols()) {
    return Status::InvalidArgument(
        "output automaton alphabet does not match the transducer");
  }
  // The product is keyed on (transducer table, determinized output type,
  // input alphabet, state budget): when one transducer is checked against
  // many input types the expensive closure below is computed once. The probe
  // sits after validation so invalid calls fail identically hot or cold.
  TaOpCache* cache = nullptr;
  TaCacheKey cache_key;
  if (TaAlgebra::Enabled(ctx)) {
    cache = &TaOpCache::Global();
    cache_key = MakeTaCacheKey(TaOpKind::kDownwardProduct,
                               TaFingerprintHash(TransducerFingerprint(t)),
                               DbtaStructuralHash(d),
                               RankedAlphabetFingerprint(input_alphabet),
                               ctx->budgets.fastpath_max_states);
    if (std::shared_ptr<const Nbta> hit = cache->FindNbta(cache_key, ctx)) {
      return *hit;
    }
  }
  const uint32_t nt = t.num_states();
  const uint32_t nd = d.num_states();
  const size_t pairs = static_cast<size_t>(nt) * nd;

  using M = PebbleTransducer::MoveKind;
  using TK = PebbleTransducer::TransitionKind;

  // Transitions applicable at a node labelled `a` (guards are symbol-only in
  // the downward fragment).
  auto guard_matches = [](const PebbleGuard& g, SymbolId a) {
    return g.symbol == kAnySymbol || g.symbol == a;
  };

  // Computes S for a node labelled `a` whose children (if any) carry subsets
  // `left`/`right` (null for leaves).
  auto node_set = [&](SymbolId a, const Subset* left,
                      const Subset* right) -> Subset {
    std::vector<bool> in(pairs, false);
    // Bitset views of the child subsets for O(1) membership.
    std::vector<bool> left_in(pairs, false), right_in(pairs, false);
    if (left != nullptr) {
      for (uint32_t k : *left) left_in[k] = true;
    }
    if (right != nullptr) {
      for (uint32_t k : *right) right_in[k] = true;
    }
    auto add = [&](uint32_t qt, uint32_t qd) -> bool {
      size_t idx = static_cast<size_t>(qt) * nd + qd;
      if (in[idx]) return false;
      in[idx] = true;
      return true;
    };
    auto has = [&](const std::vector<bool>& s, uint32_t qt, uint32_t qd) {
      return s[static_cast<size_t>(qt) * nd + qd];
    };
    bool changed = true;
    while (changed) {
      // Interrupted: the partial subset is discarded by the caller (the
      // outer closure re-checks the sticky interrupt and returns it).
      if (!TaCheckpoint(ctx).ok()) break;
      changed = false;
      for (const auto& tr : t.transitions()) {
        if (!guard_matches(tr.guard, a)) continue;
        switch (tr.kind) {
          case TK::kOutputLeaf:
            changed |= add(tr.from, d.LeafState(tr.output_symbol));
            break;
          case TK::kOutputBinary:
            for (uint32_t d1 = 0; d1 < nd; ++d1) {
              if (!in[static_cast<size_t>(tr.out_left) * nd + d1]) continue;
              for (uint32_t d2 = 0; d2 < nd; ++d2) {
                if (!in[static_cast<size_t>(tr.out_right) * nd + d2]) continue;
                changed |= add(tr.from, d.Next(tr.output_symbol, d1, d2));
              }
            }
            break;
          case TK::kMove:
            switch (tr.move) {
              case M::kStay:
                for (uint32_t qd = 0; qd < nd; ++qd) {
                  if (in[static_cast<size_t>(tr.to) * nd + qd]) {
                    changed |= add(tr.from, qd);
                  }
                }
                break;
              case M::kDownLeft:
                for (uint32_t qd = 0; qd < nd; ++qd) {
                  if (has(left_in, tr.to, qd)) changed |= add(tr.from, qd);
                }
                break;
              case M::kDownRight:
                for (uint32_t qd = 0; qd < nd; ++qd) {
                  if (has(right_in, tr.to, qd)) changed |= add(tr.from, qd);
                }
                break;
              default:
                PEBBLETC_CHECK(false) << "non-downward move survived check";
            }
            break;
        }
      }
    }
    Subset out;
    for (uint32_t i = 0; i < pairs; ++i) {
      if (in[i]) out.push_back(i);
    }
    return out;
  };

  // Lazy closure over reachable subsets, interned flat: the subsets
  // themselves live in `subsets` (they vary in length), deduplicated through
  // an open-addressing table keyed by an FNV-1a hash of the elements — the
  // node-based std::map this replaces paid a tree walk plus a key copy per
  // lookup (same eviction as the IntersectNbta pair interner, PARALLEL.md).
  std::vector<Subset> subsets;
  size_t sub_mask = (1u << 8) - 1;
  std::vector<uint32_t> sub_table(sub_mask + 1, ~0u);
  auto sub_hash = [](const Subset& s) {
    uint64_t h = 1469598103934665603ull;
    for (uint32_t v : s) h = (h ^ v) * 1099511628211ull;
    return h;
  };
  auto intern = [&](Subset s) -> StateId {
    size_t slot = sub_hash(s) & sub_mask;
    for (;;) {
      const uint32_t cand = sub_table[slot];
      if (cand == ~0u) break;
      if (subsets[cand] == s) return cand;
      slot = (slot + 1) & sub_mask;
    }
    const StateId id = static_cast<StateId>(subsets.size());
    sub_table[slot] = id;
    subsets.push_back(std::move(s));
    if (subsets.size() * 16 > (sub_mask + 1) * 9) {
      sub_mask = (sub_mask + 1) * 2 - 1;
      sub_table.assign(sub_mask + 1, ~0u);
      for (uint32_t i = 0; i < subsets.size(); ++i) {
        size_t rs = sub_hash(subsets[i]) & sub_mask;
        while (sub_table[rs] != ~0u) rs = (rs + 1) & sub_mask;
        sub_table[rs] = i;
      }
    }
    return id;
  };

  Nbta out;
  out.num_symbols = static_cast<uint32_t>(input_alphabet.size());
  std::vector<std::pair<SymbolId, StateId>> leaf_rules;
  for (SymbolId a : input_alphabet.LeafSymbols()) {
    leaf_rules.push_back({a, intern(node_set(a, nullptr, nullptr))});
  }
  PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx));

  // Frontier-driven closure (the discipline of docs/DETERMINIZE.md): subset
  // p is paired against every j ≤ p in both child positions when it leaves
  // the frontier, so each (symbol, i, j) triple is computed exactly once and
  // records append to a flat list — no transition map, no pass rescans.
  struct TransRec {
    SymbolId sym;
    StateId l;
    StateId r;
    StateId to;
  };
  std::vector<TransRec> trans;
  size_t pairs_expanded = 0;
  for (StateId p = 0; p < subsets.size(); ++p) {
    if (max_states != 0 && subsets.size() > max_states) {
      if (ctx != nullptr) {
        ctx->counters.det_pairs_expanded += pairs_expanded;
        ctx->counters.det_subsets_interned += subsets.size();
      }
      return Status::ResourceExhausted(
          "downward subset construction exceeded " +
          std::to_string(max_states) + " states");
    }
    for (SymbolId a : input_alphabet.BinarySymbols()) {
      PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
      for (StateId j = 0; j <= p; ++j) {
        trans.push_back({a, p, j, intern(node_set(a, &subsets[p], &subsets[j]))});
        ++pairs_expanded;
        if (j != p) {
          trans.push_back(
              {a, j, p, intern(node_set(a, &subsets[j], &subsets[p]))});
          ++pairs_expanded;
        }
        // node_set drains early on interruption; never intern further
        // partial subsets once the sticky interrupt is set.
        PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx));
      }
    }
  }
  if (ctx != nullptr) {
    ctx->counters.det_pairs_expanded += pairs_expanded;
    ctx->counters.det_subsets_interned += subsets.size();
  }

  for (size_t i = 0; i < subsets.size(); ++i) out.AddState();
  for (auto [a, q] : leaf_rules) out.AddLeafRule(a, q);
  for (const TransRec& t : trans) out.AddRule(t.sym, t.l, t.r, t.to);
  // Accepting: some output from the initial transducer state is accepted
  // by D.
  for (size_t i = 0; i < subsets.size(); ++i) {
    for (uint32_t k : subsets[i]) {
      if (k / nd == t.start() && d.accepting(k % nd)) {
        out.accepting[i] = true;
        break;
      }
    }
  }
  if (ctx != nullptr) ctx->counters.determinizations++;
  TaCountStates(ctx, out.num_states);
  TaCountRules(ctx, out.leaf_rules.size() + out.rules.size());
  if (cache != nullptr && TaInterruptStatus(ctx).ok()) {
    cache->InsertNbta(cache_key, out, ctx);
  }
  return out;
}

}  // namespace pebbletc
