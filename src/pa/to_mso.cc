#include "src/pa/to_mso.h"

#include <map>
#include <vector>

#include "src/common/check.h"

namespace pebbletc {

namespace {

using F = MsoFormula;
using TKind = PebbleAutomaton::TransitionKind;
using M = PebbleAutomaton::MoveKind;

class Translator {
 public:
  explicit Translator(const PebbleAutomaton& a) : a_(a) {
    num_states_ = a.num_states();
    k_ = a.max_pebbles();
  }

  // φ^{(1)}(q0): the whole sentence.
  MsoPtr Sentence() { return Phi(a_.start()); }

 private:
  MsoVarId SVar(StateId q) const { return q; }
  MsoVarId XVar(uint32_t level) const { return num_states_ + level - 1; }
  MsoVarId YVar(uint32_t level) const { return num_states_ + k_ + level - 1; }
  MsoVarId RVar(uint32_t level) const {
    return num_states_ + 2 * k_ + level - 1;
  }

  // The paper's R_a(x) ∧ pebbles_b(x) guard.
  MsoPtr Guard(const PebbleGuard& g, uint32_t level, MsoVarId x) const {
    std::vector<MsoPtr> parts;
    if (g.symbol != kAnySymbol) parts.push_back(F::Label(g.symbol, x));
    for (uint32_t j = 0; j + 1 < level; ++j) {
      if ((g.presence_mask >> j) & 1u) {
        MsoPtr eq = F::Eq(x, XVar(j + 1));
        parts.push_back(((g.presence_value >> j) & 1u) ? eq
                                                       : F::Not(std::move(eq)));
      }
    }
    return F::AndAll(std::move(parts));
  }

  // ψ_p: the reverse-closure conjunct for one transition (level i = the
  // level of p.from).
  MsoPtr Psi(const PebbleAutomaton::Transition& p) {
    const uint32_t i = a_.level(p.from);
    const MsoVarId x = XVar(i);
    const MsoVarId y = YVar(i);
    MsoPtr guard = Guard(p.guard, i, x);
    switch (p.kind) {
      case TKind::kAccept:
        // ∀x (guard ⇒ S_u(x))
        return F::ForallFo(x, F::Implies(std::move(guard),
                                         F::In(x, SVar(p.from))));
      case TKind::kBranch:
        // ∀x (guard ∧ S_v(x) ∧ S_w(x) ⇒ S_u(x))
        return F::ForallFo(
            x, F::Implies(F::AndAll({std::move(guard), F::In(x, SVar(p.left)),
                                     F::In(x, SVar(p.right))}),
                          F::In(x, SVar(p.from))));
      case TKind::kMove:
        break;
    }
    switch (p.move) {
      case M::kStay:
        return F::ForallFo(
            x, F::Implies(F::And(std::move(guard), F::In(x, SVar(p.to))),
                          F::In(x, SVar(p.from))));
      case M::kDownLeft:
      case M::kDownRight: {
        MsoPtr succ = p.move == M::kDownLeft ? F::Succ1(x, y) : F::Succ2(x, y);
        return F::ForallFo(
            x, F::ForallFo(
                   y, F::Implies(F::AndAll({std::move(guard), std::move(succ),
                                            F::In(y, SVar(p.to))}),
                                 F::In(x, SVar(p.from)))));
      }
      case M::kUpLeft:
      case M::kUpRight: {
        // x is the child (left for up-left), y the parent we move to.
        MsoPtr succ = p.move == M::kUpLeft ? F::Succ1(y, x) : F::Succ2(y, x);
        return F::ForallFo(
            x, F::ForallFo(
                   y, F::Implies(F::AndAll({std::move(guard), std::move(succ),
                                            F::In(y, SVar(p.to))}),
                                 F::In(x, SVar(p.from)))));
      }
      case M::kPlacePebble: {
        // ∀x_i (guard ∧ φ^{(i+1)}(p.to) ⇒ S_u(x_i)); φ^{(i+1)} sees x_i free
        // as pebble i's position.
        return F::ForallFo(
            x, F::Implies(F::And(std::move(guard), Phi(p.to)),
                          F::In(x, SVar(p.from))));
      }
      case M::kPickPebble: {
        // ∀x_i (guard ∧ S_v(x_{i-1}) ⇒ S_u(x_i)).
        PEBBLETC_CHECK(i >= 2) << "pick at level 1";
        return F::ForallFo(
            x, F::Implies(F::And(std::move(guard),
                                 F::In(XVar(i - 1), SVar(p.to))),
                          F::In(x, SVar(p.from))));
      }
    }
    PEBBLETC_CHECK(false) << "unknown move kind";
    return F::False();
  }

  // φ^{(i)}(v) = ∀S-block_i (reverse-closed^{(i)} ⇒ ∃r_i(Root(r_i) ∧
  // S_v(r_i))), with i = level(v). Memoized: the Theorem 4.7 formula shares
  // its replicated blocks.
  MsoPtr Phi(StateId v) {
    auto it = memo_.find(v);
    if (it != memo_.end()) return it->second;
    const uint32_t i = a_.level(v);
    std::vector<MsoPtr> conjuncts;
    for (const auto& p : a_.transitions()) {
      if (a_.level(p.from) == i) conjuncts.push_back(Psi(p));
    }
    MsoPtr reverse_closed = F::AndAll(std::move(conjuncts));
    const MsoVarId r = RVar(i);
    MsoPtr conclusion = F::ExistsFo(r, F::And(F::Root(r), F::In(r, SVar(v))));
    MsoPtr body = F::Implies(std::move(reverse_closed), std::move(conclusion));
    // Quantify the level-i state sets, innermost-first for determinism.
    for (StateId q = a_.num_states(); q-- > 0;) {
      if (a_.level(q) == i) body = F::ForallSo(SVar(q), std::move(body));
    }
    memo_.emplace(v, body);
    return body;
  }

  const PebbleAutomaton& a_;
  uint32_t num_states_;
  uint32_t k_;
  std::map<StateId, MsoPtr> memo_;
};

}  // namespace

Result<MsoPtr> PebbleAutomatonToMso(const PebbleAutomaton& a) {
  if (a.num_states() == 0) {
    return Status::InvalidArgument("automaton has no states");
  }
  if (a.level(a.start()) != 1) {
    return Status::InvalidArgument("start state must have level 1");
  }
  Translator translator(a);
  MsoPtr sentence = translator.Sentence();
  // Sanity: the translation must produce a well-formed sentence.
  PEBBLETC_ASSIGN_OR_RETURN(MsoAnalysis analysis, AnalyzeMso(sentence));
  (void)analysis;
  return sentence;
}

Result<Nbta> PebbleAutomatonToNbta(const PebbleAutomaton& a,
                                   const RankedAlphabet& alphabet,
                                   const MsoCompileOptions& options) {
  if (alphabet.size() != a.num_symbols()) {
    return Status::InvalidArgument("alphabet size mismatch");
  }
  PEBBLETC_ASSIGN_OR_RETURN(MsoPtr sentence, PebbleAutomatonToMso(a));
  return CompileMsoSentence(sentence, alphabet, options);
}

}  // namespace pebbletc
