#include "src/pa/automaton.h"

#include <map>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/graph/agap.h"

namespace pebbletc {

PebbleAutomaton::PebbleAutomaton(uint32_t max_pebbles, uint32_t num_symbols)
    : max_pebbles_(max_pebbles), num_symbols_(num_symbols) {
  PEBBLETC_CHECK(max_pebbles >= 1) << "need at least one pebble";
  PEBBLETC_CHECK(max_pebbles <= 30) << "pebble guard bits limited to 30";
}

StateId PebbleAutomaton::AddState(uint32_t level) {
  PEBBLETC_CHECK(level >= 1 && level <= max_pebbles_)
      << "state level " << level << " out of range";
  StateId q = static_cast<StateId>(level_.size());
  level_.push_back(level);
  by_state_.emplace_back();
  return q;
}

void PebbleAutomaton::SetStart(StateId q) {
  PEBBLETC_CHECK(q < level_.size()) << "bad start state";
  start_ = q;
}

void PebbleAutomaton::AddMove(const PebbleGuard& guard, StateId from,
                              MoveKind move, StateId to) {
  PEBBLETC_CHECK(from < level_.size() && to < level_.size()) << "bad state";
  Transition t;
  t.kind = TransitionKind::kMove;
  t.guard = guard;
  t.from = from;
  t.move = move;
  t.to = to;
  t.left = t.right = 0;
  by_state_[from].push_back(static_cast<uint32_t>(transitions_.size()));
  transitions_.push_back(t);
}

void PebbleAutomaton::AddAccept(const PebbleGuard& guard, StateId from) {
  PEBBLETC_CHECK(from < level_.size()) << "bad state";
  Transition t;
  t.kind = TransitionKind::kAccept;
  t.guard = guard;
  t.from = from;
  t.move = MoveKind::kStay;
  t.to = t.left = t.right = 0;
  by_state_[from].push_back(static_cast<uint32_t>(transitions_.size()));
  transitions_.push_back(t);
}

void PebbleAutomaton::AddBranch(const PebbleGuard& guard, StateId from,
                                StateId left, StateId right) {
  PEBBLETC_CHECK(from < level_.size() && left < level_.size() &&
                 right < level_.size())
      << "bad state";
  Transition t;
  t.kind = TransitionKind::kBranch;
  t.guard = guard;
  t.from = from;
  t.move = MoveKind::kStay;
  t.to = 0;
  t.left = left;
  t.right = right;
  by_state_[from].push_back(static_cast<uint32_t>(transitions_.size()));
  transitions_.push_back(t);
}

Status PebbleAutomaton::Validate(const RankedAlphabet& alphabet) const {
  if (alphabet.size() != num_symbols_) {
    return Status::InvalidArgument("alphabet size mismatch");
  }
  if (level_.empty()) return Status::FailedPrecondition("no states");
  if (level_[start_] != 1) {
    return Status::InvalidArgument("start state must have level 1");
  }
  for (size_t i = 0; i < transitions_.size(); ++i) {
    const Transition& t = transitions_[i];
    const std::string where = "transition " + std::to_string(i);
    if (t.guard.symbol != kAnySymbol && t.guard.symbol >= num_symbols_) {
      return Status::InvalidArgument(where + ": guard symbol out of range");
    }
    const uint32_t lvl = level_[t.from];
    if (lvl >= 1 && (t.guard.presence_mask >> (lvl - 1)) != 0) {
      return Status::InvalidArgument(
          where + ": presence guard mentions pebbles ≥ the state level");
    }
    if ((t.guard.presence_value & ~t.guard.presence_mask) != 0) {
      return Status::InvalidArgument(
          where + ": presence value has bits outside the mask");
    }
    switch (t.kind) {
      case TransitionKind::kMove: {
        const uint32_t to_lvl = level_[t.to];
        if (t.move == MoveKind::kPlacePebble) {
          if (to_lvl != lvl + 1) {
            return Status::InvalidArgument(
                where + ": place-new-pebble must raise the level by one");
          }
        } else if (t.move == MoveKind::kPickPebble) {
          if (lvl < 2 || to_lvl != lvl - 1) {
            return Status::InvalidArgument(
                where + ": pick-current-pebble must lower the level by one");
          }
        } else if (to_lvl != lvl) {
          return Status::InvalidArgument(where + ": move must preserve level");
        }
        break;
      }
      case TransitionKind::kAccept:
        break;
      case TransitionKind::kBranch:
        if (level_[t.left] != lvl || level_[t.right] != lvl) {
          return Status::InvalidArgument(
              where + ": branch states must stay at the same level");
        }
        break;
    }
  }
  return Status::OK();
}

PebbleAutomaton::Config PebbleAutomaton::InitialConfig(
    const BinaryTree& tree) const {
  PEBBLETC_CHECK(!tree.empty()) << "empty tree";
  return Config{start_, {tree.root()}};
}

bool PebbleAutomaton::Applies(const Transition& t, const BinaryTree& tree,
                              const Config& config) const {
  if (t.from != config.state) return false;
  const NodeId current = config.pebbles.back();
  if (t.guard.symbol != kAnySymbol && tree.symbol(current) != t.guard.symbol) {
    return false;
  }
  if (t.guard.presence_mask != 0) {
    uint32_t presence = 0;
    for (size_t j = 0; j + 1 < config.pebbles.size(); ++j) {
      if (config.pebbles[j] == current) presence |= (1u << j);
    }
    if ((presence & t.guard.presence_mask) != t.guard.presence_value) {
      return false;
    }
  }
  if (t.kind != TransitionKind::kMove) return true;
  switch (t.move) {
    case MoveKind::kStay:
      return true;
    case MoveKind::kDownLeft:
    case MoveKind::kDownRight:
      return !tree.IsLeaf(current);
    case MoveKind::kUpLeft:
      return !tree.IsRoot(current) && tree.IsLeftChild(current);
    case MoveKind::kUpRight:
      return !tree.IsRoot(current) && !tree.IsLeftChild(current);
    case MoveKind::kPlacePebble:
      return config.pebbles.size() < max_pebbles_;
    case MoveKind::kPickPebble:
      return config.pebbles.size() > 1;
  }
  return false;
}

PebbleAutomaton::Config PebbleAutomaton::ApplyMove(const Transition& t,
                                                   const BinaryTree& tree,
                                                   const Config& config) const {
  PEBBLETC_DCHECK(t.kind == TransitionKind::kMove) << "not a move";
  Config next = config;
  next.state = t.to;
  NodeId& current = next.pebbles.back();
  switch (t.move) {
    case MoveKind::kStay:
      break;
    case MoveKind::kDownLeft:
      current = tree.left(current);
      break;
    case MoveKind::kDownRight:
      current = tree.right(current);
      break;
    case MoveKind::kUpLeft:
    case MoveKind::kUpRight:
      current = tree.parent(current);
      break;
    case MoveKind::kPlacePebble:
      next.pebbles.push_back(tree.root());
      break;
    case MoveKind::kPickPebble:
      next.pebbles.pop_back();
      break;
  }
  return next;
}

std::vector<const PebbleAutomaton::Transition*> PebbleAutomaton::Applicable(
    const BinaryTree& tree, const Config& config) const {
  std::vector<const Transition*> out;
  for (uint32_t idx : by_state_[config.state]) {
    const Transition& t = transitions_[idx];
    if (Applies(t, tree, config)) out.push_back(&t);
  }
  return out;
}

Result<bool> PebbleAutomatonAccepts(const PebbleAutomaton& a,
                                    const BinaryTree& tree,
                                    size_t max_configs) {
  if (tree.empty()) return Status::InvalidArgument("empty tree");
  using Config = PebbleAutomaton::Config;
  using TKind = PebbleAutomaton::TransitionKind;

  // Reachable configurations.
  std::map<Config, AgapNodeId> index;
  std::vector<Config> configs;
  auto intern = [&](Config c) -> AgapNodeId {
    auto [it, inserted] = index.emplace(std::move(c), configs.size());
    if (inserted) configs.push_back(it->first);
    return it->second;
  };
  intern(a.InitialConfig(tree));

  // Edge records, materialized into the graph after interning finishes (node
  // ids for configs are their interning order, which is stable).
  struct Edge {
    AgapNodeId from;
    AgapNodeId to1;
    AgapNodeId to2;  // == kNoEdge unless a branch pair
    bool accept;
  };
  constexpr AgapNodeId kNoEdge = static_cast<AgapNodeId>(-1);
  std::vector<Edge> edges;

  for (size_t i = 0; i < configs.size(); ++i) {
    if (max_configs != 0 && configs.size() > max_configs) {
      return Status::ResourceExhausted(
          "configuration budget of " + std::to_string(max_configs) +
          " exceeded");
    }
    const Config current = configs[i];  // copy: vector grows below
    for (const auto* tr : a.Applicable(tree, current)) {
      switch (tr->kind) {
        case TKind::kMove: {
          AgapNodeId to = intern(a.ApplyMove(*tr, tree, current));
          edges.push_back(
              {static_cast<AgapNodeId>(i), to, kNoEdge, false});
          break;
        }
        case TKind::kAccept:
          edges.push_back({static_cast<AgapNodeId>(i), kNoEdge, kNoEdge, true});
          break;
        case TKind::kBranch: {
          Config l = current;
          l.state = tr->left;
          Config r = current;
          r.state = tr->right;
          AgapNodeId li = intern(std::move(l));
          AgapNodeId ri = intern(std::move(r));
          edges.push_back({static_cast<AgapNodeId>(i), li, ri, false});
          break;
        }
      }
    }
  }

  // Build G_{A,t}: configurations are or-nodes; each branch2 instance gets an
  // and-node; branch0 points at the universal (empty and) accept node.
  AlternatingGraph g;
  for (size_t i = 0; i < configs.size(); ++i) {
    g.AddNode(AlternatingGraph::NodeType::kOr);
  }
  AgapNodeId accept = g.AddNode(AlternatingGraph::NodeType::kAnd);
  for (const Edge& e : edges) {
    if (e.accept) {
      g.AddEdge(e.from, accept);
    } else if (e.to2 == kNoEdge) {
      g.AddEdge(e.from, e.to1);
    } else {
      AgapNodeId pair = g.AddNode(AlternatingGraph::NodeType::kAnd);
      g.AddEdge(e.from, pair);
      g.AddEdge(pair, e.to1);
      g.AddEdge(pair, e.to2);
    }
  }
  std::vector<bool> accessible = g.ComputeAccessible();
  // The initial configuration was interned first (node id 0).
  return static_cast<bool>(accessible[0]);
}

}  // namespace pebbletc
