// Theorem 4.7: every k-pebble tree automaton recognizes a regular tree
// language. Implemented as in the paper's proof: translate the automaton to
// an MSO sentence ψ_A (with one set variable per state, one pebble-position
// variable per level, and the nested reverse-closed^{(i)} blocks), then
// compile ψ_A to a bottom-up tree automaton with the src/mso compiler.
//
// The sentence has size exponential in k and the compilation is
// non-elementary (Theorem 4.8 shows this is unavoidable); use the stats/
// budget knobs when experimenting.

#ifndef PEBBLETC_PA_TO_MSO_H_
#define PEBBLETC_PA_TO_MSO_H_

#include "src/common/result.h"
#include "src/mso/compile.h"
#include "src/mso/formula.h"
#include "src/pa/automaton.h"
#include "src/ta/nbta.h"

namespace pebbletc {

/// Builds ψ_A, the Theorem 4.7 sentence: a tree satisfies ψ_A iff the
/// automaton accepts it. Variable layout: S_q = q for q ∈ Q; x_i (pebble i's
/// position) = |Q|+i-1; y_i (move auxiliary) = |Q|+k+i-1; r_i (root
/// auxiliary) = |Q|+2k+i-1.
Result<MsoPtr> PebbleAutomatonToMso(const PebbleAutomaton& a);

/// The full Theorem 4.7 pipeline: ψ_A compiled to an equivalent bottom-up
/// tree automaton over `alphabet`.
Result<Nbta> PebbleAutomatonToNbta(const PebbleAutomaton& a,
                                   const RankedAlphabet& alphabet,
                                   const MsoCompileOptions& options = {});

}  // namespace pebbletc

#endif  // PEBBLETC_PA_TO_MSO_H_
