// The k-pebble tree automaton (Definition 4.5): the acceptor variant of the
// k-pebble transducer. Move transitions are as in the transducer; output
// transitions are replaced by
//   branch0 — halt the current computation branch and accept,
//   branch2 — spawn two independent branches (same pebble stack, two states).
// A tree is accepted when every branch of some computation accepts.
//
// Direct acceptance on a fixed tree reduces to alternating-graph
// accessibility on the configuration graph G_{A,t}, exactly as in the proof
// of Theorem 4.7.

#ifndef PEBBLETC_PA_AUTOMATON_H_
#define PEBBLETC_PA_AUTOMATON_H_

#include <cstdint>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/pt/transducer.h"  // PebbleGuard, MoveKind, Config
#include "src/tree/binary_tree.h"

namespace pebbletc {

class PebbleAutomaton {
 public:
  using MoveKind = PebbleTransducer::MoveKind;
  using Config = PebbleTransducer::Config;

  enum class TransitionKind { kMove, kAccept, kBranch };

  struct Transition {
    TransitionKind kind;
    PebbleGuard guard;
    StateId from;
    MoveKind move;   // kMove only
    StateId to;      // kMove only
    StateId left;    // kBranch only
    StateId right;   // kBranch only
  };

  PebbleAutomaton(uint32_t max_pebbles, uint32_t num_symbols);

  uint32_t max_pebbles() const { return max_pebbles_; }
  uint32_t num_symbols() const { return num_symbols_; }
  uint32_t num_states() const { return static_cast<uint32_t>(level_.size()); }
  uint32_t level(StateId q) const { return level_[q]; }
  StateId start() const { return start_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  StateId AddState(uint32_t level);
  void SetStart(StateId q);

  void AddMove(const PebbleGuard& guard, StateId from, MoveKind move,
               StateId to);
  /// branch0: the branch halts and accepts.
  void AddAccept(const PebbleGuard& guard, StateId from);
  /// branch2: spawn branches in states `left` and `right` (same level).
  void AddBranch(const PebbleGuard& guard, StateId from, StateId left,
                 StateId right);

  /// Stack-discipline and range validation.
  Status Validate(const RankedAlphabet& alphabet) const;

  Config InitialConfig(const BinaryTree& tree) const;
  bool Applies(const Transition& t, const BinaryTree& tree,
               const Config& config) const;
  Config ApplyMove(const Transition& t, const BinaryTree& tree,
                   const Config& config) const;
  std::vector<const Transition*> Applicable(const BinaryTree& tree,
                                            const Config& config) const;

 private:
  uint32_t max_pebbles_;
  uint32_t num_symbols_;
  StateId start_ = 0;
  std::vector<uint32_t> level_;
  std::vector<Transition> transitions_;
  std::vector<std::vector<uint32_t>> by_state_;
};

/// Direct acceptance via AGAP on the configuration graph (the Theorem 4.7
/// reduction). `max_configs` (0 = unlimited) bounds the explored
/// configuration space.
Result<bool> PebbleAutomatonAccepts(const PebbleAutomaton& a,
                                    const BinaryTree& tree,
                                    size_t max_configs = 0);

}  // namespace pebbletc

#endif  // PEBBLETC_PA_AUTOMATON_H_
