#include "src/pa/product.h"

namespace pebbletc {

Result<PebbleAutomaton> TransducerTimesTopDown(const PebbleTransducer& t,
                                               const TopDownTA& b_input,
                                               TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  if (b_input.num_symbols != t.num_output_symbols()) {
    return Status::InvalidArgument(
        "automaton alphabet does not match the transducer output alphabet");
  }
  const TopDownTA b = EliminateSilentTransitions(b_input, ctx);
  PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx));
  const uint32_t nb = b.num_states == 0 ? 1 : b.num_states;

  PebbleAutomaton a(t.max_pebbles(), t.num_input_symbols());
  // State (qT, qB) has id qT*nb + qB and T's level.
  for (StateId qt = 0; qt < t.num_states(); ++qt) {
    for (StateId qb = 0; qb < nb; ++qb) {
      StateId id = a.AddState(t.level(qt));
      PEBBLETC_CHECK(id == qt * nb + qb) << "state layout out of sync";
    }
  }
  auto pair_id = [nb](StateId qt, StateId qb) { return qt * nb + qb; };
  a.SetStart(pair_id(t.start(), b.start));

  using TKind = PebbleTransducer::TransitionKind;
  for (const auto& tr : t.transitions()) {
    PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
    switch (tr.kind) {
      case TKind::kMove:
        // Equation (3): B's state is carried along unchanged.
        for (StateId qb = 0; qb < nb; ++qb) {
          a.AddMove(tr.guard, pair_id(tr.from, qb), tr.move,
                    pair_id(tr.to, qb));
        }
        break;
      case TKind::kOutputLeaf:
        // Equation (4): branch0 whenever (a', qB) ∈ QF.
        for (const TopDownTA::FinalPair& f : b.final_pairs) {
          if (f.symbol == tr.output_symbol) {
            a.AddAccept(tr.guard, pair_id(tr.from, f.state));
          }
        }
        break;
      case TKind::kOutputBinary:
        // Equation (5): pair the spawned branches with B's moves on a'.
        for (const TopDownTA::BinaryRule& r : b.rules) {
          if (r.symbol == tr.output_symbol) {
            a.AddBranch(tr.guard, pair_id(tr.from, r.from),
                        pair_id(tr.out_left, r.left),
                        pair_id(tr.out_right, r.right));
          }
        }
        break;
    }
  }
  if (ctx != nullptr) ctx->counters.intersections++;
  TaCountStates(ctx, static_cast<size_t>(t.num_states()) * nb);
  TaCountRules(ctx, t.transitions().size() + b.final_pairs.size() +
                        b.rules.size());
  return a;
}

}  // namespace pebbletc
