#include "src/pa/behavior.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace pebbletc {

namespace {

using TK = PebbleAutomaton::TransitionKind;
using M = PebbleAutomaton::MoveKind;

// A subtree summary: per mounting side, assumption-set → accessible-set
// (bitmasks over Q); plus the root (no-up-moves) accessible set.
struct Behavior {
  std::vector<uint32_t> as_left;
  std::vector<uint32_t> as_right;
  uint32_t as_root = 0;

  friend bool operator<(const Behavior& a, const Behavior& b) {
    if (a.as_root != b.as_root) return a.as_root < b.as_root;
    if (a.as_left != b.as_left) return a.as_left < b.as_left;
    return a.as_right < b.as_right;
  }
};

enum class Side { kLeft, kRight, kRoot };

class BehaviorBuilder {
 public:
  explicit BehaviorBuilder(const PebbleAutomaton& a)
      : a_(a), n_(a.num_states()) {}

  // The accessible set at a node labelled `sym` mounted as `side`, under
  // assumption S, with children behaviors bl/br (null at leaves).
  uint32_t Accessible(SymbolId sym, Side side, uint32_t s_mask,
                      const Behavior* bl, const Behavior* br) const {
    uint32_t acc = 0;
    for (bool changed = true; changed;) {
      changed = false;
      for (const auto& tr : a_.transitions()) {
        if ((acc >> tr.from) & 1u) continue;
        if (tr.guard.symbol != kAnySymbol && tr.guard.symbol != sym) continue;
        // k = 1: no presence guards (validated by the caller).
        bool fires = false;
        switch (tr.kind) {
          case TK::kAccept:
            fires = true;
            break;
          case TK::kBranch:
            fires = ((acc >> tr.left) & 1u) && ((acc >> tr.right) & 1u);
            break;
          case TK::kMove:
            switch (tr.move) {
              case M::kStay:
                fires = (acc >> tr.to) & 1u;
                break;
              case M::kDownLeft:
                fires = bl != nullptr && ((bl->as_left[acc] >> tr.to) & 1u);
                break;
              case M::kDownRight:
                fires = br != nullptr && ((br->as_right[acc] >> tr.to) & 1u);
                break;
              case M::kUpLeft:
                fires = side == Side::kLeft && ((s_mask >> tr.to) & 1u);
                break;
              case M::kUpRight:
                fires = side == Side::kRight && ((s_mask >> tr.to) & 1u);
                break;
              case M::kPlacePebble:
              case M::kPickPebble:
                break;  // impossible with one pebble
            }
            break;
        }
        if (fires) {
          acc |= (1u << tr.from);
          changed = true;
        }
      }
    }
    return acc;
  }

  Behavior Summarize(SymbolId sym, const Behavior* bl,
                     const Behavior* br) const {
    const uint32_t combos = 1u << n_;
    Behavior out;
    out.as_left.resize(combos);
    out.as_right.resize(combos);
    for (uint32_t s = 0; s < combos; ++s) {
      out.as_left[s] = Accessible(sym, Side::kLeft, s, bl, br);
      out.as_right[s] = Accessible(sym, Side::kRight, s, bl, br);
    }
    out.as_root = Accessible(sym, Side::kRoot, 0, bl, br);
    return out;
  }

 private:
  const PebbleAutomaton& a_;
  const uint32_t n_;
};

}  // namespace

Result<Nbta> OnePebbleToNbtaByBehavior(const PebbleAutomaton& a,
                                       const RankedAlphabet& alphabet,
                                       const BehaviorOptions& options,
                                       TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  if (a.max_pebbles() != 1) {
    return Status::InvalidArgument(
        "behavior composition handles 1-pebble automata only");
  }
  if (alphabet.size() != a.num_symbols()) {
    return Status::InvalidArgument("alphabet size mismatch");
  }
  if (a.num_states() > options.max_state_bits) {
    return Status::ResourceExhausted(
        "behavior tables limited to " +
        std::to_string(options.max_state_bits) + " states (automaton has " +
        std::to_string(a.num_states()) + ")");
  }
  for (const auto& tr : a.transitions()) {
    if (tr.guard.presence_mask != 0) {
      return Status::InvalidArgument(
          "presence guards are impossible at one pebble");
    }
  }

  BehaviorBuilder builder(a);
  std::map<Behavior, StateId> index;
  std::vector<Behavior> behaviors;
  auto intern = [&](Behavior b) -> StateId {
    auto [it, inserted] = index.emplace(std::move(b), behaviors.size());
    if (inserted) behaviors.push_back(it->first);
    return it->second;
  };

  std::vector<std::pair<SymbolId, StateId>> leaf_rules;
  for (SymbolId sym : alphabet.LeafSymbols()) {
    leaf_rules.push_back(
        {sym, intern(builder.Summarize(sym, nullptr, nullptr))});
  }

  std::map<std::tuple<SymbolId, StateId, StateId>, StateId> trans;
  bool changed = true;
  while (changed) {
    changed = false;
    const size_t snapshot = behaviors.size();
    if (snapshot > options.max_behaviors) {
      return Status::ResourceExhausted(
          "behavior count exceeded " + std::to_string(options.max_behaviors));
    }
    for (SymbolId sym : alphabet.BinarySymbols()) {
      for (StateId i = 0; i < snapshot; ++i) {
        for (StateId j = 0; j < snapshot; ++j) {
          PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
          auto key = std::make_tuple(sym, i, j);
          if (trans.count(key)) continue;
          trans[key] = intern(
              builder.Summarize(sym, &behaviors[i], &behaviors[j]));
        }
      }
    }
    if (behaviors.size() > snapshot) changed = true;
  }

  if (ctx != nullptr) {
    ctx->counters.determinizations++;
    ctx->counters.states_materialized += behaviors.size();
  }
  Nbta out;
  out.num_symbols = static_cast<uint32_t>(alphabet.size());
  for (size_t i = 0; i < behaviors.size(); ++i) {
    StateId q = out.AddState();
    out.accepting[q] = (behaviors[i].as_root >> a.start()) & 1u;
  }
  for (auto [sym, q] : leaf_rules) out.AddLeafRule(sym, q);
  for (const auto& [key, to] : trans) {
    auto [sym, l, r] = key;
    out.AddRule(sym, l, r, to);
  }
  return out;
}

}  // namespace pebbletc
