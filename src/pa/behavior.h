// A practical alternative to the Theorem 4.7 MSO route for the 1-pebble
// case: regularize a 1-pebble (two-way, alternating) tree automaton by
// *behavior composition*.
//
// For a subtree rooted at x, the automaton's possible interactions with the
// rest of the tree are summarized by a monotone function from assumption
// sets to result sets:
//     Acc_x^{side}(S) = { q | configuration (q, x) is accessible given that
//                             exactly the states of S are accessible at
//                             x's parent },
// with one table per mounting side (up-left applies only to left children)
// plus the up-move-free root variant. The summary of a node is determined
// by its symbol and its children's summaries (a nested least fixpoint, by
// Bekić's principle), so the summaries form a deterministic bottom-up tree
// automaton whose accepting states are those whose root table contains the
// start state.
//
// Cost: tables have 2^|Q| entries — doubly exponential worst case overall,
// but far below the non-elementary MSO pipeline and practical for machines
// with |Q| ≤ ~12 (the realistic 1-pebble transducer products the paper's
// Section 5 "restricted cases" discussion cares about). This module is an
// extension beyond the paper's construction; it is cross-validated against
// both direct simulation and the MSO route.

#ifndef PEBBLETC_PA_BEHAVIOR_H_
#define PEBBLETC_PA_BEHAVIOR_H_

#include "src/common/result.h"
#include "src/pa/automaton.h"
#include "src/ta/nbta.h"
#include "src/ta/op_context.h"

namespace pebbletc {

struct BehaviorOptions {
  /// Refuse automata with more states than this (table size is 2^states).
  uint32_t max_state_bits = 12;
  /// Budget on distinct subtree behaviors (the DBTA's state count).
  size_t max_behaviors = 4096;
};

/// Builds a bottom-up automaton equivalent to the 1-pebble automaton `a`
/// (inst(result) = inst(a)). Fails with kInvalidArgument if `a` uses more
/// than one pebble, kResourceExhausted when a budget trips.
Result<Nbta> OnePebbleToNbtaByBehavior(const PebbleAutomaton& a,
                                       const RankedAlphabet& alphabet,
                                       const BehaviorOptions& options = {},
                                       TaOpContext* ctx = nullptr);

}  // namespace pebbletc

#endif  // PEBBLETC_PA_BEHAVIOR_H_
