// Proposition 4.6: the product of a k-pebble transducer T with a top-down
// tree automaton B over T's output alphabet is a k-pebble automaton A with
//   inst(A) = { t | T(t) ∩ inst(B) ≠ ∅ }.
// For typechecking, B is the complement of the output type, making inst(A)
// the complement of the inverse type {t | T(t) ⊆ τ}.

#ifndef PEBBLETC_PA_PRODUCT_H_
#define PEBBLETC_PA_PRODUCT_H_

#include "src/common/result.h"
#include "src/pa/automaton.h"
#include "src/pt/transducer.h"
#include "src/ta/op_context.h"
#include "src/ta/topdown.h"

namespace pebbletc {

/// Builds the Prop. 4.6 product automaton. `b` must range over the
/// transducer's output alphabet; silent transitions in `b` are eliminated
/// first. The result has |Q_T| · |Q_B| states and T's pebble count. The
/// optional context accrues the construction cost into the unified pipeline
/// counters.
Result<PebbleAutomaton> TransducerTimesTopDown(const PebbleTransducer& t,
                                               const TopDownTA& b,
                                               TaOpContext* ctx = nullptr);

}  // namespace pebbletc

#endif  // PEBBLETC_PA_PRODUCT_H_
