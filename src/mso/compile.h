// Compilation of MSO sentences over binary trees into bottom-up tree
// automata — the classical "MSO = regular" construction (non-elementary in
// the quantifier alternation depth), which the proof of Theorem 4.7 cites.
//
// The compiler assigns every variable id its own track over the extended
// alphabet Σ × {0,1}^NV, builds small automata for atoms, intersects/unions
// for ∧/∨, complements (with singleton-revalidation of free first-order
// variables) for ¬, and projects tracks for ∃. Sub-formulas shared as
// pointers are compiled once (the Theorem 4.7 translation shares its
// replicated φ^{(i)} blocks this way); each cached automaton carries its
// compiled NbtaIndex so every consumer reuses one set of rule indexes.
// Intermediate automata are trimmed between steps, and optionally
// canonically minimized (options.minimize_intermediate) to fight the
// non-elementary blowup at the cost of a determinization per step.
//
// Contract: the input must be a *sentence* — every used variable is bound,
// and every occurrence of a variable lies inside its binder's scope. (A free
// occurrence outside any binder would silently receive existential
// semantics from the final projection.)

#ifndef PEBBLETC_MSO_COMPILE_H_
#define PEBBLETC_MSO_COMPILE_H_

#include <cstddef>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/mso/formula.h"
#include "src/ta/nbta.h"
#include "src/ta/op_context.h"

namespace pebbletc {

/// Metrics from a compilation run, for the Theorem 4.8 blowup benchmarks.
struct MsoCompileStats {
  size_t automata_built = 0;
  size_t complementations = 0;
  size_t max_intermediate_states = 0;
  size_t cache_hits = 0;
};

struct MsoCompileOptions {
  /// Budget for each determinization (complement); 0 = unlimited. Ignored
  /// when `ctx` is set (the context's budgets win).
  size_t max_det_states = 200000;
  /// Optional metrics sink.
  MsoCompileStats* stats = nullptr;
  /// Unified budget/metrics context shared with the rest of the pipeline.
  /// When null, the compiler runs its own context seeded from
  /// `max_det_states`.
  TaOpContext* ctx = nullptr;
  /// Canonically minimize each intermediate automaton (determinize + Moore
  /// refinement) in addition to trimming. Slower per step, but caps the
  /// state blowup feeding later complementations. Budget failures fall back
  /// to the unminimized automaton.
  bool minimize_intermediate = false;
};

/// Compiles a sentence into an automaton over `base` with
/// inst(result) = { t | t ⊨ sentence }. Non-elementary in general; fails
/// with kResourceExhausted when the determinization budget trips.
Result<Nbta> CompileMsoSentence(const MsoPtr& sentence,
                                const RankedAlphabet& base,
                                const MsoCompileOptions& options = {});

/// Satisfiability over `base`: is there a tree satisfying the sentence?
/// Returns the witness-enabled automaton emptiness result.
Result<bool> MsoSatisfiable(const MsoPtr& sentence, const RankedAlphabet& base,
                            const MsoCompileOptions& options = {});

}  // namespace pebbletc

#endif  // PEBBLETC_MSO_COMPILE_H_
