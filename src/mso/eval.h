// Brute-force MSO model checking on small trees, used to cross-validate the
// automaton compiler. Exponential (set quantifiers enumerate all 2^n node
// subsets) — keep trees small.

#ifndef PEBBLETC_MSO_EVAL_H_
#define PEBBLETC_MSO_EVAL_H_

#include "src/common/result.h"
#include "src/mso/formula.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// Evaluates a sentence on `tree` (at most 63 nodes) by direct recursion.
Result<bool> EvalMsoBruteForce(const MsoPtr& sentence, const BinaryTree& tree);

}  // namespace pebbletc

#endif  // PEBBLETC_MSO_EVAL_H_
