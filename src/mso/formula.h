// Monadic Second-Order logic over binary trees (the logic used in the proof
// of Theorem 4.7).
//
// Trees are the first-order structures (D, succ1, succ2, (R_a)_{a∈Σ}) of the
// paper. Formulas have first-order variables (positions) and second-order
// variables (position sets), with atoms
//   Label_a(x)   Succ1(x,y)   Succ2(x,y)   x = y   x ∈ X   Root(x)   Leaf(x)
// and connectives ¬ ∧ ∨ → ↔ and quantifiers ∃x ∀x ∃X ∀X.
//
// Variables are integer-indexed; a formula must use each variable index with
// a consistent kind and quantify it at most once (no shadowing) — checked by
// AnalyzeMso. The compiler (src/mso/compile.h) turns sentences into tree
// automata; the evaluator (src/mso/eval.h) brute-forces small instances for
// cross-validation.

#ifndef PEBBLETC_MSO_FORMULA_H_
#define PEBBLETC_MSO_FORMULA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"

namespace pebbletc {

/// Index of an MSO variable (first- or second-order).
using MsoVarId = uint32_t;

class MsoFormula;
using MsoPtr = std::shared_ptr<const MsoFormula>;

class MsoFormula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kLabel,   ///< Label_a(x):  symbol_ = a, var1_ = x
    kSucc1,   ///< Succ1(x,y):  var1_ = x, var2_ = y (y is x's left child)
    kSucc2,   ///< Succ2(x,y)
    kEq,      ///< x = y
    kIn,      ///< x ∈ X:      var1_ = x (FO), var2_ = X (SO)
    kRoot,    ///< Root(x)
    kLeaf,    ///< Leaf(x)
    kNot,
    kAnd,
    kOr,
    kExistsFo,  ///< ∃ position var1_ . left()
    kExistsSo,  ///< ∃ set var1_ . left()
  };

  Kind kind() const { return kind_; }
  SymbolId symbol() const { return symbol_; }
  MsoVarId var1() const { return var1_; }
  MsoVarId var2() const { return var2_; }
  const MsoPtr& left() const { return left_; }
  const MsoPtr& right() const { return right_; }

  // --- constants and atoms ---
  static MsoPtr True();
  static MsoPtr False();
  static MsoPtr Label(SymbolId a, MsoVarId x);
  static MsoPtr Succ1(MsoVarId x, MsoVarId y);
  static MsoPtr Succ2(MsoVarId x, MsoVarId y);
  static MsoPtr Eq(MsoVarId x, MsoVarId y);
  static MsoPtr In(MsoVarId x, MsoVarId set);
  static MsoPtr Root(MsoVarId x);
  static MsoPtr Leaf(MsoVarId x);

  // --- connectives ---
  static MsoPtr Not(MsoPtr f);
  static MsoPtr And(MsoPtr a, MsoPtr b);
  static MsoPtr Or(MsoPtr a, MsoPtr b);
  static MsoPtr Implies(MsoPtr a, MsoPtr b) {
    return Or(Not(std::move(a)), std::move(b));
  }
  static MsoPtr Iff(MsoPtr a, MsoPtr b);
  /// Conjunction/disjunction of a list (True/False for empty lists).
  static MsoPtr AndAll(std::vector<MsoPtr> fs);
  static MsoPtr OrAll(std::vector<MsoPtr> fs);

  // --- quantifiers ---
  static MsoPtr ExistsFo(MsoVarId x, MsoPtr body);
  static MsoPtr ForallFo(MsoVarId x, MsoPtr body) {
    return Not(ExistsFo(x, Not(std::move(body))));
  }
  static MsoPtr ExistsSo(MsoVarId set, MsoPtr body);
  static MsoPtr ForallSo(MsoVarId set, MsoPtr body) {
    return Not(ExistsSo(set, Not(std::move(body))));
  }

 private:
  MsoFormula(Kind kind, SymbolId symbol, MsoVarId v1, MsoVarId v2, MsoPtr l,
             MsoPtr r)
      : kind_(kind), symbol_(symbol), var1_(v1), var2_(v2),
        left_(std::move(l)), right_(std::move(r)) {}

  static MsoPtr Make(Kind kind, SymbolId symbol, MsoVarId v1, MsoVarId v2,
                     MsoPtr l, MsoPtr r);

  Kind kind_;
  SymbolId symbol_;
  MsoVarId var1_;
  MsoVarId var2_;
  MsoPtr left_;
  MsoPtr right_;
};

/// Per-variable facts gathered by AnalyzeMso.
struct MsoVariableInfo {
  bool used = false;
  bool is_set = false;   ///< second-order?
  bool quantified = false;
};

/// Static analysis results for a formula.
struct MsoAnalysis {
  /// Indexed by variable id; size = max id + 1 (0 if no variables).
  std::vector<MsoVariableInfo> variables;
  /// Number of AST nodes.
  size_t num_nodes = 0;
  /// Quantifier nesting depth.
  size_t quantifier_depth = 0;
};

/// Checks well-formedness: every variable is used with one consistent kind
/// and quantified at most once; quantified variables do not appear outside
/// their binder's scope... (variables are globally unique per binder). Fails
/// with kInvalidArgument otherwise.
Result<MsoAnalysis> AnalyzeMso(const MsoPtr& formula);

/// Pretty-prints a formula (for diagnostics and tests). Symbol names come
/// from `alphabet` when provided.
std::string MsoString(const MsoPtr& formula,
                      const RankedAlphabet* alphabet = nullptr);

}  // namespace pebbletc

#endif  // PEBBLETC_MSO_FORMULA_H_
