// Track-extended alphabets for the MSO→tree-automaton compilation: symbols
// of Σ × {0,1}^m, where bit i of the track vector records whether the
// position belongs to variable i's interpretation. Extended symbol ids are
// base_id * 2^m + bits, and ranks are inherited from the base symbol.

#ifndef PEBBLETC_MSO_TRACK_ALPHABET_H_
#define PEBBLETC_MSO_TRACK_ALPHABET_H_

#include <cstdint>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"

namespace pebbletc {

/// An alphabet Σ × {0,1}^m with id arithmetic helpers.
class TrackAlphabet {
 public:
  /// Builds the extended ranked alphabet; names are "a#0101" (low track
  /// first). m up to 20 tracks (the alphabet size is |Σ|·2^m).
  static Result<TrackAlphabet> Make(const RankedAlphabet& base,
                                    uint32_t num_tracks);

  const RankedAlphabet& ranked() const { return ranked_; }
  uint32_t num_tracks() const { return num_tracks_; }
  uint32_t base_size() const { return base_size_; }

  SymbolId Id(SymbolId base_symbol, uint32_t bits) const {
    return base_symbol * (1u << num_tracks_) + bits;
  }
  SymbolId BaseOf(SymbolId ext) const { return ext >> num_tracks_; }
  uint32_t BitsOf(SymbolId ext) const {
    return ext & ((1u << num_tracks_) - 1);
  }
  bool BitOf(SymbolId ext, uint32_t track) const {
    return (BitsOf(ext) >> track) & 1u;
  }

  /// Symbol map ext → ext′ dropping track `track` (for projection): the
  /// result ranges over an alphabet with num_tracks-1 tracks.
  std::vector<SymbolId> DropTrackMap(uint32_t track) const;

  /// Symbol map ext → base (dropping all tracks).
  std::vector<SymbolId> ToBaseMap() const;

 private:
  RankedAlphabet ranked_;
  uint32_t base_size_ = 0;
  uint32_t num_tracks_ = 0;
};

}  // namespace pebbletc

#endif  // PEBBLETC_MSO_TRACK_ALPHABET_H_
