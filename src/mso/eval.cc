#include "src/mso/eval.h"

#include <vector>

#include "src/common/check.h"

namespace pebbletc {

namespace {

using K = MsoFormula::Kind;

// Assignment: FO variables map to a node id, SO variables to a bitmask of
// node ids. Both stored as uint64_t slots indexed by variable id.
struct Env {
  std::vector<uint64_t> slot;
  std::vector<bool> assigned;
};

bool Eval(const MsoPtr& f, const BinaryTree& tree, Env& env) {
  switch (f->kind()) {
    case K::kTrue:
      return true;
    case K::kFalse:
      return false;
    case K::kLabel:
      return tree.symbol(static_cast<NodeId>(env.slot[f->var1()])) ==
             f->symbol();
    case K::kSucc1: {
      NodeId x = static_cast<NodeId>(env.slot[f->var1()]);
      NodeId y = static_cast<NodeId>(env.slot[f->var2()]);
      return !tree.IsLeaf(x) && tree.left(x) == y;
    }
    case K::kSucc2: {
      NodeId x = static_cast<NodeId>(env.slot[f->var1()]);
      NodeId y = static_cast<NodeId>(env.slot[f->var2()]);
      return !tree.IsLeaf(x) && tree.right(x) == y;
    }
    case K::kEq:
      return env.slot[f->var1()] == env.slot[f->var2()];
    case K::kIn: {
      NodeId x = static_cast<NodeId>(env.slot[f->var1()]);
      return (env.slot[f->var2()] >> x) & 1u;
    }
    case K::kRoot:
      return static_cast<NodeId>(env.slot[f->var1()]) == tree.root();
    case K::kLeaf:
      return tree.IsLeaf(static_cast<NodeId>(env.slot[f->var1()]));
    case K::kNot:
      return !Eval(f->left(), tree, env);
    case K::kAnd:
      return Eval(f->left(), tree, env) && Eval(f->right(), tree, env);
    case K::kOr:
      return Eval(f->left(), tree, env) || Eval(f->right(), tree, env);
    case K::kExistsFo: {
      const MsoVarId v = f->var1();
      const uint64_t saved = env.slot[v];
      const bool was = env.assigned[v];
      for (NodeId n = 0; n < tree.size(); ++n) {
        env.slot[v] = n;
        env.assigned[v] = true;
        if (Eval(f->left(), tree, env)) {
          env.slot[v] = saved;
          env.assigned[v] = was;
          return true;
        }
      }
      env.slot[v] = saved;
      env.assigned[v] = was;
      return false;
    }
    case K::kExistsSo: {
      const MsoVarId v = f->var1();
      const uint64_t saved = env.slot[v];
      const bool was = env.assigned[v];
      const uint64_t limit = uint64_t{1} << tree.size();
      for (uint64_t mask = 0; mask < limit; ++mask) {
        env.slot[v] = mask;
        env.assigned[v] = true;
        if (Eval(f->left(), tree, env)) {
          env.slot[v] = saved;
          env.assigned[v] = was;
          return true;
        }
      }
      env.slot[v] = saved;
      env.assigned[v] = was;
      return false;
    }
  }
  PEBBLETC_CHECK(false) << "unknown MSO node kind";
  return false;
}

}  // namespace

Result<bool> EvalMsoBruteForce(const MsoPtr& sentence,
                               const BinaryTree& tree) {
  if (tree.empty()) return Status::InvalidArgument("empty tree");
  if (tree.size() > 63) {
    return Status::InvalidArgument("brute-force MSO limited to 63 nodes");
  }
  PEBBLETC_ASSIGN_OR_RETURN(MsoAnalysis analysis, AnalyzeMso(sentence));
  for (MsoVarId v = 0; v < analysis.variables.size(); ++v) {
    if (analysis.variables[v].used && !analysis.variables[v].quantified) {
      return Status::InvalidArgument("formula is not a sentence");
    }
  }
  Env env;
  env.slot.assign(analysis.variables.size(), 0);
  env.assigned.assign(analysis.variables.size(), false);
  return Eval(sentence, tree, env);
}

}  // namespace pebbletc
