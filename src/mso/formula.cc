#include "src/mso/formula.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace pebbletc {

MsoPtr MsoFormula::Make(Kind kind, SymbolId symbol, MsoVarId v1, MsoVarId v2,
                        MsoPtr l, MsoPtr r) {
  return MsoPtr(
      new MsoFormula(kind, symbol, v1, v2, std::move(l), std::move(r)));
}

MsoPtr MsoFormula::True() {
  static const MsoPtr kInstance =
      Make(Kind::kTrue, kNoSymbol, 0, 0, nullptr, nullptr);
  return kInstance;
}

MsoPtr MsoFormula::False() {
  static const MsoPtr kInstance =
      Make(Kind::kFalse, kNoSymbol, 0, 0, nullptr, nullptr);
  return kInstance;
}

MsoPtr MsoFormula::Label(SymbolId a, MsoVarId x) {
  return Make(Kind::kLabel, a, x, 0, nullptr, nullptr);
}
MsoPtr MsoFormula::Succ1(MsoVarId x, MsoVarId y) {
  return Make(Kind::kSucc1, kNoSymbol, x, y, nullptr, nullptr);
}
MsoPtr MsoFormula::Succ2(MsoVarId x, MsoVarId y) {
  return Make(Kind::kSucc2, kNoSymbol, x, y, nullptr, nullptr);
}
MsoPtr MsoFormula::Eq(MsoVarId x, MsoVarId y) {
  return Make(Kind::kEq, kNoSymbol, x, y, nullptr, nullptr);
}
MsoPtr MsoFormula::In(MsoVarId x, MsoVarId set) {
  return Make(Kind::kIn, kNoSymbol, x, set, nullptr, nullptr);
}
MsoPtr MsoFormula::Root(MsoVarId x) {
  return Make(Kind::kRoot, kNoSymbol, x, 0, nullptr, nullptr);
}
MsoPtr MsoFormula::Leaf(MsoVarId x) {
  return Make(Kind::kLeaf, kNoSymbol, x, 0, nullptr, nullptr);
}

MsoPtr MsoFormula::Not(MsoPtr f) {
  if (f->kind() == Kind::kTrue) return False();
  if (f->kind() == Kind::kFalse) return True();
  if (f->kind() == Kind::kNot) return f->left();
  return Make(Kind::kNot, kNoSymbol, 0, 0, std::move(f), nullptr);
}

MsoPtr MsoFormula::And(MsoPtr a, MsoPtr b) {
  if (a->kind() == Kind::kFalse || b->kind() == Kind::kFalse) return False();
  if (a->kind() == Kind::kTrue) return b;
  if (b->kind() == Kind::kTrue) return a;
  return Make(Kind::kAnd, kNoSymbol, 0, 0, std::move(a), std::move(b));
}

MsoPtr MsoFormula::Or(MsoPtr a, MsoPtr b) {
  if (a->kind() == Kind::kTrue || b->kind() == Kind::kTrue) return True();
  if (a->kind() == Kind::kFalse) return b;
  if (b->kind() == Kind::kFalse) return a;
  return Make(Kind::kOr, kNoSymbol, 0, 0, std::move(a), std::move(b));
}

MsoPtr MsoFormula::Iff(MsoPtr a, MsoPtr b) {
  return And(Implies(a, b), Implies(std::move(b), std::move(a)));
}

MsoPtr MsoFormula::AndAll(std::vector<MsoPtr> fs) {
  MsoPtr out = True();
  for (MsoPtr& f : fs) out = And(std::move(out), std::move(f));
  return out;
}

MsoPtr MsoFormula::OrAll(std::vector<MsoPtr> fs) {
  MsoPtr out = False();
  for (MsoPtr& f : fs) out = Or(std::move(out), std::move(f));
  return out;
}

MsoPtr MsoFormula::ExistsFo(MsoVarId x, MsoPtr body) {
  return Make(Kind::kExistsFo, kNoSymbol, x, 0, std::move(body), nullptr);
}

MsoPtr MsoFormula::ExistsSo(MsoVarId set, MsoPtr body) {
  return Make(Kind::kExistsSo, kNoSymbol, set, 0, std::move(body), nullptr);
}

namespace {

Status Record(MsoAnalysis* out, MsoVarId v, bool is_set) {
  if (v >= out->variables.size()) out->variables.resize(v + 1);
  MsoVariableInfo& info = out->variables[v];
  if (info.used && info.is_set != is_set) {
    return Status::InvalidArgument("variable " + std::to_string(v) +
                                   " used as both position and set");
  }
  info.used = true;
  info.is_set = is_set;
  return Status::OK();
}

// `bound` is the set of variables quantified on the path from the root of
// the formula to `f`; re-quantifying one of them would shadow it, which the
// compiler's shared-track scheme cannot represent. Quantifying the same
// variable in *parallel* branches (as the Theorem 4.7 translation does when
// it replicates φ^{(i)} per place transition) is fine.
Status Walk(const MsoPtr& f, MsoAnalysis* out, size_t depth,
            std::vector<MsoVarId>* bound) {
  out->num_nodes++;
  out->quantifier_depth = std::max(out->quantifier_depth, depth);
  using K = MsoFormula::Kind;
  switch (f->kind()) {
    case K::kTrue:
    case K::kFalse:
      return Status::OK();
    case K::kLabel:
    case K::kRoot:
    case K::kLeaf:
      return Record(out, f->var1(), false);
    case K::kSucc1:
    case K::kSucc2:
    case K::kEq:
      PEBBLETC_RETURN_IF_ERROR(Record(out, f->var1(), false));
      return Record(out, f->var2(), false);
    case K::kIn:
      PEBBLETC_RETURN_IF_ERROR(Record(out, f->var1(), false));
      return Record(out, f->var2(), true);
    case K::kNot:
      return Walk(f->left(), out, depth, bound);
    case K::kAnd:
    case K::kOr:
      PEBBLETC_RETURN_IF_ERROR(Walk(f->left(), out, depth, bound));
      return Walk(f->right(), out, depth, bound);
    case K::kExistsFo:
    case K::kExistsSo: {
      const bool is_set = f->kind() == K::kExistsSo;
      PEBBLETC_RETURN_IF_ERROR(Record(out, f->var1(), is_set));
      for (MsoVarId v : *bound) {
        if (v == f->var1()) {
          return Status::InvalidArgument(
              "variable " + std::to_string(f->var1()) +
              " re-quantified inside its own scope (shadowing)");
        }
      }
      out->variables[f->var1()].quantified = true;
      bound->push_back(f->var1());
      Status s = Walk(f->left(), out, depth + 1, bound);
      bound->pop_back();
      return s;
    }
  }
  return Status::Internal("unknown MSO node kind");
}

}  // namespace

Result<MsoAnalysis> AnalyzeMso(const MsoPtr& formula) {
  MsoAnalysis out;
  std::vector<MsoVarId> bound;
  PEBBLETC_RETURN_IF_ERROR(Walk(formula, &out, 0, &bound));
  return out;
}

namespace {

void Print(const MsoPtr& f, const RankedAlphabet* alphabet, std::string* out) {
  using K = MsoFormula::Kind;
  auto var = [](MsoVarId v, bool set) {
    return (set ? "S" : "x") + std::to_string(v);
  };
  switch (f->kind()) {
    case K::kTrue:
      *out += "true";
      return;
    case K::kFalse:
      *out += "false";
      return;
    case K::kLabel:
      *out += "Label_";
      *out += alphabet != nullptr ? alphabet->Name(f->symbol())
                                  : std::to_string(f->symbol());
      *out += "(" + var(f->var1(), false) + ")";
      return;
    case K::kSucc1:
    case K::kSucc2:
      *out += f->kind() == K::kSucc1 ? "succ1(" : "succ2(";
      *out += var(f->var1(), false) + "," + var(f->var2(), false) + ")";
      return;
    case K::kEq:
      *out += var(f->var1(), false) + "=" + var(f->var2(), false);
      return;
    case K::kIn:
      *out += var(f->var1(), false) + "∈" + var(f->var2(), true);
      return;
    case K::kRoot:
      *out += "root(" + var(f->var1(), false) + ")";
      return;
    case K::kLeaf:
      *out += "leaf(" + var(f->var1(), false) + ")";
      return;
    case K::kNot:
      *out += "¬";
      Print(f->left(), alphabet, out);
      return;
    case K::kAnd:
    case K::kOr:
      *out += "(";
      Print(f->left(), alphabet, out);
      *out += f->kind() == K::kAnd ? " ∧ " : " ∨ ";
      Print(f->right(), alphabet, out);
      *out += ")";
      return;
    case K::kExistsFo:
      *out += "∃" + var(f->var1(), false) + ".";
      Print(f->left(), alphabet, out);
      return;
    case K::kExistsSo:
      *out += "∃" + var(f->var1(), true) + ".";
      Print(f->left(), alphabet, out);
      return;
  }
}

}  // namespace

std::string MsoString(const MsoPtr& formula, const RankedAlphabet* alphabet) {
  std::string out;
  Print(formula, alphabet, &out);
  return out;
}

}  // namespace pebbletc
