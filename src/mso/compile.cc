#include "src/mso/compile.h"

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/mso/track_alphabet.h"
#include "src/ta/nbta_index.h"
#include "src/ta/op_cache.h"

namespace pebbletc {

namespace {

using K = MsoFormula::Kind;

// A compiled sub-formula: the automaton together with its rule index, heap-
// allocated so the index's internal pointer stays valid across cache moves.
struct CompiledNbta {
  CompiledNbta(Nbta a, TaOpContext* ctx)
      : nbta(std::move(a)), index(nbta, ctx) {}
  const Nbta nbta;
  NbtaIndex index;
};
using CompiledPtr = std::shared_ptr<const CompiledNbta>;

class Compiler {
 public:
  Compiler(const TrackAlphabet& ext, const MsoCompileOptions& options,
           TaOpContext* ctx)
      : ext_(ext), options_(options), ctx_(ctx) {}

  Result<CompiledPtr> Compile(const MsoPtr& f) {
    PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx_));
    auto it = cache_.find(f.get());
    if (it != cache_.end()) {
      if (options_.stats != nullptr) options_.stats->cache_hits++;
      return it->second;
    }
    PEBBLETC_ASSIGN_OR_RETURN(Nbta a, CompileUncached(f));
    a = TrimNbta(NbtaIndex(a, ctx_), ctx_);
    // Value-returning ops (intersect, trim, union, relabel) drain silently
    // on interruption; refuse to cache or build on partial automata.
    PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx_));
    if (options_.minimize_intermediate) MaybeMinimize(&a);
    CompiledPtr compiled = std::make_shared<CompiledNbta>(std::move(a), ctx_);
    Note(compiled->nbta);
    cache_.emplace(f.get(), compiled);
    return compiled;
  }

 private:
  void Note(const Nbta& a) {
    if (options_.stats == nullptr) return;
    options_.stats->automata_built++;
    options_.stats->max_intermediate_states =
        std::max(options_.stats->max_intermediate_states,
                 static_cast<size_t>(a.num_states));
  }

  // Canonical minimization of an intermediate automaton. Best-effort: budget
  // failures (kResourceExhausted) keep the trimmed automaton instead, and
  // the minimized form is only adopted when it actually has fewer states
  // (the completed DBTA's sink can make tiny automata grow).
  void MaybeMinimize(Nbta* a) {
    auto det = alg_.Determinize(NbtaIndex(*a, ctx_), ext_.ranked(), ctx_);
    if (!det.ok()) return;
    auto min = alg_.Minimize(*det, ext_.ranked(), ctx_);
    if (!min.ok()) return;
    Nbta reduced =
        TrimNbta(NbtaIndex(min->ToNbta(ext_.ranked()), ctx_), ctx_);
    if (reduced.num_states < a->num_states) *a = std::move(reduced);
  }

  // Free first-order variables of f (memoized on the shared AST).
  const std::set<MsoVarId>& FreeFoVars(const MsoPtr& f) {
    auto it = free_cache_.find(f.get());
    if (it != free_cache_.end()) return it->second;
    std::set<MsoVarId> out;
    switch (f->kind()) {
      case K::kTrue:
      case K::kFalse:
        break;
      case K::kLabel:
      case K::kRoot:
      case K::kLeaf:
        out.insert(f->var1());
        break;
      case K::kSucc1:
      case K::kSucc2:
      case K::kEq:
        out.insert(f->var1());
        out.insert(f->var2());
        break;
      case K::kIn:
        out.insert(f->var1());  // var2 is second-order
        break;
      case K::kNot:
        out = FreeFoVars(f->left());
        break;
      case K::kAnd:
      case K::kOr: {
        out = FreeFoVars(f->left());
        const auto& r = FreeFoVars(f->right());
        out.insert(r.begin(), r.end());
        break;
      }
      case K::kExistsFo:
        out = FreeFoVars(f->left());
        out.erase(f->var1());
        break;
      case K::kExistsSo:
        out = FreeFoVars(f->left());
        break;
    }
    return free_cache_.emplace(f.get(), std::move(out)).first->second;
  }

  // --- primitive automata over the extended alphabet ---

  // Exactly one position carries track `t`.
  Nbta Singleton(uint32_t t) {
    Nbta a;
    a.num_symbols = static_cast<uint32_t>(ext_.ranked().size());
    StateId s0 = a.AddState();  // no mark in subtree
    StateId s1 = a.AddState();  // exactly one mark
    a.accepting[s1] = true;
    for (SymbolId sym : ext_.ranked().LeafSymbols()) {
      a.AddLeafRule(sym, ext_.BitOf(sym, t) ? s1 : s0);
    }
    for (SymbolId sym : ext_.ranked().BinarySymbols()) {
      if (ext_.BitOf(sym, t)) {
        a.AddRule(sym, s0, s0, s1);
      } else {
        a.AddRule(sym, s0, s0, s0);
        a.AddRule(sym, s1, s0, s1);
        a.AddRule(sym, s0, s1, s1);
      }
    }
    return a;
  }

  // Every node's symbol satisfies `pred`.
  template <typename Pred>
  Nbta LocalAll(Pred pred) {
    Nbta a;
    a.num_symbols = static_cast<uint32_t>(ext_.ranked().size());
    StateId q = a.AddState();
    a.accepting[q] = true;
    for (SymbolId sym : ext_.ranked().LeafSymbols()) {
      if (pred(sym)) a.AddLeafRule(sym, q);
    }
    for (SymbolId sym : ext_.ranked().BinarySymbols()) {
      if (pred(sym)) a.AddRule(sym, q, q, q);
    }
    return a;
  }

  // Track t is set at the subtree root and nowhere else.
  Nbta RootMarked(uint32_t t) {
    Nbta a;
    a.num_symbols = static_cast<uint32_t>(ext_.ranked().size());
    StateId none = a.AddState();
    StateId root = a.AddState();
    a.accepting[root] = true;
    for (SymbolId sym : ext_.ranked().LeafSymbols()) {
      a.AddLeafRule(sym, ext_.BitOf(sym, t) ? root : none);
    }
    for (SymbolId sym : ext_.ranked().BinarySymbols()) {
      a.AddRule(sym, none, none, ext_.BitOf(sym, t) ? root : none);
    }
    return a;
  }

  // succ1/succ2: the y-marked node is the left (right) child of the x-marked
  // node; exactly one mark each (enforced here directly).
  Nbta Successor(uint32_t x, uint32_t y, bool left_child) {
    Nbta a;
    a.num_symbols = static_cast<uint32_t>(ext_.ranked().size());
    StateId none = a.AddState();
    StateId y_root = a.AddState();  // subtree root is the y node; no x inside
    StateId done = a.AddState();    // both marks inside, constraint satisfied
    a.accepting[done] = true;
    for (SymbolId sym : ext_.ranked().LeafSymbols()) {
      const bool bx = ext_.BitOf(sym, x), by = ext_.BitOf(sym, y);
      if (!bx && !by) a.AddLeafRule(sym, none);
      if (!bx && by) a.AddLeafRule(sym, y_root);
      // bx: x at a leaf has no children — unsatisfiable, no rule.
    }
    for (SymbolId sym : ext_.ranked().BinarySymbols()) {
      const bool bx = ext_.BitOf(sym, x), by = ext_.BitOf(sym, y);
      if (!bx && !by) {
        a.AddRule(sym, none, none, none);
        a.AddRule(sym, done, none, done);
        a.AddRule(sym, none, done, done);
      } else if (!bx && by) {
        a.AddRule(sym, none, none, y_root);
      } else if (bx && !by) {
        if (left_child) {
          a.AddRule(sym, y_root, none, done);
        } else {
          a.AddRule(sym, none, y_root, done);
        }
      }
      // bx && by: x and y on the same node — unsatisfiable.
    }
    return a;
  }

  // Intersection of two freshly built primitive automata. Stays off the op
  // cache: primitives have a handful of states, so the product is cheaper
  // than hashing it (docs/CACHING.md).
  Nbta IntersectFresh(Nbta l, Nbta r) {
    return IntersectNbta(NbtaIndex(l, ctx_), NbtaIndex(r, ctx_), ctx_);
  }

  Result<Nbta> CompileUncached(const MsoPtr& f) {
    switch (f->kind()) {
      case K::kTrue:
        return UniversalNbta(ext_.ranked());
      case K::kFalse:
        return EmptyLanguageNbta(ext_.ranked());
      case K::kLabel: {
        const uint32_t x = f->var1();
        const SymbolId a = f->symbol();
        return IntersectFresh(Singleton(x),
                              LocalAll([&](SymbolId sym) {
                                return !ext_.BitOf(sym, x) ||
                                       ext_.BaseOf(sym) == a;
                              }));
      }
      case K::kSucc1:
        return Successor(f->var1(), f->var2(), /*left_child=*/true);
      case K::kSucc2:
        return Successor(f->var1(), f->var2(), /*left_child=*/false);
      case K::kEq: {
        const uint32_t x = f->var1(), y = f->var2();
        return IntersectFresh(Singleton(x),
                              LocalAll([&](SymbolId sym) {
                                return ext_.BitOf(sym, x) ==
                                       ext_.BitOf(sym, y);
                              }));
      }
      case K::kIn: {
        const uint32_t x = f->var1(), set = f->var2();
        return IntersectFresh(Singleton(x),
                              LocalAll([&](SymbolId sym) {
                                return !ext_.BitOf(sym, x) ||
                                       ext_.BitOf(sym, set);
                              }));
      }
      case K::kRoot:
        return RootMarked(f->var1());
      case K::kLeaf: {
        const uint32_t x = f->var1();
        return IntersectFresh(
            Singleton(x), LocalAll([&](SymbolId sym) {
              return !ext_.BitOf(sym, x) || ext_.ranked().Rank(sym) == 0;
            }));
      }
      case K::kNot: {
        PEBBLETC_ASSIGN_OR_RETURN(CompiledPtr inner, Compile(f->left()));
        if (options_.stats != nullptr) options_.stats->complementations++;
        auto comp = alg_.Complement(inner->index, ext_.ranked(), ctx_);
        if (!comp.ok()) return comp.status();
        // Complement may accept ill-marked trees; re-impose singleton
        // validity for the free first-order variables.
        Nbta out = std::move(*comp);
        for (MsoVarId v : FreeFoVars(f)) {
          out = IntersectFresh(std::move(out), Singleton(v));
          out = TrimNbta(NbtaIndex(out, ctx_), ctx_);
        }
        return out;
      }
      case K::kAnd: {
        PEBBLETC_ASSIGN_OR_RETURN(CompiledPtr l, Compile(f->left()));
        PEBBLETC_ASSIGN_OR_RETURN(CompiledPtr r, Compile(f->right()));
        return alg_.Intersect(l->index, r->index, ctx_);
      }
      case K::kOr: {
        PEBBLETC_ASSIGN_OR_RETURN(CompiledPtr l, Compile(f->left()));
        PEBBLETC_ASSIGN_OR_RETURN(CompiledPtr r, Compile(f->right()));
        return UnionNbta(l->nbta, r->nbta);
      }
      case K::kExistsFo:
      case K::kExistsSo: {
        PEBBLETC_ASSIGN_OR_RETURN(CompiledPtr inner, Compile(f->left()));
        return Project(inner->nbta, f->var1());
      }
    }
    return Status::Internal("unknown MSO node kind");
  }

  // Existential projection of one track: the result ignores track `t` and
  // accepts iff some setting of it is accepted.
  Result<Nbta> Project(const Nbta& a, uint32_t t) {
    std::vector<SymbolId> drop = ext_.DropTrackMap(t);
    const uint32_t reduced_size =
        static_cast<uint32_t>(ext_.ranked().size() >> 1);
    Nbta projected = RelabelNbta(a, drop, reduced_size);
    return InverseRelabelNbta(NbtaIndex(projected, ctx_), drop,
                              static_cast<uint32_t>(ext_.ranked().size()),
                              ctx_);
  }

  const TrackAlphabet& ext_;
  MsoCompileOptions options_;
  TaOpContext* ctx_;
  // Dispatch for the expensive ops (complement, ∧-product, determinize,
  // minimize). The AST-pointer cache_ above dedupes shared subformulas of
  // *this* sentence; the algebra's content-addressed cache additionally spans
  // sentences and processes (docs/CACHING.md).
  const TaAlgebra alg_;
  std::unordered_map<const MsoFormula*, CompiledPtr> cache_;
  std::unordered_map<const MsoFormula*, std::set<MsoVarId>> free_cache_;
};

}  // namespace

Result<Nbta> CompileMsoSentence(const MsoPtr& sentence,
                                const RankedAlphabet& base,
                                const MsoCompileOptions& options) {
  PEBBLETC_ASSIGN_OR_RETURN(MsoAnalysis analysis, AnalyzeMso(sentence));
  for (MsoVarId v = 0; v < analysis.variables.size(); ++v) {
    if (analysis.variables[v].used && !analysis.variables[v].quantified) {
      return Status::InvalidArgument(
          "CompileMsoSentence requires a sentence; variable " +
          std::to_string(v) + " is free");
    }
  }
  const uint32_t num_tracks =
      static_cast<uint32_t>(analysis.variables.size());
  PEBBLETC_ASSIGN_OR_RETURN(TrackAlphabet ext,
                            TrackAlphabet::Make(base, num_tracks));
  // Budgets: the shared pipeline context wins; otherwise run a local one
  // seeded from the legacy max_det_states knob.
  TaOpContext local_ctx;
  local_ctx.budgets.max_det_states = options.max_det_states;
  TaOpContext* ctx = options.ctx != nullptr ? options.ctx : &local_ctx;
  Compiler compiler(ext, options, ctx);
  PEBBLETC_ASSIGN_OR_RETURN(CompiledPtr over_ext, compiler.Compile(sentence));

  // Drop all tracks at once: since the sentence has no free variables, the
  // automaton's acceptance is track-independent, so the relabeled image is
  // exactly { t | t ⊨ sentence }.
  Nbta over_base = RelabelNbta(over_ext->nbta, ext.ToBaseMap(),
                               static_cast<uint32_t>(base.size()));
  Nbta trimmed = TrimNbta(NbtaIndex(over_base, ctx), ctx);
  PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx));
  return trimmed;
}

Result<bool> MsoSatisfiable(const MsoPtr& sentence, const RankedAlphabet& base,
                            const MsoCompileOptions& options) {
  PEBBLETC_ASSIGN_OR_RETURN(Nbta a, CompileMsoSentence(sentence, base, options));
  return !IsEmptyNbta(a);
}

}  // namespace pebbletc
