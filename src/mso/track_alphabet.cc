#include "src/mso/track_alphabet.h"

#include <string>

#include "src/common/check.h"

namespace pebbletc {

Result<TrackAlphabet> TrackAlphabet::Make(const RankedAlphabet& base,
                                          uint32_t num_tracks) {
  if (num_tracks > 20) {
    return Status::InvalidArgument("too many MSO tracks (" +
                                   std::to_string(num_tracks) + " > 20)");
  }
  const uint64_t ext_size = static_cast<uint64_t>(base.size())
                            << num_tracks;
  if (ext_size > (1u << 22)) {
    return Status::ResourceExhausted("extended alphabet too large (" +
                                     std::to_string(ext_size) + " symbols)");
  }
  TrackAlphabet out;
  out.base_size_ = static_cast<uint32_t>(base.size());
  out.num_tracks_ = num_tracks;
  const uint32_t combos = 1u << num_tracks;
  for (SymbolId b = 0; b < base.size(); ++b) {
    for (uint32_t bits = 0; bits < combos; ++bits) {
      std::string name = base.Name(b);
      if (num_tracks > 0) {
        name += '#';
        for (uint32_t t = 0; t < num_tracks; ++t) {
          name += ((bits >> t) & 1u) ? '1' : '0';
        }
      }
      Result<SymbolId> id = base.Rank(b) == 0
                                ? out.ranked_.AddLeaf(name)
                                : out.ranked_.AddBinary(name);
      PEBBLETC_CHECK(id.ok()) << id.status().ToString();
      PEBBLETC_CHECK(*id == out.Id(b, bits)) << "extended id out of sync";
    }
  }
  return out;
}

std::vector<SymbolId> TrackAlphabet::DropTrackMap(uint32_t track) const {
  PEBBLETC_CHECK(track < num_tracks_) << "bad track";
  std::vector<SymbolId> map(ranked_.size());
  const uint32_t low_mask = (1u << track) - 1;
  for (SymbolId ext = 0; ext < ranked_.size(); ++ext) {
    const SymbolId base = BaseOf(ext);
    const uint32_t bits = BitsOf(ext);
    const uint32_t reduced = (bits & low_mask) | ((bits >> (track + 1)) << track);
    map[ext] = base * (1u << (num_tracks_ - 1)) + reduced;
  }
  return map;
}

std::vector<SymbolId> TrackAlphabet::ToBaseMap() const {
  std::vector<SymbolId> map(ranked_.size());
  for (SymbolId ext = 0; ext < ranked_.size(); ++ext) map[ext] = BaseOf(ext);
  return map;
}

}  // namespace pebbletc
