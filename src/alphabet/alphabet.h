// Alphabets of interned symbols.
//
// The paper (Section 2.1) works with two kinds of alphabets:
//  * an unranked alphabet Σ of XML tags, labelling unranked ordered trees;
//  * ranked alphabets Σ = Σ0 ∪ Σ2 labelling complete binary trees, where Σ0
//    symbols label leaves and Σ2 symbols label internal (binary) nodes.
// Unranked trees over Σ are encoded into binary trees over the *encoded*
// alphabet Σ′ = Σ ∪ {-, |}, where every tag becomes a binary symbol, `-`
// (cons) is binary, and `|` (nil) is the only leaf symbol.
//
// Symbols are interned: each name maps to a dense SymbolId, and all tree,
// automaton, and transducer structures store ids only.

#ifndef PEBBLETC_ALPHABET_ALPHABET_H_
#define PEBBLETC_ALPHABET_ALPHABET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace pebbletc {

/// Dense index of a symbol within its alphabet.
using SymbolId = uint32_t;

/// Sentinel for "no symbol".
inline constexpr SymbolId kNoSymbol = static_cast<SymbolId>(-1);

/// An unranked alphabet: a set of tag names with dense ids.
class Alphabet {
 public:
  Alphabet() = default;

  /// Interns `name`, returning its id. Re-interning an existing name returns
  /// the existing id. Names must be non-empty.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name`, or kNoSymbol if absent.
  SymbolId Find(std::string_view name) const;

  /// Returns the name of `id`; `id` must be valid.
  const std::string& Name(SymbolId id) const;

  /// Number of interned symbols; valid ids are [0, size).
  size_t size() const { return names_.size(); }

  bool Contains(SymbolId id) const { return id < names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> index_;
};

/// A ranked alphabet partitioned as Σ0 (leaf symbols) ∪ Σ2 (binary symbols).
class RankedAlphabet {
 public:
  RankedAlphabet() = default;

  /// Interns a leaf (rank-0) symbol. Fails if `name` exists with rank 2.
  Result<SymbolId> AddLeaf(std::string_view name);

  /// Interns a binary (rank-2) symbol. Fails if `name` exists with rank 0.
  Result<SymbolId> AddBinary(std::string_view name);

  /// Returns the id of `name`, or kNoSymbol if absent.
  SymbolId Find(std::string_view name) const;

  const std::string& Name(SymbolId id) const;

  /// Rank of `id`: 0 or 2.
  int Rank(SymbolId id) const;
  bool IsLeaf(SymbolId id) const { return Rank(id) == 0; }
  bool IsBinary(SymbolId id) const { return Rank(id) == 2; }

  /// All leaf / binary symbol ids, in insertion order.
  const std::vector<SymbolId>& LeafSymbols() const { return leaves_; }
  const std::vector<SymbolId>& BinarySymbols() const { return binaries_; }

  size_t size() const { return names_.size(); }
  bool Contains(SymbolId id) const { return id < names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<int> ranks_;
  std::vector<SymbolId> leaves_;
  std::vector<SymbolId> binaries_;
  std::unordered_map<std::string, SymbolId> index_;
};

/// The encoded alphabet Σ′ for an unranked tag alphabet Σ (Section 2.1):
/// every tag of Σ becomes a binary symbol, plus binary `-` (forest cons) and
/// leaf `|` (forest nil). `tag_symbol[t]` maps the unranked tag id `t` to its
/// ranked id.
struct EncodedAlphabet {
  RankedAlphabet ranked;
  /// Ranked id of the `-` (cons) binary symbol.
  SymbolId cons = kNoSymbol;
  /// Ranked id of the `|` (nil) leaf symbol.
  SymbolId nil = kNoSymbol;
  /// Indexed by unranked SymbolId; ranked id of each tag.
  std::vector<SymbolId> tag_symbol;

  /// Returns the unranked tag id for the ranked symbol `id`, or kNoSymbol if
  /// `id` is cons or nil.
  SymbolId TagOf(SymbolId id) const;
};

/// Builds Σ′ from Σ. Tag names must not collide with "-" or "|".
Result<EncodedAlphabet> MakeEncodedAlphabet(const Alphabet& tags);

/// Canonical names used by the encoding.
inline constexpr std::string_view kConsName = "-";
inline constexpr std::string_view kNilName = "|";

}  // namespace pebbletc

#endif  // PEBBLETC_ALPHABET_ALPHABET_H_
