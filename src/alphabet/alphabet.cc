#include "src/alphabet/alphabet.h"

#include <string>
#include <utility>

#include "src/common/check.h"

namespace pebbletc {

SymbolId Alphabet::Intern(std::string_view name) {
  PEBBLETC_CHECK(!name.empty()) << "empty symbol name";
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

SymbolId Alphabet::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNoSymbol : it->second;
}

const std::string& Alphabet::Name(SymbolId id) const {
  PEBBLETC_CHECK(Contains(id)) << "invalid symbol id " << id;
  return names_[id];
}

Result<SymbolId> RankedAlphabet::AddLeaf(std::string_view name) {
  if (name.empty()) return Status::InvalidArgument("empty symbol name");
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    if (ranks_[it->second] != 0) {
      return Status::InvalidArgument("symbol '" + std::string(name) +
                                     "' already has rank 2");
    }
    return it->second;
  }
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ranks_.push_back(0);
  leaves_.push_back(id);
  index_.emplace(names_.back(), id);
  return id;
}

Result<SymbolId> RankedAlphabet::AddBinary(std::string_view name) {
  if (name.empty()) return Status::InvalidArgument("empty symbol name");
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    if (ranks_[it->second] != 2) {
      return Status::InvalidArgument("symbol '" + std::string(name) +
                                     "' already has rank 0");
    }
    return it->second;
  }
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ranks_.push_back(2);
  binaries_.push_back(id);
  index_.emplace(names_.back(), id);
  return id;
}

SymbolId RankedAlphabet::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNoSymbol : it->second;
}

const std::string& RankedAlphabet::Name(SymbolId id) const {
  PEBBLETC_CHECK(Contains(id)) << "invalid symbol id " << id;
  return names_[id];
}

int RankedAlphabet::Rank(SymbolId id) const {
  PEBBLETC_CHECK(Contains(id)) << "invalid symbol id " << id;
  return ranks_[id];
}

SymbolId EncodedAlphabet::TagOf(SymbolId id) const {
  for (SymbolId tag = 0; tag < tag_symbol.size(); ++tag) {
    if (tag_symbol[tag] == id) return tag;
  }
  return kNoSymbol;
}

Result<EncodedAlphabet> MakeEncodedAlphabet(const Alphabet& tags) {
  EncodedAlphabet out;
  out.tag_symbol.reserve(tags.size());
  for (SymbolId tag = 0; tag < tags.size(); ++tag) {
    const std::string& name = tags.Name(tag);
    if (name == kConsName || name == kNilName) {
      return Status::InvalidArgument("tag name '" + name +
                                     "' collides with an encoding symbol");
    }
    PEBBLETC_ASSIGN_OR_RETURN(SymbolId id, out.ranked.AddBinary(name));
    out.tag_symbol.push_back(id);
  }
  PEBBLETC_ASSIGN_OR_RETURN(out.cons, out.ranked.AddBinary(kConsName));
  PEBBLETC_ASSIGN_OR_RETURN(out.nil, out.ranked.AddLeaf(kNilName));
  return out;
}

}  // namespace pebbletc
