// Deterministic pseudo-random number generation for tests, benchmarks, and
// randomized structure generators. All randomness in pebbletc flows through
// this class with explicit seeds, so every test and benchmark is reproducible.

#ifndef PEBBLETC_COMMON_RNG_H_
#define PEBBLETC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace pebbletc {

/// xoshiro256** with a splitmix64 seeding stage. Not cryptographic; fast and
/// statistically solid for workload generation.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(uint64_t seed);

  /// Next 64 uniformly random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Derives an independent generator; useful for giving each subtask its own
  /// stream while keeping the parent stream stable.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace pebbletc

#endif  // PEBBLETC_COMMON_RNG_H_
