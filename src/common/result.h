// Result<T>: a value or a Status, the return type of fallible value-producing
// operations throughout pebbletc. See src/common/status.h for the error model.

#ifndef PEBBLETC_COMMON_RESULT_H_
#define PEBBLETC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/common/status.h"

namespace pebbletc {

/// Holds either a successfully computed `T` or the `Status` explaining why the
/// computation failed. Implicitly constructible from both so that functions
/// can `return value;` or `return Status::ParseError(...);` symmetrically.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    PEBBLETC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }
  /// Constructs a successful result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access to the value; the result must be ok().
  const T& value() const& {
    PEBBLETC_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PEBBLETC_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PEBBLETC_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or dies with the error message. For tests and examples
  /// where failure is a bug.
  T ValueOrDie() && {
    PEBBLETC_CHECK(ok()) << "ValueOrDie on error: " << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pebbletc

/// Evaluates `rexpr` (a Result<T>), propagating its Status on failure, binding
/// the value to `lhs` on success. `lhs` may include a declaration, e.g.
/// PEBBLETC_ASSIGN_OR_RETURN(auto dfa, Determinize(nfa));
#define PEBBLETC_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  PEBBLETC_ASSIGN_OR_RETURN_IMPL_(                                     \
      PEBBLETC_RESULT_CONCAT_(pebbletc_result_, __LINE__), lhs, rexpr)

#define PEBBLETC_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                    \
  if (!var.ok()) {                                       \
    return var.status();                                 \
  }                                                      \
  lhs = std::move(var).value()

#define PEBBLETC_RESULT_CONCAT_INNER_(a, b) a##b
#define PEBBLETC_RESULT_CONCAT_(a, b) PEBBLETC_RESULT_CONCAT_INNER_(a, b)

#endif  // PEBBLETC_COMMON_RESULT_H_
