// Small string helpers shared across pebbletc parsers and printers.

#ifndef PEBBLETC_COMMON_STR_UTIL_H_
#define PEBBLETC_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pebbletc {

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece and
/// dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `c` is a valid symbol-name character: alphanumeric, '_', or '-'.
bool IsSymbolChar(char c);

}  // namespace pebbletc

#endif  // PEBBLETC_COMMON_STR_UTIL_H_
