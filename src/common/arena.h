// Monotonic bump arena with O(1) scope reset — the request-scoped allocation
// model for the validation fast path (docs/VALIDATION.md).
//
// The serving hot path parses one XML document, encodes it, runs one
// membership pass, and throws everything away. On the general-purpose heap
// that lifecycle costs a malloc/free pair per tree node vector growth and
// scatters a short-lived working set across the allocator's size classes. An
// Arena instead hands out pointers by bumping an offset through a chain of
// geometrically grown blocks; nothing is freed individually, and `Reset()`
// rewinds the whole region in O(1) *while keeping every block mapped*, so a
// steady-state request loop performs zero allocator calls after warm-up.
//
// Arena implements std::pmr::memory_resource, so the pmr-converted containers
// (BinaryTree, UnrankedTree, parser scratch) thread it through uniformly:
// construct the container with `&arena`, and every internal vector lands in
// the region. Copying an arena-backed container escapes to the default heap
// (polymorphic_allocator copies do not propagate the resource), which is
// exactly the semantics a "borrow during the request, copy to keep" model
// wants. Moves stay inside the arena.
//
// Not thread-safe: one Arena per worker, by construction (the batch fan-out
// gives each TaThreadPool worker its own arena and resets it between
// documents).

#ifndef PEBBLETC_COMMON_ARENA_H_
#define PEBBLETC_COMMON_ARENA_H_

#include <cstddef>
#include <memory_resource>
#include <vector>

namespace pebbletc {

class Arena : public std::pmr::memory_resource {
 public:
  static constexpr size_t kDefaultBlockBytes = 64u << 10;  // first block
  static constexpr size_t kMaxBlockBytes = 4u << 20;       // growth ceiling

  explicit Arena(size_t first_block_bytes = kDefaultBlockBytes);
  ~Arena() override;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewinds the arena to empty without releasing any block: the next
  /// allocation sequence re-bumps through the already-mapped chain. O(1).
  void Reset();

  /// Bytes handed out since construction or the last Reset().
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Largest bytes_allocated() ever observed (across Resets).
  size_t high_water_bytes() const { return high_water_bytes_; }
  /// Total bytes reserved from the upstream heap (never shrinks until
  /// destruction).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    char* data = nullptr;
    size_t size = 0;
  };

  void* do_allocate(size_t bytes, size_t alignment) override;
  void do_deallocate(void* p, size_t bytes, size_t alignment) override;
  bool do_is_equal(const std::pmr::memory_resource& other) const noexcept
      override;

  // Moves to the next block that fits `bytes` (reusing retained blocks after
  // a Reset), appending a new one if the chain is exhausted.
  void NextBlock(size_t bytes);

  std::vector<Block> blocks_;
  size_t current_ = 0;  // index into blocks_; valid only when !blocks_.empty()
  size_t offset_ = 0;   // bump offset within blocks_[current_]
  size_t bytes_allocated_ = 0;
  size_t high_water_bytes_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace pebbletc

#endif  // PEBBLETC_COMMON_ARENA_H_
