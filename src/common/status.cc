#include "src/common/status.h"

#include <utility>

namespace pebbletc {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kLimitExceeded:
      return "limit-exceeded";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
Status Status::LimitExceeded(std::string msg) {
  return Status(StatusCode::kLimitExceeded, std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += state_->message;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += state_->message;
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace pebbletc
