#include "src/common/arena.h"

#include <algorithm>
#include <cstdint>
#include <new>

#include "src/common/check.h"

namespace pebbletc {

Arena::Arena(size_t first_block_bytes) {
  PEBBLETC_CHECK(first_block_bytes > 0) << "arena block size must be positive";
  // Reserve lazily: an arena that never allocates costs nothing. Remember the
  // requested first size by seeding the (empty) chain's growth base.
  first_block_bytes = std::min(first_block_bytes, kMaxBlockBytes);
  blocks_.reserve(8);
  Block b;
  b.size = first_block_bytes;  // allocated on first use by NextBlock
  b.data = nullptr;
  blocks_.push_back(b);
}

Arena::~Arena() {
  for (Block& b : blocks_) {
    ::operator delete(b.data, std::align_val_t(alignof(std::max_align_t)));
  }
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
}

void* Arena::do_allocate(size_t bytes, size_t alignment) {
  if (bytes == 0) bytes = 1;
  // Blocks are max_align_t-aligned at their base; for stricter alignments
  // fall through to a dedicated block sized to guarantee an aligned cut.
  PEBBLETC_CHECK(alignment <= alignof(std::max_align_t))
      << "over-aligned arena allocation (" << alignment << ")";
  Block* blk = blocks_[current_].data != nullptr ? &blocks_[current_] : nullptr;
  size_t aligned = (offset_ + alignment - 1) & ~(alignment - 1);
  if (blk == nullptr || aligned + bytes > blk->size) {
    NextBlock(bytes);
    blk = &blocks_[current_];
    aligned = 0;  // fresh blocks are max_align_t-aligned at offset 0
  }
  offset_ = aligned + bytes;
  bytes_allocated_ += bytes;
  high_water_bytes_ = std::max(high_water_bytes_, bytes_allocated_);
  return blk->data + aligned;
}

void Arena::do_deallocate(void* /*p*/, size_t /*bytes*/, size_t /*alignment*/) {
  // Monotonic: individual frees are no-ops; Reset()/~Arena reclaim.
}

bool Arena::do_is_equal(
    const std::pmr::memory_resource& other) const noexcept {
  return this == &other;
}

void Arena::NextBlock(size_t bytes) {
  // Advance through retained blocks (post-Reset reuse) until one fits.
  size_t next = blocks_[current_].data == nullptr ? current_ : current_ + 1;
  while (next < blocks_.size() && blocks_[next].data != nullptr &&
         blocks_[next].size < bytes) {
    ++next;
  }
  if (next < blocks_.size()) {
    Block& b = blocks_[next];
    if (b.data == nullptr) {
      // First touch of a lazily sized slot (the seed block, or a slot about
      // to be created below): size it to fit and geometrically grow.
      b.size = std::max(b.size, bytes);
      b.data = static_cast<char*>(::operator new(
          b.size, std::align_val_t(alignof(std::max_align_t))));
      bytes_reserved_ += b.size;
    }
    current_ = next;
    offset_ = 0;
    return;
  }
  // Chain exhausted: append a block at double the last size (capped), or a
  // dedicated block when the request itself is oversized.
  const size_t last = blocks_.back().size;
  Block b;
  b.size = std::max(bytes, std::min(last * 2, kMaxBlockBytes));
  b.data = static_cast<char*>(
      ::operator new(b.size, std::align_val_t(alignof(std::max_align_t))));
  bytes_reserved_ += b.size;
  blocks_.push_back(b);
  current_ = blocks_.size() - 1;
  offset_ = 0;
}

}  // namespace pebbletc
