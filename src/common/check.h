// Invariant checking. PEBBLETC_CHECK is always on (it guards library
// invariants whose violation means a bug, not a user error); PEBBLETC_DCHECK
// compiles out in NDEBUG builds and is used on hot paths.

#ifndef PEBBLETC_COMMON_CHECK_H_
#define PEBBLETC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pebbletc {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Returned by the CHECK macros so callers can stream extra context:
///   PEBBLETC_CHECK(x > 0) << "x was " << x;
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed values when a check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_check
}  // namespace pebbletc

#define PEBBLETC_CHECK(condition)                                   \
  switch (0)                                                        \
  case 0:                                                           \
  default:                                                          \
    if (condition)                                                  \
      ;                                                             \
    else                                                            \
      ::pebbletc::internal_check::CheckFailureStream(#condition,    \
                                                     __FILE__, __LINE__)

#ifdef NDEBUG
// `condition` stays syntactically referenced (so variables used only in
// DCHECKs do not trigger -Wunused) but is never evaluated.
#define PEBBLETC_DCHECK(condition)                     \
  switch (0)                                           \
  case 0:                                              \
  default:                                             \
    if (true || (condition))                           \
      ;                                                \
    else                                               \
      ::pebbletc::internal_check::NullStream()
#else
#define PEBBLETC_DCHECK(condition) PEBBLETC_CHECK(condition)
#endif

#endif  // PEBBLETC_COMMON_CHECK_H_
