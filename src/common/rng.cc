#include "src/common/rng.h"

namespace pebbletc {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  PEBBLETC_CHECK(bound > 0) << "NextBelow(0)";
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = -bound % bound;  // == 2^64 mod bound
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  PEBBLETC_CHECK(lo <= hi) << "NextInRange(" << lo << "," << hi << ")";
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace pebbletc
