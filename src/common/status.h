// Status: error propagation without exceptions for the pebbletc library.
//
// Every fallible public API in pebbletc returns either a `Status` (operations
// with no payload) or a `Result<T>` (operations producing a value; see
// src/common/result.h). The design follows the Arrow/RocksDB idiom: a status
// is cheap to copy in the OK case, carries a code plus a human-readable
// message otherwise, and is annotated [[nodiscard]] so callers cannot silently
// drop failures.

#ifndef PEBBLETC_COMMON_STATUS_H_
#define PEBBLETC_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace pebbletc {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  /// The caller passed an argument that violates the API contract.
  kInvalidArgument,
  /// A lookup failed (symbol, state, file, ...).
  kNotFound,
  /// The operation requires object state that does not hold (e.g. running a
  /// non-deterministic transducer through the deterministic evaluator).
  kFailedPrecondition,
  /// A numeric limit was exceeded (configured state budget, recursion depth).
  kResourceExhausted,
  /// Input text failed to parse.
  kParseError,
  /// The requested feature is specified but not implemented.
  kUnimplemented,
  /// An internal invariant was violated; indicates a library bug.
  kInternal,
  /// The operation's wall-clock deadline elapsed before it completed.
  kDeadlineExceeded,
  /// The caller cooperatively cancelled the operation mid-flight.
  kCancelled,
  /// A structural limit (parser nesting depth, ...) was exceeded. Unlike
  /// kResourceExhausted this signals a per-input cap, not a budget the
  /// pipeline can retry with more headroom.
  kLimitExceeded,
};

/// Returns the canonical lowercase name of `code` ("ok", "invalid-argument"...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. OK statuses are represented by a null pointer, so
/// the happy path costs one pointer and no allocation.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `StatusCode::kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status ParseError(std::string msg);
  static Status Unimplemented(std::string msg);
  static Status Internal(std::string msg);
  static Status DeadlineExceeded(std::string msg);
  static Status Cancelled(std::string msg);
  static Status LimitExceeded(std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK statuses.
  std::string_view message() const {
    return ok() ? std::string_view() : std::string_view(state_->message);
  }

  /// "OK" or "<code-name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context + ": "` prepended to the
  /// message. OK statuses are returned unchanged. Used to build error traces
  /// as failures propagate upward.
  Status WithContext(std::string_view context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff OK.
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace pebbletc

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status or Result<T> (Result is implicitly constructible from Status).
#define PEBBLETC_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::pebbletc::Status pebbletc_status_tmp = (expr);    \
    if (!pebbletc_status_tmp.ok()) {                    \
      return pebbletc_status_tmp;                       \
    }                                                   \
  } while (false)

#endif  // PEBBLETC_COMMON_STATUS_H_
