// DTDs as extended context-free grammars (Section 2.3), their specialized
// (decoupled-tag) generalization, validation of unranked trees, and
// compilation into bottom-up tree automata over the encoded alphabet Σ′ such
// that inst(automaton) = { encode(t) | t ∈ inst(dtd) }.
//
// A *specialized DTD* decouples types from tags: each type carries a tag and
// a content-model regex over *types*; a tree is valid if some assignment of
// types to nodes is tag-consistent and satisfies every content model.
// Specialized DTDs define exactly the regular tree languages (the paper cites
// [4, 32, 13]); plain DTDs are the special case type = tag.
//
// Text format (one declaration per line, '#' comments, first LHS is the
// root):
//   plain:        a := b*.c.e        ε is "()"
//   specialized:  b1[b] := c*        type b1 has tag b

#ifndef PEBBLETC_DTD_DTD_H_
#define PEBBLETC_DTD_DTD_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/regex/dfa.h"
#include "src/regex/regex.h"
#include "src/ta/nbta.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

/// A specialized DTD. Plain DTDs are represented with types ≡ tags
/// (type_tag is the identity and type/tag names coincide).
class SpecializedDtd {
 public:
  /// Tag alphabet — parse document trees against this.
  const Alphabet& tags() const { return tags_; }
  Alphabet* mutable_tags() { return &tags_; }
  /// Type alphabet (equal to tags() for plain DTDs).
  const Alphabet& types() const { return types_; }

  size_t num_types() const { return type_tag_.size(); }
  SymbolId TagOfType(SymbolId type) const { return type_tag_[type]; }
  const RegexPtr& ContentModel(SymbolId type) const { return content_[type]; }
  const std::vector<SymbolId>& root_types() const { return root_types_; }
  bool IsPlain() const { return plain_; }

  /// Declares a type; `tag` is interned into tags(), `type_name` into
  /// types(). Each type may be declared once.
  Result<SymbolId> AddType(std::string_view type_name, std::string_view tag,
                           RegexPtr content_model);

  /// Marks `type` as an allowed root.
  Status AddRootType(SymbolId type);

  /// Compiles content models; must be called after the last AddType and
  /// before validation/compilation. Fails if any referenced type is
  /// undeclared.
  Status Finalize();

  /// Does `tree` (whose tags are ids of tags()) conform to this DTD?
  /// Requires Finalize(). Implemented as a bottom-up possible-type DP; for
  /// plain DTDs this is the usual one-pass deterministic validation.
  Result<bool> Accepts(const UnrankedTree& tree) const;

  /// Like Accepts but, for invalid trees, reports the offending node (plain
  /// DTDs produce precise per-node diagnostics; specialized DTDs report the
  /// root as a whole).
  Status Validate(const UnrankedTree& tree) const;

 private:
  friend Result<Nbta> CompileDtdToNbta(const SpecializedDtd& dtd,
                                       const EncodedAlphabet& enc);

  Alphabet tags_;
  Alphabet types_;
  std::vector<SymbolId> type_tag_;
  std::vector<RegexPtr> content_;
  std::vector<std::unique_ptr<Dfa>> content_dfa_;  // over the type alphabet
  std::vector<SymbolId> root_types_;
  bool plain_ = true;
  bool finalized_ = false;
};

/// Parses the plain-DTD text format. Tag names are interned in declaration
/// order; the first declaration's LHS is the root.
Result<SpecializedDtd> ParseDtd(std::string_view text);

/// Parses the specialized-DTD format (`type[tag] := regex-over-types`).
/// Plain-form lines (`name := regex`) are treated as `name[name] := regex`.
Result<SpecializedDtd> ParseSpecializedDtd(std::string_view text);

/// Compiles the DTD into a bottom-up automaton over `enc.ranked` with
/// inst(result) = { encode(t) | t ∈ inst(dtd) }. `enc` must be built from
/// dtd.tags(). Requires Finalize().
Result<Nbta> CompileDtdToNbta(const SpecializedDtd& dtd,
                              const EncodedAlphabet& enc);

/// Compiles the DTD over a *different* encoded alphabet, matching symbols by
/// name — the common case where a transducer's alphabet was built
/// independently (e.g. by a query compiler) and contains at least the DTD's
/// tags. Fails if a DTD tag is missing from `target`.
Result<Nbta> CompileDtdOver(const SpecializedDtd& dtd,
                            const EncodedAlphabet& target);

}  // namespace pebbletc

#endif  // PEBBLETC_DTD_DTD_H_
