#include "src/dtd/dtd.h"

#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/str_util.h"

namespace pebbletc {

Result<SymbolId> SpecializedDtd::AddType(std::string_view type_name,
                                         std::string_view tag,
                                         RegexPtr content_model) {
  if (finalized_) {
    return Status::FailedPrecondition("AddType after Finalize");
  }
  if (types_.Find(type_name) != kNoSymbol) {
    return Status::InvalidArgument("type '" + std::string(type_name) +
                                   "' declared twice");
  }
  SymbolId type = types_.Intern(type_name);
  SymbolId tag_id = tags_.Intern(tag);
  PEBBLETC_CHECK(type == type_tag_.size()) << "type id out of sync";
  type_tag_.push_back(tag_id);
  content_.push_back(std::move(content_model));
  if (type_name != tag) plain_ = false;
  return type;
}

Status SpecializedDtd::AddRootType(SymbolId type) {
  if (type >= num_types()) {
    return Status::InvalidArgument("root type out of range");
  }
  root_types_.push_back(type);
  return Status::OK();
}

Status SpecializedDtd::Finalize() {
  if (finalized_) return Status::OK();
  if (num_types() == 0) {
    return Status::FailedPrecondition("DTD declares no types");
  }
  if (root_types_.empty()) {
    return Status::FailedPrecondition("DTD has no root type");
  }
  // Content models range over the *type* alphabet. A regex mentioning a
  // symbol id ≥ num_types would have failed at parse time; defensive checks
  // happen inside CompileRegexToDfa's NFA construction.
  content_dfa_.clear();
  content_dfa_.reserve(num_types());
  for (SymbolId p = 0; p < num_types(); ++p) {
    if (content_[p] == nullptr) {
      return Status::FailedPrecondition("type '" + types_.Name(p) +
                                        "' has no content model");
    }
    content_dfa_.push_back(std::make_unique<Dfa>(CompileRegexToDfa(
        content_[p], static_cast<uint32_t>(num_types()))));
  }
  finalized_ = true;
  return Status::OK();
}

namespace {

// possible[n] = set of types assignable to node n (bottom-up DP). Exploits
// the invariant that children have smaller NodeIds than parents.
Result<std::vector<std::vector<bool>>> PossibleTypes(
    const SpecializedDtd& dtd, const UnrankedTree& tree,
    const std::vector<std::vector<SymbolId>>& types_by_tag,
    const std::vector<const Dfa*>& dfas) {
  std::vector<std::vector<bool>> possible(
      tree.size(), std::vector<bool>(dtd.num_types(), false));
  for (NodeId n = 0; n < tree.size(); ++n) {
    SymbolId tag = tree.tag(n);
    if (tag >= dtd.tags().size()) {
      return Status::InvalidArgument("node " + std::to_string(n) +
                                     " has a tag outside the DTD alphabet");
    }
    for (SymbolId p : types_by_tag[tag]) {
      const Dfa& dfa = *dfas[p];
      // Subset simulation of the content DFA over the children, where each
      // child contributes its possible types as alternative letters.
      std::vector<bool> current(dfa.num_states(), false);
      current[dfa.start()] = true;
      bool dead = false;
      for (NodeId child : tree.children(n)) {
        std::vector<bool> next(dfa.num_states(), false);
        bool any = false;
        for (StateId s = 0; s < dfa.num_states(); ++s) {
          if (!current[s]) continue;
          for (SymbolId q = 0; q < dtd.num_types(); ++q) {
            if (possible[child][q]) {
              next[dfa.Next(s, q)] = true;
              any = true;
            }
          }
        }
        if (!any) {
          dead = true;
          break;
        }
        current = std::move(next);
      }
      if (dead) continue;
      for (StateId s = 0; s < dfa.num_states(); ++s) {
        if (current[s] && dfa.accepting(s)) {
          possible[n][p] = true;
          break;
        }
      }
    }
  }
  return possible;
}

}  // namespace

Result<bool> SpecializedDtd::Accepts(const UnrankedTree& tree) const {
  if (!finalized_) {
    return Status::FailedPrecondition("DTD not finalized");
  }
  if (tree.empty()) return false;
  std::vector<std::vector<SymbolId>> types_by_tag(tags_.size());
  for (SymbolId p = 0; p < num_types(); ++p) {
    types_by_tag[type_tag_[p]].push_back(p);
  }
  std::vector<const Dfa*> dfas;
  for (const auto& d : content_dfa_) dfas.push_back(d.get());
  PEBBLETC_ASSIGN_OR_RETURN(auto possible,
                            PossibleTypes(*this, tree, types_by_tag, dfas));
  for (SymbolId r : root_types_) {
    if (possible[tree.root()][r]) return true;
  }
  return false;
}

Status SpecializedDtd::Validate(const UnrankedTree& tree) const {
  if (!finalized_) return Status::FailedPrecondition("DTD not finalized");
  if (tree.empty()) return Status::InvalidArgument("empty document");
  std::vector<std::vector<SymbolId>> types_by_tag(tags_.size());
  for (SymbolId p = 0; p < num_types(); ++p) {
    types_by_tag[type_tag_[p]].push_back(p);
  }
  std::vector<const Dfa*> dfas;
  for (const auto& d : content_dfa_) dfas.push_back(d.get());
  auto possible_or = PossibleTypes(*this, tree, types_by_tag, dfas);
  if (!possible_or.ok()) return possible_or.status();
  const auto& possible = *possible_or;
  for (SymbolId r : root_types_) {
    if (possible[tree.root()][r]) return Status::OK();
  }
  // Diagnose: find the lowest node with no assignable type.
  for (NodeId n = 0; n < tree.size(); ++n) {
    bool any = false;
    for (SymbolId p = 0; p < num_types(); ++p) any = any || possible[n][p];
    if (!any) {
      SymbolId tag = tree.tag(n);
      if (types_by_tag[tag].empty()) {
        return Status::InvalidArgument("element '" + tags_.Name(tag) +
                                       "' (node " + std::to_string(n) +
                                       ") is not declared in the DTD");
      }
      return Status::InvalidArgument(
          "content of element '" + tags_.Name(tag) + "' (node " +
          std::to_string(n) + ") violates its content model");
    }
  }
  return Status::InvalidArgument(
      "document root does not match the DTD root type");
}

namespace {

struct Declaration {
  std::string type_name;
  std::string tag;
  std::string rhs;
};

Result<std::vector<Declaration>> ParseDeclarations(std::string_view text,
                                                   bool allow_specialized) {
  std::vector<Declaration> decls;
  for (const std::string& raw : SplitAndTrim(text, '\n')) {
    std::string_view line = raw;
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = TrimWhitespace(line.substr(0, hash));
      if (line.empty()) continue;
    }
    auto sep = line.find(":=");
    if (sep == std::string_view::npos) {
      return Status::ParseError("missing ':=' in '" + std::string(line) + "'");
    }
    std::string_view lhs = TrimWhitespace(line.substr(0, sep));
    std::string_view rhs = TrimWhitespace(line.substr(sep + 2));
    if (lhs.empty() || rhs.empty()) {
      return Status::ParseError("empty side in '" + std::string(line) + "'");
    }
    Declaration d;
    if (auto bracket = lhs.find('['); bracket != std::string_view::npos) {
      if (!allow_specialized) {
        return Status::ParseError(
            "specialized declaration in a plain DTD: '" + std::string(lhs) +
            "'");
      }
      if (lhs.back() != ']') {
        return Status::ParseError("malformed type[tag] in '" +
                                  std::string(lhs) + "'");
      }
      d.type_name = std::string(TrimWhitespace(lhs.substr(0, bracket)));
      d.tag = std::string(TrimWhitespace(
          lhs.substr(bracket + 1, lhs.size() - bracket - 2)));
      if (d.type_name.empty() || d.tag.empty()) {
        return Status::ParseError("malformed type[tag] in '" +
                                  std::string(lhs) + "'");
      }
    } else {
      d.type_name = std::string(lhs);
      d.tag = std::string(lhs);
    }
    d.rhs = std::string(rhs);
    decls.push_back(std::move(d));
  }
  if (decls.empty()) {
    return Status::ParseError("DTD declares no elements");
  }
  return decls;
}

Result<SpecializedDtd> ParseDtdImpl(std::string_view text,
                                    bool allow_specialized) {
  PEBBLETC_ASSIGN_OR_RETURN(std::vector<Declaration> decls,
                            ParseDeclarations(text, allow_specialized));
  // Pass 1: declare every type so content models can reference any of them.
  Alphabet type_names;
  for (const Declaration& d : decls) {
    if (type_names.Find(d.type_name) != kNoSymbol) {
      return Status::ParseError("type '" + d.type_name + "' declared twice");
    }
    type_names.Intern(d.type_name);
  }
  // Pass 2: parse content models against the closed type alphabet.
  SpecializedDtd dtd;
  for (const Declaration& d : decls) {
    auto regex = ParseRegexClosed(d.rhs, type_names);
    if (!regex.ok()) {
      return regex.status().WithContext("content model of '" + d.type_name +
                                        "'");
    }
    auto added = dtd.AddType(d.type_name, d.tag, *regex);
    if (!added.ok()) return added.status();
  }
  PEBBLETC_RETURN_IF_ERROR(dtd.AddRootType(0));  // first declaration is root
  PEBBLETC_RETURN_IF_ERROR(dtd.Finalize());
  return dtd;
}

}  // namespace

Result<SpecializedDtd> ParseDtd(std::string_view text) {
  return ParseDtdImpl(text, /*allow_specialized=*/false);
}

Result<SpecializedDtd> ParseSpecializedDtd(std::string_view text) {
  return ParseDtdImpl(text, /*allow_specialized=*/true);
}

Result<Nbta> CompileDtdToNbta(const SpecializedDtd& dtd,
                              const EncodedAlphabet& enc) {
  if (!dtd.finalized_) {
    return Status::FailedPrecondition("DTD not finalized");
  }
  if (enc.tag_symbol.size() != dtd.tags().size()) {
    return Status::InvalidArgument(
        "encoded alphabet does not match the DTD tag alphabet");
  }
  const size_t num_types = dtd.num_types();

  Nbta out;
  out.num_symbols = static_cast<uint32_t>(enc.ranked.size());

  // State layout: nil, tree[p] for each type, then per-type forest blocks
  // forest[p][s] for each content-DFA state s.
  StateId nil_state = out.AddState();
  std::vector<StateId> tree_state(num_types);
  for (size_t p = 0; p < num_types; ++p) tree_state[p] = out.AddState();
  std::vector<StateId> forest_base(num_types);
  for (size_t p = 0; p < num_types; ++p) {
    const Dfa& d = *dtd.content_dfa_[p];
    forest_base[p] = out.num_states;
    for (StateId s = 0; s < d.num_states(); ++s) out.AddState();
  }
  auto forest_state = [&](size_t p, StateId s) {
    return forest_base[p] + s;
  };

  out.AddLeafRule(enc.nil, nil_state);

  // Coercion targets: a finished tree of type q may serve as (i) the tree
  // state tree[q], or (ii) the tail of any forest, i.e. forest[p][s] whenever
  // δ_p(s, q) is accepting.
  std::vector<std::vector<StateId>> targets(num_types);
  for (size_t q = 0; q < num_types; ++q) {
    targets[q].push_back(tree_state[q]);
    for (size_t p = 0; p < num_types; ++p) {
      const Dfa& d = *dtd.content_dfa_[p];
      for (StateId s = 0; s < d.num_states(); ++s) {
        if (d.accepting(d.Next(s, static_cast<SymbolId>(q)))) {
          targets[q].push_back(forest_state(p, s));
        }
      }
    }
  }

  // Tag-node rules.
  for (size_t p = 0; p < num_types; ++p) {
    const Dfa& d = *dtd.content_dfa_[p];
    const SymbolId ranked_tag = enc.tag_symbol[dtd.TagOfType(p)];
    for (StateId target : targets[p]) {
      if (d.accepting(d.start())) {
        out.AddRule(ranked_tag, nil_state, nil_state, target);  // a(|, |)
      }
      out.AddRule(ranked_tag, forest_state(p, d.start()), nil_state, target);
    }
  }

  // Cons rules: -(tree[q], forest[p][δ_p(s,q)]) → forest[p][s].
  for (size_t p = 0; p < num_types; ++p) {
    const Dfa& d = *dtd.content_dfa_[p];
    for (StateId s = 0; s < d.num_states(); ++s) {
      for (size_t q = 0; q < num_types; ++q) {
        out.AddRule(enc.cons, tree_state[q],
                    forest_state(p, d.Next(s, static_cast<SymbolId>(q))),
                    forest_state(p, s));
      }
    }
  }

  for (SymbolId r : dtd.root_types()) {
    out.accepting[tree_state[r]] = true;
  }
  return out;
}

Result<Nbta> CompileDtdOver(const SpecializedDtd& dtd,
                            const EncodedAlphabet& target) {
  PEBBLETC_ASSIGN_OR_RETURN(EncodedAlphabet own,
                            MakeEncodedAlphabet(dtd.tags()));
  PEBBLETC_ASSIGN_OR_RETURN(Nbta raw, CompileDtdToNbta(dtd, own));
  std::vector<SymbolId> map(own.ranked.size());
  for (SymbolId s = 0; s < own.ranked.size(); ++s) {
    map[s] = target.ranked.Find(own.ranked.Name(s));
    if (map[s] == kNoSymbol) {
      return Status::InvalidArgument("DTD symbol '" + own.ranked.Name(s) +
                                     "' is missing from the target alphabet");
    }
    if (target.ranked.Rank(map[s]) != own.ranked.Rank(s)) {
      return Status::InvalidArgument("DTD symbol '" + own.ranked.Name(s) +
                                     "' has a different rank in the target");
    }
  }
  return RelabelNbta(raw, map,
                     static_cast<uint32_t>(target.ranked.size()));
}

}  // namespace pebbletc
