// (Regular) path expressions and their evaluation on trees (Section 2.1).
//
// A path expression is a regular expression r over the tag alphabet Σ;
// eval(r, t) is the set of nodes reachable from the root along a downward
// path whose labels (including both endpoints) spell a word of lang(r).
// `TranslatePathExpression` lifts r to the encoded alphabet Σ′ such that
//   eval(translate(r), encode(t)) = { encode(x) | x ∈ eval(r, t) },
// the commuting property the paper uses to reduce the unranked case to
// binary trees.

#ifndef PEBBLETC_REGEX_PATH_EXPR_H_
#define PEBBLETC_REGEX_PATH_EXPR_H_

#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/regex/dfa.h"
#include "src/regex/regex.h"
#include "src/tree/binary_tree.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

/// Evaluates a path expression (compiled to `dfa`, over tag ids) on an
/// unranked tree: returns all nodes x such that the label word along the
/// root-to-x path is accepted. Results are in ascending NodeId order.
std::vector<NodeId> EvalPath(const UnrankedTree& tree, const Dfa& dfa);

/// Same for a binary tree; `dfa` ranges over the ranked symbol ids.
std::vector<NodeId> EvalPathBinary(const BinaryTree& tree, const Dfa& dfa);

/// Evaluates relative to `origin`: paths start at `origin` instead of the
/// root (used by pattern matching, where conditions have the form
/// x_j ∈ eval(r, x_i)).
std::vector<NodeId> EvalPathFrom(const UnrankedTree& tree, NodeId origin,
                                 const Dfa& dfa);
std::vector<NodeId> EvalPathBinaryFrom(const BinaryTree& tree, NodeId origin,
                                       const Dfa& dfa);

/// The Section 2.1 translation: compiles `r` (over unranked tag ids) into a
/// minimal DFA over `enc.ranked` symbol ids accepting translate(r), i.e.
/// lang(r) with any number of `-` symbols interleaved strictly between
/// consecutive tags.
Result<Dfa> TranslatePathExpression(const RegexPtr& r,
                                    const EncodedAlphabet& enc);

}  // namespace pebbletc

#endif  // PEBBLETC_REGEX_PATH_EXPR_H_
