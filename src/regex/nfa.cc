#include "src/regex/nfa.h"

#include <algorithm>

#include "src/common/check.h"

namespace pebbletc {

StateId Nfa::AddState() {
  StateId id = num_states++;
  accepting.push_back(false);
  transitions.emplace_back();
  epsilon.emplace_back();
  return id;
}

void Nfa::AddTransition(StateId from, SymbolId symbol, StateId to) {
  PEBBLETC_CHECK(from < num_states && to < num_states) << "bad state";
  PEBBLETC_CHECK(symbol < num_symbols) << "symbol " << symbol
                                       << " outside alphabet";
  transitions[from].emplace_back(symbol, to);
}

void Nfa::AddEpsilon(StateId from, StateId to) {
  PEBBLETC_CHECK(from < num_states && to < num_states) << "bad state";
  epsilon[from].push_back(to);
}

namespace {

// Expands `set` to its ε-closure (in place). `set` is a sorted unique vector.
void EpsilonClosure(const Nfa& nfa, std::vector<StateId>* set) {
  std::vector<bool> in_set(nfa.num_states, false);
  for (StateId q : *set) in_set[q] = true;
  std::vector<StateId> work = *set;
  while (!work.empty()) {
    StateId q = work.back();
    work.pop_back();
    for (StateId p : nfa.epsilon[q]) {
      if (!in_set[p]) {
        in_set[p] = true;
        set->push_back(p);
        work.push_back(p);
      }
    }
  }
  std::sort(set->begin(), set->end());
}

}  // namespace

bool Nfa::Accepts(const std::vector<SymbolId>& word) const {
  std::vector<StateId> current = {start};
  EpsilonClosure(*this, &current);
  for (SymbolId a : word) {
    std::vector<bool> next_set(num_states, false);
    std::vector<StateId> next;
    for (StateId q : current) {
      for (const auto& [sym, to] : transitions[q]) {
        if (sym == a && !next_set[to]) {
          next_set[to] = true;
          next.push_back(to);
        }
      }
    }
    EpsilonClosure(*this, &next);
    current = std::move(next);
    if (current.empty()) return false;
  }
  for (StateId q : current) {
    if (accepting[q]) return true;
  }
  return false;
}

namespace {

// Recursively builds the Thompson fragment for `r`, returning (in, out).
// The fragment has exactly one entry and one exit; the exit has no outgoing
// edges within the fragment.
std::pair<StateId, StateId> Build(const RegexPtr& r, Nfa* nfa) {
  switch (r->kind()) {
    case Regex::Kind::kEmptySet: {
      StateId in = nfa->AddState();
      StateId out = nfa->AddState();
      return {in, out};  // no connection: accepts nothing
    }
    case Regex::Kind::kEpsilon: {
      StateId in = nfa->AddState();
      StateId out = nfa->AddState();
      nfa->AddEpsilon(in, out);
      return {in, out};
    }
    case Regex::Kind::kSymbol: {
      StateId in = nfa->AddState();
      StateId out = nfa->AddState();
      nfa->AddTransition(in, r->symbol(), out);
      return {in, out};
    }
    case Regex::Kind::kConcat: {
      auto [in1, out1] = Build(r->left(), nfa);
      auto [in2, out2] = Build(r->right(), nfa);
      nfa->AddEpsilon(out1, in2);
      return {in1, out2};
    }
    case Regex::Kind::kUnion: {
      StateId in = nfa->AddState();
      StateId out = nfa->AddState();
      auto [in1, out1] = Build(r->left(), nfa);
      auto [in2, out2] = Build(r->right(), nfa);
      nfa->AddEpsilon(in, in1);
      nfa->AddEpsilon(in, in2);
      nfa->AddEpsilon(out1, out);
      nfa->AddEpsilon(out2, out);
      return {in, out};
    }
    case Regex::Kind::kStar: {
      StateId in = nfa->AddState();
      StateId out = nfa->AddState();
      auto [bin, bout] = Build(r->left(), nfa);
      nfa->AddEpsilon(in, bin);
      nfa->AddEpsilon(in, out);
      nfa->AddEpsilon(bout, bin);
      nfa->AddEpsilon(bout, out);
      return {in, out};
    }
  }
  PEBBLETC_CHECK(false) << "unreachable regex kind";
  return {0, 0};
}

}  // namespace

Nfa CompileRegexToNfa(const RegexPtr& regex, uint32_t num_symbols) {
  Nfa nfa;
  nfa.num_symbols = num_symbols;
  auto [in, out] = Build(regex, &nfa);
  nfa.start = in;
  nfa.accepting[out] = true;
  return nfa;
}

Nfa RemoveEpsilon(const Nfa& nfa) {
  Nfa out;
  out.num_symbols = nfa.num_symbols;
  for (StateId q = 0; q < nfa.num_states; ++q) out.AddState();
  out.start = nfa.start;
  for (StateId q = 0; q < nfa.num_states; ++q) {
    std::vector<StateId> closure = {q};
    EpsilonClosure(nfa, &closure);
    bool acc = false;
    for (StateId p : closure) {
      acc = acc || nfa.accepting[p];
      for (const auto& [sym, to] : nfa.transitions[p]) {
        out.AddTransition(q, sym, to);
      }
    }
    out.accepting[q] = acc;
  }
  // Deduplicate transitions.
  for (StateId q = 0; q < out.num_states; ++q) {
    auto& ts = out.transitions[q];
    std::sort(ts.begin(), ts.end());
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  }
  return out;
}

Nfa RemapSymbols(const Nfa& nfa, const std::vector<SymbolId>& map,
                 uint32_t new_num_symbols) {
  Nfa out;
  out.num_symbols = new_num_symbols;
  for (StateId q = 0; q < nfa.num_states; ++q) out.AddState();
  out.start = nfa.start;
  out.accepting = nfa.accepting;
  out.epsilon = nfa.epsilon;
  for (StateId q = 0; q < nfa.num_states; ++q) {
    for (const auto& [sym, to] : nfa.transitions[q]) {
      PEBBLETC_CHECK(sym < map.size()) << "unmapped symbol " << sym;
      out.AddTransition(q, map[sym], to);
    }
  }
  return out;
}

Nfa InsertSeparators(const Nfa& input, SymbolId separator) {
  PEBBLETC_CHECK(separator < input.num_symbols)
      << "separator outside alphabet";
  const Nfa nfa = RemoveEpsilon(input);
  Nfa out;
  out.num_symbols = nfa.num_symbols;
  // Layout: [0, n) original states, [n, 2n) separator-mode copies, 2n a fresh
  // start (so leading separators are never accepted).
  const StateId n = nfa.num_states;
  for (StateId q = 0; q < 2 * n + 1; ++q) out.AddState();
  const StateId fresh_start = 2 * n;
  out.start = fresh_start;
  for (StateId q = 0; q < n; ++q) {
    out.accepting[q] = nfa.accepting[q];
    for (const auto& [sym, to] : nfa.transitions[q]) {
      out.AddTransition(q, sym, to);          // original mode
      out.AddTransition(n + q, sym, to);      // leaving separator mode
    }
    out.AddTransition(q, separator, n + q);   // enter separator mode
    out.AddTransition(n + q, separator, n + q);
  }
  // Fresh start mirrors the original start's symbol moves and acceptance but
  // has no separator edge.
  out.accepting[fresh_start] = nfa.accepting[nfa.start];
  for (const auto& [sym, to] : nfa.transitions[nfa.start]) {
    out.AddTransition(fresh_start, sym, to);
  }
  return out;
}

}  // namespace pebbletc
