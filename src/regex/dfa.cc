#include "src/regex/dfa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <utility>

namespace pebbletc {

Dfa::Dfa(uint32_t num_states, uint32_t num_symbols)
    : num_states_(num_states),
      num_symbols_(num_symbols),
      accepting_(num_states, false),
      table_(static_cast<size_t>(num_states) * num_symbols, 0) {
  PEBBLETC_CHECK(num_states > 0) << "DFA needs at least one state";
}

bool Dfa::Accepts(const std::vector<SymbolId>& word) const {
  StateId q = start_;
  for (SymbolId a : word) q = Next(q, a);
  return accepting_[q];
}

std::vector<bool> Dfa::LiveStates() const {
  // Reverse reachability from accepting states.
  std::vector<std::vector<StateId>> rev(num_states_);
  for (StateId q = 0; q < num_states_; ++q) {
    for (SymbolId a = 0; a < num_symbols_; ++a) {
      rev[Next(q, a)].push_back(q);
    }
  }
  std::vector<bool> live(num_states_, false);
  std::vector<StateId> work;
  for (StateId q = 0; q < num_states_; ++q) {
    if (accepting_[q]) {
      live[q] = true;
      work.push_back(q);
    }
  }
  while (!work.empty()) {
    StateId q = work.back();
    work.pop_back();
    for (StateId p : rev[q]) {
      if (!live[p]) {
        live[p] = true;
        work.push_back(p);
      }
    }
  }
  return live;
}

namespace {

// Sorted-unique subset of NFA states with its ε-closure applied.
using Subset = std::vector<StateId>;

void Close(const Nfa& nfa, Subset* set) {
  std::vector<bool> in_set(nfa.num_states, false);
  for (StateId q : *set) in_set[q] = true;
  std::vector<StateId> work(*set);
  while (!work.empty()) {
    StateId q = work.back();
    work.pop_back();
    for (StateId p : nfa.epsilon[q]) {
      if (!in_set[p]) {
        in_set[p] = true;
        set->push_back(p);
        work.push_back(p);
      }
    }
  }
  std::sort(set->begin(), set->end());
}

}  // namespace

Dfa Determinize(const Nfa& nfa) {
  PEBBLETC_CHECK(nfa.num_states > 0) << "empty NFA";
  std::map<Subset, StateId> index;
  std::vector<Subset> subsets;
  auto intern = [&](Subset s) -> StateId {
    auto [it, inserted] = index.emplace(std::move(s), subsets.size());
    if (inserted) subsets.push_back(it->first);
    return it->second;
  };

  Subset init = {nfa.start};
  Close(nfa, &init);
  StateId start = intern(std::move(init));

  // Rows of the transition table, built as subsets are discovered.
  std::vector<std::vector<StateId>> rows;
  std::vector<bool> acc;
  for (StateId q = 0; q < subsets.size(); ++q) {
    const Subset current = subsets[q];  // copy: subsets may grow
    bool a = false;
    for (StateId s : current) a = a || nfa.accepting[s];
    acc.push_back(a);
    std::vector<StateId> row(nfa.num_symbols);
    for (SymbolId sym = 0; sym < nfa.num_symbols; ++sym) {
      Subset next;
      std::vector<bool> seen(nfa.num_states, false);
      for (StateId s : current) {
        for (const auto& [tsym, to] : nfa.transitions[s]) {
          if (tsym == sym && !seen[to]) {
            seen[to] = true;
            next.push_back(to);
          }
        }
      }
      Close(nfa, &next);
      row[sym] = intern(std::move(next));
    }
    rows.push_back(std::move(row));
  }

  Dfa dfa(static_cast<uint32_t>(subsets.size()),
          nfa.num_symbols == 0 ? 1 : nfa.num_symbols);
  dfa.set_start(start);
  for (StateId q = 0; q < rows.size(); ++q) {
    dfa.set_accepting(q, acc[q]);
    for (SymbolId sym = 0; sym < nfa.num_symbols; ++sym) {
      dfa.SetNext(q, sym, rows[q][sym]);
    }
  }
  return dfa;
}

Dfa Minimize(const Dfa& dfa) {
  const uint32_t n = dfa.num_states();
  const uint32_t k = dfa.num_symbols();

  // Restrict to reachable states first.
  std::vector<StateId> order;
  std::vector<int64_t> reach_index(n, -1);
  order.push_back(dfa.start());
  reach_index[dfa.start()] = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    for (SymbolId a = 0; a < k; ++a) {
      StateId t = dfa.Next(order[i], a);
      if (reach_index[t] < 0) {
        reach_index[t] = static_cast<int64_t>(order.size());
        order.push_back(t);
      }
    }
  }
  const uint32_t m = static_cast<uint32_t>(order.size());

  // Moore refinement over reachable states: block id per state, refined until
  // stable. Initial partition: accepting vs non-accepting.
  std::vector<uint32_t> block(m);
  for (uint32_t i = 0; i < m; ++i) block[i] = dfa.accepting(order[i]) ? 1 : 0;
  uint32_t num_blocks = 2;
  for (bool changed = true; changed;) {
    changed = false;
    // Signature: (current block, successor blocks per symbol).
    std::map<std::vector<uint32_t>, uint32_t> sig_index;
    std::vector<uint32_t> new_block(m);
    for (uint32_t i = 0; i < m; ++i) {
      std::vector<uint32_t> sig;
      sig.reserve(k + 1);
      sig.push_back(block[i]);
      for (SymbolId a = 0; a < k; ++a) {
        StateId t = dfa.Next(order[i], a);
        sig.push_back(block[reach_index[t]]);
      }
      auto [it, inserted] =
          sig_index.emplace(std::move(sig), static_cast<uint32_t>(sig_index.size()));
      new_block[i] = it->second;
      (void)inserted;
    }
    if (sig_index.size() != num_blocks) changed = true;
    num_blocks = static_cast<uint32_t>(sig_index.size());
    block = std::move(new_block);
  }

  Dfa out(num_blocks, k);
  out.set_start(block[0]);  // order[0] == start
  for (uint32_t i = 0; i < m; ++i) {
    out.set_accepting(block[i], dfa.accepting(order[i]));
    for (SymbolId a = 0; a < k; ++a) {
      out.SetNext(block[i], a, block[reach_index[dfa.Next(order[i], a)]]);
    }
  }
  return out;
}

Dfa CompileRegexToDfa(const RegexPtr& regex, uint32_t num_symbols) {
  return Minimize(Determinize(CompileRegexToNfa(regex, num_symbols)));
}

Dfa Complement(const Dfa& dfa) {
  Dfa out = dfa;
  for (StateId q = 0; q < out.num_states(); ++q) {
    out.set_accepting(q, !out.accepting(q));
  }
  return out;
}

Dfa Product(const Dfa& a, const Dfa& b, BoolOp op) {
  PEBBLETC_CHECK(a.num_symbols() == b.num_symbols())
      << "product over mismatched alphabets";
  const uint32_t k = a.num_symbols();
  auto combine = [op](bool x, bool y) {
    switch (op) {
      case BoolOp::kAnd:
        return x && y;
      case BoolOp::kOr:
        return x || y;
      case BoolOp::kDiff:
        return x && !y;
    }
    return false;
  };
  // Lazy pairing of reachable state pairs.
  std::map<std::pair<StateId, StateId>, StateId> index;
  std::vector<std::pair<StateId, StateId>> pairs;
  auto intern = [&](StateId x, StateId y) -> StateId {
    auto [it, inserted] = index.emplace(std::make_pair(x, y), pairs.size());
    if (inserted) pairs.push_back({x, y});
    return it->second;
  };
  StateId start = intern(a.start(), b.start());
  std::vector<std::vector<StateId>> rows;
  for (StateId q = 0; q < pairs.size(); ++q) {
    auto [x, y] = pairs[q];
    std::vector<StateId> row(k);
    for (SymbolId s = 0; s < k; ++s) row[s] = intern(a.Next(x, s), b.Next(y, s));
    rows.push_back(std::move(row));
  }
  Dfa out(static_cast<uint32_t>(pairs.size()), k);
  out.set_start(start);
  for (StateId q = 0; q < pairs.size(); ++q) {
    out.set_accepting(q, combine(a.accepting(pairs[q].first),
                                 b.accepting(pairs[q].second)));
    for (SymbolId s = 0; s < k; ++s) out.SetNext(q, s, rows[q][s]);
  }
  return out;
}

bool IsEmptyLanguage(const Dfa& dfa) {
  std::vector<bool> live = dfa.LiveStates();
  return !live[dfa.start()];
}

std::optional<std::vector<SymbolId>> ShortestAccepted(const Dfa& dfa) {
  // BFS from the start state, remembering the (state, symbol) predecessor.
  std::vector<int64_t> pred_state(dfa.num_states(), -1);
  std::vector<SymbolId> pred_symbol(dfa.num_states(), kNoSymbol);
  std::vector<bool> seen(dfa.num_states(), false);
  std::deque<StateId> queue = {dfa.start()};
  seen[dfa.start()] = true;
  while (!queue.empty()) {
    StateId q = queue.front();
    queue.pop_front();
    if (dfa.accepting(q)) {
      std::vector<SymbolId> word;
      StateId cur = q;
      while (pred_state[cur] >= 0) {
        word.push_back(pred_symbol[cur]);
        cur = static_cast<StateId>(pred_state[cur]);
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (SymbolId a = 0; a < dfa.num_symbols(); ++a) {
      StateId t = dfa.Next(q, a);
      if (!seen[t]) {
        seen[t] = true;
        pred_state[t] = q;
        pred_symbol[t] = a;
        queue.push_back(t);
      }
    }
  }
  return std::nullopt;
}

bool Includes(const Dfa& b, const Dfa& a) {
  return IsEmptyLanguage(Product(a, b, BoolOp::kDiff));
}

bool EquivalentLanguages(const Dfa& a, const Dfa& b) {
  return Includes(b, a) && Includes(a, b);
}

}  // namespace pebbletc
