// Nondeterministic finite automata over interned symbols: Thompson
// construction from regexes, ε-elimination, and the separator-insertion
// construction implementing the Section 2.1 path-expression translation at
// the automaton level.

#ifndef PEBBLETC_REGEX_NFA_H_
#define PEBBLETC_REGEX_NFA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/regex/regex.h"

namespace pebbletc {

/// State index within an automaton.
using StateId = uint32_t;

/// An NFA with a single start state, an accepting-state set, symbol
/// transitions and ε-transitions.
struct Nfa {
  uint32_t num_states = 0;
  /// Symbols are ids in [0, num_symbols).
  uint32_t num_symbols = 0;
  StateId start = 0;
  std::vector<bool> accepting;
  /// transitions[q] = list of (symbol, target).
  std::vector<std::vector<std::pair<SymbolId, StateId>>> transitions;
  /// epsilon[q] = list of targets reachable by ε from q.
  std::vector<std::vector<StateId>> epsilon;

  /// Appends a fresh state; returns its id.
  StateId AddState();
  void AddTransition(StateId from, SymbolId symbol, StateId to);
  void AddEpsilon(StateId from, StateId to);

  /// Direct NFA simulation (subset tracking); mostly for tests.
  bool Accepts(const std::vector<SymbolId>& word) const;
};

/// Thompson construction. The regex must only mention symbols < num_symbols.
Nfa CompileRegexToNfa(const RegexPtr& regex, uint32_t num_symbols);

/// Returns an equivalent NFA without ε-transitions.
Nfa RemoveEpsilon(const Nfa& nfa);

/// Renames each symbol s to map[s]; the result ranges over
/// [0, new_num_symbols). Every original symbol used must have a mapping.
Nfa RemapSymbols(const Nfa& nfa, const std::vector<SymbolId>& map,
                 uint32_t new_num_symbols);

/// The path-translation core (Section 2.1): returns an NFA accepting
///   { a1 sep^{j1} a2 sep^{j2} ... sep^{j_{n-1}} an | a1⋯an ∈ lang(nfa),
///     ji ≥ 0 },
/// i.e. any number of `separator` symbols may be read *between* consecutive
/// symbols of an accepted word, but not before the first or after the last.
/// `separator` must be < nfa.num_symbols. `nfa` may contain ε-transitions.
Nfa InsertSeparators(const Nfa& nfa, SymbolId separator);

}  // namespace pebbletc

#endif  // PEBBLETC_REGEX_NFA_H_
