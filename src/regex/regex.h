// Regular expressions over interned symbols (Section 2.1).
//
// Used for three jobs in the paper: DTD content models (Section 2.3),
// (regular) path expressions (Section 2.1), and the tree patterns of XML
// query languages (Section 2.2 / Example 3.5).
//
// Concrete syntax, matching the paper's:
//   a.b*.c          concatenation with '.', Kleene star
//   (a|b)+ c? ()    union, plus, optional, epsilon spelled "()"
// Symbol names are [A-Za-z0-9_]+ or the single character '-' (the encoded
// cons symbol, which appears in translated path expressions). '|' is the
// union operator; the nil symbol never occurs in path expressions (§2.1).

#ifndef PEBBLETC_REGEX_REGEX_H_
#define PEBBLETC_REGEX_REGEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"

namespace pebbletc {

/// Immutable regular-expression AST node. Build via the factory functions
/// below; share freely (nodes are reference-counted and never mutated).
class Regex;
using RegexPtr = std::shared_ptr<const Regex>;

class Regex {
 public:
  enum class Kind {
    kEmptySet,  ///< ∅ — matches nothing
    kEpsilon,   ///< ε — matches the empty word
    kSymbol,    ///< a single symbol
    kConcat,    ///< r1 . r2
    kUnion,     ///< r1 | r2
    kStar,      ///< r*
  };

  Kind kind() const { return kind_; }
  /// For kSymbol only.
  SymbolId symbol() const { return symbol_; }
  /// For kConcat/kUnion: left operand; for kStar: the body.
  const RegexPtr& left() const { return left_; }
  /// For kConcat/kUnion: right operand.
  const RegexPtr& right() const { return right_; }

  /// True if ε ∈ lang(this).
  bool IsNullable() const;

  // Factories. Union/Concat/Star perform light simplification (identities
  // with ∅ and ε) so constructed ASTs stay small.
  static RegexPtr EmptySet();
  static RegexPtr Epsilon();
  static RegexPtr Symbol(SymbolId s);
  static RegexPtr Concat(RegexPtr a, RegexPtr b);
  static RegexPtr Union(RegexPtr a, RegexPtr b);
  static RegexPtr Star(RegexPtr a);
  /// r+ ≡ r.r*
  static RegexPtr Plus(RegexPtr a);
  /// r? ≡ r|ε
  static RegexPtr Optional(RegexPtr a);
  /// Concatenation of a whole word of symbols (ε for the empty word).
  static RegexPtr Word(const std::vector<SymbolId>& symbols);

  /// The reversal of this regex: lang(Reverse(r)) = { reverse(w) | w ∈
  /// lang(r) }. Used by the Example 3.5 pattern matcher, which checks path
  /// regexes bottom-up.
  static RegexPtr Reverse(const RegexPtr& r);

 private:
  Regex(Kind kind, SymbolId symbol, RegexPtr left, RegexPtr right)
      : kind_(kind), symbol_(symbol), left_(std::move(left)),
        right_(std::move(right)) {}

  Kind kind_;
  SymbolId symbol_ = kNoSymbol;
  RegexPtr left_;
  RegexPtr right_;
};

/// Maximum '(' nesting depth the parser accepts. The parser (and the AST it
/// would build) recurse per nesting level, so unbounded depth lets a hostile
/// input — e.g. a DTD content model — overflow the call stack. Deeper input
/// fails cleanly with kLimitExceeded.
inline constexpr size_t kDefaultMaxRegexDepth = 2000;

/// Parses the concrete syntax above. Symbol names are resolved against (and
/// interned into) `*alphabet`. Operator precedence: postfix (* + ?) binds
/// tighter than '.', which binds tighter than '|'.
Result<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet,
                            size_t max_depth = kDefaultMaxRegexDepth);

/// Parses against a fixed unranked alphabet; unknown names fail.
Result<RegexPtr> ParseRegexClosed(std::string_view text,
                                  const Alphabet& alphabet,
                                  size_t max_depth = kDefaultMaxRegexDepth);

/// Renders a regex back to concrete syntax (fully parenthesised where
/// needed). `names` resolves symbol ids.
std::string RegexString(const RegexPtr& r, const Alphabet& names);

}  // namespace pebbletc

#endif  // PEBBLETC_REGEX_REGEX_H_
