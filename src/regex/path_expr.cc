#include "src/regex/path_expr.h"

#include <algorithm>
#include <utility>

namespace pebbletc {

namespace {

SymbolId Label(const UnrankedTree& tree, NodeId n) { return tree.tag(n); }
SymbolId Label(const BinaryTree& tree, NodeId n) { return tree.symbol(n); }

template <typename Tree, typename ChildrenFn>
std::vector<NodeId> EvalGeneric(const Tree& tree, NodeId origin, const Dfa& dfa,
                                ChildrenFn&& children_of) {
  std::vector<NodeId> out;
  if (tree.empty()) return out;
  const std::vector<bool> live = dfa.LiveStates();
  // DFS carrying the DFA state *after* consuming the node's own label.
  std::vector<std::pair<NodeId, StateId>> stack;
  stack.push_back({origin, dfa.start()});
  while (!stack.empty()) {
    auto [node, state_before] = stack.back();
    stack.pop_back();
    StateId state = dfa.Next(state_before, Label(tree, node));
    if (dfa.accepting(state)) out.push_back(node);
    if (!live[state]) continue;  // no extension of this path can accept
    children_of(node, [&](NodeId child) { stack.push_back({child, state}); });
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<NodeId> EvalPathFrom(const UnrankedTree& tree, NodeId origin,
                                 const Dfa& dfa) {
  return EvalGeneric(tree, origin, dfa, [&](NodeId n, auto&& push) {
    for (NodeId c : tree.children(n)) push(c);
  });
}

std::vector<NodeId> EvalPath(const UnrankedTree& tree, const Dfa& dfa) {
  if (tree.empty()) return {};
  return EvalPathFrom(tree, tree.root(), dfa);
}

std::vector<NodeId> EvalPathBinaryFrom(const BinaryTree& tree, NodeId origin,
                                       const Dfa& dfa) {
  return EvalGeneric(tree, origin, dfa, [&](NodeId n, auto&& push) {
    if (!tree.IsLeaf(n)) {
      push(tree.left(n));
      push(tree.right(n));
    }
  });
}

std::vector<NodeId> EvalPathBinary(const BinaryTree& tree, const Dfa& dfa) {
  if (tree.empty()) return {};
  return EvalPathBinaryFrom(tree, tree.root(), dfa);
}

Result<Dfa> TranslatePathExpression(const RegexPtr& r,
                                    const EncodedAlphabet& enc) {
  const uint32_t num_tags = static_cast<uint32_t>(enc.tag_symbol.size());
  if (num_tags == 0) {
    return Status::InvalidArgument("encoded alphabet has no tags");
  }
  Nfa over_tags = CompileRegexToNfa(r, num_tags);
  // Remap unranked tag ids to their ranked counterparts and widen the
  // alphabet to all of Σ′.
  Nfa remapped = RemapSymbols(over_tags, enc.tag_symbol,
                              static_cast<uint32_t>(enc.ranked.size()));
  Nfa translated = InsertSeparators(remapped, enc.cons);
  return Minimize(Determinize(translated));
}

}  // namespace pebbletc
