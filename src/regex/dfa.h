// Deterministic finite automata: subset construction, Moore minimization,
// boolean operations, and decision procedures (emptiness, inclusion,
// equivalence, shortest witness). DFAs are always *complete*: every
// (state, symbol) pair has a successor, so complementation is a flag flip.

#ifndef PEBBLETC_REGEX_DFA_H_
#define PEBBLETC_REGEX_DFA_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/check.h"
#include "src/regex/nfa.h"
#include "src/regex/regex.h"

namespace pebbletc {

/// A complete DFA with a dense transition table.
class Dfa {
 public:
  /// Constructs a DFA with `num_states` states over `num_symbols` symbols;
  /// all transitions initially self-loop on state 0 and must be filled in.
  Dfa(uint32_t num_states, uint32_t num_symbols);

  uint32_t num_states() const { return num_states_; }
  uint32_t num_symbols() const { return num_symbols_; }
  StateId start() const { return start_; }
  void set_start(StateId s) { start_ = s; }

  bool accepting(StateId q) const { return accepting_[q]; }
  void set_accepting(StateId q, bool acc) { accepting_[q] = acc; }

  StateId Next(StateId q, SymbolId a) const {
    PEBBLETC_DCHECK(q < num_states_ && a < num_symbols_);
    return table_[static_cast<size_t>(q) * num_symbols_ + a];
  }
  void SetNext(StateId q, SymbolId a, StateId to) {
    PEBBLETC_CHECK(q < num_states_ && a < num_symbols_ && to < num_states_);
    table_[static_cast<size_t>(q) * num_symbols_ + a] = to;
  }

  /// Runs the DFA on `word` from the start state.
  bool Accepts(const std::vector<SymbolId>& word) const;

  /// States from which some accepting state is reachable. Useful for pruning
  /// (a "dead" state is one where live[q] is false).
  std::vector<bool> LiveStates() const;

 private:
  uint32_t num_states_;
  uint32_t num_symbols_;
  StateId start_ = 0;
  std::vector<bool> accepting_;
  std::vector<StateId> table_;
};

/// Subset construction; only reachable subsets are materialized.
Dfa Determinize(const Nfa& nfa);

/// Moore's partition-refinement minimization (also removes unreachable
/// states). The result is the canonical minimal complete DFA.
Dfa Minimize(const Dfa& dfa);

/// Convenience: Minimize(Determinize(Thompson(regex))).
Dfa CompileRegexToDfa(const RegexPtr& regex, uint32_t num_symbols);

/// Language complement (the DFA is complete, so this just flips acceptance).
Dfa Complement(const Dfa& dfa);

/// Boolean combination of two DFAs over the same alphabet.
enum class BoolOp { kAnd, kOr, kDiff };
Dfa Product(const Dfa& a, const Dfa& b, BoolOp op);

/// True iff lang(dfa) = ∅.
bool IsEmptyLanguage(const Dfa& dfa);

/// A shortest accepted word, or nullopt if the language is empty.
std::optional<std::vector<SymbolId>> ShortestAccepted(const Dfa& dfa);

/// lang(a) ⊆ lang(b)?
bool Includes(const Dfa& b, const Dfa& a);

/// lang(a) = lang(b)?
bool EquivalentLanguages(const Dfa& a, const Dfa& b);

}  // namespace pebbletc

#endif  // PEBBLETC_REGEX_DFA_H_
