#include "src/regex/regex.h"

#include <cctype>
#include <utility>

#include "src/common/check.h"

namespace pebbletc {

bool Regex::IsNullable() const {
  switch (kind_) {
    case Kind::kEmptySet:
      return false;
    case Kind::kEpsilon:
      return true;
    case Kind::kSymbol:
      return false;
    case Kind::kConcat:
      return left_->IsNullable() && right_->IsNullable();
    case Kind::kUnion:
      return left_->IsNullable() || right_->IsNullable();
    case Kind::kStar:
      return true;
  }
  return false;
}

RegexPtr Regex::EmptySet() {
  static const RegexPtr kInstance(
      new Regex(Kind::kEmptySet, kNoSymbol, nullptr, nullptr));
  return kInstance;
}

RegexPtr Regex::Epsilon() {
  static const RegexPtr kInstance(
      new Regex(Kind::kEpsilon, kNoSymbol, nullptr, nullptr));
  return kInstance;
}

RegexPtr Regex::Symbol(SymbolId s) {
  PEBBLETC_CHECK(s != kNoSymbol) << "Regex::Symbol(kNoSymbol)";
  return RegexPtr(new Regex(Kind::kSymbol, s, nullptr, nullptr));
}

RegexPtr Regex::Concat(RegexPtr a, RegexPtr b) {
  if (a->kind() == Kind::kEmptySet || b->kind() == Kind::kEmptySet) {
    return EmptySet();
  }
  if (a->kind() == Kind::kEpsilon) return b;
  if (b->kind() == Kind::kEpsilon) return a;
  return RegexPtr(new Regex(Kind::kConcat, kNoSymbol, std::move(a), std::move(b)));
}

RegexPtr Regex::Union(RegexPtr a, RegexPtr b) {
  if (a->kind() == Kind::kEmptySet) return b;
  if (b->kind() == Kind::kEmptySet) return a;
  return RegexPtr(new Regex(Kind::kUnion, kNoSymbol, std::move(a), std::move(b)));
}

RegexPtr Regex::Star(RegexPtr a) {
  if (a->kind() == Kind::kEmptySet || a->kind() == Kind::kEpsilon) {
    return Epsilon();
  }
  if (a->kind() == Kind::kStar) return a;
  return RegexPtr(new Regex(Kind::kStar, kNoSymbol, std::move(a), nullptr));
}

RegexPtr Regex::Plus(RegexPtr a) { return Concat(a, Star(a)); }

RegexPtr Regex::Optional(RegexPtr a) { return Union(std::move(a), Epsilon()); }

RegexPtr Regex::Word(const std::vector<SymbolId>& symbols) {
  RegexPtr r = Epsilon();
  for (size_t i = symbols.size(); i-- > 0;) {
    r = Concat(Symbol(symbols[i]), std::move(r));
  }
  return r;
}

RegexPtr Regex::Reverse(const RegexPtr& r) {
  switch (r->kind()) {
    case Kind::kEmptySet:
    case Kind::kEpsilon:
    case Kind::kSymbol:
      return r;
    case Kind::kConcat:
      return Concat(Reverse(r->right()), Reverse(r->left()));
    case Kind::kUnion:
      return Union(Reverse(r->left()), Reverse(r->right()));
    case Kind::kStar:
      return Star(Reverse(r->left()));
  }
  return r;
}

namespace {

// Recursive-descent parser.
//   union  := concat ('|' concat)*
//   concat := postfix ('.' postfix)*
//   postfix := atom ('*'|'+'|'?')*
//   atom   := name | '(' ')' | '(' union ')'
class RegexParser {
 public:
  RegexParser(std::string_view text, Alphabet* mutable_alphabet,
              const Alphabet* closed_alphabet, size_t max_depth)
      : text_(text),
        mutable_alphabet_(mutable_alphabet),
        closed_alphabet_(closed_alphabet),
        max_depth_(max_depth) {}

  Result<RegexPtr> Parse() {
    PEBBLETC_ASSIGN_OR_RETURN(RegexPtr r, ParseUnion());
    SkipSpace();
    if (pos_ < text_.size()) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(pos_));
    }
    return r;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Result<RegexPtr> ParseUnion() {
    PEBBLETC_ASSIGN_OR_RETURN(RegexPtr r, ParseConcat());
    while (Peek() == '|') {
      ++pos_;
      PEBBLETC_ASSIGN_OR_RETURN(RegexPtr rhs, ParseConcat());
      r = Regex::Union(std::move(r), std::move(rhs));
    }
    return r;
  }

  Result<RegexPtr> ParseConcat() {
    PEBBLETC_ASSIGN_OR_RETURN(RegexPtr r, ParsePostfix());
    while (Peek() == '.') {
      ++pos_;
      PEBBLETC_ASSIGN_OR_RETURN(RegexPtr rhs, ParsePostfix());
      r = Regex::Concat(std::move(r), std::move(rhs));
    }
    return r;
  }

  Result<RegexPtr> ParsePostfix() {
    PEBBLETC_ASSIGN_OR_RETURN(RegexPtr r, ParseAtom());
    while (true) {
      char c = Peek();
      if (c == '*') {
        ++pos_;
        r = Regex::Star(std::move(r));
      } else if (c == '+') {
        ++pos_;
        r = Regex::Plus(std::move(r));
      } else if (c == '?') {
        ++pos_;
        r = Regex::Optional(std::move(r));
      } else {
        break;
      }
    }
    return r;
  }

  Result<RegexPtr> ParseAtom() {
    char c = Peek();
    if (c == '(') {
      ++pos_;
      if (Peek() == ')') {  // "()" is epsilon
        ++pos_;
        return Regex::Epsilon();
      }
      // The parser recurses once per '(' nesting level; cap it so hostile
      // inputs fail with a clean Status instead of a stack overflow.
      if (depth_ >= max_depth_) {
        return Status::LimitExceeded("regex nesting depth exceeds " +
                                     std::to_string(max_depth_));
      }
      ++depth_;
      Result<RegexPtr> inner = ParseUnion();
      --depth_;
      PEBBLETC_ASSIGN_OR_RETURN(RegexPtr r, std::move(inner));
      if (Peek() != ')') {
        return Status::ParseError("expected ')' at offset " +
                                  std::to_string(pos_));
      }
      ++pos_;
      return r;
    }
    if (c == '-') {
      ++pos_;
      return MakeSymbol("-");
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      return MakeSymbol(std::string(text_.substr(start, pos_ - start)));
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(pos_));
  }

  Result<RegexPtr> MakeSymbol(const std::string& name) {
    if (mutable_alphabet_ != nullptr) {
      return Regex::Symbol(mutable_alphabet_->Intern(name));
    }
    SymbolId id = closed_alphabet_->Find(name);
    if (id == kNoSymbol) {
      return Status::ParseError("unknown symbol '" + name + "'");
    }
    return Regex::Symbol(id);
  }

  std::string_view text_;
  size_t pos_ = 0;
  Alphabet* mutable_alphabet_;
  const Alphabet* closed_alphabet_;
  size_t max_depth_;
  size_t depth_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet,
                            size_t max_depth) {
  return RegexParser(text, alphabet, nullptr, max_depth).Parse();
}

Result<RegexPtr> ParseRegexClosed(std::string_view text,
                                  const Alphabet& alphabet,
                                  size_t max_depth) {
  return RegexParser(text, nullptr, &alphabet, max_depth).Parse();
}

namespace {

// Precedence levels for printing: 0 = union, 1 = concat, 2 = postfix/atom.
void Append(const RegexPtr& r, const Alphabet& names, int parent_level,
            std::string* out) {
  switch (r->kind()) {
    case Regex::Kind::kEmptySet:
      // No concrete syntax for ∅; print an unmatchable marker.
      *out += "<empty-set>";
      return;
    case Regex::Kind::kEpsilon:
      *out += "()";
      return;
    case Regex::Kind::kSymbol:
      *out += names.Name(r->symbol());
      return;
    case Regex::Kind::kConcat: {
      const bool paren = parent_level > 1;
      if (paren) *out += '(';
      Append(r->left(), names, 1, out);
      *out += '.';
      Append(r->right(), names, 1, out);
      if (paren) *out += ')';
      return;
    }
    case Regex::Kind::kUnion: {
      const bool paren = parent_level > 0;
      if (paren) *out += '(';
      Append(r->left(), names, 0, out);
      *out += '|';
      Append(r->right(), names, 0, out);
      if (paren) *out += ')';
      return;
    }
    case Regex::Kind::kStar:
      Append(r->left(), names, 2, out);
      *out += '*';
      return;
  }
}

}  // namespace

std::string RegexString(const RegexPtr& r, const Alphabet& names) {
  std::string out;
  Append(r, names, 0, &out);
  return out;
}

}  // namespace pebbletc
