// Minimal XML reader/writer for the element-only fragment the paper models
// (Section 2.2): nested tags over an unranked alphabet. Self-closing tags
// (<a/>), whitespace between elements, and <!-- comments --> are handled;
// attributes, PCDATA, entities, and processing instructions are rejected —
// they are outside the paper's data model (see the Limitations discussion).
//
// The reader is a pull parser (XmlEventReader) emitting open/close events;
// ParseXml materializes a tree from the event stream, and the validation
// fast path (src/ta/membership.*, docs/VALIDATION.md) folds a DBTA over the
// same stream without ever building the tree.

#ifndef PEBBLETC_XML_XML_H_
#define PEBBLETC_XML_XML_H_

#include <memory_resource>
#include <string>
#include <string_view>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

/// Pull parser over the element-only fragment. Next() yields kOpen (with the
/// tag name, viewing into the input text), kClose — a self-closing element
/// yields kOpen immediately followed by kClose — and kEnd after the document
/// epilogue is verified; malformed input yields kParseError with the same
/// diagnostics the tree parser always produced. Nesting depth is bounded by
/// heap, not the call stack.
class XmlEventReader {
 public:
  enum class Kind : uint8_t { kOpen, kClose, kEnd };
  struct Event {
    Kind kind;
    std::string_view name;  // set for kOpen only
  };

  /// `text` must outlive the reader (event names view into it).
  explicit XmlEventReader(std::string_view text) : text_(text) {}

  Result<Event> Next();

  /// Number of currently open (not yet closed) elements.
  size_t depth() const { return open_.size(); }

 private:
  void SkipMisc();
  Result<std::string_view> ParseName();
  Result<Event> ParseHead();

  std::string_view text_;
  size_t pos_ = 0;
  bool started_ = false;
  bool pending_close_ = false;  // a self-closed element owes its kClose
  bool done_ = false;
  std::vector<std::string_view> open_;
};

/// Parses an element-only XML document into an unranked tree; tags are
/// interned into `*alphabet`.
Result<UnrankedTree> ParseXml(std::string_view text, Alphabet* alphabet);

/// As above, with the tree's storage placed in `mem` (arena-scoped parsing,
/// docs/VALIDATION.md). `mem` null means the default heap.
Result<UnrankedTree> ParseXml(std::string_view text, Alphabet* alphabet,
                              std::pmr::memory_resource* mem);

/// Result of parsing against a closed (const) alphabet.
struct KnownXmlParse {
  /// The parsed tree; left empty when `unknown_tag` is set.
  UnrankedTree tree;
  /// First tag (in document order) not present in the alphabet, or empty.
  /// The whole document is still checked for well-formedness either way —
  /// a parse error wins over an unknown tag.
  std::string unknown_tag;
};

/// Parses a document whose tags must already be in `tags` — the serving hot
/// path, which must not mutate (or copy) a registry artifact's alphabet.
Result<KnownXmlParse> ParseXmlKnown(std::string_view text,
                                    const Alphabet& tags,
                                    std::pmr::memory_resource* mem = nullptr);

/// Serializes a tree as XML. Leaves print self-closed (`<a/>`); `indent`
/// pretty-prints with two-space indentation.
std::string XmlString(const UnrankedTree& tree, const Alphabet& alphabet,
                      bool indent = false);

}  // namespace pebbletc

#endif  // PEBBLETC_XML_XML_H_
