// Minimal XML reader/writer for the element-only fragment the paper models
// (Section 2.2): nested tags over an unranked alphabet. Self-closing tags
// (<a/>), whitespace between elements, and <!-- comments --> are handled;
// attributes, PCDATA, entities, and processing instructions are rejected —
// they are outside the paper's data model (see the Limitations discussion).

#ifndef PEBBLETC_XML_XML_H_
#define PEBBLETC_XML_XML_H_

#include <string>
#include <string_view>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

/// Parses an element-only XML document into an unranked tree; tags are
/// interned into `*alphabet`.
Result<UnrankedTree> ParseXml(std::string_view text, Alphabet* alphabet);

/// Serializes a tree as XML. Leaves print self-closed (`<a/>`); `indent`
/// pretty-prints with two-space indentation.
std::string XmlString(const UnrankedTree& tree, const Alphabet& alphabet,
                      bool indent = false);

}  // namespace pebbletc

#endif  // PEBBLETC_XML_XML_H_
