#include "src/xml/xml.h"

#include <cctype>
#include <utility>
#include <vector>

namespace pebbletc {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

}  // namespace

// Skips whitespace and comments.
void XmlEventReader::SkipMisc() {
  while (pos_ < text_.size()) {
    if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    } else if (text_.substr(pos_).substr(0, 4) == "<!--") {
      auto end = text_.find("-->", pos_ + 4);
      pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
    } else {
      break;
    }
  }
}

Result<std::string_view> XmlEventReader::ParseName() {
  size_t start = pos_;
  while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
  if (pos_ == start) {
    return Status::ParseError("expected tag name at offset " +
                              std::to_string(pos_));
  }
  return text_.substr(start, pos_ - start);
}

// One element head: '<name' then '/>' (kOpen with the kClose owed) or '>'
// (kOpen, element pushed).
Result<XmlEventReader::Event> XmlEventReader::ParseHead() {
  if (pos_ >= text_.size() || text_[pos_] != '<') {
    return Status::ParseError("expected '<' at offset " + std::to_string(pos_));
  }
  ++pos_;
  PEBBLETC_ASSIGN_OR_RETURN(std::string_view name, ParseName());
  // No attributes in this fragment: next must be '/>' or '>'.
  if (pos_ < text_.size() &&
      std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    return Status::ParseError("attributes are not supported (element '" +
                              std::string(name) + "')");
  }
  if (text_.substr(pos_).substr(0, 2) == "/>") {
    pos_ += 2;
    pending_close_ = true;
    return Event{Kind::kOpen, name};
  }
  if (pos_ >= text_.size() || text_[pos_] != '>') {
    return Status::ParseError("expected '>' at offset " + std::to_string(pos_));
  }
  ++pos_;
  open_.push_back(name);
  return Event{Kind::kOpen, name};
}

Result<XmlEventReader::Event> XmlEventReader::Next() {
  if (done_) return Event{Kind::kEnd, {}};
  if (pending_close_) {
    pending_close_ = false;
    return Event{Kind::kClose, {}};
  }
  if (!started_) {
    started_ = true;
    SkipMisc();
    return ParseHead();
  }
  if (open_.empty()) {
    // The root has closed: verify the epilogue.
    SkipMisc();
    if (pos_ < text_.size()) {
      return Status::ParseError("trailing content at offset " +
                                std::to_string(pos_));
    }
    done_ = true;
    return Event{Kind::kEnd, {}};
  }
  // Content position inside the innermost open element.
  SkipMisc();
  if (text_.substr(pos_).substr(0, 2) == "</") {
    pos_ += 2;
    PEBBLETC_ASSIGN_OR_RETURN(std::string_view close, ParseName());
    if (close != open_.back()) {
      return Status::ParseError("mismatched </" + std::string(close) +
                                ">, expected </" + std::string(open_.back()) +
                                ">");
    }
    if (pos_ >= text_.size() || text_[pos_] != '>') {
      return Status::ParseError("expected '>' after closing tag");
    }
    ++pos_;
    open_.pop_back();
    return Event{Kind::kClose, {}};
  }
  if (pos_ >= text_.size()) {
    return Status::ParseError("unexpected end of input inside <" +
                              std::string(open_.back()) + ">");
  }
  if (text_[pos_] != '<') {
    return Status::ParseError("text content is not supported (inside <" +
                              std::string(open_.back()) + ">)");
  }
  return ParseHead();
}

namespace {

// Shared tree builder over the event stream. `intern` maps a tag name to its
// SymbolId (or kNoSymbol to flag it unknown and stop building).
template <typename Intern>
Result<UnrankedTree> BuildTree(std::string_view text, Intern&& intern,
                               std::pmr::memory_resource* mem,
                               std::string* unknown_tag) {
  XmlEventReader reader(text);
  UnrankedTree tree = mem != nullptr ? UnrankedTree(mem) : UnrankedTree();
  struct Frame {
    SymbolId tag;
    std::vector<NodeId> kids;
  };
  std::vector<Frame> stack;
  NodeId root = kNoNode;
  bool building = true;
  while (true) {
    PEBBLETC_ASSIGN_OR_RETURN(XmlEventReader::Event ev, reader.Next());
    if (ev.kind == XmlEventReader::Kind::kEnd) break;
    if (!building) continue;  // draining for well-formedness only
    if (ev.kind == XmlEventReader::Kind::kOpen) {
      SymbolId tag = intern(ev.name);
      if (tag == kNoSymbol) {
        if (unknown_tag != nullptr) *unknown_tag = std::string(ev.name);
        building = false;
        continue;
      }
      stack.push_back({tag, {}});
    } else {
      Frame f = std::move(stack.back());
      stack.pop_back();
      NodeId n = tree.AddNode(f.tag, std::move(f.kids));
      if (stack.empty()) {
        root = n;
      } else {
        stack.back().kids.push_back(n);
      }
    }
  }
  if (!building) return UnrankedTree();  // unknown tag reported via out-param
  tree.SetRoot(root);
  return std::move(tree);
}

void Append(const UnrankedTree& tree, const Alphabet& alphabet, NodeId n,
            bool indent, int depth, std::string* out) {
  if (indent) out->append(static_cast<size_t>(depth) * 2, ' ');
  const std::string& name = alphabet.Name(tree.tag(n));
  if (tree.IsLeaf(n)) {
    *out += '<';
    *out += name;
    *out += "/>";
    if (indent) *out += '\n';
    return;
  }
  *out += '<';
  *out += name;
  *out += '>';
  if (indent) *out += '\n';
  for (NodeId c : tree.children(n)) {
    Append(tree, alphabet, c, indent, depth + 1, out);
  }
  if (indent) out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += "</";
  *out += name;
  *out += '>';
  if (indent) *out += '\n';
}

}  // namespace

Result<UnrankedTree> ParseXml(std::string_view text, Alphabet* alphabet) {
  return ParseXml(text, alphabet, nullptr);
}

Result<UnrankedTree> ParseXml(std::string_view text, Alphabet* alphabet,
                              std::pmr::memory_resource* mem) {
  return BuildTree(
      text,
      [alphabet](std::string_view name) { return alphabet->Intern(name); },
      mem, nullptr);
}

Result<KnownXmlParse> ParseXmlKnown(std::string_view text,
                                    const Alphabet& tags,
                                    std::pmr::memory_resource* mem) {
  KnownXmlParse out;
  PEBBLETC_ASSIGN_OR_RETURN(
      out.tree,
      BuildTree(
          text, [&tags](std::string_view name) { return tags.Find(name); },
          mem, &out.unknown_tag));
  return out;
}

std::string XmlString(const UnrankedTree& tree, const Alphabet& alphabet,
                      bool indent) {
  if (tree.empty()) return "";
  std::string out;
  Append(tree, alphabet, tree.root(), indent, 0, &out);
  return out;
}

}  // namespace pebbletc
