#include "src/xml/xml.h"

#include <cctype>
#include <utility>
#include <vector>

namespace pebbletc {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

class XmlParser {
 public:
  XmlParser(std::string_view text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}

  Result<UnrankedTree> Parse() {
    SkipMisc();
    PEBBLETC_ASSIGN_OR_RETURN(NodeId root, ParseElement());
    SkipMisc();
    if (pos_ < text_.size()) {
      return Status::ParseError("trailing content at offset " +
                                std::to_string(pos_));
    }
    tree_.SetRoot(root);
    return std::move(tree_);
  }

 private:
  // Skips whitespace and comments.
  void SkipMisc() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_.substr(pos_).substr(0, 4) == "<!--") {
        auto end = text_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
      } else {
        break;
      }
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::ParseError("expected tag name at offset " +
                                std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  // Iterative (explicit-stack) parser: nesting depth is bounded by heap, not
  // the call stack, so adversarially deep documents cannot overflow.
  Result<NodeId> ParseElement() {
    // One frame per element whose closing tag is still pending.
    struct Frame {
      std::string name;
      SymbolId tag;
      std::vector<NodeId> kids;
    };
    std::vector<Frame> stack;
    while (true) {
      // Parse one element head: '<name' then '/>' or '>'.
      if (pos_ >= text_.size() || text_[pos_] != '<') {
        return Status::ParseError("expected '<' at offset " +
                                  std::to_string(pos_));
      }
      ++pos_;
      PEBBLETC_ASSIGN_OR_RETURN(std::string name, ParseName());
      // No attributes in this fragment: next must be '/>' or '>'.
      if (pos_ < text_.size() &&
          std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        return Status::ParseError(
            "attributes are not supported (element '" + name + "')");
      }
      SymbolId tag = alphabet_->Intern(name);
      if (text_.substr(pos_).substr(0, 2) == "/>") {
        pos_ += 2;
        NodeId leaf = tree_.AddNode(tag);
        if (stack.empty()) return leaf;
        stack.back().kids.push_back(leaf);
      } else {
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Status::ParseError("expected '>' at offset " +
                                    std::to_string(pos_));
        }
        ++pos_;
        stack.push_back({std::move(name), tag, {}});
      }
      // Consume content of the innermost open element: close tags pop frames;
      // a new open tag breaks back out to the head parser above.
      while (!stack.empty()) {
        SkipMisc();
        if (text_.substr(pos_).substr(0, 2) == "</") {
          pos_ += 2;
          PEBBLETC_ASSIGN_OR_RETURN(std::string close, ParseName());
          if (close != stack.back().name) {
            return Status::ParseError("mismatched </" + close +
                                      ">, expected </" + stack.back().name +
                                      ">");
          }
          if (pos_ >= text_.size() || text_[pos_] != '>') {
            return Status::ParseError("expected '>' after closing tag");
          }
          ++pos_;
          Frame f = std::move(stack.back());
          stack.pop_back();
          NodeId node = tree_.AddNode(f.tag, std::move(f.kids));
          if (stack.empty()) return node;
          stack.back().kids.push_back(node);
          continue;
        }
        if (pos_ >= text_.size()) {
          return Status::ParseError("unexpected end of input inside <" +
                                    stack.back().name + ">");
        }
        if (text_[pos_] != '<') {
          return Status::ParseError("text content is not supported (inside <" +
                                    stack.back().name + ">)");
        }
        break;  // a child element begins here
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  Alphabet* alphabet_;
  UnrankedTree tree_;
};

void Append(const UnrankedTree& tree, const Alphabet& alphabet, NodeId n,
            bool indent, int depth, std::string* out) {
  if (indent) out->append(static_cast<size_t>(depth) * 2, ' ');
  const std::string& name = alphabet.Name(tree.tag(n));
  if (tree.IsLeaf(n)) {
    *out += '<';
    *out += name;
    *out += "/>";
    if (indent) *out += '\n';
    return;
  }
  *out += '<';
  *out += name;
  *out += '>';
  if (indent) *out += '\n';
  for (NodeId c : tree.children(n)) {
    Append(tree, alphabet, c, indent, depth + 1, out);
  }
  if (indent) out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += "</";
  *out += name;
  *out += '>';
  if (indent) *out += '\n';
}

}  // namespace

Result<UnrankedTree> ParseXml(std::string_view text, Alphabet* alphabet) {
  return XmlParser(text, alphabet).Parse();
}

std::string XmlString(const UnrankedTree& tree, const Alphabet& alphabet,
                      bool indent) {
  if (tree.empty()) return "";
  std::string out;
  Append(tree, alphabet, tree.root(), indent, 0, &out);
  return out;
}

}  // namespace pebbletc
