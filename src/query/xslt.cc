#include "src/query/xslt.h"

#include <cctype>
#include <map>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/tree/encode.h"

namespace pebbletc {

namespace {

class XsltParser {
 public:
  XsltParser(std::string_view text, Alphabet* input_tags,
             Alphabet* output_tags)
      : text_(text), input_tags_(input_tags), output_tags_(output_tags) {}

  Result<XsltProgram> Parse() {
    XsltProgram program;
    while (!AtEnd()) {
      PEBBLETC_ASSIGN_OR_RETURN(XsltTemplate tpl, ParseTemplate());
      program.templates.push_back(std::move(tpl));
    }
    if (program.templates.empty()) {
      return Status::ParseError("program declares no templates");
    }
    return program;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '#')) {
      if (text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        ++pos_;
      }
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Result<std::string> ReadName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected name at offset " +
                                std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<XsltTemplate> ParseTemplate() {
    PEBBLETC_ASSIGN_OR_RETURN(std::string kw, ReadName());
    if (kw != "template") {
      return Status::ParseError("expected 'template', found '" + kw + "'");
    }
    XsltTemplate tpl;
    PEBBLETC_ASSIGN_OR_RETURN(std::string match, ReadName());
    tpl.match_tag = input_tags_->Intern(match);
    if (!Consume('{')) return Status::ParseError("expected '{' after match");
    // Body: a single element.
    PEBBLETC_ASSIGN_OR_RETURN(std::string element, ReadName());
    tpl.element_tag = output_tags_->Intern(element);
    if (Consume('{')) {
      if (!Consume('}')) {
        while (true) {
          PEBBLETC_ASSIGN_OR_RETURN(XsltItem item, ParseItem());
          tpl.items.push_back(std::move(item));
          if (Consume(';')) {
            if (Consume('}')) break;  // trailing ';'
            continue;
          }
          if (Consume('}')) break;
          return Status::ParseError("expected ';' or '}' at offset " +
                                    std::to_string(pos_));
        }
      }
    }
    if (!Consume('}')) return Status::ParseError("expected closing '}'");
    return tpl;
  }

  Result<XsltItem> ParseItem() {
    SkipSpace();
    size_t save = pos_;
    PEBBLETC_ASSIGN_OR_RETURN(std::string name, ReadName());
    XsltItem item;
    if (name == "apply") {
      item.is_apply = true;
      return item;
    }
    pos_ = save;
    PEBBLETC_ASSIGN_OR_RETURN(NodeId root, ParseStaticNode(&item.literal));
    item.literal.SetRoot(root);
    return item;
  }

  // A static subtree: name or name{ static items }. `apply` is rejected.
  Result<NodeId> ParseStaticNode(UnrankedTree* tree) {
    PEBBLETC_ASSIGN_OR_RETURN(std::string name, ReadName());
    if (name == "apply") {
      return Status::ParseError(
          "'apply' may only appear at the top level of a template body");
    }
    SymbolId tag = output_tags_->Intern(name);
    std::vector<NodeId> kids;
    if (Consume('{')) {
      if (!Consume('}')) {
        while (true) {
          PEBBLETC_ASSIGN_OR_RETURN(NodeId child, ParseStaticNode(tree));
          kids.push_back(child);
          if (Consume(';')) {
            if (Consume('}')) break;
            continue;
          }
          if (Consume('}')) break;
          return Status::ParseError("expected ';' or '}' at offset " +
                                    std::to_string(pos_));
        }
      }
    }
    return tree->AddNode(tag, std::move(kids));
  }

  std::string_view text_;
  size_t pos_ = 0;
  Alphabet* input_tags_;
  Alphabet* output_tags_;
};

// Template index per input tag, or -1.
std::vector<int64_t> TemplateIndex(const XsltProgram& program,
                                   size_t num_tags) {
  std::vector<int64_t> index(num_tags, -1);
  for (size_t i = 0; i < program.templates.size(); ++i) {
    SymbolId m = program.templates[i].match_tag;
    if (m < num_tags && index[m] < 0) index[m] = static_cast<int64_t>(i);
  }
  return index;
}

NodeId CopyUnranked(const UnrankedTree& src, NodeId n, UnrankedTree* dst) {
  std::vector<NodeId> kids;
  for (NodeId c : src.children(n)) kids.push_back(CopyUnranked(src, c, dst));
  return dst->AddNode(src.tag(n), std::move(kids));
}

Result<NodeId> Process(const XsltProgram& program,
                       const std::vector<int64_t>& tpl_index,
                       const UnrankedTree& input, NodeId node,
                       const Alphabet& input_tags, UnrankedTree* out) {
  SymbolId tag = input.tag(node);
  if (tag >= tpl_index.size() || tpl_index[tag] < 0) {
    return Status::NotFound("no template matches element '" +
                            input_tags.Name(tag) + "'");
  }
  const XsltTemplate& tpl = program.templates[tpl_index[tag]];
  std::vector<NodeId> kids;
  for (const XsltItem& item : tpl.items) {
    if (item.is_apply) {
      for (NodeId c : input.children(node)) {
        PEBBLETC_ASSIGN_OR_RETURN(
            NodeId processed,
            Process(program, tpl_index, input, c, input_tags, out));
        kids.push_back(processed);
      }
    } else {
      kids.push_back(CopyUnranked(item.literal, item.literal.root(), out));
    }
  }
  return out->AddNode(tpl.element_tag, std::move(kids));
}

}  // namespace

Result<XsltProgram> ParseXslt(std::string_view text, Alphabet* input_tags,
                              Alphabet* output_tags) {
  return XsltParser(text, input_tags, output_tags).Parse();
}

Result<UnrankedTree> ApplyXsltReference(const XsltProgram& program,
                                        const UnrankedTree& input,
                                        const Alphabet& input_tags) {
  if (input.empty()) return Status::InvalidArgument("empty input");
  std::vector<int64_t> tpl_index =
      TemplateIndex(program, input_tags.size());
  UnrankedTree out;
  PEBBLETC_ASSIGN_OR_RETURN(
      NodeId root,
      Process(program, tpl_index, input, input.root(), input_tags, &out));
  out.SetRoot(root);
  return out;
}

namespace {

// The transducer generator. See the design notes in xslt.h: a deterministic
// 1-pebble machine whose branches walk the encoded child spines; `climb`
// states return from a finished child list to the context node when output
// follows an `apply`.
class XsltCompiler {
 public:
  XsltCompiler(const XsltProgram& program, const EncodedAlphabet& in,
               const EncodedAlphabet& out)
      : program_(program),
        in_(in),
        out_(out),
        t_(1, static_cast<uint32_t>(in.ranked.size()),
           static_cast<uint32_t>(out.ranked.size())) {}

  Result<PebbleTransducer> Compile() {
    const size_t num_tags = in_.tag_symbol.size();
    tpl_index_ = TemplateIndex(program_, num_tags);
    for (SymbolId tag = 0; tag < num_tags; ++tag) {
      if (tpl_index_[tag] < 0) {
        return Status::InvalidArgument(
            "template coverage is not total: no rule for an input tag");
      }
    }

    nil_out_ = t_.AddState(1);
    t_.AddOutputLeaf({}, nil_out_, out_.nil);
    dispatch_ = t_.AddState(1);
    head_desc_ = t_.AddState(1);
    t_.AddMove({}, head_desc_, PebbleTransducer::MoveKind::kDownLeft,
               dispatch_);

    // Entry states first so dispatch and cross-template walks can refer to
    // them; bodies are generated afterwards.
    entry_.resize(program_.templates.size());
    for (size_t i = 0; i < program_.templates.size(); ++i) {
      entry_[i] = t_.AddState(1);
    }
    for (SymbolId tag = 0; tag < num_tags; ++tag) {
      t_.AddMove({.symbol = in_.tag_symbol[tag]}, dispatch_,
                 PebbleTransducer::MoveKind::kStay,
                 entry_[tpl_index_[tag]]);
    }
    for (size_t i = 0; i < program_.templates.size(); ++i) {
      PEBBLETC_RETURN_IF_ERROR(GenerateTemplate(i));
    }
    t_.SetStart(dispatch_);
    return std::move(t_);
  }

 private:
  using M = PebbleTransducer::MoveKind;

  // Emits the encoded form of a static literal; returns the state that
  // starts the emission (input-independent).
  Result<StateId> EmitStatic(const UnrankedTree& literal) {
    PEBBLETC_ASSIGN_OR_RETURN(BinaryTree enc, EncodeTree(literal, out_));
    // Children before parents: ascending NodeId is bottom-up.
    std::vector<StateId> state(enc.size());
    for (NodeId n = 0; n < enc.size(); ++n) {
      state[n] = t_.AddState(1);
      if (enc.IsLeaf(n)) {
        t_.AddOutputLeaf({}, state[n], enc.symbol(n));
      } else {
        t_.AddOutputBinary({}, state[n], enc.symbol(n), state[enc.left(n)],
                           state[enc.right(n)]);
      }
    }
    return state[enc.root()];
  }

  // States that climb from inside a child spine (or its terminating node)
  // back to the context element, then continue in `k`.
  StateId ClimbThen(StateId k) {
    StateId climb = t_.AddState(1);
    StateId check = t_.AddState(1);
    t_.AddMove({}, climb, M::kUpLeft, check);
    t_.AddMove({}, climb, M::kUpRight, check);
    t_.AddMove({.symbol = in_.cons}, check, M::kUpLeft, check);
    t_.AddMove({.symbol = in_.cons}, check, M::kUpRight, check);
    for (SymbolId tag_sym : in_.tag_symbol) {
      t_.AddMove({.symbol = tag_sym}, check, M::kStay, k);
    }
    return climb;
  }

  Status GenerateTemplate(size_t tpl_idx) {
    const XsltTemplate& tpl = program_.templates[tpl_idx];
    const size_t p_count = tpl.items.size();
    const SymbolId match_sym = in_.tag_symbol[tpl.match_tag];
    const SymbolId element_sym = out_.tag_symbol[tpl.element_tag];

    // remainder_has_static[p]: some item *strictly after* p is static.
    std::vector<bool> remainder_has_static(p_count + 1, false);
    for (size_t p = p_count; p-- > 0;) {
      remainder_has_static[p] =
          (p + 1 < p_count) &&
          (remainder_has_static[p + 1] || !tpl.items[p + 1].is_apply);
    }
    bool any_static = false;
    for (const XsltItem& item : tpl.items) {
      any_static = any_static || !item.is_apply;
    }

    std::vector<StateId> static_state(p_count, 0);
    for (size_t p = 0; p < p_count; ++p) {
      if (!tpl.items[p].is_apply) {
        PEBBLETC_ASSIGN_OR_RETURN(static_state[p],
                                  EmitStatic(tpl.items[p].literal));
      }
    }

    // Allocate Seq and Walk states; wire them from the last position back.
    std::vector<StateId> seq(p_count, 0), walk(p_count, 0);
    for (size_t p = 0; p < p_count; ++p) {
      seq[p] = t_.AddState(1);
      if (tpl.items[p].is_apply) walk[p] = t_.AddState(1);
    }

    for (size_t p = p_count; p-- > 0;) {
      const bool is_last = (p + 1 == p_count);
      if (!tpl.items[p].is_apply) {
        // --- static item at Seq[p]; the pebble sits on the context node.
        if (is_last) {
          t_.AddMove({.symbol = match_sym}, seq[p], M::kStay,
                     static_state[p]);
        } else if (remainder_has_static[p]) {
          t_.AddOutputBinary({.symbol = match_sym}, seq[p], out_.cons,
                             static_state[p], seq[p + 1]);
        } else {
          // Remainder is all applies: probe whether the context node has
          // children before committing to a cons cell.
          StateId probe = t_.AddState(1);
          t_.AddMove({.symbol = match_sym}, seq[p], M::kDownLeft, probe);
          t_.AddMove({.symbol = in_.nil}, probe, M::kStay, static_state[p]);
          t_.AddOutputBinary({.symbol = in_.cons}, probe, out_.cons,
                             static_state[p], walk[p + 1]);
          for (SymbolId tag_sym : in_.tag_symbol) {
            t_.AddOutputBinary({.symbol = tag_sym}, probe, out_.cons,
                               static_state[p], walk[p + 1]);
          }
        }
      } else {
        // --- apply item: Seq[p] descends into the child list; Walk[p]
        // iterates the spine.
        t_.AddMove({.symbol = match_sym}, seq[p], M::kDownLeft, walk[p]);
        StateId w = walk[p];
        // Empty child list: skip the apply (only reachable when something
        // static follows — otherwise an earlier probe ruled this out).
        if (!is_last) {
          t_.AddMove({.symbol = in_.nil}, w, M::kStay,
                     ClimbThen(seq[p + 1]));
        }
        // Interior spine node: emit a cell for the head, continue right.
        {
          StateId tail = t_.AddState(1);
          t_.AddMove({}, tail, M::kDownRight, w);
          t_.AddOutputBinary({.symbol = in_.cons}, w, out_.cons, head_desc_,
                             tail);
        }
        // Last child (a tag node terminates the spine).
        if (is_last) {
          for (SymbolId tag_sym : in_.tag_symbol) {
            t_.AddMove({.symbol = tag_sym}, w, M::kStay, dispatch_);
          }
        } else {
          StateId climb = ClimbThen(seq[p + 1]);
          for (SymbolId tag_sym : in_.tag_symbol) {
            t_.AddOutputBinary({.symbol = tag_sym}, w, out_.cons, dispatch_,
                               climb);
          }
        }
      }
    }

    // --- entry state.
    if (p_count == 0) {
      t_.AddOutputBinary({.symbol = match_sym}, entry_[tpl_idx], element_sym,
                         nil_out_, nil_out_);
    } else if (any_static) {
      t_.AddOutputBinary({.symbol = match_sym}, entry_[tpl_idx], element_sym,
                         seq[0], nil_out_);
    } else {
      // All items are applies: the element may come out empty.
      StateId eprobe = t_.AddState(1);
      t_.AddMove({.symbol = match_sym}, entry_[tpl_idx], M::kDownLeft,
                 eprobe);
      t_.AddOutputBinary({.symbol = in_.nil}, eprobe, element_sym, nil_out_,
                         nil_out_);
      t_.AddOutputBinary({.symbol = in_.cons}, eprobe, element_sym, walk[0],
                         nil_out_);
      for (SymbolId tag_sym : in_.tag_symbol) {
        t_.AddOutputBinary({.symbol = tag_sym}, eprobe, element_sym, walk[0],
                           nil_out_);
      }
    }
    return Status::OK();
  }

  const XsltProgram& program_;
  const EncodedAlphabet& in_;
  const EncodedAlphabet& out_;
  PebbleTransducer t_;
  std::vector<int64_t> tpl_index_;
  std::vector<StateId> entry_;
  StateId nil_out_ = 0;
  StateId dispatch_ = 0;
  StateId head_desc_ = 0;
};

}  // namespace

Result<PebbleTransducer> CompileXslt(const XsltProgram& program,
                                     const EncodedAlphabet& input_enc,
                                     const EncodedAlphabet& output_enc) {
  return XsltCompiler(program, input_enc, output_enc).Compile();
}

}  // namespace pebbletc
