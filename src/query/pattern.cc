#include "src/query/pattern.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/regex/dfa.h"
#include "src/regex/path_expr.h"

namespace pebbletc {

namespace {

class PatternParser {
 public:
  PatternParser(std::string_view text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}

  Result<Pattern> Parse() {
    Pattern p;
    PEBBLETC_ASSIGN_OR_RETURN(uint32_t root, ParseNode(&p));
    PEBBLETC_CHECK(root == 0) << "pattern root must be node 0";
    SkipSpace();
    if (pos_ < text_.size()) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(pos_));
    }
    return p;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<uint32_t> ParseNode(Pattern* p) {
    if (!Consume('[')) {
      return Status::ParseError("expected '[' at offset " +
                                std::to_string(pos_));
    }
    size_t start = pos_;
    int depth = 1;
    while (pos_ < text_.size() && depth > 0) {
      if (text_[pos_] == '[') ++depth;
      if (text_[pos_] == ']') --depth;
      if (depth > 0) ++pos_;
    }
    if (depth != 0) return Status::ParseError("unterminated '['");
    std::string_view regex_text = text_.substr(start, pos_ - start);
    ++pos_;  // consume ']'
    PEBBLETC_ASSIGN_OR_RETURN(RegexPtr regex,
                              ParseRegex(regex_text, alphabet_));
    uint32_t index = static_cast<uint32_t>(p->nodes.size());
    p->nodes.push_back({std::move(regex), {}, 0});
    if (Consume('(')) {
      while (true) {
        PEBBLETC_ASSIGN_OR_RETURN(uint32_t child, ParseNode(p));
        p->nodes[index].children.push_back(child);
        p->nodes[child].parent = index;
        if (Consume(',')) continue;
        if (Consume(')')) break;
        return Status::ParseError("expected ',' or ')' at offset " +
                                  std::to_string(pos_));
      }
    }
    return index;
  }

  std::string_view text_;
  size_t pos_ = 0;
  Alphabet* alphabet_;
};

}  // namespace

Result<Pattern> ParsePattern(std::string_view text, Alphabet* alphabet) {
  return PatternParser(text, alphabet).Parse();
}

std::vector<std::vector<NodeId>> MatchPattern(const Pattern& pattern,
                                              const UnrankedTree& tree,
                                              uint32_t num_tags) {
  std::vector<std::vector<NodeId>> out;
  if (tree.empty() || pattern.nodes.empty()) return out;
  const size_t m = pattern.nodes.size();

  // valid[j] = set of (origin, target) pairs satisfying condition j; for
  // j = 0 the origin is the tree root.
  std::vector<Dfa> dfas;
  dfas.reserve(m);
  for (const auto& node : pattern.nodes) {
    dfas.push_back(CompileRegexToDfa(node.regex, num_tags));
  }
  // For each origin node y, the set eval(r_j, y) as a bool matrix.
  std::vector<std::vector<std::vector<bool>>> sat(m);
  for (size_t j = 0; j < m; ++j) {
    sat[j].assign(tree.size(), std::vector<bool>(tree.size(), false));
    for (NodeId y = 0; y < tree.size(); ++y) {
      for (NodeId x : EvalPathFrom(tree, y, dfas[j])) {
        sat[j][y][x] = true;
      }
    }
  }

  // Pre-order sequence of the tree nodes (the Example 3.5 enumeration
  // order).
  std::vector<NodeId> preorder;
  {
    std::vector<NodeId> stack = {tree.root()};
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      preorder.push_back(n);
      const auto& kids = tree.children(n);
      for (size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
    }
  }

  // Nested lexicographic enumeration (odometer) over m pre-order positions.
  std::vector<size_t> pos(m, 0);
  std::vector<NodeId> binding(m);
  const size_t n = preorder.size();
  while (true) {
    bool ok = true;
    for (size_t j = 0; j < m && ok; ++j) {
      binding[j] = preorder[pos[j]];
      NodeId origin =
          (j == 0) ? tree.root() : binding[pattern.nodes[j].parent];
      ok = sat[j][origin][binding[j]];
    }
    if (ok) out.push_back(binding);
    // Advance the odometer (last position fastest).
    size_t j = m;
    while (j > 0) {
      --j;
      if (++pos[j] < n) break;
      pos[j] = 0;
      if (j == 0) return out;
    }
  }
}

}  // namespace pebbletc
