// Tree patterns (Section 2.2): trees labelled with regular path expressions,
// the common pattern-matching core of XML-QL, Lorel, StruQL, UnQL. A match
// of pattern p = [r1]([r2],...) in a tree t binds each pattern node j to a
// tree node x_j with x_1 ∈ eval(r1, t) and x_child ∈ eval(r_child, x_parent).
//
// Concrete syntax:  [a.b]([c.(a|b)], [c*.a])
//
// This module gives patterns their direct (reference) semantics on unranked
// trees; src/query/selection.h compiles them to k-pebble transducers per
// Example 3.5.

#ifndef PEBBLETC_QUERY_PATTERN_H_
#define PEBBLETC_QUERY_PATTERN_H_

#include <cstdint>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/regex/regex.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

/// A pattern: nodes in pre-order, node 0 is the root pattern node.
struct Pattern {
  struct Node {
    RegexPtr regex;
    /// Pattern-node indices of the children (each > this node's index).
    std::vector<uint32_t> children;
    /// Index of the parent pattern node; 0's parent is itself (unused).
    uint32_t parent = 0;
  };
  std::vector<Node> nodes;

  size_t size() const { return nodes.size(); }
};

/// Parses the `[regex](child, child, ...)` syntax. Path-expression symbols
/// are interned into `*alphabet`.
Result<Pattern> ParsePattern(std::string_view text, Alphabet* alphabet);

/// All matches of `pattern` in `tree`, as tuples (indexed by pattern node) of
/// tree nodes, in lexicographic pre-order order of the bound tuples. The
/// alphabet size is needed to compile the path expressions.
std::vector<std::vector<NodeId>> MatchPattern(const Pattern& pattern,
                                              const UnrankedTree& tree,
                                              uint32_t num_tags);

}  // namespace pebbletc

#endif  // PEBBLETC_QUERY_PATTERN_H_
