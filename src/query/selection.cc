#include "src/query/selection.h"

#include <map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/pt/paper_machines.h"
#include "src/regex/dfa.h"
#include "src/regex/path_expr.h"
#include "src/tree/encode.h"

namespace pebbletc {

SelectionOutputTags ExtendAlphabetForSelection(const Alphabet& input_tags,
                                               Alphabet* output_tags) {
  for (SymbolId t = 0; t < input_tags.size(); ++t) {
    SymbolId id = output_tags->Intern(input_tags.Name(t));
    PEBBLETC_CHECK(id == t) << "output alphabet must start empty";
  }
  SelectionOutputTags tags;
  tags.result = output_tags->Intern("result");
  tags.item = output_tags->Intern("item");
  tags.end = output_tags->Intern("end");
  return tags;
}

Result<UnrankedTree> EvalSelectionReference(const SelectionQuery& query,
                                            const UnrankedTree& doc,
                                            const Alphabet& input_tags,
                                            const SelectionOutputTags& tags) {
  if (query.selected >= query.pattern.size()) {
    return Status::InvalidArgument("selected pattern node out of range");
  }
  auto matches = MatchPattern(query.pattern, doc,
                              static_cast<uint32_t>(input_tags.size()));
  UnrankedTree out;
  std::vector<NodeId> items;
  for (const auto& binding : matches) {
    // Copy the selected subtree (tags share ids with the output alphabet).
    auto copy = [&](auto&& self, NodeId src) -> NodeId {
      std::vector<NodeId> kids;
      for (NodeId c : doc.children(src)) kids.push_back(self(self, c));
      return out.AddNode(doc.tag(src), std::move(kids));
    };
    NodeId copied = copy(copy, binding[query.selected]);
    items.push_back(out.AddNode(tags.item, {copied}));
  }
  items.push_back(out.AddNode(tags.end));
  out.SetRoot(out.AddNode(tags.result, std::move(items)));
  return out;
}

namespace {

using M = PebbleTransducer::MoveKind;

// Generates the Example 3.5 machine. Pebble/bit layout (presence bit p-1
// tracks pebble p):
//   pebble 1      — parked root marker            (presence bit 0)
//   pebble v+2    — pattern variable v, v=0..m-1  (presence bit v+1)
//   pebble m+2    — condition checker / copier
class SelectionCompiler {
 public:
  SelectionCompiler(const SelectionQuery& query, const EncodedAlphabet& in,
                    const EncodedAlphabet& out,
                    const SelectionOutputTags& tags)
      : query_(query),
        in_(in),
        out_(out),
        tags_(tags),
        m_(static_cast<uint32_t>(query.pattern.size())),
        t_(m_ + 2, static_cast<uint32_t>(in.ranked.size()),
           static_cast<uint32_t>(out.ranked.size())) {}

  Result<PebbleTransducer> Compile() {
    if (query_.selected >= m_) {
      return Status::InvalidArgument("selected pattern node out of range");
    }
    if (m_ + 2 > 30) {
      return Status::InvalidArgument("pattern too large (pebble limit)");
    }
    // Condition DFAs: reverse(translate(r_j)) over the encoded alphabet.
    dfas_.reserve(m_);
    for (uint32_t j = 0; j < m_; ++j) {
      RegexPtr reversed = Regex::Reverse(query_.pattern.nodes[j].regex);
      PEBBLETC_ASSIGN_OR_RETURN(Dfa dfa,
                                TranslatePathExpression(reversed, in_));
      dfas_.push_back(std::move(dfa));
    }
    // Note: translate and reverse commute up to language equality
    // (separators are inserted symmetrically), so translating the reversed
    // regex equals reversing the translated one.

    BuildSkeleton();
    BuildOdometer();
    BuildConditions();
    BuildEmit();
    t_.SetStart(s0_);
    return std::move(t_);
  }

 private:
  uint32_t CheckerLevel() const { return m_ + 2; }
  uint32_t VarLevel(uint32_t v) const { return v + 2; }
  uint32_t VarBit(uint32_t v) const { return v + 1; }

  StateId NilOut(uint32_t level) {
    auto it = nil_out_.find(level);
    if (it != nil_out_.end()) return it->second;
    StateId s = t_.AddState(level);
    t_.AddOutputLeaf({}, s, out_.nil);
    nil_out_[level] = s;
    return s;
  }

  void BuildSkeleton() {
    // s0: emit the result root; the list branch arms the odometer.
    s0_ = t_.AddState(1);
    StateId list = t_.AddState(1);
    t_.AddOutputBinary({}, s0_, out_.tag_symbol[tags_.result], list,
                       NilOut(1));
    // finish: all tuples exhausted — emit the end sentinel end(|,|).
    finish_ = t_.AddState(1);
    t_.AddOutputBinary({}, finish_, out_.tag_symbol[tags_.end], NilOut(1),
                       NilOut(1));
    // arm chain: arm_[l] is entered right after pebble l was placed or
    // advanced; it places pebble l+1 (or the checker, starting condition 0).
    arm_.assign(m_ + 2, 0);
    for (uint32_t l = 2; l <= m_ + 1; ++l) arm_[l] = t_.AddState(l);
    t_.AddMove({}, list, M::kPlacePebble, arm_[2]);
    cond_begin_.assign(m_, 0);
    for (uint32_t j = 0; j < m_; ++j) {
      cond_begin_[j] = t_.AddState(CheckerLevel());
    }
    for (uint32_t l = 2; l <= m_ + 1; ++l) {
      StateId next = (l == m_ + 1) ? cond_begin_[0] : arm_[l + 1];
      t_.AddMove({}, arm_[l], M::kPlacePebble, next);
    }
  }

  void BuildOdometer() {
    // adv_[v]: advance pattern variable v (level v+2); on success re-arm the
    // deeper variables, on exhaustion pick and advance the previous one.
    adv_.assign(m_, 0);
    for (uint32_t v = 0; v < m_; ++v) adv_[v] = t_.AddState(VarLevel(v));
    for (uint32_t v = 0; v < m_; ++v) {
      // A successful advance re-enters the arm chain at this variable's own
      // level, which re-places the deeper pebbles (or, for the innermost
      // variable, places the checker and starts condition 0).
      AttachPreorderAdvanceWithRootPebble(&t_, VarLevel(v), in_.ranked,
                                          adv_[v], arm_[VarLevel(v)],
                                          Exhaust(v));
    }
  }

  // Exhaustion continuation for variable v: pick its pebble; advance the
  // previous variable, or finish when v == 0.
  StateId Exhaust(uint32_t v) {
    StateId s = t_.AddState(VarLevel(v));
    StateId target = (v == 0) ? finish_ : adv_[v - 1];
    t_.AddMove({}, s, M::kPickPebble, target);
    return s;
  }

  // fail / continue-after-emit: pick the checker, advance the innermost
  // variable.
  StateId PickThenAdvance() {
    StateId s = t_.AddState(CheckerLevel());
    t_.AddMove({}, s, M::kPickPebble, adv_[m_ - 1]);
    return s;
  }

  void BuildConditions() {
    fail_ = PickThenAdvance();
    for (uint32_t j = 0; j < m_; ++j) BuildCondition(j);
  }

  void BuildCondition(uint32_t j) {
    const Dfa& dfa = dfas_[j];
    const uint32_t lvl = CheckerLevel();
    const uint32_t self_bit = VarBit(j);
    const uint32_t par_bit =
        (j == 0) ? 0u : VarBit(query_.pattern.nodes[j].parent);

    // climb_at[s]: the checker consumed the current node in DFA state s.
    std::vector<StateId> climb_at(dfa.num_states());
    std::vector<StateId> arrive(dfa.num_states());
    for (StateId s = 0; s < dfa.num_states(); ++s) {
      climb_at[s] = t_.AddState(lvl);
      arrive[s] = t_.AddState(lvl);
    }

    // Search: walk the checker in pre-order until it sits on variable j's
    // pebble, then consume that node's symbol into the DFA.
    StateId search = cond_begin_[j];
    for (SymbolId sym = 0; sym < in_.ranked.size(); ++sym) {
      t_.AddMove({.symbol = sym,
                  .presence_mask = 1u << self_bit,
                  .presence_value = 1u << self_bit},
                 search, M::kStay, climb_at[dfa.Next(dfa.start(), sym)]);
    }
    StateId search_adv = t_.AddState(lvl);
    t_.AddMove({.presence_mask = 1u << self_bit, .presence_value = 0}, search,
               M::kStay, search_adv);
    AttachPreorderAdvanceWithRootPebble(&t_, lvl, in_.ranked, search_adv,
                                        search, fail_);

    // Next step after condition j passes.
    StateId pass;
    if (j + 1 < m_) {
      // Reset the checker for the next condition.
      pass = t_.AddState(lvl);
      StateId between = t_.AddState(m_ + 1);
      t_.AddMove({}, pass, M::kPickPebble, between);
      t_.AddMove({}, between, M::kPlacePebble, cond_begin_[j + 1]);
    } else {
      pass = emit_;  // built in BuildEmit (allocated in Compile order below)
    }

    for (StateId s = 0; s < dfa.num_states(); ++s) {
      const uint32_t par_mask = 1u << par_bit;
      // On the parent pebble's node: the condition resolves by acceptance.
      t_.AddMove({.presence_mask = par_mask, .presence_value = par_mask},
                 climb_at[s], M::kStay, dfa.accepting(s) ? pass : fail_);
      if (par_bit != 0) {
        // At the root without having met the parent pebble: fail.
        t_.AddMove({.presence_mask = par_mask | 1u, .presence_value = 1u},
                   climb_at[s], M::kStay, fail_);
        // Otherwise climb.
        t_.AddMove({.presence_mask = par_mask | 1u, .presence_value = 0},
                   climb_at[s], M::kUpLeft, arrive[s]);
        t_.AddMove({.presence_mask = par_mask | 1u, .presence_value = 0},
                   climb_at[s], M::kUpRight, arrive[s]);
      } else {
        t_.AddMove({.presence_mask = 1u, .presence_value = 0}, climb_at[s],
                   M::kUpLeft, arrive[s]);
        t_.AddMove({.presence_mask = 1u, .presence_value = 0}, climb_at[s],
                   M::kUpRight, arrive[s]);
      }
      for (SymbolId sym = 0; sym < in_.ranked.size(); ++sym) {
        t_.AddMove({.symbol = sym}, arrive[s], M::kStay,
                   climb_at[dfa.Next(s, sym)]);
      }
    }
  }

  void BuildEmit() {
    const uint32_t lvl = CheckerLevel();
    // emit_: all conditions passed. Emit -(item(copy, |), continue).
    StateId item = t_.AddState(lvl);
    StateId cont = PickThenAdvance();
    t_.AddOutputBinary({}, emit_, out_.cons, item, cont);
    StateId copy_reset = t_.AddState(lvl);
    t_.AddOutputBinary({}, item, out_.tag_symbol[tags_.item], copy_reset,
                       NilOut(lvl));
    // copy_reset: re-place the checker at the root, find the selected
    // pebble, copy its subtree.
    StateId between = t_.AddState(m_ + 1);
    t_.AddMove({}, copy_reset, M::kPickPebble, between);
    StateId sel_search = t_.AddState(lvl);
    t_.AddMove({}, between, M::kPlacePebble, sel_search);
    const uint32_t sel_bit = VarBit(query_.selected);
    StateId copy = t_.AddState(lvl);
    t_.AddMove({.presence_mask = 1u << sel_bit, .presence_value = 1u << sel_bit},
               sel_search, M::kStay, copy);
    StateId sel_adv = t_.AddState(lvl);
    t_.AddMove({.presence_mask = 1u << sel_bit, .presence_value = 0},
               sel_search, M::kStay, sel_adv);
    // Exhaustion is impossible (the pebble is on some node); fail defensively.
    AttachPreorderAdvanceWithRootPebble(&t_, lvl, in_.ranked, sel_adv,
                                        sel_search, fail_);
    // Copy the encoded subtree under the checker, mapping input symbol ids
    // to output symbol ids.
    StateId cp_left = t_.AddState(lvl);
    StateId cp_right = t_.AddState(lvl);
    t_.AddMove({}, cp_left, M::kDownLeft, copy);
    t_.AddMove({}, cp_right, M::kDownRight, copy);
    for (SymbolId tag = 0; tag < in_.tag_symbol.size(); ++tag) {
      t_.AddOutputBinary({.symbol = in_.tag_symbol[tag]}, copy,
                         out_.tag_symbol[tag], cp_left, cp_right);
    }
    t_.AddOutputBinary({.symbol = in_.cons}, copy, out_.cons, cp_left,
                       cp_right);
    t_.AddOutputLeaf({.symbol = in_.nil}, copy, out_.nil);
  }

  const SelectionQuery& query_;
  const EncodedAlphabet& in_;
  const EncodedAlphabet& out_;
  const SelectionOutputTags& tags_;
  const uint32_t m_;
  PebbleTransducer t_;
  std::vector<Dfa> dfas_;
  std::map<uint32_t, StateId> nil_out_;
  StateId s0_ = 0;
  StateId finish_ = 0;
  StateId fail_ = 0;
  StateId emit_ = 0;
  std::vector<StateId> arm_;
  std::vector<StateId> cond_begin_;
  std::vector<StateId> adv_;

 public:
  // emit_ must exist before BuildCondition wires the last condition's pass
  // edge; allocate it early.
  void AllocateEmit() { emit_ = t_.AddState(CheckerLevel()); }
};

}  // namespace

Result<PebbleTransducer> CompileSelectionQuery(
    const SelectionQuery& query, const EncodedAlphabet& input_enc,
    const EncodedAlphabet& output_enc, const SelectionOutputTags& tags) {
  SelectionCompiler compiler(query, input_enc, output_enc, tags);
  compiler.AllocateEmit();
  return compiler.Compile();
}

}  // namespace pebbletc
