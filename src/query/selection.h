// Selection queries compiled to k-pebble transducers — Example 3.5, the
// paper's demonstration that pattern matching (the "most essential common
// denominator of existing XML query languages") is expressible with
// pebbles.
//
// A selection query is a tree pattern plus a designated pattern node. Its
// result document lists, for every match of the pattern (in the lexicographic
// pre-order enumeration order of Example 3.5), a copy of the subtree bound to
// the designated node:
//
//   <result> <item> binding1 </item> ... <item> bindingK </item> <end/>
//   </result>
//
// The trailing <end/> sentinel keeps the output a valid encoded document
// that a transducer can emit without unbounded lookahead (DTD:
// result := item*.end).
//
// The compiled machine uses m + 2 pebbles for an m-node pattern: pebble 1 is
// parked on the root as a root marker, pebbles 2..m+1 hold the candidate
// bindings x_1..x_m (advanced with the Example 3.4 pre-order subroutine),
// and pebble m+2 verifies the regular path conditions by locating each bound
// node and running the reversed translated path regex up the tree — exactly
// the paper's construction (it uses m+1 pebbles; our extra pebble is the
// root marker replacing the paper's implicit root test).

#ifndef PEBBLETC_QUERY_SELECTION_H_
#define PEBBLETC_QUERY_SELECTION_H_

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/pt/transducer.h"
#include "src/query/pattern.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

struct SelectionQuery {
  Pattern pattern;
  /// Index of the pattern node whose bindings are returned.
  uint32_t selected = 0;
};

/// The output tag ids (in the output tag alphabet) for the wrapper elements.
struct SelectionOutputTags {
  SymbolId result;
  SymbolId item;
  SymbolId end;
};

/// Builds the output tag alphabet for a selection query: a copy of
/// `input_tags` (same ids) extended with result/item/end.
SelectionOutputTags ExtendAlphabetForSelection(const Alphabet& input_tags,
                                               Alphabet* output_tags);

/// Reference semantics on unranked documents.
Result<UnrankedTree> EvalSelectionReference(const SelectionQuery& query,
                                            const UnrankedTree& doc,
                                            const Alphabet& input_tags,
                                            const SelectionOutputTags& tags);

/// Compiles the query to a deterministic (m+2)-pebble transducer over the
/// encoded alphabets. `output_enc` must be built from an alphabet produced
/// by ExtendAlphabetForSelection on `input_enc`'s tag alphabet.
Result<PebbleTransducer> CompileSelectionQuery(
    const SelectionQuery& query, const EncodedAlphabet& input_enc,
    const EncodedAlphabet& output_enc, const SelectionOutputTags& tags);

}  // namespace pebbletc

#endif  // PEBBLETC_QUERY_SELECTION_H_
