// An XSLT fragment (Sections 1, 3.2, Example 4.3): template rules matched by
// element tag, with bodies built from literal elements and apply-templates.
// Expressive enough for the paper's query Q2 (Example 4.3), which maps
// <root> a^n </root> to <result> b a^n b a^n b a^n </result>.
//
// Fragment shape (restrictions documented where they matter):
//   * one template per input tag; template coverage must be total over the
//     input alphabet (every tag reachable in a document needs a rule);
//   * a template body is a single literal element whose child list mixes
//     literal *static* subtrees and `apply` items;
//   * `apply` processes all children of the current node, in order, each by
//     its matching template (XSLT's <xsl:apply-templates/>);
//   * static subtrees contain no nested `apply`.
//
// Concrete syntax:
//   template root { result { b; apply; b; apply; b; apply } }
//   template a    { a }
//
// CompileXslt produces a deterministic 1-pebble transducer on encoded
// trees. When no template has output following an `apply`, the machine is
// downward (src/core/downward.h typechecks it completely); bodies with
// output after an `apply` need up-moves (climbing back from the child list),
// which Example 4.3's Q2 exercises.

#ifndef PEBBLETC_QUERY_XSLT_H_
#define PEBBLETC_QUERY_XSLT_H_

#include <optional>
#include <string_view>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/pt/transducer.h"
#include "src/tree/unranked_tree.h"

namespace pebbletc {

struct XsltItem {
  bool is_apply = false;
  /// For static items: a literal subtree over the output tag alphabet.
  UnrankedTree literal;
};

struct XsltTemplate {
  SymbolId match_tag;    ///< input tag this template fires on
  SymbolId element_tag;  ///< output tag of the body's root element
  std::vector<XsltItem> items;
};

struct XsltProgram {
  std::vector<XsltTemplate> templates;
};

/// Parses the concrete syntax. Input tags (template heads) are interned into
/// `*input_tags`; output element names into `*output_tags`.
Result<XsltProgram> ParseXslt(std::string_view text, Alphabet* input_tags,
                              Alphabet* output_tags);

/// Reference semantics: applies the program to an unranked document
/// (processing starts at the root with its matching template). Fails if a
/// processed node has no template.
Result<UnrankedTree> ApplyXsltReference(const XsltProgram& program,
                                        const UnrankedTree& input,
                                        const Alphabet& input_tags);

/// Compiles to a deterministic 1-pebble transducer over the encoded
/// alphabets. Fails unless template coverage is total over `input_enc`'s
/// tags.
Result<PebbleTransducer> CompileXslt(const XsltProgram& program,
                                     const EncodedAlphabet& input_enc,
                                     const EncodedAlphabet& output_enc);

}  // namespace pebbletc

#endif  // PEBBLETC_QUERY_XSLT_H_
