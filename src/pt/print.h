// Human-readable rendering of pebble transducers and automata in the
// paper's transition notation, for debugging and documentation:
//   (a, b=0-, q3) -> (q5, down-left)
//   (*, q1) -> (x(q2, q2), output2)

#ifndef PEBBLETC_PT_PRINT_H_
#define PEBBLETC_PT_PRINT_H_

#include <string>

#include "src/alphabet/alphabet.h"
#include "src/pa/automaton.h"
#include "src/pt/transducer.h"

namespace pebbletc {

/// Renders all states and transitions. State q of level i prints as "q<id>^(i)".
std::string TransducerString(const PebbleTransducer& t,
                             const RankedAlphabet& input,
                             const RankedAlphabet& output);

std::string PebbleAutomatonString(const PebbleAutomaton& a,
                                  const RankedAlphabet& alphabet);

}  // namespace pebbletc

#endif  // PEBBLETC_PT_PRINT_H_
