// The worked example transducers of Section 3 as library factories:
//   * Example 3.3 — the identity (copy) transducer,
//   * Example 3.4 — the pre-order "advance pebble" subroutine,
//   * Example 3.6 — the exponential doubling transducer t ↦ f(t),
//   * Example 3.7 — rotation (re-rooting) around the unique leaf labelled s.
// Each factory documents its alphabet contract; all machines are
// deterministic unless noted.

#ifndef PEBBLETC_PT_PAPER_MACHINES_H_
#define PEBBLETC_PT_PAPER_MACHINES_H_

#include "src/alphabet/alphabet.h"
#include "src/common/result.h"
#include "src/pt/transducer.h"

namespace pebbletc {

/// Example 3.3: the 1-pebble transducer copying its input unchanged.
/// Input and output alphabets are both `sigma`.
PebbleTransducer MakeCopyTransducer(const RankedAlphabet& sigma);

/// Example 3.6: maps t to f(t) where
///   f(a(t1,t2)) = x(a(f(t1),f(t2)), a(f(t1),f(t2)))  for binary a,
///   f(a)        = x(a, a)                            for leaf a.
/// The output is exponentially larger than the input. Output alphabet =
/// input alphabet plus the binary symbol named by `x_name` (interned by the
/// caller into `output`); `output` must extend `sigma` with exactly that
/// symbol (same ids for shared symbols).
Result<PebbleTransducer> MakeDoublingTransducer(const RankedAlphabet& sigma,
                                                const RankedAlphabet& output,
                                                SymbolId x_symbol);

/// Example 3.7: rotation around the (first, in pre-order) leaf labelled
/// `s_leaf`. `root_symbol` is the distinguished symbol that labels exactly
/// the root (the paper's r). Output alphabet `output` must extend `sigma`
/// with a binary `r2` (the new root), and leaves `m` and `n`.
struct RotationSymbols {
  SymbolId s_leaf;       ///< in the input alphabet
  SymbolId root_symbol;  ///< in the input alphabet (labels only the root)
  SymbolId new_root;     ///< binary, in the output alphabet
  SymbolId m_leaf;       ///< leaf, in the output alphabet
  SymbolId n_leaf;       ///< leaf, in the output alphabet
};
Result<PebbleTransducer> MakeRotationTransducer(const RankedAlphabet& sigma,
                                                const RankedAlphabet& output,
                                                const RotationSymbols& syms);

/// Example 3.4: extends `t` with the pre-order "advance the current pebble"
/// subroutine for states of level `level`. On entry (state `enter`) the
/// pebble moves to the next node in pre-order and the machine continues in
/// `done`; if the traversal is exhausted (the pebble was on the last node)
/// it continues in `exhausted` with the pebble parked on the root.
/// `sigma` supplies symbol ranks for the guards; `root_symbol` is the
/// distinguished root label (the paper's r). Internal helper states are
/// created inside `t`.
void AttachPreorderAdvance(PebbleTransducer* t, uint32_t level,
                           const RankedAlphabet& sigma, SymbolId root_symbol,
                           StateId enter, StateId done, StateId exhausted);

/// Variant of the Example 3.4 subroutine for machines that keep pebble 1
/// parked on the root as a *root marker*: instead of a distinguished root
/// symbol, exhaustion is detected by presence bit 0 (the current pebble
/// sharing a node with pebble 1). Requires `level` ≥ 2. Used by the
/// Example 3.5 pattern-matching compiler (src/query/selection.h).
void AttachPreorderAdvanceWithRootPebble(PebbleTransducer* t, uint32_t level,
                                         const RankedAlphabet& sigma,
                                         StateId enter, StateId done,
                                         StateId exhausted);

}  // namespace pebbletc

#endif  // PEBBLETC_PT_PAPER_MACHINES_H_
