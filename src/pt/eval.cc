#include "src/pt/eval.h"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/ta/convert.h"
#include "src/ta/enumerate.h"
#include "src/ta/nbta.h"
#include "src/ta/nbta_index.h"

namespace pebbletc {

namespace {

using Config = PebbleTransducer::Config;
using TKind = PebbleTransducer::TransitionKind;

}  // namespace

Result<OutputAutomaton> BuildOutputAutomaton(const PebbleTransducer& t,
                                             const BinaryTree& input,
                                             size_t max_configs,
                                             TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  if (input.empty()) {
    return Status::InvalidArgument("empty input tree");
  }
  // Intern reachable configurations.
  std::map<Config, StateId> index;
  std::vector<Config> configs;
  auto intern = [&](Config c) -> StateId {
    auto [it, inserted] = index.emplace(std::move(c), configs.size());
    if (inserted) configs.push_back(it->first);
    return it->second;
  };
  intern(t.InitialConfig(input));

  // Transition records gathered during the BFS; emitted into the automaton
  // once the final state id (qf = #configs) is known.
  struct SilentRec {
    StateId from;
    StateId to;          // config id, or kNoSymbol marker for qf
    SymbolId symbol;     // specific symbol, or kAnySymbol for "every symbol"
  };
  std::vector<SilentRec> silents;
  struct BinaryRec {
    StateId from;
    SymbolId symbol;
    StateId left;
    StateId right;
  };
  std::vector<BinaryRec> binaries;
  constexpr StateId kFinalMarker = static_cast<StateId>(-2);

  for (size_t i = 0; i < configs.size(); ++i) {
    PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
    if (max_configs != 0 && configs.size() > max_configs) {
      return Status::ResourceExhausted(
          "configuration budget of " + std::to_string(max_configs) +
          " exceeded");
    }
    const Config current = configs[i];  // copy: `configs` grows below
    for (const auto* tr : t.Applicable(input, current)) {
      switch (tr->kind) {
        case TKind::kMove: {
          StateId to = intern(t.ApplyMove(*tr, input, current));
          silents.push_back(
              {static_cast<StateId>(i), to, kAnySymbol});
          break;
        }
        case TKind::kOutputLeaf:
          silents.push_back(
              {static_cast<StateId>(i), kFinalMarker, tr->output_symbol});
          break;
        case TKind::kOutputBinary: {
          Config l = current;
          l.state = tr->out_left;
          Config r = current;
          r.state = tr->out_right;
          StateId li = intern(std::move(l));
          StateId ri = intern(std::move(r));
          binaries.push_back(
              {static_cast<StateId>(i), tr->output_symbol, li, ri});
          break;
        }
      }
    }
  }

  OutputAutomaton out;
  out.num_configs = configs.size();
  TopDownTA& a = out.automaton;
  a.num_symbols = t.num_output_symbols();
  for (size_t i = 0; i < configs.size(); ++i) a.AddState();
  const StateId qf = a.AddState();
  a.start = 0;  // the initial configuration was interned first

  for (const SilentRec& s : silents) {
    const StateId to = (s.to == kFinalMarker) ? qf : s.to;
    if (s.symbol == kAnySymbol) {
      // Pebble moves are independent of the output label.
      for (SymbolId sym = 0; sym < a.num_symbols; ++sym) {
        a.AddSilent(sym, s.from, to);
      }
    } else {
      a.AddSilent(s.symbol, s.from, to);
    }
  }
  for (const BinaryRec& b : binaries) {
    a.AddRule(b.symbol, b.from, b.left, b.right);
  }
  // qf accepts exactly at leaves (the output0 symbol was already checked by
  // the label-specific silent transition into qf).
  for (SymbolId sym = 0; sym < a.num_symbols; ++sym) {
    a.AddFinalPair(sym, qf);
  }
  TaCountStates(ctx, a.num_states);
  TaCountRules(ctx, a.rules.size() + a.silent.size() + a.final_pairs.size());
  return out;
}

Result<bool> OutputContains(const PebbleTransducer& t, const BinaryTree& input,
                            const BinaryTree& candidate, size_t max_configs,
                            TaOpContext* ctx) {
  PEBBLETC_ASSIGN_OR_RETURN(OutputAutomaton a,
                            BuildOutputAutomaton(t, input, max_configs, ctx));
  return TopDownAccepts(a.automaton, candidate);
}

Result<std::vector<BinaryTree>> EnumerateOutputs(const PebbleTransducer& t,
                                                 const BinaryTree& input,
                                                 size_t max_nodes,
                                                 size_t max_count,
                                                 size_t max_configs,
                                                 TaOpContext* ctx) {
  PEBBLETC_ASSIGN_OR_RETURN(OutputAutomaton a,
                            BuildOutputAutomaton(t, input, max_configs, ctx));
  Nbta nbta = TrimNbta(NbtaIndex(TopDownToNbta(a.automaton, ctx), ctx), ctx);
  std::vector<BinaryTree> trees =
      EnumerateAcceptedTrees(nbta, max_nodes, max_count, ctx);
  // An interrupted enumeration yields genuine-but-fewer outputs; surface the
  // interrupt so callers relying on exhaustiveness can tell.
  PEBBLETC_RETURN_IF_ERROR(TaInterruptStatus(ctx));
  return trees;
}

namespace {

// Proto output tree: built top-down, converted to the bottom-up BinaryTree
// arena at the end.
struct ProtoNode {
  SymbolId symbol = kNoSymbol;
  int64_t left = -1;
  int64_t right = -1;
};

BinaryTree ProtoToTree(const std::vector<ProtoNode>& proto, int64_t root) {
  BinaryTree out;
  struct Frame {
    int64_t node;
    bool expanded;
  };
  std::vector<Frame> stack = {{root, false}};
  std::vector<NodeId> results;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const ProtoNode& p = proto[f.node];
    if (p.left < 0) {
      results.push_back(out.AddLeaf(p.symbol));
    } else if (!f.expanded) {
      stack.push_back({f.node, true});
      stack.push_back({p.right, false});
      stack.push_back({p.left, false});
    } else {
      NodeId r = results.back();
      results.pop_back();
      NodeId l = results.back();
      results.pop_back();
      results.push_back(out.AddInternal(p.symbol, l, r));
    }
  }
  PEBBLETC_CHECK(results.size() == 1) << "proto conversion imbalance";
  out.SetRoot(results.back());
  return out;
}

}  // namespace

Result<BinaryTree> EvalDeterministic(const PebbleTransducer& t,
                                     const BinaryTree& input,
                                     size_t max_steps, TaOpContext* ctx) {
  TaOpTimer timer(ctx);
  if (input.empty()) {
    return Status::InvalidArgument("empty input tree");
  }
  if (!t.IsDeterministic()) {
    return Status::FailedPrecondition(
        "transducer is (syntactically) nondeterministic; use "
        "BuildOutputAutomaton/EnumerateOutputs instead");
  }

  std::vector<ProtoNode> proto;
  // Each pending branch computes the subtree for a slot in `proto`:
  // slot < 0 means "the root slot".
  struct Branch {
    Config config;
    int64_t parent;  // proto index, -1 for root
    bool is_left;
  };
  int64_t root_index = -1;
  std::vector<Branch> work;
  work.push_back({t.InitialConfig(input), -1, false});
  size_t steps = 0;

  while (!work.empty()) {
    Branch branch = std::move(work.back());
    work.pop_back();
    // Configurations seen on this branch since its last output; revisiting
    // one means the (deterministic) run diverges.
    std::set<Config> seen;
    while (true) {
      PEBBLETC_RETURN_IF_ERROR(TaCheckpoint(ctx));
      if (++steps > max_steps) {
        return Status::ResourceExhausted("evaluation exceeded " +
                                         std::to_string(max_steps) +
                                         " steps");
      }
      auto applicable = t.Applicable(input, branch.config);
      if (applicable.empty()) {
        return Status::FailedPrecondition(
            "computation branch is stuck (no applicable transition); the "
            "transducer produces no output on this input");
      }
      const auto* tr = applicable.front();
      if (tr->kind == TKind::kMove) {
        if (!seen.insert(branch.config).second) {
          return Status::FailedPrecondition(
              "transducer diverges on this input (configuration revisited "
              "without output)");
        }
        branch.config = t.ApplyMove(*tr, input, branch.config);
        continue;
      }
      // Output: allocate the proto node and wire it to the parent slot.
      int64_t node = static_cast<int64_t>(proto.size());
      proto.push_back({tr->output_symbol, -1, -1});
      if (branch.parent < 0) {
        root_index = node;
      } else if (branch.is_left) {
        proto[branch.parent].left = node;
      } else {
        proto[branch.parent].right = node;
      }
      if (tr->kind == TKind::kOutputLeaf) break;
      // output2: continue this branch as the left child, queue the right.
      Config right_config = branch.config;
      right_config.state = tr->out_right;
      work.push_back({std::move(right_config), node, false});
      branch.config.state = tr->out_left;
      branch.parent = node;
      branch.is_left = true;
      seen.clear();
    }
  }
  PEBBLETC_CHECK(root_index >= 0) << "no output produced";
  return ProtoToTree(proto, root_index);
}

}  // namespace pebbletc
