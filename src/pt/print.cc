#include "src/pt/print.h"

#include <string>

namespace pebbletc {

namespace {

std::string GuardString(const PebbleGuard& g, uint32_t level,
                        const RankedAlphabet& input) {
  std::string out = "(";
  out += (g.symbol == kAnySymbol) ? "*" : input.Name(g.symbol);
  if (g.presence_mask != 0) {
    out += ", b=";
    for (uint32_t j = 0; j + 1 < level; ++j) {
      if ((g.presence_mask >> j) & 1u) {
        out += ((g.presence_value >> j) & 1u) ? '1' : '0';
      } else {
        out += '-';
      }
    }
  }
  return out;
}

std::string MoveName(PebbleTransducer::MoveKind m) {
  using M = PebbleTransducer::MoveKind;
  switch (m) {
    case M::kStay:
      return "stay";
    case M::kDownLeft:
      return "down-left";
    case M::kDownRight:
      return "down-right";
    case M::kUpLeft:
      return "up-left";
    case M::kUpRight:
      return "up-right";
    case M::kPlacePebble:
      return "place-new-pebble";
    case M::kPickPebble:
      return "pick-current-pebble";
  }
  return "?";
}

std::string StateName(StateId q, uint32_t level) {
  return "q" + std::to_string(q) + "^(" + std::to_string(level) + ")";
}

}  // namespace

std::string TransducerString(const PebbleTransducer& t,
                             const RankedAlphabet& input,
                             const RankedAlphabet& output) {
  std::string out = "k-pebble transducer: k=" + std::to_string(t.max_pebbles()) +
                    ", states=" + std::to_string(t.num_states()) +
                    ", start=" + StateName(t.start(), t.level(t.start())) +
                    "\n";
  using TK = PebbleTransducer::TransitionKind;
  for (const auto& tr : t.transitions()) {
    const uint32_t lvl = t.level(tr.from);
    out += "  " + GuardString(tr.guard, lvl, input) + ", " +
           StateName(tr.from, lvl) + ") -> ";
    switch (tr.kind) {
      case TK::kMove:
        out += "(" + StateName(tr.to, t.level(tr.to)) + ", " +
               MoveName(tr.move) + ")";
        break;
      case TK::kOutputLeaf:
        out += "(" + output.Name(tr.output_symbol) + ", output0)";
        break;
      case TK::kOutputBinary:
        out += "(" + output.Name(tr.output_symbol) + "(" +
               StateName(tr.out_left, lvl) + ", " +
               StateName(tr.out_right, lvl) + "), output2)";
        break;
    }
    out += "\n";
  }
  return out;
}

std::string PebbleAutomatonString(const PebbleAutomaton& a,
                                  const RankedAlphabet& alphabet) {
  std::string out = "k-pebble automaton: k=" + std::to_string(a.max_pebbles()) +
                    ", states=" + std::to_string(a.num_states()) +
                    ", start=" + StateName(a.start(), a.level(a.start())) +
                    "\n";
  using TK = PebbleAutomaton::TransitionKind;
  for (const auto& tr : a.transitions()) {
    const uint32_t lvl = a.level(tr.from);
    out += "  " + GuardString(tr.guard, lvl, alphabet) + ", " +
           StateName(tr.from, lvl) + ") -> ";
    switch (tr.kind) {
      case TK::kMove:
        out += "(" + StateName(tr.to, a.level(tr.to)) + ", " +
               MoveName(tr.move) + ")";
        break;
      case TK::kAccept:
        out += "(branch0)";
        break;
      case TK::kBranch:
        out += "((" + StateName(tr.left, lvl) + ", " +
               StateName(tr.right, lvl) + "), branch2)";
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace pebbletc
