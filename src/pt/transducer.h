// The k-pebble tree transducer (Definition 3.1) — the paper's model of XML
// transformations.
//
// Up to k pebbles sit on nodes of the input binary tree under a stack
// discipline: pebbles are placed in order 1..k (each new pebble starts at
// the root), removed in reverse order, and only the highest-numbered pebble
// moves. States are partitioned by the pebble they control: a state of
// level i is active exactly when i pebbles are on the tree, and its
// transitions move pebble i. Guards see the symbol under the current pebble
// and which of pebbles 1..i-1 share its node (the paper's b-vector; here a
// mask/value pair so "don't care" bits need not be enumerated).
//
// Output transitions emit a node of the output tree: output2 spawns two
// branches that inherit all pebble positions and continue independently;
// output0 emits a leaf and halts the branch.

#ifndef PEBBLETC_PT_TRANSDUCER_H_
#define PEBBLETC_PT_TRANSDUCER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/alphabet/alphabet.h"
#include "src/common/status.h"
#include "src/regex/nfa.h"  // StateId
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// Wildcard for guard symbols.
inline constexpr SymbolId kAnySymbol = kNoSymbol;

/// A transition guard: input symbol under the current pebble (kAnySymbol
/// matches every symbol) and a partial constraint on which lower-numbered
/// pebbles sit on the current node — bit j (0-based) of the presence vector
/// refers to pebble j+1; only bits selected by `presence_mask` are tested.
struct PebbleGuard {
  SymbolId symbol = kAnySymbol;
  uint32_t presence_mask = 0;
  uint32_t presence_value = 0;
};

class PebbleTransducer {
 public:
  enum class MoveKind {
    kStay,
    kDownLeft,
    kDownRight,
    kUpLeft,   ///< move to the parent; applies only if the node is a left child
    kUpRight,  ///< move to the parent; applies only if the node is a right child
    kPlacePebble,
    kPickPebble,
  };

  enum class TransitionKind { kMove, kOutputLeaf, kOutputBinary };

  struct Transition {
    TransitionKind kind;
    PebbleGuard guard;
    StateId from;
    // kMove:
    MoveKind move;
    StateId to;
    // kOutputLeaf / kOutputBinary:
    SymbolId output_symbol;
    StateId out_left;   // kOutputBinary only
    StateId out_right;  // kOutputBinary only
  };

  /// A configuration (i, q, x1..xi): `pebbles.size()` equals the level of
  /// `state`; pebbles[i-1] is the current pebble's node.
  struct Config {
    StateId state;
    std::vector<NodeId> pebbles;

    friend bool operator==(const Config& a, const Config& b) {
      return a.state == b.state && a.pebbles == b.pebbles;
    }
    friend bool operator<(const Config& a, const Config& b) {
      if (a.state != b.state) return a.state < b.state;
      return a.pebbles < b.pebbles;
    }
  };

  /// Creates a transducer with `max_pebbles` ≥ 1 pebbles over input/output
  /// alphabets of the given sizes.
  PebbleTransducer(uint32_t max_pebbles, uint32_t num_input_symbols,
                   uint32_t num_output_symbols);

  uint32_t max_pebbles() const { return max_pebbles_; }
  uint32_t num_input_symbols() const { return num_input_symbols_; }
  uint32_t num_output_symbols() const { return num_output_symbols_; }
  uint32_t num_states() const { return static_cast<uint32_t>(level_.size()); }
  uint32_t level(StateId q) const { return level_[q]; }
  StateId start() const { return start_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Adds a state controlled by pebble `level` (1-based, ≤ max_pebbles).
  StateId AddState(uint32_t level);
  /// Sets the initial state (must have level 1).
  void SetStart(StateId q);

  /// Adds a move transition. Level constraints (checked by Validate):
  /// kPlacePebble raises the level by one, kPickPebble lowers it, all other
  /// moves preserve it.
  void AddMove(const PebbleGuard& guard, StateId from, MoveKind move,
               StateId to);

  /// Adds an output transition emitting a leaf (halts the branch).
  void AddOutputLeaf(const PebbleGuard& guard, StateId from,
                     SymbolId output_symbol);

  /// Adds an output transition emitting a binary node and spawning two
  /// branches (same level as `from`).
  void AddOutputBinary(const PebbleGuard& guard, StateId from,
                       SymbolId output_symbol, StateId left, StateId right);

  /// Checks the stack discipline and alphabet/rank constraints.
  Status Validate(const RankedAlphabet& input,
                  const RankedAlphabet& output) const;

  /// The initial configuration on `tree`: pebble 1 on the root, start state.
  Config InitialConfig(const BinaryTree& tree) const;

  /// Whether `t` (by index into transitions()) applies to `config` on
  /// `tree` — guard satisfied and, for moves, the direction possible.
  bool Applies(const Transition& t, const BinaryTree& tree,
               const Config& config) const;

  /// Applies an (applicable) move transition, returning the successor
  /// configuration.
  Config ApplyMove(const Transition& t, const BinaryTree& tree,
                   const Config& config) const;

  /// All transitions applicable to `config`, in declaration order.
  std::vector<const Transition*> Applicable(const BinaryTree& tree,
                                            const Config& config) const;

  /// True if no configuration can have two applicable transitions — checked
  /// syntactically per (state, symbol, presence) combination, which is exact
  /// for guards over declared mask bits.
  bool IsDeterministic() const;

 private:
  uint32_t max_pebbles_;
  uint32_t num_input_symbols_;
  uint32_t num_output_symbols_;
  StateId start_ = 0;
  std::vector<uint32_t> level_;
  std::vector<Transition> transitions_;
  // transitions_ indexed by from-state for fast lookup.
  std::vector<std::vector<uint32_t>> by_state_;
};

}  // namespace pebbletc

#endif  // PEBBLETC_PT_TRANSDUCER_H_
