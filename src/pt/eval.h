// Evaluation of k-pebble transducers (Proposition 3.8).
//
// The central construction is BuildOutputAutomaton: for a transducer T and an
// input tree t it builds, in time polynomial in |t| (O(|t|^k) configurations),
// a top-down tree automaton A_t with silent transitions over the output
// alphabet such that inst(A_t) = T(t). A_t is the paper's polynomial "DAG
// encoding" of the possibly exponential (or infinite) output set, and powers
//   * membership  t′ ∈ T(t)           (PTIME, Prop. 3.8),
//   * enumeration of T(t),
//   * the per-input typecheck  T(t) ⊆ τ  (used by the bounded refutation
//     search of the typechecker).
// Deterministic transducers can instead be run directly (EvalDeterministic).

#ifndef PEBBLETC_PT_EVAL_H_
#define PEBBLETC_PT_EVAL_H_

#include <cstddef>
#include <vector>

#include "src/common/result.h"
#include "src/pt/transducer.h"
#include "src/ta/topdown.h"
#include "src/tree/binary_tree.h"

namespace pebbletc {

/// The Proposition 3.8 automaton for T on a fixed input tree.
struct OutputAutomaton {
  /// Over the output alphabet; silent transitions encode pebble moves.
  TopDownTA automaton;
  /// Number of reachable transducer configurations (the paper's O(n^k)).
  size_t num_configs = 0;
};

/// Builds A_t. `max_configs` (0 = unlimited) bounds the configuration space.
/// A `ctx` threads deadline/cancel checkpoints and counters through the
/// configuration BFS.
Result<OutputAutomaton> BuildOutputAutomaton(const PebbleTransducer& t,
                                             const BinaryTree& input,
                                             size_t max_configs = 0,
                                             TaOpContext* ctx = nullptr);

/// Membership test: candidate ∈ T(input)? (PTIME in |input| and |candidate|.)
Result<bool> OutputContains(const PebbleTransducer& t, const BinaryTree& input,
                            const BinaryTree& candidate,
                            size_t max_configs = 0,
                            TaOpContext* ctx = nullptr);

/// Enumerates distinct outputs with ≤ max_nodes nodes (≤ max_count of them).
Result<std::vector<BinaryTree>> EnumerateOutputs(const PebbleTransducer& t,
                                                 const BinaryTree& input,
                                                 size_t max_nodes,
                                                 size_t max_count,
                                                 size_t max_configs = 0,
                                                 TaOpContext* ctx = nullptr);

/// Runs a deterministic transducer directly, materializing the unique output
/// tree. Fails with kFailedPrecondition if the transducer is syntactically
/// nondeterministic, a branch diverges (revisits a configuration without
/// emitting output), a branch gets stuck, or `max_steps` is exceeded.
Result<BinaryTree> EvalDeterministic(const PebbleTransducer& t,
                                     const BinaryTree& input,
                                     size_t max_steps = 10'000'000,
                                     TaOpContext* ctx = nullptr);

}  // namespace pebbletc

#endif  // PEBBLETC_PT_EVAL_H_
