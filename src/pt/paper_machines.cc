#include "src/pt/paper_machines.h"

#include "src/common/check.h"

namespace pebbletc {

PebbleTransducer MakeCopyTransducer(const RankedAlphabet& sigma) {
  PebbleTransducer t(/*max_pebbles=*/1,
                     static_cast<uint32_t>(sigma.size()),
                     static_cast<uint32_t>(sigma.size()));
  StateId q = t.AddState(1);
  StateId q1 = t.AddState(1);
  StateId q2 = t.AddState(1);
  t.SetStart(q);
  for (SymbolId a : sigma.BinarySymbols()) {
    t.AddOutputBinary({.symbol = a}, q, a, q1, q2);
  }
  for (SymbolId a : sigma.LeafSymbols()) {
    t.AddOutputLeaf({.symbol = a}, q, a);
  }
  t.AddMove({}, q1, PebbleTransducer::MoveKind::kDownLeft, q);
  t.AddMove({}, q2, PebbleTransducer::MoveKind::kDownRight, q);
  return t;
}

Result<PebbleTransducer> MakeDoublingTransducer(const RankedAlphabet& sigma,
                                                const RankedAlphabet& output,
                                                SymbolId x_symbol) {
  if (x_symbol >= output.size() || output.Rank(x_symbol) != 2) {
    return Status::InvalidArgument("x must be a binary output symbol");
  }
  if (output.size() != sigma.size() + 1) {
    return Status::InvalidArgument(
        "output alphabet must extend the input alphabet by exactly x");
  }
  PebbleTransducer t(/*max_pebbles=*/1,
                     static_cast<uint32_t>(sigma.size()),
                     static_cast<uint32_t>(output.size()));
  StateId q1 = t.AddState(1);
  StateId q2 = t.AddState(1);
  StateId q3 = t.AddState(1);
  StateId q4 = t.AddState(1);
  t.SetStart(q1);
  t.AddOutputBinary({}, q1, x_symbol, q2, q2);
  for (SymbolId a : sigma.LeafSymbols()) {
    t.AddOutputLeaf({.symbol = a}, q2, a);
  }
  for (SymbolId a : sigma.BinarySymbols()) {
    t.AddOutputBinary({.symbol = a}, q2, a, q3, q4);
  }
  t.AddMove({}, q3, PebbleTransducer::MoveKind::kDownLeft, q1);
  t.AddMove({}, q4, PebbleTransducer::MoveKind::kDownRight, q1);
  return t;
}

void AttachPreorderAdvance(PebbleTransducer* t, uint32_t level,
                           const RankedAlphabet& sigma, SymbolId root_symbol,
                           StateId enter, StateId done, StateId exhausted) {
  using M = PebbleTransducer::MoveKind;
  StateId q3 = t->AddState(level);  // climbing until we came from a left child
  StateId q4 = t->AddState(level);  // one up-left done; go down-right next
  // (a2, enter) → (done, down-left): the pre-order successor of an internal
  // node is its first child.
  for (SymbolId a : sigma.BinarySymbols()) {
    t->AddMove({.symbol = a}, enter, M::kDownLeft, done);
  }
  // (a0, enter) → (q3, stay): on a leaf, prepare to climb.
  for (SymbolId a : sigma.LeafSymbols()) {
    t->AddMove({.symbol = a}, enter, M::kStay, q3);
  }
  // Climb while we keep arriving from right children; after one up-left the
  // pre-order successor is the sibling (down-right). Guards exclude the
  // distinguished root symbol so exhaustion is deterministic.
  for (SymbolId a = 0; a < sigma.size(); ++a) {
    if (a == root_symbol) continue;
    t->AddMove({.symbol = a}, q3, M::kUpRight, q3);
    t->AddMove({.symbol = a}, q3, M::kUpLeft, q4);
  }
  t->AddMove({}, q4, M::kDownRight, done);
  // (r, q3) → (exhausted, stay): climbed back to the root — traversal done.
  t->AddMove({.symbol = root_symbol}, q3, M::kStay, exhausted);
}

void AttachPreorderAdvanceWithRootPebble(PebbleTransducer* t, uint32_t level,
                                         const RankedAlphabet& sigma,
                                         StateId enter, StateId done,
                                         StateId exhausted) {
  using M = PebbleTransducer::MoveKind;
  PEBBLETC_CHECK(level >= 2) << "root-pebble variant needs level >= 2";
  StateId q3 = t->AddState(level);
  StateId q4 = t->AddState(level);
  for (SymbolId a : sigma.BinarySymbols()) {
    t->AddMove({.symbol = a}, enter, M::kDownLeft, done);
  }
  for (SymbolId a : sigma.LeafSymbols()) {
    t->AddMove({.symbol = a}, enter, M::kStay, q3);
  }
  // Climb while off the root (presence bit 0 clear); exhaustion is reaching
  // the root-marker pebble.
  t->AddMove({.presence_mask = 1, .presence_value = 0}, q3, M::kUpRight, q3);
  t->AddMove({.presence_mask = 1, .presence_value = 0}, q3, M::kUpLeft, q4);
  t->AddMove({.presence_mask = 1, .presence_value = 1}, q3, M::kStay,
             exhausted);
  t->AddMove({}, q4, M::kDownRight, done);
}

Result<PebbleTransducer> MakeRotationTransducer(const RankedAlphabet& sigma,
                                                const RankedAlphabet& output,
                                                const RotationSymbols& syms) {
  using M = PebbleTransducer::MoveKind;
  if (syms.s_leaf >= sigma.size() || sigma.Rank(syms.s_leaf) != 0) {
    return Status::InvalidArgument("s must be an input leaf symbol");
  }
  if (syms.root_symbol >= sigma.size()) {
    return Status::InvalidArgument("root symbol must be an input symbol");
  }
  if (syms.new_root >= output.size() || output.Rank(syms.new_root) != 2) {
    return Status::InvalidArgument("new root must be a binary output symbol");
  }
  if (syms.m_leaf >= output.size() || output.Rank(syms.m_leaf) != 0 ||
      syms.n_leaf >= output.size() || output.Rank(syms.n_leaf) != 0) {
    return Status::InvalidArgument("m and n must be leaf output symbols");
  }
  for (SymbolId a = 0; a < sigma.size(); ++a) {
    if (a >= output.size() || output.Rank(a) != sigma.Rank(a)) {
      return Status::InvalidArgument(
          "output alphabet must extend the input alphabet (shared ids)");
    }
  }

  PebbleTransducer t(/*max_pebbles=*/1,
                     static_cast<uint32_t>(sigma.size()),
                     static_cast<uint32_t>(output.size()));
  // Search phase: walk to the first s-leaf in pre-order.
  StateId f0 = t.AddState(1);        // inspect current node
  StateId f_enter = t.AddState(1);   // pre-order advance entry
  StateId f_dead = t.AddState(1);    // exhausted without finding s: stuck
  // Rotation phase.
  StateId q_at_s = t.AddState(1);
  StateId q_emit_m = t.AddState(1);
  StateId q_ascend = t.AddState(1);
  StateId q_from_left = t.AddState(1);
  StateId q_from_right = t.AddState(1);
  StateId q_desc_left = t.AddState(1);
  StateId q_desc_right = t.AddState(1);
  // Copy subroutine (Example 3.3).
  StateId c = t.AddState(1);
  StateId c1 = t.AddState(1);
  StateId c2 = t.AddState(1);
  t.SetStart(f0);

  // Search: found s → rotate; otherwise advance in pre-order.
  t.AddMove({.symbol = syms.s_leaf}, f0, M::kStay, q_at_s);
  for (SymbolId a = 0; a < sigma.size(); ++a) {
    if (a == syms.s_leaf) continue;
    t.AddMove({.symbol = a}, f0, M::kStay, f_enter);
  }
  AttachPreorderAdvance(&t, /*level=*/1, sigma, syms.root_symbol, f_enter, f0,
                        f_dead);

  // Rotation around s (Example 3.7): new root, then unfold the path to the
  // old root while copying the subtrees hanging off it.
  t.AddOutputBinary({.symbol = syms.s_leaf}, q_at_s, syms.new_root, q_emit_m,
                    q_ascend);
  t.AddOutputLeaf({}, q_emit_m, syms.m_leaf);
  t.AddOutputLeaf({.symbol = syms.root_symbol}, q_ascend, syms.n_leaf);
  for (SymbolId a = 0; a < sigma.size(); ++a) {
    if (a == syms.root_symbol) continue;
    t.AddMove({.symbol = a}, q_ascend, M::kUpLeft, q_from_left);
    t.AddMove({.symbol = a}, q_ascend, M::kUpRight, q_from_right);
  }
  for (SymbolId a : sigma.BinarySymbols()) {
    t.AddOutputBinary({.symbol = a}, q_from_left, a, q_desc_right, q_ascend);
    t.AddOutputBinary({.symbol = a}, q_from_right, a, q_ascend, q_desc_left);
  }
  t.AddMove({}, q_desc_right, M::kDownRight, c);
  t.AddMove({}, q_desc_left, M::kDownLeft, c);

  // Copy.
  for (SymbolId a : sigma.BinarySymbols()) {
    t.AddOutputBinary({.symbol = a}, c, a, c1, c2);
  }
  for (SymbolId a : sigma.LeafSymbols()) {
    t.AddOutputLeaf({.symbol = a}, c, a);
  }
  t.AddMove({}, c1, M::kDownLeft, c);
  t.AddMove({}, c2, M::kDownRight, c);
  return t;
}

}  // namespace pebbletc
