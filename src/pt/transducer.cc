#include "src/pt/transducer.h"

#include <string>

#include "src/common/check.h"

namespace pebbletc {

PebbleTransducer::PebbleTransducer(uint32_t max_pebbles,
                                   uint32_t num_input_symbols,
                                   uint32_t num_output_symbols)
    : max_pebbles_(max_pebbles),
      num_input_symbols_(num_input_symbols),
      num_output_symbols_(num_output_symbols) {
  PEBBLETC_CHECK(max_pebbles >= 1) << "need at least one pebble";
  PEBBLETC_CHECK(max_pebbles <= 30) << "pebble guard bits limited to 30";
}

StateId PebbleTransducer::AddState(uint32_t level) {
  PEBBLETC_CHECK(level >= 1 && level <= max_pebbles_)
      << "state level " << level << " out of range";
  StateId q = static_cast<StateId>(level_.size());
  level_.push_back(level);
  by_state_.emplace_back();
  return q;
}

void PebbleTransducer::SetStart(StateId q) {
  PEBBLETC_CHECK(q < level_.size()) << "bad start state";
  start_ = q;
}

void PebbleTransducer::AddMove(const PebbleGuard& guard, StateId from,
                               MoveKind move, StateId to) {
  PEBBLETC_CHECK(from < level_.size() && to < level_.size()) << "bad state";
  Transition t;
  t.kind = TransitionKind::kMove;
  t.guard = guard;
  t.from = from;
  t.move = move;
  t.to = to;
  t.output_symbol = kNoSymbol;
  t.out_left = t.out_right = 0;
  by_state_[from].push_back(static_cast<uint32_t>(transitions_.size()));
  transitions_.push_back(t);
}

void PebbleTransducer::AddOutputLeaf(const PebbleGuard& guard, StateId from,
                                     SymbolId output_symbol) {
  PEBBLETC_CHECK(from < level_.size()) << "bad state";
  Transition t;
  t.kind = TransitionKind::kOutputLeaf;
  t.guard = guard;
  t.from = from;
  t.move = MoveKind::kStay;
  t.to = 0;
  t.output_symbol = output_symbol;
  t.out_left = t.out_right = 0;
  by_state_[from].push_back(static_cast<uint32_t>(transitions_.size()));
  transitions_.push_back(t);
}

void PebbleTransducer::AddOutputBinary(const PebbleGuard& guard, StateId from,
                                       SymbolId output_symbol, StateId left,
                                       StateId right) {
  PEBBLETC_CHECK(from < level_.size() && left < level_.size() &&
                 right < level_.size())
      << "bad state";
  Transition t;
  t.kind = TransitionKind::kOutputBinary;
  t.guard = guard;
  t.from = from;
  t.move = MoveKind::kStay;
  t.to = 0;
  t.output_symbol = output_symbol;
  t.out_left = left;
  t.out_right = right;
  by_state_[from].push_back(static_cast<uint32_t>(transitions_.size()));
  transitions_.push_back(t);
}

Status PebbleTransducer::Validate(const RankedAlphabet& input,
                                  const RankedAlphabet& output) const {
  if (input.size() != num_input_symbols_) {
    return Status::InvalidArgument("input alphabet size mismatch");
  }
  if (output.size() != num_output_symbols_) {
    return Status::InvalidArgument("output alphabet size mismatch");
  }
  if (level_.empty()) return Status::FailedPrecondition("no states");
  if (level_[start_] != 1) {
    return Status::InvalidArgument("start state must have level 1");
  }
  for (size_t i = 0; i < transitions_.size(); ++i) {
    const Transition& t = transitions_[i];
    const std::string where = "transition " + std::to_string(i);
    if (t.guard.symbol != kAnySymbol && t.guard.symbol >= num_input_symbols_) {
      return Status::InvalidArgument(where + ": guard symbol out of range");
    }
    const uint32_t lvl = level_[t.from];
    // Presence bits refer to pebbles 1..lvl-1, i.e. bits 0..lvl-2.
    if (lvl >= 1 && (t.guard.presence_mask >> (lvl - 1)) != 0) {
      return Status::InvalidArgument(
          where + ": presence guard mentions pebbles ≥ the state level");
    }
    if ((t.guard.presence_value & ~t.guard.presence_mask) != 0) {
      return Status::InvalidArgument(
          where + ": presence value has bits outside the mask");
    }
    switch (t.kind) {
      case TransitionKind::kMove: {
        const uint32_t to_lvl = level_[t.to];
        switch (t.move) {
          case MoveKind::kStay:
          case MoveKind::kDownLeft:
          case MoveKind::kDownRight:
          case MoveKind::kUpLeft:
          case MoveKind::kUpRight:
            if (to_lvl != lvl) {
              return Status::InvalidArgument(where +
                                             ": move must preserve level");
            }
            break;
          case MoveKind::kPlacePebble:
            if (to_lvl != lvl + 1) {
              return Status::InvalidArgument(
                  where + ": place-new-pebble must raise the level by one");
            }
            break;
          case MoveKind::kPickPebble:
            if (lvl < 2 || to_lvl != lvl - 1) {
              return Status::InvalidArgument(
                  where + ": pick-current-pebble must lower the level by one");
            }
            break;
        }
        break;
      }
      case TransitionKind::kOutputLeaf:
        if (t.output_symbol >= num_output_symbols_ ||
            output.Rank(t.output_symbol) != 0) {
          return Status::InvalidArgument(where +
                                         ": output0 needs a leaf symbol");
        }
        break;
      case TransitionKind::kOutputBinary:
        if (t.output_symbol >= num_output_symbols_ ||
            output.Rank(t.output_symbol) != 2) {
          return Status::InvalidArgument(where +
                                         ": output2 needs a binary symbol");
        }
        if (level_[t.out_left] != lvl || level_[t.out_right] != lvl) {
          return Status::InvalidArgument(
              where + ": output2 branches must stay at the same level");
        }
        break;
    }
  }
  return Status::OK();
}

PebbleTransducer::Config PebbleTransducer::InitialConfig(
    const BinaryTree& tree) const {
  PEBBLETC_CHECK(!tree.empty()) << "empty input tree";
  return Config{start_, {tree.root()}};
}

bool PebbleTransducer::Applies(const Transition& t, const BinaryTree& tree,
                               const Config& config) const {
  if (t.from != config.state) return false;
  const NodeId current = config.pebbles.back();
  if (t.guard.symbol != kAnySymbol && tree.symbol(current) != t.guard.symbol) {
    return false;
  }
  if (t.guard.presence_mask != 0) {
    uint32_t presence = 0;
    for (size_t j = 0; j + 1 < config.pebbles.size(); ++j) {
      if (config.pebbles[j] == current) presence |= (1u << j);
    }
    if ((presence & t.guard.presence_mask) != t.guard.presence_value) {
      return false;
    }
  }
  if (t.kind != TransitionKind::kMove) return true;
  switch (t.move) {
    case MoveKind::kStay:
      return true;
    case MoveKind::kDownLeft:
    case MoveKind::kDownRight:
      return !tree.IsLeaf(current);
    case MoveKind::kUpLeft:
      return !tree.IsRoot(current) && tree.IsLeftChild(current);
    case MoveKind::kUpRight:
      return !tree.IsRoot(current) && !tree.IsLeftChild(current);
    case MoveKind::kPlacePebble:
      return config.pebbles.size() < max_pebbles_;
    case MoveKind::kPickPebble:
      return config.pebbles.size() > 1;
  }
  return false;
}

PebbleTransducer::Config PebbleTransducer::ApplyMove(
    const Transition& t, const BinaryTree& tree, const Config& config) const {
  PEBBLETC_DCHECK(t.kind == TransitionKind::kMove) << "not a move";
  Config next = config;
  next.state = t.to;
  NodeId& current = next.pebbles.back();
  switch (t.move) {
    case MoveKind::kStay:
      break;
    case MoveKind::kDownLeft:
      current = tree.left(current);
      break;
    case MoveKind::kDownRight:
      current = tree.right(current);
      break;
    case MoveKind::kUpLeft:
    case MoveKind::kUpRight:
      current = tree.parent(current);
      break;
    case MoveKind::kPlacePebble:
      next.pebbles.push_back(tree.root());
      break;
    case MoveKind::kPickPebble:
      next.pebbles.pop_back();
      break;
  }
  return next;
}

std::vector<const PebbleTransducer::Transition*> PebbleTransducer::Applicable(
    const BinaryTree& tree, const Config& config) const {
  std::vector<const Transition*> out;
  for (uint32_t idx : by_state_[config.state]) {
    const Transition& t = transitions_[idx];
    if (Applies(t, tree, config)) out.push_back(&t);
  }
  return out;
}

bool PebbleTransducer::IsDeterministic() const {
  // Syntactic check: two transitions from the same state conflict if their
  // symbol guards overlap and their presence guards are compatible on shared
  // mask bits — except the pair {up-left, up-right}, which is mutually
  // exclusive at runtime (a node is either a left or a right child).
  for (StateId q = 0; q < level_.size(); ++q) {
    const auto& idxs = by_state_[q];
    for (size_t i = 0; i < idxs.size(); ++i) {
      for (size_t j = i + 1; j < idxs.size(); ++j) {
        const Transition& a = transitions_[idxs[i]];
        const Transition& b = transitions_[idxs[j]];
        if (a.guard.symbol != kAnySymbol && b.guard.symbol != kAnySymbol &&
            a.guard.symbol != b.guard.symbol) {
          continue;
        }
        const uint32_t shared = a.guard.presence_mask & b.guard.presence_mask;
        if ((a.guard.presence_value & shared) !=
            (b.guard.presence_value & shared)) {
          continue;
        }
        const bool up_pair =
            a.kind == TransitionKind::kMove &&
            b.kind == TransitionKind::kMove &&
            ((a.move == MoveKind::kUpLeft && b.move == MoveKind::kUpRight) ||
             (a.move == MoveKind::kUpRight && b.move == MoveKind::kUpLeft));
        if (!up_pair) return false;
      }
    }
  }
  return true;
}

}  // namespace pebbletc
