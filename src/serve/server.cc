#include "src/serve/server.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/common/arena.h"
#include "src/core/typechecker.h"
#include "src/dtd/dtd.h"
#include "src/tree/encode.h"
#include "src/xml/xml.h"

namespace pebbletc::serve {
namespace {

bool IsHeavy(Opcode opcode) {
  switch (opcode) {
    case Opcode::kValidate:
    case Opcode::kTypecheck:
    case Opcode::kInferInverse:
    case Opcode::kLoadArtifact:
    case Opcode::kValidateBatch:  // the whole batch holds ONE slot
      return true;
    case Opcode::kPing:
    case Opcode::kListArtifacts:
    case Opcode::kStats:
      return false;
  }
  return true;
}

Response OkResponse(const RequestHeader& header,
                    decltype(Response::body) body) {
  Response response;
  response.header.opcode = header.opcode;
  response.header.request_id = header.request_id;
  response.header.status = WireStatus::kOk;
  response.body = std::move(body);
  return response;
}

Response StatusResponse(const RequestHeader& header, const Status& status) {
  return MakeErrorResponse(header.opcode, header.request_id,
                           WireStatusOf(status), status.ToString());
}

}  // namespace

Status ValidateServeOptions(const ServeOptions& options) {
  if (options.max_frame_bytes < kMinFrameBytes) {
    return Status::InvalidArgument(
        "max_frame_bytes " + std::to_string(options.max_frame_bytes) +
        " is below the " + std::to_string(kMinFrameBytes) + "-byte floor");
  }
  if (options.max_frame_bytes > kMaxFrameBytesCeiling) {
    return Status::InvalidArgument(
        "max_frame_bytes " + std::to_string(options.max_frame_bytes) +
        " exceeds the " + std::to_string(kMaxFrameBytesCeiling) +
        "-byte ceiling");
  }
  return Status::OK();
}

WireStatus WireStatusOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kFailedPrecondition:
      return WireStatus::kFailedPrecondition;
    case StatusCode::kResourceExhausted:
    case StatusCode::kLimitExceeded:
      return WireStatus::kResourceExhausted;
    case StatusCode::kParseError:
      return WireStatus::kValidationFailed;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    case StatusCode::kCancelled:
      return WireStatus::kCancelled;
    case StatusCode::kUnimplemented:
    case StatusCode::kInternal:
      return WireStatus::kInternal;
  }
  return WireStatus::kInternal;
}

ServerCore::ServerCore(ServeOptions options)
    : options_(options),
      admission_(options.max_in_flight, options.max_queued) {}

void ServerCore::ArmFaultForNextRequest(TaFaultInjector* injector) {
  armed_fault_.store(injector, std::memory_order_release);
}

StatsResponse ServerCore::SnapshotStats() const {
  StatsResponse stats;
  stats.requests_total = requests_total_.load();
  stats.responses_ok = responses_ok_.load();
  stats.malformed_rejected = malformed_rejected_.load();
  stats.validation_rejected = validation_rejected_.load();
  stats.overload_rejected = overload_rejected_.load();
  stats.degraded_verdicts = degraded_verdicts_.load();
  stats.hard_errors = hard_errors_.load();
  stats.faults_injected = faults_injected_.load();
  stats.in_flight = admission_.in_flight();
  return stats;
}

std::string ServerCore::HandleFrame(std::string_view payload,
                                    const std::atomic<bool>* cancel) {
  requests_total_.fetch_add(1);
  Response response;

  Result<RawRequestHeader> raw = PeekRequestHeader(payload);
  if (!raw.ok()) {
    malformed_rejected_.fetch_add(1);
    response = MakeErrorResponse(Opcode::kPing, 0, WireStatus::kMalformedFrame,
                                 raw.status().ToString());
  } else if (raw->version != kWireVersion) {
    malformed_rejected_.fetch_add(1);
    response = MakeErrorResponse(
        Opcode::kPing, raw->request_id, WireStatus::kUnsupportedVersion,
        "this server speaks wire version " + std::to_string(kWireVersion) +
            ", request declared " + std::to_string(raw->version));
  } else if (raw->opcode_byte > kMaxOpcode) {
    malformed_rejected_.fetch_add(1);
    response = MakeErrorResponse(
        Opcode::kPing, raw->request_id, WireStatus::kUnknownOpcode,
        "unknown opcode " + std::to_string(raw->opcode_byte));
  } else {
    Result<Request> request = DecodeRequest(payload, options_.max_frame_bytes);
    if (!request.ok()) {
      malformed_rejected_.fetch_add(1);
      response = MakeErrorResponse(static_cast<Opcode>(raw->opcode_byte),
                                   raw->request_id, WireStatus::kMalformedFrame,
                                   request.status().ToString());
    } else {
      // Handle() counts this decoded request itself.
      requests_total_.fetch_sub(1);
      response = Handle(*request, cancel);
    }
  }
  std::string encoded;
  EncodeResponse(response, &encoded);
  return encoded;
}

Response ServerCore::Handle(const Request& request,
                            const std::atomic<bool>* cancel) {
  requests_total_.fetch_add(1);
  Status valid = CheckRequest(request, options_.validity);
  if (!valid.ok()) {
    validation_rejected_.fetch_add(1);
    return MakeErrorResponse(request.header.opcode, request.header.request_id,
                             WireStatus::kValidationFailed, valid.ToString());
  }
  if (IsHeavy(request.header.opcode)) {
    Result<AdmissionController::Slot> slot =
        admission_.Admit(options_.admission_wait);
    if (!slot.ok()) {
      overload_rejected_.fetch_add(1);
      return MakeErrorResponse(request.header.opcode,
                               request.header.request_id,
                               WireStatus::kOverloaded,
                               slot.status().ToString());
    }
    Response response = Dispatch(request, cancel);
    if (response.header.status == WireStatus::kOk) {
      responses_ok_.fetch_add(1);
    }
    return response;  // the slot releases here, after the response is built
  }
  Response response = Dispatch(request, cancel);
  if (response.header.status == WireStatus::kOk) {
    responses_ok_.fetch_add(1);
  }
  return response;
}

Response ServerCore::Dispatch(const Request& request,
                              const std::atomic<bool>* cancel) {
  const RequestHeader& header = request.header;
  switch (header.opcode) {
    case Opcode::kPing:
      return OkResponse(header, PingResponse{});
    case Opcode::kValidate:
      return DoValidate(header, std::get<ValidateRequest>(request.body),
                        cancel);
    case Opcode::kValidateBatch:
      return DoValidateBatch(
          header, std::get<ValidateBatchRequest>(request.body), cancel);
    case Opcode::kTypecheck:
      return DoTypecheck(header, std::get<TypecheckRequest>(request.body),
                         cancel);
    case Opcode::kInferInverse:
      return DoInferInverse(
          header, std::get<InferInverseRequest>(request.body), cancel);
    case Opcode::kLoadArtifact:
      return DoLoadArtifact(header,
                            std::get<LoadArtifactRequest>(request.body));
    case Opcode::kListArtifacts: {
      ListArtifactsResponse body;
      for (auto& [name, kind] : registry_.List()) {
        body.artifacts.push_back(
            ArtifactInfo{name, static_cast<uint8_t>(kind)});
      }
      return OkResponse(header, std::move(body));
    }
    case Opcode::kStats:
      return OkResponse(header, SnapshotStats());
  }
  return MakeErrorResponse(header.opcode, header.request_id,
                           WireStatus::kUnknownOpcode, "unreachable");
}

namespace {

/// Builds the per-request execution-control options from the server policy,
/// the client's requested deadline, and the transport cancel flag.
TypecheckOptions RequestOptions(const ServeOptions& server,
                                const RequestHeader& header,
                                const std::atomic<bool>* cancel,
                                TaFaultInjector* injector) {
  TypecheckOptions opts;
  uint32_t deadline_ms = header.deadline_ms == 0 ? server.default_deadline_ms
                                                 : header.deadline_ms;
  deadline_ms = std::min(deadline_ms, server.validity.max_deadline_ms);
  opts.deadline = std::chrono::milliseconds(deadline_ms);
  opts.cancel = cancel;
  opts.max_det_states = server.max_det_states;
  opts.max_antichain_pairs = server.max_antichain_pairs;
  opts.inclusion = server.inclusion;
  opts.num_threads = server.num_threads;
  opts.memo = server.memo;  // auto-bypassed when an injector is installed
  opts.fault_injector = injector;
  return opts;
}

}  // namespace

namespace {

/// Execution-control context for the validate opcodes: same deadline/cancel
/// policy as RequestOptions, assembled directly (validation does not go
/// through the Typechecker).
TaOpContext ValidateContext(const ServeOptions& server,
                            const RequestHeader& header,
                            const std::atomic<bool>* cancel,
                            TaFaultInjector* injector) {
  TaOpBudgets budgets;
  uint32_t deadline_ms = header.deadline_ms == 0 ? server.default_deadline_ms
                                                 : header.deadline_ms;
  deadline_ms = std::min(deadline_ms, server.validity.max_deadline_ms);
  budgets.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  budgets.cancel = cancel;
  budgets.max_det_states = server.max_det_states;
  budgets.max_antichain_pairs = server.max_antichain_pairs;
  budgets.num_threads = server.num_threads;
  budgets.memo = server.memo;  // auto-bypassed when an injector is installed
  TaOpContext ctx(budgets);
  ctx.fault = injector;
  return ctx;
}

/// Error response for a failed plan resolution / validation, preserving the
/// legacy DoValidate details: registry-level failures (unknown name, wrong
/// kind) carry the bare message; everything else carries the full
/// code-prefixed Status string.
Response PlanErrorResponse(const RequestHeader& header, const Status& status) {
  if (status.code() == StatusCode::kNotFound ||
      status.code() == StatusCode::kFailedPrecondition) {
    return MakeErrorResponse(header.opcode, header.request_id,
                             WireStatusOf(status),
                             std::string(status.message()));
  }
  return StatusResponse(header, status);
}

}  // namespace

Result<std::shared_ptr<const ValidationPlan>> ServerCore::PlanFor(
    const std::string& name, TaOpContext* ctx, bool bypass_cache) {
  std::shared_ptr<const RegistryEntry> entry = registry_.Get(name);
  if (entry == nullptr) {
    return Status::NotFound("no artifact named '" + name + "'");
  }
  if (entry->kind != RegistryEntry::Kind::kDtd &&
      entry->kind != RegistryEntry::Kind::kSchema) {
    return Status::FailedPrecondition(
        "artifact '" + name + "' is a " + RegistryKindName(entry->kind) +
        ", not a schema or DTD");
  }
  if (!bypass_cache) {
    std::lock_guard<std::mutex> lock(plan_mu_);
    auto it = plans_.find(name);
    // Pointer identity against the registry snapshot: a hot-swapped artifact
    // gets a different entry object, so its stale plan misses here.
    if (it != plans_.end() && it->second.source == entry) {
      return it->second.plan;
    }
  }
  // Compile outside the lock: determinization can be slow and other
  // artifacts' requests must not stall behind it.
  Result<ValidationPlan> plan =
      entry->kind == RegistryEntry::Kind::kDtd
          ? CompileDtdPlan(entry->dtd, ctx)
          : CompileSchemaPlan(*entry->schema, ctx);
  if (!plan.ok()) return plan.status();
  auto shared = std::make_shared<const ValidationPlan>(std::move(*plan));
  if (!bypass_cache && TaInterruptStatus(ctx).ok()) {
    std::lock_guard<std::mutex> lock(plan_mu_);
    plans_[name] = CachedPlan{std::move(entry), shared};
  }
  return shared;
}

Response ServerCore::DoValidate(const RequestHeader& header,
                                const ValidateRequest& req,
                                const std::atomic<bool>* cancel) {
  TaFaultInjector* injector = armed_fault_.exchange(nullptr);
  TaOpContext ctx = ValidateContext(options_, header, cancel, injector);
  Result<std::shared_ptr<const ValidationPlan>> plan =
      PlanFor(req.schema, &ctx, /*bypass_cache=*/injector != nullptr);
  if (!plan.ok()) {
    if (injector != nullptr && injector->tripped) faults_injected_.fetch_add(1);
    return PlanErrorResponse(header, plan.status());
  }
  Arena arena;
  DocVerdict verdict = ValidateDoc(**plan, req.document, &ctx, &arena);
  if (injector != nullptr && injector->tripped) faults_injected_.fetch_add(1);
  if (verdict.code != StatusCode::kOk) {
    return StatusResponse(header, Status(verdict.code, verdict.diagnostic));
  }
  ValidateResponse body;
  body.valid = verdict.valid;
  body.diagnostic = std::move(verdict.diagnostic);
  return OkResponse(header, std::move(body));
}

Response ServerCore::DoValidateBatch(const RequestHeader& header,
                                     const ValidateBatchRequest& req,
                                     const std::atomic<bool>* cancel) {
  TaFaultInjector* injector = armed_fault_.exchange(nullptr);
  TaOpContext ctx = ValidateContext(options_, header, cancel, injector);
  Result<std::shared_ptr<const ValidationPlan>> plan =
      PlanFor(req.schema, &ctx, /*bypass_cache=*/injector != nullptr);
  if (!plan.ok()) {
    if (injector != nullptr && injector->tripped) faults_injected_.fetch_add(1);
    return PlanErrorResponse(header, plan.status());
  }
  BatchResult batch = ValidateBatch(**plan, req.documents, &ctx);
  if (injector != nullptr && injector->tripped) faults_injected_.fetch_add(1);
  // The batch response is kOk even when individual documents failed: each
  // verdict carries its own honest wire status (deadline, cancellation,
  // malformed XML), and the client decides per document.
  ValidateBatchResponse body;
  body.fast_path_docs = batch.fast_path_docs;
  body.fallback_docs = batch.fallback_docs;
  body.verdicts.reserve(batch.verdicts.size());
  for (DocVerdict& v : batch.verdicts) {
    BatchDocVerdict wire;
    wire.status = v.code == StatusCode::kOk
                      ? static_cast<uint8_t>(WireStatus::kOk)
                      : static_cast<uint8_t>(
                            WireStatusOf(Status(v.code, v.diagnostic)));
    wire.valid = v.valid;
    wire.diagnostic = std::move(v.diagnostic);
    body.verdicts.push_back(std::move(wire));
  }
  return OkResponse(header, std::move(body));
}

namespace {

/// Everything a typecheck/infer request needs after name resolution and
/// alphabet assembly: the transducer, its encoded alphabets, the unranked
/// tag tables (for rendering counterexamples as XML), and the compiled
/// τ automata.
struct CompiledInstance {
  PebbleTransducer transducer{1, 0, 0};
  EncodedAlphabet in_enc;
  EncodedAlphabet out_enc;
  Alphabet in_tags;
  Alphabet out_tags;
  Nbta tau1;       // only for typecheck
  Nbta tau2;
  bool has_tau1 = false;
};

Result<std::shared_ptr<const RegistryEntry>> ResolveKind(
    const ArtifactRegistry& registry, const std::string& name,
    RegistryEntry::Kind want_a, RegistryEntry::Kind want_b) {
  std::shared_ptr<const RegistryEntry> entry = registry.Get(name);
  if (entry == nullptr) {
    return Status::NotFound("no artifact named '" + name + "'");
  }
  if (entry->kind != want_a && entry->kind != want_b) {
    return Status::FailedPrecondition(
        "artifact '" + name + "' is a " + RegistryKindName(entry->kind) +
        "; this request needs a " + RegistryKindName(want_a) +
        (want_a == want_b ? std::string()
                          : std::string(" or ") + RegistryKindName(want_b)));
  }
  return entry;
}

/// Resolves and compiles a (transducer, [τ1], τ2) instance. XSLT programs
/// are compiled over alphabets extended with the paired DTDs' tags (the
/// pebbletc_cli convention); pre-compiled transducer artifacts have fixed
/// alphabets, so the DTDs must fit inside them.
Result<CompiledInstance> CompileInstance(
    const ArtifactRegistry& registry, const std::string& transducer_name,
    const SpecializedDtd* input_dtd, const SpecializedDtd& output_dtd) {
  PEBBLETC_ASSIGN_OR_RETURN(
      std::shared_ptr<const RegistryEntry> entry,
      ResolveKind(registry, transducer_name, RegistryEntry::Kind::kXslt,
                  RegistryEntry::Kind::kTransducer));
  CompiledInstance instance;
  if (entry->kind == RegistryEntry::Kind::kXslt) {
    instance.in_tags = entry->xslt->head_tags;
    instance.out_tags = entry->xslt->literal_tags;
    if (input_dtd != nullptr) {
      for (SymbolId t = 0; t < input_dtd->tags().size(); ++t) {
        instance.in_tags.Intern(input_dtd->tags().Name(t));
      }
    }
    for (SymbolId t = 0; t < output_dtd.tags().size(); ++t) {
      instance.out_tags.Intern(output_dtd.tags().Name(t));
    }
    PEBBLETC_ASSIGN_OR_RETURN(instance.in_enc,
                              MakeEncodedAlphabet(instance.in_tags));
    PEBBLETC_ASSIGN_OR_RETURN(instance.out_enc,
                              MakeEncodedAlphabet(instance.out_tags));
    Result<PebbleTransducer> compiled = CompileXslt(
        entry->xslt->program, instance.in_enc, instance.out_enc);
    if (!compiled.ok()) {
      return Status::FailedPrecondition(
          "XSLT '" + transducer_name + "' does not cover these types: " +
          compiled.status().ToString());
    }
    instance.transducer = std::move(compiled).value();
  } else {
    PEBBLETC_ASSIGN_OR_RETURN(
        RankedEncodingView in_view,
        EncodedViewOfRanked(entry->transducer->input_alphabet));
    PEBBLETC_ASSIGN_OR_RETURN(
        RankedEncodingView out_view,
        EncodedViewOfRanked(entry->transducer->output_alphabet));
    instance.in_enc = std::move(in_view.enc);
    instance.out_enc = std::move(out_view.enc);
    instance.in_tags = std::move(in_view.tags);
    instance.out_tags = std::move(out_view.tags);
    instance.transducer = entry->transducer->transducer;
  }
  if (input_dtd != nullptr) {
    Result<Nbta> tau1 = CompileDtdOver(*input_dtd, instance.in_enc);
    if (!tau1.ok()) {
      return Status::FailedPrecondition(
          "input DTD does not fit the transducer's input alphabet: " +
          tau1.status().ToString());
    }
    instance.tau1 = std::move(tau1).value();
    instance.has_tau1 = true;
  }
  Result<Nbta> tau2 = CompileDtdOver(output_dtd, instance.out_enc);
  if (!tau2.ok()) {
    return Status::FailedPrecondition(
        "output DTD does not fit the transducer's output alphabet: " +
        tau2.status().ToString());
  }
  instance.tau2 = std::move(tau2).value();
  return instance;
}

std::string RenderTree(const std::optional<BinaryTree>& tree,
                       const EncodedAlphabet& enc, const Alphabet& tags) {
  if (!tree.has_value()) return std::string();
  Result<UnrankedTree> doc = DecodeTree(*tree, enc);
  if (!doc.ok()) return std::string();  // not an encoded document — omit
  return XmlString(*doc, tags);
}

}  // namespace

Response ServerCore::DoTypecheck(const RequestHeader& header,
                                 const TypecheckRequest& req,
                                 const std::atomic<bool>* cancel) {
  Result<std::shared_ptr<const RegistryEntry>> in_entry =
      ResolveKind(registry_, req.input_type, RegistryEntry::Kind::kDtd,
                  RegistryEntry::Kind::kDtd);
  if (!in_entry.ok()) return StatusResponse(header, in_entry.status());
  Result<std::shared_ptr<const RegistryEntry>> out_entry =
      ResolveKind(registry_, req.output_type, RegistryEntry::Kind::kDtd,
                  RegistryEntry::Kind::kDtd);
  if (!out_entry.ok()) return StatusResponse(header, out_entry.status());

  Result<CompiledInstance> instance =
      CompileInstance(registry_, req.transducer, (*in_entry)->dtd.get(),
                      *(*out_entry)->dtd);
  if (!instance.ok()) return StatusResponse(header, instance.status());

  TaFaultInjector* injector = armed_fault_.exchange(nullptr);
  TypecheckOptions opts = RequestOptions(options_, header, cancel, injector);
  Typechecker checker(instance->transducer, instance->in_enc.ranked,
                      instance->out_enc.ranked);
  Result<TypecheckResult> result =
      checker.Typecheck(instance->tau1, instance->tau2, opts);
  if (injector != nullptr && injector->tripped) {
    faults_injected_.fetch_add(1);
  }
  if (!result.ok()) {
    hard_errors_.fetch_add(1);
    return StatusResponse(header, result.status());
  }

  TypecheckResponse body;
  switch (result->verdict) {
    case TypecheckVerdict::kTypechecks:
      body.verdict = 0;
      break;
    case TypecheckVerdict::kCounterexample:
      body.verdict = 1;
      break;
    case TypecheckVerdict::kUnknown:
      body.verdict = 2;
      degraded_verdicts_.fetch_add(1);
      break;
  }
  body.method = result->method;
  body.exhausted = result->exhausted.exhausted;
  body.exhaustion_code = static_cast<uint8_t>(result->exhausted.code);
  body.exhaustion_pass = result->exhausted.pass;
  body.exhaustion_detail = result->exhausted.detail;
  body.checkpoints = result->op_counters.checkpoints;
  body.states_materialized = result->op_counters.states_materialized;
  body.counterexample_input_xml = RenderTree(
      result->counterexample_input, instance->in_enc, instance->in_tags);
  body.counterexample_output_xml = RenderTree(
      result->counterexample_output, instance->out_enc, instance->out_tags);
  return OkResponse(header, std::move(body));
}

Response ServerCore::DoInferInverse(const RequestHeader& header,
                                    const InferInverseRequest& req,
                                    const std::atomic<bool>* cancel) {
  Result<std::shared_ptr<const RegistryEntry>> out_entry =
      ResolveKind(registry_, req.output_type, RegistryEntry::Kind::kDtd,
                  RegistryEntry::Kind::kDtd);
  if (!out_entry.ok()) return StatusResponse(header, out_entry.status());

  Result<CompiledInstance> instance = CompileInstance(
      registry_, req.transducer, nullptr, *(*out_entry)->dtd);
  if (!instance.ok()) return StatusResponse(header, instance.status());

  TaFaultInjector* injector = armed_fault_.exchange(nullptr);
  TypecheckOptions opts = RequestOptions(options_, header, cancel, injector);
  Typechecker checker(instance->transducer, instance->in_enc.ranked,
                      instance->out_enc.ranked);
  Result<Nbta> inverse = checker.InferInverseType(instance->tau2, opts);
  if (injector != nullptr && injector->tripped) {
    faults_injected_.fetch_add(1);
  }
  if (!inverse.ok()) {
    // Inference has no three-valued verdict to degrade into: a budget hit
    // is reported as the corresponding structured error status.
    hard_errors_.fetch_add(1);
    return StatusResponse(header, inverse.status());
  }
  InferInverseResponse body;
  body.num_states = inverse->num_states;
  body.num_leaf_rules = static_cast<uint32_t>(inverse->leaf_rules.size());
  body.num_rules = static_cast<uint32_t>(inverse->rules.size());
  return OkResponse(header, std::move(body));
}

Response ServerCore::DoLoadArtifact(const RequestHeader& header,
                                    const LoadArtifactRequest& req) {
  if (!options_.allow_load) {
    return MakeErrorResponse(
        header.opcode, header.request_id, WireStatus::kFailedPrecondition,
        "runtime artifact loading is disabled on this server");
  }
  Result<RegistryEntry::Kind> kind = registry_.PutWrapped(req.name,
                                                          req.artifact);
  if (!kind.ok()) return StatusResponse(header, kind.status());
  LoadArtifactResponse body;
  body.kind = static_cast<uint8_t>(*kind);
  return OkResponse(header, body);
}

}  // namespace pebbletc::serve
