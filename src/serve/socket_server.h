// The daemon's transport: a Unix-domain stream socket speaking the
// length-prefixed protocol of src/serve/protocol.h, thread-per-connection,
// with a watchdog that detects client disconnects mid-request and flips the
// per-connection cancel flag — the transport half of cooperative
// cancellation (the TaOpContext checkpoints inside the request are the
// other half).
//
// Framing errors (oversized declared length, torn length prefix) poison the
// stream — there is no way to resynchronize — so the connection gets one
// final structured error frame and is closed. Content errors (malformed
// payloads, validation rejections, overload) keep the connection open; they
// are ordinary responses.

#ifndef PEBBLETC_SERVE_SOCKET_SERVER_H_
#define PEBBLETC_SERVE_SOCKET_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/serve/server.h"

namespace pebbletc::serve {

class SocketServer {
 public:
  /// `core` must outlive the server.
  explicit SocketServer(ServerCore* core) : core_(core) {}
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens on a Unix-domain socket at `path` (any stale socket
  /// file is removed first), then starts the accept and watchdog threads.
  Status Start(const std::string& path);

  /// Stops accepting, cancels in-flight requests, joins all threads, and
  /// removes the socket file. Idempotent.
  void Stop();

  bool running() const { return running_.load(); }

 private:
  struct Connection {
    int fd = -1;
    /// The handler thread serving this connection. Owned here so a finished
    /// connection can be reaped (joined and dropped) as one unit — a
    /// long-lived daemon must not accumulate a joinable thread per
    /// historical client.
    std::thread worker;
    std::atomic<bool> cancel{false};
    /// True while a request is being processed (the watchdog only probes
    /// busy connections — an idle connection's readability is just the next
    /// request arriving).
    std::atomic<bool> busy{false};
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void WatchdogLoop();
  void HandleConnection(std::shared_ptr<Connection> conn);

  /// Joins and drops every connection whose handler has finished. Returns
  /// the number of connections still alive.
  size_t ReapFinished();

  ServerCore* core_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::mutex mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace pebbletc::serve

#endif  // PEBBLETC_SERVE_SOCKET_SERVER_H_
