#include "src/serve/validate.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/serve/registry.h"
#include "src/ta/thread_pool.h"
#include "src/tree/encode.h"
#include "src/xml/xml.h"

namespace pebbletc::serve {
namespace {

DocVerdict ErrorVerdict(const Status& status) {
  DocVerdict v;
  if (status.code() == StatusCode::kParseError) {
    // The wire contract DoValidate always had: a malformed document is an
    // invalid-argument response whose detail leads with "document: ".
    v.code = StatusCode::kInvalidArgument;
    v.diagnostic = "document: " + status.ToString();
  } else {
    v.code = status.code();
    v.diagnostic = status.message();
  }
  return v;
}

DocVerdict UnknownTagVerdict(const ValidationPlan& plan,
                             const std::string& tag) {
  DocVerdict v;
  v.valid = false;
  v.diagnostic = plan.dtd != nullptr
                     ? "document uses tag '" + tag +
                           "' which the DTD does not declare"
                     : "document uses tag '" + tag +
                           "' outside the schema alphabet";
  return v;
}

// Diagnostic for a document the automaton rejected. DTD plans re-derive the
// per-node message from the DTD itself; schema plans have only the automaton
// to point at.
std::string RejectionDiagnostic(const ValidationPlan& plan,
                                const UnrankedTree& doc) {
  if (plan.dtd != nullptr) {
    Status conforms = plan.dtd->Validate(doc);
    if (!conforms.ok()) return std::string(conforms.message());
    // Engine and DTD disagree — a diffcheck-law violation if it ever
    // happens; stay honest rather than inventing a node.
    return "DTD automaton rejects the document";
  }
  return "schema automaton rejects the document";
}

}  // namespace

Result<ValidationPlan> CompileDtdPlan(
    std::shared_ptr<const SpecializedDtd> dtd, TaOpContext* ctx,
    TaOpCache* cache) {
  PEBBLETC_CHECK(dtd != nullptr) << "CompileDtdPlan on null DTD";
  ValidationPlan plan;
  plan.tags = dtd->tags();
  PEBBLETC_ASSIGN_OR_RETURN(plan.enc, MakeEncodedAlphabet(plan.tags));
  PEBBLETC_ASSIGN_OR_RETURN(Nbta nbta, CompileDtdToNbta(*dtd, plan.enc));
  PEBBLETC_ASSIGN_OR_RETURN(
      plan.engine, MembershipEngine::Compile(nbta, plan.enc.ranked, ctx, cache));
  plan.dtd = std::move(dtd);
  return plan;
}

Result<ValidationPlan> CompileSchemaPlan(const SchemaArtifact& schema,
                                         TaOpContext* ctx, TaOpCache* cache) {
  PEBBLETC_ASSIGN_OR_RETURN(RankedEncodingView view,
                            EncodedViewOfRanked(schema.alphabet));
  ValidationPlan plan;
  plan.tags = std::move(view.tags);
  plan.enc = std::move(view.enc);
  PEBBLETC_ASSIGN_OR_RETURN(
      plan.engine,
      MembershipEngine::Compile(schema.automaton, plan.enc.ranked, ctx, cache));
  return plan;
}

DocVerdict ValidateDoc(const ValidationPlan& plan, std::string_view document,
                       TaOpContext* ctx, std::pmr::memory_resource* mem) {
  DocVerdict v;
  if (plan.engine.fast()) {
    // Streaming: fold the compiled table over the parse events; the tree is
    // materialized only when a DTD rejection needs its diagnostic.
    Result<StreamVerdict> stream = StreamingValidateXml(
        document, *plan.engine.table(), plan.enc, plan.tags, ctx, mem);
    if (!stream.ok()) return ErrorVerdict(stream.status());
    if (!stream->unknown_tag.empty()) {
      return UnknownTagVerdict(plan, stream->unknown_tag);
    }
    v.valid = stream->accepted;
    if (!v.valid) {
      if (plan.dtd != nullptr) {
        Result<KnownXmlParse> parsed =
            ParseXmlKnown(document, plan.tags, mem);
        // The stream already proved the document well-formed over known tags.
        PEBBLETC_CHECK(parsed.ok() && parsed->unknown_tag.empty())
            << "streamed document failed to re-parse";
        v.diagnostic = RejectionDiagnostic(plan, parsed->tree);
      } else {
        v.diagnostic = RejectionDiagnostic(plan, UnrankedTree());
      }
    }
    return v;
  }
  // Fallback route: materialize, encode, NbtaAccepts — correct under any
  // budget, just slower; counted via membership_fallbacks.
  Result<KnownXmlParse> parsed = ParseXmlKnown(document, plan.tags, mem);
  if (!parsed.ok()) return ErrorVerdict(parsed.status());
  if (!parsed->unknown_tag.empty()) {
    return UnknownTagVerdict(plan, parsed->unknown_tag);
  }
  Result<BinaryTree> encoded =
      EncodeTree(parsed->tree, plan.enc, nullptr, mem);
  if (!encoded.ok()) return ErrorVerdict(encoded.status());
  Result<bool> accepted = plan.engine.Accepts(*encoded, ctx, mem);
  if (!accepted.ok()) return ErrorVerdict(accepted.status());
  v.valid = *accepted;
  if (!v.valid) v.diagnostic = RejectionDiagnostic(plan, parsed->tree);
  return v;
}

BatchResult ValidateBatch(const ValidationPlan& plan,
                          const std::vector<std::string>& documents,
                          TaOpContext* ctx) {
  BatchResult result;
  result.verdicts.resize(documents.size());
  const uint32_t workers = static_cast<uint32_t>(std::min<size_t>(
      TaEffectiveThreads(ctx), std::max<size_t>(documents.size(), 1)));
  if (workers <= 1) {
    const size_t fast0 =
        ctx != nullptr ? ctx->counters.membership_fast_hits : 0;
    const size_t fall0 =
        ctx != nullptr ? ctx->counters.membership_fallbacks : 0;
    Arena arena;
    for (size_t i = 0; i < documents.size(); ++i) {
      arena.Reset();
      result.verdicts[i] = ValidateDoc(plan, documents[i], ctx, &arena);
    }
    if (ctx != nullptr) {
      result.fast_path_docs = ctx->counters.membership_fast_hits - fast0;
      result.fallback_docs = ctx->counters.membership_fallbacks - fall0;
    }
    return result;
  }
  // Fan-out: one Fork() child and one arena per worker, documents claimed
  // off a shared cursor, counters merged on join (docs/PARALLEL.md).
  std::vector<TaOpContext> children;
  children.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) children.push_back(ctx->Fork());
  std::atomic<size_t> cursor{0};
  TaThreadPool::Instance().Run(workers, [&](uint32_t w) {
    TaOpContext& child = children[w];
    Arena arena;
    for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < documents.size();
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      arena.Reset();
      result.verdicts[i] = ValidateDoc(plan, documents[i], &child, &arena);
    }
  });
  for (TaOpContext& child : children) {
    result.fast_path_docs += child.counters.membership_fast_hits;
    result.fallback_docs += child.counters.membership_fallbacks;
    ctx->MergeChild(child);
  }
  return result;
}

}  // namespace pebbletc::serve
