// Tiered trust-boundary validation for the typecheck service, in the style
// of RethinkDB's leveled `validate_pb` checks (docs/SERVING.md): every
// decoded request passes through a configurable strictness tier *before*
// dispatch touches the registry or any automata op, and every rejection is
// a structured error (kInvalidArgument / kParseError mapped to
// WireStatus::kValidationFailed), never a crash.
//
// The tiers are cumulative:
//
//   kOff   — protocol decoding only (the wire parser's own range checks;
//            they can never be disabled). Malformed bytes are still rejected;
//            semantically absurd but well-formed requests pass through and
//            fail later, inside dispatch, with coarser errors.
//   kBasic — cheap shape checks: registry names are non-empty, length-capped
//            and drawn from a conservative charset; documents and artifact
//            payloads respect size caps; requested deadlines respect the
//            server maximum. O(field length), no parsing.
//   kFull  — structural checks: artifact containers are unwrapped and their
//            payloads completely deserialized (every range/rank/arity
//            invariant enforced by src/ta/serialize.cc), and XML documents
//            are pre-parsed for well-formedness against a throwaway
//            alphabet. After kFull, dispatch can assume every byte of the
//            request is structurally sound; what remains is semantic
//            (name resolution, kind compatibility, budgets).

#ifndef PEBBLETC_SERVE_VALIDITY_H_
#define PEBBLETC_SERVE_VALIDITY_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/serve/protocol.h"

namespace pebbletc::serve {

enum class ValidityLevel : uint8_t {
  kOff = 0,
  kBasic = 1,
  kFull = 2,
};

struct ValidityOptions {
  ValidityLevel level = ValidityLevel::kFull;
  /// Caps enforced at kBasic and above.
  uint32_t max_name_bytes = 256;
  uint32_t max_document_bytes = 1u << 20;
  uint32_t max_artifact_bytes = 2u << 20;
  /// Most documents one kValidateBatch request may carry. Bounds the work a
  /// single admission slot can claim; every document still respects
  /// max_document_bytes individually.
  uint32_t max_batch_docs = 64;
  /// Largest deadline a client may request; larger asks are rejected (not
  /// clamped — a client that asks for an hour should learn the server's
  /// policy, not silently get two seconds).
  uint32_t max_deadline_ms = 30000;
};

/// Validates a decoded request at the configured tier. OK means "safe to
/// dispatch at this tier's guarantees"; any violation returns
/// kInvalidArgument (shape/size/charset) or kParseError (structural, kFull
/// only) with a message naming the offending field.
Status CheckRequest(const Request& request, const ValidityOptions& options);

}  // namespace pebbletc::serve

#endif  // PEBBLETC_SERVE_VALIDITY_H_
